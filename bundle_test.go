package ceresz

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestBundleRoundTrip(t *testing.T) {
	bw := NewBundleWriter()
	f1 := testField(32*40, 1)
	f2 := testField(32*25+7, 2)
	f3 := make([]float64, 500)
	for i := range f3 {
		f3[i] = math.Sin(float64(i) * 0.02)
	}
	if _, err := bw.AddField("temperature", Dims2(64, 20), f1, REL(1e-3), Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := bw.AddField("pressure", Dims1(32*25+7), f2, ABS(1e-2), Options{SZpHeader: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := bw.AddField64("density", Dims1(500), f3, ABS(1e-9), Options{}); err != nil {
		t.Fatal(err)
	}
	b, err := bw.Bytes()
	if err != nil {
		t.Fatal(err)
	}

	br, err := OpenBundle(b)
	if err != nil {
		t.Fatal(err)
	}
	if got := br.Names(); len(got) != 3 || got[0] != "density" {
		t.Fatalf("names %v", got)
	}
	fields := br.Fields()
	if fields[0].Name != "temperature" || fields[0].Dims != Dims2(64, 20) || fields[0].Elem != Float32 {
		t.Fatalf("field[0] %+v", fields[0])
	}
	if fields[2].Elem != Float64 {
		t.Fatalf("field[2] %+v", fields[2])
	}

	got1, meta1, err := br.ReadField("temperature")
	if err != nil {
		t.Fatal(err)
	}
	if meta1.Eps <= 0 {
		t.Fatalf("meta %+v", meta1)
	}
	for i := range f1 {
		if e := math.Abs(float64(got1[i]) - float64(f1[i])); e > meta1.Eps {
			t.Fatalf("temperature error %g at %d", e, i)
		}
	}
	got2, _, err := br.ReadField("pressure")
	if err != nil {
		t.Fatal(err)
	}
	for i := range f2 {
		if e := math.Abs(float64(got2[i]) - float64(f2[i])); e > 1e-2 {
			t.Fatalf("pressure error %g at %d", e, i)
		}
	}
	got3, _, err := br.ReadField64("density")
	if err != nil {
		t.Fatal(err)
	}
	for i := range f3 {
		if e := math.Abs(got3[i] - f3[i]); e > 1e-9 {
			t.Fatalf("density error %g at %d", e, i)
		}
	}
}

func TestBundleTypeMismatch(t *testing.T) {
	bw := NewBundleWriter()
	if _, err := bw.AddField("a", Dims1(64), testField(64, 3), ABS(1e-2), Options{}); err != nil {
		t.Fatal(err)
	}
	b, err := bw.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	br, err := OpenBundle(b)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := br.ReadField64("a"); err == nil {
		t.Fatal("ReadField64 accepted a float32 member")
	}
	if _, _, err := br.ReadField("missing"); err == nil || !strings.Contains(err.Error(), "no field") {
		t.Fatalf("missing field error: %v", err)
	}
}

func TestBundleWriterValidation(t *testing.T) {
	bw := NewBundleWriter()
	if _, err := bw.AddField("", Dims1(32), testField(32, 4), ABS(1e-2), Options{}); err == nil {
		t.Fatal("accepted empty name")
	}
	if _, err := bw.AddField("x", Dims1(33), testField(32, 4), ABS(1e-2), Options{}); err == nil {
		t.Fatal("accepted dims mismatch")
	}
	if _, err := bw.AddField("x", Dims1(32), testField(32, 4), ABS(1e-2), Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := bw.AddField("x", Dims1(32), testField(32, 4), ABS(1e-2), Options{}); err == nil {
		t.Fatal("accepted duplicate name")
	}
	if _, err := (&BundleWriter{names: map[string]bool{}}).Bytes(); err == nil {
		t.Fatal("assembled an empty bundle")
	}
}

func TestBundleCorrupt(t *testing.T) {
	bw := NewBundleWriter()
	if _, err := bw.AddField("a", Dims1(320), testField(320, 5), ABS(1e-2), Options{}); err != nil {
		t.Fatal(err)
	}
	b, err := bw.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"not a bundle":    []byte("nope"),
		"short":           b[:6],
		"truncated index": b[:12],
		"truncated body":  b[:len(b)-10],
	}
	for name, bad := range cases {
		if _, err := OpenBundle(bad); err == nil {
			t.Fatalf("%s: accepted corrupt bundle", name)
		}
	}
	// Version flip.
	bad := append([]byte(nil), b...)
	bad[4] = 9
	if _, err := OpenBundle(bad); err == nil {
		t.Fatal("accepted unknown version")
	}
}

func TestBundleAddField64Validation(t *testing.T) {
	bw := NewBundleWriter()
	data := []float64{1, 2, 3, 4}
	if _, err := bw.AddField64("", Dims1(4), data, ABS(1e-6), Options{}); err == nil {
		t.Fatal("accepted empty name")
	}
	if _, err := bw.AddField64("x", Dims1(5), data, ABS(1e-6), Options{}); err == nil {
		t.Fatal("accepted dims mismatch")
	}
	if _, err := bw.AddField64("x", Dims1(4), data, ABS(0), Options{}); err == nil {
		t.Fatal("accepted zero bound")
	}
}

func TestOpenBundleLimited(t *testing.T) {
	bw := NewBundleWriter()
	if _, err := bw.AddField("big", Dims1(4096), testField(4096, 40), ABS(1e-3), Options{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	b, err := bw.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenBundleLimited(b, 0, 0); err != nil {
		t.Fatalf("unlimited open: %v", err)
	}
	if _, err := OpenBundleLimited(b, 16, 0); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("byte cap: got %v, want ErrFrameTooLarge", err)
	}
	if _, err := OpenBundleLimited(b, 0, 100); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("element cap: got %v, want ErrFrameTooLarge", err)
	}

	// Hostile field count with nothing behind it must fail fast and typed.
	hostile := []byte{'C', 'S', 'Z', 'B', 1, 0xFF, 0xFF, 0xFF}
	if _, err := OpenBundleLimited(hostile, 0, 0); !errors.Is(err, ErrTruncated) {
		t.Fatalf("hostile count: got %v, want ErrTruncated", err)
	}
	// Truncated body (index intact, member cut short).
	if _, err := OpenBundleLimited(b[:len(b)-10], 0, 0); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated member: got %v, want ErrTruncated", err)
	}
}
