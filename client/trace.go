package client

import (
	"context"
	"encoding/hex"
	"strconv"
	"strings"
	"time"
)

// Request tracing. Every request carries a W3C traceparent header:
// one trace-id per logical call (stable across retries, so all attempts
// of one Compress correlate in the server's access log) and a fresh
// span-id per attempt. The server echoes its request ID in
// X-Ceresz-Request-Id and returns per-stage timings in a Server-Timing
// trailer; the Traced call variants surface both so callers can split
// measured latency into server stages versus network/client overhead.

// ServerTiming is the server's per-stage breakdown of one request,
// parsed from the Server-Timing response trailer. Stages follow the
// request lifecycle: admission wait, codec-worker wait, body read,
// chunk-cache lookup, codec compute, response write. Total is the
// server's own wall time for the request; the gap between a
// client-measured latency and Total is network plus client overhead.
type ServerTiming struct {
	Admit  time.Duration
	Worker time.Duration
	Read   time.Duration
	Cache  time.Duration
	Codec  time.Duration
	Write  time.Duration
	Total  time.Duration
	// Valid is true when the trailer was present and parsed. Error
	// responses and old servers carry no trailer.
	Valid bool
}

// Stages returns the sum of the individual stage durations (excluding
// Total, which also covers unattributed handler time).
func (st ServerTiming) Stages() time.Duration {
	return st.Admit + st.Worker + st.Read + st.Cache + st.Codec + st.Write
}

// parseServerTiming parses a Server-Timing header value of the form
// "admit;dur=0.012, worker;dur=0.000, ..., total;dur=1.234" (durations
// in milliseconds, per the Server-Timing spec).
func parseServerTiming(h string) ServerTiming {
	var st ServerTiming
	if h == "" {
		return st
	}
	for _, entry := range strings.Split(h, ",") {
		entry = strings.TrimSpace(entry)
		name, rest, ok := strings.Cut(entry, ";")
		if !ok {
			continue
		}
		var ms float64
		found := false
		for _, param := range strings.Split(rest, ";") {
			if v, ok := strings.CutPrefix(strings.TrimSpace(param), "dur="); ok {
				if f, err := strconv.ParseFloat(v, 64); err == nil {
					ms, found = f, true
				}
			}
		}
		if !found {
			continue
		}
		d := time.Duration(ms * float64(time.Millisecond))
		switch name {
		case "admit":
			st.Admit, st.Valid = d, true
		case "worker":
			st.Worker, st.Valid = d, true
		case "read":
			st.Read, st.Valid = d, true
		case "cache":
			st.Cache, st.Valid = d, true
		case "codec":
			st.Codec, st.Valid = d, true
		case "write":
			st.Write, st.Valid = d, true
		case "total":
			st.Total, st.Valid = d, true
		}
	}
	return st
}

// Trace reports what one logical call (including retries) did on the
// wire. Populated by the *Traced call variants.
type Trace struct {
	// TraceID is the 32-hex-digit W3C trace-id shared by every attempt.
	TraceID string
	// RequestID is the server-assigned ID echoed in X-Ceresz-Request-Id
	// on the last attempt; it appears in server access logs and error
	// bodies.
	RequestID string
	// Attempts counts HTTP requests sent (1 = first try succeeded).
	Attempts int
	// Rejected429 counts attempts refused with 429 backpressure.
	Rejected429 int
	// Errors counts failed attempts of any kind (non-2xx or transport).
	Errors int
	// Status is the final HTTP status (0 if no response arrived).
	Status int
	// Server holds the stage timings from the last attempt's
	// Server-Timing trailer.
	Server ServerTiming
}

// traceIDHex renders 16 random bytes as the traceparent trace-id field.
func traceIDHex(hi, lo uint64) string {
	var b [16]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(hi >> (56 - 8*i))
		b[8+i] = byte(lo >> (56 - 8*i))
	}
	// The all-zero trace-id is invalid per W3C trace-context.
	if hi == 0 && lo == 0 {
		b[15] = 1
	}
	return hex.EncodeToString(b[:])
}

// spanIDHex renders 8 random bytes as the traceparent parent-id field.
func spanIDHex(v uint64) string {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (56 - 8*i))
	}
	if v == 0 {
		b[7] = 1
	}
	return hex.EncodeToString(b[:])
}

// newTraceID returns a fresh random trace-id in hex.
func (c *Client) newTraceID() string {
	c.mu.Lock()
	hi, lo := c.rng.Uint64(), c.rng.Uint64()
	c.mu.Unlock()
	return traceIDHex(hi, lo)
}

// newSpanID returns a fresh random span-id in hex.
func (c *Client) newSpanID() string {
	c.mu.Lock()
	v := c.rng.Uint64()
	c.mu.Unlock()
	return spanIDHex(v)
}

// traceparent assembles the header value for one attempt.
func traceparent(traceID, spanID string) string {
	return "00-" + traceID + "-" + spanID + "-01"
}

// CompressTraced is Compress returning wire-level trace detail.
func (c *Client) CompressTraced(ctx context.Context, data []float32, bound Bound) ([]byte, *Trace, error) {
	tr := &Trace{}
	out, err := c.compress(ctx, data, bound, tr)
	return out, tr, err
}

// Compress64Traced is Compress64 returning wire-level trace detail.
func (c *Client) Compress64Traced(ctx context.Context, data []float64, bound Bound) ([]byte, *Trace, error) {
	tr := &Trace{}
	out, err := c.compress64(ctx, data, bound, tr)
	return out, tr, err
}

// DecompressTraced is Decompress returning wire-level trace detail.
func (c *Client) DecompressTraced(ctx context.Context, framed []byte) ([]float32, *Trace, error) {
	tr := &Trace{}
	out, err := c.decompress(ctx, framed, tr)
	return out, tr, err
}

// Decompress64Traced is Decompress64 returning wire-level trace detail.
func (c *Client) Decompress64Traced(ctx context.Context, framed []byte) ([]float64, *Trace, error) {
	tr := &Trace{}
	out, err := c.decompress64(ctx, framed, tr)
	return out, tr, err
}

// BundleTraced is Bundle returning wire-level trace detail.
func (c *Client) BundleTraced(ctx context.Context, fields []BundleField) ([]byte, *Trace, error) {
	tr := &Trace{}
	out, err := c.bundle(ctx, fields, tr)
	return out, tr, err
}
