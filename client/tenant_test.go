package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// tenantRecorder captures the X-Ceresz-Tenant header of every request.
type tenantRecorder struct {
	mu      sync.Mutex
	headers []string
	present []bool
}

func (tr *tenantRecorder) record(r *http.Request) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	v, ok := r.Header["X-Ceresz-Tenant"]
	if ok {
		tr.headers = append(tr.headers, v[0])
	} else {
		tr.headers = append(tr.headers, "")
	}
	tr.present = append(tr.present, ok)
}

func TestTenantHeaderOnEveryRequest(t *testing.T) {
	rec := &tenantRecorder{}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec.record(r)
		if r.URL.Path == "/healthz/ready" || r.URL.Path == "/healthz" {
			w.Header().Set("Content-Type", "application/json")
			w.Write([]byte(`{"status":"ok"}`))
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	c := New(Config{BaseURL: ts.URL, Tenant: "acme", MaxRetries: -1})
	if _, err := c.Compress(context.Background(), []float32{1}, ABS(1e-3)); err != nil {
		t.Fatal(err)
	}
	if err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Ready(context.Background()); err != nil {
		t.Fatal(err)
	}

	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.headers) != 3 {
		t.Fatalf("saw %d requests, want 3", len(rec.headers))
	}
	for i, h := range rec.headers {
		if h != "acme" {
			t.Fatalf("request %d carried tenant %q, want \"acme\"", i, h)
		}
	}
}

func TestNoTenantHeaderByDefault(t *testing.T) {
	rec := &tenantRecorder{}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec.record(r)
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	c := New(Config{BaseURL: ts.URL, MaxRetries: -1})
	if _, err := c.Compress(context.Background(), []float32{1}, ABS(1e-3)); err != nil {
		t.Fatal(err)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.present) != 1 || rec.present[0] {
		t.Fatalf("untenanted client sent an X-Ceresz-Tenant header (%v)", rec.headers)
	}
}

// A proxy-origin tenant throttle (429 + Retry-After from cereszproxy)
// must be retried exactly like a direct-server 429: honor the hint, keep
// the tenant header on the retry, succeed on the next attempt.
func TestProxyTenantThrottleRetried(t *testing.T) {
	attempts := 0
	var retryTenant string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts++
		if attempts == 1 {
			// The shape cereszproxy emits for an exhausted tenant bucket.
			w.Header().Set("Retry-After", "0")
			http.Error(w, "proxy: tenant acme rate limited, retry later", http.StatusTooManyRequests)
			return
		}
		retryTenant = r.Header.Get("X-Ceresz-Tenant")
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	c := New(Config{
		BaseURL: ts.URL, Tenant: "acme",
		MaxRetries: 2, BaseBackoff: time.Millisecond, MaxBackoff: time.Millisecond,
	})
	_, trc, err := c.CompressTraced(context.Background(), []float32{1}, ABS(1e-3))
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Fatalf("server saw %d attempts, want 2 (one throttle, one retry)", attempts)
	}
	if trc.Rejected429 != 1 {
		t.Fatalf("trace counted %d 429s, want 1", trc.Rejected429)
	}
	if retryTenant != "acme" {
		t.Fatalf("retry carried tenant %q, want \"acme\"", retryTenant)
	}
}
