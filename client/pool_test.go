package client

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
)

// newCountingServer returns a stub server that counts accepted TCP
// connections: every request that cannot reuse a pooled connection
// shows up as a fresh dial here.
func newCountingServer(conns *atomic.Int64) *httptest.Server {
	ts := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte{1, 2, 3, 4})
	}))
	ts.Config.ConnState = func(c net.Conn, s http.ConnState) {
		if s == http.StateNew {
			conns.Add(1)
		}
	}
	ts.Start()
	return ts
}

// TestConnectionReuse pins the default transport's pooling: a burst of
// concurrent calls followed by more rounds of the same traffic must
// reuse the connections the first burst opened, not re-dial per
// request. (The stock http.DefaultTransport keeps only 2 idle
// connections per host, which made every load-generator worker beyond
// the second re-dial — and re-handshake — on almost every request.)
func TestConnectionReuse(t *testing.T) {
	var conns atomic.Int64
	ts := newCountingServer(&conns)
	defer ts.Close()

	const workers = 8
	const rounds = 4
	c := New(Config{BaseURL: ts.URL, MaxRetries: -1, MaxIdleConnsPerHost: workers})

	ctx := context.Background()
	for r := 0; r < rounds; r++ {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := c.Compress(ctx, []float32{1, 2, 3}, ABS(1e-3)); err != nil {
					t.Error(err)
				}
			}()
		}
		wg.Wait()
	}

	total := int64(workers * rounds)
	if got := conns.Load(); got > workers+2 {
		t.Errorf("server accepted %d connections for %d requests from %d workers; pool is not reusing connections",
			got, total, workers)
	}
}

// TestSequentialReusesOneConnection: back-to-back calls on one goroutine
// must ride a single pooled connection.
func TestSequentialReusesOneConnection(t *testing.T) {
	var conns atomic.Int64
	ts := newCountingServer(&conns)
	defer ts.Close()

	c := New(Config{BaseURL: ts.URL, MaxRetries: -1})
	ctx := context.Background()
	for i := 0; i < 16; i++ {
		if _, err := c.Compress(ctx, []float32{1, 2, 3}, ABS(1e-3)); err != nil {
			t.Fatal(err)
		}
	}
	if got := conns.Load(); got > 2 {
		t.Errorf("sequential requests opened %d connections, want 1 (pool reuse)", got)
	}
}
