// Package client is the Go client for cereszd (internal/server): raw
// float slices go up, CSZF framed streams come back, with context-aware
// retry and exponential backoff that honors the server's Retry-After
// backpressure hints. A Client is safe for concurrent use; its requests
// are rebuilt from in-memory payloads, so every retry sends a complete
// body.
package client

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Bound mirrors the server's error-bound query parameters.
type Bound struct {
	// Rel selects value-range-relative mode (the paper's REL); false = ABS.
	Rel bool
	// Eps is the bound value (ε for ABS, λ for REL). Must be positive.
	Eps float64
}

// ABS returns an absolute error bound.
func ABS(eps float64) Bound { return Bound{Eps: eps} }

// REL returns a value-range-relative bound.
func REL(lambda float64) Bound { return Bound{Rel: true, Eps: lambda} }

func (b Bound) mode() string {
	if b.Rel {
		return "rel"
	}
	return "abs"
}

// Config tunes a Client. The zero value retries 4 times with jittered
// exponential backoff starting at 100ms, capped at 5s.
type Config struct {
	// BaseURL is the server root, e.g. "http://localhost:8775".
	BaseURL string
	// HTTPClient overrides the transport (nil = http.DefaultClient).
	HTTPClient *http.Client
	// MaxRetries bounds re-sends after a retryable failure (<0 = none).
	MaxRetries int
	// BaseBackoff is the first retry delay; it doubles per attempt.
	BaseBackoff time.Duration
	// MaxBackoff caps the delay between attempts.
	MaxBackoff time.Duration
	// ChunkElems asks the server to frame compress responses every N
	// elements (0 = server default).
	ChunkElems int
	// MaxIdleConnsPerHost sizes the default transport's connection pool
	// (0 = 64). Keep it at or above the caller's concurrency so every
	// in-flight request reuses a warm connection instead of re-dialing.
	// Ignored when HTTPClient is set.
	MaxIdleConnsPerHost int
	// Tenant tags every request with an X-Ceresz-Tenant header — the
	// identity cereszproxy's per-tenant QoS buckets key on ("" = untagged;
	// the proxy pools untagged traffic into one shared bucket). A proxy
	// throttle arrives as a 429 with Retry-After and is retried with the
	// same backoff discipline as a direct server 429.
	Tenant string
}

// Client talks to one cereszd instance.
type Client struct {
	cfg  Config
	http *http.Client

	mu  sync.Mutex
	rng *rand.Rand
}

// defaultHTTPClient builds the package's transport: DefaultTransport's
// dialer, proxy and TLS behavior, but with a connection pool sized for
// many concurrent requests against one host. http.DefaultTransport keeps
// only 2 idle connections per host, so a k-way load generator would
// re-dial (and re-handshake) on almost every request beyond k=2; the
// explicit idle timeout keeps pooled connections from outliving the
// server's own keep-alive window.
func defaultHTTPClient(maxIdlePerHost int) *http.Client {
	if maxIdlePerHost <= 0 {
		maxIdlePerHost = 64
	}
	t := http.DefaultTransport.(*http.Transport).Clone()
	t.MaxIdleConnsPerHost = maxIdlePerHost
	if t.MaxIdleConns < maxIdlePerHost {
		t.MaxIdleConns = maxIdlePerHost
	}
	t.IdleConnTimeout = 90 * time.Second
	return &http.Client{Transport: t}
}

// New returns a Client for cfg.BaseURL.
func New(cfg Config) *Client {
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = defaultHTTPClient(cfg.MaxIdleConnsPerHost)
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 4
	}
	if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 100 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	return &Client{
		cfg:  cfg,
		http: cfg.HTTPClient,
		rng:  rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

// StatusError reports a non-2xx response that was not retried to success.
type StatusError struct {
	Code int
	Body string
	// RequestID is the server-assigned ID from X-Ceresz-Request-Id,
	// when present — quote it to correlate with server access logs.
	RequestID string
}

func (e *StatusError) Error() string {
	if e.RequestID != "" && !strings.Contains(e.Body, e.RequestID) {
		return fmt.Sprintf("client: server returned %d (request %s): %s",
			e.Code, e.RequestID, strings.TrimSpace(e.Body))
	}
	return fmt.Sprintf("client: server returned %d: %s", e.Code, strings.TrimSpace(e.Body))
}

// retryable reports whether a status is worth another attempt: explicit
// backpressure (429), drain/overload (503) and transient gateway failures.
func retryable(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable,
		http.StatusBadGateway, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// backoff computes the delay before attempt (0-based), honoring a
// Retry-After header when the server sent one.
func (c *Client) backoff(attempt int, retryAfter string) time.Duration {
	if retryAfter != "" {
		if secs, err := strconv.Atoi(retryAfter); err == nil && secs >= 0 {
			return time.Duration(secs) * time.Second
		}
		if t, err := http.ParseTime(retryAfter); err == nil {
			if d := time.Until(t); d > 0 {
				return d
			}
			return 0
		}
	}
	d := c.cfg.BaseBackoff << attempt
	if d > c.cfg.MaxBackoff {
		d = c.cfg.MaxBackoff
	}
	// Full jitter: a fleet of clients rejected together must not retry
	// together.
	c.mu.Lock()
	d = time.Duration(c.rng.Int63n(int64(d) + 1))
	c.mu.Unlock()
	return d
}

// do POSTs body to path with retry. The returned response body is fully
// read and the connection released. Every attempt carries a traceparent
// header — one trace-id for the whole call, a fresh span-id per attempt
// — and when tr is non-nil the attempt/rejection counts, the server's
// request ID and the Server-Timing trailer are recorded into it.
func (c *Client) do(ctx context.Context, path string, body []byte, tr *Trace) ([]byte, http.Header, error) {
	traceID := c.newTraceID()
	if tr != nil {
		tr.TraceID = traceID
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.cfg.BaseURL+path, bytes.NewReader(body))
		if err != nil {
			return nil, nil, err
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		req.Header.Set("Traceparent", traceparent(traceID, c.newSpanID()))
		c.setTenant(req)
		if tr != nil {
			tr.Attempts++
		}
		resp, err := c.http.Do(req)
		var retryAfter string
		if err != nil {
			lastErr = err
			if tr != nil {
				tr.Errors++
				tr.Status = 0
			}
		} else {
			reqID := resp.Header.Get("X-Ceresz-Request-Id")
			out, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if tr != nil {
				tr.Status = resp.StatusCode
				tr.RequestID = reqID
				// Trailers materialize only after the body is drained.
				if st := parseServerTiming(resp.Trailer.Get("Server-Timing")); st.Valid {
					tr.Server = st
				}
				if resp.StatusCode == http.StatusTooManyRequests {
					tr.Rejected429++
				}
				if rerr != nil || resp.StatusCode/100 != 2 {
					tr.Errors++
				}
			}
			if rerr != nil {
				lastErr = rerr
			} else if resp.StatusCode/100 == 2 {
				return out, resp.Header, nil
			} else {
				lastErr = &StatusError{Code: resp.StatusCode, Body: string(out), RequestID: reqID}
				if !retryable(resp.StatusCode) {
					return nil, resp.Header, lastErr
				}
				retryAfter = resp.Header.Get("Retry-After")
			}
		}
		if attempt >= c.cfg.MaxRetries {
			return nil, nil, lastErr
		}
		select {
		case <-time.After(c.backoff(attempt, retryAfter)):
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		}
	}
}

// compressQuery renders the /v1/compress query string.
func (c *Client) compressQuery(bound Bound, elem string) string {
	q := fmt.Sprintf("?mode=%s&eps=%s&elem=%s", bound.mode(),
		strconv.FormatFloat(bound.Eps, 'g', -1, 64), elem)
	if c.cfg.ChunkElems > 0 {
		q += "&chunk=" + strconv.Itoa(c.cfg.ChunkElems)
	}
	return q
}

// Compress sends data and returns the server's CSZF framed stream — the
// same bytes StreamWriter would produce locally with matching chunking.
func (c *Client) Compress(ctx context.Context, data []float32, bound Bound) ([]byte, error) {
	return c.compress(ctx, data, bound, nil)
}

func (c *Client) compress(ctx context.Context, data []float32, bound Bound, tr *Trace) ([]byte, error) {
	body := make([]byte, 4*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint32(body[4*i:], math.Float32bits(v))
	}
	out, _, err := c.do(ctx, "/v1/compress"+c.compressQuery(bound, "f32"), body, tr)
	return out, err
}

// Compress64 is Compress for double precision.
func (c *Client) Compress64(ctx context.Context, data []float64, bound Bound) ([]byte, error) {
	return c.compress64(ctx, data, bound, nil)
}

func (c *Client) compress64(ctx context.Context, data []float64, bound Bound, tr *Trace) ([]byte, error) {
	body := make([]byte, 8*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint64(body[8*i:], math.Float64bits(v))
	}
	out, _, err := c.do(ctx, "/v1/compress"+c.compressQuery(bound, "f64"), body, tr)
	return out, err
}

// Decompress sends a CSZF framed stream and returns the float32 values.
func (c *Client) Decompress(ctx context.Context, framed []byte) ([]float32, error) {
	return c.decompress(ctx, framed, nil)
}

func (c *Client) decompress(ctx context.Context, framed []byte, tr *Trace) ([]float32, error) {
	raw, _, err := c.do(ctx, "/v1/decompress?elem=f32", framed, tr)
	if err != nil {
		return nil, err
	}
	if len(raw)%4 != 0 {
		return nil, fmt.Errorf("client: response length %d is not a multiple of 4", len(raw))
	}
	out := make([]float32, len(raw)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return out, nil
}

// Decompress64 sends a CSZF framed stream of float64 chunks.
func (c *Client) Decompress64(ctx context.Context, framed []byte) ([]float64, error) {
	return c.decompress64(ctx, framed, nil)
}

func (c *Client) decompress64(ctx context.Context, framed []byte, tr *Trace) ([]float64, error) {
	raw, _, err := c.do(ctx, "/v1/decompress?elem=f64", framed, tr)
	if err != nil {
		return nil, err
	}
	if len(raw)%8 != 0 {
		return nil, fmt.Errorf("client: response length %d is not a multiple of 8", len(raw))
	}
	out := make([]float64, len(raw)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return out, nil
}

// BundleField describes one field of a Bundle call.
type BundleField struct {
	Name string
	// Dims is the field's grid; zero entries normalize to 1.
	Dims [3]int
	// Bound is the field's error bound.
	Bound Bound
	// F32 or F64 holds the data (exactly one must be set).
	F32 []float32
	F64 []float64
}

// Bundle compresses the fields into one CSZB bundle server-side.
func (c *Client) Bundle(ctx context.Context, fields []BundleField) ([]byte, error) {
	return c.bundle(ctx, fields, nil)
}

func (c *Client) bundle(ctx context.Context, fields []BundleField, tr *Trace) ([]byte, error) {
	type spec struct {
		Name string  `json:"name"`
		Dims [3]int  `json:"dims"`
		Elem string  `json:"elem"`
		Mode string  `json:"mode"`
		Eps  float64 `json:"eps"`
	}
	specs := make([]spec, len(fields))
	var data bytes.Buffer
	for i, f := range fields {
		specs[i] = spec{Name: f.Name, Dims: f.Dims, Mode: f.Bound.mode(), Eps: f.Bound.Eps}
		switch {
		case f.F32 != nil && f.F64 == nil:
			specs[i].Elem = "f32"
			for _, v := range f.F32 {
				var b [4]byte
				binary.LittleEndian.PutUint32(b[:], math.Float32bits(v))
				data.Write(b[:])
			}
		case f.F64 != nil && f.F32 == nil:
			specs[i].Elem = "f64"
			for _, v := range f.F64 {
				var b [8]byte
				binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
				data.Write(b[:])
			}
		default:
			return nil, fmt.Errorf("client: field %q must set exactly one of F32/F64", f.Name)
		}
	}
	manifest, err := json.Marshal(specs)
	if err != nil {
		return nil, err
	}
	body := make([]byte, 0, 4+len(manifest)+data.Len())
	body = binary.LittleEndian.AppendUint32(body, uint32(len(manifest)))
	body = append(body, manifest...)
	body = append(body, data.Bytes()...)
	out, _, err := c.do(ctx, "/v1/bundle", body, tr)
	return out, err
}

// setTenant stamps the configured tenant identity onto req. Every
// request carries it — data paths and probes alike — so multi-tenant
// proxies attribute all of a client's traffic to one identity.
func (c *Client) setTenant(req *http.Request) {
	if c.cfg.Tenant != "" {
		req.Header.Set("X-Ceresz-Tenant", c.cfg.Tenant)
	}
}

// Health probes /healthz; nil means the server is up and not draining.
func (c *Client) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.cfg.BaseURL+"/healthz", nil)
	if err != nil {
		return err
	}
	c.setTenant(req)
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return &StatusError{Code: resp.StatusCode, Body: string(body)}
	}
	return nil
}

// SLOState is one burning objective in a degraded readiness body. Field
// names mirror the server's /healthz/ready JSON.
type SLOState struct {
	Spec            string  `json:"spec"`
	BurnRate5m      float64 `json:"burn_rate_5m"`
	BudgetRemaining float64 `json:"budget_remaining"`
}

// Readiness is the decoded /healthz/ready body: "ok", "degraded" (still
// serving, but an SLO is burning fast — SLO lists the offenders), or the
// 503 states "starting"/"draining".
type Readiness struct {
	Status string     `json:"status"`
	SLO    []SLOState `json:"slo,omitempty"`
}

// Degraded reports whether the server answered ready-but-degraded.
func (r Readiness) Degraded() bool { return r.Status == "degraded" }

// Ready probes /healthz/ready and decodes the body detail. A non-200
// answer returns the Readiness (Status "starting"/"draining" when the
// body parsed) alongside a *StatusError, so callers can distinguish a
// drain from a dead server.
func (c *Client) Ready(ctx context.Context) (Readiness, error) {
	var rd Readiness
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.cfg.BaseURL+"/healthz/ready", nil)
	if err != nil {
		return rd, err
	}
	c.setTenant(req)
	resp, err := c.http.Do(req)
	if err != nil {
		return rd, err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	_ = json.Unmarshal(body, &rd)
	if resp.StatusCode != http.StatusOK {
		return rd, &StatusError{Code: resp.StatusCode, Body: string(body)}
	}
	return rd, nil
}
