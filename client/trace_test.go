package client

import (
	"context"
	"encoding/binary"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestParseServerTiming(t *testing.T) {
	st := parseServerTiming("admit;dur=0.010, worker;dur=0.200, read;dur=1.500, cache;dur=0.050, codec;dur=40.000, write;dur=2.250, total;dur=44.100")
	if !st.Valid {
		t.Fatal("valid header not recognized")
	}
	want := ServerTiming{
		Admit: 10 * time.Microsecond, Worker: 200 * time.Microsecond,
		Read: 1500 * time.Microsecond, Cache: 50 * time.Microsecond,
		Codec: 40 * time.Millisecond,
		Write: 2250 * time.Microsecond, Total: 44100 * time.Microsecond,
		Valid: true,
	}
	if st != want {
		t.Fatalf("parsed %+v, want %+v", st, want)
	}
	if st.Stages() != st.Admit+st.Worker+st.Read+st.Cache+st.Codec+st.Write {
		t.Fatal("Stages() does not sum the stage fields")
	}

	if parseServerTiming("").Valid {
		t.Fatal("empty header parsed as valid")
	}
	if parseServerTiming("cache;desc=hit").Valid {
		t.Fatal("unrelated Server-Timing entries parsed as valid")
	}
	// Unknown metrics are skipped, known ones still land.
	st = parseServerTiming(`db;dur=3, codec;dur=1.000`)
	if !st.Valid || st.Codec != time.Millisecond {
		t.Fatalf("mixed header: %+v", st)
	}
}

func TestTraceparentFormat(t *testing.T) {
	c := New(Config{BaseURL: "http://unused"})
	tid := c.newTraceID()
	if len(tid) != 32 || strings.ToLower(tid) != tid {
		t.Fatalf("trace-id %q not 32 lower hex digits", tid)
	}
	sid := c.newSpanID()
	if len(sid) != 16 {
		t.Fatalf("span-id %q not 16 hex digits", sid)
	}
	tp := traceparent(tid, sid)
	if len(tp) != 55 || tp[:3] != "00-" || tp[35] != '-' || tp[52] != '-' || tp[53:] != "01" {
		t.Fatalf("traceparent %q malformed", tp)
	}
	if c.newTraceID() == tid {
		t.Fatal("consecutive trace ids collide")
	}
	// The all-zero ids are invalid on the wire.
	if traceIDHex(0, 0) == strings.Repeat("0", 32) {
		t.Fatal("zero trace-id not avoided")
	}
	if spanIDHex(0) == strings.Repeat("0", 16) {
		t.Fatal("zero span-id not avoided")
	}
}

// TestDoTracePropagation drives do() against a stub server: one trace-id
// across attempts, fresh span-ids, request-id capture, 429 counting and
// trailer parsing.
func TestDoTracePropagation(t *testing.T) {
	var traceparents []string
	attempts := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts++
		traceparents = append(traceparents, r.Header.Get("Traceparent"))
		w.Header().Set("X-Ceresz-Request-Id", "feedfacefeedfacefeedfacefeedface")
		if attempts == 1 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, "request feedfacefeedfacefeedfacefeedface: backpressure", http.StatusTooManyRequests)
			return
		}
		w.Header().Set("Trailer", "Server-Timing")
		w.WriteHeader(http.StatusOK)
		w.Write([]byte{0, 0, 0, 0, 0, 0, 0, 0})
		w.Header().Set("Server-Timing", "admit;dur=0.001, worker;dur=0.002, read;dur=0.100, codec;dur=1.000, write;dur=0.200, total;dur=1.400")
	}))
	defer ts.Close()

	c := New(Config{BaseURL: ts.URL, MaxRetries: 2, BaseBackoff: time.Millisecond, MaxBackoff: time.Millisecond})
	out, tr, err := c.Compress64Traced(context.Background(), []float64{1}, ABS(1e-3))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 8 {
		t.Fatalf("body length %d", len(out))
	}
	if tr.Attempts != 2 || tr.Rejected429 != 1 || tr.Errors != 1 || tr.Status != 200 {
		t.Fatalf("trace counts: %+v", tr)
	}
	if tr.RequestID != "feedfacefeedfacefeedfacefeedface" {
		t.Fatalf("request id %q", tr.RequestID)
	}
	if !tr.Server.Valid || tr.Server.Codec != time.Millisecond {
		t.Fatalf("server timing %+v", tr.Server)
	}
	if len(traceparents) != 2 {
		t.Fatalf("saw %d traceparent headers", len(traceparents))
	}
	// Same trace-id on both attempts, fresh span-ids.
	for _, tp := range traceparents {
		if len(tp) != 55 || tp[3:35] != tr.TraceID {
			t.Fatalf("traceparent %q does not carry trace id %q", tp, tr.TraceID)
		}
	}
	if traceparents[0][36:52] == traceparents[1][36:52] {
		t.Fatal("span-id reused across attempts")
	}
}

func TestStatusErrorRequestID(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Ceresz-Request-Id", "deadbeefdeadbeefdeadbeefdeadbeef")
		http.Error(w, "eps must be positive", http.StatusBadRequest)
	}))
	defer ts.Close()

	c := New(Config{BaseURL: ts.URL, MaxRetries: -1})
	_, err := c.Decompress(context.Background(), []byte("CSZF"))
	var se *StatusError
	if !errors.As(err, &se) {
		t.Fatalf("error %v is not a *StatusError", err)
	}
	if se.Code != http.StatusBadRequest || se.RequestID != "deadbeefdeadbeefdeadbeefdeadbeef" {
		t.Fatalf("StatusError = %+v", se)
	}
	if !strings.Contains(se.Error(), se.RequestID) {
		t.Fatalf("error text %q omits the request id", se.Error())
	}
}

// TestCompressEncodesBody pins the byte layout the traced refactor must
// preserve: little-endian IEEE-754, 4 bytes per float32.
func TestCompressEncodesBody(t *testing.T) {
	var got []byte
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b := make([]byte, 8)
		r.Body.Read(b)
		got = b
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	c := New(Config{BaseURL: ts.URL, MaxRetries: -1})
	if _, err := c.Compress(context.Background(), []float32{1.5, -2.25}, ABS(1e-3)); err != nil {
		t.Fatal(err)
	}
	if math.Float32frombits(binary.LittleEndian.Uint32(got)) != 1.5 ||
		math.Float32frombits(binary.LittleEndian.Uint32(got[4:])) != -2.25 {
		t.Fatalf("body bytes %x", got)
	}
}
