package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestReadyDegraded pins the degraded-but-200 decode: the server keeps
// answering 200 while an SLO burns, and Ready surfaces the offending
// objectives without an error.
func TestReadyDegraded(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz/ready" {
			t.Errorf("probe hit %s", r.URL.Path)
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"status":"degraded","slo":[{"spec":"compress:p99<25ms:99.9","burn_rate_5m":14.2,"budget_remaining":-0.3}]}`))
	}))
	defer ts.Close()

	c := New(Config{BaseURL: ts.URL})
	rd, err := c.Ready(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !rd.Degraded() {
		t.Fatalf("readiness %+v not degraded", rd)
	}
	if len(rd.SLO) != 1 || rd.SLO[0].Spec != "compress:p99<25ms:99.9" ||
		rd.SLO[0].BurnRate5m != 14.2 || rd.SLO[0].BudgetRemaining != -0.3 {
		t.Fatalf("slo detail %+v", rd.SLO)
	}
}

// TestReadyOK pins the healthy decode.
func TestReadyOK(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer ts.Close()

	rd, err := New(Config{BaseURL: ts.URL}).Ready(context.Background())
	if err != nil || rd.Status != "ok" || rd.Degraded() {
		t.Fatalf("readiness %+v, err %v", rd, err)
	}
}

// TestReadyDraining pins the 503 path: the body still decodes so callers
// can tell a drain from a dead server, and the StatusError carries the
// code.
func TestReadyDraining(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"status":"draining"}`))
	}))
	defer ts.Close()

	rd, err := New(Config{BaseURL: ts.URL}).Ready(context.Background())
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("err %v, want 503 StatusError", err)
	}
	if rd.Status != "draining" {
		t.Fatalf("readiness %+v, want draining parsed alongside the error", rd)
	}
}
