module ceresz

go 1.22
