package ceresz

import (
	"sync"
	"testing"
)

// TestTelemetryConcurrentCompress exercises the host-path registry under
// -race: several goroutines compress in parallel (each itself fanning out
// over worker goroutines) while telemetry records.
func TestTelemetryConcurrentCompress(t *testing.T) {
	EnableTelemetry()
	defer DisableTelemetry()
	data := make([]float32, 1<<14)
	for i := range data {
		data[i] = float32(i%97) * 0.25
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			comp, _, err := Compress(nil, data, REL(1e-3), Options{Workers: 4})
			if err != nil {
				t.Errorf("compress: %v", err)
				return
			}
			if _, err := Decompress(nil, comp); err != nil {
				t.Errorf("decompress: %v", err)
			}
		}()
	}
	wg.Wait()
	snap := HostTelemetry()
	if snap.Counters["core.compress.blocks"] == 0 {
		t.Fatalf("no blocks counted:\n%s", snap)
	}
	if snap.Timers["core.compress"].Count < 4 {
		t.Fatalf("compress timer count %d, want >= 4", snap.Timers["core.compress"].Count)
	}
	if snap.Gauges["core.workers.active.max"] < 1 {
		t.Fatalf("worker occupancy never recorded:\n%s", snap)
	}
}

func TestSimResultTelemetry(t *testing.T) {
	data := make([]float32, 2048)
	for i := range data {
		data[i] = float32(i) / 17
	}
	res, err := SimulateCompress(data, REL(1e-3), MeshConfig{Rows: 2, Cols: 4})
	if err != nil {
		t.Fatal(err)
	}
	snap := res.Telemetry
	if snap.Counters["sim.cycles"] != res.Cycles {
		t.Fatalf("sim.cycles = %d, want %d", snap.Counters["sim.cycles"], res.Cycles)
	}
	if snap.Counters["sim.events"] == 0 || snap.Gauges["sim.active_pes"] == 0 {
		t.Fatalf("simulation telemetry empty:\n%s", snap)
	}
	if snap.Timers["sim.run_wall"].Count != 1 {
		t.Fatalf("run wall timer observed %d times", snap.Timers["sim.run_wall"].Count)
	}
	if snap.Counters["plan.group00.est_cycles"] == 0 ||
		snap.Counters["plan.group00.compute_cycles"] == 0 {
		t.Fatalf("per-group load missing:\n%s", snap)
	}

	dres, err := SimulateDecompress(res.Bytes, MeshConfig{Rows: 2, Cols: 4})
	if err != nil {
		t.Fatal(err)
	}
	if dres.Telemetry.Counters["sim.cycles"] != dres.Cycles {
		t.Fatalf("decompress telemetry cycles %d, want %d",
			dres.Telemetry.Counters["sim.cycles"], dres.Cycles)
	}
}
