package ceresz

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"slices"

	"ceresz/internal/core"
	"ceresz/internal/telemetry"
)

// Framed-stream instruments (Default registry; active after
// EnableTelemetry). One timer observation and a few counter adds per
// chunk, so the cost is independent of chunk size.
var (
	telStreamWrite     = telemetry.T("stream.write_chunk")
	telStreamRead      = telemetry.T("stream.read_chunk")
	telStreamChunks    = telemetry.C("stream.chunks")
	telStreamRawBytes  = telemetry.C("stream.bytes_raw")
	telStreamCompBytes = telemetry.C("stream.bytes_compressed")
	telStreamChunkSize = telemetry.H("stream.chunk_compressed_bytes")
)

// Compress64 appends the CereSZ stream for float64 data to dst. Double
// precision admits error bounds far below float32's representable
// resolution (several SDRBench archives are double precision).
func Compress64(dst []byte, data []float64, bound Bound, opts Options) ([]byte, *Stats, error) {
	return core.Compress64(dst, data, opts.coreOptions(bound))
}

// Compress64Into is Compress64 writing its statistics into a
// caller-provided Stats; with Workers: 1 and sufficient dst capacity it
// performs zero allocations in steady state.
func Compress64Into(dst []byte, data []float64, bound Bound, opts Options, stats *Stats) ([]byte, error) {
	return core.Compress64Into(dst, data, opts.coreOptions(bound), stats)
}

// Compress64WithEps is Compress64 with a pre-resolved absolute ε.
func Compress64WithEps(dst []byte, data []float64, eps float64, opts Options) ([]byte, *Stats, error) {
	return core.Compress64WithEps(dst, data, eps, opts.coreOptions(Bound{}))
}

// Decompress64 reconstructs float64 data from a Compress64 stream. It runs
// sequentially; use Decompress64With to shard across CPU cores.
func Decompress64(dst []float64, comp []byte) ([]float64, error) {
	out, _, err := core.Decompress64(dst, comp, 0)
	return out, err
}

// Decompress64With is Decompress64 honoring opts.Workers.
func Decompress64With(dst []float64, comp []byte, opts Options) ([]float64, error) {
	out, _, err := core.Decompress64(dst, comp, opts.Workers)
	return out, err
}

// Elem identifies a stream's element type (Float32 or Float64).
type Elem = core.Elem

// Element types.
const (
	Float32 = core.Float32
	Float64 = core.Float64
)

// ElemOf reports a stream's element type without parsing the rest of it.
func ElemOf(comp []byte) (Elem, error) { return core.ElemOf(comp) }

// Framed streaming: each chunk is an independent CereSZ stream wrapped in
// a small frame, so an unbounded instrument feed can be compressed as it
// arrives and any chunk can be decoded without the others — the inline
// compression scenario of the paper's introduction (LCLS produces raw
// snapshots at 250 GB/s; RTM emits terabytes per timestamp).
//
// Frame layout: 4-byte magic "CSZF", uint32 little-endian payload length,
// payload (one CereSZ container). A REL bound resolves per chunk — each
// chunk's ε follows its own value range; use ABS for a uniform guarantee.

var frameMagic = [4]byte{'C', 'S', 'Z', 'F'}

// frameHeaderSize is the per-chunk framing overhead in bytes.
const frameHeaderSize = 8

// maxFramePayload bounds a single chunk's compressed size.
const maxFramePayload = 1 << 31

// frameReadStep caps how much of a frame body is allocated ahead of the
// bytes actually arriving, so a hostile length field cannot drive a huge
// make before the reader discovers the body is absent.
const frameReadStep = 1 << 20

// ErrStreamClosed is returned by operations on a closed StreamWriter.
var ErrStreamClosed = errors.New("ceresz: stream writer closed")

// ErrTruncated reports input that ends mid-frame or mid-index: the length
// fields promise more bytes than the source delivers. Typed so servers can
// map it to a 4xx instead of a generic decode failure.
var ErrTruncated = errors.New("ceresz: truncated input")

// ErrFrameTooLarge reports a frame, element count or bundle member that
// exceeds the configured decode limits (StreamReader.SetLimits,
// OpenBundleLimited) or the format's hard cap.
var ErrFrameTooLarge = errors.New("ceresz: frame exceeds limit")

// StreamWriter frames independently-decodable compressed chunks onto an
// io.Writer. Not safe for concurrent use.
type StreamWriter struct {
	w      io.Writer
	bound  Bound
	opts   Options
	buf    []byte
	stats  Stats
	closed bool
	// Chunks counts frames written so far.
	Chunks int
	// RawBytes and CompressedBytes accumulate totals.
	RawBytes, CompressedBytes int64
}

// NewStreamWriter returns a StreamWriter compressing each chunk under
// bound with opts.
func NewStreamWriter(w io.Writer, bound Bound, opts Options) *StreamWriter {
	return &StreamWriter{w: w, bound: bound, opts: opts}
}

// WriteChunk compresses one float32 chunk and writes its frame. After the
// first chunk the writer's compression buffer is warm, so with Workers: 1
// the only steady-state allocation is the returned Stats snapshot.
func (sw *StreamWriter) WriteChunk(data []float32) (*Stats, error) {
	if sw.closed {
		return nil, ErrStreamClosed
	}
	defer telStreamWrite.Start().End()
	var err error
	sw.buf, err = CompressInto(sw.buf[:0], data, sw.bound, sw.opts, &sw.stats)
	if err != nil {
		return nil, err
	}
	if err := sw.writeFrame(sw.buf); err != nil {
		return nil, err
	}
	sw.RawBytes += int64(4 * len(data))
	sw.CompressedBytes += int64(frameHeaderSize + len(sw.buf))
	sw.Chunks++
	sw.recordChunk(int64(4 * len(data)))
	out := sw.stats
	return &out, nil
}

// WriteChunk64 compresses one float64 chunk and writes its frame.
func (sw *StreamWriter) WriteChunk64(data []float64) (*Stats, error) {
	if sw.closed {
		return nil, ErrStreamClosed
	}
	defer telStreamWrite.Start().End()
	var err error
	sw.buf, err = Compress64Into(sw.buf[:0], data, sw.bound, sw.opts, &sw.stats)
	if err != nil {
		return nil, err
	}
	if err := sw.writeFrame(sw.buf); err != nil {
		return nil, err
	}
	sw.RawBytes += int64(8 * len(data))
	sw.CompressedBytes += int64(frameHeaderSize + len(sw.buf))
	sw.Chunks++
	sw.recordChunk(int64(8 * len(data)))
	out := sw.stats
	return &out, nil
}

// recordChunk publishes one frame's accounting to the Default registry.
func (sw *StreamWriter) recordChunk(rawBytes int64) {
	if !telemetry.Enabled() {
		return
	}
	telStreamChunks.Add(1)
	telStreamRawBytes.Add(rawBytes)
	telStreamCompBytes.Add(int64(frameHeaderSize + len(sw.buf)))
	telStreamChunkSize.Observe(int64(len(sw.buf)))
}

func (sw *StreamWriter) writeFrame(payload []byte) error {
	if len(payload) >= maxFramePayload {
		return fmt.Errorf("ceresz: chunk payload %d exceeds frame limit", len(payload))
	}
	var hdr [frameHeaderSize]byte
	copy(hdr[:4], frameMagic[:])
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(payload)))
	if _, err := sw.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := sw.w.Write(payload)
	return err
}

// Ratio returns the stream-wide compression ratio so far (framing
// included).
func (sw *StreamWriter) Ratio() float64 {
	if sw.CompressedBytes == 0 {
		return 0
	}
	return float64(sw.RawBytes) / float64(sw.CompressedBytes)
}

// Close marks the writer closed. It does not close the underlying writer.
func (sw *StreamWriter) Close() error {
	sw.closed = true
	return nil
}

// StreamReader iterates over the frames written by StreamWriter.
// Not safe for concurrent use.
type StreamReader struct {
	r        io.Reader
	buf      []byte
	out      []float32
	hdr      [frameHeaderSize]byte
	maxFrame int
	maxElems int
	workers  int
}

// NewStreamReader returns a StreamReader over r.
func NewStreamReader(r io.Reader) *StreamReader {
	return &StreamReader{r: r}
}

// Reset points the reader at a new source while keeping its internal
// buffers (and limits) warm — the steady-state form for servers decoding
// one framed stream per request.
func (sr *StreamReader) Reset(r io.Reader) {
	sr.r = r
}

// SetLimits caps what a single frame may cost to decode: maxFrameBytes
// bounds the compressed payload length accepted from a frame header, and
// maxElements bounds the decoded element count a payload may declare.
// Zero leaves the respective limit at the format's hard cap. Violations
// surface as ErrFrameTooLarge before any decode-sized allocation happens —
// set both when reading untrusted input.
func (sr *StreamReader) SetLimits(maxFrameBytes, maxElements int) {
	sr.maxFrame = maxFrameBytes
	sr.maxElems = maxElements
}

// SetWorkers bounds the parallelism each frame is decoded with, following
// Options.Workers semantics (0/1 sequential, > 1 sharded over the host
// pool, negative = all cores). Frames are still delivered strictly in
// stream order; only the blocks inside one frame decode in parallel, so
// the decoded values are identical at any setting. The setting survives
// Reset.
func (sr *StreamReader) SetWorkers(n int) {
	sr.workers = n
}

// next reads one frame payload into the internal buffer.
func (sr *StreamReader) next() ([]byte, error) {
	if _, err := io.ReadFull(sr.r, sr.hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: reading frame header: %v", ErrTruncated, err)
	}
	if [4]byte(sr.hdr[:4]) != frameMagic {
		return nil, fmt.Errorf("%w: bad frame magic %q", core.ErrBadStream, sr.hdr[:4])
	}
	n := int(binary.LittleEndian.Uint32(sr.hdr[4:]))
	if n >= maxFramePayload {
		return nil, fmt.Errorf("%w: frame length %d exceeds format cap", ErrFrameTooLarge, n)
	}
	if sr.maxFrame > 0 && n > sr.maxFrame {
		return nil, fmt.Errorf("%w: frame length %d exceeds configured cap %d", ErrFrameTooLarge, n, sr.maxFrame)
	}
	// Fill the buffer in bounded steps so the allocation tracks the bytes
	// that actually arrive instead of trusting the header's length.
	sr.buf = sr.buf[:0]
	for len(sr.buf) < n {
		step := n - len(sr.buf)
		if step > frameReadStep {
			step = frameReadStep
		}
		start := len(sr.buf)
		sr.buf = slices.Grow(sr.buf, step)[:start+step]
		if _, err := io.ReadFull(sr.r, sr.buf[start:]); err != nil {
			return nil, fmt.Errorf("%w: frame promises %d bytes, source ends at %d (%v)", ErrTruncated, n, start, err)
		}
	}
	// Validate the payload's element count before Decompress sizes any
	// output: an untrusted header must not drive a decode-sized make.
	if sr.maxElems > 0 {
		meta, err := core.ParseHeader(sr.buf)
		if err != nil {
			return nil, err
		}
		if meta.Elements > sr.maxElems {
			return nil, fmt.Errorf("%w: frame declares %d elements, cap is %d", ErrFrameTooLarge, meta.Elements, sr.maxElems)
		}
	}
	return sr.buf, nil
}

// Next decodes the next float32 chunk. It returns io.EOF after the last
// frame. The returned slice is owned by the caller.
func (sr *StreamReader) Next() ([]float32, error) {
	defer telStreamRead.Start().End()
	payload, err := sr.next()
	if err != nil {
		return nil, err
	}
	sr.out, _, err = core.Decompress(sr.out[:0], payload, sr.workers)
	if err != nil {
		return nil, err
	}
	out := make([]float32, len(sr.out))
	copy(out, sr.out)
	return out, nil
}

// NextInto decodes the next float32 chunk appending to dst (which may be
// nil), returning the extended slice. Unlike Next it performs no final
// copy into a fresh slice; pass dst[:0] with warm capacity to reuse one
// buffer across chunks (the steady-state counterpart of WriteChunk).
func (sr *StreamReader) NextInto(dst []float32) ([]float32, error) {
	defer telStreamRead.Start().End()
	payload, err := sr.next()
	if err != nil {
		return dst, err
	}
	out, _, err := core.Decompress(dst, payload, sr.workers)
	return out, err
}

// Next64 decodes the next float64 chunk.
func (sr *StreamReader) Next64() ([]float64, error) {
	defer telStreamRead.Start().End()
	payload, err := sr.next()
	if err != nil {
		return nil, err
	}
	out, _, err := core.Decompress64(nil, payload, sr.workers)
	return out, err
}

// Next64Into decodes the next float64 chunk appending to dst (which may be
// nil) — the steady-state counterpart of NextInto for double-precision
// streams.
func (sr *StreamReader) Next64Into(dst []float64) ([]float64, error) {
	defer telStreamRead.Start().End()
	payload, err := sr.next()
	if err != nil {
		return dst, err
	}
	out, _, err := core.Decompress64(dst, payload, sr.workers)
	return out, err
}

// NextRaw reads the next frame's compressed payload without decoding it,
// applying the same validation as the decoding iterators (frame magic,
// length caps, element-count caps — the typed ErrTruncated /
// ErrFrameTooLarge / ErrBadStream failures are identical). The returned
// bytes live in the reader's internal buffer and are valid only until the
// next call; decode them with DecompressWith / Decompress64With, or hash
// them first — cereszd's chunk cache addresses frames this way before
// paying for the decode.
func (sr *StreamReader) NextRaw() ([]byte, error) {
	defer telStreamRead.Start().End()
	return sr.next()
}

// Skip advances past the next frame without decoding it, returning its
// metadata — random access within a recorded stream.
func (sr *StreamReader) Skip() (Meta, error) {
	payload, err := sr.next()
	if err != nil {
		return Meta{}, err
	}
	return Parse(payload)
}
