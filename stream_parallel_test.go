package ceresz

import (
	"bytes"
	"math"
	"runtime"
	"testing"
)

// streamWorkerCounts sweeps sequential, minimal sharding, the host's core
// count and a count above it — shard counts are decoupled from pool
// concurrency, so the stitch path runs at every one of these.
func streamWorkerCounts() []int {
	return []int{0, 1, 2, runtime.GOMAXPROCS(0), 2*runtime.GOMAXPROCS(0) + 3}
}

// TestStreamParallelByteIdentity writes the same chunk sequence — uneven
// chunk sizes so frames end mid-block — at every worker count and checks
// the framed streams are byte-identical; a parallel reader must then
// reproduce the sequential reader's values bit for bit at every count.
func TestStreamParallelByteIdentity(t *testing.T) {
	var chunks [][]float32
	for c, n := range []int{1000, 33, 1, 4097, 640} {
		chunks = append(chunks, testField(n, int64(c)))
	}

	var want bytes.Buffer
	sw := NewStreamWriter(&want, ABS(1e-3), Options{Workers: 1})
	for _, chunk := range chunks {
		if _, err := sw.WriteChunk(chunk); err != nil {
			t.Fatal(err)
		}
	}

	for _, w := range streamWorkerCounts() {
		var got bytes.Buffer
		pw := NewStreamWriter(&got, ABS(1e-3), Options{Workers: w})
		for c, chunk := range chunks {
			if _, err := pw.WriteChunk(chunk); err != nil {
				t.Fatalf("workers=%d chunk %d: %v", w, c, err)
			}
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("workers=%d: framed stream differs from sequential (%d vs %d bytes)",
				w, got.Len(), want.Len())
		}
	}

	ref := NewStreamReader(bytes.NewReader(want.Bytes()))
	var refChunks [][]float32
	for range chunks {
		chunk, err := ref.Next()
		if err != nil {
			t.Fatal(err)
		}
		refChunks = append(refChunks, chunk)
	}
	for _, w := range streamWorkerCounts() {
		sr := NewStreamReader(bytes.NewReader(want.Bytes()))
		sr.SetWorkers(w)
		var out []float32
		for c, wantChunk := range refChunks {
			var err error
			out, err = sr.NextInto(out[:0])
			if err != nil {
				t.Fatalf("workers=%d chunk %d: %v", w, c, err)
			}
			if len(out) != len(wantChunk) {
				t.Fatalf("workers=%d chunk %d: %d elements, want %d", w, c, len(out), len(wantChunk))
			}
			for i := range wantChunk {
				if math.Float32bits(out[i]) != math.Float32bits(wantChunk[i]) {
					t.Fatalf("workers=%d chunk %d elem %d: bit mismatch", w, c, i)
				}
			}
		}
	}
}

// TestStreamParallel64 covers the float64 framed path: parallel writes are
// byte-identical and a parallel Next64Into matches the sequential decode.
func TestStreamParallel64(t *testing.T) {
	data := make([]float64, 5000)
	for i := range data {
		data[i] = math.Sin(float64(i)*0.001) * 100
	}
	write := func(workers int) []byte {
		var buf bytes.Buffer
		sw := NewStreamWriter(&buf, ABS(1e-7), Options{Workers: workers})
		for start := 0; start < len(data); start += 777 {
			end := start + 777
			if end > len(data) {
				end = len(data)
			}
			if _, err := sw.WriteChunk64(data[start:end]); err != nil {
				t.Fatal(err)
			}
		}
		return buf.Bytes()
	}
	want := write(1)
	for _, w := range streamWorkerCounts() {
		if got := write(w); !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: float64 framed stream differs from sequential", w)
		}
	}
	seq := NewStreamReader(bytes.NewReader(want))
	var refAll []float64
	for {
		chunk, err := seq.Next64()
		if err != nil {
			break
		}
		refAll = append(refAll, chunk...)
	}
	if len(refAll) != len(data) {
		t.Fatalf("sequential decode returned %d elements, want %d", len(refAll), len(data))
	}
	for _, w := range streamWorkerCounts() {
		sr := NewStreamReader(bytes.NewReader(want))
		sr.SetWorkers(w)
		var got, out []float64
		for {
			var err error
			out, err = sr.Next64Into(out[:0])
			if err != nil {
				break
			}
			got = append(got, out...)
		}
		if len(got) != len(refAll) {
			t.Fatalf("workers=%d: decoded %d elements, want %d", w, len(got), len(refAll))
		}
		for i := range refAll {
			if math.Float64bits(got[i]) != math.Float64bits(refAll[i]) {
				t.Fatalf("workers=%d elem %d: bit mismatch", w, i)
			}
		}
	}
}
