// Command benchdiff compares two `go test -bench` output files the way
// benchstat does, without the external dependency: it groups samples by
// benchmark name, summarises ns/op (and MB/s when present) with median and
// mean, and reports old/new speedups as JSON on stdout.
//
// Usage:
//
//	go run ./cmd/benchdiff -old baseline.txt -new current.txt
//	go run ./cmd/benchdiff -oldjson base.jsonl -newjson cur.jsonl [-filter sim]
//
// Either flag may be omitted to summarise a single file (speedups are then
// omitted). Exit status is 2 on I/O or parse failure.
//
// The -oldjson/-newjson mode diffs two `cereszbench -json` capture files
// instead: each line's result object is flattened to dotted numeric paths
// (e.g. util.Rows[2].sim.queue_wait_cycles) and matching paths are compared
// old vs new. -filter keeps only paths containing the given substring —
// "-filter sim." isolates the simulator occupancy/stall fields.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// sample is one benchmark line's measurements.
type sample struct {
	nsPerOp float64
	mbPerS  float64 // 0 when the benchmark does not SetBytes
}

// summary aggregates all samples of one benchmark in one file.
type summary struct {
	N          int     `json:"n"`
	MedianNsOp float64 `json:"median_ns_op"`
	MeanNsOp   float64 `json:"mean_ns_op"`
	MinNsOp    float64 `json:"min_ns_op"`
	MaxNsOp    float64 `json:"max_ns_op"`
	MedianMBps float64 `json:"median_mb_s,omitempty"`
}

// diff is the per-benchmark comparison emitted to stdout.
type diff struct {
	Name    string   `json:"name"`
	Old     *summary `json:"old,omitempty"`
	New     *summary `json:"new,omitempty"`
	Speedup float64  `json:"speedup,omitempty"` // old median / new median
	Delta   string   `json:"delta,omitempty"`   // e.g. "-58.3%"
}

// parseBench reads a `go test -bench` output file into name → samples.
// Names are normalised by stripping the trailing -GOMAXPROCS suffix so
// runs from machines with different core counts still line up.
func parseBench(path string) (map[string][]sample, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string][]sample)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var s sample
		ok := false
		for i := 2; i+1 < len(fields); i++ {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				s.nsPerOp = v
				ok = true
			case "MB/s":
				s.mbPerS = v
			}
		}
		if ok {
			out[name] = append(out[name], s)
		}
	}
	return out, sc.Err()
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	m := len(s) / 2
	if len(s)%2 == 1 {
		return s[m]
	}
	return (s[m-1] + s[m]) / 2
}

func summarise(samples []sample) *summary {
	ns := make([]float64, 0, len(samples))
	mb := make([]float64, 0, len(samples))
	var sum float64
	min, max := 0.0, 0.0
	for _, s := range samples {
		ns = append(ns, s.nsPerOp)
		sum += s.nsPerOp
		if min == 0 || s.nsPerOp < min {
			min = s.nsPerOp
		}
		if s.nsPerOp > max {
			max = s.nsPerOp
		}
		if s.mbPerS > 0 {
			mb = append(mb, s.mbPerS)
		}
	}
	return &summary{
		N:          len(samples),
		MedianNsOp: median(ns),
		MeanNsOp:   sum / float64(len(samples)),
		MinNsOp:    min,
		MaxNsOp:    max,
		MedianMBps: median(mb),
	}
}

// flattenJSON walks a decoded JSON value and records every numeric leaf
// under its dotted path ("util.Rows[2].sim.queue_wait_cycles"). Booleans
// and strings are skipped: only quantities can be meaningfully diffed.
func flattenJSON(prefix string, v any, out map[string]float64) {
	switch x := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			flattenJSON(p, x[k], out)
		}
	case []any:
		for i, e := range x {
			flattenJSON(fmt.Sprintf("%s[%d]", prefix, i), e, out)
		}
	case float64:
		out[prefix] = x
	}
}

// parseBenchJSON reads a `cereszbench -json` capture (one
// {"experiment": ..., "result": ...} object per line) into a flat
// path → value map, with each path rooted at its experiment name.
func parseBenchJSON(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]float64)
	dec := json.NewDecoder(f)
	for dec.More() {
		var line struct {
			Experiment string `json:"experiment"`
			Result     any    `json:"result"`
		}
		if err := dec.Decode(&line); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		flattenJSON(line.Experiment, line.Result, out)
	}
	return out, nil
}

// fieldDiff is one flattened metric's old/new comparison.
type fieldDiff struct {
	Path  string   `json:"path"`
	Old   *float64 `json:"old,omitempty"`
	New   *float64 `json:"new,omitempty"`
	Delta string   `json:"delta,omitempty"` // e.g. "+4.2%", only when both sides exist
}

// diffJSONMode implements -oldjson/-newjson: flatten both captures and
// emit every path (passing the filter) with its old/new values.
func diffJSONMode(oldPath, newPath, filter string) error {
	load := func(path string) (map[string]float64, error) {
		if path == "" {
			return nil, nil
		}
		return parseBenchJSON(path)
	}
	oldVals, err := load(oldPath)
	if err != nil {
		return err
	}
	newVals, err := load(newPath)
	if err != nil {
		return err
	}

	paths := make(map[string]bool)
	for p := range oldVals {
		paths[p] = true
	}
	for p := range newVals {
		paths[p] = true
	}
	sorted := make([]string, 0, len(paths))
	for p := range paths {
		if filter == "" || strings.Contains(p, filter) {
			sorted = append(sorted, p)
		}
	}
	sort.Strings(sorted)

	diffs := make([]fieldDiff, 0, len(sorted))
	for _, p := range sorted {
		d := fieldDiff{Path: p}
		if v, ok := oldVals[p]; ok {
			v := v
			d.Old = &v
		}
		if v, ok := newVals[p]; ok {
			v := v
			d.New = &v
		}
		if d.Old != nil && d.New != nil && *d.Old != 0 {
			d.Delta = fmt.Sprintf("%+.1f%%", 100*(*d.New-*d.Old)/(*d.Old))
		}
		diffs = append(diffs, d)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]any{"fields": diffs})
}

func main() {
	oldPath := flag.String("old", "", "baseline `go test -bench` output file")
	newPath := flag.String("new", "", "current `go test -bench` output file")
	oldJSON := flag.String("oldjson", "", "baseline `cereszbench -json` capture file")
	newJSON := flag.String("newjson", "", "current `cereszbench -json` capture file")
	filter := flag.String("filter", "", "with -oldjson/-newjson, keep only paths containing this substring")
	flag.Parse()
	if *oldJSON != "" || *newJSON != "" {
		if err := diffJSONMode(*oldJSON, *newJSON, *filter); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
		return
	}
	if *oldPath == "" && *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: need -old/-new or -oldjson/-newjson")
		os.Exit(2)
	}

	load := func(path string) map[string][]sample {
		if path == "" {
			return nil
		}
		m, err := parseBench(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
		return m
	}
	oldRuns := load(*oldPath)
	newRuns := load(*newPath)

	names := make(map[string]bool)
	for n := range oldRuns {
		names[n] = true
	}
	for n := range newRuns {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	diffs := make([]diff, 0, len(sorted))
	for _, n := range sorted {
		d := diff{Name: n}
		if s, ok := oldRuns[n]; ok {
			d.Old = summarise(s)
		}
		if s, ok := newRuns[n]; ok {
			d.New = summarise(s)
		}
		if d.Old != nil && d.New != nil && d.New.MedianNsOp > 0 {
			d.Speedup = d.Old.MedianNsOp / d.New.MedianNsOp
			d.Delta = fmt.Sprintf("%+.1f%%", 100*(d.New.MedianNsOp-d.Old.MedianNsOp)/d.Old.MedianNsOp)
		}
		diffs = append(diffs, d)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(map[string]any{"benchmarks": diffs}); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
}
