// Command cereszbench regenerates the paper's evaluation tables and
// figures (HPDC'24, §4–§5) on the simulated substrate.
//
// Usage:
//
//	cereszbench [flags] <experiment>...
//
// Experiments: table1 (covers Tables 1–3), fig7, fig10, fig11, fig12,
// fig13, fig14, table5, fig15, alg1, ablations (design-choice ablations
// beyond the paper's figures), ratedist (§5.4 rate-distortion sweep), host
// (wall-clock host-codec throughput: ns/op, ns/element and GB/s per field,
// also in -json output), or "all".
//
// Flags:
//
//	-scale small|medium|full   dataset scale (default small)
//	-seed N                    generator seed (default 7)
//	-maxfields N               fields per dataset (0 = all)
//	-simworkers N              simulator worker pool: 0 = one per CPU,
//	                           1 = sequential reference engine (results
//	                           are identical; only wall time changes)
//	-hostworkers N             host-codec worker shards for the host
//	                           experiment: 0/1 = sequential, N > 1 =
//	                           pooled block-parallel, negative = all
//	                           cores (bytes are identical either way)
//	-json                      emit one JSON object per experiment instead
//	                           of formatted tables
//	-debug-addr host:port      serve net/http/pprof, expvar, the live
//	                           telemetry snapshot and Prometheus text
//	                           metrics (/debug/metrics) while running
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"ceresz/internal/datasets"
	"ceresz/internal/experiments"
	"ceresz/internal/stages"
	"ceresz/internal/telemetry"
)

func main() {
	scale := flag.String("scale", "small", "dataset scale: small, medium or full")
	seed := flag.Int64("seed", 7, "dataset generator seed")
	maxFields := flag.Int("maxfields", 0, "limit fields per dataset (0 = all)")
	simWorkers := flag.Int("simworkers", 0, "simulator workers: 0 = one per CPU, 1 = sequential reference engine")
	hostWorkers := flag.Int("hostworkers", 1, "host-codec workers for the host experiment: 0/1 = sequential, N > 1 = pooled shards, negative = all cores")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON results (one object per experiment)")
	debugAddr := flag.String("debug-addr", "", "serve pprof/expvar/telemetry on this address (e.g. localhost:6060)")
	flag.Parse()

	cfg := experiments.Config{Seed: *seed, MaxFieldsPerDataset: *maxFields, SimWorkers: *simWorkers, HostWorkers: *hostWorkers}
	switch *scale {
	case "small":
		cfg.Scale = datasets.Small
	case "medium":
		cfg.Scale = datasets.Medium
	case "full":
		cfg.Scale = datasets.Full
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}

	if *debugAddr != "" {
		telemetry.ServeDebug(*debugAddr, telemetry.Default, "ceresz", os.Stderr)
	}

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"all"}
	}
	known := []string{"table1", "fig7", "fig10", "fig11", "fig12", "fig13", "fig14", "table5", "fig15", "alg1", "ablations", "ratedist", "util", "quality", "extras", "host", "check"}
	var todo []string
	for _, a := range args {
		if a == "all" {
			todo = known
			break
		}
		ok := false
		for _, k := range known {
			if a == k {
				ok = true
				break
			}
		}
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (have %v and \"all\")\n", a, known)
			os.Exit(2)
		}
		todo = append(todo, a)
	}

	for _, exp := range todo {
		if err := run(os.Stdout, exp, cfg, *asJSON); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", exp, err)
			os.Exit(1)
		}
	}
}

// run executes one experiment and emits it to out either as a formatted
// table or, with -json, as a single {"experiment": ..., "result": ...}
// JSON object per line.
func run(out io.Writer, exp string, cfg experiments.Config, asJSON bool) error {
	var result any
	var print func(io.Writer)
	var checkErr error
	switch exp {
	case "table1":
		rows, err := experiments.StageProfiles(cfg)
		if err != nil {
			return err
		}
		result = rows
		print = func(w io.Writer) { experiments.PrintStageProfiles(w, rows) }
	case "fig7":
		r, err := experiments.Fig7(cfg)
		if err != nil {
			return err
		}
		result = r
		print = func(w io.Writer) { experiments.PrintFig7(w, r) }
	case "fig10":
		r, err := experiments.Fig10(cfg)
		if err != nil {
			return err
		}
		result = r
		print = func(w io.Writer) { experiments.PrintFig10(w, r) }
	case "fig11":
		r, err := experiments.Throughput(cfg, stages.Compress)
		if err != nil {
			return err
		}
		result = r
		print = func(w io.Writer) { experiments.PrintThroughput(w, r) }
	case "fig12":
		r, err := experiments.Throughput(cfg, stages.Decompress)
		if err != nil {
			return err
		}
		result = r
		print = func(w io.Writer) { experiments.PrintThroughput(w, r) }
	case "fig13":
		r, err := experiments.Fig13(cfg)
		if err != nil {
			return err
		}
		result = r
		print = func(w io.Writer) { experiments.PrintFig13(w, r) }
	case "fig14":
		r, err := experiments.Fig14(cfg)
		if err != nil {
			return err
		}
		result = r
		print = func(w io.Writer) { experiments.PrintFig14(w, r) }
	case "table5":
		r, err := experiments.Table5(cfg)
		if err != nil {
			return err
		}
		result = r
		print = func(w io.Writer) { experiments.PrintTable5(w, r) }
	case "fig15":
		r, err := experiments.Fig15(cfg)
		if err != nil {
			return err
		}
		result = r
		print = func(w io.Writer) { experiments.PrintFig15(w, r) }
	case "alg1":
		r, err := experiments.Alg1(cfg)
		if err != nil {
			return err
		}
		result = r
		print = func(w io.Writer) { experiments.PrintAlg1(w, r) }
	case "check":
		r, err := experiments.Check(cfg)
		if err != nil {
			return err
		}
		result = r
		print = func(w io.Writer) { experiments.PrintCheck(w, r) }
		if !r.OK() {
			checkErr = fmt.Errorf("self-check failed")
		}
	case "extras":
		r, err := experiments.Extras(cfg)
		if err != nil {
			return err
		}
		result = r
		print = func(w io.Writer) { experiments.PrintExtras(w, r) }
	case "quality":
		r, err := experiments.Quality(cfg)
		if err != nil {
			return err
		}
		result = r
		print = func(w io.Writer) { experiments.PrintQuality(w, r) }
	case "util":
		r, err := experiments.Utilization(cfg)
		if err != nil {
			return err
		}
		result = r
		print = func(w io.Writer) { experiments.PrintUtilization(w, r) }
	case "host":
		r, err := experiments.HostBench(cfg)
		if err != nil {
			return err
		}
		result = r
		print = func(w io.Writer) { experiments.PrintHostBench(w, r) }
	case "ratedist":
		r, err := experiments.RateDistortion(cfg)
		if err != nil {
			return err
		}
		result = r
		print = func(w io.Writer) { experiments.PrintRateDistortion(w, r) }
	case "ablations":
		blocks, err := experiments.BlockSizeAblation(cfg)
		if err != nil {
			return err
		}
		headers, err := experiments.HeaderAblation(cfg)
		if err != nil {
			return err
		}
		enc, err := experiments.EncodingAblation(cfg)
		if err != nil {
			return err
		}
		zero, err := experiments.ZeroBlockAblation(cfg)
		if err != nil {
			return err
		}
		tuner, err := experiments.Tuner(cfg)
		if err != nil {
			return err
		}
		result = map[string]any{
			"blocks": blocks, "headers": headers, "encodings": enc,
			"zero": zero, "tuner": tuner,
		}
		print = func(w io.Writer) { experiments.PrintAblations(w, blocks, headers, enc, zero, tuner) }
	default:
		return fmt.Errorf("unhandled experiment %q", exp)
	}

	if asJSON {
		enc := json.NewEncoder(out)
		if err := enc.Encode(map[string]any{"experiment": exp, "result": result}); err != nil {
			return err
		}
	} else {
		print(out)
	}
	return checkErr
}
