package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"ceresz/internal/datasets"
	"ceresz/internal/experiments"
)

func TestRunJSON(t *testing.T) {
	cfg := experiments.Config{Seed: 7, Scale: datasets.Small, MaxFieldsPerDataset: 1}
	var buf bytes.Buffer
	if err := run(&buf, "fig7", cfg, true); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("-json emitted %d lines, want 1:\n%s", len(lines), buf.String())
	}
	var obj struct {
		Experiment string          `json:"experiment"`
		Result     json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &obj); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, lines[0])
	}
	if obj.Experiment != "fig7" {
		t.Fatalf("experiment name %q, want fig7", obj.Experiment)
	}
	if len(obj.Result) == 0 || string(obj.Result) == "null" {
		t.Fatal("result payload empty")
	}
}

func TestRunTable(t *testing.T) {
	cfg := experiments.Config{Seed: 7, Scale: datasets.Small, MaxFieldsPerDataset: 1}
	var buf bytes.Buffer
	if err := run(&buf, "fig7", cfg, false); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("formatted output empty")
	}
}
