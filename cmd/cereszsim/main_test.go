package main

import "testing"

func TestSimRunCompress(t *testing.T) {
	if err := run(2, 6, 2, 128, 1e-3, false, 7, 4); err != nil {
		t.Fatal(err)
	}
}

func TestSimRunDecompress(t *testing.T) {
	if err := run(1, 4, 1, 64, 1e-3, true, 7, 0); err != nil {
		t.Fatal(err)
	}
}

func TestSimRunBadConfig(t *testing.T) {
	// Pipeline longer than columns is rejected by the planner.
	if err := run(1, 2, 5, 32, 1e-3, false, 7, 0); err == nil {
		t.Fatal("accepted pipeline longer than the mesh")
	}
	if err := run(1, 2, 1, 32, 0, false, 7, 0); err == nil {
		t.Fatal("accepted zero bound")
	}
}
