package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSimRunCompress(t *testing.T) {
	if err := run(simOpts{rows: 2, cols: 6, pl: 2, blocks: 128, rel: 1e-3, seed: 7, events: 4}); err != nil {
		t.Fatal(err)
	}
}

func TestSimRunDecompress(t *testing.T) {
	if err := run(simOpts{rows: 1, cols: 4, pl: 1, blocks: 64, rel: 1e-3, decompress: true, seed: 7}); err != nil {
		t.Fatal(err)
	}
}

func TestSimRunBadConfig(t *testing.T) {
	// Pipeline longer than columns is rejected by the planner.
	if err := run(simOpts{rows: 1, cols: 2, pl: 5, blocks: 32, rel: 1e-3, seed: 7}); err == nil {
		t.Fatal("accepted pipeline longer than the mesh")
	}
	if err := run(simOpts{rows: 1, cols: 2, pl: 1, blocks: 32, rel: 0, seed: 7}); err == nil {
		t.Fatal("accepted zero bound")
	}
}

// TestSimRunTraceAndHeatmap exercises the export path end to end: the
// trace file must be valid Chrome trace-event JSON (an array of ph:"X"
// slices plus metadata, one track per PE) and the heatmap a rows×cols CSV.
func TestSimRunTraceAndHeatmap(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "out.json")
	heatPath := filepath.Join(dir, "out.csv")
	rows, cols := 2, 4
	if err := run(simOpts{
		rows: rows, cols: cols, pl: 1, blocks: 64, rel: 1e-3, seed: 7,
		traceFile: tracePath, heatmapFile: heatPath,
	}); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatalf("trace is not a JSON array: %v", err)
	}
	var slices int
	tids := map[float64]bool{}
	for _, ev := range events {
		switch ev["ph"] {
		case "X":
			slices++
			tids[ev["tid"].(float64)] = true
		case "M":
		default:
			t.Fatalf("unexpected event phase %v", ev["ph"])
		}
	}
	if slices == 0 {
		t.Fatal("trace holds no slices")
	}
	if len(tids) < 2 {
		t.Fatalf("expected multiple PE tracks, got %d", len(tids))
	}

	heat, err := os.ReadFile(heatPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(heat)), "\n")
	if len(lines) != rows {
		t.Fatalf("heatmap has %d rows, want %d", len(lines), rows)
	}
	for _, line := range lines {
		if got := len(strings.Split(line, ",")); got != cols {
			t.Fatalf("heatmap row %q has %d cells, want %d", line, got, cols)
		}
	}
}
