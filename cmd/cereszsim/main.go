// Command cereszsim runs CereSZ compression on a simulated Cerebras mesh
// and reports timing, per-PE utilization and the Algorithm 1 stage
// distribution — an interactive explorer for the mapping design space.
//
// Usage:
//
//	cereszsim [-rows N] [-cols N] [-pl N] [-blocks N] [-rel λ] [-decompress]
//	          [-trace out.json] [-heatmap out.csv] [-events N] [-simworkers N]
//	          [-spans out.json] [-spantrace out.json] [-attrib] [-attribout out.json]
//
// -trace writes the run's full event schedule as Chrome trace-event JSON —
// open it in Perfetto (ui.perfetto.dev) to see one track per PE with
// dispatch/route/emit slices. -heatmap writes a rows×cols CSV of per-PE
// processor utilization (and prints the ASCII shading to stdout).
//
// -spans writes every block's lifecycle (inject → relay hops → stage
// dispatches → eject) as structured JSON; -spantrace renders the same
// spans as a Perfetto trace with flow arrows chaining each block across
// PEs. -attrib prints per-PE cycle attribution (compute / relay-forward /
// queue-wait / fabric-stall / idle), the bottleneck stage group, and the
// critical block's per-leg latency decomposition; -attribout writes that
// report plus the raw attribution as JSON.
//
// Example:
//
//	cereszsim -rows 4 -cols 12 -pl 3 -blocks 4096 -trace out.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"

	"ceresz/internal/core"
	"ceresz/internal/critpath"
	"ceresz/internal/mapping"
	"ceresz/internal/quant"
	"ceresz/internal/stages"
	"ceresz/internal/wse"
)

// simOpts collects the CLI knobs for one simulated run.
type simOpts struct {
	rows, cols, pl, blocks int
	rel                    float64
	decompress             bool
	seed                   int64
	// traceFile writes the run's schedule as Chrome trace-event JSON.
	traceFile string
	// heatmapFile writes per-PE utilization as a rows×cols CSV.
	heatmapFile string
	// events prints the first N simulator events as text.
	events int
	// simWorkers bounds the row-sharded simulator's worker pool.
	simWorkers int
	// spansFile writes per-block lifecycle spans as JSON.
	spansFile string
	// spanTraceFile writes block spans as a Perfetto flow trace.
	spanTraceFile string
	// attrib prints the stall-attribution and critical-path report.
	attrib bool
	// attribFile writes the attribution + critical-path report as JSON.
	attribFile string
}

func main() {
	var o simOpts
	flag.IntVar(&o.rows, "rows", 2, "mesh rows")
	flag.IntVar(&o.cols, "cols", 8, "mesh columns")
	flag.IntVar(&o.pl, "pl", 1, "pipeline length")
	flag.IntVar(&o.blocks, "blocks", 2048, "number of 32-element blocks to stream")
	flag.Float64Var(&o.rel, "rel", 1e-3, "REL error bound")
	flag.BoolVar(&o.decompress, "decompress", false, "simulate the decompression direction")
	flag.Int64Var(&o.seed, "seed", 7, "data seed")
	flag.StringVar(&o.traceFile, "trace", "", "write the event schedule as Chrome trace-event JSON to this file")
	flag.StringVar(&o.heatmapFile, "heatmap", "", "write per-PE utilization CSV to this file")
	flag.IntVar(&o.events, "events", 0, "print the first N simulator events")
	flag.IntVar(&o.simWorkers, "simworkers", 0, "simulator workers: 0 = one per CPU, 1 = sequential reference engine (traced runs are always sequential)")
	flag.StringVar(&o.spansFile, "spans", "", "write per-block lifecycle spans as JSON to this file")
	flag.StringVar(&o.spanTraceFile, "spantrace", "", "write block spans as Perfetto flow-event JSON to this file")
	flag.BoolVar(&o.attrib, "attrib", false, "print per-PE stall attribution and the critical-path analysis")
	flag.StringVar(&o.attribFile, "attribout", "", "write attribution + critical-path report as JSON to this file")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "cereszsim:", err)
		os.Exit(1)
	}
}

// traceRetain bounds the tracer when a full trace file was requested.
const traceRetain = 1 << 20

func run(o simOpts) error {
	// Synthesize a smooth field with mild noise.
	data := make([]float32, 32*o.blocks)
	phase := float64(o.seed)
	for i := range data {
		x := float64(i) * 0.003
		data[i] = float32(math.Sin(x+phase)*2 + 0.25*math.Sin(11*x) + 0.02*math.Sin(191*x))
	}
	minV, maxV := quant.Range(data)
	eps, err := quant.REL(o.rel).Resolve(minV, maxV)
	if err != nil {
		return err
	}
	estWidth, err := stages.EstimateWidth(data, eps, 32, 20)
	if err != nil {
		return err
	}

	// The tracer must be attached before Run, so the cap is decided here:
	// the whole schedule for a trace file, just the head for -events.
	traceCap := 0
	if o.traceFile != "" {
		traceCap = traceRetain
	} else if o.events > 0 {
		traceCap = o.events
	}

	mesh := wse.Config{Rows: o.rows, Cols: o.cols, Workers: o.simWorkers}
	recordSpans := o.spansFile != "" || o.spanTraceFile != "" || o.attrib || o.attribFile != ""
	var res *mapping.Result
	var plan *mapping.Plan
	var tr *wse.Tracer
	if o.decompress {
		comp, _, err := core.CompressWithEps(nil, data, eps, core.Options{})
		if err != nil {
			return err
		}
		chain, err := stages.NewDecompressChain(stages.Config{Eps: eps, EstWidth: int(estWidth)})
		if err != nil {
			return err
		}
		plan, err = mapping.NewPlan(chain, mapping.PlanConfig{Mesh: mesh, PipelineLen: o.pl, RecordSpans: recordSpans})
		if err != nil {
			return err
		}
		tr, res, err = plan.DecompressTraced(comp, traceCap)
		if err != nil {
			return err
		}
	} else {
		chain, err := stages.NewCompressChain(stages.Config{Eps: eps, EstWidth: int(estWidth)})
		if err != nil {
			return err
		}
		plan, err = mapping.NewPlan(chain, mapping.PlanConfig{Mesh: mesh, PipelineLen: o.pl, RecordSpans: recordSpans})
		if err != nil {
			return err
		}
		tr, res, err = plan.CompressTraced(data, traceCap)
		if err != nil {
			return err
		}
	}

	dir := "compression"
	if o.decompress {
		dir = "decompression"
	}
	fmt.Printf("%s of %d blocks (%d KB) on a %dx%d mesh, ε=%.3g (fl estimate %d)\n",
		dir, o.blocks, 4*len(data)/1024, o.rows, o.cols, eps, estWidth)
	fmt.Print(plan.Describe())
	fmt.Printf("\nelapsed: %d cycles = %.3f ms at 850 MHz -> %.2f MB/s\n",
		res.Cycles, res.Seconds*1e3, res.ThroughputGBps*1000)

	s := res.Mesh.Summary()
	fmt.Printf("active PEs %d; busiest %v at %d cycles; mean utilization %.1f%%; peak PE memory %d B\n",
		s.ActivePEs, s.BusiestPE, s.BusiestCycles, 100*s.MeanUtilization, s.MemPeak)
	fmt.Printf("cycle totals: compute %d, relay %d, send %d\n\n", s.TotalCompute, s.TotalRelay, s.TotalSend)
	res.Mesh.WriteUtilization(os.Stdout, 0)

	fmt.Print("\nrun telemetry:\n")
	res.Telemetry.WriteTo(os.Stdout)

	if o.traceFile != "" {
		if err := writeTrace(tr, mesh, o.traceFile); err != nil {
			return err
		}
		fmt.Printf("\nwrote %d trace events to %s (open in ui.perfetto.dev)\n",
			len(tr.Events()), o.traceFile)
	}
	if o.heatmapFile != "" {
		if err := writeHeatmap(res.Mesh, o.heatmapFile); err != nil {
			return err
		}
		fmt.Println()
		res.Mesh.WriteHeatmapASCII(os.Stdout)
		fmt.Printf("wrote utilization heatmap to %s\n", o.heatmapFile)
	}
	if o.events > 0 && o.traceFile == "" {
		fmt.Printf("\nfirst %d simulator events:\n", o.events)
		tr.Write(os.Stdout)
	}

	var rep critpath.Report
	if o.attrib || o.attribFile != "" {
		rep = critpath.Analyze(plan, res, critpath.Options{})
	}
	if o.attrib {
		fmt.Print("\n")
		rep.WriteTo(os.Stdout)
	}
	if o.attribFile != "" {
		if err := writeJSON(o.attribFile, map[string]any{
			"attribution": res.Attribution,
			"critpath":    rep,
		}); err != nil {
			return err
		}
		fmt.Printf("wrote attribution report to %s\n", o.attribFile)
	}
	if o.spansFile != "" {
		if err := writeJSON(o.spansFile, res.Spans); err != nil {
			return err
		}
		fmt.Printf("wrote %d block spans to %s\n", len(res.Spans), o.spansFile)
	}
	if o.spanTraceFile != "" {
		if err := writeSpanTrace(res.SpanLog, mesh, o.spanTraceFile); err != nil {
			return err
		}
		fmt.Printf("wrote span flow trace to %s (open in ui.perfetto.dev)\n", o.spanTraceFile)
	}
	return nil
}

func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeSpanTrace(log *wse.SpanLog, cfg wse.Config, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := log.WriteChromeTrace(f, cfg); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeTrace(tr *wse.Tracer, cfg wse.Config, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeTrace(f, cfg); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeHeatmap(m *wse.Mesh, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.WriteHeatmapCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
