// Command cereszsim runs CereSZ compression on a simulated Cerebras mesh
// and reports timing, per-PE utilization and the Algorithm 1 stage
// distribution — an interactive explorer for the mapping design space.
//
// Usage:
//
//	cereszsim [-rows N] [-cols N] [-pl N] [-blocks N] [-rel λ] [-decompress]
//
// Example:
//
//	cereszsim -rows 4 -cols 12 -pl 3 -blocks 4096
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"ceresz/internal/core"
	"ceresz/internal/mapping"
	"ceresz/internal/quant"
	"ceresz/internal/stages"
	"ceresz/internal/wse"
)

func main() {
	rows := flag.Int("rows", 2, "mesh rows")
	cols := flag.Int("cols", 8, "mesh columns")
	pl := flag.Int("pl", 1, "pipeline length")
	blocks := flag.Int("blocks", 2048, "number of 32-element blocks to stream")
	rel := flag.Float64("rel", 1e-3, "REL error bound")
	decompress := flag.Bool("decompress", false, "simulate the decompression direction")
	seed := flag.Int64("seed", 7, "data seed")
	trace := flag.Int("trace", 0, "print the first N simulator events")
	flag.Parse()

	if err := run(*rows, *cols, *pl, *blocks, *rel, *decompress, *seed, *trace); err != nil {
		fmt.Fprintln(os.Stderr, "cereszsim:", err)
		os.Exit(1)
	}
}

func run(rows, cols, pl, blocks int, rel float64, decompress bool, seed int64, trace int) error {
	// Synthesize a smooth field with mild noise.
	data := make([]float32, 32*blocks)
	phase := float64(seed)
	for i := range data {
		x := float64(i) * 0.003
		data[i] = float32(math.Sin(x+phase)*2 + 0.25*math.Sin(11*x) + 0.02*math.Sin(191*x))
	}
	minV, maxV := quant.Range(data)
	eps, err := quant.REL(rel).Resolve(minV, maxV)
	if err != nil {
		return err
	}
	estWidth, err := stages.EstimateWidth(data, eps, 32, 20)
	if err != nil {
		return err
	}

	mesh := wse.Config{Rows: rows, Cols: cols}
	var res *mapping.Result
	var plan *mapping.Plan
	if decompress {
		comp, _, err := core.CompressWithEps(nil, data, eps, core.Options{})
		if err != nil {
			return err
		}
		chain, err := stages.NewDecompressChain(stages.Config{Eps: eps, EstWidth: int(estWidth)})
		if err != nil {
			return err
		}
		plan, err = mapping.NewPlan(chain, mapping.PlanConfig{Mesh: mesh, PipelineLen: pl})
		if err != nil {
			return err
		}
		res, err = plan.Decompress(comp)
		if err != nil {
			return err
		}
	} else {
		chain, err := stages.NewCompressChain(stages.Config{Eps: eps, EstWidth: int(estWidth)})
		if err != nil {
			return err
		}
		plan, err = mapping.NewPlan(chain, mapping.PlanConfig{Mesh: mesh, PipelineLen: pl})
		if err != nil {
			return err
		}
		res, err = plan.Compress(data)
		if err != nil {
			return err
		}
	}

	dir := "compression"
	if decompress {
		dir = "decompression"
	}
	fmt.Printf("%s of %d blocks (%d KB) on a %dx%d mesh, ε=%.3g (fl estimate %d)\n",
		dir, blocks, 4*len(data)/1024, rows, cols, eps, estWidth)
	fmt.Print(plan.Describe())
	fmt.Printf("\nelapsed: %d cycles = %.3f ms at 850 MHz -> %.2f MB/s\n",
		res.Cycles, res.Seconds*1e3, res.ThroughputGBps*1000)

	s := res.Mesh.Summary()
	fmt.Printf("active PEs %d; busiest %v at %d cycles; mean utilization %.1f%%; peak PE memory %d B\n",
		s.ActivePEs, s.BusiestPE, s.BusiestCycles, 100*s.MeanUtilization, s.MemPeak)
	fmt.Printf("cycle totals: compute %d, relay %d, send %d\n\n", s.TotalCompute, s.TotalRelay, s.TotalSend)
	res.Mesh.WriteUtilization(os.Stdout, 0)
	if trace > 0 && !decompress {
		fmt.Print("\nfirst events of a small traced rerun:\n")
		// The tracer must be attached before Run; re-simulate briefly with
		// one attached, bounded by the requested entry count.
		if err := traceRun(plan, blocks, trace); err != nil {
			return err
		}
	}
	return nil
}

// traceRun repeats a small slice of the simulation with a tracer attached
// and prints the first n events.
func traceRun(plan *mapping.Plan, blocks, n int) error {
	if blocks > 64 {
		blocks = 64
	}
	data := make([]float32, 32*blocks)
	for i := range data {
		data[i] = float32(math.Sin(float64(i) * 0.01))
	}
	tr, _, err := plan.CompressTraced(data, n)
	if err != nil {
		return err
	}
	tr.Write(os.Stdout)
	return nil
}
