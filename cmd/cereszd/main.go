// Command cereszd serves the CereSZ codec over HTTP: raw float bodies in,
// CSZF framed streams out (and back), with a bounded worker pool, explicit
// backpressure and a zero-allocation per-chunk hot path (internal/server).
//
// Endpoints:
//
//	POST /v1/compress    raw little-endian floats -> CSZF framed stream
//	                     (?mode=abs|rel&eps=&elem=f32|f64&chunk=N&block=N)
//	POST /v1/decompress  CSZF framed stream -> raw floats (?elem=f32|f64)
//	POST /v1/bundle      multi-field payload -> CSZB bundle (?field= extracts)
//	GET  /healthz        readiness (alias of /healthz/ready)
//	GET  /healthz/live   liveness: 200 while the process is up
//	GET  /healthz/ready  readiness: 503 before the listener accepts and
//	                     while draining, 200 otherwise
//	GET  /debug/metrics  Prometheus text metrics (also /debug/pprof/*,
//	                     /debug/vars, /debug/telemetry)
//	GET  /debug/timeseries  windowed rollups: per-interval rates, deltas
//	                        and quantiles over the recent ring
//	GET  /debug/slo      SLO evaluation: compliance, error budget, 5m/1h
//	                     burn rates per objective (-slo)
//	GET  /debug/flight   flight-recorder status; POST /debug/flight/dump
//	                     forces an incident dump (-flight-dir)
//
// On SIGINT/SIGTERM the daemon flips /healthz to 503, refuses new /v1/*
// work with Retry-After, and waits up to -drain-timeout for in-flight
// requests before exiting.
//
// Flags:
//
//	-addr host:port        listen address (default :8775)
//	-workers N             codec pool size (0 = GOMAXPROCS)
//	-hostworkers N         intra-request host-codec shard budget, split
//	                       across executing requests so one big request
//	                       can use many cores without oversubscription
//	                       (0/1 = sequential per request)
//	-queue N               admission queue beyond executing workers
//	                       (0 = 2x workers, negative = none)
//	-chunk N               default elements per compressed frame
//	-block N               CereSZ block length (0 = 32, the paper's)
//	-max-body BYTES        request body cap
//	-max-chunk-elems N     per-chunk / per-frame / per-field element cap
//	-max-frame-bytes N     compressed frame cap on the decode path
//	-retry-after DUR       hint sent with 429/503 responses
//	-cache-bytes BYTES     content-addressed chunk-cache budget: repeated
//	                       chunks are served from memory instead of
//	                       re-running the codec (0 = caching off)
//	-drain-timeout DUR     shutdown grace for in-flight requests
//	-trace-sample N        trace 1-in-N requests into the span rings and
//	                       /debug/trace (0 = tracing off; IDs, RED metrics
//	                       and Server-Timing trailers stay on regardless)
//	-trace-ring N          recent-request ring capacity
//	-slow-ring N           slowest-request ring capacity
//	-access-log PATH       structured JSON access log ("-" = stderr,
//	                       "" = off)
//	-access-log-sample N   log 1-in-N finished requests
//	-rollup-interval DUR   windowed time-series interval (default 5s,
//	                       negative = rollups off)
//	-rollup-windows N      rollup ring capacity (0 = 720)
//	-slo SPECS             comma-separated objectives, each
//	                       <endpoint>:p<q><<dur>:<target%> (latency) or
//	                       <endpoint>:err:<target%> (error rate), e.g.
//	                       "compress:p99<25ms:99.9,decompress:err:99.99"
//	-slo-degraded-burn F   5m burn rate at which readiness reports
//	                       degraded (0 = 2; the probe stays 200)
//	-flight-dir PATH       enable the anomaly-triggered flight recorder;
//	                       incident dumps (rollup windows, SLO state,
//	                       runtime health, Chrome trace) land here
//	-flight-min-interval DUR  dump rate limit (0 = 30s)
//
// Request observability rides on every response: X-Ceresz-Request-Id and
// Traceparent headers echo the request's identity, and a Server-Timing
// trailer carries per-stage server timings. /debug/requests snapshots
// in-flight requests plus the slowest-N ring; /debug/trace exports
// sampled request spans as Chrome trace-events for Perfetto.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ceresz/internal/server"
	"ceresz/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8775", "listen address")
	workers := flag.Int("workers", 0, "codec pool size (0 = GOMAXPROCS)")
	hostWorkers := flag.Int("hostworkers", 0, "intra-request host-codec shard budget split across executing requests (0/1 = sequential per request, negative = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "admission queue depth beyond workers (0 = 2x workers, negative = none)")
	chunk := flag.Int("chunk", 0, "default elements per compressed frame (0 = 64Ki)")
	block := flag.Int("block", 0, "CereSZ block length (0 = 32)")
	maxBody := flag.Int64("max-body", 0, "request body byte cap (0 = 1GiB)")
	maxChunkElems := flag.Int("max-chunk-elems", 0, "chunk/frame/field element cap (0 = 4Mi)")
	maxFrameBytes := flag.Int("max-frame-bytes", 0, "compressed frame byte cap (0 = 64MiB)")
	retryAfter := flag.Duration("retry-after", 0, "Retry-After hint for 429/503 (0 = 1s)")
	cacheBytes := flag.Int64("cache-bytes", 0, "content-addressed chunk-cache memory budget in bytes (0 = caching off)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "shutdown grace for in-flight requests")
	traceSample := flag.Int("trace-sample", 0, "trace 1-in-N requests into the span rings (0 = off)")
	traceRing := flag.Int("trace-ring", 0, "recent-request ring capacity (0 = 256)")
	slowRing := flag.Int("slow-ring", 0, "slowest-request ring capacity (0 = 32)")
	accessLog := flag.String("access-log", "", "structured JSON access log path (\"-\" = stderr, \"\" = off)")
	accessLogSample := flag.Int("access-log-sample", 1, "log 1-in-N finished requests")
	rollupInterval := flag.Duration("rollup-interval", 5*time.Second, "windowed time-series interval (negative = rollups off)")
	rollupWindows := flag.Int("rollup-windows", 0, "rollup ring capacity (0 = 720, one hour at 5s)")
	sloSpecs := flag.String("slo", "", "comma-separated SLOs, e.g. \"compress:p99<25ms:99.9,decompress:err:99.99\"")
	sloDegradedBurn := flag.Float64("slo-degraded-burn", 0, "5m burn rate at which /healthz/ready reports degraded (0 = 2)")
	flightDir := flag.String("flight-dir", "", "directory for anomaly-triggered incident dumps (\"\" = flight recorder off)")
	flightMinInterval := flag.Duration("flight-min-interval", 0, "min interval between trigger-initiated incident dumps (0 = 30s)")
	flag.Parse()

	objectives, err := server.ParseObjectives(*sloSpecs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cereszd:", err)
		os.Exit(1)
	}

	var logW io.Writer
	switch *accessLog {
	case "":
	case "-":
		logW = os.Stderr
	default:
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cereszd: access log:", err)
			os.Exit(1)
		}
		defer f.Close()
		logW = f
	}

	reg := telemetry.NewRegistry()
	srv := server.New(server.Config{
		Workers:        *workers,
		HostWorkers:    *hostWorkers,
		QueueDepth:     *queue,
		MaxBodyBytes:   *maxBody,
		MaxChunkElems:  *maxChunkElems,
		MaxFrameBytes:  *maxFrameBytes,
		ChunkElems:     *chunk,
		RetryAfter:     *retryAfter,
		CacheBytes:     *cacheBytes,
		BlockLen:       *block,
		Registry:       reg,
		TraceEvery:     *traceSample,
		TraceRing:      *traceRing,
		SlowRing:       *slowRing,
		AccessLog:      logW,
		AccessLogEvery: *accessLogSample,

		RollupInterval:    *rollupInterval,
		RollupWindows:     *rollupWindows,
		Objectives:        objectives,
		SLODegradedBurn:   *sloDegradedBurn,
		FlightDir:         *flightDir,
		FlightMinInterval: *flightMinInterval,
	})
	defer srv.Close()

	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	mux.Handle("/debug/", telemetry.DebugMux(reg, "cereszd"))
	// Exact paths outrank the /debug/ prefix above, so the request-span
	// and fleet-health views stay reachable alongside the shared
	// telemetry pages.
	mux.Handle("/debug/requests", srv.RequestsHandler())
	mux.Handle("/debug/trace", srv.TraceHandler())
	mux.Handle("/debug/timeseries", srv.TimeseriesHandler())
	mux.Handle("/debug/slo", srv.SLOHandler())
	mux.Handle("/debug/flight", srv.FlightHandler())
	mux.Handle("/debug/flight/dump", srv.FlightDumpHandler())

	hs := &http.Server{Addr: *addr, Handler: mux}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Listen before flipping readiness: /healthz/ready answers 503 until
	// the socket actually accepts, so a poller that sees 200 can send
	// traffic immediately instead of sleeping an arbitrary grace period.
	srv.SetReady(false)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cereszd:", err)
		os.Exit(1)
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	srv.SetReady(true)
	fmt.Fprintf(os.Stderr, "cereszd listening on %s\n", ln.Addr())

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "cereszd:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Drain: stop being routable, refuse new work with Retry-After, let
	// in-flight requests finish under the grace period.
	fmt.Fprintln(os.Stderr, "cereszd: draining")
	srv.SetDraining(true)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "cereszd: shutdown:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "cereszd: drained")
}
