// Command datagen writes the synthetic SDRBench-style datasets to disk as
// raw little-endian float32 files (one file per field), for use with the
// ceresz CLI or external tools.
//
// Usage:
//
//	datagen [-scale small|medium|full] [-seed N] [-out DIR] [dataset...]
//
// With no dataset arguments, all six are generated.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ceresz/internal/datasets"
	"ceresz/internal/sdrbench"
)

func main() {
	scale := flag.String("scale", "small", "dataset scale: small, medium or full")
	seed := flag.Int64("seed", 7, "generator seed")
	out := flag.String("out", "data", "output directory")
	flag.Parse()

	var sc datasets.Scale
	switch *scale {
	case "small":
		sc = datasets.Small
	case "medium":
		sc = datasets.Medium
	case "full":
		sc = datasets.Full
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}

	names := flag.Args()
	if len(names) == 0 {
		names = datasets.Names()
	}
	for _, name := range names {
		ds, err := datasets.ByName(name, sc)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		dir := filepath.Join(*out, strings.ToLower(ds.Name))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for i := range ds.Fields {
			f := &ds.Fields[i]
			data := f.Data(*seed)
			// SDRBench naming convention: name_[slowest.._fastest].f32, so
			// the dims travel with the file.
			path := filepath.Join(dir, fmt.Sprintf("%s_%s.f32", f.Name, dimsSuffix(f)))
			if err := sdrbench.WriteF32(path, data); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("%s: %d elements (%s)\n", path, len(data), dimsString(f))
		}
	}
}

func dimsSuffix(f *datasets.Field) string {
	d := f.Dims
	switch {
	case d.Nz > 1:
		return fmt.Sprintf("%d_%d_%d", d.Nz, d.Ny, d.Nx)
	case d.Ny > 1:
		return fmt.Sprintf("%d_%d", d.Ny, d.Nx)
	default:
		return fmt.Sprintf("%d", d.Nx)
	}
}

func dimsString(f *datasets.Field) string {
	d := f.Dims
	switch {
	case d.Nz > 1:
		return fmt.Sprintf("%dx%dx%d", d.Nx, d.Ny, d.Nz)
	case d.Ny > 1:
		return fmt.Sprintf("%dx%d", d.Nx, d.Ny)
	default:
		return fmt.Sprintf("%d", d.Nx)
	}
}
