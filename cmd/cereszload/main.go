// Command cereszload drives a running cereszd and measures serving
// throughput and latency. It sweeps client concurrency from 1 to NumCPU
// (powers of two plus NumCPU itself), fires -requests compress round-trips
// per client, and writes BENCH_serve.json with throughput (GB/s of raw
// input) and exact p50/p95/p99 latency percentiles per client count.
//
// With -smoke it instead performs one quick correctness round-trip and
// exits non-zero on any mismatch: the server's compressed stream must be
// byte-identical to the library's StreamWriter with the same chunking, and
// the server's decompression must match the library's decode exactly.
//
// Flags:
//
//	-addr URL      server base URL (default http://localhost:8775)
//	-elems N       float32 elements per request (default 1Mi)
//	-requests N    requests per client per sweep point (default 8)
//	-chunk N       elements per compressed frame (default 64Ki)
//	-eps F         absolute error bound (default 1e-3)
//	-out FILE      result path (default BENCH_serve.json)
//	-smoke         run the correctness round-trip instead of the sweep
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"ceresz"
	"ceresz/client"
)

// synthData is the bench field: a smooth multi-scale wave, the shape the
// codec is built for (block-local smoothness for the Lorenzo predictor).
func synthData(n int, seed int64) []float32 {
	out := make([]float32, n)
	phase := float64(seed)
	for i := range out {
		x := float64(i)
		out[i] = float32(3*math.Sin(0.01*x+phase) + 0.5*math.Sin(0.17*x) + 0.02*math.Sin(2.1*x))
	}
	return out
}

type sweepPoint struct {
	Clients        int     `json:"clients"`
	Requests       int     `json:"requests"`
	RawBytes       int64   `json:"raw_bytes"`
	CompBytes      int64   `json:"compressed_bytes"`
	Seconds        float64 `json:"seconds"`
	ThroughputGBps float64 `json:"throughput_gbps"`
	P50us          int64   `json:"p50_us"`
	P95us          int64   `json:"p95_us"`
	P99us          int64   `json:"p99_us"`
}

type benchReport struct {
	Addr       string       `json:"addr"`
	Elems      int          `json:"elems_per_request"`
	ChunkElems int          `json:"chunk_elems"`
	Eps        float64      `json:"eps"`
	NumCPU     int          `json:"num_cpu"`
	Points     []sweepPoint `json:"points"`
}

// percentile returns the exact p-th percentile of sorted samples
// (nearest-rank; no interpolation, so reported values are real requests).
func percentile(sorted []time.Duration, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx].Microseconds()
}

func main() {
	addr := flag.String("addr", "http://localhost:8775", "server base URL")
	elems := flag.Int("elems", 1<<20, "float32 elements per request")
	requests := flag.Int("requests", 8, "requests per client per sweep point")
	chunk := flag.Int("chunk", 64<<10, "elements per compressed frame")
	eps := flag.Float64("eps", 1e-3, "absolute error bound")
	out := flag.String("out", "BENCH_serve.json", "result file")
	smoke := flag.Bool("smoke", false, "run the correctness round-trip instead of the sweep")
	flag.Parse()

	ctx := context.Background()
	if *smoke {
		if err := runSmoke(ctx, *addr, *chunk, *eps); err != nil {
			fmt.Fprintln(os.Stderr, "cereszload: smoke FAILED:", err)
			os.Exit(1)
		}
		fmt.Println("cereszload: smoke OK")
		return
	}
	if err := runSweep(ctx, *addr, *elems, *requests, *chunk, *eps, *out); err != nil {
		fmt.Fprintln(os.Stderr, "cereszload:", err)
		os.Exit(1)
	}
}

// runSmoke is the CI gate: one compress + one decompress against a live
// server, checked for exactness against the library.
func runSmoke(ctx context.Context, addr string, chunk int, eps float64) error {
	c := client.New(client.Config{BaseURL: addr, ChunkElems: chunk})
	if err := c.Health(ctx); err != nil {
		return fmt.Errorf("health: %w", err)
	}
	const n = 200_000 // several frames plus a partial trailing chunk
	data := synthData(n, 7)

	comp, err := c.Compress(ctx, data, client.ABS(eps))
	if err != nil {
		return fmt.Errorf("compress: %w", err)
	}
	var local bytes.Buffer
	sw := ceresz.NewStreamWriter(&local, ceresz.ABS(eps), ceresz.Options{Workers: 1})
	for start := 0; start < n; start += chunk {
		end := min(start+chunk, n)
		if _, err := sw.WriteChunk(data[start:end]); err != nil {
			return fmt.Errorf("local stream: %w", err)
		}
	}
	if !bytes.Equal(comp, local.Bytes()) {
		return fmt.Errorf("server stream (%d bytes) differs from library StreamWriter (%d bytes)", len(comp), local.Len())
	}

	vals, err := c.Decompress(ctx, comp)
	if err != nil {
		return fmt.Errorf("decompress: %w", err)
	}
	if len(vals) != n {
		return fmt.Errorf("decompressed %d elements, want %d", len(vals), n)
	}
	for i, v := range vals {
		if math.Abs(float64(v)-float64(data[i])) > eps*(1+1e-6) {
			return fmt.Errorf("element %d: |%g - %g| exceeds eps %g", i, v, data[i], eps)
		}
	}
	fmt.Printf("round-trip: %d elements, %d compressed bytes (ratio %.2fx), bound %g held\n",
		n, len(comp), float64(4*n)/float64(len(comp)), eps)
	return nil
}

// sweepCounts is 1, 2, 4, ... capped at NumCPU, always ending on NumCPU.
func sweepCounts() []int {
	ncpu := runtime.NumCPU()
	var counts []int
	for k := 1; k < ncpu; k *= 2 {
		counts = append(counts, k)
	}
	return append(counts, ncpu)
}

func runSweep(ctx context.Context, addr string, elems, requests, chunk int, eps float64, out string) error {
	c := client.New(client.Config{BaseURL: addr, ChunkElems: chunk})
	if err := c.Health(ctx); err != nil {
		return fmt.Errorf("health: %w", err)
	}
	report := benchReport{Addr: addr, Elems: elems, ChunkElems: chunk, Eps: eps, NumCPU: runtime.NumCPU()}

	fmt.Printf("%8s %9s %12s %10s %10s %10s\n", "clients", "requests", "GB/s", "p50", "p95", "p99")
	for _, k := range sweepCounts() {
		pt, err := runPoint(ctx, c, k, elems, requests, eps)
		if err != nil {
			return fmt.Errorf("%d clients: %w", k, err)
		}
		report.Points = append(report.Points, pt)
		fmt.Printf("%8d %9d %12.3f %9dus %9dus %9dus\n",
			pt.Clients, pt.Requests, pt.ThroughputGBps, pt.P50us, pt.P95us, pt.P99us)
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Println("wrote", out)
	return nil
}

// runPoint fires requests from k concurrent clients and aggregates wall
// time, volume and per-request latencies.
func runPoint(ctx context.Context, c *client.Client, k, elems, requests int, eps float64) (sweepPoint, error) {
	type result struct {
		lat  []time.Duration
		comp int64
		err  error
	}
	results := make([]result, k)
	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < k; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			data := synthData(elems, int64(w))
			r := &results[w]
			for i := 0; i < requests; i++ {
				rt0 := time.Now()
				comp, err := c.Compress(ctx, data, client.ABS(eps))
				if err != nil {
					r.err = err
					return
				}
				r.lat = append(r.lat, time.Since(rt0))
				r.comp += int64(len(comp))
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(t0)

	var lats []time.Duration
	var comp int64
	for _, r := range results {
		if r.err != nil {
			return sweepPoint{}, r.err
		}
		lats = append(lats, r.lat...)
		comp += r.comp
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	raw := int64(k) * int64(requests) * int64(4*elems)
	return sweepPoint{
		Clients:        k,
		Requests:       k * requests,
		RawBytes:       raw,
		CompBytes:      comp,
		Seconds:        wall.Seconds(),
		ThroughputGBps: float64(raw) / wall.Seconds() / 1e9,
		P50us:          percentile(lats, 50),
		P95us:          percentile(lats, 95),
		P99us:          percentile(lats, 99),
	}, nil
}
