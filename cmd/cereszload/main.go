// Command cereszload drives a running cereszd and measures serving
// throughput and latency. It sweeps client concurrency from 1 to NumCPU
// (powers of two plus NumCPU itself), fires -requests compress round-trips
// per client, and writes BENCH_serve.json with throughput (GB/s of raw
// input), rank-interpolated p50/p95/p99 latency percentiles (points with
// under 100 samples are flagged small_sample), attempt/error/429 counts
// and a client-vs-server latency attribution per client count: the
// server's per-stage timings (admission wait, worker wait, body read,
// chunk-cache lookup, codec, response write) arrive in each response's
// Server-Timing trailer, so the report splits measured latency into
// server stages versus network-plus-client overhead.
//
// -repeat-ratio shapes the traffic for chunk-cache benchmarking: that
// fraction of requests resends a payload shared across all clients
// (warm traffic a caching server can answer from memory), the rest
// carry never-seen chunks. With -repeat-ratio 0 every request is unique.
//
// With -smoke it instead performs one quick correctness round-trip and
// exits non-zero on any mismatch: the server's compressed stream must be
// byte-identical to the library's StreamWriter with the same chunking,
// the server's decompression must match the library's decode exactly, and
// a bundle round-trip must decode under the bound.
//
// Flags:
//
//	-addr URL      server base URL (default http://localhost:8775)
//	-elems N       float32 elements per request (default 1Mi)
//	-requests N    requests per client per sweep point (default 8)
//	-chunk N       elements per compressed frame (default 64Ki)
//	-eps F         absolute error bound (default 1e-3)
//	-out FILE      result path (default BENCH_serve.json)
//	-hostworkers N annotate each sweep point with the driven server's
//	               -hostworkers setting (the intra-request budget lives
//	               server-side; this flag only labels the results)
//	-append        merge this sweep's points into an existing -out file
//	               instead of overwriting it, so sequential and parallel
//	               server points land in one report
//	-trace FILE    fetch /debug/trace after the sweep and write the Chrome
//	               trace-event JSON there (open in ui.perfetto.dev)
//	-repeat-ratio F  fraction of requests resending an already-seen
//	               payload (0..1, default 0); label lands in each point
//	-wait DUR      poll the server's readiness up to DUR before starting
//	               instead of failing on the first probe
//	-smoke         run the correctness round-trip instead of the sweep
//	-tenant ID     tag every request with X-Ceresz-Tenant (the identity
//	               cereszproxy's per-tenant QoS buckets key on)
//	-targets URLS  cluster mode: comma-separated backend base URLs to
//	               scrape around each sweep point; -addr then points at a
//	               cereszproxy and each point records the per-backend
//	               request/cache-hit distribution the router produced
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ceresz"
	"ceresz/client"
	"ceresz/internal/telemetry"
)

// synthData is the bench field: a smooth multi-scale wave, the shape the
// codec is built for (block-local smoothness for the Lorenzo predictor).
func synthData(n int, seed int64) []float32 {
	out := make([]float32, n)
	phase := float64(seed)
	for i := range out {
		x := float64(i)
		out[i] = float32(3*math.Sin(0.01*x+phase) + 0.5*math.Sin(0.17*x) + 0.02*math.Sin(2.1*x))
	}
	return out
}

type sweepPoint struct {
	Clients int `json:"clients"`
	// HostWorkers labels the point with the server's -hostworkers
	// setting (0 = unknown/sequential); the budget itself is server-side.
	HostWorkers    int     `json:"host_workers,omitempty"`
	Requests       int     `json:"requests"`
	RawBytes       int64   `json:"raw_bytes"`
	CompBytes      int64   `json:"compressed_bytes"`
	Seconds        float64 `json:"seconds"`
	ThroughputGBps float64 `json:"throughput_gbps"`
	P50us          int64   `json:"p50_us"`
	P95us          int64   `json:"p95_us"`
	P99us          int64   `json:"p99_us"`
	// Samples is the number of measured requests behind the percentiles;
	// SmallSample flags points whose tail percentiles were interpolated
	// from fewer than 100 samples (p99 is then an estimate between
	// observed requests, not an observed request).
	Samples     int  `json:"samples"`
	SmallSample bool `json:"small_sample,omitempty"`
	// RepeatRatio is the fraction of requests that resent an
	// already-seen payload (cache-warm traffic); 0 = every request
	// carried chunks the server had never seen.
	RepeatRatio float64 `json:"repeat_ratio,omitempty"`
	// Attempts counts HTTP requests sent including retries; Errors and
	// Rejected429 count failed and backpressured attempts among them.
	Attempts    int `json:"attempts"`
	Errors      int `json:"errors"`
	Rejected429 int `json:"rejected_429"`
	// Stages splits mean request latency into the server's stage
	// timings (from Server-Timing trailers) and what is left — network
	// plus client overhead.
	Stages *stageAttr `json:"server_stages_us,omitempty"`
	// SLO holds the -slo objectives checked against this point's own
	// measurements (client-observed latencies and attempt/error counts).
	SLO []sloResult `json:"slo,omitempty"`
	// Backends records each -targets backend's share of this point's
	// traffic (scraped /debug/metrics deltas): how the proxy's
	// digest-affinity routing actually distributed the requests, and the
	// chunk-cache economics it produced per node.
	Backends []backendPoint `json:"backends,omitempty"`
}

// backendPoint is one backend's scraped delta over a sweep point.
type backendPoint struct {
	URL      string `json:"url"`
	Requests int64  `json:"requests"`
	// Share is this backend's fraction of the point's compress requests —
	// digest routing concentrates repeat traffic (high skew), random
	// routing spreads it (~1/N each).
	Share       float64 `json:"share"`
	CacheHits   int64   `json:"cache_hits"`
	CacheMisses int64   `json:"cache_misses"`
	// HitRate is CacheHits over cache lookups on this backend (0 with no
	// lookups, e.g. caching off).
	HitRate float64 `json:"hit_rate"`
}

// sloResult is one -slo objective evaluated against a sweep point. The
// spec syntax matches cereszd's -slo flag; the subject token is carried
// for labeling only — cereszload drives /v1/compress, so every objective
// is checked against the point's own request stream.
type sloResult struct {
	Spec       string  `json:"spec"`
	Good       int     `json:"good"`
	Total      int     `json:"total"`
	Attainment float64 `json:"attainment"`
	Target     float64 `json:"target"`
	Pass       bool    `json:"pass"`
}

// evalPointSLOs checks each parsed objective against one sweep point:
// latency SLIs count client-observed request latencies at or under the
// threshold, err SLIs count non-failed attempts.
func evalPointSLOs(specs []telemetry.SLOSpec, lats []time.Duration, attempts, errors int) []sloResult {
	out := make([]sloResult, 0, len(specs))
	for _, spec := range specs {
		var good, total int
		if spec.SLI == "err" {
			total = attempts
			good = attempts - errors
		} else {
			total = len(lats)
			for _, l := range lats {
				if l <= spec.Threshold {
					good++
				}
			}
		}
		r := sloResult{Spec: spec.Raw, Good: good, Total: total, Target: spec.Target, Attainment: 1}
		if total > 0 {
			r.Attainment = float64(good) / float64(total)
		}
		r.Pass = r.Attainment >= spec.Target
		out = append(out, r)
	}
	return out
}

// stageAttr is the client-vs-server latency attribution of one sweep
// point: mean microseconds per timed request for each server stage, the
// server's own total, the client-measured mean, and the residual
// overhead (client mean minus server total — wire transfer, kernel and
// client-side encode time).
type stageAttr struct {
	Samples    int   `json:"samples"`
	AdmitUS    int64 `json:"admit_us"`
	WorkerUS   int64 `json:"worker_us"`
	ReadUS     int64 `json:"read_us"`
	CacheUS    int64 `json:"cache_us"`
	CodecUS    int64 `json:"codec_us"`
	WriteUS    int64 `json:"write_us"`
	ServerUS   int64 `json:"server_total_us"`
	ClientUS   int64 `json:"client_mean_us"`
	OverheadUS int64 `json:"overhead_us"`
}

type benchReport struct {
	Addr       string       `json:"addr"`
	Elems      int          `json:"elems_per_request"`
	ChunkElems int          `json:"chunk_elems"`
	Eps        float64      `json:"eps"`
	NumCPU     int          `json:"num_cpu"`
	Points     []sweepPoint `json:"points"`
}

// percentile returns the p-th percentile of sorted samples by linear
// rank interpolation (the R-7 definition: rank p/100*(n-1), fractional
// part split between the two neighboring samples). Nearest-rank made
// every tail percentile collapse onto the max at small n — with the
// default 8 requests per client, p99 == p95 == the single slowest
// request. Interpolation keeps p50/p95/p99 distinct and monotone;
// points with under 100 samples are flagged in the report, since their
// p99 is an interpolation rather than an observed request.
func percentile(sorted []time.Duration, p float64) int64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return sorted[0].Microseconds()
	}
	rank := p / 100 * float64(n-1)
	lo := int(rank)
	if lo >= n-1 {
		return sorted[n-1].Microseconds()
	}
	frac := rank - float64(lo)
	v := float64(sorted[lo]) + frac*float64(sorted[lo+1]-sorted[lo])
	return time.Duration(v).Microseconds()
}

func main() {
	addr := flag.String("addr", "http://localhost:8775", "server base URL")
	elems := flag.Int("elems", 1<<20, "float32 elements per request")
	requests := flag.Int("requests", 8, "requests per client per sweep point")
	chunk := flag.Int("chunk", 64<<10, "elements per compressed frame")
	eps := flag.Float64("eps", 1e-3, "absolute error bound")
	out := flag.String("out", "BENCH_serve.json", "result file")
	traceOut := flag.String("trace", "", "fetch /debug/trace after the sweep into this file")
	smoke := flag.Bool("smoke", false, "run the correctness round-trip instead of the sweep")
	hostWorkers := flag.Int("hostworkers", 0, "label sweep points with the driven server's -hostworkers setting")
	appendOut := flag.Bool("append", false, "merge points into an existing -out file instead of overwriting")
	repeatRatio := flag.Float64("repeat-ratio", 0, "fraction of requests resending an already-seen payload (cache-warm traffic, 0..1)")
	wait := flag.Duration("wait", 0, "poll the server's readiness up to this long before starting (0 = single probe)")
	slo := flag.String("slo", "", "comma-separated SLOs checked per sweep point against client-observed latencies/errors (cereszd -slo syntax)")
	tenant := flag.String("tenant", "", "X-Ceresz-Tenant identity on every request (\"\" = untagged)")
	targets := flag.String("targets", "", "cluster mode: comma-separated backend base URLs to scrape for per-backend distribution")
	flag.Parse()

	if *repeatRatio < 0 || *repeatRatio > 1 {
		fmt.Fprintln(os.Stderr, "cereszload: -repeat-ratio must be in [0,1]")
		os.Exit(1)
	}
	sloSpecs, err := telemetry.ParseSLOSpecs(*slo)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cereszload:", err)
		os.Exit(1)
	}
	var targetURLs []string
	for _, t := range strings.Split(*targets, ",") {
		if t = strings.TrimSpace(strings.TrimRight(t, "/")); t != "" {
			targetURLs = append(targetURLs, t)
		}
	}
	ctx := context.Background()
	if *smoke {
		if err := runSmoke(ctx, *addr, *chunk, *eps, *wait, *tenant); err != nil {
			fmt.Fprintln(os.Stderr, "cereszload: smoke FAILED:", err)
			os.Exit(1)
		}
		fmt.Println("cereszload: smoke OK")
		return
	}
	if err := runSweep(ctx, *addr, *elems, *requests, *chunk, *eps, *out, *traceOut, *hostWorkers, *appendOut, *repeatRatio, *wait, sloSpecs, *tenant, targetURLs); err != nil {
		fmt.Fprintln(os.Stderr, "cereszload:", err)
		os.Exit(1)
	}
}

// scrapeCounters fetches a backend's /debug/metrics Prometheus text and
// returns the plain (label-free) counter/gauge samples by metric name.
func scrapeCounters(ctx context.Context, base string) (map[string]float64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/debug/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s/debug/metrics returned %d", base, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 || strings.Contains(fields[0], "{") {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		out[fields[0]] = v
	}
	return out, nil
}

// backendDeltas scrapes every target and diffs against base, producing
// the per-backend distribution of one sweep point. Metric names follow
// the registry's exposition: server.compress.requests becomes
// ceresz_server_compress_requests, cache.hits ceresz_cache_hits.
func backendDeltas(ctx context.Context, targets []string, base []map[string]float64) ([]backendPoint, []map[string]float64, error) {
	cur := make([]map[string]float64, len(targets))
	for i, t := range targets {
		m, err := scrapeCounters(ctx, t)
		if err != nil {
			return nil, nil, fmt.Errorf("scrape %s: %w", t, err)
		}
		cur[i] = m
	}
	var pts []backendPoint
	var total int64
	for i, t := range targets {
		d := func(name string) int64 {
			v := cur[i][name]
			if base != nil {
				v -= base[i][name]
			}
			return int64(v + 0.5)
		}
		bp := backendPoint{
			URL:         t,
			Requests:    d("ceresz_server_compress_requests"),
			CacheHits:   d("ceresz_cache_hits") + d("ceresz_cache_coalesced"),
			CacheMisses: d("ceresz_cache_misses"),
		}
		if lookups := bp.CacheHits + bp.CacheMisses; lookups > 0 {
			bp.HitRate = float64(bp.CacheHits) / float64(lookups)
		}
		total += bp.Requests
		pts = append(pts, bp)
	}
	for i := range pts {
		if total > 0 {
			pts[i].Share = float64(pts[i].Requests) / float64(total)
		}
	}
	return pts, cur, nil
}

// waitReady polls the server's readiness endpoint (/healthz, the
// readiness alias) until it answers 200 or the window closes. A zero
// window preserves the old single-probe behavior. This replaces
// arbitrary sleeps in scripts: the daemon reports ready only once its
// listener is actually accepting.
func waitReady(ctx context.Context, c *client.Client, window time.Duration) error {
	if window <= 0 {
		return c.Health(ctx)
	}
	deadline := time.Now().Add(window)
	for {
		err := c.Health(ctx)
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server not ready after %v: %w", window, err)
		}
		select {
		case <-time.After(100 * time.Millisecond):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// fetchTrace downloads the server's Chrome trace-event export.
func fetchTrace(ctx context.Context, addr, path string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/debug/trace", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/debug/trace returned %d", resp.StatusCode)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := io.Copy(f, resp.Body); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runSmoke is the CI gate: one compress + one decompress against a live
// server, checked for exactness against the library.
func runSmoke(ctx context.Context, addr string, chunk int, eps float64, wait time.Duration, tenant string) error {
	c := client.New(client.Config{BaseURL: addr, ChunkElems: chunk, Tenant: tenant})
	if err := waitReady(ctx, c, wait); err != nil {
		return fmt.Errorf("health: %w", err)
	}
	const n = 200_000 // several frames plus a partial trailing chunk
	data := synthData(n, 7)

	comp, tr, err := c.CompressTraced(ctx, data, client.ABS(eps))
	if err != nil {
		return fmt.Errorf("compress: %w", err)
	}
	if tr.RequestID == "" {
		return fmt.Errorf("compress response carried no X-Ceresz-Request-Id")
	}
	if !tr.Server.Valid {
		return fmt.Errorf("compress response carried no Server-Timing trailer")
	}
	if tr.Server.Total < tr.Server.Stages() {
		return fmt.Errorf("server total %v below stage sum %v", tr.Server.Total, tr.Server.Stages())
	}
	var local bytes.Buffer
	sw := ceresz.NewStreamWriter(&local, ceresz.ABS(eps), ceresz.Options{Workers: 1})
	for start := 0; start < n; start += chunk {
		end := min(start+chunk, n)
		if _, err := sw.WriteChunk(data[start:end]); err != nil {
			return fmt.Errorf("local stream: %w", err)
		}
	}
	if !bytes.Equal(comp, local.Bytes()) {
		return fmt.Errorf("server stream (%d bytes) differs from library StreamWriter (%d bytes)", len(comp), local.Len())
	}

	vals, err := c.Decompress(ctx, comp)
	if err != nil {
		return fmt.Errorf("decompress: %w", err)
	}
	if len(vals) != n {
		return fmt.Errorf("decompressed %d elements, want %d", len(vals), n)
	}
	for i, v := range vals {
		if math.Abs(float64(v)-float64(data[i])) > eps*(1+1e-6) {
			return fmt.Errorf("element %d: |%g - %g| exceeds eps %g", i, v, data[i], eps)
		}
	}

	// Bundle round-trip: pack one field server-side, decode it locally.
	const bn = 10_000
	bdata := synthData(bn, 11)
	bundle, err := c.Bundle(ctx, []client.BundleField{
		{Name: "field", Dims: [3]int{bn, 1, 1}, Bound: client.ABS(eps), F32: bdata},
	})
	if err != nil {
		return fmt.Errorf("bundle: %w", err)
	}
	br, err := ceresz.OpenBundle(bundle)
	if err != nil {
		return fmt.Errorf("bundle open: %w", err)
	}
	bvals, _, err := br.ReadField("field")
	if err != nil {
		return fmt.Errorf("bundle read: %w", err)
	}
	if len(bvals) != bn {
		return fmt.Errorf("bundle field has %d elements, want %d", len(bvals), bn)
	}
	for i, v := range bvals {
		if math.Abs(float64(v)-float64(bdata[i])) > eps*(1+1e-6) {
			return fmt.Errorf("bundle element %d: |%g - %g| exceeds eps %g", i, v, bdata[i], eps)
		}
	}

	fmt.Printf("round-trip: %d elements, %d compressed bytes (ratio %.2fx), bound %g held\n",
		n, len(comp), float64(4*n)/float64(len(comp)), eps)
	fmt.Printf("request %s server stages: admit=%v worker=%v read=%v cache=%v codec=%v write=%v total=%v\n",
		tr.RequestID, tr.Server.Admit, tr.Server.Worker, tr.Server.Read,
		tr.Server.Cache, tr.Server.Codec, tr.Server.Write, tr.Server.Total)
	return nil
}

// sweepCounts is 1, 2, 4, ... capped at NumCPU, always ending on NumCPU.
func sweepCounts() []int {
	ncpu := runtime.NumCPU()
	var counts []int
	for k := 1; k < ncpu; k *= 2 {
		counts = append(counts, k)
	}
	return append(counts, ncpu)
}

func runSweep(ctx context.Context, addr string, elems, requests, chunk int, eps float64, out, traceOut string, hostWorkers int, appendOut bool, repeatRatio float64, wait time.Duration, sloSpecs []telemetry.SLOSpec, tenant string, targets []string) error {
	// Size the connection pool to the widest sweep point so every client
	// goroutine keeps a warm connection.
	maxClients := sweepCounts()[len(sweepCounts())-1]
	c := client.New(client.Config{BaseURL: addr, ChunkElems: chunk, MaxIdleConnsPerHost: maxClients, Tenant: tenant})
	if err := waitReady(ctx, c, wait); err != nil {
		return fmt.Errorf("health: %w", err)
	}
	report := benchReport{Addr: addr, Elems: elems, ChunkElems: chunk, Eps: eps, NumCPU: runtime.NumCPU()}

	// Cluster mode: baseline each target's counters so every sweep point
	// reports only its own per-backend deltas.
	var targetBase []map[string]float64
	if len(targets) > 0 {
		var err error
		if _, targetBase, err = backendDeltas(ctx, targets, nil); err != nil {
			return err
		}
	}

	fmt.Printf("%8s %9s %12s %10s %10s %10s %9s %7s %5s\n",
		"clients", "requests", "GB/s", "p50", "p95", "p99", "attempts", "errors", "429s")
	for _, k := range sweepCounts() {
		pt, err := runPoint(ctx, c, k, elems, requests, chunk, eps, repeatRatio, sloSpecs)
		if err != nil {
			return fmt.Errorf("%d clients: %w", k, err)
		}
		pt.HostWorkers = hostWorkers
		if len(targets) > 0 {
			pt.Backends, targetBase, err = backendDeltas(ctx, targets, targetBase)
			if err != nil {
				return err
			}
		}
		report.Points = append(report.Points, pt)
		fmt.Printf("%8d %9d %12.3f %9dus %9dus %9dus %9d %7d %5d\n",
			pt.Clients, pt.Requests, pt.ThroughputGBps, pt.P50us, pt.P95us, pt.P99us,
			pt.Attempts, pt.Errors, pt.Rejected429)
	}

	if len(targets) > 0 {
		fmt.Printf("\nper-backend distribution (compress requests, cache hit rate):\n")
		for _, pt := range report.Points {
			fmt.Printf("%8d clients:", pt.Clients)
			for _, bp := range pt.Backends {
				fmt.Printf("  %s %d (%.0f%%, hit %.0f%%)", bp.URL, bp.Requests, bp.Share*100, bp.HitRate*100)
			}
			fmt.Println()
		}
	}

	// Client-vs-server attribution: where did the measured latency go?
	// Server stages come from Server-Timing trailers; "net+client" is the
	// measured mean minus the server's own total.
	fmt.Printf("\nlatency attribution (mean per request):\n")
	fmt.Printf("%8s %10s %10s %9s %9s %9s %9s %9s %9s %11s\n",
		"clients", "measured", "server", "admit", "worker", "read", "cache", "codec", "write", "net+client")
	for _, pt := range report.Points {
		a := pt.Stages
		if a == nil || a.Samples == 0 {
			fmt.Printf("%8d %10s (no Server-Timing trailers observed)\n", pt.Clients, "-")
			continue
		}
		fmt.Printf("%8d %8dus %8dus %7dus %7dus %7dus %7dus %7dus %7dus %9dus\n",
			pt.Clients, a.ClientUS, a.ServerUS, a.AdmitUS, a.WorkerUS,
			a.ReadUS, a.CacheUS, a.CodecUS, a.WriteUS, a.OverheadUS)
	}

	if len(sloSpecs) > 0 {
		fmt.Printf("\nslo check (client-observed, per sweep point):\n")
		for _, pt := range report.Points {
			for _, r := range pt.SLO {
				verdict := "PASS"
				if !r.Pass {
					verdict = "FAIL"
				}
				fmt.Printf("%8d clients  %-32s %7.3f%% >= %.3f%%  %d/%d  %s\n",
					pt.Clients, r.Spec, r.Attainment*100, r.Target*100, r.Good, r.Total, verdict)
			}
		}
	}

	if traceOut != "" {
		if err := fetchTrace(ctx, addr, traceOut); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		fmt.Println("wrote", traceOut)
	}

	if appendOut {
		// Merge with a previous run (e.g. a sequential-server sweep) so one
		// report carries both server configurations, distinguished by each
		// point's host_workers label.
		if prev, err := os.ReadFile(out); err == nil {
			var old benchReport
			if err := json.Unmarshal(prev, &old); err != nil {
				return fmt.Errorf("-append: existing %s is not a sweep report: %w", out, err)
			}
			report.Points = append(old.Points, report.Points...)
		}
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Println("wrote", out)
	return nil
}

// uniqueStamp hands out distinct chunk markers across all workers of a
// sweep so "unique" requests never collide with each other or with the
// shared repeat payload.
var uniqueStamp atomic.Int64

// stampUnique overwrites the first element of every chunk-sized window
// with a globally unique value well outside the synthetic wave's range,
// so no chunk of this payload matches any chunk the server has seen.
// Restamping the same buffer for the next unique request needs no
// re-clone: the stamp positions are simply overwritten again.
func stampUnique(data []float32, chunk int) {
	stamp := float32(1000 + uniqueStamp.Add(1))
	for off := 0; off < len(data); off += chunk {
		data[off] = stamp
	}
}

// runPoint fires requests from k concurrent clients and aggregates wall
// time, volume, per-request latencies, attempt/error/429 counts and the
// server-side stage timings carried back in Server-Timing trailers.
// repeatRatio ∈ [0,1] sets the fraction of requests that resend a
// payload shared by all workers (evenly interleaved with unique-chunk
// requests), so a chunk-caching server sees that fraction as warm
// traffic; 0 keeps every request's chunks unseen.
func runPoint(ctx context.Context, c *client.Client, k, elems, requests, chunk int, eps, repeatRatio float64, sloSpecs []telemetry.SLOSpec) (sweepPoint, error) {
	type result struct {
		lat      []time.Duration
		comp     int64
		attempts int
		errors   int
		rej429   int
		// server stage sums over timed requests: admit, worker, read,
		// cache, codec, write, total.
		stages [7]time.Duration
		timed  int
		err    error
	}
	results := make([]result, k)
	// The repeat payload is shared (read-only) by every worker: repeats
	// should hit the server's cache no matter which client sent the
	// chunks first.
	shared := synthData(elems, 1)
	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < k; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := synthData(elems, int64(w))
			r := &results[w]
			for i := 0; i < requests; i++ {
				// Evenly interleave repeats among uniques: request i is a
				// repeat when the running integral of the ratio steps.
				repeat := int(float64(i+1)*repeatRatio) > int(float64(i)*repeatRatio)
				data := shared
				if !repeat {
					stampUnique(mine, chunk)
					data = mine
				}
				rt0 := time.Now()
				comp, tr, err := c.CompressTraced(ctx, data, client.ABS(eps))
				r.attempts += tr.Attempts
				r.errors += tr.Errors
				r.rej429 += tr.Rejected429
				if err != nil {
					r.err = err
					return
				}
				r.lat = append(r.lat, time.Since(rt0))
				r.comp += int64(len(comp))
				if st := tr.Server; st.Valid {
					r.stages[0] += st.Admit
					r.stages[1] += st.Worker
					r.stages[2] += st.Read
					r.stages[3] += st.Cache
					r.stages[4] += st.Codec
					r.stages[5] += st.Write
					r.stages[6] += st.Total
					r.timed++
				}
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(t0)

	var lats []time.Duration
	var comp int64
	var attempts, errors, rej429, timed int
	var stages [7]time.Duration
	var latSum time.Duration
	for _, r := range results {
		if r.err != nil {
			return sweepPoint{}, r.err
		}
		lats = append(lats, r.lat...)
		for _, l := range r.lat {
			latSum += l
		}
		comp += r.comp
		attempts += r.attempts
		errors += r.errors
		rej429 += r.rej429
		timed += r.timed
		for i, d := range r.stages {
			stages[i] += d
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	raw := int64(k) * int64(requests) * int64(4*elems)
	pt := sweepPoint{
		Clients:        k,
		Requests:       k * requests,
		RawBytes:       raw,
		CompBytes:      comp,
		Seconds:        wall.Seconds(),
		ThroughputGBps: float64(raw) / wall.Seconds() / 1e9,
		P50us:          percentile(lats, 50),
		P95us:          percentile(lats, 95),
		P99us:          percentile(lats, 99),
		Samples:        len(lats),
		SmallSample:    len(lats) < 100,
		RepeatRatio:    repeatRatio,
		Attempts:       attempts,
		Errors:         errors,
		Rejected429:    rej429,
	}
	if timed > 0 {
		mean := func(d time.Duration) int64 { return d.Microseconds() / int64(timed) }
		a := &stageAttr{
			Samples:  timed,
			AdmitUS:  mean(stages[0]),
			WorkerUS: mean(stages[1]),
			ReadUS:   mean(stages[2]),
			CacheUS:  mean(stages[3]),
			CodecUS:  mean(stages[4]),
			WriteUS:  mean(stages[5]),
			ServerUS: mean(stages[6]),
		}
		if len(lats) > 0 {
			a.ClientUS = latSum.Microseconds() / int64(len(lats))
			a.OverheadUS = a.ClientUS - a.ServerUS
		}
		pt.Stages = a
	}
	pt.SLO = evalPointSLOs(sloSpecs, lats, attempts, errors)
	return pt, nil
}
