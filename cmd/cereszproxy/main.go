// Command cereszproxy fronts N cereszd backends as one logical
// compression service: a consistent-hash shard router with health-checked
// failover and per-tenant QoS (internal/cluster).
//
// Routing is keyed on the same SHA-256 digest family the backends'
// content-addressed chunk cache uses, so identical chunks always land on
// the node whose cache already holds them — cluster-wide repeat traffic
// stays warm instead of spreading cold copies across every backend.
//
// Endpoints (the /v1/* surface is the backends', relayed):
//
//	POST /v1/compress       routed by the first chunk's cache digest
//	POST /v1/decompress     routed by the first CSZF frame's cache digest
//	POST /v1/bundle         routed by a prefix digest (no cache affinity)
//	GET  /healthz           readiness (alias of /healthz/ready)
//	GET  /healthz/live      liveness: 200 while the process is up
//	GET  /healthz/ready     503 starting/draining/no routable backends;
//	                        200 with degraded detail otherwise
//	GET  /debug/ring        routing table: per-backend state, weight,
//	                        hash-space share, probe history
//	GET  /debug/metrics     Prometheus text metrics (also /debug/pprof/*,
//	                        /debug/vars, /debug/telemetry)
//	GET  /debug/timeseries  windowed rollups over the proxy registry
//	GET  /debug/slo         proxy-tier SLO burn rates (-slo)
//
// QoS: requests tagged X-Ceresz-Tenant draw from per-tenant token
// buckets (-tenant-rate/-tenant-burst; exhausted buckets get 429 with an
// exact Retry-After). X-Ceresz-Priority: low caps batch traffic at
// -low-share of the worker pool. Backend 429s relay untouched.
//
// Failover: upstream connect errors and 5xx retry once on the next ring
// owner when no response bytes have been sent and the request body is
// replayable (buffered within -replay-bytes); a partially forwarded
// streaming body refuses the retry with an explicit 502 instead of
// silently resending. Backends failing -fail-after consecutive probes or
// forwards leave the ring; degraded backends (the PR-10 readiness
// detail) shed share at reduced weight.
//
// On SIGINT/SIGTERM the proxy flips readiness, refuses new work with
// Retry-After and waits up to -drain-timeout for in-flight relays.
//
// Flags:
//
//	-addr host:port       listen address (default :8770)
//	-backends URLS        comma-separated backend base URLs (required)
//	-vnodes N             virtual nodes per healthy backend (0 = 64)
//	-degraded-vnodes N    weight of a degraded backend (0 = vnodes/4)
//	-workers N            concurrent relay cap (0 = 8x GOMAXPROCS)
//	-low-share F          worker-pool fraction the low priority class may
//	                      hold (0 = 0.5)
//	-tenant-rate F        per-tenant requests/second (0 = unlimited)
//	-tenant-burst N       per-tenant burst capacity (0 = max(1, rate))
//	-max-tenants N        tenant bucket table bound (0 = 16Ki)
//	-health-interval DUR  readiness poll interval (0 = 1s)
//	-health-timeout DUR   per-probe timeout (0 = interval/2)
//	-fail-after N         consecutive failures before ejection (0 = 3)
//	-replay-bytes BYTES   request-body failover buffer (0 = 4MiB)
//	-chunk N              backends' -chunk, for routing-digest agreement
//	-block N              backends' -block, for routing-digest agreement
//	-retry-after DUR      hint for proxy-origin 429/503 (0 = 1s)
//	-random-route         route uniformly at random instead of by digest
//	                      (affinity-off baseline for benchmarks)
//	-drain-timeout DUR    shutdown grace for in-flight relays
//	-rollup-interval DUR  windowed time-series interval (default 5s,
//	                      negative = rollups off)
//	-rollup-windows N     rollup ring capacity (0 = 720)
//	-slo SPECS            proxy-tier objectives, same grammar as cereszd
//	-slo-degraded-burn F  5m burn rate at which readiness reports degraded
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ceresz/internal/cluster"
	"ceresz/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8770", "listen address")
	backends := flag.String("backends", "", "comma-separated backend base URLs (required)")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per healthy backend (0 = 64)")
	degradedVnodes := flag.Int("degraded-vnodes", 0, "ring weight of a degraded backend (0 = vnodes/4)")
	workers := flag.Int("workers", 0, "concurrent relay cap (0 = 8x GOMAXPROCS)")
	lowShare := flag.Float64("low-share", 0, "worker-pool fraction the low priority class may hold (0 = 0.5)")
	tenantRate := flag.Float64("tenant-rate", 0, "per-tenant requests/second (0 = unlimited)")
	tenantBurst := flag.Int("tenant-burst", 0, "per-tenant burst capacity (0 = max(1, rate))")
	maxTenants := flag.Int("max-tenants", 0, "tenant bucket table bound (0 = 16Ki)")
	healthInterval := flag.Duration("health-interval", 0, "readiness poll interval (0 = 1s)")
	healthTimeout := flag.Duration("health-timeout", 0, "per-probe timeout (0 = interval/2)")
	failAfter := flag.Int("fail-after", 0, "consecutive failures before a backend is ejected (0 = 3)")
	replayBytes := flag.Int("replay-bytes", 0, "request-body failover buffer in bytes (0 = 4MiB)")
	chunk := flag.Int("chunk", 0, "backends' -chunk, for routing-digest agreement (0 = 64Ki)")
	block := flag.Int("block", 0, "backends' -block, for routing-digest agreement")
	retryAfter := flag.Duration("retry-after", 0, "Retry-After hint for proxy-origin 429/503 (0 = 1s)")
	randomRoute := flag.Bool("random-route", false, "route uniformly at random instead of by digest (baseline)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "shutdown grace for in-flight relays")
	rollupInterval := flag.Duration("rollup-interval", 5*time.Second, "windowed time-series interval (negative = rollups off)")
	rollupWindows := flag.Int("rollup-windows", 0, "rollup ring capacity (0 = 720)")
	sloSpecs := flag.String("slo", "", "comma-separated proxy-tier SLOs, e.g. \"compress:p99<50ms:99.9\"")
	sloDegradedBurn := flag.Float64("slo-degraded-burn", 0, "5m burn rate at which readiness reports degraded (0 = 2)")
	flag.Parse()

	var urls []string
	for _, u := range strings.Split(*backends, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		fmt.Fprintln(os.Stderr, "cereszproxy: -backends is required")
		os.Exit(1)
	}
	objectives, err := cluster.ParseObjectives(*sloSpecs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cereszproxy:", err)
		os.Exit(1)
	}
	ri := *rollupInterval
	if ri < 0 {
		ri = 0
	}

	reg := telemetry.NewRegistry()
	p, err := cluster.New(cluster.Config{
		Backends:       urls,
		Vnodes:         *vnodes,
		DegradedVnodes: *degradedVnodes,
		Workers:        *workers,
		LowShare:       *lowShare,
		TenantRate:     *tenantRate,
		TenantBurst:    *tenantBurst,
		MaxTenants:     *maxTenants,
		Health: cluster.HealthConfig{
			Interval:  *healthInterval,
			Timeout:   *healthTimeout,
			FailAfter: *failAfter,
		},
		ReplayBytes: *replayBytes,
		ChunkElems:  *chunk,
		BlockLen:    *block,
		RetryAfter:  *retryAfter,
		RandomRoute: *randomRoute,
		Registry:    reg,

		RollupInterval:  ri,
		RollupWindows:   *rollupWindows,
		Objectives:      objectives,
		SLODegradedBurn: *sloDegradedBurn,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cereszproxy:", err)
		os.Exit(1)
	}
	defer p.Close()

	ph := p.Handler()
	mux := http.NewServeMux()
	mux.Handle("/", ph)
	mux.Handle("/debug/", telemetry.DebugMux(reg, "cereszproxy"))
	// Exact paths outrank the /debug/ prefix above, so the ring and
	// fleet-health views stay reachable alongside the shared pages.
	mux.Handle("/debug/ring", ph)
	mux.Handle("/debug/timeseries", ph)
	mux.Handle("/debug/slo", ph)

	hs := &http.Server{Addr: *addr, Handler: mux}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Listen before flipping readiness, mirroring cereszd: a poller that
	// sees 200 can route immediately.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cereszproxy:", err)
		os.Exit(1)
	}
	p.Start()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	p.SetReady(true)
	fmt.Fprintf(os.Stderr, "cereszproxy listening on %s, backends: %s\n", ln.Addr(), strings.Join(urls, " "))

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "cereszproxy:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "cereszproxy: draining")
	p.SetDraining(true)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "cereszproxy: shutdown:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "cereszproxy: drained")
}
