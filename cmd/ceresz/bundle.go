package main

import (
	"fmt"
	"os"
	"path/filepath"

	"ceresz"
	"ceresz/internal/sdrbench"
)

// runBundle implements -bundle (directory → archive) and -unbundle
// (archive → directory).
func runBundle(bundle bool, rel, abs float64, block int, szp bool, workers int, args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("bundle modes need input and output paths")
	}
	if bundle {
		return bundleDir(args[0], args[1], rel, abs, block, szp, workers)
	}
	return unbundleTo(args[0], args[1])
}

func bundleDir(dir, out string, rel, abs float64, block int, szp bool, workers int) error {
	fields, err := sdrbench.Scan(dir)
	if err != nil {
		return err
	}
	if len(fields) == 0 {
		return fmt.Errorf("%s holds no field files", dir)
	}
	bound := ceresz.REL(rel)
	if abs > 0 {
		bound = ceresz.ABS(abs)
	}
	opts := ceresz.Options{BlockLen: block, SZpHeader: szp, Workers: workers}
	bw := ceresz.NewBundleWriter()
	var rawBytes int64
	for _, f := range fields {
		name := filepath.Base(f.Path)
		if f.Float64 {
			field, data, err := sdrbench.Load64(f.Path)
			if err != nil {
				return err
			}
			stats, err := bw.AddField64(name, field.Dims, data, bound, opts)
			if err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			rawBytes += int64(8 * len(data))
			fmt.Printf("%-40s %9d f64 elements, ε=%.3g\n", name, stats.Elements, stats.Eps)
			continue
		}
		field, data, err := sdrbench.Load(f.Path)
		if err != nil {
			return err
		}
		stats, err := bw.AddField(name, field.Dims, data, bound, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		rawBytes += int64(4 * len(data))
		fmt.Printf("%-40s %9d f32 elements, ε=%.3g\n", name, stats.Elements, stats.Eps)
	}
	b, err := bw.Bytes()
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, b, 0o644); err != nil {
		return err
	}
	fmt.Printf("bundled %d fields: %d -> %d bytes (ratio %.3f)\n",
		len(fields), rawBytes, len(b), float64(rawBytes)/float64(len(b)))
	return nil
}

func unbundleTo(in, dir string) error {
	b, err := os.ReadFile(in)
	if err != nil {
		return err
	}
	br, err := ceresz.OpenBundle(b)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, f := range br.Fields() {
		path := filepath.Join(dir, f.Name)
		if f.Elem == ceresz.Float64 {
			data, _, err := br.ReadField64(f.Name)
			if err != nil {
				return err
			}
			if err := sdrbench.WriteF64(path, data); err != nil {
				return err
			}
		} else {
			data, _, err := br.ReadField(f.Name)
			if err != nil {
				return err
			}
			if err := sdrbench.WriteF32(path, data); err != nil {
				return err
			}
		}
		fmt.Printf("extracted %s (%d elements, ε=%.3g)\n", path, f.Dims.Len(), f.Eps)
	}
	return nil
}
