// Command ceresz compresses and decompresses raw float32 files with the
// CereSZ algorithm.
//
// Usage:
//
//	ceresz -c [-rel λ | -abs ε] [-block L] [-szp] input.f32 output.csz
//	ceresz -d input.csz output.f32
//	ceresz -info input.csz
//	ceresz -bundle [-rel λ | -abs ε] fieldDir out.cszb
//	ceresz -unbundle in.cszb outDir
//
// Input files for -c are raw little-endian float32 arrays (the SDRBench
// convention); -bundle compresses every field file in a directory into one
// indexed archive (dims parsed from SDRBench-style names). Compression
// prints the achieved ratio and block statistics. -hostworkers N (alias
// -workers) shards each compress/decompress call across a pooled worker
// runtime; the emitted stream is byte-identical at every worker count, so
// the flag only changes throughput.
package main

import (
	"flag"
	"fmt"
	"os"

	"ceresz"
	"ceresz/internal/sdrbench"
)

func main() {
	compress := flag.Bool("c", false, "compress a raw float32 file")
	decompress := flag.Bool("d", false, "decompress a CereSZ stream")
	info := flag.Bool("info", false, "print stream metadata")
	rel := flag.Float64("rel", 1e-3, "value-range-relative error bound λ")
	abs := flag.Float64("abs", 0, "absolute error bound ε (overrides -rel when > 0)")
	block := flag.Int("block", 0, "block length (multiple of 8; 0 = 32)")
	szp := flag.Bool("szp", false, "use 1-byte SZp-style block headers")
	f64 := flag.Bool("f64", false, "treat input as float64 (compression only; decompression auto-detects)")
	bundle := flag.Bool("bundle", false, "compress a directory of field files into one bundle")
	unbundle := flag.Bool("unbundle", false, "extract a bundle into a directory of raw field files")
	var workers int
	flag.IntVar(&workers, "hostworkers", 0, "host-codec worker shards: 0 or 1 = sequential, N > 1 = pooled block-parallel, negative = all cores (output bytes identical either way)")
	flag.IntVar(&workers, "workers", 0, "alias for -hostworkers")
	stats := flag.Bool("stats", false, "print internal telemetry (stage timings, worker occupancy) after the run")
	flag.Parse()

	if *stats {
		ceresz.EnableTelemetry()
	}
	err := func() error {
		if *bundle || *unbundle {
			return runBundle(*bundle, *rel, *abs, *block, *szp, workers, flag.Args())
		}
		return run(*compress, *decompress, *info, *rel, *abs, *block, *szp, *f64, workers, flag.Args())
	}()
	if *stats {
		fmt.Print("\ntelemetry:\n")
		ceresz.HostTelemetry().WriteTo(os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ceresz:", err)
		os.Exit(1)
	}
}

func run(compress, decompress, info bool, rel, abs float64, block int, szp, f64 bool, workers int, args []string) error {
	modes := 0
	for _, m := range []bool{compress, decompress, info} {
		if m {
			modes++
		}
	}
	if modes != 1 {
		return fmt.Errorf("exactly one of -c, -d, -info is required")
	}
	switch {
	case info:
		if len(args) != 1 {
			return fmt.Errorf("-info needs one input file")
		}
		comp, err := os.ReadFile(args[0])
		if err != nil {
			return err
		}
		meta, err := ceresz.Parse(comp)
		if err != nil {
			return err
		}
		fmt.Printf("elements:      %d %s (%d bytes uncompressed)\n",
			meta.Elements, meta.Elem, meta.Elem.Size()*meta.Elements)
		fmt.Printf("block length:  %d\n", meta.BlockLen)
		fmt.Printf("block header:  %d bytes\n", meta.HeaderBytes)
		fmt.Printf("error bound:   ABS %g\n", meta.Eps)
		fmt.Printf("stream size:   %d bytes (ratio %.3f)\n", len(comp),
			float64(meta.Elem.Size()*meta.Elements)/float64(len(comp)))
		return nil

	case compress:
		if len(args) != 2 {
			return fmt.Errorf("-c needs input and output files")
		}
		bound := ceresz.REL(rel)
		if abs > 0 {
			bound = ceresz.ABS(abs)
		}
		opts := ceresz.Options{BlockLen: block, SZpHeader: szp, Workers: workers}
		var comp []byte
		var stats *ceresz.Stats
		var elemBytes int
		if f64 {
			data, err := sdrbench.ReadF64(args[0])
			if err != nil {
				return err
			}
			comp, stats, err = ceresz.Compress64(nil, data, bound, opts)
			if err != nil {
				return err
			}
			elemBytes = 8
		} else {
			data, err := sdrbench.ReadF32(args[0])
			if err != nil {
				return err
			}
			comp, stats, err = ceresz.Compress(nil, data, bound, opts)
			if err != nil {
				return err
			}
			elemBytes = 4
		}
		if err := os.WriteFile(args[1], comp, 0o644); err != nil {
			return err
		}
		fmt.Printf("compressed %d elements: %d -> %d bytes (ratio %.3f)\n",
			stats.Elements, elemBytes*stats.Elements, len(comp),
			float64(elemBytes*stats.Elements)/float64(len(comp)))
		fmt.Printf("ε = %g; %d blocks (%d zero, %d verbatim), mean fixed length %.2f bits\n",
			stats.Eps, stats.Blocks, stats.ZeroBlocks, stats.VerbatimBlocks, stats.MeanWidth())
		return nil

	default: // decompress
		if len(args) != 2 {
			return fmt.Errorf("-d needs input and output files")
		}
		comp, err := os.ReadFile(args[0])
		if err != nil {
			return err
		}
		elem, err := ceresz.ElemOf(comp)
		if err != nil {
			return err
		}
		if elem == ceresz.Float64 {
			data, err := ceresz.Decompress64With(nil, comp, ceresz.Options{Workers: workers})
			if err != nil {
				return err
			}
			if err := sdrbench.WriteF64(args[1], data); err != nil {
				return err
			}
			fmt.Printf("decompressed %d float64 elements (%d bytes)\n", len(data), 8*len(data))
			return nil
		}
		data, err := ceresz.DecompressWith(nil, comp, ceresz.Options{Workers: workers})
		if err != nil {
			return err
		}
		if err := sdrbench.WriteF32(args[1], data); err != nil {
			return err
		}
		fmt.Printf("decompressed %d float32 elements (%d bytes)\n", len(data), 4*len(data))
		return nil
	}
}
