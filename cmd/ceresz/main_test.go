package main

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"ceresz/internal/sdrbench"
)

func TestCLICompressDecompressRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.f32")
	cz := filepath.Join(dir, "out.csz")
	out := filepath.Join(dir, "out.f32")

	data := make([]float32, 5000)
	for i := range data {
		data[i] = float32(math.Sin(float64(i) * 0.01))
	}
	if err := sdrbench.WriteF32(in, data); err != nil {
		t.Fatal(err)
	}
	if err := run(true, false, false, 1e-3, 0, 0, false, false, 1, []string{in, cz}); err != nil {
		t.Fatal(err)
	}
	if err := run(false, true, false, 0, 0, 0, false, false, 1, []string{cz, out}); err != nil {
		t.Fatal(err)
	}
	rec, err := sdrbench.ReadF32(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec) != len(data) {
		t.Fatalf("%d elements out", len(rec))
	}
	// REL 1e-3 over range 2 → ε = 2e-3.
	for i := range data {
		if e := math.Abs(float64(rec[i]) - float64(data[i])); e > 2.1e-3 {
			t.Fatalf("error %g at %d", e, i)
		}
	}
	// Info mode parses the stream.
	if err := run(false, false, true, 0, 0, 0, false, false, 1, []string{cz}); err != nil {
		t.Fatal(err)
	}
}

func TestCLIFloat64RoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.f64")
	cz := filepath.Join(dir, "out.csz")
	out := filepath.Join(dir, "out.f64")

	data := make([]float64, 2000)
	for i := range data {
		data[i] = math.Cos(float64(i) * 0.02)
	}
	if err := sdrbench.WriteF64(in, data); err != nil {
		t.Fatal(err)
	}
	if err := run(true, false, false, 0, 1e-8, 0, false, true, 1, []string{in, cz}); err != nil {
		t.Fatal(err)
	}
	// Decompression auto-detects float64.
	if err := run(false, true, false, 0, 0, 0, false, false, 1, []string{cz, out}); err != nil {
		t.Fatal(err)
	}
	rec, err := sdrbench.ReadF64(out)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if e := math.Abs(rec[i] - data[i]); e > 1e-8 {
			t.Fatalf("error %g at %d", e, i)
		}
	}
}

func TestCLIErrors(t *testing.T) {
	dir := t.TempDir()
	if err := run(false, false, false, 1e-3, 0, 0, false, false, 1, nil); err == nil {
		t.Fatal("accepted no mode")
	}
	if err := run(true, true, false, 1e-3, 0, 0, false, false, 1, nil); err == nil {
		t.Fatal("accepted two modes")
	}
	if err := run(true, false, false, 1e-3, 0, 0, false, false, 1, []string{"only-one"}); err == nil {
		t.Fatal("accepted missing output arg")
	}
	if err := run(true, false, false, 1e-3, 0, 0, false, false, 1, []string{filepath.Join(dir, "missing.f32"), "o"}); err == nil {
		t.Fatal("accepted missing input")
	}
	// Odd-sized raw file.
	bad := filepath.Join(dir, "bad.f32")
	if err := os.WriteFile(bad, []byte{1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(true, false, false, 1e-3, 0, 0, false, false, 1, []string{bad, filepath.Join(dir, "o.csz")}); err == nil {
		t.Fatal("accepted 3-byte f32 input")
	}
	// -info on garbage.
	if err := run(false, false, true, 0, 0, 0, false, false, 1, []string{bad}); err == nil {
		t.Fatal("info accepted garbage")
	}
}

func TestCLIBundleRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fieldsDir := filepath.Join(dir, "fields")
	if err := os.MkdirAll(fieldsDir, 0o755); err != nil {
		t.Fatal(err)
	}
	a := make([]float32, 32*32)
	for i := range a {
		a[i] = float32(math.Sin(float64(i) * 0.05))
	}
	b64 := make([]float64, 300)
	for i := range b64 {
		b64[i] = math.Cos(float64(i) * 0.1)
	}
	if err := sdrbench.WriteF32(filepath.Join(fieldsDir, "a_32_32.f32"), a); err != nil {
		t.Fatal(err)
	}
	if err := sdrbench.WriteF64(filepath.Join(fieldsDir, "b_300.f64"), b64); err != nil {
		t.Fatal(err)
	}
	archive := filepath.Join(dir, "out.cszb")
	if err := runBundle(true, 1e-3, 0, 0, false, 1, []string{fieldsDir, archive}); err != nil {
		t.Fatal(err)
	}
	outDir := filepath.Join(dir, "extract")
	if err := runBundle(false, 0, 0, 0, false, 1, []string{archive, outDir}); err != nil {
		t.Fatal(err)
	}
	gotA, err := sdrbench.ReadF32(filepath.Join(outDir, "a_32_32.f32"))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if e := math.Abs(float64(gotA[i]) - float64(a[i])); e > 2.1e-3 { // REL 1e-3 × range 2
			t.Fatalf("a error %g at %d", e, i)
		}
	}
	gotB, err := sdrbench.ReadF64(filepath.Join(outDir, "b_300.f64"))
	if err != nil {
		t.Fatal(err)
	}
	for i := range b64 {
		if e := math.Abs(gotB[i] - b64[i]); e > 2.1e-3 {
			t.Fatalf("b error %g at %d", e, i)
		}
	}
}

func TestCLIBundleErrors(t *testing.T) {
	dir := t.TempDir()
	if err := runBundle(true, 1e-3, 0, 0, false, 1, []string{dir}); err == nil {
		t.Fatal("accepted one arg")
	}
	if err := runBundle(true, 1e-3, 0, 0, false, 1, []string{dir, filepath.Join(dir, "o")}); err == nil {
		t.Fatal("bundled an empty directory")
	}
	if err := runBundle(false, 0, 0, 0, false, 1, []string{filepath.Join(dir, "missing"), dir}); err == nil {
		t.Fatal("unbundled a missing archive")
	}
}
