package ceresz_test

import (
	"bytes"
	"fmt"
	"math"

	"ceresz"
)

// ExampleCompress round-trips a field under a relative error bound.
func ExampleCompress() {
	data := make([]float32, 3200)
	for i := range data {
		data[i] = float32(math.Sin(float64(i) * 0.01))
	}
	comp, stats, err := ceresz.Compress(nil, data, ceresz.REL(1e-3), ceresz.Options{})
	if err != nil {
		panic(err)
	}
	rec, err := ceresz.Decompress(nil, comp)
	if err != nil {
		panic(err)
	}
	var maxErr float64
	for i := range data {
		if e := math.Abs(float64(rec[i]) - float64(data[i])); e > maxErr {
			maxErr = e
		}
	}
	fmt.Printf("blocks: %d, bound held: %v\n", stats.Blocks, maxErr <= stats.Eps)
	// Output:
	// blocks: 100, bound held: true
}

// ExampleStreamWriter frames independently-decodable chunks.
func ExampleStreamWriter() {
	var buf bytes.Buffer
	sw := ceresz.NewStreamWriter(&buf, ceresz.ABS(1e-2), ceresz.Options{})
	for c := 0; c < 3; c++ {
		chunk := make([]float32, 640)
		for i := range chunk {
			chunk[i] = float32(c) + float32(math.Cos(float64(i)*0.05))
		}
		if _, err := sw.WriteChunk(chunk); err != nil {
			panic(err)
		}
	}
	sr := ceresz.NewStreamReader(bytes.NewReader(buf.Bytes()))
	n := 0
	for {
		chunk, err := sr.Next()
		if err != nil {
			break
		}
		n += len(chunk)
	}
	fmt.Printf("decoded %d elements from %d chunks\n", n, sw.Chunks)
	// Output:
	// decoded 1920 elements from 3 chunks
}

// ExampleBundleWriter packs two fields into one indexed archive.
func ExampleBundleWriter() {
	temp := make([]float32, 32*32)
	for i := range temp {
		temp[i] = 280 + float32(math.Sin(float64(i)*0.02))
	}
	bw := ceresz.NewBundleWriter()
	if _, err := bw.AddField("temperature", ceresz.Dims2(32, 32), temp, ceresz.REL(1e-3), ceresz.Options{}); err != nil {
		panic(err)
	}
	b, err := bw.Bytes()
	if err != nil {
		panic(err)
	}
	br, err := ceresz.OpenBundle(b)
	if err != nil {
		panic(err)
	}
	data, field, err := br.ReadField("temperature")
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s: %dx%d, %d elements, %s\n",
		field.Name, field.Dims.Nx, field.Dims.Ny, len(data), field.Elem)
	// Output:
	// temperature: 32x32, 1024 elements, float32
}

// ExampleSimulateCompress runs the compressor on a simulated CS-2 mesh.
func ExampleSimulateCompress() {
	data := make([]float32, 32*64)
	for i := range data {
		data[i] = float32(math.Sin(float64(i) * 0.03))
	}
	host, _, err := ceresz.Compress(nil, data, ceresz.REL(1e-3), ceresz.Options{})
	if err != nil {
		panic(err)
	}
	res, err := ceresz.SimulateCompress(data, ceresz.REL(1e-3), ceresz.MeshConfig{Rows: 2, Cols: 2})
	if err != nil {
		panic(err)
	}
	fmt.Printf("byte-identical to host: %v\n", bytes.Equal(res.Bytes, host))
	// Output:
	// byte-identical to host: true
}
