package core

import (
	"bytes"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"ceresz/internal/quant"
)

// parallelTestWorkers is the worker counts the differential tests sweep:
// sequential, minimal sharding, the host's core count, and a count far
// above it (shards are decoupled from pool concurrency, so the stitch path
// runs at any of these even on a 1-CPU host).
func parallelTestWorkers() []int {
	return []int{1, 2, runtime.GOMAXPROCS(0), 3*runtime.GOMAXPROCS(0) + 1}
}

func parallelTestData(n int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float32, n)
	v := 0.0
	for i := range data {
		v += rng.NormFloat64() * 0.02
		data[i] = float32(math.Sin(float64(i)*0.003)*3 + v)
	}
	// A few pathological values so verbatim blocks land mid-stream.
	if n > 100 {
		data[n/3] = float32(math.Inf(1))
		data[n/2] = float32(math.NaN())
		data[2*n/3] = math.MaxFloat32
	}
	return data
}

// TestParallelCompressByteIdentity is the tentpole invariant: for every
// worker count, eps and fixed-bound modes, block sizes and input shapes —
// including tiny inputs with fewer blocks than workers — the parallel
// compressor's bytes equal the sequential reference's.
func TestParallelCompressByteIdentity(t *testing.T) {
	sizes := []int{0, 1, 7, 31, 32, 33, 100, 1000, 64 << 10}
	for _, n := range sizes {
		data := parallelTestData(n, int64(n)+1)
		for _, L := range []int{8, 32, 96} {
			for _, rel := range []bool{false, true} {
				var bound quant.Bound
				if rel {
					bound = quant.REL(1e-3)
				} else {
					bound = quant.ABS(1e-3)
				}
				seq, seqStats, err := Compress(nil, data, Options{Bound: bound, BlockLen: L, Workers: 1})
				if err != nil {
					t.Fatalf("n=%d L=%d rel=%v: sequential: %v", n, L, rel, err)
				}
				for _, w := range parallelTestWorkers() {
					par, parStats, err := Compress(nil, data, Options{Bound: bound, BlockLen: L, Workers: w})
					if err != nil {
						t.Fatalf("n=%d L=%d rel=%v workers=%d: %v", n, L, rel, w, err)
					}
					if !bytes.Equal(par, seq) {
						t.Fatalf("n=%d L=%d rel=%v workers=%d: stream differs from sequential (%d vs %d bytes)",
							n, L, rel, w, len(par), len(seq))
					}
					if *parStats != *seqStats {
						t.Fatalf("n=%d L=%d rel=%v workers=%d: stats differ: %+v vs %+v",
							n, L, rel, w, parStats, seqStats)
					}
				}
			}
		}
	}
}

// TestParallelDecompressByteIdentity checks the decode side of the
// invariant, plus negative workers (= all cores).
func TestParallelDecompressByteIdentity(t *testing.T) {
	for _, n := range []int{0, 1, 33, 1000, 64 << 10} {
		data := parallelTestData(n, int64(n)+2)
		comp, _, err := Compress(nil, data, Options{Bound: quant.ABS(1e-3), Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		seq, _, err := Decompress(nil, comp, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range append(parallelTestWorkers(), -1) {
			par, m, err := Decompress(nil, comp, w)
			if err != nil {
				t.Fatalf("n=%d workers=%d: %v", n, w, err)
			}
			if m.Elements != n || len(par) != len(seq) {
				t.Fatalf("n=%d workers=%d: decoded %d elements, want %d", n, w, len(par), len(seq))
			}
			for i := range seq {
				if math.Float32bits(par[i]) != math.Float32bits(seq[i]) {
					t.Fatalf("n=%d workers=%d: bit mismatch at %d", n, w, i)
				}
			}
		}
	}
}

// TestParallelCompress64ByteIdentity covers the float64 twin for both
// bound modes and tiny inputs.
func TestParallelCompress64ByteIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{0, 5, 33, 1000, 16 << 10} {
		data := make([]float64, n)
		v := 0.0
		for i := range data {
			v += rng.NormFloat64() * 0.01
			data[i] = math.Cos(float64(i)*0.007) + v
		}
		for _, rel := range []bool{false, true} {
			var bound quant.Bound
			if rel {
				bound = quant.REL(1e-4)
			} else {
				bound = quant.ABS(1e-6)
			}
			seq, _, err := Compress64(nil, data, Options{Bound: bound, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			seqOut, _, err := Decompress64(nil, seq, 1)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range parallelTestWorkers() {
				par, _, err := Compress64(nil, data, Options{Bound: bound, Workers: w})
				if err != nil {
					t.Fatalf("n=%d rel=%v workers=%d: %v", n, rel, w, err)
				}
				if !bytes.Equal(par, seq) {
					t.Fatalf("n=%d rel=%v workers=%d: float64 stream differs from sequential", n, rel, w)
				}
				parOut, _, err := Decompress64(nil, seq, w)
				if err != nil {
					t.Fatalf("n=%d rel=%v workers=%d: decompress64: %v", n, rel, w, err)
				}
				for i := range seqOut {
					if math.Float64bits(parOut[i]) != math.Float64bits(seqOut[i]) {
						t.Fatalf("n=%d rel=%v workers=%d: decode bit mismatch at %d", n, rel, w, i)
					}
				}
			}
		}
	}
}

// TestParallelConcurrentCalls drives concurrent parallel Compress calls —
// the serving shape, where several requests shard onto one shared pool —
// each checked against the sequential reference. Primarily a -race target.
func TestParallelConcurrentCalls(t *testing.T) {
	data := parallelTestData(32<<10, 17)
	seq, _, err := Compress(nil, data, Options{Bound: quant.ABS(1e-3), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	const callers = 8
	done := make(chan error, callers)
	for k := 0; k < callers; k++ {
		go func(k int) {
			for i := 0; i < 3; i++ {
				par, _, err := Compress(nil, data, Options{Bound: quant.ABS(1e-3), Workers: 2 + k%5})
				if err != nil {
					done <- err
					return
				}
				if !bytes.Equal(par, seq) {
					t.Errorf("caller %d: stream differs from sequential", k)
				}
				out, _, err := Decompress(nil, par, 2+k%5)
				if err != nil {
					done <- err
					return
				}
				_ = out
			}
			done <- nil
		}(k)
	}
	for k := 0; k < callers; k++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestParallelDecompressErrorSurfaces corrupts a mid-stream block and
// checks the parallel decoder reports it (ErrBadStream) just like the
// sequential one, at every worker count.
func TestParallelDecompressErrorSurfaces(t *testing.T) {
	data := parallelTestData(4096, 23)
	comp, _, err := Compress(nil, data, Options{Bound: quant.ABS(1e-3), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, offsets, err := BlockOffsets(comp)
	if err != nil {
		t.Fatal(err)
	}
	bad := bytes.Clone(comp)
	bad[StreamHeaderSize+offsets[len(offsets)/2]] = 0xFE // invalid width header
	for _, w := range parallelTestWorkers() {
		if _, _, err := Decompress(nil, bad, w); err == nil {
			t.Fatalf("workers=%d: corrupted stream decoded without error", w)
		}
	}
}
