// Package core implements the CereSZ error-bounded lossy compressor
// (paper §3): block-wise pre-quantization → 1D Lorenzo prediction →
// fixed-length encoding, plus the reverse decompression path. This is the
// host (reference) implementation; the same stage kernels are also executed
// by the simulated Cerebras WSE pipeline (internal/wse, internal/mapping),
// whose output is bit-identical to this package's.
//
// The host hot path runs the three stages as one fused pass per block
// (fusedForward: quantize, strictness check, Lorenzo delta, sign split and
// width in a single loop, then a word-parallel bit shuffle straight into
// the output), with pooled per-worker scratch so steady-state compression
// and decompression perform zero allocations. The unfused stage-by-stage
// pipeline is retained (encodeRef) both as the differential-testing
// reference and as the body run for telemetry-sampled blocks, because the
// per-stage timing split it produces models the WSE sub-stage pipeline.
//
// The compressed stream is self-describing:
//
//	offset size  field
//	0      4     magic "CSZ1"
//	4      1     header bytes per block (4 = CereSZ, 1 = SZp family)
//	5      1     flags (bit 0: element type, 0 = float32)
//	6      2     block length L (uint16, multiple of 8)
//	8      8     element count N (uint64)
//	16     8     resolved absolute error bound ε (float64 bits)
//	24     …     ⌈N/L⌉ blocks (flenc wire format; the trailing partial
//	             block is zero-padded to L elements before quantization)
//
// Every block is independent (paper §3: "compressed within each block
// independently"), which is what allows the naive mapping of blocks to PE
// rows on the WSE.
package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"runtime"
	"slices"
	"sync"
	"time"

	"ceresz/internal/flenc"
	"ceresz/internal/hostpool"
	"ceresz/internal/lorenzo"
	"ceresz/internal/quant"
	"ceresz/internal/telemetry"
)

// Telemetry instruments for the host path (telemetry.Default, disabled
// unless a CLI opts in). Per-block cost when disabled is one predictable
// branch; per-stage timings are sampled (one block in stageSampleEvery)
// so the enabled path stays well under the 5% overhead budget.
var (
	telCompress           = telemetry.T("core.compress")
	telDecompress         = telemetry.T("core.decompress")
	telCompressBlocks     = telemetry.C("core.compress.blocks")
	telCompressBytesIn    = telemetry.C("core.compress.bytes_in")
	telCompressBytesOut   = telemetry.C("core.compress.bytes_out")
	telCompressZero       = telemetry.C("core.compress.zero_blocks")
	telCompressVerbatim   = telemetry.C("core.compress.verbatim_blocks")
	telDecompressBlocks   = telemetry.C("core.decompress.blocks")
	telDecompressBytesIn  = telemetry.C("core.decompress.bytes_in")
	telDecompressBytesOut = telemetry.C("core.decompress.bytes_out")
	telWorkers            = telemetry.G("core.workers.active")
	telStageQuantNs       = telemetry.C("core.stage.quantize_ns")
	telStageLorenzoNs     = telemetry.C("core.stage.lorenzo_ns")
	telStageEncodeNs      = telemetry.C("core.stage.encode_ns")
	telStageSampled       = telemetry.C("core.stage.sampled_blocks")
)

// stageSampleEvery is the per-stage timing sample period (a power of two):
// one block in 1024 runs the stage-by-stage reference pipeline under four
// clock reads, every other block runs the fused kernel behind one branch.
const stageSampleEvery = 1024

// Magic identifies a CereSZ stream.
var Magic = [4]byte{'C', 'S', 'Z', '1'}

// StreamHeaderSize is the size of the fixed container header in bytes.
const StreamHeaderSize = 24

// DefaultBlockLen is the block size used throughout the paper (§5.1.1):
// 32 elements, the option with the highest compression ratio that satisfies
// the WSE's 16/32-bit transfer granularity.
const DefaultBlockLen = 32

// Options configures a compression pass.
type Options struct {
	// Bound is the user error bound (ABS ε or value-range REL λ).
	Bound quant.Bound
	// BlockLen is the number of elements per block; it must be a positive
	// multiple of 8. Zero selects DefaultBlockLen.
	BlockLen int
	// HeaderBytes is the per-block fixed-length header size:
	// flenc.HeaderU32 (CereSZ) or flenc.HeaderU8 (SZp family).
	// Zero selects flenc.HeaderU32.
	HeaderBytes int
	// Workers bounds host-side parallelism. 0 and 1 select the sequential
	// path (which is also the zero-allocation path); values > 1 shard the
	// block range over the shared host worker pool (internal/hostpool)
	// with pooled per-shard buffers; negative uses GOMAXPROCS. Output
	// bytes are identical regardless.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.BlockLen == 0 {
		o.BlockLen = DefaultBlockLen
	}
	if o.HeaderBytes == 0 {
		o.HeaderBytes = flenc.HeaderU32
	}
	if o.Workers < 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	} else if o.Workers == 0 {
		o.Workers = 1
	}
	return o
}

func (o Options) validate() error {
	if o.BlockLen <= 0 || o.BlockLen%8 != 0 {
		return fmt.Errorf("core: block length %d must be a positive multiple of 8", o.BlockLen)
	}
	if o.BlockLen > math.MaxUint16 {
		return fmt.Errorf("core: block length %d exceeds container limit %d", o.BlockLen, math.MaxUint16)
	}
	if o.HeaderBytes != flenc.HeaderU32 && o.HeaderBytes != flenc.HeaderU8 {
		return fmt.Errorf("core: unsupported header size %d", o.HeaderBytes)
	}
	return nil
}

// Stats reports what a compression pass produced.
type Stats struct {
	// Elements is the number of input elements N.
	Elements int
	// Blocks is ⌈N/L⌉.
	Blocks int
	// ZeroBlocks counts blocks stored as a bare header.
	ZeroBlocks int
	// VerbatimBlocks counts blocks stored raw due to quantization overflow.
	VerbatimBlocks int
	// WidthHistogram[w] counts blocks whose fixed length is w (0..32).
	WidthHistogram [flenc.MaxWidth + 1]int
	// CompressedBytes is the total stream size including the container header.
	CompressedBytes int
	// Eps is the resolved absolute error bound.
	Eps float64
}

// Ratio returns original size / compressed size for float32 input.
func (s *Stats) Ratio() float64 {
	if s.CompressedBytes == 0 {
		return 0
	}
	return float64(4*s.Elements) / float64(s.CompressedBytes)
}

// MeanWidth returns the average fixed length over non-zero, non-verbatim
// blocks, or 0 if there are none.
func (s *Stats) MeanWidth() float64 {
	var n, sum int
	for w := 1; w <= flenc.MaxWidth; w++ {
		n += s.WidthHistogram[w]
		sum += w * s.WidthHistogram[w]
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// Meta describes a parsed stream header.
type Meta struct {
	HeaderBytes int
	BlockLen    int
	Elements    int
	Eps         float64
	// Elem is the stream's element type (Float32 or Float64).
	Elem Elem
}

// Blocks returns the number of blocks in the stream.
func (m Meta) Blocks() int {
	return (m.Elements + m.BlockLen - 1) / m.BlockLen
}

// MinStreamBytes returns the smallest stream that could carry the header's
// element count: every block costs at least its per-block header (an
// all-zero stream is exactly that). Decode paths check it before sizing
// the offsets table or the output, so a hostile element count in an
// otherwise tiny input fails fast instead of driving huge allocations.
func (m Meta) MinStreamBytes() int {
	return StreamHeaderSize + m.Blocks()*m.HeaderBytes
}

// checkPlausible rejects a stream whose header promises more blocks than
// its byte length could possibly hold.
func checkPlausible(m Meta, streamLen int) error {
	if streamLen < m.MinStreamBytes() {
		return fmt.Errorf("%w: header declares %d elements (%d blocks, ≥%d bytes), stream has %d bytes",
			ErrBadStream, m.Elements, m.Blocks(), m.MinStreamBytes(), streamLen)
	}
	return nil
}

// ErrBadStream is wrapped by all stream-parsing failures.
var ErrBadStream = errors.New("core: malformed stream")

// Compress appends the CereSZ stream for data to dst (which may be nil) and
// returns the extended slice together with compression statistics.
func Compress(dst []byte, data []float32, opts Options) ([]byte, *Stats, error) {
	stats := new(Stats)
	dst, err := CompressInto(dst, data, opts, stats)
	if err != nil {
		return dst, nil, err
	}
	return dst, stats, nil
}

// CompressInto is Compress writing its statistics into a caller-provided
// Stats (overwritten, not accumulated). With Workers ≤ 1 and a dst of
// sufficient capacity it performs zero allocations in steady state.
func CompressInto(dst []byte, data []float32, opts Options, stats *Stats) ([]byte, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return dst, err
	}
	minV, maxV := quant.Range(data)
	eps, err := opts.Bound.Resolve(minV, maxV)
	if err != nil {
		return dst, err
	}
	return compressEps(dst, data, eps, opts, stats)
}

// CompressWithEps is Compress with a pre-resolved absolute bound; the
// baselines use it to guarantee all compressors see the same ε.
func CompressWithEps(dst []byte, data []float32, eps float64, opts Options) ([]byte, *Stats, error) {
	stats := new(Stats)
	dst, err := CompressWithEpsInto(dst, data, eps, opts, stats)
	if err != nil {
		return dst, nil, err
	}
	return dst, stats, nil
}

// CompressWithEpsInto is CompressWithEps writing into a caller-provided
// Stats, allocation-free in steady state like CompressInto.
func CompressWithEpsInto(dst []byte, data []float32, eps float64, opts Options, stats *Stats) ([]byte, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return dst, err
	}
	if !(eps > 0) {
		return dst, quant.ErrNonPositiveBound
	}
	return compressEps(dst, data, eps, opts, stats)
}

func compressEps(dst []byte, data []float32, eps float64, opts Options, stats *Stats) ([]byte, error) {
	defer telCompress.Start().End()
	q, err := quant.MakeQuantizer(eps)
	if err != nil {
		return dst, err
	}
	L := opts.BlockLen
	nBlocks := (len(data) + L - 1) / L

	*stats = Stats{Elements: len(data), Blocks: nBlocks, Eps: eps}

	// Container header.
	start := len(dst)
	dst = AppendStreamHeader(dst, Meta{
		HeaderBytes: opts.HeaderBytes,
		BlockLen:    L,
		Elements:    len(data),
		Eps:         eps,
	})

	if nBlocks == 0 {
		stats.CompressedBytes = len(dst) - start
		return dst, nil
	}

	workers := opts.Workers
	if workers > nBlocks {
		workers = nBlocks
	}
	if workers <= 1 {
		enc := getEncoder(L, opts.HeaderBytes, q)
		for b := 0; b < nBlocks; b++ {
			dst = enc.encode(dst, blockSlice(data, b, L), stats)
		}
		putEncoder(enc)
		stats.CompressedBytes = len(dst) - start
		recordCompressTelemetry(stats)
		return dst, nil
	}

	// Parallel path: shard the block range over the shared host pool
	// (internal/hostpool), encode each shard into a pooled buffer, then
	// stitch the shards back in order. The output is byte-identical to the
	// sequential path at any worker count.
	sp := getShards(workers)
	shards := *sp
	hostpool.Run(workers, nBlocks, func(k, lo, hi int) {
		telWorkers.Add(1)
		defer telWorkers.Add(-1)
		enc := getEncoder(L, opts.HeaderBytes, q)
		sb := &shards[k]
		sb.stats = Stats{}
		// Worst case: every block verbatim.
		sb.buf = slices.Grow(sb.buf[:0], (hi-lo)*flenc.VerbatimSize(L, opts.HeaderBytes))
		for b := lo; b < hi; b++ {
			sb.buf = enc.encode(sb.buf, blockSlice(data, b, L), &sb.stats)
		}
		putEncoder(enc)
	})
	for i := range shards {
		dst = append(dst, shards[i].buf...)
		stats.ZeroBlocks += shards[i].stats.ZeroBlocks
		stats.VerbatimBlocks += shards[i].stats.VerbatimBlocks
		for w := range stats.WidthHistogram {
			stats.WidthHistogram[w] += shards[i].stats.WidthHistogram[w]
		}
	}
	putShards(sp)
	stats.CompressedBytes = len(dst) - start
	recordCompressTelemetry(stats)
	return dst, nil
}

// recordCompressTelemetry publishes a finished pass's aggregates. One call
// per pass, so its cost is independent of the data size.
func recordCompressTelemetry(stats *Stats) {
	if !telemetry.Enabled() {
		return
	}
	telCompressBlocks.Add(int64(stats.Blocks))
	telCompressBytesIn.Add(int64(4 * stats.Elements))
	telCompressBytesOut.Add(int64(stats.CompressedBytes))
	telCompressZero.Add(int64(stats.ZeroBlocks))
	telCompressVerbatim.Add(int64(stats.VerbatimBlocks))
}

// shardBuf is one shard's output in a parallel pass: a recycled byte
// buffer (compress), per-shard stats to merge, and a per-shard error
// (decompress). Recycling the buffers through shardSetPool is what lets
// Workers > 1 amortize its per-call allocations across calls.
type shardBuf struct {
	buf   []byte
	stats Stats
	err   error
}

// shardSetPool recycles the per-call shard tables (and their buffers)
// between parallel Compress/Decompress passes.
var shardSetPool sync.Pool

func getShards(n int) *[]shardBuf {
	p, _ := shardSetPool.Get().(*[]shardBuf)
	if p == nil {
		s := make([]shardBuf, n)
		return &s
	}
	if cap(*p) < n {
		*p = make([]shardBuf, n)
	}
	*p = (*p)[:n]
	return p
}

func putShards(p *[]shardBuf) { shardSetPool.Put(p) }

// blockSlice returns block b of data (length ≤ L; the caller pads).
func blockSlice(data []float32, b, L int) []float32 {
	lo := b * L
	hi := lo + L
	if hi > len(data) {
		hi = len(data)
	}
	return data[lo:hi]
}

// blockEncoder holds the per-worker scratch state for encoding blocks,
// plus local (unsynchronized) telemetry accumulators flushed once per
// worker. Encoders are recycled through encoderPool; getEncoder resets the
// per-pass state and rebuilds the buffers only when L changes.
type blockEncoder struct {
	L       int
	hdr     int
	q       quant.Quantizer
	padded  []float32
	scaled  []float64
	codes   []int32
	scratch *flenc.Block

	sample                       bool // telemetry enabled when created
	n                            int  // blocks encoded so far
	quantNs, lorenzoNs, encodeNs int64
	sampled                      int64
}

func newBlockEncoder(L, headerBytes int, q quant.Quantizer) *blockEncoder {
	return &blockEncoder{
		L:       L,
		hdr:     headerBytes,
		q:       q,
		padded:  make([]float32, L),
		scaled:  make([]float64, L),
		codes:   make([]int32, L),
		scratch: flenc.NewBlock(L),
		sample:  telemetry.Enabled(),
	}
}

var encoderPool sync.Pool

func getEncoder(L, headerBytes int, q quant.Quantizer) *blockEncoder {
	e, _ := encoderPool.Get().(*blockEncoder)
	if e == nil || e.L != L {
		return newBlockEncoder(L, headerBytes, q)
	}
	e.hdr = headerBytes
	e.q = q
	e.sample = telemetry.Enabled()
	e.n = 0
	e.quantNs, e.lorenzoNs, e.encodeNs, e.sampled = 0, 0, 0, 0
	return e
}

// putEncoder flushes the encoder's sampled stage timings — one batch of
// atomic adds per worker, not per block — and recycles it.
func putEncoder(e *blockEncoder) {
	if e.sampled != 0 {
		telStageQuantNs.Add(e.quantNs)
		telStageLorenzoNs.Add(e.lorenzoNs)
		telStageEncodeNs.Add(e.encodeNs)
		telStageSampled.Add(e.sampled)
	}
	encoderPool.Put(e)
}

// encode appends one encoded block to dst, updating stats.
func (e *blockEncoder) encode(dst []byte, block []float32, stats *Stats) []byte {
	src := block
	if len(block) < e.L {
		copy(e.padded, block)
		clear(e.padded[len(block):])
		src = e.padded
	}
	// Sampled per-stage timing: one block in stageSampleEvery runs the
	// stage-by-stage reference pipeline (byte-identical output) under four
	// clock reads; the rest run the fused kernel behind one branch.
	if e.sample && e.n&(stageSampleEvery-1) == 0 {
		e.n++
		return e.encodeRef(dst, src, stats)
	}
	e.n++
	w, ok := e.fusedForward(src)
	if !ok {
		stats.VerbatimBlocks++
		return appendVerbatim(dst, src, e.hdr)
	}
	stats.WidthHistogram[w]++
	if w == 0 {
		stats.ZeroBlocks++
	}
	return flenc.AppendEncoded(dst, e.scratch.Abs[:e.L], e.scratch.Signs[:e.L/8], w, e.hdr)
}

// fusedForward runs stages ①+② and the Sign/Max/GetLength sub-stages of ③
// in a single pass over one padded block: quantize (multiply + floor),
// strictness check, Lorenzo delta, branchless sign split into
// scratch.Abs/Signs, and width via OR-accumulation
// (bits.Len32(a|b) == max(bits.Len32(a), bits.Len32(b))).
//
// ok == false means the block must be stored verbatim. The decision is
// identical to the unfused pipeline's: that one stores verbatim iff any
// element fails the int32-range check or the strictness check, so exiting
// at the first failure — before the later checks run — selects the same
// blocks, and verbatim payloads are the raw floats regardless.
func (e *blockEncoder) fusedForward(src []float32) (w uint, ok bool) {
	abs := e.scratch.Abs[:e.L]
	signs := e.scratch.Signs[:e.L/8]
	recip, twoE, eps := e.q.Recip(), e.q.TwoEps(), e.q.Eps()
	var acc uint32
	var prev int32
	for j := range signs {
		v := src[8*j : 8*j+8 : 8*j+8]
		a := abs[8*j : 8*j+8 : 8*j+8]
		var sb uint32
		for i, x := range v {
			// ① quantize: p = floor(x/(2ε) + 0.5). The negated range
			// check also fails NaN (all comparisons false), matching
			// quant.Round's explicit IsNaN test.
			f := math.Floor(float64(x)*recip + 0.5)
			if !(f >= math.MinInt32 && f <= math.MaxInt32) {
				return 0, false
			}
			p := int32(f)
			// Strictness: the float32 rounding of p·2ε can exceed ε when
			// ε < ulp(x)/2; such blocks go verbatim (see encodeRef).
			rec := float32(float64(p) * twoE)
			if !(math.Abs(float64(rec)-float64(x)) <= eps) {
				return 0, false
			}
			// ② Lorenzo delta, ③ sign split (branchless |d|).
			d := p - prev
			prev = p
			neg := uint32(d) >> 31
			u := (uint32(d) ^ -neg) + neg
			sb |= neg << i
			a[i] = u
			acc |= u
		}
		signs[j] = byte(sb)
	}
	return flenc.Width(acc), true
}

// encodeRef is the retained stage-by-stage pipeline: Mul, Round, the
// strictness sweep, lorenzo.Forward and flenc.EncodeBlockRef as separate
// loops, exactly the sub-stage decomposition the WSE mapping schedules.
// Its output is byte-identical to the fused path (differential fuzz
// asserts this), which is why telemetry-sampled blocks can run it without
// perturbing the stream: the per-stage timing split it records keeps
// modeling the pipeline stages that the fused kernel collapses.
func (e *blockEncoder) encodeRef(dst []byte, src []float32, stats *Stats) []byte {
	t0 := time.Now()
	// Stage ①: pre-quantization (Mul then Round, paper Table 2).
	e.q.MulF32(e.scaled, src)
	if !quant.Round(e.codes, e.scaled) {
		// Quantization overflow (or NaN/Inf): store the block verbatim.
		stats.VerbatimBlocks++
		return appendVerbatim(dst, src, e.hdr)
	}
	// Strictness check: p·2ε is within ε of the input in float64, but the
	// final float32 rounding of the reconstruction can add up to half a ulp
	// of the value. When ε is below that (ε < ulp(v)/2 — e.g. very tight
	// ABS bounds on large magnitudes) no quantized representation can honor
	// the bound, so store the block verbatim. This is the fixed-length
	// analogue of SZ's "unpredictable data" path; on the paper's REL
	// 1e-2…1e-4 regimes it never triggers.
	for i, p := range e.codes {
		rec := float32(float64(p) * e.q.TwoEps())
		if !(math.Abs(float64(rec)-float64(src[i])) <= e.q.Eps()) {
			stats.VerbatimBlocks++
			return appendVerbatim(dst, src, e.hdr)
		}
	}
	t1 := time.Now()
	// Stage ②: 1D Lorenzo prediction (first-order difference).
	lorenzo.Forward(e.codes, e.codes)
	t2 := time.Now()
	// Stage ③: fixed-length encoding.
	var w uint
	dst, w = flenc.EncodeBlockRef(dst, e.codes, e.hdr, e.scratch)
	t3 := time.Now()
	stats.WidthHistogram[w]++
	if w == 0 {
		stats.ZeroBlocks++
	}
	e.quantNs += t1.Sub(t0).Nanoseconds()
	e.lorenzoNs += t2.Sub(t1).Nanoseconds()
	e.encodeNs += t3.Sub(t2).Nanoseconds()
	e.sampled++
	return dst
}

// quantizeStrict32 quantizes one block into codes and verifies every
// reconstruction honors ε, reporting false (verbatim) on the first
// failure. Same fused check as fusedForward, shared with the tiled
// (2D-Lorenzo) variant whose prediction cannot fuse into the scan order.
func quantizeStrict32(q *quant.Quantizer, codes []int32, src []float32) bool {
	recip, twoE, eps := q.Recip(), q.TwoEps(), q.Eps()
	for i, x := range src {
		f := math.Floor(float64(x)*recip + 0.5)
		if !(f >= math.MinInt32 && f <= math.MaxInt32) {
			return false
		}
		p := int32(f)
		rec := float32(float64(p) * twoE)
		if !(math.Abs(float64(rec)-float64(x)) <= eps) {
			return false
		}
		codes[i] = p
	}
	return true
}

func appendVerbatim(dst []byte, block []float32, headerBytes int) []byte {
	switch headerBytes {
	case flenc.HeaderU32:
		var h [4]byte
		binary.LittleEndian.PutUint32(h[:], flenc.VerbatimU32)
		dst = append(dst, h[:]...)
	case flenc.HeaderU8:
		dst = append(dst, flenc.VerbatimU8)
	default:
		panic(fmt.Sprintf("core: unsupported header size %d", headerBytes))
	}
	dst = slices.Grow(dst, 4*len(block))
	for _, v := range block {
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(v))
	}
	return dst
}

// AppendStreamHeader appends the 24-byte container header described by m.
// It is shared by the host compressor and the simulated WSE pipeline so
// both emit identical streams.
func AppendStreamHeader(dst []byte, m Meta) []byte {
	var hdr [StreamHeaderSize]byte
	copy(hdr[0:4], Magic[:])
	hdr[4] = byte(m.HeaderBytes)
	hdr[5] = byte(m.Elem)
	binary.LittleEndian.PutUint16(hdr[6:8], uint16(m.BlockLen))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(m.Elements))
	binary.LittleEndian.PutUint64(hdr[16:24], math.Float64bits(m.Eps))
	return append(dst, hdr[:]...)
}

// scanOffsets walks the stream body filling offsets (length blocks+1) with
// the byte offset of every block plus a final end offset. elemSize is the
// verbatim payload element width (4 for float32, 8 for float64).
func scanOffsets(body []byte, m Meta, offsets []int, elemSize int) error {
	nBlocks := m.Blocks()
	pos := 0
	for b := 0; b < nBlocks; b++ {
		offsets[b] = pos
		v, n, err := flenc.Header(body[pos:], m.HeaderBytes)
		if err != nil {
			return fmt.Errorf("%w: block %d: %v", ErrBadStream, b, err)
		}
		switch {
		case v == flenc.ZeroMarker:
			pos += n
		case v == flenc.VerbatimU32:
			pos += m.HeaderBytes + elemSize*m.BlockLen
		case v <= flenc.MaxWidth:
			pos += flenc.EncodedSize(uint(v), m.BlockLen, m.HeaderBytes)
		default:
			return fmt.Errorf("%w: block %d: invalid fixed length %d", ErrBadStream, b, v)
		}
		if pos > len(body) {
			return fmt.Errorf("%w: block %d overruns stream", ErrBadStream, b)
		}
	}
	offsets[nBlocks] = pos
	return nil
}

// offsetsPool recycles block-offset tables between Decompress calls.
var offsetsPool sync.Pool

func getOffsets(n int) *[]int {
	p, _ := offsetsPool.Get().(*[]int)
	if p == nil {
		s := make([]int, n)
		return &s
	}
	if cap(*p) < n {
		*p = make([]int, n)
	}
	*p = (*p)[:n]
	return p
}

// BlockOffsets parses the container header and scans the stream body,
// returning the parsed metadata and the byte offsets (relative to the body
// start, StreamHeaderSize) of every block plus a final end offset —
// offsets[b]..offsets[b+1] delimits block b. Float32 streams only; the
// float64 path has its own scan (wider verbatim payloads).
func BlockOffsets(comp []byte) (Meta, []int, error) {
	m, err := ParseHeader(comp)
	if err != nil {
		return m, nil, err
	}
	if m.Elem != Float32 {
		return m, nil, fmt.Errorf("%w: stream holds %s elements, expected float32", ErrBadStream, m.Elem)
	}
	if err := checkPlausible(m, len(comp)); err != nil {
		return m, nil, err
	}
	offsets := make([]int, m.Blocks()+1)
	if err := scanOffsets(comp[StreamHeaderSize:], m, offsets, 4); err != nil {
		return m, nil, err
	}
	return m, offsets, nil
}

// ParseHeader decodes and validates the container header.
func ParseHeader(comp []byte) (Meta, error) {
	var m Meta
	if len(comp) < StreamHeaderSize {
		return m, fmt.Errorf("%w: %d bytes is shorter than the %d-byte header", ErrBadStream, len(comp), StreamHeaderSize)
	}
	if comp[0] != Magic[0] || comp[1] != Magic[1] || comp[2] != Magic[2] || comp[3] != Magic[3] {
		return m, fmt.Errorf("%w: bad magic %q", ErrBadStream, comp[0:4])
	}
	m.HeaderBytes = int(comp[4])
	if m.HeaderBytes != flenc.HeaderU32 && m.HeaderBytes != flenc.HeaderU8 {
		return m, fmt.Errorf("%w: unsupported block header size %d", ErrBadStream, m.HeaderBytes)
	}
	switch comp[5] {
	case elemF32:
		m.Elem = Float32
	case elemF64:
		m.Elem = Float64
	default:
		return m, fmt.Errorf("%w: unsupported element type flag %d", ErrBadStream, comp[5])
	}
	m.BlockLen = int(binary.LittleEndian.Uint16(comp[6:8]))
	if m.BlockLen == 0 || m.BlockLen%8 != 0 {
		return m, fmt.Errorf("%w: invalid block length %d", ErrBadStream, m.BlockLen)
	}
	n := binary.LittleEndian.Uint64(comp[8:16])
	if n > math.MaxInt32*64 {
		return m, fmt.Errorf("%w: implausible element count %d", ErrBadStream, n)
	}
	m.Elements = int(n)
	m.Eps = math.Float64frombits(binary.LittleEndian.Uint64(comp[16:24]))
	if !(m.Eps > 0) {
		return m, fmt.Errorf("%w: non-positive error bound %g", ErrBadStream, m.Eps)
	}
	return m, nil
}

// Decompress reconstructs the float32 data from a CereSZ stream, appending
// to dst (which may be nil). workers bounds host parallelism with the same
// semantics as Options.Workers: 0/1 sequential, > 1 sharded over the host
// pool, negative = GOMAXPROCS. With workers 0/1 and a dst of sufficient
// capacity it performs zero allocations in steady state.
func Decompress(dst []float32, comp []byte, workers int) ([]float32, Meta, error) {
	defer telDecompress.Start().End()
	m, err := ParseHeader(comp)
	if err != nil {
		return dst, m, err
	}
	if m.Elem != Float32 {
		return dst, m, fmt.Errorf("%w: stream holds %s elements, expected float32", ErrBadStream, m.Elem)
	}
	if err := checkPlausible(m, len(comp)); err != nil {
		return dst, m, err
	}
	body := comp[StreamHeaderSize:]
	nBlocks := m.Blocks()
	L := m.BlockLen

	// Pass 1: locate block boundaries. Headers are self-describing, so this
	// is a cheap sequential scan (the paper's "pre-known fixed-length"
	// decompression advantage, §3).
	op := getOffsets(nBlocks + 1)
	defer offsetsPool.Put(op)
	offsets := *op
	if err := scanOffsets(body, m, offsets, 4); err != nil {
		return dst, m, err
	}

	q, err := quant.MakeQuantizer(m.Eps)
	if err != nil {
		return dst, m, err
	}

	start := len(dst)
	dst = slices.Grow(dst, m.Elements)[:start+m.Elements]
	out := dst[start:]

	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nBlocks {
		workers = nBlocks
	}
	if workers <= 1 {
		dec := getDecoder(L, m.HeaderBytes, q)
		for b := 0; b < nBlocks; b++ {
			if err := dec.decode(outBlock(out, b, L), body[offsets[b]:offsets[b+1]]); err != nil {
				putDecoder(dec)
				return dst, m, fmt.Errorf("%w: block %d: %v", ErrBadStream, b, err)
			}
		}
		putDecoder(dec)
		recordDecompressTelemetry(m, len(comp))
		return dst, m, nil
	}

	// Parallel path: shards write disjoint regions of out, so no stitch is
	// needed — only the first shard error is reported.
	sp := getShards(workers)
	shards := *sp
	hostpool.Run(workers, nBlocks, func(k, lo, hi int) {
		telWorkers.Add(1)
		defer telWorkers.Add(-1)
		shards[k].err = nil
		dec := getDecoder(L, m.HeaderBytes, q)
		defer putDecoder(dec)
		for b := lo; b < hi; b++ {
			if err := dec.decode(outBlock(out, b, L), body[offsets[b]:offsets[b+1]]); err != nil {
				shards[k].err = fmt.Errorf("%w: block %d: %v", ErrBadStream, b, err)
				return
			}
		}
	})
	var derr error
	for i := range shards {
		if shards[i].err != nil {
			derr = shards[i].err
			break
		}
	}
	putShards(sp)
	if derr != nil {
		return dst, m, derr
	}
	recordDecompressTelemetry(m, len(comp))
	return dst, m, nil
}

// recordDecompressTelemetry publishes a finished pass's aggregates.
func recordDecompressTelemetry(m Meta, compBytes int) {
	if !telemetry.Enabled() {
		return
	}
	telDecompressBlocks.Add(int64(m.Blocks()))
	telDecompressBytesIn.Add(int64(compBytes))
	telDecompressBytesOut.Add(int64(4 * m.Elements))
}

func outBlock(out []float32, b, L int) []float32 {
	lo := b * L
	hi := lo + L
	if hi > len(out) {
		hi = len(out)
	}
	return out[lo:hi]
}

func outBlock64(out []float64, b, L int) []float64 {
	lo := b * L
	hi := lo + L
	if hi > len(out) {
		hi = len(out)
	}
	return out[lo:hi]
}

// blockDecoder holds per-worker decode scratch, recycled via decoderPool.
type blockDecoder struct {
	L       int
	hdr     int
	q       quant.Quantizer
	full    []float32
	scratch *flenc.Block
}

var decoderPool sync.Pool

func getDecoder(L, headerBytes int, q quant.Quantizer) *blockDecoder {
	d, _ := decoderPool.Get().(*blockDecoder)
	if d == nil || d.L != L {
		d = &blockDecoder{
			L:       L,
			full:    make([]float32, L),
			scratch: flenc.NewBlock(L),
		}
	}
	d.hdr = headerBytes
	d.q = q
	return d
}

func putDecoder(d *blockDecoder) { decoderPool.Put(d) }

// decode reconstructs one block (len(out) ≤ L for the trailing block),
// fusing the reverse stages: after the word-parallel unshuffle, one loop
// merges signs, runs the Lorenzo prefix sum and dequantizes — the same
// int32 wraparound arithmetic and float64→float32 rounding as the unfused
// MergeSigns → lorenzo.Inverse → Dequantize sequence, so output bits are
// identical (DecodeBlockRef-based differential fuzz asserts it).
func (d *blockDecoder) decode(out []float32, src []byte) error {
	v, n, err := flenc.Header(src, d.hdr)
	if err != nil {
		return err
	}
	if v == flenc.VerbatimU32 {
		if len(src) < n+4*d.L {
			return fmt.Errorf("truncated verbatim block")
		}
		for i := range out {
			bits := binary.LittleEndian.Uint32(src[n+4*i:])
			out[i] = math.Float32frombits(bits)
		}
		return nil
	}
	// Reverse stage ③: validate and split the body, then unshuffle all
	// planes in one pass.
	signs, planes, w, _, err := flenc.DecodeBody(src, d.L, d.hdr)
	if err != nil {
		return err
	}
	if w == 0 {
		// Zero block: every code is 0 and 0·2ε is +0 exactly.
		clear(out)
		return nil
	}
	full := out
	if len(out) < d.L {
		full = d.full
	}
	abs := d.scratch.Abs[:d.L]
	flenc.Unshuffle(abs, planes, w)
	// Reverse stages ③ (sign merge), ② (prefix sum) and ① (dequantize).
	twoE := d.q.TwoEps()
	var acc int32
	for i, u := range abs {
		dlt := int32(u)
		if signs[i>>3]&(1<<(i&7)) != 0 {
			dlt = int32(-int64(u))
		}
		acc += dlt
		full[i] = float32(float64(acc) * twoE)
	}
	if len(out) < d.L {
		copy(out, full[:len(out)])
	}
	return nil
}
