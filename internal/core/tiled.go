package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"ceresz/internal/flenc"
	"ceresz/internal/lorenzo"
	"ceresz/internal/quant"
)

// Tiled 2D-Lorenzo variant. The paper keeps CereSZ's predictor 1D for
// throughput — "beyond the first-order difference … there are higher
// dimensional Lorenzo prediction methods … Although CereSZ can support
// such prediction methods, in this work we prioritize high throughput"
// (§3) — and warns that 2D prediction costs strided memory access. This
// file implements that supported-but-unused option: the field is re-tiled
// into 8×4-element patches (still 32 elements, so every block-format and
// WSE-mapping property is unchanged) and a 2D Lorenzo transform runs
// within each tile. Blocks stay fully independent; only the gather/scatter
// is strided, exactly the cost the paper predicts.
//
// Measured outcome (TestTiled2DComparableTo1D): the 2D predictor does NOT
// materially improve CereSZ's ratio, because the fixed-length format pays
// for each block's MAXIMUM code and the first element's absolute magnitude
// p₁ dominates that maximum under either predictor. The experiment
// quantifies why the paper's 1D choice is the right pairing for this
// encoding — higher-order prediction only pays off behind entropy coders
// (the SZ/cuSZ baselines).

// Tile geometry: 8 columns × 4 rows = one 32-element block.
const (
	tileW = 8
	tileH = 4
)

// elemF32Tiled marks a tiled-predictor float32 stream in the container's
// flags byte.
const elemF32Tiled byte = 2

// tileDims is the per-tile grid for the 2D Lorenzo transform.
var tileDims = lorenzo.Dims{Nx: tileW, Ny: tileH, Nz: 1}

// tilesOf returns tiles per slice row, per slice, and in total.
func tilesOf(d lorenzo.Dims) (tx, ty, total int) {
	tx = (d.Nx + tileW - 1) / tileW
	ty = (d.Ny + tileH - 1) / tileH
	return tx, ty, tx * ty * d.Nz
}

// CompressTiled compresses a 2D/3D field with per-tile 2D Lorenzo
// prediction. The stream does not carry the grid: DecompressTiled needs
// the same dims (they are part of the dataset's metadata, as with the
// SDRBench archives).
func CompressTiled(dst []byte, data []float32, d lorenzo.Dims, eps float64, opts Options) ([]byte, *Stats, error) {
	opts = opts.withDefaults()
	opts.BlockLen = tileW * tileH
	if err := opts.validate(); err != nil {
		return dst, nil, err
	}
	if err := d.Validate(len(data)); err != nil {
		return dst, nil, err
	}
	if d.Order() < 2 {
		return dst, nil, fmt.Errorf("core: tiled predictor needs a 2D or 3D grid, have %+v", d)
	}
	if !(eps > 0) {
		return dst, nil, quant.ErrNonPositiveBound
	}
	q, err := quant.NewQuantizer(eps)
	if err != nil {
		return dst, nil, err
	}

	_, _, nTiles := tilesOf(d)
	stats := &Stats{Elements: len(data), Blocks: nTiles, Eps: eps}

	start := len(dst)
	var hdr [StreamHeaderSize]byte
	copy(hdr[0:4], Magic[:])
	hdr[4] = byte(opts.HeaderBytes)
	hdr[5] = elemF32Tiled
	binary.LittleEndian.PutUint16(hdr[6:8], uint16(opts.BlockLen))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(len(data)))
	binary.LittleEndian.PutUint64(hdr[16:24], math.Float64bits(eps))
	dst = append(dst, hdr[:]...)

	var (
		tile    [tileW * tileH]float32
		codes   [tileW * tileH]int32
		resid   [tileW * tileH]int32
		scratch = flenc.NewBlock(tileW * tileH)
	)
	for t := 0; t < nTiles; t++ {
		gatherTile(data, d, t, tile[:])
		// Stage ①: fused quantize + strictness check (shared with the 1D
		// path's kernels; 2D prediction itself cannot fuse into the scan).
		if !quantizeStrict32(q, codes[:], tile[:]) {
			stats.VerbatimBlocks++
			dst = appendVerbatim(dst, tile[:], opts.HeaderBytes)
			continue
		}
		// Stage ②: 2D Lorenzo within the tile.
		if err := lorenzo.Forward2D(resid[:], codes[:], tileDims); err != nil {
			panic(err) // fixed dims: unreachable
		}
		// Stage ③.
		var w uint
		dst, w = flenc.EncodeBlock(dst, resid[:], opts.HeaderBytes, scratch)
		stats.WidthHistogram[w]++
		if w == 0 {
			stats.ZeroBlocks++
		}
	}
	stats.CompressedBytes = len(dst) - start
	return dst, stats, nil
}

// DecompressTiled reconstructs a CompressTiled stream; d must match the
// dims used at compression.
func DecompressTiled(dst []float32, comp []byte, d lorenzo.Dims) ([]float32, error) {
	if len(comp) < StreamHeaderSize {
		return dst, fmt.Errorf("%w: short stream", ErrBadStream)
	}
	if comp[0] != Magic[0] || comp[1] != Magic[1] || comp[2] != Magic[2] || comp[3] != Magic[3] {
		return dst, fmt.Errorf("%w: bad magic", ErrBadStream)
	}
	if comp[5] != elemF32Tiled {
		return dst, fmt.Errorf("%w: not a tiled-predictor stream (flag %d)", ErrBadStream, comp[5])
	}
	headerBytes := int(comp[4])
	if headerBytes != flenc.HeaderU32 && headerBytes != flenc.HeaderU8 {
		return dst, fmt.Errorf("%w: unsupported block header size %d", ErrBadStream, headerBytes)
	}
	if bl := int(binary.LittleEndian.Uint16(comp[6:8])); bl != tileW*tileH {
		return dst, fmt.Errorf("%w: tiled stream block length %d, want %d", ErrBadStream, bl, tileW*tileH)
	}
	n := int(binary.LittleEndian.Uint64(comp[8:16]))
	if err := d.Validate(n); err != nil {
		return dst, fmt.Errorf("%w: %v", ErrBadStream, err)
	}
	eps := math.Float64frombits(binary.LittleEndian.Uint64(comp[16:24]))
	q, err := quant.NewQuantizer(eps)
	if err != nil {
		return dst, fmt.Errorf("%w: %v", ErrBadStream, err)
	}

	start := len(dst)
	dst = append(dst, make([]float32, n)...)
	out := dst[start:]

	body := comp[StreamHeaderSize:]
	pos := 0
	var (
		resid   [tileW * tileH]int32
		codes   [tileW * tileH]int32
		tile    [tileW * tileH]float32
		scratch = flenc.NewBlock(tileW * tileH)
	)
	_, _, nTiles := tilesOf(d)
	for t := 0; t < nTiles; t++ {
		v, hn, err := flenc.Header(body[pos:], headerBytes)
		if err != nil {
			return dst, fmt.Errorf("%w: tile %d: %v", ErrBadStream, t, err)
		}
		if v == flenc.VerbatimU32 {
			if len(body)-pos < hn+4*tileW*tileH {
				return dst, fmt.Errorf("%w: tile %d: truncated verbatim tile", ErrBadStream, t)
			}
			for i := range tile {
				tile[i] = math.Float32frombits(binary.LittleEndian.Uint32(body[pos+hn+4*i:]))
			}
			pos += hn + 4*tileW*tileH
		} else {
			consumed, err := flenc.DecodeBlock(resid[:], body[pos:], headerBytes, scratch)
			if err != nil {
				return dst, fmt.Errorf("%w: tile %d: %v", ErrBadStream, t, err)
			}
			pos += consumed
			if err := lorenzo.Inverse2D(codes[:], resid[:], tileDims); err != nil {
				panic(err) // fixed dims: unreachable
			}
			q.Dequantize(tile[:], codes[:])
		}
		scatterTile(out, d, t, tile[:])
	}
	return dst, nil
}

// gatherTile copies tile t of the field into tile, zero-padding cells
// past the grid edge.
func gatherTile(data []float32, d lorenzo.Dims, t int, tile []float32) {
	tx, ty, _ := tilesOf(d)
	z := t / (tx * ty)
	rem := t % (tx * ty)
	tyIdx := rem / tx
	txIdx := rem % tx
	baseX := txIdx * tileW
	baseY := tyIdx * tileH
	slice := z * d.Nx * d.Ny
	for j := 0; j < tileH; j++ {
		y := baseY + j
		for i := 0; i < tileW; i++ {
			x := baseX + i
			if x >= d.Nx || y >= d.Ny {
				tile[j*tileW+i] = 0
				continue
			}
			tile[j*tileW+i] = data[slice+y*d.Nx+x]
		}
	}
}

// scatterTile writes a reconstructed tile back into the field, skipping
// padded cells.
func scatterTile(out []float32, d lorenzo.Dims, t int, tile []float32) {
	tx, ty, _ := tilesOf(d)
	z := t / (tx * ty)
	rem := t % (tx * ty)
	tyIdx := rem / tx
	txIdx := rem % tx
	baseX := txIdx * tileW
	baseY := tyIdx * tileH
	slice := z * d.Nx * d.Ny
	for j := 0; j < tileH; j++ {
		y := baseY + j
		if y >= d.Ny {
			break
		}
		for i := 0; i < tileW; i++ {
			x := baseX + i
			if x >= d.Nx {
				break
			}
			out[slice+y*d.Nx+x] = tile[j*tileW+i]
		}
	}
}
