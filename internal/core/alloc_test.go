package core

import (
	"math"
	"testing"

	"ceresz/internal/quant"
)

// Steady-state allocation contracts: once the destination buffers have
// capacity and the worker pools are warm, sequential Compress/Decompress
// must not touch the heap at all. testing.AllocsPerRun runs with
// GOMAXPROCS=1, and Workers: 1 pins the sequential path explicitly.
// Race-detector instrumentation allocates, so the contracts are only
// checked without it.

func skipUnderRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("race instrumentation allocates; zero-alloc contract checked without -race")
	}
}

func allocTestData(n int) []float32 {
	data := make([]float32, n)
	for i := range data {
		data[i] = float32(math.Sin(float64(i)*0.03)) * 40
	}
	return data
}

func TestCompressZeroAllocSteadyState(t *testing.T) {
	skipUnderRace(t)
	data := allocTestData(4100) // includes a partial trailing block
	opts := Options{Workers: 1, Bound: quant.REL(1e-3)}
	var stats Stats
	var dst []byte
	var err error
	// Warm-up: size dst and populate the encoder pool.
	dst, err = CompressInto(dst, data, opts, &stats)
	if err != nil {
		t.Fatal(err)
	}
	if !(stats.Eps > 0) {
		t.Fatal("warm-up produced no usable stats")
	}
	allocs := testing.AllocsPerRun(20, func() {
		dst, err = CompressInto(dst[:0], data, opts, &stats)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state CompressInto allocates %.1f times per run, want 0", allocs)
	}
}

// TestCompressZeroAllocWorkersZero pins the Workers: 0 contract: the zero
// value means sequential (not GOMAXPROCS), so the default-options path
// stays on the zero-allocation track.
func TestCompressZeroAllocWorkersZero(t *testing.T) {
	skipUnderRace(t)
	data := allocTestData(4100)
	opts := Options{Bound: quant.REL(1e-3)} // Workers: 0 — must stay sequential
	var stats Stats
	dst, err := CompressInto(nil, data, opts, &stats)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		dst, err = CompressInto(dst[:0], data, opts, &stats)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state CompressInto with Workers: 0 allocates %.1f times per run, want 0", allocs)
	}
	out, _, err := Decompress(nil, dst, 0)
	if err != nil {
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(20, func() {
		out, _, err = Decompress(out[:0], dst, 0)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Decompress with workers 0 allocates %.1f times per run, want 0", allocs)
	}
}

func TestCompressWithEpsZeroAllocSteadyState(t *testing.T) {
	skipUnderRace(t)
	data := allocTestData(4096)
	opts := Options{Workers: 1, HeaderBytes: 1}
	var stats Stats
	dst, err := CompressWithEpsInto(nil, data, 1e-3, opts, &stats)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		dst, err = CompressWithEpsInto(dst[:0], data, 1e-3, opts, &stats)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state CompressWithEpsInto allocates %.1f times per run, want 0", allocs)
	}
}

func TestDecompressZeroAllocSteadyState(t *testing.T) {
	skipUnderRace(t)
	data := allocTestData(4100)
	var stats Stats
	comp, err := CompressInto(nil, data, Options{Workers: 1, Bound: quant.REL(1e-3)}, &stats)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := Decompress(nil, comp, 1)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		out, _, err = Decompress(out[:0], comp, 1)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Decompress allocates %.1f times per run, want 0", allocs)
	}
}

func TestCompress64ZeroAllocSteadyState(t *testing.T) {
	skipUnderRace(t)
	data := make([]float64, 4100)
	for i := range data {
		data[i] = math.Cos(float64(i) * 0.01)
	}
	opts := Options{Workers: 1, Bound: quant.ABS(1e-6)}
	var stats Stats
	dst, err := Compress64Into(nil, data, opts, &stats)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		dst, err = Compress64Into(dst[:0], data, opts, &stats)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Compress64Into allocates %.1f times per run, want 0", allocs)
	}
	out, _, err := Decompress64(nil, dst, 1)
	if err != nil {
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(20, func() {
		out, _, err = Decompress64(out[:0], dst, 1)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Decompress64 allocates %.1f times per run, want 0", allocs)
	}
}
