package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ceresz/internal/lorenzo"
)

func smooth2DField(nx, ny int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float32, nx*ny)
	kx := 2 * math.Pi / float64(nx) * 2.3
	ky := 2 * math.Pi / float64(ny) * 1.7
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			out[y*nx+x] = float32(3*math.Sin(kx*float64(x))*math.Cos(ky*float64(y)) +
				0.002*rng.NormFloat64())
		}
	}
	return out
}

func TestTiledRoundTrip(t *testing.T) {
	for _, dims := range []lorenzo.Dims{
		lorenzo.Dims2(64, 32),
		lorenzo.Dims2(61, 29), // ragged edges exercise padding
		lorenzo.Dims3(24, 12, 5),
		lorenzo.Dims2(8, 4), // single tile
	} {
		data := smooth2DField(dims.Nx, dims.Ny*dims.Nz, 1)
		eps := 1e-3
		comp, stats, err := CompressTiled(nil, data, dims, eps, Options{})
		if err != nil {
			t.Fatalf("%+v: %v", dims, err)
		}
		if stats.Blocks <= 0 || stats.CompressedBytes != len(comp) {
			t.Fatalf("%+v: bad stats %+v", dims, stats)
		}
		rec, err := DecompressTiled(nil, comp, dims)
		if err != nil {
			t.Fatalf("%+v: %v", dims, err)
		}
		if len(rec) != len(data) {
			t.Fatalf("%+v: %d elements", dims, len(rec))
		}
		for i := range data {
			if e := math.Abs(float64(rec[i]) - float64(data[i])); e > eps {
				t.Fatalf("%+v: error %g at %d", dims, e, i)
			}
		}
	}
}

func TestTiled2DComparableTo1D(t *testing.T) {
	// A deliberately honest finding: with CereSZ's fixed-length encoding,
	// the per-block cost is set by the MAXIMUM code — and every block's
	// first element carries the full quantized magnitude p₁ regardless of
	// predictor order. Better interior residuals therefore rarely shrink
	// the encoded size, so the 2D predictor lands within a few percent of
	// the 1D one on smooth data. This is exactly why the paper (and
	// SZp/cuSZp) pair block-wise fixed-length coding with the cheap 1D
	// predictor: the expensive predictor buys nothing the format can
	// spend. (Huffman-backed formats like SZ do monetize it — see the SZ
	// baseline's much higher ratios.)
	dims := lorenzo.Dims2(128, 96)
	data := smooth2DField(dims.Nx, dims.Ny, 2)
	eps := 1e-4
	_, tStats, err := CompressTiled(nil, data, dims, eps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, fStats, err := CompressWithEps(nil, data, eps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rel := tStats.Ratio() / fStats.Ratio()
	if rel < 0.8 || rel > 1.25 {
		t.Fatalf("tiled-2D/1D ratio %.2f outside the comparable band (%.2f vs %.2f)",
			rel, tStats.Ratio(), fStats.Ratio())
	}
}

func TestTiledVerbatim(t *testing.T) {
	dims := lorenzo.Dims2(16, 8)
	data := make([]float32, dims.Len())
	for i := range data {
		data[i] = float32(math.Inf(1))
	}
	comp, stats, err := CompressTiled(nil, data, dims, 1e-3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.VerbatimBlocks != stats.Blocks {
		t.Fatalf("verbatim %d of %d", stats.VerbatimBlocks, stats.Blocks)
	}
	rec, err := DecompressTiled(nil, comp, dims)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if !math.IsInf(float64(rec[i]), 1) {
			t.Fatalf("Inf lost at %d", i)
		}
	}
}

func TestTiledValidation(t *testing.T) {
	dims := lorenzo.Dims2(16, 8)
	data := smooth2DField(16, 8, 3)
	if _, _, err := CompressTiled(nil, data, lorenzo.Dims1(len(data)), 1e-3, Options{}); err == nil {
		t.Fatal("accepted 1D grid")
	}
	if _, _, err := CompressTiled(nil, data, dims, 0, Options{}); err == nil {
		t.Fatal("accepted ε=0")
	}
	if _, _, err := CompressTiled(nil, data[:10], dims, 1e-3, Options{}); err == nil {
		t.Fatal("accepted dims/data mismatch")
	}
	comp, _, err := CompressTiled(nil, data, dims, 1e-3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecompressTiled(nil, comp, lorenzo.Dims2(8, 16)); err != nil {
		// Same element count but different grid: decodes, but the caller
		// owns dims correctness. A mismatched COUNT must fail:
	}
	if _, err := DecompressTiled(nil, comp, lorenzo.Dims2(16, 16)); err == nil {
		t.Fatal("accepted wrong element count")
	}
	// A plain stream is not a tiled stream.
	plain, _, err := CompressWithEps(nil, data, 1e-3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecompressTiled(nil, plain, dims); err == nil {
		t.Fatal("accepted non-tiled stream")
	}
	if _, err := DecompressTiled(nil, comp[:10], dims); err == nil {
		t.Fatal("accepted truncated stream")
	}
}

func TestQuickTiledRoundTrip(t *testing.T) {
	f := func(vals []int16, nxRaw uint8) bool {
		nx := int(nxRaw%50) + 3
		ny := len(vals) / nx
		if ny < 2 {
			return true // a Dims2(nx,1) grid degenerates to 1D and is rejected
		}
		dims := lorenzo.Dims2(nx, ny)
		data := make([]float32, dims.Len())
		for i := range data {
			data[i] = float32(vals[i]) / 7
		}
		eps := 1e-2
		comp, _, err := CompressTiled(nil, data, dims, eps, Options{})
		if err != nil {
			return false
		}
		rec, err := DecompressTiled(nil, comp, dims)
		if err != nil {
			return false
		}
		for i := range data {
			if math.Abs(float64(rec[i])-float64(data[i])) > eps {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
