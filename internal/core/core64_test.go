package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ceresz/internal/quant"
)

func smoothField64(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float64, n)
	v := 0.0
	for i := range data {
		v += rng.NormFloat64() * 0.01
		data[i] = math.Sin(float64(i)*0.01) + v
	}
	return data
}

func maxAbsErr64(a, b []float64) float64 {
	var m float64
	for i := range a {
		if e := math.Abs(a[i] - b[i]); e > m {
			m = e
		}
	}
	return m
}

func TestRoundTrip64(t *testing.T) {
	data := smoothField64(10_000, 1)
	for _, bound := range []quant.Bound{quant.REL(1e-3), quant.REL(1e-6), quant.ABS(1e-4)} {
		comp, stats, err := Compress64(nil, data, Options{Bound: bound})
		if err != nil {
			t.Fatalf("%v: %v", bound, err)
		}
		dec, meta, err := Decompress64(nil, comp, 0)
		if err != nil {
			t.Fatalf("%v: %v", bound, err)
		}
		if len(dec) != len(data) {
			t.Fatalf("%v: %d elements", bound, len(dec))
		}
		if e := maxAbsErr64(data, dec); e > stats.Eps {
			t.Fatalf("%v: max error %g > ε %g", bound, e, stats.Eps)
		}
		if meta.Eps != stats.Eps {
			t.Fatalf("%v: eps mismatch", bound)
		}
		// Ratio accounting for f64: 8 bytes/element.
		if r := float64(8*len(data)) / float64(len(comp)); r <= 1 {
			t.Fatalf("%v: f64 ratio %.2f", bound, r)
		}
	}
}

func TestRoundTrip64TighterThanF32(t *testing.T) {
	// Double precision admits bounds far below float32's ulp — the whole
	// point of the f64 path. ε = 1e-9 on O(1) values would force the f32
	// path verbatim; the f64 path compresses.
	data := smoothField64(4096, 2)
	comp, stats, err := Compress64WithEps(nil, data, 1e-9, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.VerbatimBlocks != 0 {
		t.Fatalf("f64 path fell back to verbatim at ε=1e-9: %d blocks", stats.VerbatimBlocks)
	}
	dec, _, err := Decompress64(nil, comp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e := maxAbsErr64(data, dec); e > 1e-9 {
		t.Fatalf("max error %g > 1e-9", e)
	}
}

func TestElemTypeMismatchRejected(t *testing.T) {
	d32 := make([]float32, 64)
	d64 := smoothField64(64, 3)
	c32, _, err := CompressWithEps(nil, d32, 1e-3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c64, _, err := Compress64WithEps(nil, d64, 1e-3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Decompress(nil, c64, 0); err == nil {
		t.Fatal("f32 decoder accepted an f64 stream")
	}
	if _, _, err := Decompress64(nil, c32, 0); err == nil {
		t.Fatal("f64 decoder accepted an f32 stream")
	}
	e32, err := ElemOf(c32)
	if err != nil || e32 != Float32 {
		t.Fatalf("ElemOf(c32) = %v, %v", e32, err)
	}
	e64, err := ElemOf(c64)
	if err != nil || e64 != Float64 {
		t.Fatalf("ElemOf(c64) = %v, %v", e64, err)
	}
	if _, err := ElemOf(nil); err == nil {
		t.Fatal("ElemOf accepted empty stream")
	}
	if Float32.Size() != 4 || Float64.Size() != 8 {
		t.Fatal("Elem.Size wrong")
	}
}

func TestVerbatim64(t *testing.T) {
	data := make([]float64, 64)
	for i := range data {
		data[i] = 1e200 * float64(1+i) // overflows int32 quantization
	}
	comp, stats, err := Compress64WithEps(nil, data, 1e-6, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.VerbatimBlocks != stats.Blocks {
		t.Fatalf("verbatim %d of %d", stats.VerbatimBlocks, stats.Blocks)
	}
	dec, _, err := Decompress64(nil, comp, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if dec[i] != data[i] {
			t.Fatalf("verbatim f64 not exact at %d", i)
		}
	}
}

func TestSequentialParallelIdentical64(t *testing.T) {
	data := smoothField64(32*1024+9, 4)
	seq, _, err := Compress64WithEps(nil, data, 1e-4, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := Compress64WithEps(nil, data, 1e-4, Options{Workers: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seq, par) {
		t.Fatal("parallel f64 output differs from sequential")
	}
}

func TestTruncated64(t *testing.T) {
	data := smoothField64(640, 5)
	comp, _, err := Compress64WithEps(nil, data, 1e-4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{10, StreamHeaderSize, len(comp) - 3} {
		if _, _, err := Decompress64(nil, comp[:cut], 0); err == nil {
			t.Fatalf("accepted truncation at %d", cut)
		}
	}
}

func TestQuick64ErrorBound(t *testing.T) {
	f := func(raw []int64, epsExp uint8) bool {
		data := make([]float64, len(raw))
		for i, r := range raw {
			data[i] = float64(r%1_000_000) / 1000
		}
		eps := math.Pow(10, -float64(3+epsExp%6)) // 1e-3 … 1e-8
		comp, _, err := Compress64WithEps(nil, data, eps, Options{})
		if err != nil {
			return false
		}
		dec, _, err := Decompress64(nil, comp, 0)
		if err != nil {
			return false
		}
		for i := range data {
			if math.Abs(dec[i]-data[i]) > eps {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
