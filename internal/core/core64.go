package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"runtime"
	"slices"
	"sync"

	"ceresz/internal/flenc"
	"ceresz/internal/hostpool"
	"ceresz/internal/lorenzo"
	"ceresz/internal/quant"
)

// Float64 element support. The container's flags byte distinguishes the
// element type (0 = float32, 1 = float64); quantization codes and the
// fixed-length block format are identical, only the verbatim payloads and
// the reconstruction multiply differ. Several SDRBench archives (QMCPack
// among them) ship double-precision fields, so a usable reproduction needs
// this path even though the paper's evaluation runs on float32. The hot
// path mirrors the float32 one: a fused single-pass forward kernel, a
// fused decode loop, and pooled per-worker scratch for zero steady-state
// allocations.

const (
	elemF32 byte = 0
	elemF64 byte = 1
)

// Elem identifies a stream's element type.
type Elem byte

// Element types.
const (
	Float32 Elem = Elem(elemF32)
	Float64 Elem = Elem(elemF64)
)

func (e Elem) String() string {
	switch e {
	case Float32:
		return "float32"
	case Float64:
		return "float64"
	default:
		return fmt.Sprintf("Elem(%d)", byte(e))
	}
}

// Size returns the element size in bytes.
func (e Elem) Size() int {
	if e == Float64 {
		return 8
	}
	return 4
}

// Compress64 appends the CereSZ stream for float64 data to dst.
func Compress64(dst []byte, data []float64, opts Options) ([]byte, *Stats, error) {
	stats := new(Stats)
	dst, err := Compress64Into(dst, data, opts, stats)
	if err != nil {
		return dst, nil, err
	}
	return dst, stats, nil
}

// Compress64Into is Compress64 writing its statistics into a
// caller-provided Stats; with Workers ≤ 1 and sufficient dst capacity it
// performs zero allocations in steady state.
func Compress64Into(dst []byte, data []float64, opts Options, stats *Stats) ([]byte, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return dst, err
	}
	minV, maxV := quant.Range64(data)
	eps, err := opts.Bound.Resolve(minV, maxV)
	if err != nil {
		return dst, err
	}
	return compressEps64(dst, data, eps, opts, stats)
}

// Compress64WithEps is Compress64 with a pre-resolved absolute bound.
func Compress64WithEps(dst []byte, data []float64, eps float64, opts Options) ([]byte, *Stats, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return dst, nil, err
	}
	if !(eps > 0) {
		return dst, nil, quant.ErrNonPositiveBound
	}
	stats := new(Stats)
	dst, err := compressEps64(dst, data, eps, opts, stats)
	if err != nil {
		return dst, nil, err
	}
	return dst, stats, nil
}

func compressEps64(dst []byte, data []float64, eps float64, opts Options, stats *Stats) ([]byte, error) {
	q, err := quant.MakeQuantizer(eps)
	if err != nil {
		return dst, err
	}
	L := opts.BlockLen
	nBlocks := (len(data) + L - 1) / L
	*stats = Stats{Elements: len(data), Blocks: nBlocks, Eps: eps}

	start := len(dst)
	dst = appendStreamHeader64(dst, opts.HeaderBytes, L, len(data), eps)
	if nBlocks == 0 {
		stats.CompressedBytes = len(dst) - start
		return dst, nil
	}

	workers := opts.Workers
	if workers > nBlocks {
		workers = nBlocks
	}
	if workers <= 1 {
		enc := getEncoder64(L, opts.HeaderBytes, q)
		for b := 0; b < nBlocks; b++ {
			dst = enc.encode(dst, blockSlice64(data, b, L), stats)
		}
		putEncoder64(enc)
		stats.CompressedBytes = len(dst) - start
		return dst, nil
	}

	// Parallel path: same shard/stitch scheme as compressEps, shared host
	// pool and pooled per-shard buffers included.
	sp := getShards(workers)
	shards := *sp
	hostpool.Run(workers, nBlocks, func(k, lo, hi int) {
		telWorkers.Add(1)
		defer telWorkers.Add(-1)
		enc := getEncoder64(L, opts.HeaderBytes, q)
		sb := &shards[k]
		sb.stats = Stats{}
		sb.buf = slices.Grow(sb.buf[:0], (hi-lo)*(opts.HeaderBytes+8*L))
		for b := lo; b < hi; b++ {
			sb.buf = enc.encode(sb.buf, blockSlice64(data, b, L), &sb.stats)
		}
		putEncoder64(enc)
	})
	for i := range shards {
		dst = append(dst, shards[i].buf...)
		stats.ZeroBlocks += shards[i].stats.ZeroBlocks
		stats.VerbatimBlocks += shards[i].stats.VerbatimBlocks
		for w := range stats.WidthHistogram {
			stats.WidthHistogram[w] += shards[i].stats.WidthHistogram[w]
		}
	}
	putShards(sp)
	stats.CompressedBytes = len(dst) - start
	return dst, nil
}

func appendStreamHeader64(dst []byte, headerBytes, blockLen, elements int, eps float64) []byte {
	var hdr [StreamHeaderSize]byte
	copy(hdr[0:4], Magic[:])
	hdr[4] = byte(headerBytes)
	hdr[5] = elemF64
	binary.LittleEndian.PutUint16(hdr[6:8], uint16(blockLen))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(elements))
	binary.LittleEndian.PutUint64(hdr[16:24], math.Float64bits(eps))
	return append(dst, hdr[:]...)
}

func blockSlice64(data []float64, b, L int) []float64 {
	lo := b * L
	hi := lo + L
	if hi > len(data) {
		hi = len(data)
	}
	return data[lo:hi]
}

type blockEncoder64 struct {
	L       int
	hdr     int
	q       quant.Quantizer
	padded  []float64
	scaled  []float64
	codes   []int32
	scratch *flenc.Block
}

func newBlockEncoder64(L, headerBytes int, q quant.Quantizer) *blockEncoder64 {
	return &blockEncoder64{
		L:       L,
		hdr:     headerBytes,
		q:       q,
		padded:  make([]float64, L),
		scaled:  make([]float64, L),
		codes:   make([]int32, L),
		scratch: flenc.NewBlock(L),
	}
}

var encoder64Pool sync.Pool

func getEncoder64(L, headerBytes int, q quant.Quantizer) *blockEncoder64 {
	e, _ := encoder64Pool.Get().(*blockEncoder64)
	if e == nil || e.L != L {
		return newBlockEncoder64(L, headerBytes, q)
	}
	e.hdr = headerBytes
	e.q = q
	return e
}

func putEncoder64(e *blockEncoder64) { encoder64Pool.Put(e) }

func (e *blockEncoder64) encode(dst []byte, block []float64, stats *Stats) []byte {
	src := block
	if len(block) < e.L {
		copy(e.padded, block)
		clear(e.padded[len(block):])
		src = e.padded
	}
	w, ok := e.fusedForward(src)
	if !ok {
		stats.VerbatimBlocks++
		return appendVerbatim64(dst, src, e.hdr)
	}
	stats.WidthHistogram[w]++
	if w == 0 {
		stats.ZeroBlocks++
	}
	return flenc.AppendEncoded(dst, e.scratch.Abs[:e.L], e.scratch.Signs[:e.L/8], w, e.hdr)
}

// fusedForward is the float64 twin of blockEncoder.fusedForward: quantize,
// strictness check (through the float64 reconstruction — p·2ε can still
// land outside ε when ε is below half a ulp of the value), Lorenzo delta,
// sign split and width in one pass. Verbatim selection matches encodeRef
// for the same early-exit reasons as the float32 kernel.
func (e *blockEncoder64) fusedForward(src []float64) (w uint, ok bool) {
	abs := e.scratch.Abs[:e.L]
	signs := e.scratch.Signs[:e.L/8]
	recip, twoE, eps := e.q.Recip(), e.q.TwoEps(), e.q.Eps()
	var acc uint32
	var prev int32
	for j := range signs {
		v := src[8*j : 8*j+8 : 8*j+8]
		a := abs[8*j : 8*j+8 : 8*j+8]
		var sb uint32
		for i, x := range v {
			f := math.Floor(x*recip + 0.5)
			if !(f >= math.MinInt32 && f <= math.MaxInt32) {
				return 0, false
			}
			p := int32(f)
			rec := float64(p) * twoE
			if !(math.Abs(rec-x) <= eps) {
				return 0, false
			}
			d := p - prev
			prev = p
			neg := uint32(d) >> 31
			u := (uint32(d) ^ -neg) + neg
			sb |= neg << i
			a[i] = u
			acc |= u
		}
		signs[j] = byte(sb)
	}
	return flenc.Width(acc), true
}

// encodeRef is the retained stage-by-stage float64 pipeline (Mul, Round,
// strictness sweep, lorenzo.Forward, flenc.EncodeBlockRef), kept as the
// differential-testing reference for the fused kernel.
func (e *blockEncoder64) encodeRef(dst []byte, src []float64, stats *Stats) []byte {
	e.q.Mul(e.scaled, src)
	if !quant.Round(e.codes, e.scaled) {
		stats.VerbatimBlocks++
		return appendVerbatim64(dst, src, e.hdr)
	}
	for i, p := range e.codes {
		rec := float64(p) * e.q.TwoEps()
		if !(math.Abs(rec-src[i]) <= e.q.Eps()) {
			stats.VerbatimBlocks++
			return appendVerbatim64(dst, src, e.hdr)
		}
	}
	lorenzo.Forward(e.codes, e.codes)
	var w uint
	dst, w = flenc.EncodeBlockRef(dst, e.codes, e.hdr, e.scratch)
	stats.WidthHistogram[w]++
	if w == 0 {
		stats.ZeroBlocks++
	}
	return dst
}

func appendVerbatim64(dst []byte, block []float64, headerBytes int) []byte {
	switch headerBytes {
	case flenc.HeaderU32:
		dst = append(dst, 0xFF, 0xFF, 0xFF, 0xFF)
	case flenc.HeaderU8:
		dst = append(dst, flenc.VerbatimU8)
	default:
		panic(fmt.Sprintf("core: unsupported header size %d", headerBytes))
	}
	dst = slices.Grow(dst, 8*len(block))
	for _, v := range block {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// Decompress64 reconstructs float64 data from a CereSZ stream produced by
// Compress64. workers follows Options.Workers semantics (0/1 sequential,
// > 1 sharded over the host pool, negative = GOMAXPROCS). With workers 0/1
// and sufficient dst capacity it performs zero allocations in steady state.
func Decompress64(dst []float64, comp []byte, workers int) ([]float64, Meta, error) {
	m, err := ParseHeader(comp)
	if err != nil {
		return dst, m, err
	}
	if m.Elem != Float64 {
		return dst, m, fmt.Errorf("%w: stream holds %s elements, expected float64", ErrBadStream, m.Elem)
	}
	if err := checkPlausible(m, len(comp)); err != nil {
		return dst, m, err
	}
	body := comp[StreamHeaderSize:]
	nBlocks := m.Blocks()
	L := m.BlockLen

	op := getOffsets(nBlocks + 1)
	defer offsetsPool.Put(op)
	offsets := *op
	if err := scanOffsets(body, m, offsets, 8); err != nil {
		return dst, m, err
	}

	q, err := quant.MakeQuantizer(m.Eps)
	if err != nil {
		return dst, m, err
	}
	start := len(dst)
	dst = slices.Grow(dst, m.Elements)[:start+m.Elements]
	out := dst[start:]

	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nBlocks {
		workers = nBlocks
	}
	if workers <= 1 {
		dec := getDecoder64(L, m.HeaderBytes, q)
		for b := 0; b < nBlocks; b++ {
			if err := dec.decode(outBlock64(out, b, L), body[offsets[b]:offsets[b+1]]); err != nil {
				putDecoder64(dec)
				return dst, m, fmt.Errorf("%w: block %d: %v", ErrBadStream, b, err)
			}
		}
		putDecoder64(dec)
		return dst, m, nil
	}
	sp := getShards(workers)
	shards := *sp
	hostpool.Run(workers, nBlocks, func(k, lo, hi int) {
		telWorkers.Add(1)
		defer telWorkers.Add(-1)
		shards[k].err = nil
		dec := getDecoder64(L, m.HeaderBytes, q)
		defer putDecoder64(dec)
		for b := lo; b < hi; b++ {
			if err := dec.decode(outBlock64(out, b, L), body[offsets[b]:offsets[b+1]]); err != nil {
				shards[k].err = fmt.Errorf("%w: block %d: %v", ErrBadStream, b, err)
				return
			}
		}
	})
	var derr error
	for i := range shards {
		if shards[i].err != nil {
			derr = shards[i].err
			break
		}
	}
	putShards(sp)
	if derr != nil {
		return dst, m, derr
	}
	return dst, m, nil
}

// blockOffsets64 scans a float64 stream's block boundaries.
func blockOffsets64(comp []byte) (Meta, []int, error) {
	m, err := ParseHeader(comp)
	if err != nil {
		return m, nil, err
	}
	if m.Elem != Float64 {
		return m, nil, fmt.Errorf("%w: stream holds %s elements, expected float64", ErrBadStream, m.Elem)
	}
	offsets := make([]int, m.Blocks()+1)
	if err := scanOffsets(comp[StreamHeaderSize:], m, offsets, 8); err != nil {
		return m, nil, err
	}
	return m, offsets, nil
}

// ElemOf returns the element type of a stream without fully parsing it.
func ElemOf(comp []byte) (Elem, error) {
	if len(comp) < StreamHeaderSize {
		return Float32, fmt.Errorf("%w: short stream", ErrBadStream)
	}
	switch comp[5] {
	case elemF32:
		return Float32, nil
	case elemF64:
		return Float64, nil
	default:
		return Float32, fmt.Errorf("%w: unknown element type %d", ErrBadStream, comp[5])
	}
}

type blockDecoder64 struct {
	L       int
	hdr     int
	q       quant.Quantizer
	full    []float64
	scratch *flenc.Block
}

var decoder64Pool sync.Pool

func getDecoder64(L, headerBytes int, q quant.Quantizer) *blockDecoder64 {
	d, _ := decoder64Pool.Get().(*blockDecoder64)
	if d == nil || d.L != L {
		d = &blockDecoder64{
			L:       L,
			full:    make([]float64, L),
			scratch: flenc.NewBlock(L),
		}
	}
	d.hdr = headerBytes
	d.q = q
	return d
}

func putDecoder64(d *blockDecoder64) { decoder64Pool.Put(d) }

// decode mirrors blockDecoder.decode: word-parallel unshuffle, then one
// fused sign-merge / prefix-sum / dequantize loop.
func (d *blockDecoder64) decode(out []float64, src []byte) error {
	v, n, err := flenc.Header(src, d.hdr)
	if err != nil {
		return err
	}
	if v == flenc.VerbatimU32 {
		if len(src) < n+8*d.L {
			return fmt.Errorf("truncated verbatim block")
		}
		for i := range out {
			bits := binary.LittleEndian.Uint64(src[n+8*i:])
			out[i] = math.Float64frombits(bits)
		}
		return nil
	}
	signs, planes, w, _, err := flenc.DecodeBody(src, d.L, d.hdr)
	if err != nil {
		return err
	}
	if w == 0 {
		clear(out)
		return nil
	}
	full := out
	if len(out) < d.L {
		full = d.full
	}
	abs := d.scratch.Abs[:d.L]
	flenc.Unshuffle(abs, planes, w)
	twoE := d.q.TwoEps()
	var acc int32
	for i, u := range abs {
		dlt := int32(u)
		if signs[i>>3]&(1<<(i&7)) != 0 {
			dlt = int32(-int64(u))
		}
		acc += dlt
		full[i] = float64(acc) * twoE
	}
	if len(out) < d.L {
		copy(out, full[:len(out)])
	}
	return nil
}
