package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"runtime"
	"sync"

	"ceresz/internal/flenc"
	"ceresz/internal/lorenzo"
	"ceresz/internal/quant"
)

// Float64 element support. The container's flags byte distinguishes the
// element type (0 = float32, 1 = float64); quantization codes and the
// fixed-length block format are identical, only the verbatim payloads and
// the reconstruction multiply differ. Several SDRBench archives (QMCPack
// among them) ship double-precision fields, so a usable reproduction needs
// this path even though the paper's evaluation runs on float32.

const (
	elemF32 byte = 0
	elemF64 byte = 1
)

// Elem identifies a stream's element type.
type Elem byte

// Element types.
const (
	Float32 Elem = Elem(elemF32)
	Float64 Elem = Elem(elemF64)
)

func (e Elem) String() string {
	switch e {
	case Float32:
		return "float32"
	case Float64:
		return "float64"
	default:
		return fmt.Sprintf("Elem(%d)", byte(e))
	}
}

// Size returns the element size in bytes.
func (e Elem) Size() int {
	if e == Float64 {
		return 8
	}
	return 4
}

// Compress64 appends the CereSZ stream for float64 data to dst.
func Compress64(dst []byte, data []float64, opts Options) ([]byte, *Stats, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return dst, nil, err
	}
	minV, maxV := quant.Range64(data)
	eps, err := opts.Bound.Resolve(minV, maxV)
	if err != nil {
		return dst, nil, err
	}
	return compressEps64(dst, data, eps, opts)
}

// Compress64WithEps is Compress64 with a pre-resolved absolute bound.
func Compress64WithEps(dst []byte, data []float64, eps float64, opts Options) ([]byte, *Stats, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return dst, nil, err
	}
	if !(eps > 0) {
		return dst, nil, quant.ErrNonPositiveBound
	}
	return compressEps64(dst, data, eps, opts)
}

func compressEps64(dst []byte, data []float64, eps float64, opts Options) ([]byte, *Stats, error) {
	q, err := quant.NewQuantizer(eps)
	if err != nil {
		return dst, nil, err
	}
	L := opts.BlockLen
	nBlocks := (len(data) + L - 1) / L
	stats := &Stats{Elements: len(data), Blocks: nBlocks, Eps: eps}

	start := len(dst)
	dst = appendStreamHeader64(dst, opts.HeaderBytes, L, len(data), eps)
	if nBlocks == 0 {
		stats.CompressedBytes = len(dst) - start
		return dst, stats, nil
	}

	workers := opts.Workers
	if workers > nBlocks {
		workers = nBlocks
	}
	if workers <= 1 {
		enc := newBlockEncoder64(L, opts.HeaderBytes, q)
		for b := 0; b < nBlocks; b++ {
			dst = enc.encode(dst, blockSlice64(data, b, L), stats)
		}
		stats.CompressedBytes = len(dst) - start
		return dst, stats, nil
	}

	type chunk struct {
		buf   []byte
		stats Stats
	}
	chunks := make([]chunk, workers)
	var wg sync.WaitGroup
	for wkr := 0; wkr < workers; wkr++ {
		lo := wkr * nBlocks / workers
		hi := (wkr + 1) * nBlocks / workers
		wg.Add(1)
		go func(wkr, lo, hi int) {
			defer wg.Done()
			enc := newBlockEncoder64(L, opts.HeaderBytes, q)
			c := &chunks[wkr]
			c.buf = make([]byte, 0, (hi-lo)*(opts.HeaderBytes+8*L))
			for b := lo; b < hi; b++ {
				c.buf = enc.encode(c.buf, blockSlice64(data, b, L), &c.stats)
			}
		}(wkr, lo, hi)
	}
	wg.Wait()
	for i := range chunks {
		dst = append(dst, chunks[i].buf...)
		stats.ZeroBlocks += chunks[i].stats.ZeroBlocks
		stats.VerbatimBlocks += chunks[i].stats.VerbatimBlocks
		for w := range stats.WidthHistogram {
			stats.WidthHistogram[w] += chunks[i].stats.WidthHistogram[w]
		}
	}
	stats.CompressedBytes = len(dst) - start
	return dst, stats, nil
}

func appendStreamHeader64(dst []byte, headerBytes, blockLen, elements int, eps float64) []byte {
	var hdr [StreamHeaderSize]byte
	copy(hdr[0:4], Magic[:])
	hdr[4] = byte(headerBytes)
	hdr[5] = elemF64
	binary.LittleEndian.PutUint16(hdr[6:8], uint16(blockLen))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(elements))
	binary.LittleEndian.PutUint64(hdr[16:24], math.Float64bits(eps))
	return append(dst, hdr[:]...)
}

func blockSlice64(data []float64, b, L int) []float64 {
	lo := b * L
	hi := lo + L
	if hi > len(data) {
		hi = len(data)
	}
	return data[lo:hi]
}

type blockEncoder64 struct {
	L       int
	hdr     int
	q       *quant.Quantizer
	padded  []float64
	scaled  []float64
	codes   []int32
	scratch *flenc.Block
}

func newBlockEncoder64(L, headerBytes int, q *quant.Quantizer) *blockEncoder64 {
	return &blockEncoder64{
		L:       L,
		hdr:     headerBytes,
		q:       q,
		padded:  make([]float64, L),
		scaled:  make([]float64, L),
		codes:   make([]int32, L),
		scratch: flenc.NewBlock(L),
	}
}

func (e *blockEncoder64) encode(dst []byte, block []float64, stats *Stats) []byte {
	src := block
	if len(block) < e.L {
		copy(e.padded, block)
		for i := len(block); i < e.L; i++ {
			e.padded[i] = 0
		}
		src = e.padded
	}
	e.q.Mul(e.scaled, src)
	if !quant.Round(e.codes, e.scaled) {
		stats.VerbatimBlocks++
		return appendVerbatim64(dst, src, e.hdr)
	}
	// Strict bound through the float64 reconstruction: p·2ε can still land
	// outside ε when ε is below half a ulp of the value.
	for i, p := range e.codes {
		rec := float64(p) * e.q.TwoEps()
		if !(math.Abs(rec-src[i]) <= e.q.Eps()) {
			stats.VerbatimBlocks++
			return appendVerbatim64(dst, src, e.hdr)
		}
	}
	lorenzo.Forward(e.codes, e.codes)
	var w uint
	dst, w = flenc.EncodeBlock(dst, e.codes, e.hdr, e.scratch)
	stats.WidthHistogram[w]++
	if w == 0 {
		stats.ZeroBlocks++
	}
	return dst
}

func appendVerbatim64(dst []byte, block []float64, headerBytes int) []byte {
	switch headerBytes {
	case flenc.HeaderU32:
		dst = append(dst, 0xFF, 0xFF, 0xFF, 0xFF)
	case flenc.HeaderU8:
		dst = append(dst, flenc.VerbatimU8)
	default:
		panic(fmt.Sprintf("core: unsupported header size %d", headerBytes))
	}
	var b [8]byte
	for _, v := range block {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		dst = append(dst, b[:]...)
	}
	return dst
}

// Decompress64 reconstructs float64 data from a CereSZ stream produced by
// Compress64.
func Decompress64(dst []float64, comp []byte, workers int) ([]float64, Meta, error) {
	m, offsets, err := blockOffsets64(comp)
	if err != nil {
		return dst, m, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	body := comp[StreamHeaderSize:]
	nBlocks := m.Blocks()
	L := m.BlockLen

	q, err := quant.NewQuantizer(m.Eps)
	if err != nil {
		return dst, m, err
	}
	start := len(dst)
	dst = append(dst, make([]float64, m.Elements)...)
	out := dst[start:]

	if workers > nBlocks {
		workers = nBlocks
	}
	decodeRange := func(lo, hi int) error {
		dec := newBlockDecoder64(L, m.HeaderBytes, q)
		for b := lo; b < hi; b++ {
			blockLo := b * L
			blockHi := blockLo + L
			if blockHi > len(out) {
				blockHi = len(out)
			}
			if err := dec.decode(out[blockLo:blockHi], body[offsets[b]:offsets[b+1]]); err != nil {
				return fmt.Errorf("%w: block %d: %v", ErrBadStream, b, err)
			}
		}
		return nil
	}
	if workers <= 1 {
		if err := decodeRange(0, nBlocks); err != nil {
			return dst, m, err
		}
		return dst, m, nil
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for wkr := 0; wkr < workers; wkr++ {
		lo := wkr * nBlocks / workers
		hi := (wkr + 1) * nBlocks / workers
		wg.Add(1)
		go func(wkr, lo, hi int) {
			defer wg.Done()
			errs[wkr] = decodeRange(lo, hi)
		}(wkr, lo, hi)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return dst, m, e
		}
	}
	return dst, m, nil
}

// blockOffsets64 scans a float64 stream's block boundaries.
func blockOffsets64(comp []byte) (Meta, []int, error) {
	m, err := ParseHeader(comp)
	if err != nil {
		return m, nil, err
	}
	if m.Elem != Float64 {
		return m, nil, fmt.Errorf("%w: stream holds %s elements, expected float64", ErrBadStream, m.Elem)
	}
	body := comp[StreamHeaderSize:]
	nBlocks := m.Blocks()
	offsets := make([]int, nBlocks+1)
	pos := 0
	for b := 0; b < nBlocks; b++ {
		offsets[b] = pos
		v, n, err := flenc.Header(body[pos:], m.HeaderBytes)
		if err != nil {
			return m, nil, fmt.Errorf("%w: block %d: %v", ErrBadStream, b, err)
		}
		switch {
		case v == flenc.ZeroMarker:
			pos += n
		case v == flenc.VerbatimU32:
			pos += m.HeaderBytes + 8*m.BlockLen
		case v <= flenc.MaxWidth:
			pos += flenc.EncodedSize(uint(v), m.BlockLen, m.HeaderBytes)
		default:
			return m, nil, fmt.Errorf("%w: block %d: invalid fixed length %d", ErrBadStream, b, v)
		}
		if pos > len(body) {
			return m, nil, fmt.Errorf("%w: block %d overruns stream", ErrBadStream, b)
		}
	}
	offsets[nBlocks] = pos
	return m, offsets, nil
}

// ElemOf returns the element type of a stream without fully parsing it.
func ElemOf(comp []byte) (Elem, error) {
	if len(comp) < StreamHeaderSize {
		return Float32, fmt.Errorf("%w: short stream", ErrBadStream)
	}
	switch comp[5] {
	case elemF32:
		return Float32, nil
	case elemF64:
		return Float64, nil
	default:
		return Float32, fmt.Errorf("%w: unknown element type %d", ErrBadStream, comp[5])
	}
}

type blockDecoder64 struct {
	L       int
	hdr     int
	q       *quant.Quantizer
	codes   []int32
	full    []float64
	scratch *flenc.Block
}

func newBlockDecoder64(L, headerBytes int, q *quant.Quantizer) *blockDecoder64 {
	return &blockDecoder64{
		L:       L,
		hdr:     headerBytes,
		q:       q,
		codes:   make([]int32, L),
		full:    make([]float64, L),
		scratch: flenc.NewBlock(L),
	}
}

func (d *blockDecoder64) decode(out []float64, src []byte) error {
	v, n, err := flenc.Header(src, d.hdr)
	if err != nil {
		return err
	}
	if v == flenc.VerbatimU32 {
		if len(src) < n+8*d.L {
			return fmt.Errorf("truncated verbatim block")
		}
		for i := range out {
			bits := binary.LittleEndian.Uint64(src[n+8*i:])
			out[i] = math.Float64frombits(bits)
		}
		return nil
	}
	if _, err := flenc.DecodeBlock(d.codes, src, d.hdr, d.scratch); err != nil {
		return err
	}
	lorenzo.Inverse(d.codes, d.codes)
	if len(out) == d.L {
		d.q.Dequantize64(out, d.codes)
		return nil
	}
	d.q.Dequantize64(d.full, d.codes)
	copy(out, d.full[:len(out)])
	return nil
}
