package core

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"ceresz/internal/flenc"
	"ceresz/internal/lorenzo"
	"ceresz/internal/quant"
)

// Fuzz targets: the decoders must never panic or read out of bounds on
// adversarial streams, and valid streams must round-trip. Run with
// `go test -fuzz=FuzzDecompress ./internal/core` for a real campaign; the
// seed corpus executes in every ordinary test run.

func FuzzDecompress(f *testing.F) {
	// Seed with valid streams of both header widths and with mutations.
	mk := func(n int, hdr int) []byte {
		data := make([]float32, n)
		for i := range data {
			data[i] = float32(math.Sin(float64(i) * 0.1))
		}
		comp, _, err := CompressWithEps(nil, data, 1e-3, Options{HeaderBytes: hdr, Workers: 1})
		if err != nil {
			f.Fatal(err)
		}
		return comp
	}
	f.Add(mk(100, 4))
	f.Add(mk(100, 1))
	f.Add(mk(0, 4))
	f.Add([]byte{})
	f.Add([]byte("CSZ1garbagegarbagegarbage"))
	corrupt := mk(64, 4)
	corrupt[StreamHeaderSize] = 0xFE
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, comp []byte) {
		out, m, err := Decompress(nil, comp, 1)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if len(out) != m.Elements {
			t.Fatalf("decoded %d elements, header says %d", len(out), m.Elements)
		}
	})
}

func FuzzDecompress64(f *testing.F) {
	data := make([]float64, 96)
	for i := range data {
		data[i] = math.Cos(float64(i) * 0.05)
	}
	comp, _, err := Compress64WithEps(nil, data, 1e-9, Options{Workers: 1})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(comp)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, comp []byte) {
		out, m, err := Decompress64(nil, comp, 1)
		if err != nil {
			return
		}
		if len(out) != m.Elements {
			t.Fatalf("decoded %d elements, header says %d", len(out), m.Elements)
		}
	})
}

// compressRef mirrors the sequential compressEps loop but drives every
// block through the retained stage-by-stage pipeline (encodeRef →
// flenc.EncodeBlockRef), giving FuzzHostKernels a scalar-reference stream
// to compare the fused SWAR output against.
func compressRef(data []float32, eps float64, opts Options) ([]byte, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	q, err := quant.MakeQuantizer(eps)
	if err != nil {
		return nil, err
	}
	L := opts.BlockLen
	nBlocks := (len(data) + L - 1) / L
	dst := AppendStreamHeader(nil, Meta{
		HeaderBytes: opts.HeaderBytes,
		BlockLen:    L,
		Elements:    len(data),
		Eps:         eps,
	})
	var stats Stats
	enc := newBlockEncoder(L, opts.HeaderBytes, q)
	for b := 0; b < nBlocks; b++ {
		block := blockSlice(data, b, L)
		src := block
		if len(block) < L {
			copy(enc.padded, block)
			clear(enc.padded[len(block):])
			src = enc.padded
		}
		dst = enc.encodeRef(dst, src, &stats)
	}
	return dst, nil
}

// decompressRef decodes a stream block by block through the scalar
// reference kernels (flenc.DecodeBlockRef → lorenzo.Inverse → Dequantize).
func decompressRef(comp []byte) ([]float32, error) {
	m, offsets, err := BlockOffsets(comp)
	if err != nil {
		return nil, err
	}
	q, err := quant.NewQuantizer(m.Eps)
	if err != nil {
		return nil, err
	}
	body := comp[StreamHeaderSize:]
	L := m.BlockLen
	out := make([]float32, m.Elements)
	codes := make([]int32, L)
	full := make([]float32, L)
	scratch := flenc.NewBlock(L)
	for b := 0; b < m.Blocks(); b++ {
		dst := outBlock(out, b, L)
		src := body[offsets[b]:offsets[b+1]]
		v, n, err := flenc.Header(src, m.HeaderBytes)
		if err != nil {
			return nil, err
		}
		if v == flenc.VerbatimU32 {
			for i := range dst {
				bits := binary.LittleEndian.Uint32(src[n+4*i:])
				dst[i] = math.Float32frombits(bits)
			}
			continue
		}
		if _, err := flenc.DecodeBlockRef(codes, src, m.HeaderBytes, scratch); err != nil {
			return nil, err
		}
		lorenzo.Inverse(codes, codes)
		q.Dequantize(full, codes)
		copy(dst, full[:len(dst)])
	}
	return out, nil
}

// FuzzHostKernels is the differential target for the word-parallel host
// kernels: across random data, block lengths, header widths and partial
// trailing blocks, the fused SWAR compressor must emit bytes identical to
// the scalar reference pipeline, and the fused decoder must reproduce the
// reference decode bit for bit.
func FuzzHostKernels(f *testing.F) {
	f.Add([]byte{0, 0, 128, 63, 0, 0, 0, 64, 1, 2, 3, 4}, uint8(0), false, uint8(3))
	f.Add(make([]byte, 400), uint8(3), true, uint8(2))
	f.Add([]byte{0xff, 0xff, 0x7f, 0x7f, 0, 0, 0x80, 0xff}, uint8(11), false, uint8(0))
	f.Fuzz(func(t *testing.T, raw []byte, blockSel uint8, szpHeader bool, epsExp uint8) {
		n := len(raw) / 4
		data := make([]float32, n)
		for i := 0; i < n; i++ {
			bits := uint32(raw[4*i]) | uint32(raw[4*i+1])<<8 | uint32(raw[4*i+2])<<16 | uint32(raw[4*i+3])<<24
			data[i] = math.Float32frombits(bits)
		}
		opts := Options{
			BlockLen: 8 * (1 + int(blockSel)%12),
			Workers:  1,
		}
		if szpHeader {
			opts.HeaderBytes = flenc.HeaderU8
		} else {
			opts.HeaderBytes = flenc.HeaderU32
		}
		eps := math.Pow(10, -float64(epsExp%7))
		comp, _, err := CompressWithEps(nil, data, eps, opts)
		if err != nil {
			t.Fatalf("compress: %v", err)
		}
		ref, err := compressRef(data, eps, opts)
		if err != nil {
			t.Fatalf("compressRef: %v", err)
		}
		if !bytes.Equal(comp, ref) {
			t.Fatalf("fused stream differs from scalar reference (n=%d L=%d hdr=%d eps=%g)\n got %x\nwant %x",
				n, opts.BlockLen, opts.HeaderBytes, eps, comp, ref)
		}
		out, _, err := Decompress(nil, comp, 1)
		if err != nil {
			t.Fatalf("decompress: %v", err)
		}
		refOut, err := decompressRef(comp)
		if err != nil {
			t.Fatalf("decompressRef: %v", err)
		}
		for i := range out {
			if math.Float32bits(out[i]) != math.Float32bits(refOut[i]) {
				t.Fatalf("fused decode differs from reference at %d: %x vs %x",
					i, math.Float32bits(out[i]), math.Float32bits(refOut[i]))
			}
		}
	})
}

// FuzzHostKernels64 is the float64 differential twin, driven through the
// blockEncoder64 reference.
func FuzzHostKernels64(f *testing.F) {
	f.Add(make([]byte, 256), uint8(0))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, uint8(5))
	f.Fuzz(func(t *testing.T, raw []byte, blockSel uint8) {
		n := len(raw) / 8
		data := make([]float64, n)
		for i := 0; i < n; i++ {
			data[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
		}
		opts := Options{BlockLen: 8 * (1 + int(blockSel)%12), Workers: 1}.withDefaults()
		const eps = 1e-6
		comp, _, err := Compress64WithEps(nil, data, eps, opts)
		if err != nil {
			t.Fatalf("compress64: %v", err)
		}
		q, err := quant.MakeQuantizer(eps)
		if err != nil {
			t.Fatal(err)
		}
		L := opts.BlockLen
		ref := appendStreamHeader64(nil, opts.HeaderBytes, L, n, eps)
		var stats Stats
		enc := newBlockEncoder64(L, opts.HeaderBytes, q)
		for b := 0; b < (n+L-1)/L; b++ {
			block := blockSlice64(data, b, L)
			src := block
			if len(block) < L {
				copy(enc.padded, block)
				clear(enc.padded[len(block):])
				src = enc.padded
			}
			ref = enc.encodeRef(ref, src, &stats)
		}
		if !bytes.Equal(comp, ref) {
			t.Fatalf("fused float64 stream differs from scalar reference (n=%d L=%d)", n, L)
		}
		out, _, err := Decompress64(nil, comp, 1)
		if err != nil {
			t.Fatalf("decompress64: %v", err)
		}
		if len(out) != n {
			t.Fatalf("%d elements out, %d in", len(out), n)
		}
	})
}

// FuzzParallelHostCodec is the differential target for the block-parallel
// execution layer: across random data, error bounds, block lengths, header
// widths and worker counts, the sharded compressor must emit bytes
// identical to the sequential path (workers are a pure execution knob, not
// a format knob), the parallel decoder must reproduce the sequential
// decode bit for bit, and the round trip must honor the bound.
func FuzzParallelHostCodec(f *testing.F) {
	f.Add(make([]byte, 600), uint8(0), false, uint8(3), uint8(4))
	f.Add([]byte{0, 0, 128, 63, 0, 0, 0, 64, 1, 2, 3, 4}, uint8(2), true, uint8(1), uint8(2))
	f.Add([]byte{0xff, 0xff, 0x7f, 0x7f, 0, 0, 0x80, 0xff}, uint8(11), false, uint8(0), uint8(9))
	f.Fuzz(func(t *testing.T, raw []byte, blockSel uint8, szpHeader bool, epsExp uint8, workerSel uint8) {
		n := len(raw) / 4
		data := make([]float32, n)
		for i := 0; i < n; i++ {
			data[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
		}
		opts := Options{BlockLen: 8 * (1 + int(blockSel)%12), Workers: 1}
		if szpHeader {
			opts.HeaderBytes = flenc.HeaderU8
		} else {
			opts.HeaderBytes = flenc.HeaderU32
		}
		eps := math.Pow(10, -float64(epsExp%7))
		seq, stats, err := CompressWithEps(nil, data, eps, opts)
		if err != nil {
			t.Fatalf("sequential compress: %v", err)
		}
		// 2..17 workers, independent of the host's core count: shard counts
		// above GOMAXPROCS still run (the pool caps concurrency, not
		// shards), so the stitch path is exercised even on one CPU.
		opts.Workers = 2 + int(workerSel)%16
		par, parStats, err := CompressWithEps(nil, data, eps, opts)
		if err != nil {
			t.Fatalf("parallel compress (workers=%d): %v", opts.Workers, err)
		}
		if !bytes.Equal(par, seq) {
			t.Fatalf("parallel stream differs from sequential (n=%d L=%d workers=%d eps=%g)",
				n, opts.BlockLen, opts.Workers, eps)
		}
		if parStats.ZeroBlocks != stats.ZeroBlocks || parStats.VerbatimBlocks != stats.VerbatimBlocks ||
			parStats.WidthHistogram != stats.WidthHistogram {
			t.Fatalf("parallel stats differ from sequential: %+v vs %+v", parStats, stats)
		}
		seqOut, _, err := Decompress(nil, seq, 1)
		if err != nil {
			t.Fatalf("sequential decompress: %v", err)
		}
		parOut, _, err := Decompress(nil, seq, opts.Workers)
		if err != nil {
			t.Fatalf("parallel decompress (workers=%d): %v", opts.Workers, err)
		}
		for i := range seqOut {
			if math.Float32bits(parOut[i]) != math.Float32bits(seqOut[i]) {
				t.Fatalf("parallel decode differs from sequential at %d: %x vs %x",
					i, math.Float32bits(parOut[i]), math.Float32bits(seqOut[i]))
			}
		}
		for i := range data {
			o, r := float64(data[i]), float64(parOut[i])
			if math.IsNaN(o) || math.IsInf(o, 0) {
				if math.Float32bits(data[i]) != math.Float32bits(parOut[i]) {
					t.Fatalf("non-finite value not preserved at %d", i)
				}
				continue
			}
			if math.Abs(r-o) > stats.Eps {
				t.Fatalf("bound violated at %d: |%g − %g| > %g", i, r, o, stats.Eps)
			}
		}
	})
}

// FuzzRoundTrip feeds arbitrary bytes reinterpreted as float32s through a
// full compress/decompress cycle and checks the error bound.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{0, 0, 128, 63, 0, 0, 0, 64}, uint8(3))
	f.Add(make([]byte, 400), uint8(2))
	f.Fuzz(func(t *testing.T, raw []byte, epsExp uint8) {
		n := len(raw) / 4
		data := make([]float32, n)
		for i := 0; i < n; i++ {
			bits := uint32(raw[4*i]) | uint32(raw[4*i+1])<<8 | uint32(raw[4*i+2])<<16 | uint32(raw[4*i+3])<<24
			data[i] = math.Float32frombits(bits)
		}
		eps := math.Pow(10, -float64(2+epsExp%5))
		comp, stats, err := CompressWithEps(nil, data, eps, Options{Workers: 1})
		if err != nil {
			if err == quant.ErrNonPositiveBound {
				return
			}
			t.Fatalf("compress: %v", err)
		}
		out, _, err := Decompress(nil, comp, 1)
		if err != nil {
			t.Fatalf("decompress valid stream: %v", err)
		}
		if len(out) != n {
			t.Fatalf("%d elements out, %d in", len(out), n)
		}
		for i := range data {
			o, r := float64(data[i]), float64(out[i])
			if math.IsNaN(o) || math.IsInf(o, 0) {
				// Verbatim path must preserve bit patterns.
				if math.Float32bits(data[i]) != math.Float32bits(out[i]) {
					t.Fatalf("non-finite value not preserved at %d", i)
				}
				continue
			}
			if math.Abs(r-o) > stats.Eps {
				t.Fatalf("bound violated at %d: |%g − %g| > %g", i, r, o, stats.Eps)
			}
		}
	})
}
