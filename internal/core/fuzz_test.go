package core

import (
	"math"
	"testing"

	"ceresz/internal/quant"
)

// Fuzz targets: the decoders must never panic or read out of bounds on
// adversarial streams, and valid streams must round-trip. Run with
// `go test -fuzz=FuzzDecompress ./internal/core` for a real campaign; the
// seed corpus executes in every ordinary test run.

func FuzzDecompress(f *testing.F) {
	// Seed with valid streams of both header widths and with mutations.
	mk := func(n int, hdr int) []byte {
		data := make([]float32, n)
		for i := range data {
			data[i] = float32(math.Sin(float64(i) * 0.1))
		}
		comp, _, err := CompressWithEps(nil, data, 1e-3, Options{HeaderBytes: hdr, Workers: 1})
		if err != nil {
			f.Fatal(err)
		}
		return comp
	}
	f.Add(mk(100, 4))
	f.Add(mk(100, 1))
	f.Add(mk(0, 4))
	f.Add([]byte{})
	f.Add([]byte("CSZ1garbagegarbagegarbage"))
	corrupt := mk(64, 4)
	corrupt[StreamHeaderSize] = 0xFE
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, comp []byte) {
		out, m, err := Decompress(nil, comp, 1)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if len(out) != m.Elements {
			t.Fatalf("decoded %d elements, header says %d", len(out), m.Elements)
		}
	})
}

func FuzzDecompress64(f *testing.F) {
	data := make([]float64, 96)
	for i := range data {
		data[i] = math.Cos(float64(i) * 0.05)
	}
	comp, _, err := Compress64WithEps(nil, data, 1e-9, Options{Workers: 1})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(comp)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, comp []byte) {
		out, m, err := Decompress64(nil, comp, 1)
		if err != nil {
			return
		}
		if len(out) != m.Elements {
			t.Fatalf("decoded %d elements, header says %d", len(out), m.Elements)
		}
	})
}

// FuzzRoundTrip feeds arbitrary bytes reinterpreted as float32s through a
// full compress/decompress cycle and checks the error bound.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{0, 0, 128, 63, 0, 0, 0, 64}, uint8(3))
	f.Add(make([]byte, 400), uint8(2))
	f.Fuzz(func(t *testing.T, raw []byte, epsExp uint8) {
		n := len(raw) / 4
		data := make([]float32, n)
		for i := 0; i < n; i++ {
			bits := uint32(raw[4*i]) | uint32(raw[4*i+1])<<8 | uint32(raw[4*i+2])<<16 | uint32(raw[4*i+3])<<24
			data[i] = math.Float32frombits(bits)
		}
		eps := math.Pow(10, -float64(2+epsExp%5))
		comp, stats, err := CompressWithEps(nil, data, eps, Options{Workers: 1})
		if err != nil {
			if err == quant.ErrNonPositiveBound {
				return
			}
			t.Fatalf("compress: %v", err)
		}
		out, _, err := Decompress(nil, comp, 1)
		if err != nil {
			t.Fatalf("decompress valid stream: %v", err)
		}
		if len(out) != n {
			t.Fatalf("%d elements out, %d in", len(out), n)
		}
		for i := range data {
			o, r := float64(data[i]), float64(out[i])
			if math.IsNaN(o) || math.IsInf(o, 0) {
				// Verbatim path must preserve bit patterns.
				if math.Float32bits(data[i]) != math.Float32bits(out[i]) {
					t.Fatalf("non-finite value not preserved at %d", i)
				}
				continue
			}
			if math.Abs(r-o) > stats.Eps {
				t.Fatalf("bound violated at %d: |%g − %g| > %g", i, r, o, stats.Eps)
			}
		}
	})
}
