package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ceresz/internal/flenc"
	"ceresz/internal/quant"
)

func smoothField(n int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float32, n)
	v := 0.0
	for i := range data {
		v += rng.NormFloat64() * 0.01
		data[i] = float32(math.Sin(float64(i)*0.01) + v)
	}
	return data
}

func maxAbsErr(a, b []float32) float64 {
	var m float64
	for i := range a {
		if e := math.Abs(float64(a[i]) - float64(b[i])); e > m {
			m = e
		}
	}
	return m
}

func TestRoundTripSmooth(t *testing.T) {
	data := smoothField(10000, 1)
	for _, bound := range []quant.Bound{quant.REL(1e-2), quant.REL(1e-3), quant.REL(1e-4), quant.ABS(1e-3)} {
		comp, stats, err := Compress(nil, data, Options{Bound: bound})
		if err != nil {
			t.Fatalf("%v: %v", bound, err)
		}
		dec, meta, err := Decompress(nil, comp, 0)
		if err != nil {
			t.Fatalf("%v: %v", bound, err)
		}
		if len(dec) != len(data) {
			t.Fatalf("%v: got %d elements, want %d", bound, len(dec), len(data))
		}
		if e := maxAbsErr(data, dec); e > stats.Eps*(1+1e-9) {
			t.Fatalf("%v: max error %g exceeds ε=%g", bound, e, stats.Eps)
		}
		if meta.Eps != stats.Eps {
			t.Fatalf("%v: meta ε %g != stats ε %g", bound, meta.Eps, stats.Eps)
		}
		if stats.Ratio() <= 1 {
			t.Fatalf("%v: ratio %.2f did not compress smooth data", bound, stats.Ratio())
		}
	}
}

func TestRoundTripNonMultipleLength(t *testing.T) {
	for _, n := range []int{0, 1, 7, 31, 32, 33, 100, 255} {
		data := smoothField(n, int64(n)+2)
		comp, stats, err := Compress(nil, data, Options{Bound: quant.ABS(1e-3)})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		dec, _, err := Decompress(nil, comp, 1)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(dec) != n {
			t.Fatalf("n=%d: got %d elements", n, len(dec))
		}
		if n > 0 {
			if e := maxAbsErr(data, dec); e > 1e-3*(1+1e-9) {
				t.Fatalf("n=%d: max error %g", n, e)
			}
		}
		wantBlocks := (n + DefaultBlockLen - 1) / DefaultBlockLen
		if stats.Blocks != wantBlocks {
			t.Fatalf("n=%d: blocks=%d want %d", n, stats.Blocks, wantBlocks)
		}
	}
}

func TestSequentialParallelIdentical(t *testing.T) {
	data := smoothField(64*1024+13, 3)
	seq, _, err := Compress(nil, data, Options{Bound: quant.REL(1e-3), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 64} {
		par, _, err := Compress(nil, data, Options{Bound: quant.REL(1e-3), Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bytes.Equal(seq, par) {
			t.Fatalf("workers=%d: parallel output differs from sequential", workers)
		}
	}
	// Decompression likewise.
	d1, _, err := Decompress(nil, seq, 1)
	if err != nil {
		t.Fatal(err)
	}
	d8, _, err := Decompress(nil, seq, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d1 {
		if d1[i] != d8[i] {
			t.Fatalf("parallel decompression differs at %d", i)
		}
	}
}

func TestZeroData(t *testing.T) {
	data := make([]float32, 4096)
	comp, stats, err := Compress(nil, data, Options{Bound: quant.ABS(1e-3)})
	if err != nil {
		t.Fatal(err)
	}
	if stats.ZeroBlocks != stats.Blocks {
		t.Fatalf("zero blocks %d != total blocks %d", stats.ZeroBlocks, stats.Blocks)
	}
	// 4096 floats = 16384 B → header 24 + 128 block headers · 4 B.
	want := StreamHeaderSize + stats.Blocks*flenc.HeaderU32
	if len(comp) != want {
		t.Fatalf("compressed size %d, want %d", len(comp), want)
	}
	// Ratio approaches the 32× cap as data grows.
	if r := stats.Ratio(); r < 30 {
		t.Fatalf("zero-data ratio %.2f, want ≥30", r)
	}
	dec, _, err := Decompress(nil, comp, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range dec {
		if v != 0 {
			t.Fatalf("dec[%d] = %g, want 0", i, v)
		}
	}
}

func TestVerbatimFallback(t *testing.T) {
	// Huge magnitudes at a tiny ABS bound overflow int32 quantization; the
	// compressor must fall back to verbatim blocks and reproduce exactly.
	data := make([]float32, 96)
	for i := range data {
		data[i] = float32(1e20 * (1 + float64(i)))
	}
	comp, stats, err := Compress(nil, data, Options{Bound: quant.ABS(1e-6)})
	if err != nil {
		t.Fatal(err)
	}
	if stats.VerbatimBlocks != stats.Blocks {
		t.Fatalf("verbatim blocks %d, want %d", stats.VerbatimBlocks, stats.Blocks)
	}
	dec, _, err := Decompress(nil, comp, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if dec[i] != data[i] {
			t.Fatalf("verbatim block not exact at %d: %g != %g", i, dec[i], data[i])
		}
	}
}

func TestVerbatimMixedWithNormal(t *testing.T) {
	data := smoothField(320, 4)
	for i := 64; i < 96; i++ {
		data[i] = float32(math.Inf(1)) // one fully unquantizable block
	}
	comp, stats, err := Compress(nil, data, Options{Bound: quant.ABS(1e-3)})
	if err != nil {
		t.Fatal(err)
	}
	if stats.VerbatimBlocks != 1 {
		t.Fatalf("verbatim blocks = %d, want 1", stats.VerbatimBlocks)
	}
	dec, _, err := Decompress(nil, comp, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 64; i < 96; i++ {
		if !math.IsInf(float64(dec[i]), 1) {
			t.Fatalf("verbatim Inf lost at %d: %g", i, dec[i])
		}
	}
	for i := 0; i < 64; i++ {
		if e := math.Abs(float64(dec[i]) - float64(data[i])); e > 1e-3*(1+1e-9) {
			t.Fatalf("normal block error %g at %d", e, i)
		}
	}
}

func TestHeaderU8Variant(t *testing.T) {
	data := smoothField(2048, 5)
	c32, s32, err := Compress(nil, data, Options{Bound: quant.REL(1e-3), HeaderBytes: flenc.HeaderU32})
	if err != nil {
		t.Fatal(err)
	}
	c8, s8, err := Compress(nil, data, Options{Bound: quant.REL(1e-3), HeaderBytes: flenc.HeaderU8})
	if err != nil {
		t.Fatal(err)
	}
	// The u8-header stream must be exactly 3 bytes per block smaller.
	if len(c32)-len(c8) != 3*s32.Blocks {
		t.Fatalf("size delta %d, want %d", len(c32)-len(c8), 3*s32.Blocks)
	}
	if s8.Ratio() <= s32.Ratio() {
		t.Fatalf("u8 ratio %.3f not better than u32 ratio %.3f", s8.Ratio(), s32.Ratio())
	}
	d32, _, err := Decompress(nil, c32, 0)
	if err != nil {
		t.Fatal(err)
	}
	d8, _, err := Decompress(nil, c8, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d32 {
		if d32[i] != d8[i] {
			t.Fatalf("reconstructions differ at %d (same ε, same algorithm)", i)
		}
	}
}

func TestCompressAppendsToDst(t *testing.T) {
	prefix := []byte{1, 2, 3}
	data := smoothField(64, 6)
	out, _, err := Compress(append([]byte(nil), prefix...), data, Options{Bound: quant.ABS(1e-2)})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out[:3], prefix) {
		t.Fatal("Compress clobbered dst prefix")
	}
	if _, _, err := Decompress(nil, out[3:], 0); err != nil {
		t.Fatal(err)
	}
}

func TestOptionValidation(t *testing.T) {
	data := smoothField(32, 7)
	if _, _, err := Compress(nil, data, Options{Bound: quant.ABS(1e-3), BlockLen: 12}); err == nil {
		t.Fatal("accepted block length 12")
	}
	if _, _, err := Compress(nil, data, Options{Bound: quant.ABS(1e-3), HeaderBytes: 2}); err == nil {
		t.Fatal("accepted header size 2")
	}
	if _, _, err := Compress(nil, data, Options{Bound: quant.ABS(0)}); err == nil {
		t.Fatal("accepted ε=0")
	}
	if _, _, err := CompressWithEps(nil, data, -1, Options{}); err == nil {
		t.Fatal("accepted negative ε")
	}
}

func TestParseHeaderErrors(t *testing.T) {
	data := smoothField(64, 8)
	comp, _, err := Compress(nil, data, Options{Bound: quant.ABS(1e-3)})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func([]byte) []byte{
		"short":      func(b []byte) []byte { return b[:10] },
		"bad magic":  func(b []byte) []byte { c := clone(b); c[0] = 'X'; return c },
		"bad header": func(b []byte) []byte { c := clone(b); c[4] = 2; return c },
		"bad dtype":  func(b []byte) []byte { c := clone(b); c[5] = 1; return c },
		"bad block":  func(b []byte) []byte { c := clone(b); c[6], c[7] = 3, 0; return c },
		"bad eps": func(b []byte) []byte {
			c := clone(b)
			for i := 16; i < 24; i++ {
				c[i] = 0
			}
			return c
		},
	}
	for name, mut := range cases {
		if _, _, err := Decompress(nil, mut(comp), 0); err == nil {
			t.Fatalf("%s: Decompress accepted corrupt stream", name)
		}
	}
}

func TestTruncatedBody(t *testing.T) {
	data := smoothField(4096, 9)
	comp, _, err := Compress(nil, data, Options{Bound: quant.REL(1e-3)})
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{StreamHeaderSize, StreamHeaderSize + 1, len(comp) - 1, len(comp) - 5} {
		if _, _, err := Decompress(nil, comp[:cut], 0); err == nil {
			t.Fatalf("cut=%d: accepted truncated stream", cut)
		}
	}
}

func TestStatsConsistency(t *testing.T) {
	data := smoothField(10240, 10)
	comp, stats, err := Compress(nil, data, Options{Bound: quant.REL(1e-3)})
	if err != nil {
		t.Fatal(err)
	}
	if stats.CompressedBytes != len(comp) {
		t.Fatalf("stats bytes %d != len %d", stats.CompressedBytes, len(comp))
	}
	var blocks int
	for _, c := range stats.WidthHistogram {
		blocks += c
	}
	blocks += stats.VerbatimBlocks
	if blocks != stats.Blocks {
		t.Fatalf("histogram accounts for %d blocks, want %d", blocks, stats.Blocks)
	}
	if stats.WidthHistogram[0] != stats.ZeroBlocks {
		t.Fatalf("WidthHistogram[0]=%d != ZeroBlocks=%d", stats.WidthHistogram[0], stats.ZeroBlocks)
	}
	if mw := stats.MeanWidth(); mw <= 0 || mw > 32 {
		t.Fatalf("MeanWidth = %g out of range", mw)
	}
}

func TestEmptyInput(t *testing.T) {
	comp, stats, err := Compress(nil, nil, Options{Bound: quant.ABS(1)})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Blocks != 0 || len(comp) != StreamHeaderSize {
		t.Fatalf("empty input: blocks=%d size=%d", stats.Blocks, len(comp))
	}
	dec, _, err := Decompress(nil, comp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 0 {
		t.Fatalf("empty decompress returned %d elements", len(dec))
	}
}

// Property: for random finite data the error bound always holds and the
// stream round-trips through both the parallel and sequential paths.
func TestQuickErrorBoundHolds(t *testing.T) {
	f := func(raw []uint32, relExp uint8) bool {
		data := make([]float32, len(raw))
		for i, r := range raw {
			v := math.Float32frombits(r)
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				v = 0
			}
			// Keep magnitudes sane so the quantizable path is exercised.
			if math.Abs(float64(v)) > 1e6 {
				v = float32(math.Mod(float64(v), 1e6))
			}
			data[i] = v
		}
		bound := quant.REL(math.Pow(10, -float64(2+relExp%3)))
		comp, stats, err := Compress(nil, data, Options{Bound: bound})
		if err != nil {
			return false
		}
		dec, _, err := Decompress(nil, comp, 0)
		if err != nil {
			return false
		}
		if len(dec) != len(data) {
			return false
		}
		for i := range data {
			if math.Abs(float64(dec[i])-float64(data[i])) > stats.Eps*(1+1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func clone(b []byte) []byte { return append([]byte(nil), b...) }

func TestStrictFloat32Bound(t *testing.T) {
	// ε just above half the float32 ulp of the values: p·2ε can land past
	// the rounding midpoint so the float32 reconstruction snaps to the next
	// representable value, ~2ε away from the input. The compressor must
	// detect this and go verbatim, keeping the stream exactly error-bounded.
	// (23207.875 / (2·1e-3) = 11603937.5 rounds up; ulp here is ~0.00195.)
	data := make([]float32, 128)
	for i := range data {
		data[i] = 23207.875 + float32(i)*0.001953125
	}
	eps := 1e-3
	comp, stats, err := CompressWithEps(nil, data, eps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.VerbatimBlocks == 0 {
		t.Fatal("expected verbatim fallback for sub-ulp ε")
	}
	dec, _, err := Decompress(nil, comp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e := maxAbsErr(data, dec); e > eps {
		t.Fatalf("strict bound violated: %g > %g", e, eps)
	}
}
