package hostpool

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestRunCoversRangeOnce checks every index in [0, n) is visited exactly
// once, for shard counts below, at, and above the pool size and n.
func TestRunCoversRangeOnce(t *testing.T) {
	for _, tc := range []struct{ shards, n int }{
		{0, 0}, {1, 0}, {4, 0},
		{1, 1}, {2, 1}, {8, 3},
		{1, 100}, {2, 100}, {3, 97}, {4, 100},
		{runtime.GOMAXPROCS(0) + 3, 1000},
		{64, 1000},
	} {
		hits := make([]atomic.Int64, tc.n)
		Run(tc.shards, tc.n, func(shard, lo, hi int) {
			if lo > hi || lo < 0 || hi > tc.n {
				t.Errorf("shards=%d n=%d: bad range [%d,%d)", tc.shards, tc.n, lo, hi)
			}
			for i := lo; i < hi; i++ {
				hits[i].Add(1)
			}
		})
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("shards=%d n=%d: index %d visited %d times", tc.shards, tc.n, i, got)
			}
		}
	}
}

// TestRunShardBoundsDeterministic checks shard k always covers
// [k*n/shards, (k+1)*n/shards) — callers size and stitch output from this.
func TestRunShardBoundsDeterministic(t *testing.T) {
	const shards, n = 7, 103
	var mu sync.Mutex
	got := make(map[int][2]int)
	Run(shards, n, func(shard, lo, hi int) {
		mu.Lock()
		got[shard] = [2]int{lo, hi}
		mu.Unlock()
	})
	if len(got) != shards {
		t.Fatalf("saw %d shards, want %d", len(got), shards)
	}
	for k := 0; k < shards; k++ {
		want := [2]int{k * n / shards, (k + 1) * n / shards}
		if got[k] != want {
			t.Fatalf("shard %d: got range %v, want %v", k, got[k], want)
		}
	}
}

// TestRunConcurrentCallers drives many simultaneous Run calls to exercise
// the non-blocking offer path and caller participation under saturation.
// Run under -race this is the pool's main safety test.
func TestRunConcurrentCallers(t *testing.T) {
	const callers = 16
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			n := 50 + c
			shards := 1 + c%6
			var sum atomic.Int64
			Run(shards, n, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					sum.Add(int64(i))
				}
			})
			want := int64(n*(n-1)) / 2
			if sum.Load() != want {
				t.Errorf("caller %d: sum %d, want %d", c, sum.Load(), want)
			}
		}(c)
	}
	wg.Wait()
}

// TestRunNestedDoesNotDeadlock: a shard function that itself calls Run must
// complete even with every pool worker occupied, because callers always
// participate and submission never blocks.
func TestRunNestedDoesNotDeadlock(t *testing.T) {
	var inner atomic.Int64
	Run(4, 4, func(_, lo, hi int) {
		Run(4, 8, func(_, lo, hi int) {
			inner.Add(int64(hi - lo))
		})
	})
	if got := inner.Load(); got != 4*8 {
		t.Fatalf("inner iterations = %d, want %d", got, 4*8)
	}
}

// TestSequentialRunsInline: shards <= 1 must execute on the calling
// goroutine without starting the pool (no goroutine handoff, no allocs).
func TestSequentialRunsInline(t *testing.T) {
	var calls int // plain int: safe only if fn runs on this goroutine
	var badShard bool
	fn := func(shard, lo, hi int) {
		if shard != 0 || lo != 0 || hi != 10 {
			badShard = true
		}
		calls++
	}
	allocs := testing.AllocsPerRun(100, func() {
		Run(1, 10, fn)
	})
	if badShard {
		t.Error("inline shard range differed from (0, 0, 10)")
	}
	if calls == 0 {
		t.Fatal("fn never ran")
	}
	if allocs != 0 {
		t.Fatalf("sequential Run allocated %.1f per call, want 0", allocs)
	}
}

// TestPeakTracksOccupancy: after a parallel run, the high-water mark is at
// least 1 (the participating caller) and never exceeds pool size + callers.
func TestPeakTracksOccupancy(t *testing.T) {
	Run(4, 1000, func(_, lo, hi int) {
		s := 0
		for i := lo; i < hi; i++ {
			s += i
		}
		_ = s
	})
	p := Peak()
	if p < 1 {
		t.Fatalf("Peak() = %d after a parallel run, want >= 1", p)
	}
	if max := Size() + 64; p > max {
		t.Fatalf("Peak() = %d, exceeds plausible bound %d", p, max)
	}
	if im := LastImbalance(); im < 0 || im > 100 {
		t.Fatalf("LastImbalance() = %d, want within [0,100]", im)
	}
}
