// Package hostpool is the block-parallel execution layer shared by the
// host codec's Compress/Decompress paths (internal/core). CereSZ's blocks
// are compressed independently (paper §3) — the property the paper uses to
// fan blocks out across wafer rows — which makes the host codec
// embarrassingly parallel across CPU cores in exactly the same way the
// SIMD-lossy-compression literature exploits: vector-parallel within a
// core (the SWAR kernels), thread-parallel across cores, one bitstream.
//
// The pool is process-wide and lazily started: the first parallel call
// spawns GOMAXPROCS persistent workers; sequential callers (Workers ≤ 1)
// never touch it, preserving the zero-allocation steady-state contract.
// A call shards its index range [0, n) into `shards` contiguous ranges and
// the calling goroutine *participates*: it claims shards from the same
// atomic cursor the pool workers do, so a call always makes progress even
// when every pool worker is busy with other calls, and K concurrent calls
// plus one big call share the machine without oversubscription — total
// concurrency is bounded by the pool size plus the callers themselves.
//
// Shard execution order is unspecified; callers that produce output stitch
// it back by shard index, which is what keeps parallel streams
// byte-identical to the sequential reference at any shard count.
package hostpool

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ceresz/internal/telemetry"
)

// Telemetry instruments (Default registry, disabled unless a CLI opts
// in). The atomics below are always maintained, so Peak/LastImbalance
// work even when the registry is off — cereszd mirrors them into its
// private registry for /debug/metrics.
var (
	telPeak      = telemetry.G("host.pool_peak_workers")
	telImbalance = telemetry.G("host.shard_imbalance_pct")
	telRuns      = telemetry.C("host.pool_runs")
	telShards    = telemetry.C("host.pool_shards")
)

var (
	once sync.Once
	runq chan *run
	size int

	active        atomic.Int64 // goroutines currently executing shards (workers + callers)
	peak          atomic.Int64 // high-water mark of active
	lastImbalance atomic.Int64 // (max-min)/max shard wall time of the last timed run, in percent
)

// run is one parallel call's descriptor: pool workers and the caller claim
// shards from next until the range is exhausted.
type run struct {
	fn     func(shard, lo, hi int)
	n      int
	shards int
	next   atomic.Int64
	wg     sync.WaitGroup
	timed  bool // record per-shard wall times for the imbalance gauge
	minNs  atomic.Int64
	maxNs  atomic.Int64
}

func start() {
	size = runtime.GOMAXPROCS(0)
	if size < 1 {
		size = 1
	}
	runq = make(chan *run, size)
	for i := 0; i < size; i++ {
		go worker()
	}
}

func worker() {
	for r := range runq {
		r.work()
	}
}

// work claims shards until the run's cursor is exhausted. The first claim
// registers this goroutine as active (a worker that arrives after every
// shard is claimed touches nothing).
func (r *run) work() {
	counted := false
	for {
		k := int(r.next.Add(1)) - 1
		if k >= r.shards {
			break
		}
		if !counted {
			counted = true
			a := active.Add(1)
			for {
				p := peak.Load()
				if a <= p || peak.CompareAndSwap(p, a) {
					break
				}
			}
		}
		lo, hi := k*r.n/r.shards, (k+1)*r.n/r.shards
		if r.timed {
			t0 := time.Now()
			r.fn(k, lo, hi)
			d := time.Since(t0).Nanoseconds()
			for {
				m := r.minNs.Load()
				if (m != 0 && d >= m) || r.minNs.CompareAndSwap(m, d) {
					break
				}
			}
			for {
				m := r.maxNs.Load()
				if d <= m || r.maxNs.CompareAndSwap(m, d) {
					break
				}
			}
		} else {
			r.fn(k, lo, hi)
		}
		r.wg.Done()
	}
	if counted {
		active.Add(-1)
	}
}

// Size reports the pool's worker count (GOMAXPROCS at first use); before
// the pool has started it reports what that count would be.
func Size() int {
	if runq == nil {
		return runtime.GOMAXPROCS(0)
	}
	return size
}

// Peak reports the high-water mark of concurrently active shard executors
// (pool workers plus participating callers) since process start.
func Peak() int { return int(peak.Load()) }

// LastImbalance reports the shard wall-time imbalance of the most recent
// telemetry-timed parallel call as (max−min)/max in percent. 0 means
// perfectly balanced (or no timed run yet).
func LastImbalance() int { return int(lastImbalance.Load()) }

// Run partitions [0, n) into shards contiguous ranges and executes
// fn(shard, lo, hi) once per shard, returning when all have finished.
// Shard k covers [k·n/shards, (k+1)·n/shards), so callers can size and
// stitch per-shard output deterministically. With shards ≤ 1 fn runs
// inline on the caller with the full range and the pool is never started.
// fn must be safe for concurrent invocation from multiple goroutines.
func Run(shards, n int, fn func(shard, lo, hi int)) {
	if shards > n {
		shards = n
	}
	if shards <= 1 {
		if n > 0 {
			fn(0, 0, n)
		}
		return
	}
	once.Do(start)
	r := &run{fn: fn, n: n, shards: shards, timed: telemetry.Enabled()}
	r.wg.Add(shards)
	// Offer the run to idle workers without ever blocking: a full queue
	// means the pool is saturated, and the caller simply executes the
	// shards itself. At most shards-1 workers can help (the caller takes
	// at least one shard).
	offers := shards - 1
	if offers > size {
		offers = size
	}
	for i := 0; i < offers; i++ {
		select {
		case runq <- r:
		default:
			i = offers
		}
	}
	r.work()
	r.wg.Wait()
	if r.timed {
		telRuns.Add(1)
		telShards.Add(int64(shards))
		telPeak.Set(peak.Load())
		if mx := r.maxNs.Load(); mx > 0 {
			imb := 100 * (mx - r.minNs.Load()) / mx
			lastImbalance.Store(imb)
			telImbalance.Set(imb)
		}
	}
}
