package chunkcache

import (
	"encoding/binary"
	"math"
)

// Canonical key layouts. The serving tier (internal/server) addresses
// cache entries with these preambles, and the cluster tier
// (internal/cluster) routes requests by the same digests — consistent
// hashing over the identical key family concentrates identical chunks on
// the node whose cache already holds them, so cluster-wide repeat traffic
// turns into warm single-node hits. Keeping the layout here, next to the
// Key type, is what makes "routing and cache keys agree" a property of
// the code rather than a convention between two packages.
const (
	// KeyVersion guards against silently reusing entries (or routing
	// affinity assumptions) across key-schema changes.
	KeyVersion = 1
	// NSCompress namespaces raw-chunk → CSZF-frame entries.
	NSCompress = 1
	// NSDecompress namespaces CSZF-frame-payload → raw-bytes entries.
	NSDecompress = 2
)

// AppendCompressPreamble appends the compress-direction key preamble:
// every parameter that shapes the frame bytes. elem is the wire element
// tag (0 = f32, 1 = f64); abs selects the absolute-bound mode; eps is the
// bound value (ε for ABS, λ for REL — a REL bound is keyed by λ, since
// its resolution to an ε is a deterministic function of the chunk bytes
// the digest already pins down); blockLen is the CereSZ block length
// (0 = the codec default). Worker count is deliberately absent — the
// host codec is byte-identical at every parallelism level.
func AppendCompressPreamble(pre []byte, elem byte, abs bool, eps float64, blockLen int) []byte {
	mode := byte(0)
	if abs {
		mode = 1
	}
	pre = append(pre, KeyVersion, NSCompress, elem, mode)
	pre = binary.LittleEndian.AppendUint64(pre, math.Float64bits(eps))
	return binary.LittleEndian.AppendUint32(pre, uint32(blockLen))
}

// AppendDecompressPreamble appends the decompress-direction key preamble.
// The frame payload encodes every codec parameter itself, so only the
// requested output element type joins it.
func AppendDecompressPreamble(pre []byte, wantF64 bool) []byte {
	elem := byte(0)
	if wantF64 {
		elem = 1
	}
	return append(pre, KeyVersion, NSDecompress, elem)
}

// RingHash folds a Key into the 64-bit value consistent-hash rings place
// on the circle: the digest's leading 8 bytes, big-endian. One definition
// shared by every ring consumer keeps placement stable across tiers.
func RingHash(k Key) uint64 { return binary.BigEndian.Uint64(k[:8]) }
