// Package chunkcache is a sharded, bounded-memory, content-addressed
// cache for codec results, keyed by SHA-256 of the codec input plus the
// parameters that shape the output. It exists because CereSZ streams are
// block-independent by construction (the paper's row-parallel premise):
// one chunk's compressed frame depends only on that chunk's bytes and the
// codec options, so identical chunks recompressed across timesteps — the
// dominant pattern in scientific serving traffic — can be answered from
// memory instead of the codec.
//
// Design constraints, in the order they shaped the code:
//
//   - Coalescing: N concurrent requests for the same missing key must
//     trigger exactly one computation. A pending entry carries a condition
//     variable (sharing the shard mutex); late arrivals wait on it instead
//     of recomputing.
//   - Zero-copy hits: a hit returns the cache's own buffer. Readers pin
//     the entry (a refcount under the shard mutex) while streaming it to
//     the wire, so eviction can never recycle bytes someone is writing.
//   - Zero-alloc steady state: entries and their buffers recycle through a
//     per-shard free list when evicted unpinned, so a cache churning at
//     its byte cap performs no steady-state heap allocations on the miss
//     path — the same contract the serving hot path already keeps.
//   - Bounded memory: the byte budget is split evenly across shards and
//     enforced by LRU eviction at publish time. Entries pinned at eviction
//     time become zombies: gone from the index immediately, recycled when
//     the last reader releases them.
package chunkcache

import (
	"crypto/sha256"
	"errors"
	"hash"

	"sync"

	"ceresz/internal/telemetry"
)

// Key is a content address: SHA-256 over a parameter preamble plus the
// codec input bytes. Build one with a Hasher.
type Key [32]byte

// Meta rides along with a cached value.
type Meta struct {
	// Eps is the resolved absolute error bound the value was produced
	// under (compress direction; informational elsewhere).
	Eps float64
	// SavedBytes is the codec input volume a hit avoids re-processing —
	// raw bytes on the compress direction, compressed payload bytes on
	// the decompress direction. Summed into the bytes-saved counter.
	SavedBytes int64
}

// Outcome classifies one Get.
type Outcome uint8

const (
	// Miss: the caller owns the computation and must Complete or Abort.
	Miss Outcome = iota
	// Hit: the value was resident; the handle pins it until Release.
	Hit
	// Coalesced: a concurrent owner computed the value while this caller
	// waited; the handle pins it until Release.
	Coalesced
)

// ErrAborted reports that the computation this Get coalesced onto was
// aborted by its owner. Callers should compute locally without caching —
// the failure is input-dependent and would recur.
var ErrAborted = errors.New("chunkcache: coalesced computation aborted")

// entry states.
const (
	statePending uint8 = iota
	stateReady
	stateFailed
)

// entryOverhead approximates the fixed per-entry cost charged against the
// byte budget on top of the value bytes: struct, map slot, key.
const entryOverhead = 192

// nShards splits the index and its locks. Power of two; modest so small
// byte budgets still leave each shard a useful share.
const nShards = 8

type entry struct {
	key   Key
	val   []byte
	meta  Meta
	state uint8
	// zombie: off the index (evicted or aborted) but still pinned or
	// awaited; the last releaser recycles it.
	zombie  bool
	refs    int32
	waiters int32
	cond    sync.Cond // L is the owning shard's mutex
	// LRU links while ready and resident; next doubles as the free-list
	// link when recycled.
	prev, next *entry
}

type shard struct {
	mu       sync.Mutex
	m        map[Key]*entry
	capBytes int64
	bytes    int64
	// LRU of ready resident entries: head = most recent.
	head, tail *entry
	free       *entry // recycled entries, linked through next
}

// Cache is the content-addressed store. A nil *Cache is not usable; the
// caller gates on construction (a zero byte budget means no cache).
type Cache struct {
	shards [nShards]shard

	hits       *telemetry.Counter
	misses     *telemetry.Counter
	coalesced  *telemetry.Counter
	evictions  *telemetry.Counter
	savedBytes *telemetry.Counter
	bytesG     *telemetry.Gauge
	entriesG   *telemetry.Gauge
}

// New returns a Cache with capBytes of total budget, registering its
// instruments (cache.hits, cache.misses, cache.coalesced,
// cache.evictions, cache.bytes_saved counters; cache.bytes, cache.entries
// gauges) in reg. capBytes must be positive; reg may be nil for
// telemetry.Default.
func New(capBytes int64, reg *telemetry.Registry) *Cache {
	if reg == nil {
		reg = telemetry.Default
	}
	c := &Cache{
		hits:       reg.Counter("cache.hits"),
		misses:     reg.Counter("cache.misses"),
		coalesced:  reg.Counter("cache.coalesced"),
		evictions:  reg.Counter("cache.evictions"),
		savedBytes: reg.Counter("cache.bytes_saved"),
		bytesG:     reg.Gauge("cache.bytes"),
		entriesG:   reg.Gauge("cache.entries"),
	}
	per := capBytes / nShards
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i].m = make(map[Key]*entry)
		c.shards[i].capBytes = per
	}
	return c
}

// Handle is the caller's side of one Get. The zero Handle is inert. On
// Hit/Coalesced the handle pins the cached bytes until Release; on Miss
// the caller must call exactly one of Complete or Abort.
type Handle struct {
	c       *Cache
	s       *shard
	e       *entry
	outcome Outcome
}

// Outcome reports how the Get resolved.
func (h Handle) Outcome() Outcome { return h.outcome }

// Pinned reports whether the handle holds a reference that Release must
// drop (Hit and Coalesced outcomes).
func (h Handle) Pinned() bool { return h.e != nil && h.outcome != Miss }

// Bytes returns the cached value. Valid only for Hit/Coalesced handles,
// and only until Release.
func (h Handle) Bytes() []byte { return h.e.val }

// Meta returns the cached value's metadata (Hit/Coalesced handles).
func (h Handle) Meta() Meta { return h.e.meta }

// Get resolves key: a resident value pins and returns immediately (Hit);
// a computation in flight blocks until it publishes (Coalesced); an
// absent key registers a pending entry and hands ownership to the caller
// (Miss). The error is non-nil only when a coalesced-onto computation was
// aborted — the caller should then compute locally without caching.
func (c *Cache) Get(key Key) (Handle, error) {
	s := &c.shards[int(key[0])&(nShards-1)]
	s.mu.Lock()
	if e, ok := s.m[key]; ok {
		if e.state == stateReady {
			s.touch(e)
			e.refs++
			s.mu.Unlock()
			c.hits.Add(1)
			c.savedBytes.Add(e.meta.SavedBytes)
			return Handle{c: c, s: s, e: e, outcome: Hit}, nil
		}
		// Pending: coalesce onto the in-flight computation. The waiter
		// count keeps the entry from being recycled out from under us.
		e.waiters++
		for e.state == statePending {
			e.cond.Wait()
		}
		e.waiters--
		if e.state == stateFailed {
			if e.zombie && e.refs == 0 && e.waiters == 0 {
				s.recycle(e)
			}
			s.mu.Unlock()
			return Handle{}, ErrAborted
		}
		e.refs++
		s.mu.Unlock()
		c.coalesced.Add(1)
		c.savedBytes.Add(e.meta.SavedBytes)
		return Handle{c: c, s: s, e: e, outcome: Coalesced}, nil
	}
	e := s.takeEntry()
	e.key = key
	e.state = statePending
	s.m[key] = e
	s.mu.Unlock()
	c.misses.Add(1)
	return Handle{c: c, s: s, e: e, outcome: Miss}, nil
}

// Complete publishes a Miss handle's value: val is copied into the
// entry's recycled buffer, waiters wake, and the shard evicts from its
// LRU tail until back under budget. The handle is spent afterwards.
func (h Handle) Complete(val []byte, meta Meta) {
	e, s := h.e, h.s
	// The owner is the only goroutine touching a pending entry's buffer,
	// so the copy happens outside the lock.
	e.val = append(e.val[:0], val...)
	e.meta = meta
	size := int64(len(e.val)) + entryOverhead
	s.mu.Lock()
	e.state = stateReady
	s.bytes += size
	s.pushFront(e)
	e.cond.Broadcast()
	evicted := 0
	for s.bytes > s.capBytes && s.tail != nil {
		ev := s.tail
		s.unlink(ev)
		delete(s.m, ev.key)
		s.bytes -= int64(len(ev.val)) + entryOverhead
		evicted++
		if ev.refs == 0 && ev.waiters == 0 {
			s.recycle(ev)
		} else {
			ev.zombie = true
		}
	}
	bytes, entries := s.bytes, int64(len(s.m))
	s.mu.Unlock()
	if evicted > 0 {
		h.c.evictions.Add(int64(evicted))
	}
	h.c.noteShard(s, bytes, entries)
}

// Abort withdraws a Miss handle whose computation failed: the key leaves
// the index and waiters receive ErrAborted. The handle is spent.
func (h Handle) Abort() {
	e, s := h.e, h.s
	s.mu.Lock()
	e.state = stateFailed
	delete(s.m, e.key)
	e.zombie = true
	e.cond.Broadcast()
	if e.waiters == 0 && e.refs == 0 {
		s.recycle(e)
	}
	s.mu.Unlock()
}

// Release drops a Hit/Coalesced handle's pin. Safe on the zero Handle
// and on Miss handles (no-op), so callers can release unconditionally.
func (h Handle) Release() {
	if !h.Pinned() {
		return
	}
	e, s := h.e, h.s
	s.mu.Lock()
	e.refs--
	if e.zombie && e.refs == 0 && e.waiters == 0 {
		s.recycle(e)
	}
	s.mu.Unlock()
}

// noteShard refreshes the aggregate gauges after a shard changed. Sums
// under each shard's own lock would serialize the shards; an approximate
// sum of per-shard snapshots is accurate enough for monitoring.
func (c *Cache) noteShard(_ *shard, _, _ int64) {
	var bytes, entries int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		bytes += s.bytes
		entries += int64(len(s.m))
		s.mu.Unlock()
	}
	c.bytesG.Set(bytes)
	c.entriesG.Set(entries)
}

// Bytes reports the resident value bytes plus per-entry overhead across
// all shards.
func (c *Cache) Bytes() int64 {
	var total int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		total += s.bytes
		s.mu.Unlock()
	}
	return total
}

// Len reports the resident entry count across all shards.
func (c *Cache) Len() int {
	var total int
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		total += len(s.m)
		s.mu.Unlock()
	}
	return total
}

// CapBytes reports the configured total byte budget.
func (c *Cache) CapBytes() int64 {
	var total int64
	for i := range c.shards {
		total += c.shards[i].capBytes
	}
	return total
}

// takeEntry pops the free list or allocates. Called under s.mu.
func (s *shard) takeEntry() *entry {
	if e := s.free; e != nil {
		s.free = e.next
		e.next = nil
		e.zombie = false
		e.refs = 0
		e.waiters = 0
		return e
	}
	e := &entry{}
	e.cond.L = &s.mu
	return e
}

// recycle pushes an unlinked, unpinned entry onto the free list, keeping
// its value buffer for the next tenant. Called under s.mu.
func (s *shard) recycle(e *entry) {
	e.prev = nil
	e.next = s.free
	s.free = e
}

// pushFront links e at the LRU head. Called under s.mu.
func (s *shard) pushFront(e *entry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

// unlink removes e from the LRU. Called under s.mu.
func (s *shard) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// touch moves a resident entry to the LRU head. Called under s.mu.
func (s *shard) touch(e *entry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

// Hasher derives Keys with a reusable SHA-256 state: zero allocations per
// Key once constructed. Not safe for concurrent use; give each worker its
// own.
type Hasher struct {
	h hash.Hash
	// pre and sum are reusable scratch: passing stack arrays through the
	// hash.Hash interface would force a heap escape per chunk, so both
	// live on the (already heap-resident) Hasher instead.
	pre []byte
	sum [sha256.Size]byte
}

// NewHasher returns a ready Hasher.
func NewHasher() *Hasher { return &Hasher{h: sha256.New(), pre: make([]byte, 0, 64)} }

// Preamble returns the reusable parameter-prefix scratch, emptied. Append
// the values that shape the codec output (direction, element type, mode,
// eps bits, block length), then pass it to Key.
func (h *Hasher) Preamble() []byte { return h.pre[:0] }

// Key hashes preamble followed by data into a Key. preamble should come
// from Preamble so the slice header does not escape per call.
func (h *Hasher) Key(preamble, data []byte) Key {
	h.pre = preamble // retain scratch growth for reuse
	h.h.Reset()
	h.h.Write(preamble)
	h.h.Write(data)
	h.h.Sum(h.sum[:0])
	return Key(h.sum)
}
