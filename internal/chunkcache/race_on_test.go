//go:build race

package chunkcache

const raceEnabled = true
