package chunkcache

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"ceresz/internal/telemetry"
)

// key returns a Key landing in shard (b & 7) with a distinguishing tail.
func key(shardByte byte, id int) Key {
	var k Key
	k[0] = shardByte
	k[1] = byte(id)
	k[2] = byte(id >> 8)
	k[3] = byte(id >> 16)
	return k
}

func val(id, size int) []byte {
	v := make([]byte, size)
	for i := range v {
		v[i] = byte(id + i)
	}
	return v
}

func TestMissCompleteHit(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := New(1<<20, reg)

	k := key(0, 1)
	h, err := c.Get(k)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if h.Outcome() != Miss {
		t.Fatalf("first Get outcome = %v, want Miss", h.Outcome())
	}
	want := val(1, 128)
	h.Complete(want, Meta{Eps: 0.5, SavedBytes: 4096})

	h2, err := c.Get(k)
	if err != nil {
		t.Fatalf("Get after Complete: %v", err)
	}
	if h2.Outcome() != Hit {
		t.Fatalf("second Get outcome = %v, want Hit", h2.Outcome())
	}
	if !bytes.Equal(h2.Bytes(), want) {
		t.Fatalf("hit bytes differ from completed value")
	}
	if m := h2.Meta(); m.Eps != 0.5 || m.SavedBytes != 4096 {
		t.Fatalf("hit meta = %+v", m)
	}
	h2.Release()

	if got := reg.Counter("cache.misses").Value(); got != 1 {
		t.Errorf("misses = %d, want 1", got)
	}
	if got := reg.Counter("cache.hits").Value(); got != 1 {
		t.Errorf("hits = %d, want 1", got)
	}
	if got := reg.Counter("cache.bytes_saved").Value(); got != 4096 {
		t.Errorf("bytes_saved = %d, want 4096", got)
	}
	if got, want := c.Bytes(), int64(128+entryOverhead); got != want {
		t.Errorf("Bytes() = %d, want %d", got, want)
	}
	if c.Len() != 1 {
		t.Errorf("Len() = %d, want 1", c.Len())
	}
}

func TestCoalescing(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := New(1<<20, reg)
	k := key(3, 7)

	owner, err := c.Get(k)
	if err != nil || owner.Outcome() != Miss {
		t.Fatalf("owner Get = (%v, %v), want Miss", owner.Outcome(), err)
	}

	const waiters = 8
	want := val(7, 256)
	results := make(chan []byte, waiters)
	var started sync.WaitGroup
	started.Add(waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			started.Done()
			h, err := c.Get(k)
			if err != nil {
				results <- nil
				return
			}
			if h.Outcome() != Coalesced && h.Outcome() != Hit {
				results <- nil
				return
			}
			cp := append([]byte(nil), h.Bytes()...)
			h.Release()
			results <- cp
		}()
	}
	started.Wait()
	owner.Complete(want, Meta{SavedBytes: 100})

	for i := 0; i < waiters; i++ {
		got := <-results
		if !bytes.Equal(got, want) {
			t.Fatalf("waiter %d got %d bytes, want the completed value", i, len(got))
		}
	}
	if got := reg.Counter("cache.misses").Value(); got != 1 {
		t.Errorf("misses = %d, want 1 (single computation)", got)
	}
	hits := reg.Counter("cache.hits").Value()
	coal := reg.Counter("cache.coalesced").Value()
	if hits+coal != waiters {
		t.Errorf("hits(%d)+coalesced(%d) = %d, want %d", hits, coal, hits+coal, waiters)
	}
}

func TestAbortWakesWaiters(t *testing.T) {
	c := New(1<<20, telemetry.NewRegistry())
	k := key(1, 9)

	owner, _ := c.Get(k)
	const waiters = 4
	errs := make(chan error, waiters)
	var started sync.WaitGroup
	started.Add(waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			started.Done()
			_, err := c.Get(k)
			errs <- err
		}()
	}
	started.Wait()
	owner.Abort()

	for i := 0; i < waiters; i++ {
		if err := <-errs; err != ErrAborted {
			t.Fatalf("waiter %d err = %v, want ErrAborted", i, err)
		}
	}
	// The key must be gone: the next Get owns a fresh computation.
	h, err := c.Get(k)
	if err != nil || h.Outcome() != Miss {
		t.Fatalf("Get after Abort = (%v, %v), want Miss", h.Outcome(), err)
	}
	h.Complete(val(9, 16), Meta{})
	if c.Len() != 1 {
		t.Fatalf("Len after recompute = %d, want 1", c.Len())
	}
}

// perShardEntries returns a cap sized so one shard holds exactly n entries
// of valSize bytes.
func perShardEntries(n, valSize int) int64 {
	return int64(n) * int64(valSize+entryOverhead) * nShards
}

func TestEvictionHonorsCap(t *testing.T) {
	reg := telemetry.NewRegistry()
	const valSize = 100
	c := New(perShardEntries(3, valSize), reg)

	// All keys land in shard 0; capacity is 3 entries there.
	for i := 0; i < 5; i++ {
		h, err := c.Get(key(0, i))
		if err != nil || h.Outcome() != Miss {
			t.Fatalf("insert %d: (%v, %v)", i, h.Outcome(), err)
		}
		h.Complete(val(i, valSize), Meta{})
	}
	if got := c.Len(); got != 3 {
		t.Errorf("Len = %d, want 3 after eviction", got)
	}
	if got, max := c.Bytes(), int64(3*(valSize+entryOverhead)); got > max {
		t.Errorf("Bytes = %d, exceeds shard budget %d", got, max)
	}
	if got := reg.Counter("cache.evictions").Value(); got != 2 {
		t.Errorf("evictions = %d, want 2", got)
	}
	// Oldest two (0, 1) are gone; newest three remain.
	for i := 0; i < 5; i++ {
		h, err := c.Get(key(0, i))
		if err != nil {
			t.Fatalf("probe %d: %v", i, err)
		}
		wantHit := i >= 2
		if (h.Outcome() == Hit) != wantHit {
			t.Errorf("probe %d outcome = %v, wantHit=%v", i, h.Outcome(), wantHit)
		}
		if h.Outcome() == Miss {
			h.Abort()
		} else {
			h.Release()
		}
	}
}

func TestLRUTouchOnHit(t *testing.T) {
	const valSize = 64
	c := New(perShardEntries(3, valSize), telemetry.NewRegistry())

	for i := 0; i < 3; i++ {
		h, _ := c.Get(key(0, i))
		h.Complete(val(i, valSize), Meta{})
	}
	// Touch entry 0 so entry 1 becomes the LRU victim.
	h, _ := c.Get(key(0, 0))
	if h.Outcome() != Hit {
		t.Fatalf("touch outcome = %v, want Hit", h.Outcome())
	}
	h.Release()

	h, _ = c.Get(key(0, 3))
	h.Complete(val(3, valSize), Meta{})

	expect := map[int]Outcome{0: Hit, 1: Miss, 2: Hit, 3: Hit}
	for id, want := range expect {
		h, err := c.Get(key(0, id))
		if err != nil {
			t.Fatalf("probe %d: %v", id, err)
		}
		if h.Outcome() != want {
			t.Errorf("probe %d outcome = %v, want %v", id, h.Outcome(), want)
		}
		if h.Outcome() == Miss {
			h.Abort()
		} else {
			h.Release()
		}
	}
}

func TestPinnedEvictionKeepsBytes(t *testing.T) {
	const valSize = 64
	c := New(perShardEntries(2, valSize), telemetry.NewRegistry())

	h0, _ := c.Get(key(0, 0))
	want := val(0, valSize)
	h0.Complete(want, Meta{})

	// Pin entry 0, then churn the shard far past its budget so entry 0 is
	// evicted while pinned.
	pin, _ := c.Get(key(0, 0))
	if pin.Outcome() != Hit {
		t.Fatalf("pin outcome = %v", pin.Outcome())
	}
	for i := 1; i < 10; i++ {
		h, err := c.Get(key(0, i))
		if err != nil || h.Outcome() != Miss {
			t.Fatalf("churn %d: (%v, %v)", i, h.Outcome(), err)
		}
		h.Complete(val(i, valSize), Meta{})
	}
	// The pinned buffer must be untouched even though the entry is gone
	// from the index.
	if !bytes.Equal(pin.Bytes(), want) {
		t.Fatalf("pinned bytes corrupted during eviction churn")
	}
	probe, _ := c.Get(key(0, 0))
	if probe.Outcome() != Miss {
		t.Fatalf("evicted-while-pinned key still resident: %v", probe.Outcome())
	}
	probe.Abort()
	pin.Release() // recycles the zombie; must not panic or corrupt the shard

	// The shard keeps working after zombie recycling.
	h, _ := c.Get(key(0, 100))
	h.Complete(val(100, valSize), Meta{})
	h2, _ := c.Get(key(0, 100))
	if h2.Outcome() != Hit {
		t.Fatalf("post-zombie insert not retrievable: %v", h2.Outcome())
	}
	h2.Release()
}

// TestConcurrentStorm drives identical and distinct keys from many
// goroutines under churn: every unique key must be computed exactly once
// per residency, hit bytes must match the computed value, and the byte
// budget must hold. Run with -race.
func TestConcurrentStorm(t *testing.T) {
	reg := telemetry.NewRegistry()
	const valSize = 256
	const uniqueKeys = 32
	// Budget holds roughly half the working set, forcing eviction churn.
	c := New(int64(uniqueKeys/2)*int64(valSize+entryOverhead), reg)

	var computations [uniqueKeys]atomic.Int64
	var inflight [uniqueKeys]atomic.Int64 // concurrent owners per key; must never exceed 1

	const goroutines = 16
	const opsPer = 400
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(seed int) {
			defer wg.Done()
			rng := uint64(seed)*2654435761 + 1
			for op := 0; op < opsPer; op++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				id := int(rng>>33) % uniqueKeys
				k := key(byte(id), id)
				want := val(id, valSize)
				h, err := c.Get(k)
				if err != nil {
					t.Errorf("Get(%d): %v", id, err)
					return
				}
				switch h.Outcome() {
				case Miss:
					if n := inflight[id].Add(1); n != 1 {
						t.Errorf("key %d: %d concurrent owners", id, n)
					}
					computations[id].Add(1)
					h.Complete(want, Meta{SavedBytes: valSize})
					inflight[id].Add(-1)
				case Hit, Coalesced:
					if !bytes.Equal(h.Bytes(), want) {
						t.Errorf("key %d: cached bytes differ", id)
					}
					h.Release()
				}
			}
		}(g)
	}
	wg.Wait()

	if got, max := c.Bytes(), c.CapBytes()+int64(valSize+entryOverhead)*nShards; got > max {
		t.Errorf("Bytes = %d, exceeds budget slack %d", got, max)
	}
	var total int64
	for i := range computations {
		total += computations[i].Load()
	}
	served := reg.Counter("cache.hits").Value() + reg.Counter("cache.coalesced").Value()
	if total+served != goroutines*opsPer {
		t.Errorf("computations(%d)+served(%d) != ops(%d)", total, served, goroutines*opsPer)
	}
	// With churn, recomputation after eviction is legal — but the storm
	// must still have meaningfully coalesced/hit.
	if served == 0 {
		t.Errorf("no cache hits in storm")
	}
}

// TestSteadyStateZeroAlloc locks in the recycling contract: once warmed, a
// churning shard (miss → Complete → evict) and the hit path perform no
// heap allocations, so the serving miss path can keep its per-chunk
// AllocsPerRun==0 guarantee with the cache enabled.
func TestSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counting is unreliable under -race")
	}
	const valSize = 512
	const cycle = 8
	c := New(perShardEntries(3, valSize), telemetry.NewRegistry())
	h := NewHasher()

	payload := val(1, valSize)
	var n int
	churn := func() {
		n++
		pre := h.Preamble()
		pre = append(pre, byte(n%cycle), 1, 2, 3)
		k := h.Key(pre, payload)
		k[0] = 0 // keep every key in shard 0 so eviction churns constantly
		hd, err := c.Get(k)
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		switch hd.Outcome() {
		case Miss:
			hd.Complete(payload, Meta{SavedBytes: valSize})
		default:
			hd.Release()
		}
	}
	for i := 0; i < 64; i++ {
		churn() // warm the freelist, map slots and hasher
	}
	if got := testing.AllocsPerRun(200, churn); got != 0 {
		t.Fatalf("steady-state churn AllocsPerRun = %v, want 0", got)
	}

	// Pure hit path on a resident key.
	kHit := h.Key(h.Preamble(), payload)
	kHit[0] = 1
	if hd, _ := c.Get(kHit); hd.Outcome() == Miss {
		hd.Complete(payload, Meta{})
	}
	hit := func() {
		hd, err := c.Get(kHit)
		if err != nil || hd.Outcome() != Hit {
			t.Fatalf("hit path: (%v, %v)", hd.Outcome(), err)
		}
		if len(hd.Bytes()) != valSize {
			t.Fatalf("hit bytes len = %d", len(hd.Bytes()))
		}
		hd.Release()
	}
	hit()
	if got := testing.AllocsPerRun(200, hit); got != 0 {
		t.Fatalf("hit path AllocsPerRun = %v, want 0", got)
	}
}

func TestDisabledIsCallerGated(t *testing.T) {
	// -cache-bytes 0 means the server never constructs a Cache; this test
	// documents that New(0) still yields a tiny working cache (floor of 1
	// byte per shard) rather than a panic, so misconfiguration degrades to
	// immediate eviction, not a crash.
	c := New(0, telemetry.NewRegistry())
	h, err := c.Get(key(0, 1))
	if err != nil || h.Outcome() != Miss {
		t.Fatalf("Get = (%v, %v)", h.Outcome(), err)
	}
	h.Complete(val(1, 64), Meta{})
	probe, _ := c.Get(key(0, 1))
	if probe.Outcome() != Miss {
		t.Fatalf("zero-budget cache retained an entry")
	}
	probe.Abort()
}

func TestHasherKeyStability(t *testing.T) {
	h1, h2 := NewHasher(), NewHasher()
	data := val(5, 1000)
	pre := h1.Preamble()
	pre = append(pre, 1, 0x20, 0, 0xAB)
	k1 := h1.Key(pre, data)

	pre2 := h2.Preamble()
	pre2 = append(pre2, 1, 0x20, 0, 0xAB)
	k2 := h2.Key(pre2, data)
	if k1 != k2 {
		t.Fatalf("same input hashed to different keys")
	}

	pre3 := h2.Preamble()
	pre3 = append(pre3, 1, 0x20, 0, 0xAC) // one preamble byte differs
	if k3 := h2.Key(pre3, data); k3 == k1 {
		t.Fatalf("different preamble collided")
	}
	data[0]++
	pre4 := h2.Preamble()
	pre4 = append(pre4, 1, 0x20, 0, 0xAB)
	if k4 := h2.Key(pre4, data); k4 == k1 {
		t.Fatalf("different data collided")
	}
}

func TestManyShardsDistribute(t *testing.T) {
	c := New(1<<20, telemetry.NewRegistry())
	h := NewHasher()
	seen := map[int]bool{}
	for i := 0; i < 256; i++ {
		k := h.Key(h.Preamble(), []byte(fmt.Sprintf("chunk-%d", i)))
		seen[int(k[0])&(nShards-1)] = true
		hd, err := c.Get(k)
		if err != nil || hd.Outcome() != Miss {
			t.Fatalf("Get %d: (%v, %v)", i, hd.Outcome(), err)
		}
		hd.Complete([]byte("v"), Meta{})
	}
	if len(seen) != nShards {
		t.Errorf("256 hashed keys touched %d/%d shards", len(seen), nShards)
	}
	if c.Len() != 256 {
		t.Errorf("Len = %d, want 256", c.Len())
	}
}
