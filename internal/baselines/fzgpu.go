package baselines

import (
	"encoding/binary"
	"fmt"
	"math"

	"ceresz/internal/lorenzo"
)

// FZGPU models FZ-GPU (Zhang et al., HPDC'23), which the paper discusses
// alongside cuSZp (§3, §6.1): the same pre-quantization + block-wise 1D
// Lorenzo front end, then a bitshuffle across a whole chunk of codes
// followed by lightweight zero-suppression — after shuffling, smooth data
// concentrates its zero bits into long zero runs, which a bitmap of
// nonzero words captures cheaply. It is not part of the paper's Fig. 11 /
// Table 5 comparison set (Suite), but completes the pre-quantization
// family for the extended experiments.
type FZGPU struct{}

var fzgpuMagic = [4]byte{'F', 'Z', 'G', 'P'}

// fzChunk is the number of int32 codes bitshuffled together (32 blocks of
// 32 codes — FZ-GPU shuffles at thread-block granularity).
const fzChunk = 1024

// fzWord is the zero-suppression granularity in bytes.
const fzWord = 32

// Name implements Compressor.
func (FZGPU) Name() string { return "FZ-GPU" }

// Compress implements Compressor.
func (FZGPU) Compress(data []float32, d lorenzo.Dims, eps float64) (*Compressed, error) {
	if err := d.Validate(len(data)); err != nil {
		return nil, err
	}
	codes, _, err := prequantize(data, eps)
	if err != nil {
		return nil, err
	}
	// Block-wise 1D Lorenzo, exactly as the SZp family.
	for lo := 0; lo < len(codes); lo += 32 {
		hi := min(lo+32, len(codes))
		lorenzo.Forward(codes[lo:hi], codes[lo:hi])
	}

	out := make([]byte, 0, len(data))
	out = append(out, fzgpuMagic[:]...)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(data)))
	out = binary.LittleEndian.AppendUint32(out, uint32(d.Nx))
	out = binary.LittleEndian.AppendUint32(out, uint32(d.Ny))
	out = binary.LittleEndian.AppendUint32(out, uint32(d.Nz))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(eps))

	shuffled := make([]byte, fzChunk/8*32) // 32 planes × 128 bytes
	var zeroWords, totalWords int
	for lo := 0; lo < len(codes); lo += fzChunk {
		hi := min(lo+fzChunk, len(codes))
		chunk := codes[lo:hi]
		n := hi - lo
		planeBytes := (n + 7) / 8
		buf := shuffled[:32*planeBytes]
		for i := range buf {
			buf[i] = 0
		}
		for i, c := range chunk {
			// Zigzag so small-magnitude residuals populate only low bit
			// planes (two's complement would light every high plane for
			// negatives, defeating zero suppression).
			u := uint32(c<<1) ^ uint32(c>>31)
			for b := 0; b < 32; b++ {
				if u>>uint(b)&1 != 0 {
					buf[b*planeBytes+i/8] |= 1 << (i % 8)
				}
			}
		}
		// Zero-suppression: bitmap of nonzero fzWord-byte words.
		words := (len(buf) + fzWord - 1) / fzWord
		bitmap := make([]byte, (words+7)/8)
		var nonzero []byte
		for w := 0; w < words; w++ {
			wlo := w * fzWord
			whi := min(wlo+fzWord, len(buf))
			allZero := true
			for _, b := range buf[wlo:whi] {
				if b != 0 {
					allZero = false
					break
				}
			}
			totalWords++
			if allZero {
				zeroWords++
				continue
			}
			bitmap[w/8] |= 1 << (w % 8)
			// Pad the tail word to fzWord for a fixed decode shape.
			word := make([]byte, fzWord)
			copy(word, buf[wlo:whi])
			nonzero = append(nonzero, word...)
		}
		out = binary.LittleEndian.AppendUint32(out, uint32(n))
		out = append(out, bitmap...)
		out = append(out, nonzero...)
	}

	zf := 0.0
	if totalWords > 0 {
		zf = float64(zeroWords) / float64(totalWords)
	}
	return &Compressed{
		Compressor:    "FZ-GPU",
		Bytes:         out,
		Elements:      len(data),
		Dims:          d,
		Eps:           eps,
		ZeroBlockFrac: zf,
	}, nil
}

// Decompress implements Compressor.
func (FZGPU) Decompress(c *Compressed) ([]float32, error) {
	src := c.Bytes
	if len(src) < 32 || [4]byte(src[0:4]) != fzgpuMagic {
		return nil, fmt.Errorf("baselines: not an FZ-GPU stream")
	}
	n := int(binary.LittleEndian.Uint64(src[4:]))
	eps := math.Float64frombits(binary.LittleEndian.Uint64(src[24:]))
	if !(eps > 0) {
		return nil, fmt.Errorf("baselines: non-positive ε in FZ-GPU stream")
	}
	pos := 32
	codes := make([]int32, n)
	for lo := 0; lo < n; lo += fzChunk {
		if len(src)-pos < 4 {
			return nil, fmt.Errorf("baselines: truncated FZ-GPU chunk header")
		}
		cn := int(binary.LittleEndian.Uint32(src[pos:]))
		pos += 4
		if cn != min(fzChunk, n-lo) {
			return nil, fmt.Errorf("baselines: FZ-GPU chunk length %d, want %d", cn, min(fzChunk, n-lo))
		}
		planeBytes := (cn + 7) / 8
		bufLen := 32 * planeBytes
		words := (bufLen + fzWord - 1) / fzWord
		bmLen := (words + 7) / 8
		if len(src)-pos < bmLen {
			return nil, fmt.Errorf("baselines: truncated FZ-GPU bitmap")
		}
		bitmap := src[pos : pos+bmLen]
		pos += bmLen
		buf := make([]byte, bufLen)
		for w := 0; w < words; w++ {
			if bitmap[w/8]&(1<<(w%8)) == 0 {
				continue
			}
			if len(src)-pos < fzWord {
				return nil, fmt.Errorf("baselines: truncated FZ-GPU word")
			}
			wlo := w * fzWord
			whi := min(wlo+fzWord, bufLen)
			copy(buf[wlo:whi], src[pos:pos+(whi-wlo)])
			pos += fzWord
		}
		for i := 0; i < cn; i++ {
			var u uint32
			for b := 0; b < 32; b++ {
				if buf[b*planeBytes+i/8]&(1<<(i%8)) != 0 {
					u |= 1 << uint(b)
				}
			}
			codes[lo+i] = int32(u>>1) ^ -int32(u&1) // un-zigzag
		}
	}
	for lo := 0; lo < n; lo += 32 {
		hi := min(lo+32, n)
		lorenzo.Inverse(codes[lo:hi], codes[lo:hi])
	}
	out := make([]float32, n)
	for i, p := range codes {
		out[i] = float32(float64(p) * 2 * eps)
	}
	return out, nil
}

// ExtendedSuite is Suite plus the FZ-GPU- and cuSZx-like compressors —
// the full pre-quantization family discussed in the paper's §3 and §6.1.
func ExtendedSuite() []Compressor {
	return append(Suite(), FZGPU{}, CuSZx{})
}
