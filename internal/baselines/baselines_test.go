package baselines

import (
	"math"
	"math/rand"
	"testing"

	"ceresz/internal/core"
	"ceresz/internal/datasets"
	"ceresz/internal/devmodel"
	"ceresz/internal/flenc"
	"ceresz/internal/lorenzo"
	"ceresz/internal/quant"
)

func field2D(t *testing.T) ([]float32, lorenzo.Dims) {
	t.Helper()
	d, err := datasets.ByName("CESM-ATM", datasets.Small)
	if err != nil {
		t.Fatal(err)
	}
	f := &d.Fields[2]
	return f.Data(11), f.Dims
}

func field3D(t *testing.T) ([]float32, lorenzo.Dims) {
	t.Helper()
	d, err := datasets.ByName("NYX", datasets.Small)
	if err != nil {
		t.Fatal(err)
	}
	f := &d.Fields[3] // velocity_x
	return f.Data(11), f.Dims
}

func epsFor(data []float32, rel float64) float64 {
	minV, maxV := quant.Range(data)
	eps, _ := quant.REL(rel).Resolve(minV, maxV)
	return eps
}

func TestAllBaselinesRoundTripWithinBound(t *testing.T) {
	data, dims := field3D(t)
	eps := epsFor(data, 1e-3)
	for _, c := range Suite() {
		comp, err := c.Compress(data, dims, eps)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if comp.Elements != len(data) || comp.Eps != eps {
			t.Fatalf("%s: bad metadata %+v", c.Name(), comp)
		}
		rec, err := c.Decompress(comp)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if len(rec) != len(data) {
			t.Fatalf("%s: %d elements, want %d", c.Name(), len(rec), len(data))
		}
		for i := range data {
			if e := math.Abs(float64(rec[i]) - float64(data[i])); e > eps*(1+1e-9) {
				t.Fatalf("%s: error %g > ε at %d", c.Name(), e, i)
			}
		}
		if comp.Ratio() <= 1 {
			t.Fatalf("%s: ratio %.2f did not compress smooth data", c.Name(), comp.Ratio())
		}
	}
}

func TestSZpEqualsCoreU8(t *testing.T) {
	data, dims := field2D(t)
	eps := epsFor(data, 1e-3)
	comp, err := SZp{}.Compress(data, dims, eps)
	if err != nil {
		t.Fatal(err)
	}
	ref, _, err := core.CompressWithEps(nil, data, eps, core.Options{HeaderBytes: flenc.HeaderU8})
	if err != nil {
		t.Fatal(err)
	}
	if len(comp.Bytes) != len(ref) {
		t.Fatalf("SZp stream %d bytes, core u8 stream %d", len(comp.Bytes), len(ref))
	}
	for i := range ref {
		if comp.Bytes[i] != ref[i] {
			t.Fatalf("SZp stream differs from core at byte %d", i)
		}
	}
}

func TestCuSZpIdenticalReconstructionToSZp(t *testing.T) {
	// Fig. 15's point: same pre-quantization ⇒ same reconstruction.
	data, dims := field3D(t)
	eps := epsFor(data, 1e-4)
	a, err := SZp{}.Compress(data, dims, eps)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CuSZp{}.Compress(data, dims, eps)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := SZp{}.Decompress(a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := CuSZp{}.Decompress(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("reconstructions differ at %d", i)
		}
	}
	if a.Ratio() != b.Ratio() {
		t.Fatalf("SZp and cuSZp ratios differ: %g vs %g", a.Ratio(), b.Ratio())
	}
}

func TestSZ3BeatsFixedLengthOnSmoothData(t *testing.T) {
	// Table 5's headline: SZ has by far the highest ratio.
	data, dims := field2D(t)
	eps := epsFor(data, 1e-2)
	szp, err := SZp{}.Compress(data, dims, eps)
	if err != nil {
		t.Fatal(err)
	}
	sz3, err := SZ3{}.Compress(data, dims, eps)
	if err != nil {
		t.Fatal(err)
	}
	if sz3.Ratio() <= szp.Ratio() {
		t.Fatalf("SZ3 ratio %.2f not above SZp's %.2f", sz3.Ratio(), szp.Ratio())
	}
}

func TestCuSZHandles1D2D3D(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	mk := func(n int) []float32 {
		out := make([]float32, n)
		v := 0.0
		for i := range out {
			v += rng.NormFloat64() * 0.01
			out[i] = float32(math.Sin(float64(i)*0.05) + v)
		}
		return out
	}
	cases := []lorenzo.Dims{
		lorenzo.Dims1(4096),
		lorenzo.Dims2(64, 64),
		lorenzo.Dims3(16, 16, 16),
	}
	for _, d := range cases {
		data := mk(d.Len())
		eps := epsFor(data, 1e-3)
		comp, err := CuSZ{}.Compress(data, d, eps)
		if err != nil {
			t.Fatalf("dims %+v: %v", d, err)
		}
		rec, err := CuSZ{}.Decompress(comp)
		if err != nil {
			t.Fatalf("dims %+v: %v", d, err)
		}
		for i := range data {
			if e := math.Abs(float64(rec[i]) - float64(data[i])); e > boundWithUlp(eps, data[i]) {
				t.Fatalf("dims %+v: error %g at %d", d, e, i)
			}
		}
	}
}

func TestOutlierPath(t *testing.T) {
	// Data with occasional huge jumps forces residuals outside the
	// [-512,512) bins — the escape/outlier channel must round-trip them.
	data := make([]float32, 2048)
	rng := rand.New(rand.NewSource(9))
	v := 0.0
	for i := range data {
		v += rng.NormFloat64() * 0.001
		if i%97 == 0 {
			v += 50 // large jump ⇒ residual ≫ bin range
		}
		data[i] = float32(v)
	}
	eps := 1e-3
	comp, err := CuSZ{}.Compress(data, lorenzo.Dims1(len(data)), eps)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := CuSZ{}.Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if e := math.Abs(float64(rec[i]) - float64(data[i])); e > boundWithUlp(eps, data[i]) {
			t.Fatalf("outlier path error %g at %d", e, i)
		}
	}
}

// boundWithUlp is ε plus half a float32 ulp of v: the baselines (like the
// real cuSZ/SZ3 codes) reconstruct into float32 without core's strict
// verbatim fallback, so the final rounding can add up to ulp(v)/2.
func boundWithUlp(eps float64, v float32) float64 {
	return eps*(1+1e-9) + math.Abs(float64(v))*6e-8
}

func TestUnquantizableRejected(t *testing.T) {
	data := []float32{float32(math.NaN()), 1, 2, 3}
	for _, c := range []Compressor{CuSZ{}, SZ3{}} {
		if _, err := c.Compress(data, lorenzo.Dims1(4), 1e-3); err == nil {
			t.Fatalf("%s accepted NaN input", c.Name())
		}
	}
}

func TestDecompressWrongStream(t *testing.T) {
	data, dims := field2D(t)
	eps := epsFor(data, 1e-2)
	sz3c, err := SZ3{}.Compress(data, dims, eps)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (CuSZ{}).Decompress(sz3c); err == nil {
		t.Fatal("cuSZ decoded an SZ3 stream")
	}
	cuszc, err := CuSZ{}.Compress(data, dims, eps)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (SZ3{}).Decompress(cuszc); err == nil {
		t.Fatal("SZ3 decoded a cuSZ stream")
	}
}

func TestKernelsRegistry(t *testing.T) {
	for _, c := range Suite() {
		comp, dec, err := Kernels(c.Name())
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		tc, err := comp.ThroughputGBps(10, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		td, err := dec.ThroughputGBps(10, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		if tc <= 0 || td <= 0 {
			t.Fatalf("%s: non-positive modeled throughput", c.Name())
		}
	}
	if _, _, err := Kernels("nope"); err == nil {
		t.Fatal("accepted unknown baseline")
	}
}

func TestModeledThroughputOrdering(t *testing.T) {
	// The paper's Fig. 11 ordering at matched ratios:
	// cuSZp > cuSZ > SZp > SZ.
	ratio, zf := 8.0, 0.1
	get := func(k devmodel.Kernel) float64 {
		v, err := k.ThroughputGBps(ratio, zf)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	cuszp := get(devmodel.CuSZpCompress)
	cusz := get(devmodel.CuSZCompress)
	szp := get(devmodel.SZpCompress)
	sz := get(devmodel.SZ3Compress)
	if !(cuszp > cusz && cusz > szp && szp > sz) {
		t.Fatalf("ordering broken: cuSZp=%.1f cuSZ=%.1f SZp=%.1f SZ=%.1f", cuszp, cusz, szp, sz)
	}
	// Calibration anchor: cuSZp lands in the ~80–120 GB/s band so that
	// CereSZ's ~457 GB/s average is ~4–5× faster (§5.2).
	if cuszp < 80 || cuszp > 130 {
		t.Fatalf("cuSZp modeled at %.1f GB/s, outside the calibration band", cuszp)
	}
	// SZ3 must sit below 1 GB/s (paper §5.3: "routinely less than 1 GB/s").
	if sz >= 1 {
		t.Fatalf("SZ modeled at %.2f GB/s, want <1", sz)
	}
}

func TestZeroFracSpeedsUpFixedLengthFamily(t *testing.T) {
	lo, err := devmodel.CuSZpCompress.ThroughputGBps(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := devmodel.CuSZpCompress.ThroughputGBps(10, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if hi <= lo {
		t.Fatalf("zero blocks did not speed up the model: %g vs %g", lo, hi)
	}
	if _, err := devmodel.CuSZpCompress.ThroughputGBps(10, 1.5); err == nil {
		t.Fatal("accepted zeroFrac > 1")
	}
	if _, err := devmodel.CuSZpCompress.ThroughputGBps(0, 0); err == nil {
		t.Fatal("accepted zero ratio")
	}
}

func TestFZGPURoundTrip(t *testing.T) {
	data, dims := field3D(t)
	for _, rel := range []float64{1e-2, 1e-3, 1e-4} {
		eps := epsFor(data, rel)
		comp, err := FZGPU{}.Compress(data, dims, eps)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := FZGPU{}.Decompress(comp)
		if err != nil {
			t.Fatal(err)
		}
		for i := range data {
			if e := math.Abs(float64(rec[i]) - float64(data[i])); e > boundWithUlp(eps, data[i]) {
				t.Fatalf("rel %g: error %g at %d", rel, e, i)
			}
		}
		if comp.Ratio() <= 1 {
			t.Fatalf("rel %g: ratio %.2f", rel, comp.Ratio())
		}
		if comp.ZeroBlockFrac < 0 || comp.ZeroBlockFrac > 1 {
			t.Fatalf("zero word fraction %g", comp.ZeroBlockFrac)
		}
	}
}

func TestFZGPUNonMultipleChunk(t *testing.T) {
	// Lengths that are not multiples of the 1024-code shuffle chunk (and
	// not of 32 either) must round-trip exactly.
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 31, 1023, 1025, 4097} {
		data := make([]float32, n)
		v := 0.0
		for i := range data {
			v += rng.NormFloat64() * 0.01
			data[i] = float32(v)
		}
		eps := 1e-3
		comp, err := FZGPU{}.Compress(data, lorenzo.Dims1(n), eps)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		rec, err := FZGPU{}.Decompress(comp)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := range data {
			if e := math.Abs(float64(rec[i]) - float64(data[i])); e > boundWithUlp(eps, data[i]) {
				t.Fatalf("n=%d: error %g at %d", n, e, i)
			}
		}
	}
}

func TestFZGPUIdenticalReconstructionToFamily(t *testing.T) {
	// Same pre-quantization ⇒ same reconstruction as SZp/cuSZp (§5.4).
	data, dims := field2D(t)
	eps := epsFor(data, 1e-3)
	fz, err := FZGPU{}.Compress(data, dims, eps)
	if err != nil {
		t.Fatal(err)
	}
	szp, err := SZp{}.Compress(data, dims, eps)
	if err != nil {
		t.Fatal(err)
	}
	a, err := FZGPU{}.Decompress(fz)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SZp{}.Decompress(szp)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("family reconstructions differ at %d", i)
		}
	}
}

func TestExtendedSuite(t *testing.T) {
	ext := ExtendedSuite()
	if len(ext) != len(Suite())+2 {
		t.Fatalf("extended suite has %d compressors", len(ext))
	}
	names := map[string]bool{}
	for _, c := range ext {
		names[c.Name()] = true
		if _, _, err := Kernels(c.Name()); err != nil {
			t.Fatalf("%s has no device model: %v", c.Name(), err)
		}
	}
	if !names["FZ-GPU"] || !names["cuSZx"] {
		t.Fatalf("extended suite missing extras: %v", names)
	}
}

func TestFZGPUCorruptStream(t *testing.T) {
	data, dims := field2D(t)
	comp, err := FZGPU{}.Compress(data, dims, epsFor(data, 1e-3))
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{3, 31, 40, len(comp.Bytes) - 7} {
		bad := *comp
		bad.Bytes = comp.Bytes[:cut]
		if _, err := (FZGPU{}).Decompress(&bad); err == nil {
			t.Fatalf("accepted truncation at %d", cut)
		}
	}
}

func TestFZGPUKernelOrdering(t *testing.T) {
	// FZ-GPU sits between cuSZ and cuSZp in the modeled throughput order
	// (as in its own paper's A100 numbers).
	get := func(k devmodel.Kernel) float64 {
		v, err := k.ThroughputGBps(8, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if !(get(devmodel.CuSZpCompress) > get(devmodel.FZGPUCompress) &&
		get(devmodel.FZGPUCompress) > get(devmodel.CuSZCompress)) {
		t.Fatalf("ordering: cuSZp %.1f, FZ-GPU %.1f, cuSZ %.1f",
			get(devmodel.CuSZpCompress), get(devmodel.FZGPUCompress), get(devmodel.CuSZCompress))
	}
	if _, _, err := Kernels("FZ-GPU"); err != nil {
		t.Fatal(err)
	}
}

func TestCuSZxRoundTrip(t *testing.T) {
	data, dims := field3D(t)
	for _, rel := range []float64{1e-2, 1e-4} {
		eps := epsFor(data, rel)
		comp, err := CuSZx{}.Compress(data, dims, eps)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := CuSZx{}.Decompress(comp)
		if err != nil {
			t.Fatal(err)
		}
		for i := range data {
			if e := math.Abs(float64(rec[i]) - float64(data[i])); e > eps {
				t.Fatalf("rel %g: error %g at %d (strict bound expected)", rel, e, i)
			}
		}
		if comp.Ratio() <= 1 {
			t.Fatalf("rel %g: ratio %.2f", rel, comp.Ratio())
		}
	}
}

func TestCuSZxConstantBlocks(t *testing.T) {
	// A constant-offset field collapses to one float per 128 elements.
	data := make([]float32, 128*20)
	for i := range data {
		data[i] = 42.5
	}
	comp, err := CuSZx{}.Compress(data, lorenzo.Dims1(len(data)), 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if comp.ZeroBlockFrac != 1 {
		t.Fatalf("constant fraction %g, want 1", comp.ZeroBlockFrac)
	}
	// 32 header + 20 × (1 flag + 4 bytes).
	if len(comp.Bytes) != 32+20*5 {
		t.Fatalf("constant stream %d bytes", len(comp.Bytes))
	}
	rec, err := CuSZx{}.Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range rec {
		if v != 42.5 {
			t.Fatalf("rec[%d] = %g", i, v)
		}
	}
}

func TestCuSZxBeatsSZpOnOffsetData(t *testing.T) {
	// Large offset + small variation: SZp pays bits for the absolute first
	// element of every block; cuSZx centers it away — the "constant block
	// design" advantage the paper's §6.1 credits.
	rng := rand.New(rand.NewSource(11))
	data := make([]float32, 128*64)
	for i := range data {
		data[i] = 1e4 + float32(rng.NormFloat64())*0.01
	}
	eps := 5e-3
	x, err := CuSZx{}.Compress(data, lorenzo.Dims1(len(data)), eps)
	if err != nil {
		t.Fatal(err)
	}
	p, err := SZp{}.Compress(data, lorenzo.Dims1(len(data)), eps)
	if err != nil {
		t.Fatal(err)
	}
	if x.Ratio() <= p.Ratio() {
		t.Fatalf("cuSZx ratio %.2f not above SZp %.2f on offset data", x.Ratio(), p.Ratio())
	}
}

func TestCuSZxNonFiniteVerbatim(t *testing.T) {
	data := make([]float32, 200)
	for i := range data {
		data[i] = float32(i)
	}
	data[7] = float32(math.NaN())
	data[150] = float32(math.Inf(-1))
	comp, err := CuSZx{}.Compress(data, lorenzo.Dims1(len(data)), 1e-2)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := CuSZx{}.Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(float64(rec[7])) || !math.IsInf(float64(rec[150]), -1) {
		t.Fatal("non-finite values not preserved")
	}
	for i := range data {
		if i == 7 || i == 150 {
			continue
		}
		if e := math.Abs(float64(rec[i]) - float64(data[i])); e > 1e-2 {
			t.Fatalf("error %g at %d", e, i)
		}
	}
}

func TestCuSZxCorrupt(t *testing.T) {
	data, dims := field2D(t)
	comp, err := CuSZx{}.Compress(data, dims, epsFor(data, 1e-3))
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{3, 31, 33, len(comp.Bytes) - 2} {
		bad := *comp
		bad.Bytes = comp.Bytes[:cut]
		if _, err := (CuSZx{}).Decompress(&bad); err == nil {
			t.Fatalf("accepted truncation at %d", cut)
		}
	}
}
