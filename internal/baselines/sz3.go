package baselines

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"ceresz/internal/lorenzo"
)

// SZ3 models the SZ (SZ3) baseline: it tries every Lorenzo order the grid
// supports, Huffman-codes the residual bins, then runs a general-purpose
// lossless pass (flate; the original uses zstd) over the result and keeps
// the smallest stream. This is the paper's "fine-tunes prediction methods
// … Huffman encoding along with best-fit lossless compression" (§5.3) —
// the ratio leader with throughput far below 1 GB/s.
type SZ3 struct {
	// Level is the flate level (0 selects flate.BestCompression).
	Level int
}

var sz3Magic = [4]byte{'S', 'Z', '3', 'L'}

// Name implements Compressor. The paper labels this baseline "SZ".
func (SZ3) Name() string { return "SZ" }

// Compress implements Compressor.
func (s SZ3) Compress(data []float32, d lorenzo.Dims, eps float64) (*Compressed, error) {
	if err := d.Validate(len(data)); err != nil {
		return nil, err
	}
	codes, _, err := prequantize(data, eps)
	if err != nil {
		return nil, err
	}
	level := s.Level
	if level == 0 {
		level = flate.BestCompression
	}

	var bestBody []byte
	bestOrder := 0
	residuals := make([]int32, len(codes))
	for order := 1; order <= d.Order(); order++ {
		if err := lorenzoOrder(residuals, codes, d, order); err != nil {
			return nil, err
		}
		inner, err := encodeResiduals(residuals)
		if err != nil {
			return nil, err
		}
		deflated, err := deflateAll(inner, level)
		if err != nil {
			return nil, err
		}
		if bestBody == nil || len(deflated) < len(bestBody) {
			bestBody = deflated
			bestOrder = order
		}
	}

	out := make([]byte, 0, 40+len(bestBody))
	out = append(out, sz3Magic[:]...)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(data)))
	out = binary.LittleEndian.AppendUint32(out, uint32(d.Nx))
	out = binary.LittleEndian.AppendUint32(out, uint32(d.Ny))
	out = binary.LittleEndian.AppendUint32(out, uint32(d.Nz))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(eps))
	out = append(out, byte(bestOrder))
	out = binary.LittleEndian.AppendUint64(out, uint64(len(bestBody)))
	out = append(out, bestBody...)
	return &Compressed{
		Compressor: "SZ",
		Bytes:      out,
		Elements:   len(data),
		Dims:       d,
		Eps:        eps,
	}, nil
}

// Decompress implements Compressor.
func (SZ3) Decompress(c *Compressed) ([]float32, error) {
	src := c.Bytes
	if len(src) < 41 || [4]byte(src[0:4]) != sz3Magic {
		return nil, fmt.Errorf("baselines: not an SZ3 stream")
	}
	n := int(binary.LittleEndian.Uint64(src[4:]))
	d := lorenzo.Dims{
		Nx: int(binary.LittleEndian.Uint32(src[12:])),
		Ny: int(binary.LittleEndian.Uint32(src[16:])),
		Nz: int(binary.LittleEndian.Uint32(src[20:])),
	}
	eps := math.Float64frombits(binary.LittleEndian.Uint64(src[24:]))
	order := int(src[32])
	bodyLen := int(binary.LittleEndian.Uint64(src[33:]))
	if err := d.Validate(n); err != nil {
		return nil, err
	}
	if !(eps > 0) || order < 1 || order > 3 || order > d.Order() {
		return nil, fmt.Errorf("baselines: corrupt SZ3 header (ε=%g order=%d)", eps, order)
	}
	if len(src) < 41+bodyLen {
		return nil, fmt.Errorf("baselines: truncated SZ3 stream")
	}
	inner, err := inflateAll(src[41 : 41+bodyLen])
	if err != nil {
		return nil, err
	}
	residuals, _, err := decodeResiduals(inner, n)
	if err != nil {
		return nil, err
	}
	codes := make([]int32, n)
	if err := inverseLorenzoOrder(codes, residuals, d, order); err != nil {
		return nil, err
	}
	out := make([]float32, n)
	for i, p := range codes {
		out[i] = float32(float64(p) * 2 * eps)
	}
	return out, nil
}

func lorenzoOrder(dst, src []int32, d lorenzo.Dims, order int) error {
	switch order {
	case 1:
		lorenzo.Forward(dst, src)
		return nil
	case 2:
		if d.Order() == 3 {
			// Apply 2D prediction slab by slab.
			slab := d.Nx * d.Ny
			d2 := lorenzo.Dims2(d.Nx, d.Ny)
			for z := 0; z < d.Nz; z++ {
				if err := lorenzo.Forward2D(dst[z*slab:(z+1)*slab], src[z*slab:(z+1)*slab], d2); err != nil {
					return err
				}
			}
			return nil
		}
		return lorenzo.Forward2D(dst, src, d)
	case 3:
		return lorenzo.Forward3D(dst, src, d)
	default:
		return fmt.Errorf("baselines: unsupported Lorenzo order %d", order)
	}
}

func inverseLorenzoOrder(dst, src []int32, d lorenzo.Dims, order int) error {
	switch order {
	case 1:
		lorenzo.Inverse(dst, src)
		return nil
	case 2:
		if d.Order() == 3 {
			slab := d.Nx * d.Ny
			d2 := lorenzo.Dims2(d.Nx, d.Ny)
			for z := 0; z < d.Nz; z++ {
				if err := lorenzo.Inverse2D(dst[z*slab:(z+1)*slab], src[z*slab:(z+1)*slab], d2); err != nil {
					return err
				}
			}
			return nil
		}
		return lorenzo.Inverse2D(dst, src, d)
	case 3:
		return lorenzo.Inverse3D(dst, src, d)
	default:
		return fmt.Errorf("baselines: unsupported Lorenzo order %d", order)
	}
}

func deflateAll(src []byte, level int) ([]byte, error) {
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, level)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(src); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func inflateAll(src []byte) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(src))
	defer r.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("baselines: inflate: %w", err)
	}
	return out, nil
}
