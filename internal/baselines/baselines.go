// Package baselines implements the four compressors the paper compares
// against (§5.1.3):
//
//	SZp    — block-wise pre-quant + 1D Lorenzo + fixed-length encoding with
//	         1-byte block headers, OpenMP-parallel on CPU. Algorithmically
//	         it is internal/core with flenc.HeaderU8 (the paper makes the
//	         same identification).
//	cuSZp  — the same algorithm fused into a single GPU kernel; identical
//	         streams and reconstructions, different device model.
//	cuSZ   — pre-quant + N-D Lorenzo prediction + canonical Huffman over
//	         1024 quantization bins with an outlier side channel.
//	SZ3    — best-of-N-D Lorenzo prediction + Huffman + a general lossless
//	         back end (flate here, zstd in the original), optimizing ratio
//	         at the expense of throughput.
//
// Ratio and reconstruction quality come from actually running these
// implementations; Figs. 11–12 throughput bars for the baselines come from
// internal/devmodel (see that package's rationale).
package baselines

import (
	"fmt"

	"ceresz/internal/core"
	"ceresz/internal/devmodel"
	"ceresz/internal/flenc"
	"ceresz/internal/lorenzo"
	"ceresz/internal/quant"
)

// Compressed is the output of one baseline compression run.
type Compressed struct {
	// Compressor is the producing baseline's name.
	Compressor string
	// Bytes is the serialized stream.
	Bytes []byte
	// Elements is the original element count.
	Elements int
	// Dims is the original grid.
	Dims lorenzo.Dims
	// Eps is the absolute error bound used.
	Eps float64
	// ZeroBlockFrac is the fraction of all-zero blocks (fixed-length
	// family only; 0 otherwise). Feeds the device model's fast-path term.
	ZeroBlockFrac float64
}

// Ratio returns original bytes / compressed bytes.
func (c *Compressed) Ratio() float64 {
	if len(c.Bytes) == 0 {
		return 0
	}
	return float64(4*c.Elements) / float64(len(c.Bytes))
}

// Compressor is an error-bounded lossy compressor baseline.
type Compressor interface {
	// Name returns the paper's name for the baseline.
	Name() string
	// Compress encodes data (with grid dims) under absolute bound eps.
	Compress(data []float32, d lorenzo.Dims, eps float64) (*Compressed, error)
	// Decompress reconstructs the data from a stream this baseline made.
	Decompress(c *Compressed) ([]float32, error)
}

// SZp is the CPU fixed-length baseline (1-byte block headers).
type SZp struct {
	// Workers bounds host parallelism (0 = GOMAXPROCS).
	Workers int
}

// Name implements Compressor.
func (SZp) Name() string { return "SZp" }

// Compress implements Compressor.
func (s SZp) Compress(data []float32, d lorenzo.Dims, eps float64) (*Compressed, error) {
	if err := d.Validate(len(data)); err != nil {
		return nil, err
	}
	out, stats, err := core.CompressWithEps(nil, data, eps, core.Options{
		HeaderBytes: flenc.HeaderU8,
		Workers:     s.Workers,
	})
	if err != nil {
		return nil, err
	}
	zf := 0.0
	if stats.Blocks > 0 {
		zf = float64(stats.ZeroBlocks) / float64(stats.Blocks)
	}
	return &Compressed{
		Compressor:    s.Name(),
		Bytes:         out,
		Elements:      len(data),
		Dims:          d,
		Eps:           eps,
		ZeroBlockFrac: zf,
	}, nil
}

// Decompress implements Compressor.
func (s SZp) Decompress(c *Compressed) ([]float32, error) {
	out, _, err := core.Decompress(nil, c.Bytes, s.Workers)
	return out, err
}

// CuSZp is the GPU variant of SZp: same algorithm and stream, different
// device. (The paper: "SZp has a similar compression algorithm and is
// paralleled by OpenMP on CPU".)
type CuSZp struct {
	szp SZp
}

// Name implements Compressor.
func (CuSZp) Name() string { return "cuSZp" }

// Compress implements Compressor.
func (c CuSZp) Compress(data []float32, d lorenzo.Dims, eps float64) (*Compressed, error) {
	out, err := c.szp.Compress(data, d, eps)
	if err != nil {
		return nil, err
	}
	out.Compressor = c.Name()
	return out, nil
}

// Decompress implements Compressor.
func (c CuSZp) Decompress(comp *Compressed) ([]float32, error) {
	return c.szp.Decompress(comp)
}

// Kernels returns the device-model kernels for a baseline name, used by
// the figure harness to turn measured ratios into modeled throughput.
func Kernels(name string) (compress, decompress devmodel.Kernel, err error) {
	switch name {
	case "SZp":
		return devmodel.SZpCompress, devmodel.SZpDecompress, nil
	case "cuSZp":
		return devmodel.CuSZpCompress, devmodel.CuSZpDecompress, nil
	case "cuSZ":
		return devmodel.CuSZCompress, devmodel.CuSZDecompress, nil
	case "FZ-GPU":
		return devmodel.FZGPUCompress, devmodel.FZGPUDecompress, nil
	case "cuSZx":
		return devmodel.CuSZxCompress, devmodel.CuSZxDecompress, nil
	case "SZ":
		return devmodel.SZ3Compress, devmodel.SZ3Decompress, nil
	default:
		return devmodel.Kernel{}, devmodel.Kernel{}, fmt.Errorf("baselines: no device model for %q", name)
	}
}

// Suite returns the paper's baseline set in presentation order.
func Suite() []Compressor {
	return []Compressor{SZp{}, CuSZp{}, CuSZ{}, SZ3{}}
}

// prequantize runs the shared pre-quantization step, failing when the data
// cannot be represented in int32 codes at this bound.
func prequantize(data []float32, eps float64) ([]int32, *quant.Quantizer, error) {
	q, err := quant.NewQuantizer(eps)
	if err != nil {
		return nil, nil, err
	}
	codes := make([]int32, len(data))
	if !q.Quantize(codes, data) {
		return nil, nil, fmt.Errorf("baselines: data not quantizable at ε=%g (overflow or NaN)", eps)
	}
	return codes, q, nil
}
