package baselines

import (
	"encoding/binary"
	"fmt"
	"sort"

	"ceresz/internal/huffman"
)

// The Huffman baselines map prediction residuals onto cuSZ-style
// quantization-bin symbols: residuals in [-binRange, binRange) use
// symbol r+binRange; everything else escapes to symbol escapeSym with the
// raw code appended to an outlier list (in stream order).
const (
	binRange  = 512
	escapeSym = 2 * binRange
)

// encodeResiduals serializes residual codes as:
//
//	u32 outlierCount, outliers (i32 each, in stream order),
//	u32 codebook size K, K × (u32 symbol, u8 length),
//	u64 payload bit count, payload bytes.
func encodeResiduals(residuals []int32) ([]byte, error) {
	symbols := make([]uint32, len(residuals))
	var outliers []int32
	for i, r := range residuals {
		if r >= -binRange && r < binRange {
			symbols[i] = uint32(r + binRange)
		} else {
			symbols[i] = escapeSym
			outliers = append(outliers, r)
		}
	}
	cb, payload, err := huffman.EncodeAll(symbols)
	if err != nil {
		return nil, err
	}
	lengths := cb.Lengths()
	syms := make([]uint32, 0, len(lengths))
	for s := range lengths {
		syms = append(syms, s)
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i] < syms[j] })

	var out []byte
	out = binary.LittleEndian.AppendUint32(out, uint32(len(outliers)))
	for _, o := range outliers {
		out = binary.LittleEndian.AppendUint32(out, uint32(o))
	}
	out = binary.LittleEndian.AppendUint32(out, uint32(len(syms)))
	for _, s := range syms {
		out = binary.LittleEndian.AppendUint32(out, s)
		out = append(out, lengths[s])
	}
	out = binary.LittleEndian.AppendUint64(out, uint64(len(payload)))
	out = append(out, payload...)
	return out, nil
}

// decodeResiduals inverts encodeResiduals, producing n residual codes and
// returning the number of bytes consumed.
func decodeResiduals(src []byte, n int) ([]int32, int, error) {
	pos := 0
	need := func(k int) error {
		if len(src)-pos < k {
			return fmt.Errorf("baselines: truncated residual stream at offset %d", pos)
		}
		return nil
	}
	if err := need(4); err != nil {
		return nil, 0, err
	}
	nOut := int(binary.LittleEndian.Uint32(src[pos:]))
	pos += 4
	if err := need(4 * nOut); err != nil {
		return nil, 0, err
	}
	outliers := make([]int32, nOut)
	for i := range outliers {
		outliers[i] = int32(binary.LittleEndian.Uint32(src[pos:]))
		pos += 4
	}
	if err := need(4); err != nil {
		return nil, 0, err
	}
	k := int(binary.LittleEndian.Uint32(src[pos:]))
	pos += 4
	if err := need(5 * k); err != nil {
		return nil, 0, err
	}
	lengths := make(map[uint32]uint8, k)
	for i := 0; i < k; i++ {
		sym := binary.LittleEndian.Uint32(src[pos:])
		ln := src[pos+4]
		pos += 5
		if _, dup := lengths[sym]; dup {
			return nil, 0, fmt.Errorf("baselines: duplicate symbol %d in codebook", sym)
		}
		lengths[sym] = ln
	}
	cb, err := huffman.FromLengths(lengths)
	if err != nil {
		return nil, 0, err
	}
	if err := need(8); err != nil {
		return nil, 0, err
	}
	payloadLen := int(binary.LittleEndian.Uint64(src[pos:]))
	pos += 8
	if err := need(payloadLen); err != nil {
		return nil, 0, err
	}
	symbols, err := huffman.DecodeAll(cb, src[pos:pos+payloadLen], n)
	if err != nil {
		return nil, 0, err
	}
	pos += payloadLen

	residuals := make([]int32, n)
	oi := 0
	for i, s := range symbols {
		switch {
		case s == escapeSym:
			if oi >= len(outliers) {
				return nil, 0, fmt.Errorf("baselines: escape %d has no outlier", i)
			}
			residuals[i] = outliers[oi]
			oi++
		case s < escapeSym:
			residuals[i] = int32(s) - binRange
		default:
			return nil, 0, fmt.Errorf("baselines: symbol %d out of alphabet", s)
		}
	}
	if oi != len(outliers) {
		return nil, 0, fmt.Errorf("baselines: %d unused outliers", len(outliers)-oi)
	}
	return residuals, pos, nil
}
