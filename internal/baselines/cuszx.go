package baselines

import (
	"encoding/binary"
	"fmt"
	"math"

	"ceresz/internal/flenc"
	"ceresz/internal/lorenzo"
	"ceresz/internal/quant"
)

// CuSZx models cuSZx (Yu et al., HPDC'22), which the paper's related work
// credits with "high compression throughput by a constant block design and
// fast bit-level operations" (§6.1). Per 128-element block:
//
//   - constant block: when max−min ≤ 2ε the whole block collapses to its
//     midpoint (one flag + one float32) — the generalization of CereSZ's
//     zero block to any constant level;
//   - otherwise the block is quantized against its own midpoint and the
//     centered codes are fixed-length coded. Centering removes the
//     absolute-magnitude term that dominates SZp-family block widths, so
//     cuSZx wins on fields with large offsets and small variation (HACC
//     positions are the canonical case).
type CuSZx struct{}

var cuszxMagic = [4]byte{'C', 'S', 'Z', 'X'}

// cuszxBlock is the block length (cuSZx uses 128–256; we take 128).
const cuszxBlock = 128

// Block flags.
const (
	cuszxConstant byte = 0xFF
	cuszxVerbatim byte = 0xFE
)

// Name implements Compressor.
func (CuSZx) Name() string { return "cuSZx" }

// Compress implements Compressor.
func (CuSZx) Compress(data []float32, d lorenzo.Dims, eps float64) (*Compressed, error) {
	if err := d.Validate(len(data)); err != nil {
		return nil, err
	}
	if !(eps > 0) {
		return nil, quant.ErrNonPositiveBound
	}
	q, err := quant.NewQuantizer(eps)
	if err != nil {
		return nil, err
	}

	out := make([]byte, 0, len(data))
	out = append(out, cuszxMagic[:]...)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(data)))
	out = binary.LittleEndian.AppendUint32(out, uint32(d.Nx))
	out = binary.LittleEndian.AppendUint32(out, uint32(d.Ny))
	out = binary.LittleEndian.AppendUint32(out, uint32(d.Nz))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(eps))

	scratch := flenc.NewBlock(cuszxBlock)
	centered := make([]float64, cuszxBlock)
	codes := make([]int32, cuszxBlock)
	var constBlocks, blocks int
blocks:
	for lo := 0; lo < len(data); lo += cuszxBlock {
		hi := min(lo+cuszxBlock, len(data))
		blk := data[lo:hi]
		blocks++

		minV, maxV, finite := blockRange(blk)
		if !finite {
			out = append(out, cuszxVerbatim)
			out = appendRawF32(out, blk, cuszxBlock)
			continue
		}
		mid := float32((minV + maxV) / 2)
		if maxV-minV <= 2*eps && float64(maxV)-float64(mid) <= eps && float64(mid)-float64(minV) <= eps {
			constBlocks++
			out = append(out, cuszxConstant)
			out = binary.LittleEndian.AppendUint32(out, math.Float32bits(mid))
			continue
		}
		// Centered quantization: p = round((v − mid)/2ε).
		for i, v := range blk {
			centered[i] = (float64(v) - float64(mid)) * q.Recip()
		}
		for i := hi - lo; i < cuszxBlock; i++ {
			centered[i] = 0
		}
		if !quant.Round(codes, centered) {
			out = append(out, cuszxVerbatim)
			out = appendRawF32(out, blk, cuszxBlock)
			continue
		}
		// Strict float32 bound through the centered reconstruction.
		for i := range blk {
			rec := float32(float64(mid) + float64(codes[i])*q.TwoEps())
			if !(math.Abs(float64(rec)-float64(blk[i])) <= eps) {
				out = append(out, cuszxVerbatim)
				out = appendRawF32(out, blk, cuszxBlock)
				continue blocks
			}
		}
		out = append(out, 0) // flag: encoded block (mid + flenc block follow)
		out = binary.LittleEndian.AppendUint32(out, math.Float32bits(mid))
		out, _ = flenc.EncodeBlock(out, codes, flenc.HeaderU8, scratch)
	}

	return &Compressed{
		Compressor:    "cuSZx",
		Bytes:         out,
		Elements:      len(data),
		Dims:          d,
		Eps:           eps,
		ZeroBlockFrac: float64(constBlocks) / float64(max(blocks, 1)),
	}, nil
}

// Decompress implements Compressor.
func (CuSZx) Decompress(c *Compressed) ([]float32, error) {
	src := c.Bytes
	if len(src) < 32 || [4]byte(src[0:4]) != cuszxMagic {
		return nil, fmt.Errorf("baselines: not a cuSZx stream")
	}
	n := int(binary.LittleEndian.Uint64(src[4:]))
	eps := math.Float64frombits(binary.LittleEndian.Uint64(src[24:]))
	if !(eps > 0) {
		return nil, fmt.Errorf("baselines: non-positive ε in cuSZx stream")
	}
	pos := 32
	out := make([]float32, n)
	scratch := flenc.NewBlock(cuszxBlock)
	codes := make([]int32, cuszxBlock)
	for lo := 0; lo < n; lo += cuszxBlock {
		hi := min(lo+cuszxBlock, n)
		if pos >= len(src) {
			return nil, fmt.Errorf("baselines: truncated cuSZx stream at block %d", lo/cuszxBlock)
		}
		flag := src[pos]
		pos++
		switch flag {
		case cuszxConstant:
			if len(src)-pos < 4 {
				return nil, fmt.Errorf("baselines: truncated constant block")
			}
			mid := math.Float32frombits(binary.LittleEndian.Uint32(src[pos:]))
			pos += 4
			for i := lo; i < hi; i++ {
				out[i] = mid
			}
		case cuszxVerbatim:
			if len(src)-pos < 4*cuszxBlock {
				return nil, fmt.Errorf("baselines: truncated verbatim block")
			}
			for i := lo; i < hi; i++ {
				out[i] = math.Float32frombits(binary.LittleEndian.Uint32(src[pos+4*(i-lo):]))
			}
			pos += 4 * cuszxBlock
		case 0:
			if len(src)-pos < 4 {
				return nil, fmt.Errorf("baselines: truncated block midpoint")
			}
			mid := math.Float32frombits(binary.LittleEndian.Uint32(src[pos:]))
			pos += 4
			consumed, err := flenc.DecodeBlock(codes, src[pos:], flenc.HeaderU8, scratch)
			if err != nil {
				return nil, fmt.Errorf("baselines: cuSZx block at %d: %w", lo, err)
			}
			pos += consumed
			for i := lo; i < hi; i++ {
				out[i] = float32(float64(mid) + float64(codes[i-lo])*2*eps)
			}
		default:
			return nil, fmt.Errorf("baselines: unknown cuSZx block flag %#x", flag)
		}
	}
	return out, nil
}

// blockRange returns the finite min/max of a block; finite is false when
// any element is NaN or ±Inf.
func blockRange(blk []float32) (minV, maxV float64, finite bool) {
	minV, maxV = math.Inf(1), math.Inf(-1)
	for _, v := range blk {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return 0, 0, false
		}
		if f < minV {
			minV = f
		}
		if f > maxV {
			maxV = f
		}
	}
	return minV, maxV, true
}

// appendRawF32 appends the block's raw bytes, zero-padded to blockLen.
func appendRawF32(dst []byte, blk []float32, blockLen int) []byte {
	var b [4]byte
	for _, v := range blk {
		binary.LittleEndian.PutUint32(b[:], math.Float32bits(v))
		dst = append(dst, b[:]...)
	}
	for i := len(blk); i < blockLen; i++ {
		dst = append(dst, 0, 0, 0, 0)
	}
	return dst
}
