package baselines

import (
	"encoding/binary"
	"fmt"
	"math"

	"ceresz/internal/lorenzo"
)

// CuSZ models the cuSZ baseline: pre-quantization, N-dimensional Lorenzo
// prediction over the full grid, and canonical Huffman coding of the
// residual bins with an outlier side channel (paper §5.1.3; Tian et al.,
// PACT'20). Reconstruction satisfies the same error bound as CereSZ.
type CuSZ struct{}

var cuszMagic = [4]byte{'C', 'U', 'S', 'Z'}

// Name implements Compressor.
func (CuSZ) Name() string { return "cuSZ" }

// Compress implements Compressor.
func (CuSZ) Compress(data []float32, d lorenzo.Dims, eps float64) (*Compressed, error) {
	if err := d.Validate(len(data)); err != nil {
		return nil, err
	}
	codes, _, err := prequantize(data, eps)
	if err != nil {
		return nil, err
	}
	residuals := make([]int32, len(codes))
	if err := forwardLorenzo(residuals, codes, d); err != nil {
		return nil, err
	}
	body, err := encodeResiduals(residuals)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, 36+len(body))
	out = append(out, cuszMagic[:]...)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(data)))
	out = binary.LittleEndian.AppendUint32(out, uint32(d.Nx))
	out = binary.LittleEndian.AppendUint32(out, uint32(d.Ny))
	out = binary.LittleEndian.AppendUint32(out, uint32(d.Nz))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(eps))
	out = append(out, body...)
	return &Compressed{
		Compressor: "cuSZ",
		Bytes:      out,
		Elements:   len(data),
		Dims:       d,
		Eps:        eps,
	}, nil
}

// Decompress implements Compressor.
func (CuSZ) Decompress(c *Compressed) ([]float32, error) {
	src := c.Bytes
	if len(src) < 32 || [4]byte(src[0:4]) != cuszMagic {
		return nil, fmt.Errorf("baselines: not a cuSZ stream")
	}
	n := int(binary.LittleEndian.Uint64(src[4:]))
	d := lorenzo.Dims{
		Nx: int(binary.LittleEndian.Uint32(src[12:])),
		Ny: int(binary.LittleEndian.Uint32(src[16:])),
		Nz: int(binary.LittleEndian.Uint32(src[20:])),
	}
	eps := math.Float64frombits(binary.LittleEndian.Uint64(src[24:]))
	if err := d.Validate(n); err != nil {
		return nil, err
	}
	if !(eps > 0) {
		return nil, fmt.Errorf("baselines: non-positive ε in stream")
	}
	residuals, _, err := decodeResiduals(src[32:], n)
	if err != nil {
		return nil, err
	}
	codes := make([]int32, n)
	if err := inverseLorenzo(codes, residuals, d); err != nil {
		return nil, err
	}
	out := make([]float32, n)
	for i, p := range codes {
		out[i] = float32(float64(p) * 2 * eps)
	}
	return out, nil
}

// forwardLorenzo applies the Lorenzo transform matching the grid's
// dimensionality.
func forwardLorenzo(dst, src []int32, d lorenzo.Dims) error {
	switch d.Order() {
	case 3:
		return lorenzo.Forward3D(dst, src, d)
	case 2:
		return lorenzo.Forward2D(dst, src, d)
	default:
		lorenzo.Forward(dst, src)
		return nil
	}
}

// inverseLorenzo inverts forwardLorenzo.
func inverseLorenzo(dst, src []int32, d lorenzo.Dims) error {
	switch d.Order() {
	case 3:
		return lorenzo.Inverse3D(dst, src, d)
	case 2:
		return lorenzo.Inverse2D(dst, src, d)
	default:
		lorenzo.Inverse(dst, src)
		return nil
	}
}
