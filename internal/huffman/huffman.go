// Package huffman implements a canonical Huffman coder over 32-bit symbol
// alphabets. It is the lossless back end of the cuSZ- and SZ3-like
// baselines (paper §5.1.3), which encode quantization/residual codes with
// Huffman instead of CereSZ's fixed-length scheme. CereSZ itself avoids
// Huffman deliberately — building the codebook is expensive and violates
// its high-throughput design (paper §3, "Lossless Encoding Selection").
package huffman

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"

	"ceresz/internal/bitstream"
)

// MaxCodeLen is the longest admissible code. Codebooks deeper than this are
// rejected (they cannot occur for realistic block counts, but guard anyway).
const MaxCodeLen = 58

// ErrCorrupt is wrapped by decoding failures.
var ErrCorrupt = errors.New("huffman: corrupt stream")

// Codebook maps symbols to canonical codes.
type Codebook struct {
	// lengths[sym] is the code length in bits.
	lengths map[uint32]uint8
	// codes[sym] is the canonical code value (MSB-first semantics stored
	// LSB-first reversed for the bitstream writer).
	codes map[uint32]uint64
	// decode tables: symbols sorted by (length, symbol) with first-code
	// offsets per length, enabling O(maxLen) decode per symbol.
	symbols   []uint32
	firstCode [MaxCodeLen + 2]uint64
	firstSym  [MaxCodeLen + 2]int
	maxLen    uint8
}

type hnode struct {
	weight      int64
	sym         uint32
	left, right *hnode
	order       int64 // tie-break for determinism
}

type hheap []*hnode

func (h hheap) Len() int { return len(h) }
func (h hheap) Less(i, j int) bool {
	if h[i].weight != h[j].weight {
		return h[i].weight < h[j].weight
	}
	return h[i].order < h[j].order
}
func (h hheap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *hheap) Push(x any)   { *h = append(*h, x.(*hnode)) }
func (h *hheap) Pop() any     { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

// Build constructs a canonical codebook from symbol frequencies.
// Frequencies must be positive; at least one symbol is required.
func Build(freqs map[uint32]int64) (*Codebook, error) {
	if len(freqs) == 0 {
		return nil, errors.New("huffman: empty alphabet")
	}
	// Deterministic node ordering.
	syms := make([]uint32, 0, len(freqs))
	for s, f := range freqs {
		if f <= 0 {
			return nil, fmt.Errorf("huffman: non-positive frequency %d for symbol %d", f, s)
		}
		syms = append(syms, s)
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i] < syms[j] })

	h := make(hheap, 0, len(syms))
	var order int64
	for _, s := range syms {
		h = append(h, &hnode{weight: freqs[s], sym: s, order: order})
		order++
	}
	heap.Init(&h)
	if len(h) == 1 {
		// Single-symbol alphabet: one-bit code.
		cb := &Codebook{
			lengths: map[uint32]uint8{syms[0]: 1},
			codes:   map[uint32]uint64{syms[0]: 0},
		}
		cb.buildDecodeTables()
		return cb, nil
	}
	for len(h) > 1 {
		a := heap.Pop(&h).(*hnode)
		b := heap.Pop(&h).(*hnode)
		heap.Push(&h, &hnode{weight: a.weight + b.weight, left: a, right: b, order: order})
		order++
	}
	root := h[0]

	lengths := map[uint32]uint8{}
	var walk func(n *hnode, depth uint8) error
	walk = func(n *hnode, depth uint8) error {
		if n.left == nil {
			if depth == 0 {
				depth = 1
			}
			if depth > MaxCodeLen {
				return fmt.Errorf("huffman: code length %d exceeds %d", depth, MaxCodeLen)
			}
			lengths[n.sym] = depth
			return nil
		}
		if err := walk(n.left, depth+1); err != nil {
			return err
		}
		return walk(n.right, depth+1)
	}
	if err := walk(root, 0); err != nil {
		return nil, err
	}
	cb := &Codebook{lengths: lengths}
	cb.assignCanonical()
	cb.buildDecodeTables()
	return cb, nil
}

// assignCanonical derives canonical code values from the length map.
func (cb *Codebook) assignCanonical() {
	type sl struct {
		sym uint32
		ln  uint8
	}
	list := make([]sl, 0, len(cb.lengths))
	for s, l := range cb.lengths {
		list = append(list, sl{s, l})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].ln != list[j].ln {
			return list[i].ln < list[j].ln
		}
		return list[i].sym < list[j].sym
	})
	cb.codes = make(map[uint32]uint64, len(list))
	var code uint64
	var prevLen uint8
	for _, e := range list {
		code <<= (e.ln - prevLen)
		cb.codes[e.sym] = code
		code++
		prevLen = e.ln
	}
}

// buildDecodeTables prepares the canonical first-code/first-symbol tables.
func (cb *Codebook) buildDecodeTables() {
	if cb.codes == nil {
		cb.assignCanonical()
	}
	type sl struct {
		sym uint32
		ln  uint8
	}
	list := make([]sl, 0, len(cb.lengths))
	for s, l := range cb.lengths {
		list = append(list, sl{s, l})
		if l > cb.maxLen {
			cb.maxLen = l
		}
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].ln != list[j].ln {
			return list[i].ln < list[j].ln
		}
		return list[i].sym < list[j].sym
	})
	cb.symbols = make([]uint32, len(list))
	for i, e := range list {
		cb.symbols[i] = e.sym
	}
	idx := 0
	var code uint64
	for l := uint8(1); l <= cb.maxLen; l++ {
		cb.firstCode[l] = code
		cb.firstSym[l] = idx
		for idx < len(list) && list[idx].ln == l {
			idx++
			code++
		}
		code <<= 1
	}
	cb.firstCode[cb.maxLen+1] = code
}

// FromLengths rebuilds a canonical codebook from a symbol→length map —
// the serialized form a decoder receives. Lengths must be in
// [1, MaxCodeLen].
func FromLengths(lengths map[uint32]uint8) (*Codebook, error) {
	if len(lengths) == 0 {
		return nil, errors.New("huffman: empty length table")
	}
	cp := make(map[uint32]uint8, len(lengths))
	for s, l := range lengths {
		if l == 0 || l > MaxCodeLen {
			return nil, fmt.Errorf("huffman: invalid code length %d for symbol %d", l, s)
		}
		cp[s] = l
	}
	cb := &Codebook{lengths: cp}
	cb.assignCanonical()
	cb.buildDecodeTables()
	return cb, nil
}

// Lengths returns a copy of the symbol→code-length table (the canonical
// codebook's serializable form).
func (cb *Codebook) Lengths() map[uint32]uint8 {
	out := make(map[uint32]uint8, len(cb.lengths))
	for s, l := range cb.lengths {
		out[s] = l
	}
	return out
}

// Len returns the alphabet size.
func (cb *Codebook) Len() int { return len(cb.lengths) }

// MaxLen returns the longest code length in bits.
func (cb *Codebook) MaxLen() uint8 { return cb.maxLen }

// CodeLen returns the code length of sym (0 if absent).
func (cb *Codebook) CodeLen(sym uint32) uint8 { return cb.lengths[sym] }

// EncodedBits returns the exact payload size in bits for the given
// frequency table under this codebook.
func (cb *Codebook) EncodedBits(freqs map[uint32]int64) int64 {
	var bits int64
	for s, f := range freqs {
		bits += f * int64(cb.lengths[s])
	}
	return bits
}

// Encode appends sym's code (MSB-first) to w. Unknown symbols error.
func (cb *Codebook) Encode(w *bitstream.Writer, sym uint32) error {
	l, ok := cb.lengths[sym]
	if !ok {
		return fmt.Errorf("huffman: symbol %d not in codebook", sym)
	}
	code := cb.codes[sym]
	for i := int(l) - 1; i >= 0; i-- {
		w.WriteBit(uint32(code>>uint(i)) & 1)
	}
	return nil
}

// Decode reads one symbol from r (MSB-first canonical decoding).
func (cb *Codebook) Decode(r *bitstream.Reader) (uint32, error) {
	var code uint64
	for l := uint8(1); l <= cb.maxLen; l++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		code = code<<1 | uint64(b)
		// Codes of length l occupy [firstCode[l], firstCode[l]+countAt(l)).
		next := cb.firstCode[l] + uint64(cb.countAt(l))
		if code < next {
			if code < cb.firstCode[l] {
				return 0, fmt.Errorf("%w: prefix %#x shorter than any code", ErrCorrupt, code)
			}
			off := int(code - cb.firstCode[l])
			return cb.symbols[cb.firstSym[l]+off], nil
		}
	}
	return 0, fmt.Errorf("%w: no code matched within %d bits", ErrCorrupt, cb.maxLen)
}

// countAt returns how many codes have exactly length l.
func (cb *Codebook) countAt(l uint8) int {
	end := len(cb.symbols)
	if int(l) < int(cb.maxLen) {
		end = cb.firstSym[l+1]
	}
	return end - cb.firstSym[l]
}

// CountFreqs tallies symbol frequencies.
func CountFreqs(symbols []uint32) map[uint32]int64 {
	f := make(map[uint32]int64)
	for _, s := range symbols {
		f[s]++
	}
	return f
}

// EncodeAll encodes the symbol sequence with a freshly built codebook and
// returns (codebook, payload bytes). Convenience for the baselines.
func EncodeAll(symbols []uint32) (*Codebook, []byte, error) {
	cb, err := Build(CountFreqs(symbols))
	if err != nil {
		return nil, nil, err
	}
	w := bitstream.NewWriter(len(symbols))
	for _, s := range symbols {
		if err := cb.Encode(w, s); err != nil {
			return nil, nil, err
		}
	}
	return cb, w.Bytes(), nil
}

// DecodeAll decodes n symbols from payload using cb.
func DecodeAll(cb *Codebook, payload []byte, n int) ([]uint32, error) {
	r := bitstream.NewReader(payload)
	out := make([]uint32, n)
	for i := 0; i < n; i++ {
		s, err := cb.Decode(r)
		if err != nil {
			return nil, fmt.Errorf("symbol %d: %w", i, err)
		}
		out[i] = s
	}
	return out, nil
}
