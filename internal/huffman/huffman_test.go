package huffman

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ceresz/internal/bitstream"
)

func TestBuildRejectsBadInput(t *testing.T) {
	if _, err := Build(nil); err == nil {
		t.Fatal("accepted empty alphabet")
	}
	if _, err := Build(map[uint32]int64{1: 0}); err == nil {
		t.Fatal("accepted zero frequency")
	}
	if _, err := Build(map[uint32]int64{1: -5}); err == nil {
		t.Fatal("accepted negative frequency")
	}
}

func TestSingleSymbol(t *testing.T) {
	cb, err := Build(map[uint32]int64{42: 100})
	if err != nil {
		t.Fatal(err)
	}
	if cb.Len() != 1 || cb.CodeLen(42) != 1 {
		t.Fatalf("single-symbol codebook: len=%d codelen=%d", cb.Len(), cb.CodeLen(42))
	}
	w := bitstream.NewWriter(4)
	for i := 0; i < 10; i++ {
		if err := cb.Encode(w, 42); err != nil {
			t.Fatal(err)
		}
	}
	got, err := DecodeAll(cb, w.Bytes(), 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range got {
		if s != 42 {
			t.Fatalf("decoded %d", s)
		}
	}
}

func TestSkewedFrequenciesGiveShortCodes(t *testing.T) {
	freqs := map[uint32]int64{0: 1000, 1: 100, 2: 10, 3: 1}
	cb, err := Build(freqs)
	if err != nil {
		t.Fatal(err)
	}
	if cb.CodeLen(0) > cb.CodeLen(3) {
		t.Fatalf("frequent symbol got longer code: %d vs %d", cb.CodeLen(0), cb.CodeLen(3))
	}
	if cb.CodeLen(0) != 1 {
		t.Fatalf("dominant symbol code length %d, want 1", cb.CodeLen(0))
	}
	// Kraft equality for a full binary tree.
	var kraft float64
	for s := uint32(0); s < 4; s++ {
		kraft += 1 / float64(int64(1)<<cb.CodeLen(s))
	}
	if kraft != 1 {
		t.Fatalf("Kraft sum = %g, want 1", kraft)
	}
}

func TestEncodeUnknownSymbol(t *testing.T) {
	cb, _ := Build(map[uint32]int64{1: 1, 2: 1})
	w := bitstream.NewWriter(4)
	if err := cb.Encode(w, 99); err == nil {
		t.Fatal("encoded unknown symbol")
	}
}

func TestRoundTripSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	syms := make([]uint32, 10000)
	for i := range syms {
		// Geometric-ish distribution over 64 symbols.
		s := uint32(0)
		for s < 63 && rng.Intn(2) == 0 {
			s++
		}
		syms[i] = s
	}
	cb, payload, err := EncodeAll(syms)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeAll(cb, payload, len(syms))
	if err != nil {
		t.Fatal(err)
	}
	for i := range syms {
		if got[i] != syms[i] {
			t.Fatalf("symbol %d: %d != %d", i, got[i], syms[i])
		}
	}
	// Entropy coding must beat fixed 6-bit storage on geometric data.
	if len(payload)*8 >= 6*len(syms) {
		t.Fatalf("payload %d bits ≥ fixed-width %d bits", len(payload)*8, 6*len(syms))
	}
}

func TestFromLengthsMatchesBuild(t *testing.T) {
	freqs := map[uint32]int64{10: 50, 20: 30, 30: 15, 40: 5, 50: 1}
	cb, err := Build(freqs)
	if err != nil {
		t.Fatal(err)
	}
	cb2, err := FromLengths(cb.Lengths())
	if err != nil {
		t.Fatal(err)
	}
	syms := []uint32{10, 20, 30, 40, 50, 10, 10, 20}
	w := bitstream.NewWriter(8)
	for _, s := range syms {
		if err := cb.Encode(w, s); err != nil {
			t.Fatal(err)
		}
	}
	got, err := DecodeAll(cb2, w.Bytes(), len(syms))
	if err != nil {
		t.Fatal(err)
	}
	for i := range syms {
		if got[i] != syms[i] {
			t.Fatalf("rebuilt codebook decodes %d as %d", syms[i], got[i])
		}
	}
}

func TestFromLengthsValidation(t *testing.T) {
	if _, err := FromLengths(nil); err == nil {
		t.Fatal("accepted empty table")
	}
	if _, err := FromLengths(map[uint32]uint8{1: 0}); err == nil {
		t.Fatal("accepted zero length")
	}
	if _, err := FromLengths(map[uint32]uint8{1: MaxCodeLen + 1}); err == nil {
		t.Fatal("accepted over-long code")
	}
}

func TestDecodeCorrupt(t *testing.T) {
	cb, _ := Build(map[uint32]int64{0: 4, 1: 2, 2: 1, 3: 1})
	// Too few bits.
	if _, err := DecodeAll(cb, nil, 1); err == nil {
		t.Fatal("decoded from empty payload")
	}
}

func TestEncodedBits(t *testing.T) {
	freqs := map[uint32]int64{0: 3, 1: 1}
	cb, _ := Build(freqs)
	want := 3*int64(cb.CodeLen(0)) + 1*int64(cb.CodeLen(1))
	if got := cb.EncodedBits(freqs); got != want {
		t.Fatalf("EncodedBits = %d, want %d", got, want)
	}
}

// Property: arbitrary symbol sequences round-trip, including through the
// serialized-lengths rebuild path.
func TestQuickRoundTrip(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		syms := make([]uint32, len(raw))
		for i, r := range raw {
			syms[i] = uint32(r % 37)
		}
		cb, payload, err := EncodeAll(syms)
		if err != nil {
			return false
		}
		cb2, err := FromLengths(cb.Lengths())
		if err != nil {
			return false
		}
		got, err := DecodeAll(cb2, payload, len(syms))
		if err != nil {
			return false
		}
		for i := range syms {
			if got[i] != syms[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicCodebook(t *testing.T) {
	freqs := map[uint32]int64{5: 10, 9: 10, 1: 10, 7: 10}
	a, _ := Build(freqs)
	b, _ := Build(freqs)
	for s := range freqs {
		if a.CodeLen(s) != b.CodeLen(s) {
			t.Fatalf("nondeterministic code length for %d", s)
		}
	}
}

func TestDeepCodebookGuard(t *testing.T) {
	// Fibonacci-like frequencies force maximal code depth; the builder
	// must either produce codes within MaxCodeLen or reject cleanly —
	// never emit an undecodable book.
	freqs := map[uint32]int64{}
	a, b := int64(1), int64(1)
	for s := uint32(0); s < 40; s++ {
		freqs[s] = a
		a, b = b, a+b
	}
	cb, err := Build(freqs)
	if err != nil {
		return // rejection is acceptable
	}
	if cb.MaxLen() > MaxCodeLen {
		t.Fatalf("max code length %d exceeds guard %d", cb.MaxLen(), MaxCodeLen)
	}
	// And it must round-trip.
	syms := []uint32{0, 39, 20, 39, 0}
	w := bitstream.NewWriter(16)
	for _, s := range syms {
		if err := cb.Encode(w, s); err != nil {
			t.Fatal(err)
		}
	}
	got, err := DecodeAll(cb, w.Bytes(), len(syms))
	if err != nil {
		t.Fatal(err)
	}
	for i := range syms {
		if got[i] != syms[i] {
			t.Fatalf("deep codebook decode mismatch at %d", i)
		}
	}
}
