package flenc

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPaperFig5Block(t *testing.T) {
	// Paper Fig. 5(b): the Lorenzo output block {4,2,1,0,-2,-3,-5,-5} has
	// max |v| = 5 → width 3 per the Width definition… the paper narrates
	// "maximum absolute value in the block is 8 → four bits" for a variant
	// block; here we check the mechanics exactly: a block with max abs 8
	// needs 4 effective bits and encodes to header + L/8 signs + 4·L/8
	// payload bytes.
	codes := []int32{4, 2, 1, 0, -2, -3, -5, -8}
	scratch := NewBlock(8)
	out, w := EncodeBlock(nil, codes, HeaderU8, scratch)
	if w != 4 {
		t.Fatalf("width = %d, want 4", w)
	}
	// 1 header + 1 signs + 4 planes = 6 bytes: the paper's "compresses 32
	// original bytes into 6 bytes, a 5.33 ratio" example.
	if len(out) != 6 {
		t.Fatalf("encoded size = %d, want 6", len(out))
	}
	if got := float64(4*len(codes)) / float64(len(out)); math.Abs(got-5.33) > 0.01 {
		t.Fatalf("ratio = %.2f, want ≈5.33", got)
	}
	dec := make([]int32, 8)
	n, err := DecodeBlock(dec, out, HeaderU8, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(out) {
		t.Fatalf("consumed %d bytes, want %d", n, len(out))
	}
	for i := range codes {
		if dec[i] != codes[i] {
			t.Fatalf("dec[%d] = %d, want %d", i, dec[i], codes[i])
		}
	}
}

func TestSplitMergeSigns(t *testing.T) {
	src := []int32{0, -1, 5, -5, math.MaxInt32, math.MinInt32, 7, -128}
	abs := make([]uint32, 8)
	signs := make([]byte, 1)
	SplitSigns(abs, signs, src)
	if abs[4] != math.MaxInt32 {
		t.Fatalf("abs of MaxInt32 = %d", abs[4])
	}
	if abs[5] != 1<<31 {
		t.Fatalf("abs of MinInt32 = %d, want 2^31", abs[5])
	}
	// Negative positions: 1, 3, 5, 7 → sign byte 0b10101010.
	if signs[0] != 0xAA {
		t.Fatalf("signs = %#x, want 0xAA", signs[0])
	}
	dst := make([]int32, 8)
	MergeSigns(dst, abs, signs)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("merge[%d] = %d, want %d", i, dst[i], src[i])
		}
	}
}

func TestMaxAbsAndWidth(t *testing.T) {
	if MaxAbs([]uint32{3, 9, 0, 8}) != 9 {
		t.Fatal("MaxAbs wrong")
	}
	if MaxAbs(nil) != 0 {
		t.Fatal("MaxAbs(nil) != 0")
	}
	widths := map[uint32]uint{0: 0, 1: 1, 2: 2, 3: 2, 4: 3, 7: 3, 8: 4, 255: 8, 256: 9, math.MaxUint32: 32}
	for m, want := range widths {
		if got := Width(m); got != want {
			t.Fatalf("Width(%d) = %d, want %d", m, got, want)
		}
	}
}

func TestShufflePaperFig8(t *testing.T) {
	// Fig. 8: plane k holds bit k of each of the 8 integers.
	abs := []uint32{0b101, 0b010, 0b111, 0b000, 0b001, 0b100, 0b011, 0b110}
	plane := make([]byte, 1)
	ShufflePlane(plane, abs, 0)
	// Bit 0 of each value, LSB-first: 1,0,1,0,1,0,1,0 → 0b01010101.
	if plane[0] != 0x55 {
		t.Fatalf("plane0 = %#x, want 0x55", plane[0])
	}
	ShufflePlane(plane, abs, 1)
	// Bit 1: 0,1,1,0,0,0,1,1 → 0b11000110.
	if plane[0] != 0xC6 {
		t.Fatalf("plane1 = %#x, want 0xC6", plane[0])
	}
	ShufflePlane(plane, abs, 2)
	// Bit 2: 1,0,1,0,0,1,0,1 → 0b10100101.
	if plane[0] != 0xA5 {
		t.Fatalf("plane2 = %#x, want 0xA5", plane[0])
	}
}

func TestShuffleUnshuffleRoundTrip(t *testing.T) {
	abs := []uint32{1, 2, 4, 8, 16, 1 << 30, 0, 12345, 99, 0xFFFF, 3, 1 << 31, 7, 6, 5, 4}
	w := Width(MaxAbs(abs))
	buf := make([]byte, int(w)*len(abs)/8)
	Shuffle(buf, abs, w)
	got := make([]uint32, len(abs))
	Unshuffle(got, buf, w)
	for i := range abs {
		if got[i] != abs[i] {
			t.Fatalf("unshuffle[%d] = %d, want %d", i, got[i], abs[i])
		}
	}
}

func TestZeroBlock(t *testing.T) {
	codes := make([]int32, 32)
	scratch := NewBlock(32)
	for _, hdr := range []int{HeaderU8, HeaderU32} {
		out, w := EncodeBlock(nil, codes, hdr, scratch)
		if w != 0 {
			t.Fatalf("hdr %d: width = %d, want 0", hdr, w)
		}
		if len(out) != hdr {
			t.Fatalf("hdr %d: zero block size = %d, want %d", hdr, len(out), hdr)
		}
		dec := make([]int32, 32)
		dec[7] = 99 // ensure decode clears stale content
		if _, err := DecodeBlock(dec, out, hdr, scratch); err != nil {
			t.Fatal(err)
		}
		for i, v := range dec {
			if v != 0 {
				t.Fatalf("hdr %d: dec[%d] = %d, want 0", hdr, i, v)
			}
		}
	}
}

func TestRatioCaps(t *testing.T) {
	// Paper §5.3: the zero-block ratio cap is 128/4 = 32 for CereSZ's 4-byte
	// header (Table 5 maxima 31.96–31.99) and 128/1 = 128 for SZp/cuSZp
	// (maxima 127.51–127.95), at L = 32 float32 elements.
	if got := float64(4*32) / float64(EncodedSize(0, 32, HeaderU32)); got != 32 {
		t.Fatalf("CereSZ zero-block ratio cap = %g, want 32", got)
	}
	if got := float64(4*32) / float64(EncodedSize(0, 32, HeaderU8)); got != 128 {
		t.Fatalf("SZp zero-block ratio cap = %g, want 128", got)
	}
	// Non-zero block, fl=17 (CESM-ATM regime): 4+4+17·4 = 76 bytes.
	if got := EncodedSize(17, 32, HeaderU32); got != 76 {
		t.Fatalf("EncodedSize(17) = %d, want 76", got)
	}
	// Paper §5.3: the CESM 1E-4 minimum ratio 1.68 = 128/76.
	if got := 128.0 / 76.0; math.Abs(got-1.68) > 0.005 {
		t.Fatalf("fl=17 ratio = %.3f, want ≈1.68", got)
	}
}

func TestHeaderParsing(t *testing.T) {
	if _, _, err := Header([]byte{1, 2, 3}, HeaderU32); err == nil {
		t.Fatal("Header accepted truncated input")
	}
	v, n, err := Header([]byte{VerbatimU8}, HeaderU8)
	if err != nil || n != 1 || v != VerbatimU32 {
		t.Fatalf("verbatim u8 header: v=%#x n=%d err=%v", v, n, err)
	}
	v, n, err = Header([]byte{0xFF, 0xFF, 0xFF, 0xFF}, HeaderU32)
	if err != nil || n != 4 || v != VerbatimU32 {
		t.Fatalf("verbatim u32 header: v=%#x n=%d err=%v", v, n, err)
	}
	if _, _, err := Header([]byte{0}, 2); err == nil {
		t.Fatal("Header accepted unsupported size")
	}
}

func TestDecodeErrors(t *testing.T) {
	scratch := NewBlock(32)
	codes := make([]int32, 32)
	// Invalid fixed length.
	bad := []byte{33, 0, 0, 0}
	if _, err := DecodeBlock(codes, bad, HeaderU32, scratch); err == nil {
		t.Fatal("accepted fl=33")
	}
	// Truncated payload.
	trunc := []byte{4, 0, 0, 0, 1, 2}
	if _, err := DecodeBlock(codes, trunc, HeaderU32, scratch); err == nil {
		t.Fatal("accepted truncated payload")
	}
	// Verbatim must be rejected at this layer.
	vb := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := DecodeBlock(codes, vb, HeaderU32, scratch); err == nil {
		t.Fatal("accepted verbatim block")
	}
}

func TestVerbatimSize(t *testing.T) {
	if got := VerbatimSize(32, HeaderU32); got != 132 {
		t.Fatalf("VerbatimSize = %d, want 132", got)
	}
	if got := VerbatimSize(32, HeaderU8); got != 129 {
		t.Fatalf("VerbatimSize = %d, want 129", got)
	}
}

// Property: encode/decode round-trips arbitrary int32 blocks for both
// header sizes, and the width equals the bit length of the max abs value.
func TestQuickEncodeDecode(t *testing.T) {
	scratch := NewBlock(32)
	dec := make([]int32, 32)
	f := func(vals [32]int32, u8 bool) bool {
		hdr := HeaderU32
		if u8 {
			hdr = HeaderU8
		}
		out, w := EncodeBlock(nil, vals[:], hdr, scratch)
		abs := make([]uint32, 32)
		signs := make([]byte, 4)
		SplitSigns(abs, signs, vals[:])
		if w != Width(MaxAbs(abs)) {
			return false
		}
		if len(out) != EncodedSize(w, 32, hdr) {
			return false
		}
		if _, err := DecodeBlock(dec, out, hdr, scratch); err != nil {
			return false
		}
		for i := range vals {
			if dec[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestNewBlockRejectsBadLength(t *testing.T) {
	for _, L := range []int{0, -8, 7, 12} {
		func() {
			defer func() { recover() }()
			NewBlock(L)
			t.Fatalf("NewBlock(%d) did not panic", L)
		}()
	}
}
