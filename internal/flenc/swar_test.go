package flenc

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestTranspose8x8 checks the bit-matrix transpose against a direct
// bit-by-bit computation and its self-inverse property.
func TestTranspose8x8(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	naive := func(x uint64) uint64 {
		var y uint64
		for r := 0; r < 8; r++ {
			for c := 0; c < 8; c++ {
				if x&(1<<(8*r+c)) != 0 {
					y |= 1 << (8*c + r)
				}
			}
		}
		return y
	}
	for i := 0; i < 1000; i++ {
		x := rng.Uint64()
		got := Transpose8x8(x)
		if want := naive(x); got != want {
			t.Fatalf("Transpose8x8(%#x) = %#x, want %#x", x, got, want)
		}
		if back := Transpose8x8(got); back != x {
			t.Fatalf("transpose not self-inverse: %#x -> %#x -> %#x", x, got, back)
		}
	}
}

// TestShuffleMatchesScalar asserts the SWAR shuffle is byte-identical to
// the retained per-plane reference across random widths and block lengths.
func TestShuffleMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 500; iter++ {
		L := 8 * (1 + rng.Intn(16))
		width := uint(1 + rng.Intn(MaxWidth))
		abs := make([]uint32, L)
		mask := uint32(1)<<width - 1
		for i := range abs {
			abs[i] = rng.Uint32() & mask
		}
		pb := PlaneBytes(L)
		got := make([]byte, int(width)*pb)
		want := make([]byte, int(width)*pb)
		Shuffle(got, abs, width)
		ShuffleScalar(want, abs, width)
		if !bytes.Equal(got, want) {
			t.Fatalf("L=%d width=%d: SWAR shuffle differs from scalar\n got %x\nwant %x", L, width, got, want)
		}

		dec := make([]uint32, L)
		ref := make([]uint32, L)
		Unshuffle(dec, got, width)
		UnshuffleScalar(ref, got, width)
		for i := range dec {
			if dec[i] != ref[i] || dec[i] != abs[i] {
				t.Fatalf("L=%d width=%d elem %d: unshuffle %d, scalar %d, original %d",
					L, width, i, dec[i], ref[i], abs[i])
			}
		}
	}
}

// TestSplitSignsWidthMatchesScalar checks the fused Sign+Max+GetLength
// pass against the three separate sub-stages.
func TestSplitSignsWidthMatchesScalar(t *testing.T) {
	f := func(raw []int32) bool {
		L := (len(raw) / 8) * 8
		if L == 0 {
			return true
		}
		src := raw[:L]
		absF := make([]uint32, L)
		signsF := make([]byte, L/8)
		w := SplitSignsWidth(absF, signsF, src)

		absR := make([]uint32, L)
		signsR := make([]byte, L/8)
		SplitSigns(absR, signsR, src)
		wantW := Width(MaxAbs(absR))

		if w != wantW || !bytes.Equal(signsF, signsR) {
			return false
		}
		for i := range absF {
			if absF[i] != absR[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestEncodeBlockMatchesRef asserts the fused encoder and the scalar
// reference emit byte-identical blocks, and that both decode paths agree.
func TestEncodeBlockMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 500; iter++ {
		L := 8 * (1 + rng.Intn(16))
		codes := make([]int32, L)
		shift := uint(rng.Intn(33))
		for i := range codes {
			codes[i] = int32(rng.Uint32() >> shift)
			if rng.Intn(2) == 0 {
				codes[i] = -codes[i]
			}
		}
		for _, hdr := range []int{HeaderU32, HeaderU8} {
			scratch := NewBlock(L)
			opt, wOpt := EncodeBlock(nil, codes, hdr, scratch)
			ref, wRef := EncodeBlockRef(nil, codes, hdr, NewBlock(L))
			if wOpt != wRef || !bytes.Equal(opt, ref) {
				t.Fatalf("L=%d hdr=%d: fused encode differs (w %d vs %d)\n got %x\nwant %x",
					L, hdr, wOpt, wRef, opt, ref)
			}
			dec := make([]int32, L)
			if _, err := DecodeBlock(dec, opt, hdr, scratch); err != nil {
				t.Fatalf("DecodeBlock: %v", err)
			}
			decRef := make([]int32, L)
			if _, err := DecodeBlockRef(decRef, opt, hdr, NewBlock(L)); err != nil {
				t.Fatalf("DecodeBlockRef: %v", err)
			}
			for i := range dec {
				if dec[i] != codes[i] || decRef[i] != codes[i] {
					t.Fatalf("L=%d hdr=%d elem %d: decode %d, ref %d, original %d",
						L, hdr, i, dec[i], decRef[i], codes[i])
				}
			}
		}
	}
}

// TestAppendEncodedNoAlloc verifies the encode path stays allocation-free
// once the destination has capacity.
func TestAppendEncodedNoAlloc(t *testing.T) {
	const L = 32
	codes := make([]int32, L)
	for i := range codes {
		codes[i] = int32(i - 16)
	}
	scratch := NewBlock(L)
	dst := make([]byte, 0, VerbatimSize(L, HeaderU32))
	allocs := testing.AllocsPerRun(100, func() {
		dst, _ = EncodeBlock(dst[:0], codes, HeaderU32, scratch)
	})
	if allocs != 0 {
		t.Fatalf("EncodeBlock allocates %.1f times per call with warm dst", allocs)
	}
}
