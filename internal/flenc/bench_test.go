package flenc

import (
	"fmt"
	"math/rand"
	"testing"
)

// Microbenchmarks for the encode/decode kernels. The SWAR variants are
// benchmarked against the retained scalar references at a narrow, an odd
// and the maximal width so the per-plane versus per-pass scaling is
// visible: scalar cost grows linearly with width, transpose cost with
// ⌈width/8⌉.

func benchAbs(L int, width uint) []uint32 {
	rng := rand.New(rand.NewSource(42))
	abs := make([]uint32, L)
	mask := uint32(1)<<width - 1
	for i := range abs {
		abs[i] = rng.Uint32() & mask
	}
	return abs
}

var benchWidths = []uint{8, 17, 32}

func BenchmarkShuffle(b *testing.B) {
	const L = 32
	for _, w := range benchWidths {
		b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) {
			abs := benchAbs(L, w)
			dst := make([]byte, int(w)*PlaneBytes(L))
			b.SetBytes(int64(4 * L))
			for i := 0; i < b.N; i++ {
				Shuffle(dst, abs, w)
			}
		})
	}
}

func BenchmarkShuffleScalar(b *testing.B) {
	const L = 32
	for _, w := range benchWidths {
		b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) {
			abs := benchAbs(L, w)
			dst := make([]byte, int(w)*PlaneBytes(L))
			b.SetBytes(int64(4 * L))
			for i := 0; i < b.N; i++ {
				ShuffleScalar(dst, abs, w)
			}
		})
	}
}

func BenchmarkUnshuffle(b *testing.B) {
	const L = 32
	for _, w := range benchWidths {
		b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) {
			abs := benchAbs(L, w)
			planes := make([]byte, int(w)*PlaneBytes(L))
			Shuffle(planes, abs, w)
			out := make([]uint32, L)
			b.SetBytes(int64(4 * L))
			for i := 0; i < b.N; i++ {
				Unshuffle(out, planes, w)
			}
		})
	}
}

func BenchmarkUnshuffleScalar(b *testing.B) {
	const L = 32
	for _, w := range benchWidths {
		b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) {
			abs := benchAbs(L, w)
			planes := make([]byte, int(w)*PlaneBytes(L))
			Shuffle(planes, abs, w)
			out := make([]uint32, L)
			b.SetBytes(int64(4 * L))
			for i := 0; i < b.N; i++ {
				UnshuffleScalar(out, planes, w)
			}
		})
	}
}

func benchCodes(L int) []int32 {
	rng := rand.New(rand.NewSource(7))
	codes := make([]int32, L)
	for i := range codes {
		codes[i] = int32(rng.Intn(1<<16) - 1<<15)
	}
	return codes
}

// BenchmarkSplitSigns measures the three separate sub-stages
// (Sign + Max + GetLength) that SplitSignsWidth fuses.
func BenchmarkSplitSigns(b *testing.B) {
	const L = 32
	codes := benchCodes(L)
	abs := make([]uint32, L)
	signs := make([]byte, L/8)
	b.SetBytes(int64(4 * L))
	var w uint
	for i := 0; i < b.N; i++ {
		SplitSigns(abs, signs, codes)
		w = Width(MaxAbs(abs))
	}
	_ = w
}

func BenchmarkSplitSignsWidth(b *testing.B) {
	const L = 32
	codes := benchCodes(L)
	abs := make([]uint32, L)
	signs := make([]byte, L/8)
	b.SetBytes(int64(4 * L))
	var w uint
	for i := 0; i < b.N; i++ {
		w = SplitSignsWidth(abs, signs, codes)
	}
	_ = w
}

func BenchmarkEncodeBlock(b *testing.B) {
	const L = 32
	codes := benchCodes(L)
	scratch := NewBlock(L)
	dst := make([]byte, 0, VerbatimSize(L, HeaderU32))
	b.SetBytes(int64(4 * L))
	for i := 0; i < b.N; i++ {
		dst, _ = EncodeBlock(dst[:0], codes, HeaderU32, scratch)
	}
}

func BenchmarkDecodeBlock(b *testing.B) {
	const L = 32
	codes := benchCodes(L)
	scratch := NewBlock(L)
	enc, _ := EncodeBlock(nil, codes, HeaderU32, scratch)
	out := make([]int32, L)
	b.SetBytes(int64(4 * L))
	for i := 0; i < b.N; i++ {
		if _, err := DecodeBlock(out, enc, HeaderU32, scratch); err != nil {
			b.Fatal(err)
		}
	}
}
