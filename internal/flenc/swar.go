// SWAR (SIMD-within-a-register) kernels for the Bit-shuffle step.
//
// The wire layout (Fig. 8) stores plane k, byte j as bit k of elements
// 8j..8j+7, element 8j+i at bit position i. For one group of eight
// elements that is exactly the transpose of the 8×32 bit matrix formed by
// the eight absolute values — so instead of walking the block once per
// plane (up to 32 passes, one scattered bit per element per pass), the
// kernels below walk it once, transposing one 8×8 bit tile per byte lane
// with three word-level delta swaps (Hacker's Delight §7-3, the same
// transform vecSZ issues as SIMD shuffles). A block of width w costs
// ⌈w/8⌉·L/8 transposes instead of w·L bit probes.
//
// The scalar per-plane kernels (ShufflePlane, UnshufflePlane, and the
// *Scalar composites) are retained deliberately: they are the reference
// implementation for differential testing, and they model the per-bit
// "1-bit Shuffle" pipeline sub-stages that the WSE mapping schedules
// across PEs (Table 3) — the simulated path must keep paying per-plane
// cost because the hardware does.

package flenc

// Transpose8x8 transposes an 8×8 bit matrix packed row-major in a uint64
// (row r in byte r, column c in bit c): bit 8r+c of x becomes bit 8c+r of
// the result. Three delta swaps replace 64 single-bit probes; the
// transform is its own inverse.
func Transpose8x8(x uint64) uint64 {
	t := (x ^ (x >> 7)) & 0x00AA00AA00AA00AA
	x ^= t ^ (t << 7)
	t = (x ^ (x >> 14)) & 0x0000CCCC0000CCCC
	x ^= t ^ (t << 14)
	t = (x ^ (x >> 28)) & 0x00000000F0F0F0F0
	x ^= t ^ (t << 28)
	return x
}

// Shuffle writes width consecutive bit planes of abs into dst
// (len(dst) = int(width) · len(abs)/8) in a single pass over the block:
// each group of eight values is transposed byte lane by byte lane,
// emitting eight plane bytes per Transpose8x8. Every dst byte is written,
// so dst needs no prior zeroing.
func Shuffle(dst []byte, abs []uint32, width uint) {
	pb := PlaneBytes(len(abs))
	if len(dst) != int(width)*pb {
		panic("flenc: Shuffle buffer size mismatch")
	}
	for j := 0; j < pb; j++ {
		v := abs[8*j : 8*j+8 : 8*j+8]
		for sh := uint(0); sh < width; sh += 8 {
			x := uint64(byte(v[0]>>sh)) |
				uint64(byte(v[1]>>sh))<<8 |
				uint64(byte(v[2]>>sh))<<16 |
				uint64(byte(v[3]>>sh))<<24 |
				uint64(byte(v[4]>>sh))<<32 |
				uint64(byte(v[5]>>sh))<<40 |
				uint64(byte(v[6]>>sh))<<48 |
				uint64(byte(v[7]>>sh))<<56
			y := Transpose8x8(x)
			n := width - sh
			if n > 8 {
				n = 8
			}
			for k := uint(0); k < n; k++ {
				dst[int(sh+k)*pb+j] = byte(y >> (8 * k))
			}
		}
	}
}

// Unshuffle reconstructs absolute values from width bit planes, inverting
// Shuffle. Each element is rebuilt in registers, so abs needs no prior
// zeroing.
func Unshuffle(abs []uint32, src []byte, width uint) {
	pb := PlaneBytes(len(abs))
	if len(src) != int(width)*pb {
		panic("flenc: Unshuffle buffer size mismatch")
	}
	for j := 0; j < pb; j++ {
		a := abs[8*j : 8*j+8 : 8*j+8]
		var a0, a1, a2, a3, a4, a5, a6, a7 uint32
		for sh := uint(0); sh < width; sh += 8 {
			n := width - sh
			if n > 8 {
				n = 8
			}
			var y uint64
			for k := uint(0); k < n; k++ {
				y |= uint64(src[int(sh+k)*pb+j]) << (8 * k)
			}
			x := Transpose8x8(y)
			a0 |= uint32(byte(x)) << sh
			a1 |= uint32(byte(x>>8)) << sh
			a2 |= uint32(byte(x>>16)) << sh
			a3 |= uint32(byte(x>>24)) << sh
			a4 |= uint32(byte(x>>32)) << sh
			a5 |= uint32(byte(x>>40)) << sh
			a6 |= uint32(byte(x>>48)) << sh
			a7 |= uint32(byte(x>>56)) << sh
		}
		a[0], a[1], a[2], a[3] = a0, a1, a2, a3
		a[4], a[5], a[6], a[7] = a4, a5, a6, a7
	}
}

// SplitSignsWidth fuses the Sign, Max and GetLength sub-stages into one
// pass: it fills abs and the packed sign bits like SplitSigns and returns
// the block's effective width directly. Instead of tracking the maximum it
// ORs all absolute values together — bits.Len32(a|b) equals
// max(bits.Len32(a), bits.Len32(b)), so the OR yields the same width with
// no data-dependent branch.
func SplitSignsWidth(abs []uint32, signs []byte, src []int32) uint {
	if len(src)%8 != 0 {
		panic("flenc: block length not a multiple of 8")
	}
	if len(abs) != len(src) || len(signs) != len(src)/8 {
		panic("flenc: SplitSignsWidth buffer size mismatch")
	}
	var acc uint32
	for j := range signs {
		v := src[8*j : 8*j+8 : 8*j+8]
		a := abs[8*j : 8*j+8 : 8*j+8]
		var sb uint32
		for i, x := range v {
			neg := uint32(x) >> 31
			u := (uint32(x) ^ -neg) + neg // branchless |x|, total on MinInt32
			sb |= neg << i
			a[i] = u
			acc |= u
		}
		signs[j] = byte(sb)
	}
	return Width(acc)
}

// ShuffleScalar is the retained scalar reference for Shuffle: one pass
// over the block per plane, as the WSE per-bit sub-stages execute it.
func ShuffleScalar(dst []byte, abs []uint32, width uint) {
	pb := PlaneBytes(len(abs))
	if len(dst) != int(width)*pb {
		panic("flenc: ShuffleScalar buffer size mismatch")
	}
	for k := uint(0); k < width; k++ {
		ShufflePlane(dst[int(k)*pb:int(k+1)*pb], abs, k)
	}
}

// UnshuffleScalar is the retained scalar reference for Unshuffle.
func UnshuffleScalar(abs []uint32, src []byte, width uint) {
	pb := PlaneBytes(len(abs))
	if len(src) != int(width)*pb {
		panic("flenc: UnshuffleScalar buffer size mismatch")
	}
	clear(abs)
	for k := uint(0); k < width; k++ {
		UnshufflePlane(abs, src[int(k)*pb:int(k+1)*pb], k)
	}
}
