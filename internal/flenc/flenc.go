// Package flenc implements CereSZ fixed-length encoding (paper §3, step ③)
// and its inverse. A block of L small integers is stored as:
//
//   - a fixed-length header: the number of effective bits f of the largest
//     absolute value in the block (4 bytes in CereSZ to respect the WSE's
//     32-bit message granularity; 1 byte in the SZp/cuSZp baselines),
//   - L/8 bytes of packed sign bits,
//   - f planes of L/8 bytes each, produced by the Bit-shuffle step: plane k
//     collects bit k of every absolute value (Fig. 8).
//
// Two header values are reserved. A header of 0 marks a zero block — a block
// whose codes are all zero — which stores nothing beyond the header (paper
// §5.2, the source of the throughput gain at loose bounds and of the ratio
// caps 128/4 ≈ 32 for CereSZ and 128/1 = 128 for SZp at L = 32). The
// all-ones header marks a verbatim block whose payload is the raw original
// data; the core compressor emits it when quantization overflows int32.
//
// The four sub-steps — Sign, Max, GetLength, Bit-shuffle — are exported
// individually because the WSE mapping schedules them (and the per-bit
// slices of Bit-shuffle) as separate pipeline sub-stages (Table 3).
package flenc

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Header widths supported by the codec.
const (
	// HeaderU32 is the CereSZ header: 4 bytes, honoring the 32-bit wavelet
	// granularity of the Cerebras fabric (paper §5.1.1).
	HeaderU32 = 4
	// HeaderU8 is the SZp/cuSZp header: 1 byte.
	HeaderU8 = 1
)

// Reserved header codes.
const (
	// ZeroMarker marks an all-zero block.
	ZeroMarker = 0
	// VerbatimU32 marks a verbatim block in a 4-byte header.
	VerbatimU32 = 0xFFFFFFFF
	// VerbatimU8 marks a verbatim block in a 1-byte header.
	VerbatimU8 = 0xFF
)

// MaxWidth is the largest representable effective-bit count.
const MaxWidth = 32

// SplitSigns fills signs with the packed sign bits of src (bit i of
// signs[i/8], LSB-first; 1 means negative) and abs with absolute values.
// len(signs) must be len(src)/8 and len(src) must be a multiple of 8.
// The absolute value of MinInt32 is representable in uint32, so the split
// is total.
func SplitSigns(abs []uint32, signs []byte, src []int32) {
	if len(src)%8 != 0 {
		panic(fmt.Sprintf("flenc: block length %d not a multiple of 8", len(src)))
	}
	if len(abs) != len(src) || len(signs) != len(src)/8 {
		panic("flenc: SplitSigns buffer size mismatch")
	}
	for i := range signs {
		signs[i] = 0
	}
	for i, v := range src {
		if v < 0 {
			signs[i>>3] |= 1 << (i & 7)
			abs[i] = uint32(-int64(v))
		} else {
			abs[i] = uint32(v)
		}
	}
}

// MergeSigns reconstructs signed codes from absolute values and packed
// sign bits, inverting SplitSigns.
func MergeSigns(dst []int32, abs []uint32, signs []byte) {
	if len(dst) != len(abs) || len(signs) != len(abs)/8 {
		panic("flenc: MergeSigns buffer size mismatch")
	}
	for i, a := range abs {
		if signs[i>>3]&(1<<(i&7)) != 0 {
			dst[i] = int32(-int64(a))
		} else {
			dst[i] = int32(a)
		}
	}
}

// MaxAbs returns the maximum of abs (the Max sub-stage).
func MaxAbs(abs []uint32) uint32 {
	var m uint32
	for _, a := range abs {
		if a > m {
			m = a
		}
	}
	return m
}

// Width returns the number of effective bits of m (the GetLength
// sub-stage): 0 for 0, otherwise ⌈log₂(m+1)⌉.
func Width(m uint32) uint {
	return uint(bits.Len32(m))
}

// PlaneBytes returns the size in bytes of one shuffled bit plane for a
// block of blockLen elements.
func PlaneBytes(blockLen int) int { return blockLen / 8 }

// ShufflePlane extracts bit plane k of abs into dst (LSB-first packing,
// len(dst) = len(abs)/8). This is the unit of work of the per-bit
// "1-bit Shuffle" sub-stages the mapping distributes across PEs.
func ShufflePlane(dst []byte, abs []uint32, k uint) {
	if len(dst) != len(abs)/8 {
		panic("flenc: ShufflePlane buffer size mismatch")
	}
	for i := range dst {
		dst[i] = 0
	}
	for i, a := range abs {
		dst[i>>3] |= byte((a>>k)&1) << (i & 7)
	}
}

// Shuffle writes width consecutive bit planes of abs into dst
// (len(dst) = int(width) · len(abs)/8).
func Shuffle(dst []byte, abs []uint32, width uint) {
	pb := PlaneBytes(len(abs))
	if len(dst) != int(width)*pb {
		panic("flenc: Shuffle buffer size mismatch")
	}
	for k := uint(0); k < width; k++ {
		ShufflePlane(dst[int(k)*pb:int(k+1)*pb], abs, k)
	}
}

// UnshufflePlane merges bit plane k from src into abs (ORs bit k in).
func UnshufflePlane(abs []uint32, src []byte, k uint) {
	if len(src) != len(abs)/8 {
		panic("flenc: UnshufflePlane buffer size mismatch")
	}
	for i := range abs {
		abs[i] |= uint32((src[i>>3]>>(i&7))&1) << k
	}
}

// Unshuffle reconstructs absolute values from width bit planes. abs is
// zeroed first.
func Unshuffle(abs []uint32, src []byte, width uint) {
	pb := PlaneBytes(len(abs))
	if len(src) != int(width)*pb {
		panic("flenc: Unshuffle buffer size mismatch")
	}
	for i := range abs {
		abs[i] = 0
	}
	for k := uint(0); k < width; k++ {
		UnshufflePlane(abs, src[int(k)*pb:int(k+1)*pb], k)
	}
}

// EncodedSize returns the wire size in bytes of a block of blockLen codes
// with the given effective width and header size (HeaderU32 or HeaderU8).
// Width 0 (a zero block) costs only the header.
func EncodedSize(width uint, blockLen, headerBytes int) int {
	if width == 0 {
		return headerBytes
	}
	return headerBytes + PlaneBytes(blockLen) + int(width)*PlaneBytes(blockLen)
}

// VerbatimSize returns the wire size of a verbatim block: header plus the
// raw 4-byte elements.
func VerbatimSize(blockLen, headerBytes int) int {
	return headerBytes + 4*blockLen
}

func putHeader(dst []byte, headerBytes int, v uint32) []byte {
	switch headerBytes {
	case HeaderU32:
		var h [4]byte
		binary.LittleEndian.PutUint32(h[:], v)
		return append(dst, h[:]...)
	case HeaderU8:
		if v > VerbatimU8 && v != VerbatimU32 {
			panic(fmt.Sprintf("flenc: header value %d does not fit in one byte", v))
		}
		if v == VerbatimU32 {
			v = VerbatimU8
		}
		return append(dst, byte(v))
	default:
		panic(fmt.Sprintf("flenc: unsupported header size %d", headerBytes))
	}
}

// Header decodes a block header from src, returning the raw header value
// (with the verbatim marker normalized to VerbatimU32) and the number of
// header bytes consumed.
func Header(src []byte, headerBytes int) (v uint32, n int, err error) {
	if len(src) < headerBytes {
		return 0, 0, fmt.Errorf("flenc: truncated header: have %d bytes, need %d", len(src), headerBytes)
	}
	switch headerBytes {
	case HeaderU32:
		return binary.LittleEndian.Uint32(src), 4, nil
	case HeaderU8:
		v := uint32(src[0])
		if v == VerbatimU8 {
			v = VerbatimU32
		}
		return v, 1, nil
	default:
		return 0, 0, fmt.Errorf("flenc: unsupported header size %d", headerBytes)
	}
}

// Block is a reusable scratch area for encoding/decoding one block.
// It avoids per-block allocation on hot paths.
type Block struct {
	Abs    []uint32
	Signs  []byte
	Planes []byte
}

// NewBlock returns scratch buffers for blocks of blockLen elements.
func NewBlock(blockLen int) *Block {
	if blockLen <= 0 || blockLen%8 != 0 {
		panic(fmt.Sprintf("flenc: invalid block length %d", blockLen))
	}
	return &Block{
		Abs:    make([]uint32, blockLen),
		Signs:  make([]byte, blockLen/8),
		Planes: make([]byte, MaxWidth*blockLen/8),
	}
}

// EncodeBlock appends the fixed-length encoding of codes to dst using the
// given header size and scratch area, returning the extended slice and the
// effective width of the block.
func EncodeBlock(dst []byte, codes []int32, headerBytes int, scratch *Block) ([]byte, uint) {
	SplitSigns(scratch.Abs[:len(codes)], scratch.Signs[:len(codes)/8], codes)
	m := MaxAbs(scratch.Abs[:len(codes)])
	w := Width(m)
	if w == 0 {
		return putHeader(dst, headerBytes, ZeroMarker), 0
	}
	dst = putHeader(dst, headerBytes, uint32(w))
	dst = append(dst, scratch.Signs[:len(codes)/8]...)
	pb := PlaneBytes(len(codes))
	planes := scratch.Planes[:int(w)*pb]
	Shuffle(planes, scratch.Abs[:len(codes)], w)
	return append(dst, planes...), w
}

// DecodeBlock decodes one block of blockLen codes from src, writing them
// into codes and returning the number of bytes consumed. A verbatim header
// is an error here — the caller (the core compressor) must intercept it,
// because its payload is raw floats, not codes.
func DecodeBlock(codes []int32, src []byte, headerBytes int, scratch *Block) (n int, err error) {
	blockLen := len(codes)
	v, n, err := Header(src, headerBytes)
	if err != nil {
		return 0, err
	}
	switch {
	case v == ZeroMarker:
		for i := range codes {
			codes[i] = 0
		}
		return n, nil
	case v == VerbatimU32:
		return 0, fmt.Errorf("flenc: verbatim block must be handled by the caller")
	case v > MaxWidth:
		return 0, fmt.Errorf("flenc: invalid fixed length %d", v)
	}
	w := uint(v)
	pb := PlaneBytes(blockLen)
	need := pb + int(w)*pb
	if len(src)-n < need {
		return 0, fmt.Errorf("flenc: truncated block: have %d bytes, need %d", len(src)-n, need)
	}
	signs := src[n : n+pb]
	n += pb
	planes := src[n : n+int(w)*pb]
	n += int(w) * pb
	Unshuffle(scratch.Abs[:blockLen], planes, w)
	MergeSigns(codes, scratch.Abs[:blockLen], signs)
	return n, nil
}
