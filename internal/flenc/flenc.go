// Package flenc implements CereSZ fixed-length encoding (paper §3, step ③)
// and its inverse. A block of L small integers is stored as:
//
//   - a fixed-length header: the number of effective bits f of the largest
//     absolute value in the block (4 bytes in CereSZ to respect the WSE's
//     32-bit message granularity; 1 byte in the SZp/cuSZp baselines),
//   - L/8 bytes of packed sign bits,
//   - f planes of L/8 bytes each, produced by the Bit-shuffle step: plane k
//     collects bit k of every absolute value (Fig. 8).
//
// Two header values are reserved. A header of 0 marks a zero block — a block
// whose codes are all zero — which stores nothing beyond the header (paper
// §5.2, the source of the throughput gain at loose bounds and of the ratio
// caps 128/4 ≈ 32 for CereSZ and 128/1 = 128 for SZp at L = 32). The
// all-ones header marks a verbatim block whose payload is the raw original
// data; the core compressor emits it when quantization overflows int32.
//
// The four sub-steps — Sign, Max, GetLength, Bit-shuffle — are exported
// individually because the WSE mapping schedules them (and the per-bit
// slices of Bit-shuffle) as separate pipeline sub-stages (Table 3). The
// host hot path does not use them: it runs the fused word-parallel kernels
// in swar.go (SplitSignsWidth, Shuffle/Unshuffle via 8×8 bit-matrix
// transposes), with the scalar composites retained as the reference
// implementation for differential testing (EncodeBlockRef/DecodeBlockRef).
package flenc

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"slices"
)

// Header widths supported by the codec.
const (
	// HeaderU32 is the CereSZ header: 4 bytes, honoring the 32-bit wavelet
	// granularity of the Cerebras fabric (paper §5.1.1).
	HeaderU32 = 4
	// HeaderU8 is the SZp/cuSZp header: 1 byte.
	HeaderU8 = 1
)

// Reserved header codes.
const (
	// ZeroMarker marks an all-zero block.
	ZeroMarker = 0
	// VerbatimU32 marks a verbatim block in a 4-byte header.
	VerbatimU32 = 0xFFFFFFFF
	// VerbatimU8 marks a verbatim block in a 1-byte header.
	VerbatimU8 = 0xFF
)

// MaxWidth is the largest representable effective-bit count.
const MaxWidth = 32

// SplitSigns fills signs with the packed sign bits of src (bit i of
// signs[i/8], LSB-first; 1 means negative) and abs with absolute values.
// len(signs) must be len(src)/8 and len(src) must be a multiple of 8.
// The absolute value of MinInt32 is representable in uint32, so the split
// is total.
func SplitSigns(abs []uint32, signs []byte, src []int32) {
	if len(src)%8 != 0 {
		panic(fmt.Sprintf("flenc: block length %d not a multiple of 8", len(src)))
	}
	if len(abs) != len(src) || len(signs) != len(src)/8 {
		panic("flenc: SplitSigns buffer size mismatch")
	}
	clear(signs)
	for i, v := range src {
		if v < 0 {
			signs[i>>3] |= 1 << (i & 7)
			abs[i] = uint32(-int64(v))
		} else {
			abs[i] = uint32(v)
		}
	}
}

// MergeSigns reconstructs signed codes from absolute values and packed
// sign bits, inverting SplitSigns.
func MergeSigns(dst []int32, abs []uint32, signs []byte) {
	if len(dst) != len(abs) || len(signs) != len(abs)/8 {
		panic("flenc: MergeSigns buffer size mismatch")
	}
	for i, a := range abs {
		if signs[i>>3]&(1<<(i&7)) != 0 {
			dst[i] = int32(-int64(a))
		} else {
			dst[i] = int32(a)
		}
	}
}

// MaxAbs returns the maximum of abs (the Max sub-stage).
func MaxAbs(abs []uint32) uint32 {
	var m uint32
	for _, a := range abs {
		if a > m {
			m = a
		}
	}
	return m
}

// Width returns the number of effective bits of m (the GetLength
// sub-stage): 0 for 0, otherwise ⌈log₂(m+1)⌉.
func Width(m uint32) uint {
	return uint(bits.Len32(m))
}

// PlaneBytes returns the size in bytes of one shuffled bit plane for a
// block of blockLen elements.
func PlaneBytes(blockLen int) int { return blockLen / 8 }

// ShufflePlane extracts bit plane k of abs into dst (LSB-first packing,
// len(dst) = len(abs)/8). This is the unit of work of the per-bit
// "1-bit Shuffle" sub-stages the mapping distributes across PEs. Each
// output byte is assembled in a register, so dst needs no prior zeroing
// and the bounds checks hoist to one slice per group of eight.
func ShufflePlane(dst []byte, abs []uint32, k uint) {
	if len(dst) != len(abs)/8 {
		panic("flenc: ShufflePlane buffer size mismatch")
	}
	for j := range dst {
		v := abs[8*j : 8*j+8 : 8*j+8]
		dst[j] = byte((v[0]>>k)&1) |
			byte((v[1]>>k)&1)<<1 |
			byte((v[2]>>k)&1)<<2 |
			byte((v[3]>>k)&1)<<3 |
			byte((v[4]>>k)&1)<<4 |
			byte((v[5]>>k)&1)<<5 |
			byte((v[6]>>k)&1)<<6 |
			byte((v[7]>>k)&1)<<7
	}
}

// UnshufflePlane merges bit plane k from src into abs (ORs bit k in).
func UnshufflePlane(abs []uint32, src []byte, k uint) {
	if len(src) != len(abs)/8 {
		panic("flenc: UnshufflePlane buffer size mismatch")
	}
	for j, b := range src {
		a := abs[8*j : 8*j+8 : 8*j+8]
		a[0] |= uint32(b&1) << k
		a[1] |= uint32((b>>1)&1) << k
		a[2] |= uint32((b>>2)&1) << k
		a[3] |= uint32((b>>3)&1) << k
		a[4] |= uint32((b>>4)&1) << k
		a[5] |= uint32((b>>5)&1) << k
		a[6] |= uint32((b>>6)&1) << k
		a[7] |= uint32((b>>7)&1) << k
	}
}

// EncodedSize returns the wire size in bytes of a block of blockLen codes
// with the given effective width and header size (HeaderU32 or HeaderU8).
// Width 0 (a zero block) costs only the header.
func EncodedSize(width uint, blockLen, headerBytes int) int {
	if width == 0 {
		return headerBytes
	}
	return headerBytes + PlaneBytes(blockLen) + int(width)*PlaneBytes(blockLen)
}

// VerbatimSize returns the wire size of a verbatim block: header plus the
// raw 4-byte elements.
func VerbatimSize(blockLen, headerBytes int) int {
	return headerBytes + 4*blockLen
}

func putHeader(dst []byte, headerBytes int, v uint32) []byte {
	switch headerBytes {
	case HeaderU32:
		var h [4]byte
		binary.LittleEndian.PutUint32(h[:], v)
		return append(dst, h[:]...)
	case HeaderU8:
		if v > VerbatimU8 && v != VerbatimU32 {
			panic(fmt.Sprintf("flenc: header value %d does not fit in one byte", v))
		}
		if v == VerbatimU32 {
			v = VerbatimU8
		}
		return append(dst, byte(v))
	default:
		panic(fmt.Sprintf("flenc: unsupported header size %d", headerBytes))
	}
}

// Header decodes a block header from src, returning the raw header value
// (with the verbatim marker normalized to VerbatimU32) and the number of
// header bytes consumed.
func Header(src []byte, headerBytes int) (v uint32, n int, err error) {
	if len(src) < headerBytes {
		return 0, 0, fmt.Errorf("flenc: truncated header: have %d bytes, need %d", len(src), headerBytes)
	}
	switch headerBytes {
	case HeaderU32:
		return binary.LittleEndian.Uint32(src), 4, nil
	case HeaderU8:
		v := uint32(src[0])
		if v == VerbatimU8 {
			v = VerbatimU32
		}
		return v, 1, nil
	default:
		return 0, 0, fmt.Errorf("flenc: unsupported header size %d", headerBytes)
	}
}

// Block is a reusable scratch area for encoding/decoding one block.
// It avoids per-block allocation on hot paths.
type Block struct {
	Abs   []uint32
	Signs []byte
}

// NewBlock returns scratch buffers for blocks of blockLen elements.
func NewBlock(blockLen int) *Block {
	if blockLen <= 0 || blockLen%8 != 0 {
		panic(fmt.Sprintf("flenc: invalid block length %d", blockLen))
	}
	return &Block{
		Abs:   make([]uint32, blockLen),
		Signs: make([]byte, blockLen/8),
	}
}

// Reset re-zeroes the scratch buffers. The encode/decode kernels overwrite
// every slot they read, so Reset is not required between blocks; it exists
// for callers that hand scratch to code expecting cleared buffers.
func (b *Block) Reset() {
	clear(b.Abs)
	clear(b.Signs)
}

// AppendEncoded appends the wire form of a block whose sign-split state is
// already in abs/signs (as produced by SplitSignsWidth): header, packed
// signs, then w bit planes shuffled directly into dst's tail — no staging
// buffer, and no allocation when dst has capacity. w == 0 appends a bare
// zero-block header.
func AppendEncoded(dst []byte, abs []uint32, signs []byte, w uint, headerBytes int) []byte {
	if w == 0 {
		return putHeader(dst, headerBytes, ZeroMarker)
	}
	dst = putHeader(dst, headerBytes, uint32(w))
	dst = append(dst, signs...)
	need := int(w) * PlaneBytes(len(abs))
	dst = slices.Grow(dst, need)
	n := len(dst)
	dst = dst[: n+need : cap(dst)]
	Shuffle(dst[n:], abs, w)
	return dst
}

// EncodeBlock appends the fixed-length encoding of codes to dst using the
// given header size and scratch area, returning the extended slice and the
// effective width of the block. The sign split, width computation and
// bit shuffle all run word-parallel (one fused pass plus per-byte-lane
// 8×8 transposes).
func EncodeBlock(dst []byte, codes []int32, headerBytes int, scratch *Block) ([]byte, uint) {
	abs := scratch.Abs[:len(codes)]
	signs := scratch.Signs[:len(codes)/8]
	w := SplitSignsWidth(abs, signs, codes)
	return AppendEncoded(dst, abs, signs, w, headerBytes), w
}

// EncodeBlockRef is the retained scalar reference implementation of
// EncodeBlock: separate Sign/Max/GetLength passes and a per-plane shuffle,
// exactly the sub-stage decomposition the WSE pipeline executes.
// Differential tests assert its output is byte-identical to EncodeBlock's;
// the core compressor runs it on telemetry-sampled blocks so the per-stage
// timing split keeps modeling the pipeline stages.
func EncodeBlockRef(dst []byte, codes []int32, headerBytes int, scratch *Block) ([]byte, uint) {
	abs := scratch.Abs[:len(codes)]
	signs := scratch.Signs[:len(codes)/8]
	SplitSigns(abs, signs, codes)
	w := Width(MaxAbs(abs))
	if w == 0 {
		return putHeader(dst, headerBytes, ZeroMarker), 0
	}
	dst = putHeader(dst, headerBytes, uint32(w))
	dst = append(dst, signs...)
	need := int(w) * PlaneBytes(len(abs))
	dst = slices.Grow(dst, need)
	n := len(dst)
	dst = dst[: n+need : cap(dst)]
	ShuffleScalar(dst[n:], abs, w)
	return dst, w
}

// DecodeBody validates a block body and splits it into its packed sign
// bytes and plane bytes (both aliasing src, not copied), returning the
// width and total byte count consumed. Zero blocks return w == 0 with nil
// slices; a verbatim header is an error (the caller must intercept it).
// Callers that want fused decoding (e.g. the core decompressor's merged
// sign/prefix-sum/dequantize loop) use this plus Unshuffle instead of
// DecodeBlock.
func DecodeBody(src []byte, blockLen, headerBytes int) (signs, planes []byte, w uint, n int, err error) {
	return decodeBody(src, blockLen, headerBytes)
}

// decodeBody validates a non-zero, non-verbatim block body and returns its
// signs, planes, width and total byte count consumed.
func decodeBody(src []byte, blockLen, headerBytes int) (signs, planes []byte, w uint, n int, err error) {
	v, n, err := Header(src, headerBytes)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	switch {
	case v == ZeroMarker:
		return nil, nil, 0, n, nil
	case v == VerbatimU32:
		return nil, nil, 0, 0, fmt.Errorf("flenc: verbatim block must be handled by the caller")
	case v > MaxWidth:
		return nil, nil, 0, 0, fmt.Errorf("flenc: invalid fixed length %d", v)
	}
	w = uint(v)
	pb := PlaneBytes(blockLen)
	need := pb + int(w)*pb
	if len(src)-n < need {
		return nil, nil, 0, 0, fmt.Errorf("flenc: truncated block: have %d bytes, need %d", len(src)-n, need)
	}
	signs = src[n : n+pb]
	planes = src[n+pb : n+need]
	return signs, planes, w, n + need, nil
}

// DecodeBlock decodes one block of blockLen codes from src, writing them
// into codes and returning the number of bytes consumed. A verbatim header
// is an error here — the caller (the core compressor) must intercept it,
// because its payload is raw floats, not codes.
func DecodeBlock(codes []int32, src []byte, headerBytes int, scratch *Block) (n int, err error) {
	signs, planes, w, n, err := decodeBody(src, len(codes), headerBytes)
	if err != nil {
		return 0, err
	}
	if w == 0 {
		clear(codes)
		return n, nil
	}
	abs := scratch.Abs[:len(codes)]
	Unshuffle(abs, planes, w)
	MergeSigns(codes, abs, signs)
	return n, nil
}

// DecodeBlockRef is the retained scalar reference implementation of
// DecodeBlock (per-plane unshuffle), paired with EncodeBlockRef for
// differential testing.
func DecodeBlockRef(codes []int32, src []byte, headerBytes int, scratch *Block) (n int, err error) {
	signs, planes, w, n, err := decodeBody(src, len(codes), headerBytes)
	if err != nil {
		return 0, err
	}
	if w == 0 {
		clear(codes)
		return n, nil
	}
	abs := scratch.Abs[:len(codes)]
	UnshuffleScalar(abs, planes, w)
	MergeSigns(codes, abs, signs)
	return n, nil
}
