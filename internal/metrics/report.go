package metrics

import (
	"fmt"
	"strings"

	"ceresz/internal/lorenzo"
)

// Report bundles the paper's per-field evaluation metrics (§5.1.4) into
// one value: ratio, bit rate, maximum absolute error, PSNR and — for grids
// tall enough for the 8×8 window — SSIM. Build one with NewReport after a
// compress/decompress round trip.
type Report struct {
	// Elements is the field length.
	Elements int
	// OriginalBytes and CompressedBytes size the two representations.
	OriginalBytes, CompressedBytes int
	// Ratio is OriginalBytes / CompressedBytes.
	Ratio float64
	// BitRate is compressed bits per element.
	BitRate float64
	// MaxAbsErr is max_i |orig_i − rec_i|, the bound-constrained quantity.
	MaxAbsErr float64
	// PSNR is the peak signal-to-noise ratio in dB (+Inf when lossless).
	PSNR float64
	// SSIM is the mean structural similarity; valid only when HasSSIM.
	SSIM float64
	// HasSSIM reports whether the grid admitted an SSIM evaluation (needs
	// Ny ≥ 8 for the sliding window).
	HasSSIM bool
}

// NewReport evaluates every metric for one round trip. dims describes the
// field's grid; 1D fields (Ny < 8) skip SSIM rather than erroring.
func NewReport(orig, rec []float32, compressedBytes int, dims lorenzo.Dims) (*Report, error) {
	if len(orig) != len(rec) {
		return nil, ErrLengthMismatch
	}
	maxErr, err := MaxAbsError(orig, rec)
	if err != nil {
		return nil, err
	}
	psnr, err := PSNR(orig, rec)
	if err != nil {
		return nil, err
	}
	r := &Report{
		Elements:        len(orig),
		OriginalBytes:   4 * len(orig),
		CompressedBytes: compressedBytes,
		Ratio:           CompressionRatio(4*len(orig), compressedBytes),
		BitRate:         BitRate(len(orig), compressedBytes),
		MaxAbsErr:       maxErr,
		PSNR:            psnr,
	}
	if dims.Ny >= 8 {
		ssim, err := SSIM(orig, rec, dims)
		if err != nil {
			return nil, err
		}
		r.SSIM = ssim
		r.HasSSIM = true
	}
	return r, nil
}

// String renders the report as one human-readable line.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d elements: %d -> %d bytes (ratio %.3f, %.3f bits/elem), max|err| %.3g, PSNR %.2f dB",
		r.Elements, r.OriginalBytes, r.CompressedBytes, r.Ratio, r.BitRate, r.MaxAbsErr, r.PSNR)
	if r.HasSSIM {
		fmt.Fprintf(&sb, ", SSIM %.6f", r.SSIM)
	}
	return sb.String()
}
