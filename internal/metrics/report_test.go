package metrics

import (
	"math"
	"strings"
	"testing"

	"ceresz/internal/lorenzo"
)

func TestReport2D(t *testing.T) {
	n := 32 * 32
	orig := make([]float32, n)
	rec := make([]float32, n)
	for i := range orig {
		orig[i] = float32(math.Sin(float64(i) * 0.01))
		rec[i] = orig[i] + 0.001
	}
	r, err := NewReport(orig, rec, n, lorenzo.Dims2(32, 32))
	if err != nil {
		t.Fatal(err)
	}
	if r.Elements != n || r.OriginalBytes != 4*n || r.CompressedBytes != n {
		t.Fatalf("sizes %+v", r)
	}
	if r.Ratio != 4 || r.BitRate != 8 {
		t.Fatalf("ratio %g, bit rate %g", r.Ratio, r.BitRate)
	}
	if r.MaxAbsErr < 0.0009 || r.MaxAbsErr > 0.0011 {
		t.Fatalf("max error %g", r.MaxAbsErr)
	}
	if r.PSNR <= 0 || math.IsInf(r.PSNR, 1) {
		t.Fatalf("PSNR %g", r.PSNR)
	}
	if !r.HasSSIM || r.SSIM <= 0.9 || r.SSIM > 1 {
		t.Fatalf("SSIM %g (has %v)", r.SSIM, r.HasSSIM)
	}
	s := r.String()
	for _, frag := range []string{"ratio 4.000", "PSNR", "SSIM"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("String missing %q:\n%s", frag, s)
		}
	}
}

func TestReport1DSkipsSSIM(t *testing.T) {
	orig := []float32{1, 2, 3, 4}
	r, err := NewReport(orig, orig, 8, lorenzo.Dims1(4))
	if err != nil {
		t.Fatal(err)
	}
	if r.HasSSIM {
		t.Fatal("SSIM computed on a 1D field")
	}
	if !math.IsInf(r.PSNR, 1) {
		t.Fatalf("lossless PSNR %g, want +Inf", r.PSNR)
	}
	if strings.Contains(r.String(), "SSIM") {
		t.Fatalf("String mentions SSIM without one:\n%s", r.String())
	}
}

func TestReportLengthMismatch(t *testing.T) {
	if _, err := NewReport([]float32{1, 2}, []float32{1}, 4, lorenzo.Dims1(2)); err == nil {
		t.Fatal("accepted mismatched lengths")
	}
}
