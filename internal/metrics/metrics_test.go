package metrics

import (
	"math"
	"testing"

	"ceresz/internal/lorenzo"
)

func TestMaxAbsError(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{1.5, 2, 2.2}
	got, err := MaxAbsError(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.8) > 1e-6 {
		t.Fatalf("MaxAbsError = %g, want 0.8", got)
	}
	if _, err := MaxAbsError(a, b[:2]); err == nil {
		t.Fatal("accepted length mismatch")
	}
}

func TestMSEAndPSNR(t *testing.T) {
	orig := []float32{0, 1, 2, 3}
	rec := []float32{0.1, 1.1, 1.9, 3.1}
	mse, err := MSE(orig, rec)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mse-0.01) > 1e-6 { // float32 inputs are inexact
		t.Fatalf("MSE = %g, want 0.01", mse)
	}
	psnr, err := PSNR(orig, rec)
	if err != nil {
		t.Fatal(err)
	}
	// range 3, MSE 0.01 → 20log10(3) − 10log10(0.01) = 9.54 + 20 = 29.54.
	if math.Abs(psnr-29.54) > 0.01 {
		t.Fatalf("PSNR = %g, want ≈29.54", psnr)
	}
}

func TestPSNRLossless(t *testing.T) {
	orig := []float32{1, 2, 3}
	psnr, err := PSNR(orig, orig)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(psnr, 1) {
		t.Fatalf("lossless PSNR = %g, want +Inf", psnr)
	}
}

func TestRatioAndBitRate(t *testing.T) {
	if got := CompressionRatio(1000, 100); got != 10 {
		t.Fatalf("ratio = %g", got)
	}
	if got := CompressionRatio(1000, 0); got != 0 {
		t.Fatalf("ratio with zero denominator = %g", got)
	}
	// 32-bit floats at ratio 8 → 4 bits per element.
	if got := BitRate(100, 50); got != 4 {
		t.Fatalf("bitrate = %g, want 4", got)
	}
}

func TestThroughput(t *testing.T) {
	if got := ThroughputGBps(2e9, 1); got != 2 {
		t.Fatalf("throughput = %g, want 2", got)
	}
	if got := ThroughputGBps(1, 0); got != 0 {
		t.Fatalf("throughput with zero time = %g", got)
	}
}

func TestSSIMIdentical(t *testing.T) {
	d := lorenzo.Dims2(32, 32)
	a := make([]float32, d.Len())
	for i := range a {
		a[i] = float32(math.Sin(float64(i) * 0.1))
	}
	s, err := SSIM(a, a, d)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-1) > 1e-12 {
		t.Fatalf("SSIM(x,x) = %g, want 1", s)
	}
}

func TestSSIMDegradesWithNoise(t *testing.T) {
	d := lorenzo.Dims2(64, 64)
	a := make([]float32, d.Len())
	for i := range a {
		a[i] = float32(math.Sin(float64(i%64)*0.2) + math.Cos(float64(i/64)*0.15))
	}
	mk := func(noise float64) []float32 {
		out := make([]float32, len(a))
		for i := range a {
			out[i] = a[i] + float32(noise*math.Sin(float64(i)*1.7))
		}
		return out
	}
	sSmall, err := SSIM(a, mk(0.001), d)
	if err != nil {
		t.Fatal(err)
	}
	sBig, err := SSIM(a, mk(0.5), d)
	if err != nil {
		t.Fatal(err)
	}
	if !(sSmall > sBig) {
		t.Fatalf("SSIM not monotone in distortion: %g vs %g", sSmall, sBig)
	}
	if sSmall < 0.99 {
		t.Fatalf("tiny noise SSIM = %g, want ≈1", sSmall)
	}
	if sBig > 0.9 {
		t.Fatalf("large noise SSIM = %g, want <0.9", sBig)
	}
}

func TestSSIM3DSlices(t *testing.T) {
	d := lorenzo.Dims3(16, 16, 4)
	a := make([]float32, d.Len())
	for i := range a {
		a[i] = float32(i % 17)
	}
	s, err := SSIM(a, a, d)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-1) > 1e-12 {
		t.Fatalf("3D SSIM(x,x) = %g", s)
	}
}

func TestSSIMErrors(t *testing.T) {
	d := lorenzo.Dims2(4, 4) // smaller than the 8×8 window
	a := make([]float32, 16)
	for i := range a {
		a[i] = float32(i)
	}
	if _, err := SSIM(a, a, d); err == nil {
		t.Fatal("accepted field smaller than window")
	}
	if _, err := SSIM(a, a[:8], lorenzo.Dims2(4, 4)); err == nil {
		t.Fatal("accepted length mismatch")
	}
	// Constant identical fields are perfectly similar.
	c := make([]float32, 64*64)
	s, err := SSIM(c, c, lorenzo.Dims2(64, 64))
	if err != nil || s != 1 {
		t.Fatalf("constant SSIM = %g, %v", s, err)
	}
}
