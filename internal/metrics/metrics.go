// Package metrics implements the data-quality and efficiency metrics the
// paper evaluates (§2.2, §5.1.4): compression ratio, throughput, maximum
// absolute error, PSNR and SSIM.
package metrics

import (
	"errors"
	"fmt"
	"math"

	"ceresz/internal/lorenzo"
)

// ErrLengthMismatch is returned when two fields have different sizes.
var ErrLengthMismatch = errors.New("metrics: length mismatch")

// MaxAbsError returns max_i |a_i − b_i| — the quantity the error bound
// constrains.
func MaxAbsError(a, b []float32) (float64, error) {
	if len(a) != len(b) {
		return 0, ErrLengthMismatch
	}
	var m float64
	for i := range a {
		if e := math.Abs(float64(a[i]) - float64(b[i])); e > m {
			m = e
		}
	}
	return m, nil
}

// MSE returns the mean squared error between a and b.
func MSE(a, b []float32) (float64, error) {
	if len(a) != len(b) {
		return 0, ErrLengthMismatch
	}
	if len(a) == 0 {
		return 0, nil
	}
	var sum float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		sum += d * d
	}
	return sum / float64(len(a)), nil
}

// PSNR returns the peak signal-to-noise ratio in dB between the original
// and the reconstruction, using the original's value range as the peak
// (the convention of Z-checker and the compression literature). A lossless
// reconstruction yields +Inf.
func PSNR(orig, rec []float32) (float64, error) {
	mse, err := MSE(orig, rec)
	if err != nil {
		return 0, err
	}
	lo, hi := rangeOf(orig)
	r := hi - lo
	if mse == 0 {
		return math.Inf(1), nil
	}
	if r <= 0 {
		return 0, fmt.Errorf("metrics: degenerate value range %g", r)
	}
	return 20*math.Log10(r) - 10*math.Log10(mse), nil
}

// CompressionRatio returns originalBytes / compressedBytes.
func CompressionRatio(originalBytes, compressedBytes int) float64 {
	if compressedBytes <= 0 {
		return 0
	}
	return float64(originalBytes) / float64(compressedBytes)
}

// BitRate returns bits per element for float32 data compressed to
// compressedBytes.
func BitRate(elements, compressedBytes int) float64 {
	if elements <= 0 {
		return 0
	}
	return 8 * float64(compressedBytes) / float64(elements)
}

// ThroughputGBps returns bytes processed per second in GB/s (10⁹ bytes).
func ThroughputGBps(bytes int64, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(bytes) / seconds / 1e9
}

func rangeOf(a []float32) (float64, float64) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range a {
		f := float64(v)
		if math.IsNaN(f) {
			continue
		}
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	if lo > hi {
		return 0, 0
	}
	return lo, hi
}

// SSIM computes the mean Structural Similarity Index between a 2D original
// and reconstruction over sliding wd×wd windows with stride wd (a windowed
// mean, as in the reference implementation used by the compression
// community). Fields with more than two dimensions are evaluated slice by
// slice (fastest two dims). Returns a value in [-1, 1]; 1 means identical.
func SSIM(orig, rec []float32, d lorenzo.Dims) (float64, error) {
	if len(orig) != len(rec) {
		return 0, ErrLengthMismatch
	}
	if err := d.Validate(len(orig)); err != nil {
		return 0, err
	}
	const wd = 8
	lo, hi := rangeOf(orig)
	L := hi - lo
	if L <= 0 {
		// Constant field: identical reconstructions are perfectly similar.
		same := true
		for i := range orig {
			if orig[i] != rec[i] {
				same = false
				break
			}
		}
		if same {
			return 1, nil
		}
		return 0, fmt.Errorf("metrics: degenerate value range for SSIM")
	}
	c1 := (0.01 * L) * (0.01 * L)
	c2 := (0.03 * L) * (0.03 * L)

	var total float64
	var windows int
	sliceLen := d.Nx * d.Ny
	for z := 0; z < d.Nz; z++ {
		o := orig[z*sliceLen : (z+1)*sliceLen]
		r := rec[z*sliceLen : (z+1)*sliceLen]
		for y := 0; y+wd <= d.Ny; y += wd {
			for x := 0; x+wd <= d.Nx; x += wd {
				var muO, muR float64
				for j := 0; j < wd; j++ {
					for i := 0; i < wd; i++ {
						muO += float64(o[(y+j)*d.Nx+x+i])
						muR += float64(r[(y+j)*d.Nx+x+i])
					}
				}
				n := float64(wd * wd)
				muO /= n
				muR /= n
				var vO, vR, cov float64
				for j := 0; j < wd; j++ {
					for i := 0; i < wd; i++ {
						do := float64(o[(y+j)*d.Nx+x+i]) - muO
						dr := float64(r[(y+j)*d.Nx+x+i]) - muR
						vO += do * do
						vR += dr * dr
						cov += do * dr
					}
				}
				vO /= n - 1
				vR /= n - 1
				cov /= n - 1
				s := ((2*muO*muR + c1) * (2*cov + c2)) /
					((muO*muO + muR*muR + c1) * (vO + vR + c2))
				total += s
				windows++
			}
		}
	}
	if windows == 0 {
		return 0, fmt.Errorf("metrics: field %+v smaller than the %dx%d SSIM window", d, wd, wd)
	}
	return total / float64(windows), nil
}
