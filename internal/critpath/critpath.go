// Package critpath turns a simulated mapping run's raw observability —
// per-PE cycle attribution (wse.Attribution) and per-block lifecycle
// spans (wse.BlockSpan) — into answers to the questions the paper's
// evaluation asks: which stage group bottlenecks the pipeline (Fig. 10's
// per-PE execution profile), how balanced Algorithm 1's packing came out
// (Fig. 13), and how the measured relay-feed cost compares to the
// Formula (2)–(4) analytic model. Deltas between model and measurement
// are reported, never asserted — the analyzer is a lens, not a test.
package critpath

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"ceresz/internal/mapping"
	"ceresz/internal/wse"
)

// GroupStats aggregates one pipeline position (stage group) over every
// pipeline and row that instantiates it.
type GroupStats struct {
	// Pos is the pipeline position; Label is its span-log name
	// ("group00"…); Stages lists the sub-stages Algorithm 1 packed in.
	Pos    int      `json:"pos"`
	Label  string   `json:"label"`
	Stages []string `json:"stages"`
	// PEs is how many PEs run this group (rows × pipelines).
	PEs int `json:"pes"`
	// Busy/Compute/QueueWait/FabricStall/Idle sum the attribution buckets
	// over the group's PEs.
	Busy        int64 `json:"busy"`
	Compute     int64 `json:"compute"`
	QueueWait   int64 `json:"queue_wait"`
	FabricStall int64 `json:"fabric_stall"`
	Idle        int64 `json:"idle"`
	// MaxBusy / MaxBusyPE identify the group's own critical PE.
	MaxBusy   int64     `json:"max_busy"`
	MaxBusyPE wse.Coord `json:"max_busy_pe"`
	// Occupancy is Busy / (PEs · Elapsed): the group's mean duty cycle.
	Occupancy float64 `json:"occupancy"`
}

// RelayCheck compares the measured per-hop relay cost against the
// Formula (2) model term C₁ = MsgOverhead + AvgInputWavelets.
type RelayCheck struct {
	// Forwards counts processor relay hops (Context.Forward calls).
	Forwards int64 `json:"forwards"`
	// MeasuredPerHop is total relay cycles / Forwards.
	MeasuredPerHop float64 `json:"measured_per_hop"`
	// ModelPerHop is the analytic C₁.
	ModelPerHop float64 `json:"model_per_hop"`
	// DeltaPct is (measured − model) / model · 100.
	DeltaPct float64 `json:"delta_pct"`
}

// ModelCheck compares the run's measured cycle count against the full
// Formula (2)–(4) projection for the same workload.
type ModelCheck struct {
	MeasuredCycles int64   `json:"measured_cycles"`
	ModelCycles    float64 `json:"model_cycles"`
	// DeltaPct is (measured − model) / model · 100.
	DeltaPct float64 `json:"delta_pct"`
}

// PathSegment is one leg of the critical block's walk across the wafer.
type PathSegment struct {
	// Label names the leg: a stage-group or relay label for work,
	// "queue-wait" / "fabric" / "mailbox" for waits, "route" for router
	// hops.
	Label string `json:"label"`
	// PE is where the leg happened (meaningless for waits spanning PEs).
	PE wse.Coord `json:"pe"`
	// From/To bound the leg; Cycles = To − From.
	From   int64 `json:"from"`
	To     int64 `json:"to"`
	Cycles int64 `json:"cycles"`
}

// Report is the analyzer's full verdict for one run.
type Report struct {
	// Elapsed is the run length in cycles.
	Elapsed int64 `json:"elapsed"`
	// Groups holds per-position aggregates, pipeline order.
	Groups []GroupStats `json:"groups"`
	// BottleneckPos/BottleneckLabel name the stage group with the largest
	// busy total — the pipeline's rate limiter.
	BottleneckPos   int    `json:"bottleneck_pos"`
	BottleneckLabel string `json:"bottleneck_label"`
	// BusiestPE is MeshStats' critical PE and BusiestPEPos its pipeline
	// position; AgreesWithMeshStats reports whether the span/attribution
	// analysis and the aggregate busy counters name the same group.
	BusiestPE           wse.Coord `json:"busiest_pe"`
	BusiestPEPos        int       `json:"busiest_pe_pos"`
	AgreesWithMeshStats bool      `json:"agrees_with_mesh_stats"`
	// ImbalancePct is (max − min) / max · 100 over the groups' busy
	// totals — Algorithm 1's packing quality (0 is perfect balance).
	ImbalancePct float64 `json:"imbalance_pct"`
	// PipelineBottlenecks[p] is the bottleneck position of pipeline p
	// considered alone (summed over rows).
	PipelineBottlenecks []int `json:"pipeline_bottlenecks,omitempty"`
	// Relay is the Formula (2) per-hop cross-check; Model the full
	// Formula (2)–(4) projection cross-check.
	Relay RelayCheck `json:"relay"`
	Model ModelCheck `json:"model"`
	// SpanCount is how many block spans the run recorded (0 when span
	// tracing was off — the span-dependent fields below are then empty).
	SpanCount int `json:"span_count"`
	// CriticalSpan is the id of the last block to leave the wafer; its
	// end-to-end latency decomposes into CriticalPath.
	CriticalSpan    int64         `json:"critical_span,omitempty"`
	CriticalLatency int64         `json:"critical_latency,omitempty"`
	CriticalPath    []PathSegment `json:"critical_path,omitempty"`
}

// Options tunes the analysis.
type Options struct {
	// AvgInputWavelets overrides the mean fabric size of one input block
	// for the model cross-checks; 0 uses the plan's block length (exact
	// for compression, conservative for decompression).
	AvgInputWavelets float64
}

// Analyze builds the report for one finished run. It needs only what
// Result already carries: Attribution always, Spans when the plan set
// RecordSpans (the critical-path fields stay empty without them).
func Analyze(plan *mapping.Plan, res *mapping.Result, opts Options) Report {
	att := res.Attribution
	pl := plan.Cfg.PipelineLen
	names := plan.Chain.StageNames()
	rep := Report{Elapsed: att.Elapsed}

	// Per-position aggregates. Only columns inside a pipeline belong to a
	// group; the span labels and col % PipelineLen agree by construction
	// (see mapping.install).
	rep.Groups = make([]GroupStats, pl)
	for pos := range rep.Groups {
		g := plan.GroupOf(pos)
		rep.Groups[pos] = GroupStats{
			Pos:    pos,
			Label:  plan.GroupLabel(pos),
			Stages: append([]string(nil), names[g.Lo:g.Hi]...),
		}
	}
	pipeBusy := map[[2]int]int64{} // (pipeline, pos) → busy
	for _, pa := range att.PEs {
		if pa.PE.Col >= plan.Pipelines*pl {
			continue // outside every pipeline (no program installed)
		}
		pos := pa.PE.Col % pl
		gs := &rep.Groups[pos]
		gs.PEs++
		gs.Busy += pa.Busy()
		gs.Compute += pa.Compute
		gs.QueueWait += pa.QueueWait
		gs.FabricStall += pa.FabricStall
		gs.Idle += pa.Idle
		if pa.Busy() > gs.MaxBusy {
			gs.MaxBusy = pa.Busy()
			gs.MaxBusyPE = pa.PE
		}
		pipeBusy[[2]int{pa.PE.Col / pl, pos}] += pa.Busy()
	}
	for pos := range rep.Groups {
		gs := &rep.Groups[pos]
		if gs.PEs > 0 && att.Elapsed > 0 {
			gs.Occupancy = float64(gs.Busy) / (float64(gs.PEs) * float64(att.Elapsed))
		}
	}

	// Bottleneck group: most busy cycles in total. Ties resolve to the
	// earliest position, matching MeshStats' first-wins BusiestPE scan.
	minBusy := rep.Groups[0].Busy
	for pos := 1; pos < len(rep.Groups); pos++ {
		b := rep.Groups[pos].Busy
		if b > rep.Groups[rep.BottleneckPos].Busy {
			rep.BottleneckPos = pos
		}
		if b < minBusy {
			minBusy = b
		}
	}
	rep.BottleneckLabel = rep.Groups[rep.BottleneckPos].Label
	if maxBusy := rep.Groups[rep.BottleneckPos].Busy; maxBusy > 0 {
		rep.ImbalancePct = 100 * float64(maxBusy-minBusy) / float64(maxBusy)
	}

	// Per-pipeline bottlenecks.
	rep.PipelineBottlenecks = make([]int, plan.Pipelines)
	for p := range rep.PipelineBottlenecks {
		best := int64(-1)
		for pos := 0; pos < pl; pos++ {
			if b := pipeBusy[[2]int{p, pos}]; b > best {
				best = b
				rep.PipelineBottlenecks[p] = pos
			}
		}
	}

	// Cross-check against the aggregate busy counters.
	sum := res.Mesh.Summary()
	rep.BusiestPE = sum.BusiestPE
	rep.BusiestPEPos = sum.BusiestPE.Col % pl
	rep.AgreesWithMeshStats = rep.BusiestPEPos == rep.BottleneckPos

	rep.Relay, rep.Model = modelChecks(plan, res, opts)
	analyzeSpans(&rep, res.Spans)
	return rep
}

// modelChecks computes the Formula (2) per-hop and Formula (2)–(4)
// end-to-end comparisons.
func modelChecks(plan *mapping.Plan, res *mapping.Result, opts Options) (RelayCheck, ModelCheck) {
	cfg := res.Mesh.Config()
	avgW := opts.AvgInputWavelets
	if avgW == 0 {
		avgW = float64(plan.Chain.Cfg.BlockLen)
	}

	var rc RelayCheck
	rc.Forwards = res.Attribution.Totals.Forwarded
	relayCycles := res.Mesh.Summary().TotalRelay
	rc.ModelPerHop = float64(cfg.MsgOverhead) + avgW
	if rc.Forwards > 0 {
		rc.MeasuredPerHop = float64(relayCycles) / float64(rc.Forwards)
		rc.DeltaPct = 100 * (rc.MeasuredPerHop - rc.ModelPerHop) / rc.ModelPerHop
	}

	var mc ModelCheck
	mc.MeasuredCycles = res.Cycles
	blocks := res.Meta.Blocks()
	if blocks > 0 {
		width := plan.Cfg.PlanWidth
		if width == 0 {
			width = uint(plan.Chain.Cfg.EstWidth)
		}
		w := mapping.UniformWorkload(blocks, res.Meta.Elements, width, avgW)
		if proj, err := plan.Project(w); err == nil && proj.TotalCycles > 0 {
			mc.ModelCycles = proj.TotalCycles
			mc.DeltaPct = 100 * (float64(res.Cycles) - proj.TotalCycles) / proj.TotalCycles
		}
	}
	return rc, mc
}

// analyzeSpans fills the span-dependent report fields: the critical
// (last-ejecting) block and its per-leg latency decomposition.
func analyzeSpans(rep *Report, spans []wse.BlockSpan) {
	rep.SpanCount = len(spans)
	if len(spans) == 0 {
		return
	}
	crit := -1
	for i, b := range spans {
		if b.EjectAt < 0 {
			continue
		}
		if crit < 0 || b.EjectAt > spans[crit].EjectAt {
			crit = i
		}
	}
	if crit < 0 {
		return
	}
	b := spans[crit]
	rep.CriticalSpan = b.Span
	rep.CriticalLatency = b.Latency()

	cursor := b.InjectAt
	add := func(label string, pe wse.Coord, from, to int64) {
		if to <= from {
			return
		}
		rep.CriticalPath = append(rep.CriticalPath, PathSegment{
			Label: label, PE: pe, From: from, To: to, Cycles: to - from,
		})
	}
	for _, ev := range b.Events {
		switch ev.Kind {
		case wse.SpanRoute:
			// Fabric transit from the previous hop to this router, then
			// the router's own link occupancy.
			add("fabric", ev.PE, cursor, ev.At)
			add("route", ev.PE, max64(cursor, ev.At), ev.End)
		case wse.SpanDispatch:
			// Waits leading into this hop: upstream production, fabric
			// transfer, then mailbox residency at the receiver.
			add("queue-wait", ev.PE, cursor, min64(ev.Sent, ev.At))
			add("fabric", ev.PE, max64(cursor, ev.Sent), min64(ev.Arrived, ev.At))
			add("mailbox", ev.PE, max64(cursor, ev.Arrived), ev.At)
			label := ev.Label
			if label == "" {
				label = "dispatch"
			}
			add(label, ev.PE, ev.At, ev.End)
		}
		if ev.End > cursor {
			cursor = ev.End
		}
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// WriteTo renders the report as human-readable lines.
func (r Report) WriteTo(w io.Writer) (int64, error) {
	var total int64
	emit := func(format string, args ...any) error {
		n, err := fmt.Fprintf(w, format, args...)
		total += int64(n)
		return err
	}
	if err := emit("critical path over %d cycles:\n", r.Elapsed); err != nil {
		return total, err
	}
	for _, g := range r.Groups {
		mark := " "
		if g.Pos == r.BottleneckPos {
			mark = "*"
		}
		if err := emit("%s %-8s %-28s pes=%-4d busy=%-10d occ=%5.1f%% qwait=%-10d fstall=%-10d\n",
			mark, g.Label, strings.Join(g.Stages, "+"), g.PEs, g.Busy,
			100*g.Occupancy, g.QueueWait, g.FabricStall); err != nil {
			return total, err
		}
	}
	agree := "agrees"
	if !r.AgreesWithMeshStats {
		agree = "DISAGREES"
	}
	if err := emit("bottleneck %s (imbalance %.1f%%); MeshStats busiest %v is position %d — %s\n",
		r.BottleneckLabel, r.ImbalancePct, r.BusiestPE, r.BusiestPEPos, agree); err != nil {
		return total, err
	}
	if r.Relay.Forwards > 0 {
		if err := emit("relay cost: measured %.1f cyc/hop vs model C1=%.1f (Formula 2): %+.1f%%\n",
			r.Relay.MeasuredPerHop, r.Relay.ModelPerHop, r.Relay.DeltaPct); err != nil {
			return total, err
		}
	}
	if r.Model.ModelCycles > 0 {
		if err := emit("end-to-end: measured %d cycles vs model %.0f (Formulas 2-4): %+.1f%%\n",
			r.Model.MeasuredCycles, r.Model.ModelCycles, r.Model.DeltaPct); err != nil {
			return total, err
		}
	}
	if r.SpanCount > 0 {
		if err := emit("spans: %d blocks traced; critical block %d latency %d cycles\n",
			r.SpanCount, r.CriticalSpan, r.CriticalLatency); err != nil {
			return total, err
		}
		// Collapse the walk into per-label totals for readability.
		byLabel := map[string]int64{}
		var labels []string
		for _, seg := range r.CriticalPath {
			if _, ok := byLabel[seg.Label]; !ok {
				labels = append(labels, seg.Label)
			}
			byLabel[seg.Label] += seg.Cycles
		}
		sort.Slice(labels, func(i, j int) bool { return byLabel[labels[i]] > byLabel[labels[j]] })
		for _, l := range labels {
			pct := 0.0
			if r.CriticalLatency > 0 {
				pct = 100 * float64(byLabel[l]) / float64(r.CriticalLatency)
			}
			if err := emit("  %-12s %10d cycles (%5.1f%%)\n", l, byLabel[l], pct); err != nil {
				return total, err
			}
		}
	}
	return total, nil
}

// String renders the report via WriteTo.
func (r Report) String() string {
	var sb strings.Builder
	_, _ = r.WriteTo(&sb)
	return sb.String()
}
