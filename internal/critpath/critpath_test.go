package critpath

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"ceresz/internal/mapping"
	"ceresz/internal/stages"
	"ceresz/internal/wse"
)

func smoothField(n int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float32, n)
	v := 0.0
	for i := range data {
		v += rng.NormFloat64() * 0.02
		data[i] = float32(math.Sin(float64(i)*0.015)*2 + v)
	}
	return data
}

// runPlan compresses a smooth field on the given geometry with span
// recording on and returns plan + result.
func runPlan(t *testing.T, rows, cols, pl int, singleIngress bool) (*mapping.Plan, *mapping.Result) {
	t.Helper()
	chain, err := stages.NewCompressChain(stages.Config{BlockLen: 32, Eps: 1e-3, EstWidth: 8})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := mapping.NewPlan(chain, mapping.PlanConfig{
		Mesh:          wse.Config{Rows: rows, Cols: cols},
		PipelineLen:   pl,
		SingleIngress: singleIngress,
		RecordSpans:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.Compress(smoothField(32*64, 7))
	if err != nil {
		t.Fatal(err)
	}
	return plan, res
}

// TestBottleneckAgreesWithMeshStats is the acceptance check: on the
// Fig. 10-style pipeline plan the analyzer must name the stage group
// containing MeshStats' busiest PE.
func TestBottleneckAgreesWithMeshStats(t *testing.T) {
	for _, tc := range []struct {
		name           string
		rows, cols, pl int
		single         bool
	}{
		{"fig10_1x12_pl12", 1, 12, 12, false},
		{"multirow_4x8_pl4", 4, 8, 4, false},
		{"single_ingress_4x4_pl4", 4, 4, 4, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			plan, res := runPlan(t, tc.rows, tc.cols, tc.pl, tc.single)
			rep := Analyze(plan, res, Options{})
			if !rep.AgreesWithMeshStats {
				t.Errorf("analyzer bottleneck %s (pos %d) disagrees with MeshStats busiest PE %v (pos %d)\n%s",
					rep.BottleneckLabel, rep.BottleneckPos, rep.BusiestPE, rep.BusiestPEPos, rep.String())
			}
			if rep.BottleneckLabel != plan.GroupLabel(rep.BottleneckPos) {
				t.Errorf("label %q does not match position %d", rep.BottleneckLabel, rep.BottleneckPos)
			}
			if len(rep.PipelineBottlenecks) != plan.Pipelines {
				t.Errorf("got %d pipeline bottlenecks, want %d", len(rep.PipelineBottlenecks), plan.Pipelines)
			}
		})
	}
}

// TestBucketSumsEqualElapsed is the other acceptance check: every PE's
// timeline buckets partition [0, Elapsed] exactly.
func TestBucketSumsEqualElapsed(t *testing.T) {
	_, res := runPlan(t, 4, 8, 4, false)
	att := res.Attribution
	if att.Elapsed != res.Cycles {
		t.Fatalf("attribution elapsed %d != run cycles %d", att.Elapsed, res.Cycles)
	}
	for _, pa := range att.PEs {
		sum := pa.Compute + pa.RelayForward + pa.QueueWait + pa.FabricStall + pa.Idle
		if sum != att.Elapsed {
			t.Errorf("PE %v: buckets sum to %d, want %d", pa.PE, sum, att.Elapsed)
		}
		if pa.Idle < 0 {
			t.Errorf("PE %v: negative idle %d", pa.PE, pa.Idle)
		}
	}
}

// TestRelayCostMatchesFormula2 verifies the Formula (2) cross-check is
// exact for compression: every processor relay moves one raw block of L
// wavelets, so the measured per-hop cost is exactly MsgOverhead + L.
func TestRelayCostMatchesFormula2(t *testing.T) {
	plan, res := runPlan(t, 2, 8, 4, false)
	rep := Analyze(plan, res, Options{})
	if rep.Relay.Forwards == 0 {
		t.Fatal("no relay forwards on a 2-pipeline row")
	}
	if math.Abs(rep.Relay.DeltaPct) > 1e-9 {
		t.Errorf("relay delta %.6f%% (measured %.2f, model %.2f); want exact match for uniform raw blocks",
			rep.Relay.DeltaPct, rep.Relay.MeasuredPerHop, rep.Relay.ModelPerHop)
	}
	if rep.Model.ModelCycles <= 0 {
		t.Error("model cross-check missing")
	}
}

// TestCriticalPathDecomposition checks the span walk: segments tile the
// critical block's latency with no gaps or overlaps.
func TestCriticalPathDecomposition(t *testing.T) {
	plan, res := runPlan(t, 2, 8, 4, false)
	rep := Analyze(plan, res, Options{})
	if rep.SpanCount != len(res.Spans) || rep.SpanCount == 0 {
		t.Fatalf("span count %d, result has %d", rep.SpanCount, len(res.Spans))
	}
	if len(rep.CriticalPath) == 0 {
		t.Fatal("empty critical path")
	}
	var sum int64
	cursor := rep.CriticalPath[0].From
	for _, seg := range rep.CriticalPath {
		if seg.From != cursor {
			t.Fatalf("segment %q starts at %d, previous ended at %d", seg.Label, seg.From, cursor)
		}
		if seg.Cycles != seg.To-seg.From || seg.Cycles <= 0 {
			t.Fatalf("segment %q: bad extent [%d,%d) cycles=%d", seg.Label, seg.From, seg.To, seg.Cycles)
		}
		cursor = seg.To
		sum += seg.Cycles
	}
	if sum != rep.CriticalLatency {
		t.Errorf("segments sum to %d cycles, critical latency is %d", sum, rep.CriticalLatency)
	}
	// The walk must include real stage work, not only waits.
	if !strings.Contains(rep.String(), "group") {
		t.Errorf("no stage-group leg in critical path:\n%s", rep.String())
	}
}
