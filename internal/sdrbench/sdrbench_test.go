package sdrbench

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"ceresz/internal/lorenzo"
)

func TestParseName(t *testing.T) {
	cases := []struct {
		path  string
		name  string
		dims  lorenzo.Dims
		isF64 bool
		err   bool
	}{
		{"CLDHGH_1_1800_3600.f32", "CLDHGH", lorenzo.Dims2(3600, 1800), false, false},
		{"velocity_x_512_512_512.f32", "velocity_x", lorenzo.Dims3(512, 512, 512), false, false},
		{"xx_280953867.f32", "xx", lorenzo.Dims1(280953867), false, false},
		{"einspline_288_115_69_69.f64", "einspline_288", lorenzo.Dims3(69, 69, 115), true, false},
		{"plain.f32", "plain", lorenzo.Dims{}, false, false},
		{"whatever.txt", "", lorenzo.Dims{}, false, true},
		{"QCLOUDf48_500_500_100.bin", "QCLOUDf48", lorenzo.Dims3(100, 500, 500), false, false},
	}
	for _, c := range cases {
		name, dims, isF64, err := ParseName(c.path)
		if c.err {
			if err == nil {
				t.Fatalf("%s: expected error", c.path)
			}
			continue
		}
		if err != nil {
			t.Fatalf("%s: %v", c.path, err)
		}
		if name != c.name || dims != c.dims || isF64 != c.isF64 {
			t.Fatalf("%s: got (%q, %+v, %v), want (%q, %+v, %v)",
				c.path, name, dims, isF64, c.name, c.dims, c.isF64)
		}
	}
}

func TestRoundTripFiles(t *testing.T) {
	dir := t.TempDir()
	f32 := []float32{1.5, -2.25, 0, float32(math.Pi)}
	p32 := filepath.Join(dir, "field_1_2_2.f32")
	if err := WriteF32(p32, f32); err != nil {
		t.Fatal(err)
	}
	field, data, err := Load(p32)
	if err != nil {
		t.Fatal(err)
	}
	if field.Name != "field" || field.Dims != lorenzo.Dims2(2, 2) {
		t.Fatalf("field %+v", field)
	}
	for i := range f32 {
		if data[i] != f32[i] {
			t.Fatalf("f32 roundtrip differs at %d", i)
		}
	}

	f64 := []float64{math.E, -1e300, 42}
	p64 := filepath.Join(dir, "double_3.f64")
	if err := WriteF64(p64, f64); err != nil {
		t.Fatal(err)
	}
	field64, data64, err := Load64(p64)
	if err != nil {
		t.Fatal(err)
	}
	if !field64.Float64 || field64.Dims != lorenzo.Dims1(3) {
		t.Fatalf("field64 %+v", field64)
	}
	for i := range f64 {
		if data64[i] != f64[i] {
			t.Fatalf("f64 roundtrip differs at %d", i)
		}
	}

	// Wrong loader for the type.
	if _, _, err := Load(p64); err == nil {
		t.Fatal("Load accepted an f64 file")
	}
	if _, _, err := Load64(p32); err == nil {
		t.Fatal("Load64 accepted an f32 file")
	}
}

func TestLoadSizeMismatch(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "bad_4_4.f32")
	if err := WriteF32(p, make([]float32, 10)); err != nil { // name says 16
		t.Fatal(err)
	}
	if _, _, err := Load(p); err == nil {
		t.Fatal("accepted dims/size mismatch")
	}
	// Non-multiple-of-4 file.
	p2 := filepath.Join(dir, "odd_3.f32")
	if err := os.WriteFile(p2, []byte{1, 2, 3, 4, 5}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadF32(p2); err == nil {
		t.Fatal("accepted 5-byte f32 file")
	}
}

func TestScan(t *testing.T) {
	dir := t.TempDir()
	if err := WriteF32(filepath.Join(dir, "a_2_2.f32"), make([]float32, 4)); err != nil {
		t.Fatal(err)
	}
	if err := WriteF64(filepath.Join(dir, "b_3.f64"), make([]float64, 3)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "README.md"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	fields, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(fields) != 2 {
		t.Fatalf("scanned %d fields, want 2", len(fields))
	}
	if _, err := Scan(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("Scan accepted a missing directory")
	}
}
