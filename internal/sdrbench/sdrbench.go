// Package sdrbench reads and writes the raw binary field files used by the
// SDRBench archives the paper evaluates (little-endian float32/float64
// arrays with out-of-band dimensions, conventionally named like
// CLDHGH_1_1800_3600.f32). When the real archives are available this
// package feeds them to the compressors; otherwise internal/datasets
// synthesizes stand-ins.
package sdrbench

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"

	"ceresz/internal/lorenzo"
)

// Field is one on-disk field.
type Field struct {
	// Path is the file location.
	Path string
	// Name is the field name parsed from the file name.
	Name string
	// Dims is the grid, parsed from the file name when it follows the
	// name_[dims...].f32 convention, else 1D.
	Dims lorenzo.Dims
	// Float64 marks a double-precision file (.f64).
	Float64 bool
}

// dimsPattern matches trailing _d1_d2[_d3] before the extension.
var dimsPattern = regexp.MustCompile(`^(.*?)_(\d+)(?:_(\d+))?(?:_(\d+))?$`)

// ParseName extracts the field name and dims from an SDRBench-style file
// name such as "CLDHGH_1_1800_3600.f32" (dims are listed slowest-first in
// the convention; we return them with Nx fastest).
func ParseName(path string) (name string, d lorenzo.Dims, isF64 bool, err error) {
	base := filepath.Base(path)
	ext := strings.ToLower(filepath.Ext(base))
	switch ext {
	case ".f32", ".dat", ".bin":
	case ".f64", ".d64":
		isF64 = true
	default:
		return "", d, false, fmt.Errorf("sdrbench: unrecognized extension %q", ext)
	}
	stem := strings.TrimSuffix(base, filepath.Ext(base))
	m := dimsPattern.FindStringSubmatch(stem)
	if m == nil {
		return stem, lorenzo.Dims{}, isF64, nil
	}
	var sizes []int
	for _, g := range m[2:] {
		if g == "" {
			continue
		}
		v, err := strconv.Atoi(g)
		if err != nil || v <= 0 {
			return stem, lorenzo.Dims{}, isF64, nil
		}
		sizes = append(sizes, v)
	}
	// Drop a leading "1" (the archives often prefix a unit dimension).
	if len(sizes) > 1 && sizes[0] == 1 {
		sizes = sizes[1:]
	}
	switch len(sizes) {
	case 1:
		d = lorenzo.Dims1(sizes[0])
	case 2:
		// Slowest-first in the name: name_NY_NX.
		d = lorenzo.Dims2(sizes[1], sizes[0])
	case 3:
		d = lorenzo.Dims3(sizes[2], sizes[1], sizes[0])
	default:
		return stem, lorenzo.Dims{}, isF64, nil
	}
	return m[1], d, isF64, nil
}

// ReadF32 loads a raw little-endian float32 file.
func ReadF32(path string) ([]float32, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw)%4 != 0 {
		return nil, fmt.Errorf("sdrbench: %s: %d bytes is not a float32 array", path, len(raw))
	}
	out := make([]float32, len(raw)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return out, nil
}

// ReadF64 loads a raw little-endian float64 file.
func ReadF64(path string) ([]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw)%8 != 0 {
		return nil, fmt.Errorf("sdrbench: %s: %d bytes is not a float64 array", path, len(raw))
	}
	out := make([]float64, len(raw)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return out, nil
}

// WriteF32 writes a raw little-endian float32 file.
func WriteF32(path string, data []float32) error {
	raw := make([]byte, 4*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint32(raw[4*i:], math.Float32bits(v))
	}
	return os.WriteFile(path, raw, 0o644)
}

// WriteF64 writes a raw little-endian float64 file.
func WriteF64(path string, data []float64) error {
	raw := make([]byte, 8*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint64(raw[8*i:], math.Float64bits(v))
	}
	return os.WriteFile(path, raw, 0o644)
}

// Load reads a field file and validates its size against the dims encoded
// in its name (when present). The returned Field's Dims falls back to 1D
// of the element count when the name carries no dims.
func Load(path string) (Field, []float32, error) {
	name, d, isF64, err := ParseName(path)
	if err != nil {
		return Field{}, nil, err
	}
	if isF64 {
		return Field{}, nil, fmt.Errorf("sdrbench: %s is float64; use Load64", path)
	}
	data, err := ReadF32(path)
	if err != nil {
		return Field{}, nil, err
	}
	f := Field{Path: path, Name: name, Dims: d}
	if f.Dims.Len() == 0 || f.Dims == (lorenzo.Dims{}) {
		f.Dims = lorenzo.Dims1(len(data))
	} else if f.Dims.Len() != len(data) {
		return Field{}, nil, fmt.Errorf("sdrbench: %s: name says %d elements, file has %d",
			path, f.Dims.Len(), len(data))
	}
	return f, data, nil
}

// Load64 reads a float64 field file.
func Load64(path string) (Field, []float64, error) {
	name, d, isF64, err := ParseName(path)
	if err != nil {
		return Field{}, nil, err
	}
	if !isF64 {
		return Field{}, nil, fmt.Errorf("sdrbench: %s is float32; use Load", path)
	}
	data, err := ReadF64(path)
	if err != nil {
		return Field{}, nil, err
	}
	f := Field{Path: path, Name: name, Dims: d, Float64: true}
	if f.Dims.Len() == 0 || f.Dims == (lorenzo.Dims{}) {
		f.Dims = lorenzo.Dims1(len(data))
	} else if f.Dims.Len() != len(data) {
		return Field{}, nil, fmt.Errorf("sdrbench: %s: name says %d elements, file has %d",
			path, f.Dims.Len(), len(data))
	}
	return f, data, nil
}

// Scan lists the field files under dir (non-recursive), sorted by name.
func Scan(dir string) ([]Field, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []Field
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name, d, isF64, err := ParseName(e.Name())
		if err != nil {
			continue // not a field file
		}
		out = append(out, Field{
			Path:    filepath.Join(dir, e.Name()),
			Name:    name,
			Dims:    d,
			Float64: isF64,
		})
	}
	return out, nil
}
