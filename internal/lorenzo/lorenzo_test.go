package lorenzo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestForwardPaperExample(t *testing.T) {
	// Paper Fig. 5(a): the first-order difference of a quantized block.
	in := []int32{4, 6, 7, 7, 5, 2, -3, -8}
	want := []int32{4, 2, 1, 0, -2, -3, -5, -5}
	out := make([]int32, len(in))
	Forward(out, in)
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out[%d] = %d, want %d", i, out[i], want[i])
		}
	}
}

func TestInverseIsPrefixSum(t *testing.T) {
	in := []int32{4, 2, 1, 0, -2, -3, -5, -5}
	want := []int32{4, 6, 7, 7, 5, 2, -3, -8}
	out := make([]int32, len(in))
	Inverse(out, in)
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out[%d] = %d, want %d", i, out[i], want[i])
		}
	}
}

func TestForwardInverseInPlace(t *testing.T) {
	v := []int32{10, -3, 0, 7, 7, 7, 100, -100}
	orig := append([]int32(nil), v...)
	Forward(v, v)
	Inverse(v, v)
	for i := range orig {
		if v[i] != orig[i] {
			t.Fatalf("in-place round trip broke at %d: %d != %d", i, v[i], orig[i])
		}
	}
}

func TestRoundTripWithOverflow(t *testing.T) {
	// Differences that overflow int32 must still round-trip via
	// two's-complement wraparound.
	v := []int32{math.MaxInt32, math.MinInt32, 0, math.MinInt32, math.MaxInt32}
	fwd := make([]int32, len(v))
	back := make([]int32, len(v))
	Forward(fwd, v)
	Inverse(back, fwd)
	for i := range v {
		if back[i] != v[i] {
			t.Fatalf("overflow round trip broke at %d: %d != %d", i, back[i], v[i])
		}
	}
}

func TestQuickRoundTrip1D(t *testing.T) {
	f := func(v []int32) bool {
		fwd := make([]int32, len(v))
		back := make([]int32, len(v))
		Forward(fwd, v)
		Inverse(back, fwd)
		for i := range v {
			if back[i] != v[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDims(t *testing.T) {
	d := Dims2(5, 4)
	if d.Len() != 20 || d.Order() != 2 {
		t.Fatalf("Dims2: len=%d order=%d", d.Len(), d.Order())
	}
	if Dims1(9).Order() != 1 || Dims3(2, 2, 2).Order() != 3 {
		t.Fatal("Order misclassifies")
	}
	if err := d.Validate(20); err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(19); err == nil {
		t.Fatal("Validate accepted wrong element count")
	}
	if err := (Dims{Nx: 0, Ny: 1, Nz: 1}).Validate(0); err == nil {
		t.Fatal("Validate accepted zero dim")
	}
}

func TestForward2DSmoothPlane(t *testing.T) {
	// A bilinear plane a + bx + cy has zero 2D-Lorenzo residual except on
	// the first row/column, where the boundary terms leak through.
	d := Dims2(8, 6)
	src := make([]int32, d.Len())
	for y := 0; y < d.Ny; y++ {
		for x := 0; x < d.Nx; x++ {
			src[y*d.Nx+x] = int32(3 + 2*x + 5*y)
		}
	}
	dst := make([]int32, d.Len())
	if err := Forward2D(dst, src, d); err != nil {
		t.Fatal(err)
	}
	for y := 1; y < d.Ny; y++ {
		for x := 1; x < d.Nx; x++ {
			if dst[y*d.Nx+x] != 0 {
				t.Fatalf("interior residual (%d,%d) = %d, want 0", x, y, dst[y*d.Nx+x])
			}
		}
	}
	back := make([]int32, d.Len())
	if err := Inverse2D(back, dst, d); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if back[i] != src[i] {
			t.Fatalf("2D round trip broke at %d", i)
		}
	}
}

func TestForward3DRoundTrip(t *testing.T) {
	d := Dims3(4, 3, 5)
	src := make([]int32, d.Len())
	for i := range src {
		src[i] = int32((i*2654435761 + 17) % 1000)
	}
	res := make([]int32, d.Len())
	back := make([]int32, d.Len())
	if err := Forward3D(res, src, d); err != nil {
		t.Fatal(err)
	}
	if err := Inverse3D(back, res, d); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if back[i] != src[i] {
			t.Fatalf("3D round trip broke at %d: %d != %d", i, back[i], src[i])
		}
	}
}

func TestForward3DTrilinearInteriorZero(t *testing.T) {
	d := Dims3(5, 5, 5)
	src := make([]int32, d.Len())
	for z := 0; z < d.Nz; z++ {
		for y := 0; y < d.Ny; y++ {
			for x := 0; x < d.Nx; x++ {
				src[(z*d.Ny+y)*d.Nx+x] = int32(1 + x + 2*y + 3*z)
			}
		}
	}
	res := make([]int32, d.Len())
	if err := Forward3D(res, src, d); err != nil {
		t.Fatal(err)
	}
	for z := 1; z < d.Nz; z++ {
		for y := 1; y < d.Ny; y++ {
			for x := 1; x < d.Nx; x++ {
				if r := res[(z*d.Ny+y)*d.Nx+x]; r != 0 {
					t.Fatalf("interior residual (%d,%d,%d) = %d, want 0", x, y, z, r)
				}
			}
		}
	}
}

func TestQuickRoundTrip2D(t *testing.T) {
	f := func(vals []int32) bool {
		// Shape the fuzz input into a 2D grid.
		nx := 4
		ny := len(vals) / nx
		if ny == 0 {
			return true
		}
		src := vals[:nx*ny]
		d := Dims2(nx, ny)
		res := make([]int32, len(src))
		back := make([]int32, len(src))
		if err := Forward2D(res, src, d); err != nil {
			return false
		}
		if err := Inverse2D(back, res, d); err != nil {
			return false
		}
		for i := range src {
			if back[i] != src[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDimMismatchErrors(t *testing.T) {
	d := Dims2(4, 4)
	src := make([]int32, 16)
	if err := Forward2D(make([]int32, 15), src, d); err == nil {
		t.Fatal("Forward2D accepted dst length mismatch")
	}
	if err := Forward2D(make([]int32, 16), make([]int32, 15), d); err == nil {
		t.Fatal("Forward2D accepted src/dims mismatch")
	}
	d3 := Dims3(2, 2, 4)
	if err := Forward2D(make([]int32, 16), src, d3); err == nil {
		t.Fatal("Forward2D accepted 3D dims")
	}
}
