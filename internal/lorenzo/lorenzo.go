// Package lorenzo implements Lorenzo prediction over quantized integer
// codes. CereSZ (paper §3, step ②) uses the 1D first-order variant: the
// output of prediction is the first-order difference of the block,
//
//	(p₁, p₂−p₁, …, p_L−p_{L−1}),
//
// and its inverse is a sequential prefix sum within the block. Higher-order
// 2D/3D Lorenzo predictors — used by the cuSZ and SZ3-like baselines, not by
// CereSZ itself — are provided as well.
//
// All arithmetic is carried out in two's-complement int32 with wraparound;
// Forward followed by Inverse is the identity for every input, including
// inputs whose differences overflow.
package lorenzo

import "fmt"

// Forward writes the first-order difference of src into dst.
// dst and src must have equal length; dst may alias src.
func Forward(dst, src []int32) {
	if len(dst) != len(src) {
		panic("lorenzo: Forward length mismatch")
	}
	prev := int32(0)
	for i, v := range src {
		dst[i] = v - prev
		prev = v
	}
}

// Inverse reconstructs the original codes from first-order differences via
// a prefix sum. dst and src must have equal length; dst may alias src.
func Inverse(dst, src []int32) {
	if len(dst) != len(src) {
		panic("lorenzo: Inverse length mismatch")
	}
	acc := int32(0)
	for i, v := range src {
		acc += v
		dst[i] = acc
	}
}

// Dims describes a row-major 1D/2D/3D grid: Nz × Ny × Nx with Nx fastest.
// Unused dimensions are 1.
type Dims struct {
	Nx, Ny, Nz int
}

// Len returns the total number of elements.
func (d Dims) Len() int { return d.Nx * d.Ny * d.Nz }

// Order returns the spatial dimensionality implied by the dims (1, 2 or 3).
func (d Dims) Order() int {
	switch {
	case d.Nz > 1:
		return 3
	case d.Ny > 1:
		return 2
	default:
		return 1
	}
}

// Validate checks that the dims are positive and match n elements.
func (d Dims) Validate(n int) error {
	if d.Nx <= 0 || d.Ny <= 0 || d.Nz <= 0 {
		return fmt.Errorf("lorenzo: non-positive dims %+v", d)
	}
	if d.Len() != n {
		return fmt.Errorf("lorenzo: dims %+v describe %d elements, data has %d", d, d.Len(), n)
	}
	return nil
}

// Dims1 returns 1D dims of length n.
func Dims1(n int) Dims { return Dims{Nx: n, Ny: 1, Nz: 1} }

// Dims2 returns 2D dims (ny rows × nx cols).
func Dims2(nx, ny int) Dims { return Dims{Nx: nx, Ny: ny, Nz: 1} }

// Dims3 returns 3D dims.
func Dims3(nx, ny, nz int) Dims { return Dims{Nx: nx, Ny: ny, Nz: nz} }

// Forward2D applies the 2D Lorenzo predictor residual transform:
// r(x,y) = p(x,y) − p(x−1,y) − p(x,y−1) + p(x−1,y−1), with out-of-grid
// neighbors treated as zero. dst must not alias src.
func Forward2D(dst, src []int32, d Dims) error {
	if err := d.Validate(len(src)); err != nil {
		return err
	}
	if d.Nz != 1 {
		return fmt.Errorf("lorenzo: Forward2D on 3D dims %+v", d)
	}
	if len(dst) != len(src) {
		return fmt.Errorf("lorenzo: Forward2D length mismatch")
	}
	at := func(x, y int) int32 {
		if x < 0 || y < 0 {
			return 0
		}
		return src[y*d.Nx+x]
	}
	for y := 0; y < d.Ny; y++ {
		for x := 0; x < d.Nx; x++ {
			dst[y*d.Nx+x] = at(x, y) - at(x-1, y) - at(x, y-1) + at(x-1, y-1)
		}
	}
	return nil
}

// Inverse2D inverts Forward2D. dst must not alias src.
func Inverse2D(dst, src []int32, d Dims) error {
	if err := d.Validate(len(src)); err != nil {
		return err
	}
	if d.Nz != 1 {
		return fmt.Errorf("lorenzo: Inverse2D on 3D dims %+v", d)
	}
	if len(dst) != len(src) {
		return fmt.Errorf("lorenzo: Inverse2D length mismatch")
	}
	at := func(x, y int) int32 {
		if x < 0 || y < 0 {
			return 0
		}
		return dst[y*d.Nx+x]
	}
	for y := 0; y < d.Ny; y++ {
		for x := 0; x < d.Nx; x++ {
			dst[y*d.Nx+x] = src[y*d.Nx+x] + at(x-1, y) + at(x, y-1) - at(x-1, y-1)
		}
	}
	return nil
}

// Forward3D applies the 3D Lorenzo predictor residual transform with
// inclusion-exclusion over the 7 causal neighbors. dst must not alias src.
func Forward3D(dst, src []int32, d Dims) error {
	if err := d.Validate(len(src)); err != nil {
		return err
	}
	if len(dst) != len(src) {
		return fmt.Errorf("lorenzo: Forward3D length mismatch")
	}
	at := func(x, y, z int) int32 {
		if x < 0 || y < 0 || z < 0 {
			return 0
		}
		return src[(z*d.Ny+y)*d.Nx+x]
	}
	for z := 0; z < d.Nz; z++ {
		for y := 0; y < d.Ny; y++ {
			for x := 0; x < d.Nx; x++ {
				pred := at(x-1, y, z) + at(x, y-1, z) + at(x, y, z-1) -
					at(x-1, y-1, z) - at(x-1, y, z-1) - at(x, y-1, z-1) +
					at(x-1, y-1, z-1)
				dst[(z*d.Ny+y)*d.Nx+x] = at(x, y, z) - pred
			}
		}
	}
	return nil
}

// Inverse3D inverts Forward3D. dst must not alias src.
func Inverse3D(dst, src []int32, d Dims) error {
	if err := d.Validate(len(src)); err != nil {
		return err
	}
	if len(dst) != len(src) {
		return fmt.Errorf("lorenzo: Inverse3D length mismatch")
	}
	at := func(x, y, z int) int32 {
		if x < 0 || y < 0 || z < 0 {
			return 0
		}
		return dst[(z*d.Ny+y)*d.Nx+x]
	}
	for z := 0; z < d.Nz; z++ {
		for y := 0; y < d.Ny; y++ {
			for x := 0; x < d.Nx; x++ {
				pred := at(x-1, y, z) + at(x, y-1, z) + at(x, y, z-1) -
					at(x-1, y-1, z) - at(x-1, y, z-1) - at(x, y-1, z-1) +
					at(x-1, y-1, z-1)
				dst[(z*d.Ny+y)*d.Nx+x] = src[(z*d.Ny+y)*d.Nx+x] + pred
			}
		}
	}
	return nil
}
