package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Backend health: a background poller per proxy hits each backend's
// /healthz/ready on an interval, parses the PR-10 readiness body (ok /
// degraded-with-SLO-detail / starting / draining), and drives a small
// state machine:
//
//	Healthy  — 200 {"status":"ok"}: full ring weight.
//	Degraded — 200 {"status":"degraded",...}: still serving, but an SLO
//	           is burning; stays on the ring at reduced weight so it
//	           sheds share without a routing cliff.
//	Unready  — 503 (starting or draining): off the ring immediately —
//	           a draining backend told us to stop routing to it; no
//	           failure threshold applies.
//	Dead     — FailAfter consecutive probe/transport failures: off the
//	           ring. The proxy's own forwarding errors count here too
//	           (ReportFailure), so a crashed backend is ejected at
//	           traffic speed rather than poll speed.
//
// Any state change rebuilds the ring through the onChange callback; the
// swap is atomic and in-flight requests keep the backend they already
// resolved, so rebalancing never drops work.

// BackendState is one backend's position in the health state machine.
type BackendState int32

const (
	StateHealthy BackendState = iota
	StateDegraded
	StateUnready
	StateDead
)

func (s BackendState) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateDegraded:
		return "degraded"
	case StateUnready:
		return "unready"
	case StateDead:
		return "dead"
	}
	return "unknown"
}

// Routable reports whether the state keeps the backend on the ring.
func (s BackendState) Routable() bool { return s == StateHealthy || s == StateDegraded }

// readyBody is the decoded /healthz/ready readiness document (the same
// shape client.Readiness parses; duplicated here to keep internal/cluster
// free of the public client package).
type readyBody struct {
	Status string `json:"status"`
}

// HealthConfig tunes the checker.
type HealthConfig struct {
	// Interval between probe rounds (0 = 1s).
	Interval time.Duration
	// Timeout per probe (0 = Interval/2, min 100ms).
	Timeout time.Duration
	// FailAfter is the consecutive-failure count that declares a backend
	// dead (0 = 3).
	FailAfter int
	// Client issues the probes (nil = a fresh http.Client; the proxy
	// passes its own transport so probes share connection pools).
	Client *http.Client
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = c.Interval / 2
		if c.Timeout < 100*time.Millisecond {
			c.Timeout = 100 * time.Millisecond
		}
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 3
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return c
}

// backendHealth is one backend's live health record.
type backendHealth struct {
	url   string // canonical base URL
	state atomic.Int32
	// fails counts consecutive probe/forward failures; any success resets.
	fails atomic.Int32

	mu        sync.Mutex
	lastErr   string
	lastProbe time.Time
}

// Checker polls a fixed backend set. Create with newChecker, then Start;
// Stop halts the pollers (idempotent).
type Checker struct {
	cfg      HealthConfig
	backends []*backendHealth
	// onChange runs after any state transition (under no locks); the
	// proxy rebuilds its ring here.
	onChange func()
	// kick wakes the poll loop early (proxy-reported failures).
	kick    chan struct{}
	stop    chan struct{}
	done    chan struct{}
	started atomic.Bool
	probes  atomic.Int64 // total probes issued, for tests and /debug/ring
}

// newChecker builds a checker over urls. Backends start Healthy so a
// proxy serves immediately; the first probe round corrects any that are
// not (callers wanting strict start-up gating can probe once before
// serving).
func newChecker(urls []string, cfg HealthConfig, onChange func()) *Checker {
	c := &Checker{
		cfg:      cfg.withDefaults(),
		onChange: onChange,
		kick:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, u := range urls {
		c.backends = append(c.backends, &backendHealth{url: u})
	}
	return c
}

// State reports backend i's current health.
func (c *Checker) State(i int) BackendState {
	return BackendState(c.backends[i].state.Load())
}

// setState transitions backend i, returning whether the state changed.
func (c *Checker) setState(i int, s BackendState) bool {
	return c.backends[i].state.Swap(int32(s)) != int32(s)
}

// ReportFailure records a proxy-side forwarding failure (connect error,
// mid-request reset) against backend i — the traffic path is a probe too.
// Reaching the failure threshold ejects the backend immediately and a
// probe round is kicked so recovery detection keeps its cadence.
func (c *Checker) ReportFailure(i int, err error) {
	b := c.backends[i]
	b.mu.Lock()
	b.lastErr = err.Error()
	b.mu.Unlock()
	fails := b.fails.Add(1)
	if int(fails) >= c.cfg.FailAfter && c.setState(i, StateDead) {
		c.onChange()
	}
	select {
	case c.kick <- struct{}{}:
	default:
	}
}

// ReportSuccess records a proxy-side forwarded success: a backend that is
// answering traffic is not dead, whatever a stale probe said. It does not
// upgrade Unready/Degraded — those are the backend's own declarations.
func (c *Checker) ReportSuccess(i int) {
	b := c.backends[i]
	b.fails.Store(0)
	if BackendState(b.state.Load()) == StateDead && c.setState(i, StateHealthy) {
		c.onChange()
	}
}

// Start launches the poll loop: one round immediately, then every
// Interval (or sooner when kicked). Calling Start twice is a no-op.
func (c *Checker) Start() {
	if !c.started.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer close(c.done)
		t := time.NewTicker(c.cfg.Interval)
		defer t.Stop()
		c.probeAll()
		for {
			select {
			case <-c.stop:
				return
			case <-t.C:
			case <-c.kick:
			}
			c.probeAll()
		}
	}()
}

// Stop halts the poll loop and waits for it to exit. Safe to call any
// number of times, including on a checker that was never started.
func (c *Checker) Stop() {
	select {
	case <-c.stop:
	default:
		close(c.stop)
	}
	if c.started.Load() {
		<-c.done
	}
}

// probeAll probes every backend concurrently and applies transitions.
// Probes run in parallel so one hung backend cannot starve detection of
// the others; the per-probe timeout bounds the round.
func (c *Checker) probeAll() {
	var wg sync.WaitGroup
	for i := range c.backends {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c.probe(i)
		}(i)
	}
	wg.Wait()
}

// probe hits one backend's readiness endpoint and applies the transition
// rules. Success of any kind (a well-formed readiness answer, 200 or 503)
// resets the failure counter — the process is alive and talking; only
// transport-level failures and garbage count toward Dead.
func (c *Checker) probe(i int) {
	b := c.backends[i]
	c.probes.Add(1)
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/healthz/ready", nil)
	if err != nil {
		c.fail(i, err)
		return
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		c.fail(i, err)
		return
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	resp.Body.Close()
	var rd readyBody
	_ = json.Unmarshal(body, &rd)

	b.mu.Lock()
	b.lastProbe = time.Now()
	b.lastErr = ""
	b.mu.Unlock()
	b.fails.Store(0)

	var next BackendState
	switch {
	case resp.StatusCode == http.StatusOK && rd.Status == "degraded":
		next = StateDegraded
	case resp.StatusCode == http.StatusOK:
		next = StateHealthy
	case resp.StatusCode == http.StatusServiceUnavailable:
		// Starting or draining: the backend itself asked to be left out.
		next = StateUnready
	default:
		// An unexpected status is not a liveness failure, but it is not a
		// readiness signal either; treat like unready.
		next = StateUnready
	}
	if c.setState(i, next) {
		c.onChange()
	}
}

// fail records one probe failure and applies the Dead threshold.
func (c *Checker) fail(i int, err error) {
	b := c.backends[i]
	b.mu.Lock()
	b.lastProbe = time.Now()
	b.lastErr = err.Error()
	b.mu.Unlock()
	if int(b.fails.Add(1)) >= c.cfg.FailAfter && c.setState(i, StateDead) {
		c.onChange()
	}
}

// healthSnapshot is one backend's state for /debug/ring.
type healthSnapshot struct {
	State     BackendState
	Fails     int32
	LastErr   string
	LastProbe time.Time
}

// snapshot reads backend i's health record.
func (c *Checker) snapshot(i int) healthSnapshot {
	b := c.backends[i]
	b.mu.Lock()
	defer b.mu.Unlock()
	return healthSnapshot{
		State:     BackendState(b.state.Load()),
		Fails:     b.fails.Load(),
		LastErr:   b.lastErr,
		LastProbe: b.lastProbe,
	}
}
