package cluster

import (
	"fmt"
	"testing"
	"time"
)

func TestTenantLimiterBurstAndRefill(t *testing.T) {
	l := NewTenantLimiter(10, 2, 0) // 10 rps, burst 2
	now := time.Unix(1000, 0)
	for i := 0; i < 2; i++ {
		if ok, _ := l.Allow("acme", now); !ok {
			t.Fatalf("request %d within burst refused", i)
		}
	}
	ok, wait := l.Allow("acme", now)
	if ok {
		t.Fatal("request past burst admitted")
	}
	// Empty bucket at 10 rps: one token accrues in 100ms.
	if wait <= 0 || wait > 100*time.Millisecond {
		t.Fatalf("Retry-After %v, want (0, 100ms]", wait)
	}
	// After the wait the bucket holds exactly one token again.
	if ok, _ := l.Allow("acme", now.Add(wait)); !ok {
		t.Fatal("request refused after the advertised wait")
	}
}

func TestTenantLimiterIsolation(t *testing.T) {
	l := NewTenantLimiter(1, 1, 0)
	now := time.Unix(1000, 0)
	if ok, _ := l.Allow("a", now); !ok {
		t.Fatal("tenant a refused its burst")
	}
	if ok, _ := l.Allow("a", now); ok {
		t.Fatal("tenant a admitted past its budget")
	}
	// Tenant b has its own bucket, untouched by a's spending.
	if ok, _ := l.Allow("b", now); !ok {
		t.Fatal("tenant b throttled by tenant a's traffic")
	}
	// The untagged tenant "" is a tenant too.
	if ok, _ := l.Allow("", now); !ok {
		t.Fatal("untagged traffic refused its own burst")
	}
	if ok, _ := l.Allow("", now); ok {
		t.Fatal("untagged traffic admitted past its shared bucket")
	}
}

func TestTenantLimiterDisabled(t *testing.T) {
	l := NewTenantLimiter(0, 0, 0)
	if l.Enabled() {
		t.Fatal("rate 0 limiter reports enabled")
	}
	now := time.Unix(1000, 0)
	for i := 0; i < 100; i++ {
		if ok, _ := l.Allow("anyone", now); !ok {
			t.Fatal("disabled limiter refused a request")
		}
	}
	if l.Tenants() != 0 {
		t.Fatal("disabled limiter allocated buckets")
	}
}

func TestTenantLimiterEviction(t *testing.T) {
	l := NewTenantLimiter(1, 1, 4)
	now := time.Unix(1000, 0)
	for i := 0; i < 4; i++ {
		l.Allow(fmt.Sprintf("t%d", i), now.Add(time.Duration(i)*time.Second))
	}
	if l.Tenants() != 4 {
		t.Fatalf("tenants = %d, want 4", l.Tenants())
	}
	// A fifth tenant evicts the idle half.
	l.Allow("t4", now.Add(10*time.Second))
	if got := l.Tenants(); got > 4 {
		t.Fatalf("tenants = %d after eviction, want <= 4", got)
	}
}

func TestAdmitterCapacity(t *testing.T) {
	a := newAdmitter(2, 1)
	r1 := a.tryAdmit(false)
	r2 := a.tryAdmit(false)
	if r1 == nil || r2 == nil {
		t.Fatal("admission refused within capacity")
	}
	if a.tryAdmit(false) != nil {
		t.Fatal("admission granted past capacity")
	}
	r1()
	if r := a.tryAdmit(false); r == nil {
		t.Fatal("admission refused after release")
	} else {
		r()
	}
	r2()
}

func TestAdmitterLowPriorityCap(t *testing.T) {
	a := newAdmitter(4, 1)
	low1 := a.tryAdmit(true)
	if low1 == nil {
		t.Fatal("first low-priority request refused on an idle pool")
	}
	// The low class is capped at 1 slot even though 3 remain free.
	if a.tryAdmit(true) != nil {
		t.Fatal("low-priority admitted past its cap")
	}
	// High priority still sees the whole pool.
	var highs []func()
	for i := 0; i < 3; i++ {
		h := a.tryAdmit(false)
		if h == nil {
			t.Fatalf("high-priority request %d refused with slots free", i)
		}
		highs = append(highs, h)
	}
	if a.tryAdmit(false) != nil {
		t.Fatal("high-priority admitted past pool capacity")
	}
	// Releasing the low slot lets low in again.
	low1()
	low2 := a.tryAdmit(true)
	if low2 == nil {
		t.Fatal("low-priority refused after its slot freed")
	}
	low2()
	for _, h := range highs {
		h()
	}
}

func TestAdmitterLowSharesPoolWithHigh(t *testing.T) {
	// lowMax 2 but pool exhausted by high traffic: low is refused by the
	// semaphore, and the double-gate unwinds its class count so a later
	// low attempt (after drain) still works.
	a := newAdmitter(2, 2)
	h1, h2 := a.tryAdmit(false), a.tryAdmit(false)
	if a.tryAdmit(true) != nil {
		t.Fatal("low admitted into a full pool")
	}
	h1()
	h2()
	if r := a.tryAdmit(true); r == nil {
		t.Fatal("low refused after pool drained (class counter leaked)")
	} else {
		r()
	}
}
