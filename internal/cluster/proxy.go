package cluster

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ceresz/internal/chunkcache"
	"ceresz/internal/telemetry"
)

// ErrPartialForward reports an upstream failure after part of a
// non-replayable request body was already forwarded: retrying would
// silently resend a request whose first delivery may have partially
// executed, so the proxy refuses and surfaces the condition instead. The
// error text rides the 502 body; clients treat the status as retryable
// and re-send the full body themselves — an end-to-end retry the client
// owns, not a silent proxy-side one.
var ErrPartialForward = errors.New("cluster: upstream failed after request body was partially forwarded; not retried")

// failoverRetries bounds ring-walk retries per request: the next distinct
// owner, once. A second hop would usually just queue behind the same
// incident; the client's own retry (with jittered backoff) covers it.
const failoverRetries = 1

// Config tunes a Proxy.
type Config struct {
	// Backends are the cereszd base URLs the proxy shards across.
	Backends []string
	// Vnodes is the virtual-node count per healthy backend (0 = 64).
	Vnodes int
	// DegradedVnodes is the weight of a degraded backend (0 = Vnodes/4,
	// min 1): still on the ring, but shedding share.
	DegradedVnodes int
	// Workers bounds concurrently proxied requests (0 = 8×GOMAXPROCS —
	// the proxy is I/O-bound, so it runs far wider than a codec pool).
	Workers int
	// LowShare is the fraction of Workers the low-priority class
	// (X-Ceresz-Priority: low) may hold (0 = 0.5).
	LowShare float64
	// TenantRate is the per-tenant admission rate in requests/second
	// (0 = tenant limiting off); TenantBurst is the bucket capacity
	// (0 = max(1, TenantRate)); MaxTenants bounds the bucket table.
	TenantRate  float64
	TenantBurst int
	MaxTenants  int
	// Health tunes the readiness pollers.
	Health HealthConfig
	// ReplayBytes is how much request body the proxy buffers: bodies at
	// or under it are replayable, so upstream failures fail over to the
	// next ring owner transparently; larger bodies stream past the
	// buffer and failover is refused once unbuffered bytes have been
	// forwarded (0 = 4 MiB).
	ReplayBytes int
	// ChunkElems is the compress-side routing chunk when the request
	// does not pass ?chunk= — must match the backends' -chunk for
	// digest/cache-key agreement (0 = 64 Ki).
	ChunkElems int
	// BlockLen mirrors the backends' -block flag into the routing digest
	// (0 = the codec default, matching cereszd's own default).
	BlockLen int
	// RetryAfter is the hint sent with proxy-origin 429/503 (0 = 1s).
	// Backend-origin 429s pass through with the backend's own hint.
	RetryAfter time.Duration
	// RandomRoute replaces digest routing with per-request random owner
	// selection — the affinity-off baseline for benchmarks; failover
	// semantics are unchanged.
	RandomRoute bool
	// Transport issues backend requests (nil = a pooled clone of
	// http.DefaultTransport sized to Workers).
	Transport http.RoundTripper
	// Registry receives the proxy's instruments (nil = telemetry.Default).
	Registry *telemetry.Registry
	// RollupInterval / RollupWindows / Objectives / SLODegradedBurn are
	// the PR-10 fleet-health layer, unchanged on this tier: windowed
	// rollups over the proxy's registry, SLOs (ParseObjectives) over the
	// proxy's own RED instruments, degraded detail on readiness.
	RollupInterval  time.Duration
	RollupWindows   int
	Objectives      []telemetry.Objective
	SLODegradedBurn float64
}

func (c Config) withDefaults() Config {
	if c.Vnodes <= 0 {
		c.Vnodes = 64
	}
	if c.DegradedVnodes <= 0 {
		c.DegradedVnodes = c.Vnodes / 4
		if c.DegradedVnodes < 1 {
			c.DegradedVnodes = 1
		}
	}
	if c.Workers <= 0 {
		c.Workers = 8 * runtime.GOMAXPROCS(0)
	}
	if c.LowShare <= 0 || c.LowShare > 1 {
		c.LowShare = 0.5
	}
	if c.ReplayBytes <= 0 {
		c.ReplayBytes = 4 << 20
	}
	if c.ChunkElems <= 0 {
		c.ChunkElems = 64 << 10
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Registry == nil {
		c.Registry = telemetry.Default
	}
	if c.Transport == nil {
		t := http.DefaultTransport.(*http.Transport).Clone()
		t.MaxIdleConnsPerHost = c.Workers
		if t.MaxIdleConns < c.Workers {
			t.MaxIdleConns = c.Workers
		}
		t.IdleConnTimeout = 90 * time.Second
		c.Transport = t
	}
	if c.RollupInterval == 0 && len(c.Objectives) > 0 {
		c.RollupInterval = 5 * time.Second
	}
	return c
}

// Proxy endpoints mirror the backend's, so the SLO subject names and the
// client package work unchanged against either tier.
const (
	epCompress = iota
	epDecompress
	epBundle
	numEndpoints
)

var epNames = [numEndpoints]string{"compress", "decompress", "bundle"}

// epMetrics is one endpoint's proxy-tier RED set, named proxy.<ep>.* so
// rollups, SLO binding and dashboards distinguish tiers at a glance.
type epMetrics struct {
	requests  *telemetry.Counter
	failures  *telemetry.Counter
	rejected  *telemetry.Counter
	throttled *telemetry.Counter
	status2xx *telemetry.Counter
	status4xx *telemetry.Counter
	status5xx *telemetry.Counter
	bytesIn   *telemetry.Counter
	bytesOut  *telemetry.Counter
	latencyUS *telemetry.Histogram
}

func newEpMetrics(reg *telemetry.Registry, name string) *epMetrics {
	m := &epMetrics{
		requests:  reg.Counter("proxy." + name + ".requests"),
		failures:  reg.Counter("proxy." + name + ".failures"),
		rejected:  reg.Counter("proxy." + name + ".rejected"),
		throttled: reg.Counter("proxy." + name + ".throttled"),
		status2xx: reg.Counter("proxy." + name + ".status_2xx"),
		status4xx: reg.Counter("proxy." + name + ".status_4xx"),
		status5xx: reg.Counter("proxy." + name + ".status_5xx"),
		bytesIn:   reg.Counter("proxy." + name + ".bytes_in"),
		bytesOut:  reg.Counter("proxy." + name + ".bytes_out"),
		latencyUS: reg.Histogram("proxy." + name + ".latency_us"),
	}
	for suffix, help := range map[string]string{
		"requests":   "Requests admitted by the proxy.",
		"failures":   "Requests that exhausted every ring owner or hit a non-replayable upstream failure.",
		"rejected":   "Requests refused 429 by proxy admission (worker pool or low-priority cap).",
		"throttled":  "Requests refused 429 by per-tenant rate limiting.",
		"status_2xx": "Responses relayed with a 2xx status.",
		"status_4xx": "Responses with a 4xx status (throttles and rejections included).",
		"status_5xx": "Responses with a 5xx status.",
		"bytes_in":   "Request body bytes forwarded upstream.",
		"bytes_out":  "Response body bytes relayed downstream.",
		"latency_us": "End-to-end proxy latency in microseconds.",
	} {
		reg.Describe("proxy."+name+"."+suffix, "/v1/"+name+" via cereszproxy: "+help)
	}
	return m
}

func (m *epMetrics) observeStatus(code int) {
	switch {
	case code >= 200 && code < 300:
		m.status2xx.Add(1)
	case code >= 400 && code < 500:
		m.status4xx.Add(1)
	case code >= 500:
		m.status5xx.Add(1)
	}
}

// backend is one upstream in the proxy's fixed table.
type backend struct {
	name string   // canonical base URL (scheme://host:port, no trailing /)
	u    *url.URL // parsed once

	requests  *telemetry.Counter
	failures  *telemetry.Counter
	status2xx *telemetry.Counter
	status4xx *telemetry.Counter
	status5xx *telemetry.Counter
	latencyUS *telemetry.Histogram
}

// Proxy is the shard router. Create with New, Start the health pollers,
// mount with Handler, Close on shutdown.
type Proxy struct {
	cfg      Config
	backends []*backend
	checker  *Checker
	ring     atomic.Pointer[Ring]
	// generation counts ring rebuilds; /debug/ring reports it so tests
	// and operators see churn.
	generation atomic.Int64
	limiter    *TenantLimiter
	admit      *admitter
	ready      atomic.Bool
	draining   atomic.Bool

	hashers sync.Pool // *chunkcache.Hasher
	bufs    sync.Pool // *[]byte, ReplayBytes+1 capacity
	copyBuf sync.Pool // *[]byte, 32 KiB response relay buffers

	mEp          [numEndpoints]*epMetrics
	ringRebuilds *telemetry.Counter
	failover     *telemetry.Counter
	failoverDeny *telemetry.Counter
	midstream    *telemetry.Counter
	routableG    *telemetry.Gauge
	tenantsG     *telemetry.Gauge

	rollup *telemetry.Rollup
	slo    *telemetry.SLOEngine
}

// New builds a Proxy over cfg.Backends (at least one required; URLs are
// normalized by trimming trailing slashes). The health checker is not
// started — call Start.
func New(cfg Config) (*Proxy, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, errors.New("cluster: no backends configured")
	}
	reg := cfg.Registry
	p := &Proxy{
		cfg:          cfg,
		limiter:      NewTenantLimiter(cfg.TenantRate, cfg.TenantBurst, cfg.MaxTenants),
		admit:        newAdmitter(cfg.Workers, int(float64(cfg.Workers)*cfg.LowShare)),
		ringRebuilds: reg.Counter("proxy.ring_rebuilds"),
		failover:     reg.Counter("proxy.failover"),
		failoverDeny: reg.Counter("proxy.failover_denied"),
		midstream:    reg.Counter("proxy.midstream_aborts"),
		routableG:    reg.Gauge("proxy.backends_routable"),
		tenantsG:     reg.Gauge("proxy.tenants"),
	}
	reg.Describe("proxy.ring_rebuilds", "Consistent-hash ring rebuilds (health-driven churn).")
	reg.Describe("proxy.failover", "Requests retried on the next ring owner after an upstream failure.")
	reg.Describe("proxy.failover_denied", "Upstream failures not retried because the request body was partially forwarded.")
	reg.Describe("proxy.midstream_aborts", "Client connections cut after an upstream died mid-response.")
	reg.Describe("proxy.backends_routable", "Backends currently on the ring (healthy + degraded).")
	reg.Describe("proxy.tenants", "Live per-tenant rate-limit buckets.")
	for ep := 0; ep < numEndpoints; ep++ {
		p.mEp[ep] = newEpMetrics(reg, epNames[ep])
	}
	seen := make(map[string]bool, len(cfg.Backends))
	for i, raw := range cfg.Backends {
		name := strings.TrimRight(strings.TrimSpace(raw), "/")
		u, err := url.Parse(name)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("cluster: backend %q is not an absolute URL", raw)
		}
		if seen[name] {
			return nil, fmt.Errorf("cluster: backend %q listed twice", name)
		}
		seen[name] = true
		label := "b" + strconv.Itoa(i)
		b := &backend{
			name:      name,
			u:         u,
			requests:  reg.Counter("proxy.backend." + label + ".requests"),
			failures:  reg.Counter("proxy.backend." + label + ".failures"),
			status2xx: reg.Counter("proxy.backend." + label + ".status_2xx"),
			status4xx: reg.Counter("proxy.backend." + label + ".status_4xx"),
			status5xx: reg.Counter("proxy.backend." + label + ".status_5xx"),
			latencyUS: reg.Histogram("proxy.backend." + label + ".latency_us"),
		}
		for _, suffix := range []string{"requests", "failures", "status_2xx", "status_4xx", "status_5xx", "latency_us"} {
			reg.Describe("proxy.backend."+label+"."+suffix,
				"Backend "+name+": per-backend "+suffix+" seen by the proxy.")
		}
		p.backends = append(p.backends, b)
	}
	hc := cfg.Health
	if hc.Client == nil {
		hc.Client = &http.Client{Transport: cfg.Transport}
	}
	urls := make([]string, len(p.backends))
	for i, b := range p.backends {
		urls[i] = b.name
	}
	p.checker = newChecker(urls, hc, p.rebuild)
	p.hashers.New = func() any { return chunkcache.NewHasher() }
	p.bufs.New = func() any {
		b := make([]byte, 0, cfg.ReplayBytes+1)
		return &b
	}
	p.copyBuf.New = func() any {
		b := make([]byte, 32<<10)
		return &b
	}
	p.rebuild()
	if cfg.RollupInterval > 0 {
		p.rollup = telemetry.NewRollup(reg, telemetry.RollupConfig{
			Interval: cfg.RollupInterval,
			Windows:  cfg.RollupWindows,
		})
		if len(cfg.Objectives) > 0 {
			p.slo = telemetry.NewSLOEngine(p.rollup, cfg.Objectives, cfg.SLODegradedBurn)
		}
		p.rollup.Start()
	}
	return p, nil
}

// Start launches the health pollers (one probe round fires immediately).
func (p *Proxy) Start() { p.checker.Start() }

// Close stops the health pollers and the rollup ticker.
func (p *Proxy) Close() {
	p.checker.Stop()
	if p.rollup != nil {
		p.rollup.Stop()
	}
}

// SetReady flips start-up readiness: until true, /healthz/ready answers
// 503 {"status":"starting"} so pollers wait for the listener.
func (p *Proxy) SetReady(on bool) { p.ready.Store(on) }

// SetDraining flips drain mode: readiness answers 503 and new /v1/* work
// is refused with Retry-After while in-flight requests finish.
func (p *Proxy) SetDraining(on bool) { p.draining.Store(on) }

// Rollup returns the windowed time-series layer, nil when rollups are off.
func (p *Proxy) Rollup() *telemetry.Rollup { return p.rollup }

// SLO returns the objective engine, nil when no objectives are configured.
func (p *Proxy) SLO() *telemetry.SLOEngine { return p.slo }

// Checker exposes the health checker (tests and embedders).
func (p *Proxy) Checker() *Checker { return p.checker }

// Ring returns the current ring (atomically consistent snapshot).
func (p *Proxy) Ring() *Ring { return p.ring.Load() }

// rebuild recomputes the ring from current backend states. Healthy
// backends carry full weight, degraded ones DegradedVnodes, everything
// else leaves the ring. The swap is atomic: requests that already
// resolved an owner keep it, so churn never drops in-flight work.
func (p *Proxy) rebuild() {
	nodes := make([]Node, 0, len(p.backends))
	routable := 0
	for i, b := range p.backends {
		w := 0
		switch p.checker.State(i) {
		case StateHealthy:
			w = p.cfg.Vnodes
		case StateDegraded:
			w = p.cfg.DegradedVnodes
		}
		if w > 0 {
			routable++
		}
		nodes = append(nodes, Node{Index: i, Name: b.name, Weight: w})
	}
	p.ring.Store(BuildRing(nodes))
	p.generation.Add(1)
	p.ringRebuilds.Add(1)
	p.routableG.Set(int64(routable))
}

// Handler returns the proxy's mux: the /v1/* shard router, its own
// health probes and the debug views (/debug/ring, /debug/metrics, plus
// the PR-10 timeseries/SLO pages when configured).
func (p *Proxy) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/", p.serveProxy)
	mux.HandleFunc("/healthz", p.handleReady)
	mux.HandleFunc("/healthz/live", p.handleLive)
	mux.HandleFunc("/healthz/ready", p.handleReady)
	mux.HandleFunc("/debug/ring", p.handleRing)
	mux.Handle("/debug/metrics", p.cfg.Registry.MetricsHandler())
	mux.Handle("/debug/timeseries", p.timeseriesHandler())
	mux.Handle("/debug/slo", p.sloHandler())
	return mux
}

func notConfigured(what string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, what+" not configured", http.StatusNotFound)
	})
}

func (p *Proxy) timeseriesHandler() http.Handler {
	if p.rollup == nil {
		return notConfigured("rollup time series")
	}
	return p.rollup.Handler()
}

func (p *Proxy) sloHandler() http.Handler {
	if p.slo == nil {
		return notConfigured("slo objectives")
	}
	return p.slo.Handler()
}

func (p *Proxy) handleLive(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"alive"}`)
}

// handleReady is the proxy's own readiness: 503 while draining or with an
// empty ring (nothing to route to), degraded detail when some backends
// are off the ring or a proxy-tier SLO is burning, ok otherwise.
func (p *Proxy) handleReady(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	ring := p.ring.Load()
	routable := len(ring.Members())
	switch {
	case p.draining.Load():
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"draining"}`)
	case !p.ready.Load():
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"starting"}`)
	case routable == 0:
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"no-backends"}`)
	default:
		degraded := routable < len(p.backends)
		if p.slo != nil {
			if _, burning := p.slo.Degraded(); burning {
				degraded = true
			}
		}
		status := "ok"
		if degraded {
			status = "degraded"
		}
		_ = json.NewEncoder(w).Encode(struct {
			Status   string `json:"status"`
			Routable int    `json:"routable"`
			Total    int    `json:"total"`
		}{status, routable, len(p.backends)})
	}
}

// retryAfterSeconds renders d as a Retry-After value (ceiling, >= 1).
func retryAfterSeconds(d time.Duration) string {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// endpointOf maps a /v1/* path to its endpoint index (-1 = unknown).
func endpointOf(path string) int {
	switch path {
	case "/v1/compress":
		return epCompress
	case "/v1/decompress":
		return epDecompress
	case "/v1/bundle":
		return epBundle
	}
	return -1
}

// serveProxy is the shard router: QoS (tenant bucket, priority
// admission), digest routing, streaming forward with bounded failover.
func (p *Proxy) serveProxy(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	ep := endpointOf(r.URL.Path)
	if ep < 0 {
		http.NotFound(w, r)
		return
	}
	m := p.mEp[ep]
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "proxy: POST only", http.StatusMethodNotAllowed)
		m.observeStatus(http.StatusMethodNotAllowed)
		return
	}
	if p.draining.Load() {
		w.Header().Set("Retry-After", retryAfterSeconds(p.cfg.RetryAfter))
		http.Error(w, "proxy: draining", http.StatusServiceUnavailable)
		m.observeStatus(http.StatusServiceUnavailable)
		return
	}
	// Tenant QoS first: a throttled tenant must not consume a worker
	// slot. The Retry-After is exact — the time until the bucket accrues
	// one token — so clients back off precisely as long as needed.
	tenant := r.Header.Get("X-Ceresz-Tenant")
	if ok, wait := p.limiter.Allow(tenant, t0); !ok {
		m.throttled.Add(1)
		m.observeStatus(http.StatusTooManyRequests)
		w.Header().Set("Retry-After", retryAfterSeconds(wait))
		http.Error(w, "proxy: tenant "+tenant+" rate limited, retry later", http.StatusTooManyRequests)
		return
	}
	p.tenantsG.Set(int64(p.limiter.Tenants()))
	// Priority admission over the bounded worker pool: low-priority
	// (batch) traffic may fill at most its share; interactive traffic may
	// use every slot.
	low := strings.EqualFold(r.Header.Get("X-Ceresz-Priority"), "low")
	release := p.admit.tryAdmit(low)
	if release == nil {
		m.rejected.Add(1)
		m.observeStatus(http.StatusTooManyRequests)
		w.Header().Set("Retry-After", retryAfterSeconds(p.cfg.RetryAfter))
		http.Error(w, "proxy: saturated, retry later", http.StatusTooManyRequests)
		return
	}
	defer release()
	m.requests.Add(1)

	status := p.forward(w, r, ep)
	m.observeStatus(status)
	m.latencyUS.Observe(time.Since(t0).Microseconds())
}

// prefixReader tracks whether any bytes beyond the buffered prefix were
// consumed — the replayability test for failover.
type prefixReader struct {
	r        io.Reader
	consumed atomic.Int64
}

func (pr *prefixReader) Read(b []byte) (int, error) {
	n, err := pr.r.Read(b)
	pr.consumed.Add(int64(n))
	return n, err
}

// flushWriter flushes after every write so frames stream to the client
// as they arrive from the backend instead of pooling in proxy buffers.
type flushWriter struct {
	w  http.ResponseWriter
	rc *http.ResponseController
	n  int64
}

func (fw *flushWriter) Write(b []byte) (int, error) {
	n, err := fw.w.Write(b)
	fw.n += int64(n)
	if n > 0 {
		_ = fw.rc.Flush()
	}
	return n, err
}

// hopHeaders never cross the proxy (RFC 9110 §7.6.1; Trailer is handled
// explicitly).
var hopHeaders = map[string]bool{
	"Connection": true, "Keep-Alive": true, "Proxy-Connection": true,
	"Te": true, "Transfer-Encoding": true, "Upgrade": true, "Trailer": true,
}

func copyHeaders(dst, src http.Header) {
	for k, vv := range src {
		if hopHeaders[http.CanonicalHeaderKey(k)] || k == "Content-Length" {
			continue
		}
		dst[k] = append([]string(nil), vv...)
	}
}

// forward buffers the routing prefix, resolves the ring owner(s) and
// relays the request, failing over once when the body is replayable.
// It returns the status relayed (or originated) for RED accounting.
func (p *Proxy) forward(w http.ResponseWriter, r *http.Request, ep int) int {
	bufp := p.bufs.Get().(*[]byte)
	defer p.bufs.Put(bufp)
	prefix, fullyBuffered, err := readPrefix(r.Body, (*bufp)[:cap(*bufp)])
	if err != nil {
		http.Error(w, "proxy: reading request body: "+err.Error(), http.StatusBadRequest)
		return http.StatusBadRequest
	}

	key := p.routeKey(ep, r.URL.Query(), prefix)
	ring := p.ring.Load()
	var owners []int
	if p.cfg.RandomRoute {
		owners = randomOwners(ring, 1+failoverRetries)
	} else {
		owners = ring.Owners(key, 1+failoverRetries)
	}
	if len(owners) == 0 {
		w.Header().Set("Retry-After", retryAfterSeconds(p.cfg.RetryAfter))
		http.Error(w, "proxy: no routable backends", http.StatusServiceUnavailable)
		return http.StatusServiceUnavailable
	}

	rest := &prefixReader{r: r.Body}
	var lastErr error
	for attempt, bi := range owners {
		if attempt > 0 {
			if !fullyBuffered && rest.consumed.Load() > 0 {
				// Part of the one-shot body is gone: a retry would resend
				// a different (truncated-prefix) request. Refuse loudly.
				p.failoverDeny.Add(1)
				p.mEp[ep].failures.Add(1)
				http.Error(w, "proxy: "+ErrPartialForward.Error()+": "+lastErr.Error(), http.StatusBadGateway)
				return http.StatusBadGateway
			}
			p.failover.Add(1)
		}
		status, done := p.attempt(w, r, ep, bi, prefix, rest, fullyBuffered, &lastErr)
		if done {
			return status
		}
	}
	p.mEp[ep].failures.Add(1)
	msg := "proxy: all ring owners failed"
	if lastErr != nil {
		msg += ": " + lastErr.Error()
	}
	http.Error(w, msg, http.StatusBadGateway)
	return http.StatusBadGateway
}

// attempt relays the request to backend bi. done=false means the caller
// may fail over (no response bytes have reached the client).
func (p *Proxy) attempt(w http.ResponseWriter, r *http.Request, ep, bi int, prefix []byte, rest *prefixReader, fullyBuffered bool, lastErr *error) (status int, done bool) {
	b := p.backends[bi]
	t0 := time.Now()
	b.requests.Add(1)

	var body io.Reader = bytes.NewReader(prefix)
	if !fullyBuffered {
		body = io.MultiReader(bytes.NewReader(prefix), rest)
	}
	outURL := *b.u
	outURL.Path = r.URL.Path
	outURL.RawQuery = r.URL.RawQuery
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, outURL.String(), body)
	if err != nil {
		*lastErr = err
		b.failures.Add(1)
		return 0, false
	}
	copyHeaders(req.Header, r.Header)
	if fullyBuffered {
		req.ContentLength = int64(len(prefix))
	} else {
		req.ContentLength = r.ContentLength // -1 streams chunked
	}

	resp, err := p.cfg.Transport.RoundTrip(req)
	if err != nil {
		*lastErr = err
		b.failures.Add(1)
		p.checker.ReportFailure(bi, err)
		return 0, false
	}
	if resp.StatusCode >= 500 {
		// Upstream errored before streaming anything to the client; a
		// bounded drain keeps the connection reusable, then fail over.
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		resp.Body.Close()
		b.status5xx.Add(1)
		b.latencyUS.Observe(time.Since(t0).Microseconds())
		*lastErr = fmt.Errorf("backend %s answered %d: %s", b.name, resp.StatusCode, bytes.TrimSpace(msg))
		return 0, false
	}

	// 2xx/3xx/4xx relay as-is — 429s carry the backend's own Retry-After
	// through untouched, so backend backpressure reaches the client with
	// its original hint.
	p.checker.ReportSuccess(bi)
	defer resp.Body.Close()
	copyHeaders(w.Header(), resp.Header)
	if len(resp.Trailer) > 0 {
		names := make([]string, 0, len(resp.Trailer))
		for k := range resp.Trailer {
			names = append(names, k)
		}
		w.Header().Set("Trailer", strings.Join(names, ", "))
	}
	w.WriteHeader(resp.StatusCode)

	fw := &flushWriter{w: w, rc: http.NewResponseController(w)}
	cbp := p.copyBuf.Get().(*[]byte)
	_, cerr := io.CopyBuffer(fw, resp.Body, *cbp)
	p.copyBuf.Put(cbp)
	p.mEp[ep].bytesIn.Add(int64(len(prefix)) + rest.consumed.Load())
	p.mEp[ep].bytesOut.Add(fw.n)
	switch {
	case resp.StatusCode < 300:
		b.status2xx.Add(1)
	case resp.StatusCode < 500:
		b.status4xx.Add(1)
	}
	b.latencyUS.Observe(time.Since(t0).Microseconds())
	if cerr != nil {
		// The upstream died mid-response with bytes already relayed; the
		// client must see a broken transfer, not a silently truncated 200.
		p.midstream.Add(1)
		p.checker.ReportFailure(bi, cerr)
		panic(http.ErrAbortHandler)
	}
	for k, vv := range resp.Trailer {
		for _, v := range vv {
			w.Header().Set(k, v)
		}
	}
	return resp.StatusCode, true
}

// readPrefix fills buf from r. fullyBuffered reports that the body ended
// within the buffer — the whole request is replayable from prefix alone.
// (buf is ReplayBytes+1 long, so a full buffer means "more is coming".)
func readPrefix(r io.Reader, buf []byte) (prefix []byte, fullyBuffered bool, err error) {
	n, err := io.ReadFull(r, buf)
	switch err {
	case nil:
		return buf[:n], false, nil
	case io.EOF, io.ErrUnexpectedEOF:
		return buf[:n], true, nil
	default:
		return nil, false, err
	}
}

// routeKey derives the routing digest for one request. Compress and
// decompress requests hash their first chunk under the exact
// internal/chunkcache key layout the backends address entries with, so a
// chunk's route and its cache key agree and repeats land on the node
// already holding them. Unparsable requests (the backend will 400 them)
// and bundles hash the raw prefix under a proxy-private namespace —
// still deterministic, just without cache affinity.
func (p *Proxy) routeKey(ep int, q url.Values, prefix []byte) chunkcache.Key {
	h := p.hashers.Get().(*chunkcache.Hasher)
	defer p.hashers.Put(h)
	switch ep {
	case epCompress:
		if pre, chunkBytes, ok := p.compressPreamble(h, q); ok {
			if chunkBytes > len(prefix) {
				chunkBytes = len(prefix)
			}
			return h.Key(pre, prefix[:chunkBytes])
		}
	case epDecompress:
		wantF64 := q.Get("elem") == "f64"
		if payload, ok := firstFramePayload(prefix); ok {
			return h.Key(chunkcache.AppendDecompressPreamble(h.Preamble(), wantF64), payload)
		}
	}
	// Fallback namespace 0: never used by the cache, so a fallback digest
	// can't collide with an affinity digest for different bytes.
	pre := append(h.Preamble(), chunkcache.KeyVersion, 0, byte(ep))
	return h.Key(pre, prefix)
}

// compressPreamble mirrors the backend's compress-side cache-key
// preamble from the request's query parameters. ok=false when the
// parameters would fail the backend's own validation.
func (p *Proxy) compressPreamble(h *chunkcache.Hasher, q url.Values) (pre []byte, chunkBytes int, ok bool) {
	eps, err := strconv.ParseFloat(q.Get("eps"), 64)
	if err != nil || !(eps > 0) {
		return nil, 0, false
	}
	abs := true
	switch q.Get("mode") {
	case "", "abs":
	case "rel":
		abs = false
	default:
		return nil, 0, false
	}
	elem := byte(0)
	elemSize := 4
	switch q.Get("elem") {
	case "", "f32":
	case "f64":
		elem, elemSize = 1, 8
	default:
		return nil, 0, false
	}
	chunkElems := p.cfg.ChunkElems
	if cs := q.Get("chunk"); cs != "" {
		n, err := strconv.Atoi(cs)
		if err != nil || n < 1 {
			return nil, 0, false
		}
		chunkElems = n
	}
	blockLen := p.cfg.BlockLen
	if bs := q.Get("block"); bs != "" {
		n, err := strconv.Atoi(bs)
		if err != nil || n < 8 || n%8 != 0 {
			return nil, 0, false
		}
		blockLen = n
	}
	pre = chunkcache.AppendCompressPreamble(h.Preamble(), elem, abs, eps, blockLen)
	return pre, chunkElems * elemSize, true
}

// firstFramePayload extracts the first CSZF frame's payload from a
// framed-body prefix: 4-byte magic, u32 little-endian payload length,
// payload. ok=false when the prefix holds no complete frame.
func firstFramePayload(prefix []byte) ([]byte, bool) {
	const header = 8
	if len(prefix) < header || string(prefix[:4]) != "CSZF" {
		return nil, false
	}
	n := int(binary.LittleEndian.Uint32(prefix[4:8]))
	if n <= 0 || header+n > len(prefix) {
		return nil, false
	}
	return prefix[header : header+n], true
}

// randomOwners picks up to n distinct ring members uniformly — the
// affinity-off baseline (RandomRoute).
func randomOwners(r *Ring, n int) []int {
	members := r.Members()
	if len(members) == 0 {
		return nil
	}
	if n > len(members) {
		n = len(members)
	}
	out := make([]int, len(members))
	copy(out, members)
	// Partial Fisher-Yates over the member list.
	for i := 0; i < n; i++ {
		j := i + rand.IntN(len(out)-i)
		out[i], out[j] = out[j], out[i]
	}
	return out[:n]
}
