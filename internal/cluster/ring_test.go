package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"ceresz/internal/chunkcache"
)

func mkNodes(n, weight int) []Node {
	out := make([]Node, n)
	for i := range out {
		out[i] = Node{Index: i, Name: fmt.Sprintf("http://backend-%d:8775", i), Weight: weight}
	}
	return out
}

func randomKey(rng *rand.Rand) chunkcache.Key {
	var k chunkcache.Key
	rng.Read(k[:])
	return k
}

// The determinism property: the ring is a pure function of the
// (Name, Weight) multiset — any insertion order builds the identical
// ring, so every proxy (and a restarted one) routes the same way.
func TestBuildRingDeterministicAnyOrder(t *testing.T) {
	nodes := mkNodes(5, 32)
	want := BuildRing(nodes)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		shuffled := append([]Node(nil), nodes...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		got := BuildRing(shuffled)
		if !got.Equal(want) {
			t.Fatalf("trial %d: shuffled insertion order built a different ring", trial)
		}
		for i := 0; i < 100; i++ {
			k := randomKey(rng)
			if got.Owner(k) != want.Owner(k) {
				t.Fatalf("trial %d: owner mismatch for key %x", trial, k[:8])
			}
		}
	}
}

func TestRingOwnerStableAcrossRebuild(t *testing.T) {
	nodes := mkNodes(4, 64)
	a, b := BuildRing(nodes), BuildRing(nodes)
	if !a.Equal(b) {
		t.Fatal("two builds of the same node set differ")
	}
}

// Consistency: removing one backend must remap only the keys it owned —
// every other key keeps its owner. This is the property that makes
// health-driven ejection cheap for the chunk caches on surviving nodes.
func TestRingRemovalRemapsOnlyLostKeys(t *testing.T) {
	nodes := mkNodes(4, 64)
	full := BuildRing(nodes)
	without := BuildRing(nodes[:3]) // drop backend 3

	rng := rand.New(rand.NewSource(2))
	moved, kept := 0, 0
	for i := 0; i < 5000; i++ {
		k := randomKey(rng)
		was, now := full.Owner(k), without.Owner(k)
		if was == 3 {
			if now == 3 {
				t.Fatal("key still routed to removed backend")
			}
			moved++
			continue
		}
		if was != now {
			t.Fatalf("key owned by surviving backend %d remapped to %d", was, now)
		}
		kept++
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate sample: moved=%d kept=%d", moved, kept)
	}
}

func TestRingWeightZeroExcluded(t *testing.T) {
	nodes := mkNodes(3, 64)
	nodes[1].Weight = 0
	r := BuildRing(nodes)
	if got := r.Members(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("members = %v, want [0 2]", got)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		if r.Owner(randomKey(rng)) == 1 {
			t.Fatal("weight-0 backend received a key")
		}
	}
}

func TestRingOwnersDistinctWalk(t *testing.T) {
	r := BuildRing(mkNodes(3, 64))
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		k := randomKey(rng)
		owners := r.Owners(k, 3)
		if len(owners) != 3 {
			t.Fatalf("Owners returned %d backends, want 3", len(owners))
		}
		if owners[0] != r.Owner(k) {
			t.Fatal("Owners[0] disagrees with Owner")
		}
		seen := map[int]bool{}
		for _, b := range owners {
			if seen[b] {
				t.Fatalf("Owners returned duplicate backend %d", b)
			}
			seen[b] = true
		}
	}
	// n beyond the member count clamps.
	if got := r.Owners(randomKey(rng), 10); len(got) != 3 {
		t.Fatalf("Owners(10) = %d backends, want 3", len(got))
	}
	empty := BuildRing(nil)
	if got := empty.Owners(randomKey(rng), 2); got != nil {
		t.Fatalf("empty ring Owners = %v, want nil", got)
	}
	if empty.Owner(randomKey(rng)) != -1 {
		t.Fatal("empty ring Owner != -1")
	}
}

func TestRingSharesSumToOne(t *testing.T) {
	for _, tc := range []struct {
		name  string
		nodes []Node
	}{
		{"uniform", mkNodes(4, 64)},
		{"single", mkNodes(1, 64)},
		{"weighted", []Node{{0, "http://a", 64}, {1, "http://b", 16}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			shares := BuildRing(tc.nodes).Shares()
			var sum float64
			for _, s := range shares {
				sum += s
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("shares sum to %v, want 1", sum)
			}
		})
	}
}

// A degraded backend at reduced weight owns a smaller arc than its
// healthy peers — the weight-down mechanism sheds share, not presence.
func TestRingDegradedWeightShedsShare(t *testing.T) {
	nodes := []Node{
		{0, "http://a:1", 64},
		{1, "http://b:1", 64},
		{2, "http://c:1", 16}, // degraded: quarter weight
	}
	shares := BuildRing(nodes).Shares()
	if shares[2] >= shares[0] || shares[2] >= shares[1] {
		t.Fatalf("degraded backend owns %v, healthy own %v / %v — expected less",
			shares[2], shares[0], shares[1])
	}
	if shares[2] == 0 {
		t.Fatal("degraded backend left the ring entirely")
	}
}

// Routing balance sanity: with equal weights and uniform keys, no
// backend should own a wildly disproportionate share of actual lookups.
func TestRingBalance(t *testing.T) {
	const n = 4
	r := BuildRing(mkNodes(n, 64))
	counts := make([]int, n)
	rng := rand.New(rand.NewSource(5))
	const trials = 20000
	for i := 0; i < trials; i++ {
		counts[r.Owner(randomKey(rng))]++
	}
	for b, c := range counts {
		frac := float64(c) / trials
		if frac < 0.10 || frac > 0.45 {
			t.Fatalf("backend %d owns %.1f%% of lookups (counts %v) — ring badly unbalanced", b, frac*100, counts)
		}
	}
}
