package cluster

import (
	"fmt"

	"ceresz/internal/telemetry"
)

// SLO objective binding for the proxy tier. Same spec grammar as the
// backend ("compress:p99<25ms:99.9", "decompress:err:99.95"), bound to
// the proxy's own RED instruments — proxy.<ep>.latency_us for latency
// SLIs, proxy.<ep>.requests / proxy.<ep>.status_5xx for error SLIs — so
// one -slo flag syntax describes either tier and the PR-10 burn-rate
// machinery runs unchanged on the router.

// ParseObjectives parses a comma-separated SLO spec list and binds each
// objective to the subject endpoint's proxy instruments. Unknown
// subjects are an error, matching server.ParseObjectives.
func ParseObjectives(raw string) ([]telemetry.Objective, error) {
	specs, err := telemetry.ParseSLOSpecs(raw)
	if err != nil {
		return nil, err
	}
	objs := make([]telemetry.Objective, 0, len(specs))
	for _, spec := range specs {
		known := false
		for _, name := range epNames {
			if spec.Subject == name {
				known = true
				break
			}
		}
		if !known {
			return nil, fmt.Errorf("slo %q: unknown endpoint %q (have %v)", spec.Raw, spec.Subject, epNames)
		}
		o := telemetry.Objective{Spec: spec}
		if spec.SLI == "err" {
			o.TotalCounter = "proxy." + spec.Subject + ".requests"
			o.BadCounter = "proxy." + spec.Subject + ".status_5xx"
		} else {
			o.HistName = "proxy." + spec.Subject + ".latency_us"
		}
		objs = append(objs, o)
	}
	return objs, nil
}
