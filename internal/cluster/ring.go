// Package cluster is the fleet tier over cereszd (internal/server): a
// consistent-hash shard router with health-checked failover and
// per-tenant QoS, fronting N backends as one logical compression service.
//
// The paper scales error-bounded compression by fanning independent
// blocks across hundreds of thousands of PEs; this package mirrors that
// one level up, fanning independent requests across backend processes.
// Routing is keyed on the same SHA-256 digest family internal/chunkcache
// addresses entries with, so a chunk's route and its cache key agree: the
// proxy concentrates identical chunks on the node whose content-addressed
// cache already holds them, turning cluster-wide repeat traffic into warm
// single-node hits instead of N cold copies.
//
// The pieces, front to back:
//
//   - QoS (qos.go): per-tenant token buckets and two-level priority
//     admission over a bounded proxy worker pool — 429+Retry-After before
//     any backend sees the request;
//   - Ring (this file): virtual-node consistent hashing, deterministic in
//     the backend set (any insertion order builds the same ring), with
//     per-backend weights so degraded nodes shed share without leaving;
//   - Health (health.go): background readiness pollers that parse the
//     server's degraded detail, eject dead backends, weight down degraded
//     ones and rebuild the ring without touching in-flight requests;
//   - Proxy (proxy.go): the streaming HTTP front end with bounded
//     single-failover retry and per-backend RED telemetry.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"

	"ceresz/internal/chunkcache"
)

// ringSalt prefixes every virtual-node hash so ring placement is not
// confusable with any other SHA-256 use of the backend name.
const ringSalt = "ceresz-ring\x00"

// Node is one ring member: a backend identified by Index into the
// proxy's fixed backend table, named by its canonical URL, carrying
// Weight virtual nodes.
type Node struct {
	Index  int
	Name   string
	Weight int
}

// ringEntry is one virtual node on the circle.
type ringEntry struct {
	hash    uint64
	backend int // index into the proxy's backend table
}

// Ring is an immutable consistent-hash ring. Build one with BuildRing and
// swap it atomically; lookups are lock-free reads of sorted entries.
type Ring struct {
	entries []ringEntry
	// members lists the distinct backend indices on the ring, sorted, for
	// owner walks that must terminate and for share accounting.
	members []int
}

// BuildRing places Weight virtual nodes per member on the circle. The
// result is a pure function of the (Name, Weight) multiset: virtual-node
// positions depend only on the member's name and replica ordinal, and
// ties sort by name, so any insertion order yields the same ring — the
// property that lets every proxy instance (and a restarted one) route
// identically from the same backend list. Members with Weight <= 0 are
// left off the ring entirely.
func BuildRing(nodes []Node) *Ring {
	r := &Ring{}
	var h [sha256.Size]byte
	var buf []byte
	for _, n := range nodes {
		if n.Weight <= 0 {
			continue
		}
		r.members = append(r.members, n.Index)
		for v := 0; v < n.Weight; v++ {
			buf = append(buf[:0], ringSalt...)
			buf = append(buf, n.Name...)
			buf = append(buf, 0)
			buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
			h = sha256.Sum256(buf)
			r.entries = append(r.entries, ringEntry{
				hash:    binary.BigEndian.Uint64(h[:8]),
				backend: n.Index,
			})
		}
	}
	// Sort by position; break (astronomically unlikely) hash ties by
	// backend index so equal rings compare equal element-wise.
	sort.Slice(r.entries, func(i, j int) bool {
		if r.entries[i].hash != r.entries[j].hash {
			return r.entries[i].hash < r.entries[j].hash
		}
		return r.entries[i].backend < r.entries[j].backend
	})
	sort.Ints(r.members)
	return r
}

// Len reports the virtual-node count.
func (r *Ring) Len() int { return len(r.entries) }

// Members returns the distinct backend indices on the ring (sorted; do
// not mutate).
func (r *Ring) Members() []int { return r.members }

// owner returns the index of the first entry at or clockwise of h.
func (r *Ring) owner(h uint64) int {
	i := sort.Search(len(r.entries), func(i int) bool { return r.entries[i].hash >= h })
	if i == len(r.entries) {
		i = 0
	}
	return i
}

// Owner resolves the backend owning key. Returns -1 on an empty ring.
func (r *Ring) Owner(key chunkcache.Key) int {
	if len(r.entries) == 0 {
		return -1
	}
	return r.entries[r.owner(chunkcache.RingHash(key))].backend
}

// Owners returns up to n distinct backends walking clockwise from key:
// the owner first, then each successive failover candidate. The walk is
// deterministic, so every proxy agrees on the failover order too.
func (r *Ring) Owners(key chunkcache.Key, n int) []int {
	if len(r.entries) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	out := make([]int, 0, n)
	seen := make(map[int]bool, n)
	start := r.owner(chunkcache.RingHash(key))
	for i := 0; i < len(r.entries) && len(out) < n; i++ {
		b := r.entries[(start+i)%len(r.entries)].backend
		if !seen[b] {
			seen[b] = true
			out = append(out, b)
		}
	}
	return out
}

// Shares reports the fraction of the 64-bit hash space each backend on
// the ring owns, keyed by backend index — the expected share of
// digest-uniform traffic, surfaced by /debug/ring so a skewed build is
// visible before it becomes a hot spot.
func (r *Ring) Shares() map[int]float64 {
	out := make(map[int]float64, len(r.members))
	if len(r.entries) == 0 {
		return out
	}
	if len(r.entries) == 1 {
		out[r.entries[0].backend] = 1
		return out
	}
	const span = float64(1 << 63) * 2 // 2^64 without overflow
	prev := r.entries[len(r.entries)-1].hash
	for _, e := range r.entries {
		arc := e.hash - prev // wraps correctly in uint64 arithmetic
		out[e.backend] += float64(arc) / span
		prev = e.hash
	}
	return out
}

// Equal reports whether two rings place identical virtual nodes — the
// determinism property tests assert.
func (r *Ring) Equal(o *Ring) bool {
	if len(r.entries) != len(o.entries) {
		return false
	}
	for i := range r.entries {
		if r.entries[i] != o.entries[i] {
			return false
		}
	}
	return true
}
