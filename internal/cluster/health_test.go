package cluster

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// readyStub is a controllable /healthz/ready endpoint.
type readyStub struct {
	status atomic.Int32 // HTTP status to answer
	body   atomic.Value // string JSON body
}

func newReadyStub(status int, body string) *readyStub {
	s := &readyStub{}
	s.status.Store(int32(status))
	s.body.Store(body)
	return s
}

func (s *readyStub) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/healthz/ready" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(int(s.status.Load()))
	_, _ = w.Write([]byte(s.body.Load().(string)))
}

// changeRecorder counts onChange callbacks and lets tests wait for them.
type changeRecorder struct {
	mu sync.Mutex
	n  int
	ch chan struct{}
}

func newChangeRecorder() *changeRecorder {
	return &changeRecorder{ch: make(chan struct{}, 64)}
}

func (c *changeRecorder) fire() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	select {
	case c.ch <- struct{}{}:
	default:
	}
}

func (c *changeRecorder) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// waitFor polls cond until true or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestCheckerProbeTransitions(t *testing.T) {
	stub := newReadyStub(http.StatusOK, `{"status":"ok"}`)
	ts := httptest.NewServer(stub)
	defer ts.Close()

	rec := newChangeRecorder()
	c := newChecker([]string{ts.URL}, HealthConfig{Interval: 10 * time.Millisecond, FailAfter: 2}, rec.fire)
	c.Start()
	defer c.Stop()

	waitFor(t, "first probe", func() bool { return c.probes.Load() >= 1 })
	if got := c.State(0); got != StateHealthy {
		t.Fatalf("state after ok probe = %v, want healthy", got)
	}

	// The backend starts reporting degraded (an SLO is burning): the
	// checker parses the PR-10 detail and weights it down, not out.
	stub.body.Store(`{"status":"degraded","slo":[{"spec":"compress:p99<1ms:99.9"}]}`)
	waitFor(t, "degraded", func() bool { return c.State(0) == StateDegraded })

	// Draining: 503 means off the ring immediately.
	stub.status.Store(http.StatusServiceUnavailable)
	stub.body.Store(`{"status":"draining"}`)
	waitFor(t, "unready", func() bool { return c.State(0) == StateUnready })

	// Recovery back to healthy.
	stub.status.Store(http.StatusOK)
	stub.body.Store(`{"status":"ok"}`)
	waitFor(t, "healthy again", func() bool { return c.State(0) == StateHealthy })
	if rec.count() < 3 {
		t.Fatalf("onChange fired %d times, want >= 3", rec.count())
	}
}

func TestCheckerDeadAfterConsecutiveFailures(t *testing.T) {
	stub := newReadyStub(http.StatusOK, `{"status":"ok"}`)
	ts := httptest.NewServer(stub)

	rec := newChangeRecorder()
	c := newChecker([]string{ts.URL}, HealthConfig{Interval: 10 * time.Millisecond, FailAfter: 2}, rec.fire)
	c.Start()
	defer c.Stop()
	waitFor(t, "healthy", func() bool { return c.probes.Load() >= 1 && c.State(0) == StateHealthy })

	// Kill the backend: probes now fail at the transport level, and after
	// FailAfter consecutive failures the backend is dead.
	ts.Close()
	waitFor(t, "dead", func() bool { return c.State(0) == StateDead })
	if snap := c.snapshot(0); snap.LastErr == "" {
		t.Fatal("dead backend carries no last error")
	}
}

func TestCheckerTrafficPathReports(t *testing.T) {
	// No poll loop at all: the traffic path alone must be able to kill
	// and revive a backend.
	rec := newChangeRecorder()
	c := newChecker([]string{"http://127.0.0.1:1"}, HealthConfig{FailAfter: 3}, rec.fire)

	err := errors.New("connection refused")
	c.ReportFailure(0, err)
	c.ReportFailure(0, err)
	if c.State(0) != StateHealthy {
		t.Fatal("backend died before FailAfter failures")
	}
	c.ReportFailure(0, err)
	if c.State(0) != StateDead {
		t.Fatal("backend not dead after FailAfter forwarding failures")
	}
	if rec.count() != 1 {
		t.Fatalf("onChange fired %d times, want exactly 1", rec.count())
	}

	// A successful forward revives it — answering traffic is not dead.
	c.ReportSuccess(0)
	if c.State(0) != StateHealthy {
		t.Fatal("backend not revived by a successful forward")
	}
	if rec.count() != 2 {
		t.Fatalf("onChange fired %d times after revival, want 2", rec.count())
	}
}

func TestCheckerSuccessDoesNotUpgradeUnready(t *testing.T) {
	rec := newChangeRecorder()
	c := newChecker([]string{"http://127.0.0.1:1"}, HealthConfig{FailAfter: 1}, rec.fire)
	c.setState(0, StateUnready)
	// A draining backend still answers in-flight requests; success must
	// not override its own "stop routing to me" declaration.
	c.ReportSuccess(0)
	if c.State(0) != StateUnready {
		t.Fatal("ReportSuccess overrode the backend's unready declaration")
	}
}
