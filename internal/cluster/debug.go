package cluster

import (
	"encoding/json"
	"net/http"
	"time"
)

// /debug/ring: the proxy's routing table as one JSON document — per
// backend its health state, current ring weight and owned share of the
// hash space, plus ring generation and probe counts. The CI cluster-smoke
// job uploads this as an artifact; operators read it to see why traffic
// lands where it does.

// ringBackendView is one backend's row in the /debug/ring document.
type ringBackendView struct {
	Index     int     `json:"index"`
	URL       string  `json:"url"`
	State     string  `json:"state"`
	Weight    int     `json:"weight"`
	Share     float64 `json:"share"`
	Fails     int32   `json:"fails"`
	LastErr   string  `json:"last_err,omitempty"`
	LastProbe string  `json:"last_probe,omitempty"`
}

// ringView is the /debug/ring document.
type ringView struct {
	Generation int64             `json:"generation"`
	Vnodes     int               `json:"vnodes"`
	Routable   int               `json:"routable"`
	Probes     int64             `json:"probes"`
	Tenants    int               `json:"tenants"`
	RandomMode bool              `json:"random_route,omitempty"`
	Backends   []ringBackendView `json:"backends"`
}

func (p *Proxy) handleRing(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	ring := p.ring.Load()
	shares := ring.Shares()
	view := ringView{
		Generation: p.generation.Load(),
		Vnodes:     ring.Len(),
		Routable:   len(ring.Members()),
		Probes:     p.checker.probes.Load(),
		Tenants:    p.limiter.Tenants(),
		RandomMode: p.cfg.RandomRoute,
	}
	for i, b := range p.backends {
		hs := p.checker.snapshot(i)
		weight := 0
		switch hs.State {
		case StateHealthy:
			weight = p.cfg.Vnodes
		case StateDegraded:
			weight = p.cfg.DegradedVnodes
		}
		row := ringBackendView{
			Index:   i,
			URL:     b.name,
			State:   hs.State.String(),
			Weight:  weight,
			Share:   shares[i],
			Fails:   hs.Fails,
			LastErr: hs.LastErr,
		}
		if !hs.LastProbe.IsZero() {
			row.LastProbe = hs.LastProbe.Format(time.RFC3339Nano)
		}
		view.Backends = append(view.Backends, row)
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(view)
}
