package cluster

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"

	"ceresz/internal/server"
	"ceresz/internal/telemetry"
)

// countingBackend wraps a handler and counts /v1/* POSTs it received.
type countingBackend struct {
	h    http.Handler
	hits atomic.Int64
}

func (b *countingBackend) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost && strings.HasPrefix(r.URL.Path, "/v1/") {
		b.hits.Add(1)
	}
	b.h.ServeHTTP(w, r)
}

// newRealBackend boots a full internal/server instance with the chunk
// cache on, wrapped in a request counter.
func newRealBackend(t *testing.T) (*httptest.Server, *countingBackend) {
	t.Helper()
	srv := server.New(server.Config{
		Workers:    2,
		CacheBytes: 32 << 20,
		Registry:   telemetry.NewRegistry(),
	})
	t.Cleanup(srv.Close)
	cb := &countingBackend{h: srv.Handler()}
	ts := httptest.NewServer(cb)
	t.Cleanup(ts.Close)
	return ts, cb
}

// newTestProxy builds a proxy over the given config without starting the
// health pollers: tests drive health via the traffic path or directly,
// keeping them deterministic.
func newTestProxy(t *testing.T, cfg Config) (*Proxy, *httptest.Server, *telemetry.Registry) {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = telemetry.NewRegistry()
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	p.SetReady(true)
	ts := httptest.NewServer(p.Handler())
	t.Cleanup(ts.Close)
	return p, ts, cfg.Registry
}

func rawF32Body(n int, seed float32) []byte {
	out := make([]byte, 4*n)
	for i := 0; i < n; i++ {
		v := seed + float32(math.Sin(0.01*float64(i)))
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(v))
	}
	return out
}

const compressQuery = "/v1/compress?mode=abs&eps=0.001&elem=f32&chunk=16384"

func postCompress(t *testing.T, base string, body []byte, hdr map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+compressQuery, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// Digest affinity: the same chunk must route to the same backend every
// time — that is what turns cluster-wide repeats into single-node warm
// cache hits.
func TestProxyDigestAffinity(t *testing.T) {
	tsA, cbA := newRealBackend(t)
	tsB, cbB := newRealBackend(t)
	_, pts, _ := newTestProxy(t, Config{Backends: []string{tsA.URL, tsB.URL}})

	body := rawF32Body(32<<10, 1)
	const rounds = 8
	for i := 0; i < rounds; i++ {
		resp := postCompress(t, pts.URL, body, nil)
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("round %d: status %d: %s", i, resp.StatusCode, out)
		}
	}
	a, b := cbA.hits.Load(), cbB.hits.Load()
	if a+b != rounds {
		t.Fatalf("backends saw %d+%d requests, want %d", a, b, rounds)
	}
	if a != 0 && b != 0 {
		t.Fatalf("identical payload split across backends (%d/%d) — digest affinity broken", a, b)
	}
}

// The proxy must relay bytes unchanged: a compress answer through the
// proxy is byte-identical to the same request sent directly to a
// backend, and decompressing the stream back through the proxy recovers
// the data within the error bound.
func TestProxyByteIdentity(t *testing.T) {
	tsA, _ := newRealBackend(t)
	tsB, _ := newRealBackend(t)
	direct, _ := newRealBackend(t)
	_, pts, _ := newTestProxy(t, Config{Backends: []string{tsA.URL, tsB.URL}})

	const elems = 40_000
	body := make([]byte, 4*elems)
	want := make([]float32, elems)
	for i := range want {
		want[i] = float32(2 * math.Sin(0.003*float64(i)))
		binary.LittleEndian.PutUint32(body[4*i:], math.Float32bits(want[i]))
	}

	resp := postCompress(t, pts.URL, body, nil)
	viaProxy, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxy compress: %d: %s", resp.StatusCode, viaProxy)
	}
	resp = postCompress(t, direct.URL, body, nil)
	viaDirect, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("direct compress: %d: %s", resp.StatusCode, viaDirect)
	}
	if !bytes.Equal(viaProxy, viaDirect) {
		t.Fatalf("proxied stream (%d bytes) differs from direct backend stream (%d bytes)",
			len(viaProxy), len(viaDirect))
	}

	// Round-trip the compressed stream back through the proxy (exercises
	// CSZF-frame routing on the decompress side).
	req, _ := http.NewRequest(http.MethodPost, pts.URL+"/v1/decompress?elem=f32", bytes.NewReader(viaProxy))
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("proxy decompress: %d: %s", resp2.StatusCode, raw)
	}
	if len(raw) != 4*elems {
		t.Fatalf("decompressed %d bytes, want %d", len(raw), 4*elems)
	}
	for i := 0; i < elems; i++ {
		v := math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
		if math.Abs(float64(v)-float64(want[i])) > 0.001*(1+1e-6) {
			t.Fatalf("element %d: |%g - %g| exceeds eps", i, v, want[i])
		}
	}
}

// A dead backend must be invisible to clients whose requests are
// replayable: the proxy fails over to the next ring owner and the
// request succeeds with zero client-visible 5xx.
func TestProxyFailoverOnDeadBackend(t *testing.T) {
	tsA, cbA := newRealBackend(t)
	tsB, cbB := newRealBackend(t)
	_, pts, reg := newTestProxy(t, Config{Backends: []string{tsA.URL, tsB.URL}})

	body := rawF32Body(32<<10, 2)
	resp := postCompress(t, pts.URL, body, nil)
	want, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm request failed: %d", resp.StatusCode)
	}

	// Kill whichever backend owns this digest.
	if cbA.hits.Load() > 0 {
		tsA.Close()
	} else {
		tsB.Close()
	}
	beforeTotal := cbA.hits.Load() + cbB.hits.Load()

	resp = postCompress(t, pts.URL, body, nil)
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after owner death: status %d, want 200 (transparent failover): %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("failover answer differs from the original compressed stream")
	}
	if cbA.hits.Load()+cbB.hits.Load() != beforeTotal+1 {
		t.Fatal("surviving backend did not receive exactly one forwarded request")
	}
	if got := reg.Counter("proxy.failover").Value(); got != 1 {
		t.Fatalf("proxy.failover = %d, want 1", got)
	}
	if got := reg.Counter("proxy.compress.status_5xx").Value(); got != 0 {
		t.Fatalf("client-visible 5xx count = %d, want 0", got)
	}
}

// A request whose body streamed past the replay buffer must NOT be
// silently resent: the proxy answers 502 naming the partial-forward
// refusal and counts it, leaving the end-to-end retry to the client.
func TestProxyPartialForwardRefusesRetry(t *testing.T) {
	// The owner reads part of the streamed body, then cuts the
	// connection — a backend crash mid-upload.
	killer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.CopyN(io.Discard, r.Body, 256<<10)
		hj, ok := w.(http.Hijacker)
		if !ok {
			t.Error("test server does not support hijacking")
			return
		}
		conn, _, err := hj.Hijack()
		if err == nil {
			conn.Close()
		}
	}))
	defer killer.Close()
	healthy, cbH := newRealBackend(t)

	// Tiny replay buffer so a 4 MiB body must stream past it.
	p, pts, reg := newTestProxy(t, Config{
		Backends:    []string{killer.URL, healthy.URL},
		ReplayBytes: 64 << 10,
	})

	// Find a payload the killer owns. Routing is deterministic, so
	// ownership is computed through the proxy's own ring rather than by
	// probing with live requests.
	q, err := url.ParseQuery(strings.SplitN(compressQuery, "?", 2)[1])
	if err != nil {
		t.Fatal(err)
	}
	var body []byte
	for seed := float32(0); ; seed++ {
		body = rawF32Body(1<<20, seed) // 4 MiB
		key := p.routeKey(epCompress, q, body[:64<<10])
		if p.Ring().Owner(key) == 0 {
			break
		}
		if seed > 64 {
			t.Fatal("no seed routed to backend 0 — ring or routing broken")
		}
	}

	resp := postCompress(t, pts.URL, body, nil)
	msg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d (%s), want 502", resp.StatusCode, msg)
	}
	if !strings.Contains(string(msg), "partially forwarded") {
		t.Fatalf("502 body %q does not name the partial-forward refusal", msg)
	}
	if got := reg.Counter("proxy.failover_denied").Value(); got != 1 {
		t.Fatalf("proxy.failover_denied = %d, want 1", got)
	}
	if got := reg.Counter("proxy.failover").Value(); got != 0 {
		t.Fatalf("proxy.failover = %d, want 0 (no silent retry)", got)
	}
	if cbH.hits.Load() != 0 {
		t.Fatal("healthy backend received the partially-forwarded request — silent retry happened")
	}
}

// Backend backpressure passes through untouched: a 429 is not a failure
// to fail over from, and the backend's own Retry-After reaches the
// client.
func TestProxy429Passthrough(t *testing.T) {
	busy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.Copy(io.Discard, r.Body)
		w.Header().Set("Retry-After", "7")
		http.Error(w, "saturated", http.StatusTooManyRequests)
	}))
	defer busy.Close()

	_, pts, reg := newTestProxy(t, Config{Backends: []string{busy.URL}})
	resp := postCompress(t, pts.URL, rawF32Body(1024, 3), nil)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After %q, want the backend's own \"7\"", got)
	}
	if got := reg.Counter("proxy.failover").Value(); got != 0 {
		t.Fatalf("proxy.failover = %d on a 429, want 0", got)
	}
}

// Per-tenant token buckets: an exhausted tenant gets 429 + Retry-After
// without consuming backend capacity; other tenants are unaffected.
func TestProxyTenantThrottle(t *testing.T) {
	ts, cb := newRealBackend(t)
	_, pts, reg := newTestProxy(t, Config{
		Backends:    []string{ts.URL},
		TenantRate:  0.5, // one token per 2s: no refill within the test
		TenantBurst: 2,
	})

	body := rawF32Body(1024, 4)
	for i := 0; i < 2; i++ {
		resp := postCompress(t, pts.URL, body, map[string]string{"X-Ceresz-Tenant": "acme"})
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("in-budget request %d: status %d", i, resp.StatusCode)
		}
	}
	backendBefore := cb.hits.Load()
	resp := postCompress(t, pts.URL, body, map[string]string{"X-Ceresz-Tenant": "acme"})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget request: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("tenant throttle carried no Retry-After")
	}
	if cb.hits.Load() != backendBefore {
		t.Fatal("throttled request reached the backend")
	}
	if got := reg.Counter("proxy.compress.throttled").Value(); got != 1 {
		t.Fatalf("proxy.compress.throttled = %d, want 1", got)
	}

	// A different tenant has its own budget.
	resp = postCompress(t, pts.URL, body, map[string]string{"X-Ceresz-Tenant": "other"})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("other tenant throttled by acme's spending: status %d", resp.StatusCode)
	}
}

// Health-driven ring rebuilds: marking a backend dead removes it from
// the ring; readiness flips 503 when nothing is routable.
func TestProxyReadinessAndRebuild(t *testing.T) {
	tsA, _ := newRealBackend(t)
	p, pts, reg := newTestProxy(t, Config{Backends: []string{tsA.URL}})

	get := func(path string) (int, string) {
		resp, err := http.Get(pts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if code, body := get("/healthz/ready"); code != http.StatusOK || !strings.Contains(body, `"ok"`) {
		t.Fatalf("ready = %d %q, want 200 ok", code, body)
	}

	rebuildsBefore := reg.Counter("proxy.ring_rebuilds").Value()
	p.checker.setState(0, StateDead)
	p.rebuild()
	if got := reg.Counter("proxy.ring_rebuilds").Value(); got != rebuildsBefore+1 {
		t.Fatalf("ring_rebuilds = %d, want %d", got, rebuildsBefore+1)
	}
	if code, body := get("/healthz/ready"); code != http.StatusServiceUnavailable || !strings.Contains(body, "no-backends") {
		t.Fatalf("ready with dead backend = %d %q, want 503 no-backends", code, body)
	}
	if got := reg.Gauge("proxy.backends_routable").Value(); got != 0 {
		t.Fatalf("backends_routable = %d, want 0", got)
	}

	// A /v1 request now gets an honest 503 with a retry hint.
	resp := postCompress(t, pts.URL, rawF32Body(1024, 5), nil)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("routing with empty ring: %d (Retry-After %q), want 503 with hint",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	// Revival restores routing.
	p.checker.setState(0, StateHealthy)
	p.rebuild()
	if code, _ := get("/healthz/ready"); code != http.StatusOK {
		t.Fatalf("ready after revival = %d, want 200", code)
	}
}

func TestProxyDebugRing(t *testing.T) {
	tsA, _ := newRealBackend(t)
	tsB, _ := newRealBackend(t)
	_, pts, _ := newTestProxy(t, Config{Backends: []string{tsA.URL, tsB.URL}})

	resp, err := http.Get(pts.URL + "/debug/ring")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view struct {
		Generation int64 `json:"generation"`
		Vnodes     int   `json:"vnodes"`
		Routable   int   `json:"routable"`
		Backends   []struct {
			URL   string  `json:"url"`
			State string  `json:"state"`
			Share float64 `json:"share"`
		} `json:"backends"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	if view.Routable != 2 || len(view.Backends) != 2 {
		t.Fatalf("ring view: routable=%d backends=%d, want 2/2", view.Routable, len(view.Backends))
	}
	if view.Vnodes != 128 {
		t.Fatalf("vnodes = %d, want 128 (2 healthy x default 64)", view.Vnodes)
	}
	var shareSum float64
	for _, b := range view.Backends {
		if b.State != "healthy" {
			t.Fatalf("backend %s state %q, want healthy", b.URL, b.State)
		}
		shareSum += b.Share
	}
	if math.Abs(shareSum-1) > 1e-9 {
		t.Fatalf("shares sum to %v, want 1", shareSum)
	}
}

// The proxy's own error surface matches the backend's: unknown /v1 paths
// 404, non-POST methods 405.
func TestProxyMethodAndPathErrors(t *testing.T) {
	ts, _ := newRealBackend(t)
	_, pts, _ := newTestProxy(t, Config{Backends: []string{ts.URL}})

	resp, err := http.Get(pts.URL + compressQuery)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/compress = %d, want 405", resp.StatusCode)
	}

	resp, err = http.Post(pts.URL+"/v1/nonsense", "application/octet-stream", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("POST /v1/nonsense = %d, want 404", resp.StatusCode)
	}
}

func TestParseObjectivesBindsProxyInstruments(t *testing.T) {
	objs, err := ParseObjectives("compress:p99<25ms:99.9,decompress:err:99.99")
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 {
		t.Fatalf("parsed %d objectives, want 2", len(objs))
	}
	if objs[0].HistName != "proxy.compress.latency_us" {
		t.Fatalf("latency SLI bound to %q", objs[0].HistName)
	}
	if objs[1].TotalCounter != "proxy.decompress.requests" || objs[1].BadCounter != "proxy.decompress.status_5xx" {
		t.Fatalf("err SLI bound to %q/%q", objs[1].TotalCounter, objs[1].BadCounter)
	}
	if _, err := ParseObjectives("frobnicate:err:99"); err == nil {
		t.Fatal("unknown endpoint accepted")
	}
}

func TestFirstFramePayload(t *testing.T) {
	payload := []byte("hello frame")
	frame := append([]byte("CSZF"), 0, 0, 0, 0)
	binary.LittleEndian.PutUint32(frame[4:], uint32(len(payload)))
	frame = append(frame, payload...)
	frame = append(frame, "trailing junk"...)

	got, ok := firstFramePayload(frame)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("payload = %q ok=%v", got, ok)
	}
	if _, ok := firstFramePayload([]byte("CSZ")); ok {
		t.Fatal("short prefix accepted")
	}
	if _, ok := firstFramePayload([]byte("XXXX\x04\x00\x00\x00data")); ok {
		t.Fatal("wrong magic accepted")
	}
	if _, ok := firstFramePayload(frame[:8+len(payload)-1]); ok {
		t.Fatal("truncated payload accepted")
	}
}
