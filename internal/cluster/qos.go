package cluster

import (
	"sync"
	"time"
)

// Per-tenant QoS, evaluated before routing so a noisy tenant burns proxy
// admission slots, not backend codec workers:
//
//   - TenantLimiter: one token bucket per tenant id (X-Ceresz-Tenant),
//     refilled at -tenant-rate with -tenant-burst capacity. An exhausted
//     bucket answers 429 with a Retry-After computed from the refill
//     rate, so well-behaved clients (client/) back off exactly long
//     enough instead of guessing.
//   - admitter: a bounded worker pool with two admission classes. High
//     (the default) may use every slot; low (X-Ceresz-Priority: low) is
//     capped at a configurable share, so batch/backfill traffic can
//     saturate an idle cluster yet never crowd interactive traffic out
//     of more than its share. Admission is non-blocking — overflow is
//     refused with 429 immediately, the same contract as the backend's
//     own admission semaphore.

// tokenBucket is one tenant's refillable budget. Guarded by the
// limiter's mutex.
type tokenBucket struct {
	tokens  float64
	last    time.Time // last refill
	lastUse time.Time // eviction recency
}

// TenantLimiter rate-limits request admission per tenant id.
type TenantLimiter struct {
	rate  float64 // tokens per second
	burst float64
	// maxTenants bounds the bucket map; past it, buckets idle longest are
	// evicted (an evicted tenant restarts with a full burst — strictly
	// more permissive, never less).
	maxTenants int

	mu sync.Mutex
	m  map[string]*tokenBucket
}

// NewTenantLimiter builds a limiter granting rate requests/second with
// burst capacity per tenant. rate <= 0 disables limiting (Allow always
// succeeds); burst <= 0 defaults to max(1, rate).
func NewTenantLimiter(rate float64, burst int, maxTenants int) *TenantLimiter {
	b := float64(burst)
	if b <= 0 {
		b = rate
		if b < 1 {
			b = 1
		}
	}
	if maxTenants <= 0 {
		maxTenants = 16 << 10
	}
	return &TenantLimiter{rate: rate, burst: b, maxTenants: maxTenants,
		m: make(map[string]*tokenBucket)}
}

// Enabled reports whether the limiter actually limits.
func (l *TenantLimiter) Enabled() bool { return l != nil && l.rate > 0 }

// Allow spends one token from tenant's bucket. When the bucket is empty
// it returns false and the duration until a token accrues — the 429's
// Retry-After. The empty tenant id shares one bucket ("": untagged
// traffic is a tenant too, so it cannot bypass QoS by omitting the
// header).
func (l *TenantLimiter) Allow(tenant string, now time.Time) (bool, time.Duration) {
	if !l.Enabled() {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.m[tenant]
	if !ok {
		if len(l.m) >= l.maxTenants {
			l.evictIdle(now)
		}
		b = &tokenBucket{tokens: l.burst, last: now}
		l.m[tenant] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	b.lastUse = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / l.rate
	return false, time.Duration(need * float64(time.Second))
}

// evictIdle drops the least-recently-used half of the buckets. Called
// under l.mu when the map is full; a linear scan at a bounded size beats
// carrying an intrusive LRU list for a map that normally never fills.
func (l *TenantLimiter) evictIdle(now time.Time) {
	type cand struct {
		id   string
		idle time.Duration
	}
	cands := make([]cand, 0, len(l.m))
	for id, b := range l.m {
		cands = append(cands, cand{id, now.Sub(b.lastUse)})
	}
	// Select the median idle time by sorting; len is bounded by
	// maxTenants so this is rare and cheap relative to the map churn that
	// caused it.
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j].idle > cands[j-1].idle; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	for _, c := range cands[:len(cands)/2] {
		delete(l.m, c.id)
	}
}

// Tenants reports the live bucket count (tests, /debug/ring).
func (l *TenantLimiter) Tenants() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.m)
}

// admitter is the bounded proxy worker pool with two priority classes.
type admitter struct {
	sem chan struct{}
	// lowMax caps slots the low class may hold concurrently.
	lowMax int

	mu  sync.Mutex
	low int
}

// newAdmitter builds a pool of workers slots where the low-priority class
// may hold at most lowMax of them (lowMax is clamped to [1, workers]).
func newAdmitter(workers, lowMax int) *admitter {
	if workers < 1 {
		workers = 1
	}
	if lowMax < 1 {
		lowMax = 1
	}
	if lowMax > workers {
		lowMax = workers
	}
	return &admitter{sem: make(chan struct{}, workers), lowMax: lowMax}
}

// tryAdmit claims a slot without blocking. Low-priority requests are
// additionally capped at lowMax concurrent slots. The returned release
// function is nil when admission was refused.
func (a *admitter) tryAdmit(low bool) (release func()) {
	if low {
		a.mu.Lock()
		if a.low >= a.lowMax {
			a.mu.Unlock()
			return nil
		}
		a.low++
		a.mu.Unlock()
		select {
		case a.sem <- struct{}{}:
			return func() {
				<-a.sem
				a.mu.Lock()
				a.low--
				a.mu.Unlock()
			}
		default:
			a.mu.Lock()
			a.low--
			a.mu.Unlock()
			return nil
		}
	}
	select {
	case a.sem <- struct{}{}:
		return func() { <-a.sem }
	default:
		return nil
	}
}
