package wse

// Cycle attribution.
//
// Stats counts what a PE *did*; Attribution additionally explains the
// cycles it did nothing, by splitting each PE's timeline [0, Elapsed]
// into disjoint buckets:
//
//	Compute      — Spend charges (sub-stage execution)
//	RelayForward — Forward + Send + Emit charges (fabric movement)
//	QueueWait    — idle, next message's producer had not yet sent it
//	FabricStall  — idle, next message already in flight on the fabric
//	Idle         — the residual: no pending work (ramp-up before the
//	               first delivery, drain-out after the last)
//
// The buckets sum to Elapsed exactly by construction. MailboxWait is the
// odd one out: messages queue in the mailbox only while the processor is
// busy, so it overlaps the busy buckets and is reported alongside them,
// never added in. All values derive from the simulated clock, so they
// are bit-identical across Config.Workers counts.

// PEAttribution is one PE's timeline decomposition, in cycles.
type PEAttribution struct {
	PE Coord `json:"pe"`
	// Compute is processor time in Spend (stage work).
	Compute int64 `json:"compute"`
	// RelayForward is processor time moving data: Forward relays, Send
	// ramp transfers, and Emit egress.
	RelayForward int64 `json:"relay_forward"`
	// QueueWait is idle time attributable to upstream backpressure.
	QueueWait int64 `json:"queue_wait"`
	// FabricStall is idle time attributable to fabric transfer latency.
	FabricStall int64 `json:"fabric_stall"`
	// Idle is the residual idle time (ramp-up and drain-out).
	Idle int64 `json:"idle"`
	// MailboxWait is total message residency in this PE's mailbox; it
	// overlaps the busy buckets and is excluded from the timeline sum.
	MailboxWait int64 `json:"mailbox_wait"`
	// Handled, Forwarded and Routed mirror Stats for context.
	Handled   int64 `json:"handled"`
	Forwarded int64 `json:"forwarded"`
	Routed    int64 `json:"routed"`
}

// Busy is the occupied-processor portion of the timeline.
func (a PEAttribution) Busy() int64 { return a.Compute + a.RelayForward }

// Attribution is the mesh-wide cycle decomposition of one run.
type Attribution struct {
	// Elapsed is the run length in cycles; every PE's buckets sum to it.
	Elapsed int64 `json:"elapsed"`
	// ActivePEs is the number of PEs listed (those that did any work);
	// MeshPEs is the full mesh size.
	ActivePEs int `json:"active_pes"`
	MeshPEs   int `json:"mesh_pes"`
	// PEs holds the per-PE decompositions, row-major, active PEs only.
	PEs []PEAttribution `json:"pes"`
	// Totals sums the buckets over the active PEs (Totals.PE is zero).
	Totals PEAttribution `json:"totals"`
}

// Attribution decomposes the last Run's per-PE timelines. Only PEs that
// did any work (dispatched, routed, or accumulated wait) are listed —
// an untouched PE is trivially all-Idle.
func (m *Mesh) Attribution() Attribution {
	elapsed := m.Elapsed()
	att := Attribution{Elapsed: elapsed, MeshPEs: len(m.pes)}
	for i := range m.pes {
		s := &m.pes[i].stats
		if s.BusyCycles() == 0 && s.Handled == 0 && s.Routed == 0 &&
			s.QueueWaitCycles == 0 && s.FabricStallCycles == 0 {
			continue
		}
		pa := PEAttribution{
			PE:           m.pes[i].coord,
			Compute:      s.ComputeCycles,
			RelayForward: s.RelayCycles + s.SendCycles,
			QueueWait:    s.QueueWaitCycles,
			FabricStall:  s.FabricStallCycles,
			MailboxWait:  s.MailboxWaitCycles,
			Handled:      s.Handled,
			Forwarded:    s.Forwarded,
			Routed:       s.Routed,
		}
		pa.Idle = elapsed - pa.Busy() - pa.QueueWait - pa.FabricStall
		att.PEs = append(att.PEs, pa)
		att.Totals.Compute += pa.Compute
		att.Totals.RelayForward += pa.RelayForward
		att.Totals.QueueWait += pa.QueueWait
		att.Totals.FabricStall += pa.FabricStall
		att.Totals.Idle += pa.Idle
		att.Totals.MailboxWait += pa.MailboxWait
		att.Totals.Handled += pa.Handled
		att.Totals.Forwarded += pa.Forwarded
		att.Totals.Routed += pa.Routed
	}
	att.ActivePEs = len(att.PEs)
	return att
}
