package wse

import (
	"strings"
	"testing"
)

// echoProgram spends a fixed cost per message and forwards east until the
// edge, then emits.
type echoProgram struct {
	cost int64
}

func (p *echoProgram) Init(*Context) {}

func (p *echoProgram) OnMessage(ctx *Context, msg Message) {
	ctx.Spend(p.cost)
	if ctx.Coord().Col == ctx.Cols()-1 {
		ctx.Emit(msg.Payload, msg.Wavelets)
		return
	}
	ctx.Forward(East, msg)
}

func TestMeshGeometry(t *testing.T) {
	m, err := NewMesh(Config{Rows: 3, Cols: 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.Config().MemPerPE != 48*1024 {
		t.Fatalf("default memory %d, want 48KiB", m.Config().MemPerPE)
	}
	if m.Config().ClockHz != 850e6 {
		t.Fatalf("default clock %g, want 850MHz", m.Config().ClockHz)
	}
	if _, err := NewMesh(Config{Rows: 0, Cols: 5}); err == nil {
		t.Fatal("accepted zero rows")
	}
	if _, err := NewMesh(Config{Rows: 3000, Cols: 3000}); err == nil {
		t.Fatal("accepted oversized mesh")
	}
	if got := m.PE(2, 3).Coord(); got != (Coord{Row: 2, Col: 3}) {
		t.Fatalf("PE coord = %v", got)
	}
}

func TestDirOpposite(t *testing.T) {
	pairs := map[Dir]Dir{North: South, South: North, East: West, West: East}
	for d, o := range pairs {
		if d.Opposite() != o {
			t.Fatalf("%v.Opposite() = %v, want %v", d, d.Opposite(), o)
		}
	}
	if Ramp.Opposite() != Ramp {
		t.Fatal("Ramp.Opposite() != Ramp")
	}
}

func TestSingleHopTiming(t *testing.T) {
	// One message through a 1×2 mesh: handler cost 100 on PE0 (which
	// forwards, charging wavelets), link latency 1 + 8 wavelets in flight,
	// then 100 on PE1 which emits (charging wavelets again).
	m, _ := NewMesh(Config{Rows: 1, Cols: 2})
	for c := 0; c < 2; c++ {
		m.SetProgram(0, c, &echoProgram{cost: 100})
	}
	m.Inject(0, 0, Message{Color: 1, Payload: "blk", Wavelets: 8}, 0)
	elapsed, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	// PE0: 100 compute + 8 relay = ends at 108. Link: 1 latency + 8
	// wavelets in flight → arrives 117. PE1: 100 compute + 8 emit → 225.
	if elapsed != 225 {
		t.Fatalf("elapsed = %d, want 225", elapsed)
	}
	if got := m.PE(0, 0).Stats().ComputeCycles; got != 100 {
		t.Fatalf("PE0 compute = %d", got)
	}
	if got := m.PE(0, 0).Stats().RelayCycles; got != 8 {
		t.Fatalf("PE0 relay = %d", got)
	}
	em := m.Emissions()
	if len(em) != 1 || em[0].Payload != "blk" || em[0].At != 225 {
		t.Fatalf("emissions = %+v", em)
	}
}

func TestSendChargesRampLatency(t *testing.T) {
	m, _ := NewMesh(Config{Rows: 1, Cols: 2, RampLatency: 4})
	sent := false
	m.SetProgram(0, 0, ProgramFunc(func(ctx *Context, msg Message) {
		ctx.Send(East, msg)
		sent = true
	}))
	var arrived int64 = -1
	m.SetProgram(0, 1, ProgramFunc(func(ctx *Context, msg Message) {
		arrived = ctx.Now()
	}))
	m.Inject(0, 0, Message{Color: 0, Payload: nil, Wavelets: 10}, 0)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if !sent {
		t.Fatal("sender never ran")
	}
	// Send cost = ramp 4 + 10 wavelets = 14; link = 1 + 10; arrival at 25.
	if arrived != 25 {
		t.Fatalf("arrival at %d, want 25", arrived)
	}
	if got := m.PE(0, 0).Stats().SendCycles; got != 14 {
		t.Fatalf("send cycles = %d, want 14", got)
	}
}

func TestPipelineOverlap(t *testing.T) {
	// Three PEs, cost 1000 each, 10 blocks: steady-state throughput must be
	// one block per ~(1000 + transfer) cycles, not per 3000 — the pipeline
	// parallelism of paper Fig. 2.
	const blocks = 10
	const cost = 1000
	m, _ := NewMesh(Config{Rows: 1, Cols: 3})
	for c := 0; c < 3; c++ {
		m.SetProgram(0, c, &echoProgram{cost: cost})
	}
	for b := 0; b < blocks; b++ {
		m.Inject(0, 0, Message{Color: 0, Payload: b, Wavelets: 32}, 0)
	}
	elapsed, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Emissions()) != blocks {
		t.Fatalf("emitted %d blocks, want %d", len(m.Emissions()), blocks)
	}
	// Serial execution would be ≈ blocks · 3 · cost = 30000.
	// Pipelined: fill (~3·(cost+32+33)) + (blocks-1)·(cost+32) ≈ 12.5k.
	serial := int64(blocks * 3 * cost)
	if elapsed >= serial*2/3 {
		t.Fatalf("elapsed %d shows no pipeline overlap (serial would be %d)", elapsed, serial)
	}
	// Blocks must come out in order.
	for i, e := range m.Emissions() {
		if e.Payload.(int) != i {
			t.Fatalf("emission %d carries block %v; order not preserved", i, e.Payload)
		}
	}
}

func TestLinkSerialization(t *testing.T) {
	// Two messages forwarded back-to-back share one link; the second's
	// arrival must be pushed out by the first's occupancy.
	m, _ := NewMesh(Config{Rows: 1, Cols: 2})
	m.SetProgram(0, 0, ProgramFunc(func(ctx *Context, msg Message) {
		// Zero compute: both sends queue in the same handler batch when
		// both messages are delivered at t=0 (handled sequentially).
		ctx.Forward(East, msg)
	}))
	var arrivals []int64
	m.SetProgram(0, 1, ProgramFunc(func(ctx *Context, msg Message) {
		arrivals = append(arrivals, ctx.Now())
	}))
	m.Inject(0, 0, Message{Color: 0, Wavelets: 100}, 0)
	m.Inject(0, 0, Message{Color: 0, Wavelets: 100}, 0)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != 2 {
		t.Fatalf("got %d arrivals", len(arrivals))
	}
	// First: handler [0,100] (relay), link 1+100 → 201.
	// Second: handler [100,200], link occupied until 201 → departs 201,
	// arrives 302.
	if arrivals[0] != 201 || arrivals[1] != 302 {
		t.Fatalf("arrivals = %v, want [201 302]", arrivals)
	}
}

func TestMemoryBudget(t *testing.T) {
	m, _ := NewMesh(Config{Rows: 1, Cols: 1, MemPerPE: 1024})
	var allocErr error
	m.SetProgram(0, 0, ProgramFunc(func(ctx *Context, msg Message) {
		if err := ctx.Alloc(512); err != nil {
			t.Errorf("first alloc failed: %v", err)
		}
		if err := ctx.Alloc(600); err == nil {
			t.Error("over-budget alloc succeeded")
		} else {
			allocErr = err
		}
		ctx.Free(512)
		if err := ctx.Alloc(1024); err != nil {
			t.Errorf("alloc after free failed: %v", err)
		}
	}))
	m.Inject(0, 0, Message{Color: 0, Wavelets: 1}, 0)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if allocErr == nil || !strings.Contains(allocErr.Error(), "out of memory") {
		t.Fatalf("alloc error = %v", allocErr)
	}
	if got := m.PE(0, 0).Stats().MemPeak; got != 1024 {
		t.Fatalf("mem peak = %d, want 1024", got)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, []Emission) {
		m, _ := NewMesh(Config{Rows: 2, Cols: 4})
		for r := 0; r < 2; r++ {
			for c := 0; c < 4; c++ {
				m.SetProgram(r, c, &echoProgram{cost: int64(50 + 10*c)})
			}
		}
		for b := 0; b < 20; b++ {
			m.Inject(b%2, 0, Message{Color: 0, Payload: b, Wavelets: 16}, int64(b))
		}
		elapsed, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return elapsed, m.Emissions()
	}
	e1, em1 := run()
	e2, em2 := run()
	if e1 != e2 {
		t.Fatalf("elapsed differs: %d vs %d", e1, e2)
	}
	if len(em1) != len(em2) {
		t.Fatalf("emission counts differ")
	}
	for i := range em1 {
		if em1[i] != em2[i] {
			t.Fatalf("emission %d differs: %+v vs %+v", i, em1[i], em2[i])
		}
	}
}

func TestRowsIndependent(t *testing.T) {
	// Identical work on 1 row vs 4 rows: per-row completion time must be
	// identical — the basis of the paper's linear row scaling (Fig. 7).
	rowTime := func(rows int) int64 {
		m, _ := NewMesh(Config{Rows: rows, Cols: 2})
		for r := 0; r < rows; r++ {
			for c := 0; c < 2; c++ {
				m.SetProgram(r, c, &echoProgram{cost: 500})
			}
			for b := 0; b < 8; b++ {
				m.Inject(r, 0, Message{Color: 0, Payload: b, Wavelets: 32}, 0)
			}
		}
		elapsed, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		if len(m.Emissions()) != rows*8 {
			t.Fatalf("rows=%d: %d emissions", rows, len(m.Emissions()))
		}
		return elapsed
	}
	t1 := rowTime(1)
	t4 := rowTime(4)
	if t1 != t4 {
		t.Fatalf("row completion differs with row count: %d vs %d (rows must not interfere)", t1, t4)
	}
}

func TestErrInjectToProgramlessPE(t *testing.T) {
	m, _ := NewMesh(Config{Rows: 1, Cols: 1})
	m.Inject(0, 0, Message{Color: 0, Wavelets: 1}, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("delivery to programless PE did not panic")
		}
	}()
	_, _ = m.Run()
}

func TestContextPanics(t *testing.T) {
	m, _ := NewMesh(Config{Rows: 1, Cols: 1})
	cases := []struct {
		name string
		f    func(ctx *Context, msg Message)
	}{
		{"send off mesh", func(ctx *Context, msg Message) { ctx.Send(East, msg) }},
		{"send to ramp", func(ctx *Context, msg Message) { ctx.Send(Ramp, msg) }},
		{"bad color", func(ctx *Context, msg Message) {
			msg.Color = 24
			ctx.Send(West, msg)
		}},
		{"zero wavelets", func(ctx *Context, msg Message) {
			msg.Wavelets = 0
			ctx.Send(West, msg)
		}},
		{"negative spend", func(ctx *Context, msg Message) { ctx.Spend(-1) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m, _ := NewMesh(Config{Rows: 1, Cols: 1})
			m.SetProgram(0, 0, ProgramFunc(c.f))
			m.Inject(0, 0, Message{Color: 0, Wavelets: 4}, 0)
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", c.name)
				}
			}()
			_, _ = m.Run()
		})
	}
	_ = m
}

func TestSeconds(t *testing.T) {
	m, _ := NewMesh(Config{Rows: 1, Cols: 1})
	if got := m.Seconds(850_000_000); got != 1.0 {
		t.Fatalf("Seconds(850M cycles) = %g, want 1", got)
	}
}

func TestLivelockGuard(t *testing.T) {
	// Two PEs ping-ponging forever must trip MaxEvents instead of hanging.
	m, _ := NewMesh(Config{Rows: 1, Cols: 2, MaxEvents: 1000})
	bounce := func(d Dir) Program {
		return ProgramFunc(func(ctx *Context, msg Message) {
			ctx.Forward(d, msg)
		})
	}
	m.SetProgram(0, 0, bounce(East))
	m.SetProgram(0, 1, bounce(West))
	m.Inject(0, 0, Message{Color: 0, Wavelets: 1}, 0)
	if _, err := m.Run(); err == nil {
		t.Fatal("livelock not detected")
	}
}
