package wse

import (
	"fmt"
	"sort"
)

// Block-lifecycle span tracing.
//
// A span follows one unit of work (a CereSZ block) across the wafer:
// host injection, every router hop, every handler that touched it, and
// the final wafer egress. Unlike the Tracer — which records the global
// schedule and therefore forces the sequential engine — span events are
// keyed to their cause event's deterministic (at, src, seq) ordering key,
// so sharded runs merge them into exactly the sequence the sequential
// engine would have produced. Attaching a span log never changes how a
// run is partitioned, and its output is bit-identical for any
// Config.Workers.

// SpanKind classifies one span event.
type SpanKind uint8

// Span event kinds, in lifecycle order.
const (
	// SpanInject is the host delivery onto the wafer (Mesh.Inject).
	SpanInject SpanKind = iota
	// SpanRoute is a router pass-through hop (SetRoute, no processor).
	SpanRoute
	// SpanDispatch is a program handler invocation for the span: a relay
	// hop, a column-feed hand-off, or a stage-group execution, as named
	// by the program via Context.LabelSpan.
	SpanDispatch
	// SpanEject is the wafer egress (Context.Emit).
	SpanEject
)

func (k SpanKind) String() string {
	switch k {
	case SpanInject:
		return "inject"
	case SpanRoute:
		return "route"
	case SpanDispatch:
		return "dispatch"
	case SpanEject:
		return "eject"
	default:
		return fmt.Sprintf("SpanKind(%d)", uint8(k))
	}
}

// SpanEvent is one recorded point of a span's lifecycle, with cycle
// timestamps taken from the simulated clock.
type SpanEvent struct {
	// Span is the block's span id (Message.Span).
	Span int64 `json:"span"`
	// Kind classifies the event.
	Kind SpanKind `json:"kind"`
	// PE is where it happened.
	PE Coord `json:"pe"`
	// At is the event's start cycle: dispatch start, route processing
	// time, injection delivery, or emission completion.
	At int64 `json:"at"`
	// End is the dispatch handler's end cycle, or the hop's arrival cycle
	// for routes; equal to At for inject and eject events.
	End int64 `json:"end"`
	// Sent is the cycle the dispatched/routed message was handed to the
	// fabric by its producer (dispatch and route events).
	Sent int64 `json:"sent,omitempty"`
	// Arrived is the delivery cycle at this PE (dispatch events); At −
	// Arrived is the message's mailbox wait.
	Arrived int64 `json:"arrived,omitempty"`
	// Label is the program's name for the handler's work (dispatch
	// events; Context.LabelSpan), e.g. "relay" or "group02".
	Label string `json:"label,omitempty"`
	// Wavelets is the triggering message's fabric size.
	Wavelets int `json:"wavelets,omitempty"`
}

// SpanLog collects span events for one run. Attach with Mesh.AttachSpans
// before Run; read Events (or BlockSpans) afterwards.
type SpanLog struct {
	events []SpanEvent
}

// AttachSpans installs a span log. Must be called before Run. Only
// messages carrying a non-zero Message.Span are recorded, so the caller
// chooses which traffic to follow. Span recording is shard-neutral: it
// neither changes the partition nor the simulated schedule, and the
// recorded sequence is bit-identical across worker counts.
func (m *Mesh) AttachSpans() *SpanLog {
	if m.ran {
		panic("wse: AttachSpans after Run")
	}
	m.spans = &SpanLog{}
	return m.spans
}

// Events returns every recorded span event in the sequential engine's
// processing order.
func (sl *SpanLog) Events() []SpanEvent { return sl.events }

// taggedSpanEvent annotates a span event with the ordering key of the
// event whose processing produced it, for the deterministic post-run
// merge (exactly the taggedEmission mechanism).
type taggedSpanEvent struct {
	at  int64
	src int32
	seq int64
	ev  SpanEvent
}

// BlockSpan is one block's assembled lifecycle: its events in timeline
// order plus the derived cycle decomposition.
type BlockSpan struct {
	// Span is the block's span id.
	Span int64 `json:"span"`
	// InjectAt is the host-delivery cycle (-1 if the span never recorded
	// an injection — e.g. spans started by Init-phase sends).
	InjectAt int64 `json:"inject_at"`
	// EjectAt is the wafer-egress cycle (-1 if the block never ejected).
	EjectAt int64 `json:"eject_at"`
	// Hops counts processor dispatches the block triggered.
	Hops int `json:"hops"`
	// RouteHops counts router pass-through hops.
	RouteHops int `json:"route_hops"`
	// WorkCycles sums the dispatch handler windows (relay + stage work).
	WorkCycles int64 `json:"work_cycles"`
	// QueueWaitCycles sums, per dispatch, the receiver-idle time before
	// the producer had sent the message (waiting on upstream).
	QueueWaitCycles int64 `json:"queue_wait_cycles"`
	// FabricCycles sums, per dispatch, the time between the producer's
	// hand-off and delivery (link latency, streaming, serialization).
	FabricCycles int64 `json:"fabric_cycles"`
	// MailboxCycles sums, per dispatch, delivery-to-dispatch mailbox
	// residency (the receiver was busy with earlier work).
	MailboxCycles int64 `json:"mailbox_cycles"`
	// Events is the block's full event list in timeline order.
	Events []SpanEvent `json:"events"`
}

// Latency is eject − inject, or 0 when either end is missing.
func (b BlockSpan) Latency() int64 {
	if b.InjectAt < 0 || b.EjectAt < 0 {
		return 0
	}
	return b.EjectAt - b.InjectAt
}

// BlockSpans groups the log's events by span id and derives each block's
// lifecycle decomposition. Blocks are returned in ascending span order;
// within a block, events keep timeline order (merged order on ties), so
// the result is bit-identical across worker counts.
func (sl *SpanLog) BlockSpans() []BlockSpan {
	byID := map[int64]*BlockSpan{}
	var order []int64
	for _, ev := range sl.events {
		b, ok := byID[ev.Span]
		if !ok {
			b = &BlockSpan{Span: ev.Span, InjectAt: -1, EjectAt: -1}
			byID[ev.Span] = b
			order = append(order, ev.Span)
		}
		b.Events = append(b.Events, ev)
		switch ev.Kind {
		case SpanInject:
			if b.InjectAt < 0 {
				b.InjectAt = ev.At
			}
		case SpanRoute:
			b.RouteHops++
		case SpanDispatch:
			b.Hops++
			b.WorkCycles += ev.End - ev.At
			b.MailboxCycles += ev.At - ev.Arrived
			if ev.Arrived > ev.Sent {
				b.FabricCycles += ev.Arrived - ev.Sent
			}
		case SpanEject:
			b.EjectAt = ev.At
		}
	}
	// Per-dispatch queue-wait needs the previous event's end on the same
	// span; compute after events are grouped and time-sorted.
	out := make([]BlockSpan, 0, len(order))
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, id := range order {
		b := byID[id]
		sort.SliceStable(b.Events, func(i, j int) bool { return b.Events[i].At < b.Events[j].At })
		prevEnd := b.InjectAt
		for _, ev := range b.Events {
			if ev.Kind == SpanDispatch {
				if prevEnd >= 0 && ev.Sent > prevEnd {
					b.QueueWaitCycles += ev.Sent - prevEnd
				}
			}
			if ev.End > prevEnd {
				prevEnd = ev.End
			}
		}
		out = append(out, *b)
	}
	return out
}
