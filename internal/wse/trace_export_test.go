package wse

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// tracedMesh runs a 1×3 pipeline with a router pass-through on the middle
// PE so the trace holds all three event kinds.
func tracedMesh(t *testing.T, attach func(*Mesh) *Tracer, blocks int) (*Mesh, *Tracer) {
	t.Helper()
	m, err := NewMesh(Config{Rows: 1, Cols: 3})
	if err != nil {
		t.Fatal(err)
	}
	tr := attach(m)
	m.SetRoute(0, 1, 4, East)
	m.SetProgram(0, 0, ProgramFunc(func(ctx *Context, msg Message) {
		ctx.Spend(10)
		fwd := msg
		fwd.Color = 4
		ctx.Send(East, fwd)
	}))
	m.SetProgram(0, 2, ProgramFunc(func(ctx *Context, msg Message) {
		ctx.Spend(5)
		ctx.Emit(msg.Payload, msg.Wavelets)
	}))
	for b := 0; b < blocks; b++ {
		m.Inject(0, 0, Message{Color: 0, Payload: b, Wavelets: 4}, int64(4*b))
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return m, tr
}

func TestChromeTraceRoundTrip(t *testing.T) {
	m, tr := tracedMesh(t, func(m *Mesh) *Tracer { return m.AttachTracer(1 << 10) }, 4)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf, m.Config()); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace is not a JSON array: %v\n%s", err, buf.String())
	}
	var slices, meta int
	tids := map[float64]bool{}
	names := map[string]bool{}
	for _, ev := range events {
		ph, _ := ev["ph"].(string)
		switch ph {
		case "X":
			slices++
			tids[ev["tid"].(float64)] = true
			names[ev["name"].(string)] = true
			if ev["dur"].(float64) < 1 {
				t.Fatalf("slice with dur < 1: %v", ev)
			}
		case "M":
			meta++
		default:
			t.Fatalf("unexpected ph %q in %v", ph, ev)
		}
	}
	if slices == 0 || meta == 0 {
		t.Fatalf("trace has %d slices, %d metadata events", slices, meta)
	}
	// All three PEs appear as distinct tracks, all three kinds as slices.
	if len(tids) != 3 {
		t.Fatalf("expected 3 PE tracks, got %v", tids)
	}
	for _, kind := range []string{"dispatch", "route", "emit"} {
		if !names[kind] {
			t.Fatalf("trace missing %q slices (have %v)", kind, names)
		}
	}
	// Dispatch slices carry color and wavelet args.
	for _, ev := range events {
		if ev["ph"] == "X" && ev["name"] == "dispatch" {
			args, ok := ev["args"].(map[string]any)
			if !ok {
				t.Fatalf("dispatch slice without args: %v", ev)
			}
			if _, ok := args["color"]; !ok {
				t.Fatalf("dispatch args missing color: %v", args)
			}
			if _, ok := args["wavelets"]; !ok {
				t.Fatalf("dispatch args missing wavelets: %v", args)
			}
		}
	}
}

func TestRingTracerKeepsMostRecent(t *testing.T) {
	// A cap of 4 over >4 events: KeepLast must hold the 4 newest, with
	// Dropped counting the evicted ones.
	_, tr := tracedMesh(t, func(m *Mesh) *Tracer { return m.AttachRingTracer(4) }, 6)
	total := int64(len(tr.Events())) + tr.Dropped
	if len(tr.Events()) != 4 {
		t.Fatalf("ring retained %d events, want 4", len(tr.Events()))
	}
	if tr.Dropped <= 0 {
		t.Fatal("ring eviction not counted in Dropped")
	}
	// Compare against an uncapped KeepFirst trace of the same schedule.
	_, full := tracedMesh(t, func(m *Mesh) *Tracer { return m.AttachTracer(1 << 10) }, 6)
	if full.Dropped != 0 {
		t.Fatal("reference trace unexpectedly dropped events")
	}
	if int64(len(full.Events())) != total {
		t.Fatalf("ring saw %d events total, reference saw %d", total, len(full.Events()))
	}
	// The retained entries are exactly the last 4, in occurrence order.
	want := full.Events()[len(full.Events())-4:]
	got := tr.Events()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ring event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	var sb strings.Builder
	tr.Write(&sb)
	if !strings.Contains(sb.String(), "evicted") {
		t.Fatalf("ring Write missing eviction note:\n%s", sb.String())
	}
}

func TestKeepFirstTracerDroppedAccounting(t *testing.T) {
	_, tr := tracedMesh(t, func(m *Mesh) *Tracer { return m.AttachTracer(4) }, 6)
	if len(tr.Events()) != 4 {
		t.Fatalf("retained %d events, want 4", len(tr.Events()))
	}
	if tr.Dropped <= 0 {
		t.Fatal("overflow not counted in Dropped")
	}
	_, full := tracedMesh(t, func(m *Mesh) *Tracer { return m.AttachTracer(1 << 10) }, 6)
	if int64(len(tr.Events()))+tr.Dropped != int64(len(full.Events())) {
		t.Fatalf("KeepFirst accounting: %d retained + %d dropped != %d total",
			len(tr.Events()), tr.Dropped, len(full.Events()))
	}
	// KeepFirst retains the earliest events.
	want := full.Events()[:4]
	for i, e := range tr.Events() {
		if e != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, e, want[i])
		}
	}
}

func TestRingTracerUnderCap(t *testing.T) {
	// Fewer events than the cap: identical to KeepFirst, nothing dropped.
	_, tr := tracedMesh(t, func(m *Mesh) *Tracer { return m.AttachRingTracer(1 << 10) }, 2)
	if tr.Dropped != 0 {
		t.Fatalf("dropped %d with room to spare", tr.Dropped)
	}
	if len(tr.Events()) == 0 {
		t.Fatal("no events retained")
	}
}

func TestHeatmapCSV(t *testing.T) {
	m, _ := tracedMesh(t, func(m *Mesh) *Tracer { return m.AttachTracer(16) }, 4)
	var buf bytes.Buffer
	if err := m.WriteHeatmapCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != m.Config().Rows {
		t.Fatalf("heatmap has %d rows, want %d", len(lines), m.Config().Rows)
	}
	for _, line := range lines {
		cells := strings.Split(line, ",")
		if len(cells) != m.Config().Cols {
			t.Fatalf("heatmap row %q has %d cells, want %d", line, len(cells), m.Config().Cols)
		}
	}
	// The head PE worked; the routed-through middle PE's processor did not.
	grid := m.UtilizationGrid()
	if grid[0][0] <= 0 || grid[0][2] <= 0 {
		t.Fatalf("active PEs show zero utilization: %v", grid)
	}
	if grid[0][1] != 0 {
		t.Fatalf("router pass-through PE shows processor utilization %g", grid[0][1])
	}
	for _, row := range grid {
		for _, u := range row {
			if u < 0 || u > 1 {
				t.Fatalf("utilization %g outside [0,1]", u)
			}
		}
	}
}

func TestHeatmapIdleMesh(t *testing.T) {
	m, err := NewMesh(Config{Rows: 2, Cols: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteHeatmapCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if want := "0.000000,0.000000\n0.000000,0.000000\n"; buf.String() != want {
		t.Fatalf("idle heatmap:\n%q\nwant\n%q", buf.String(), want)
	}
	var ascii bytes.Buffer
	m.WriteHeatmapASCII(&ascii)
	if !strings.Contains(ascii.String(), "2x2 mesh") {
		t.Fatalf("ascii heatmap header:\n%s", ascii.String())
	}
}

func TestHeatmapASCIIShades(t *testing.T) {
	m, _ := tracedMesh(t, func(m *Mesh) *Tracer { return m.AttachTracer(16) }, 8)
	var buf bytes.Buffer
	m.WriteHeatmapASCII(&buf)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// Header plus one line per mesh row, each |-delimited and Cols wide.
	if len(lines) != 1+m.Config().Rows {
		t.Fatalf("ascii heatmap:\n%s", buf.String())
	}
	for _, line := range lines[1:] {
		if !strings.HasPrefix(line, "|") || !strings.HasSuffix(line, "|") {
			t.Fatalf("unframed heatmap line %q", line)
		}
		if len(line) != m.Config().Cols+2 {
			t.Fatalf("heatmap line %q width %d, want %d", line, len(line), m.Config().Cols+2)
		}
	}
}
