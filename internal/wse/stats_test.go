package wse

import (
	"bytes"
	"strings"
	"testing"
)

func TestSummary(t *testing.T) {
	m, _ := NewMesh(Config{Rows: 2, Cols: 3})
	for r := 0; r < 2; r++ {
		for c := 0; c < 3; c++ {
			m.SetProgram(r, c, &echoProgram{cost: 100})
		}
	}
	for b := 0; b < 6; b++ {
		m.Inject(b%2, 0, Message{Color: 0, Payload: b, Wavelets: 8}, 0)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	s := m.Summary()
	if s.ActivePEs != 6 {
		t.Fatalf("active PEs %d, want 6", s.ActivePEs)
	}
	if s.Elapsed <= 0 || s.TotalCompute != 6*3*100 {
		t.Fatalf("summary %+v", s)
	}
	if s.BusiestCycles <= 0 {
		t.Fatal("no busiest PE")
	}
	if s.MeanUtilization <= 0 || s.MeanUtilization > 1 {
		t.Fatalf("utilization %g", s.MeanUtilization)
	}
}

func TestSummaryIdleMesh(t *testing.T) {
	m, _ := NewMesh(Config{Rows: 2, Cols: 2})
	s := m.Summary()
	if s.ActivePEs != 0 || s.MeanUtilization != 0 {
		t.Fatalf("idle mesh summary %+v", s)
	}
}

func TestRowProfileAndUtilization(t *testing.T) {
	m, _ := NewMesh(Config{Rows: 1, Cols: 4})
	for c := 0; c < 4; c++ {
		m.SetProgram(0, c, &echoProgram{cost: int64(10 * (c + 1))})
	}
	for b := 0; b < 4; b++ {
		m.Inject(0, 0, Message{Color: 0, Payload: b, Wavelets: 4}, 0)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	prof := m.RowProfile(0)
	if len(prof) != 4 {
		t.Fatalf("profile length %d", len(prof))
	}
	for c, st := range prof {
		if st.Handled != 4 {
			t.Fatalf("col %d handled %d messages, want 4", c, st.Handled)
		}
		if st.ComputeCycles != int64(4*10*(c+1)) {
			t.Fatalf("col %d compute %d", c, st.ComputeCycles)
		}
	}
	var buf bytes.Buffer
	m.WriteUtilization(&buf, 0)
	out := buf.String()
	if !strings.Contains(out, "row 0 utilization") || strings.Count(out, "\n") < 6 {
		t.Fatalf("utilization output:\n%s", out)
	}
}

func TestTopBusiest(t *testing.T) {
	m, _ := NewMesh(Config{Rows: 1, Cols: 3})
	for c := 0; c < 3; c++ {
		m.SetProgram(0, c, &echoProgram{cost: int64(100 * (3 - c))})
	}
	m.Inject(0, 0, Message{Color: 0, Wavelets: 2}, 0)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	top := m.TopBusiest(2)
	if len(top) != 2 {
		t.Fatalf("top %d", len(top))
	}
	if top[0].Stats().BusyCycles() < top[1].Stats().BusyCycles() {
		t.Fatal("TopBusiest not sorted")
	}
	if got := m.TopBusiest(100); len(got) != 3 {
		t.Fatalf("TopBusiest clamped to %d", len(got))
	}
}
