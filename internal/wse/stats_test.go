package wse

import (
	"bytes"
	"strings"
	"testing"
)

func TestSummary(t *testing.T) {
	m, _ := NewMesh(Config{Rows: 2, Cols: 3})
	for r := 0; r < 2; r++ {
		for c := 0; c < 3; c++ {
			m.SetProgram(r, c, &echoProgram{cost: 100})
		}
	}
	for b := 0; b < 6; b++ {
		m.Inject(b%2, 0, Message{Color: 0, Payload: b, Wavelets: 8}, 0)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	s := m.Summary()
	if s.ActivePEs != 6 {
		t.Fatalf("active PEs %d, want 6", s.ActivePEs)
	}
	if s.Elapsed <= 0 || s.TotalCompute != 6*3*100 {
		t.Fatalf("summary %+v", s)
	}
	if s.BusiestCycles <= 0 {
		t.Fatal("no busiest PE")
	}
	if s.MeanUtilization <= 0 || s.MeanUtilization > 1 {
		t.Fatalf("utilization %g", s.MeanUtilization)
	}
}

func TestSummaryIdleMesh(t *testing.T) {
	m, _ := NewMesh(Config{Rows: 2, Cols: 2})
	s := m.Summary()
	if s.ActivePEs != 0 || s.MeanUtilization != 0 {
		t.Fatalf("idle mesh summary %+v", s)
	}
}

func TestRowProfileAndUtilization(t *testing.T) {
	m, _ := NewMesh(Config{Rows: 1, Cols: 4})
	for c := 0; c < 4; c++ {
		m.SetProgram(0, c, &echoProgram{cost: int64(10 * (c + 1))})
	}
	for b := 0; b < 4; b++ {
		m.Inject(0, 0, Message{Color: 0, Payload: b, Wavelets: 4}, 0)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	prof := m.RowProfile(0)
	if len(prof) != 4 {
		t.Fatalf("profile length %d", len(prof))
	}
	for c, st := range prof {
		if st.Handled != 4 {
			t.Fatalf("col %d handled %d messages, want 4", c, st.Handled)
		}
		if st.ComputeCycles != int64(4*10*(c+1)) {
			t.Fatalf("col %d compute %d", c, st.ComputeCycles)
		}
	}
	var buf bytes.Buffer
	m.WriteUtilization(&buf, 0)
	out := buf.String()
	if !strings.Contains(out, "row 0 utilization") || strings.Count(out, "\n") < 6 {
		t.Fatalf("utilization output:\n%s", out)
	}
}

func TestSummarySingleActivePE(t *testing.T) {
	// One working PE on an otherwise idle mesh: the busiest PE must be the
	// active one and the mean utilization must average over active PEs
	// only (not be diluted by the 8 idle ones).
	m, _ := NewMesh(Config{Rows: 3, Cols: 3})
	m.SetProgram(1, 1, ProgramFunc(func(ctx *Context, msg Message) {
		ctx.Spend(500)
	}))
	m.Inject(1, 1, Message{Color: 0, Wavelets: 4}, 0)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	s := m.Summary()
	if s.ActivePEs != 1 {
		t.Fatalf("active PEs %d, want 1", s.ActivePEs)
	}
	if s.BusiestPE != (Coord{Row: 1, Col: 1}) {
		t.Fatalf("busiest %v, want (1,1)", s.BusiestPE)
	}
	if s.BusiestCycles != 500 || s.TotalCompute != 500 {
		t.Fatalf("summary %+v", s)
	}
	if s.MeanUtilization != 1.0 {
		t.Fatalf("mean utilization %g, want 1.0 (the only active PE is busy the whole run)", s.MeanUtilization)
	}
}

func TestWriteUtilizationGolden(t *testing.T) {
	// Deterministic single-PE run → byte-exact utilization table.
	m, _ := NewMesh(Config{Rows: 1, Cols: 2})
	m.SetProgram(0, 0, ProgramFunc(func(ctx *Context, msg Message) {
		ctx.Spend(75)
	}))
	m.SetProgram(0, 1, ProgramFunc(func(*Context, Message) {}))
	m.Inject(0, 0, Message{Color: 0, Wavelets: 4}, 0)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	m.WriteUtilization(&buf, 0)
	want := "row 0 utilization over 75 cycles:\n" +
		"  col      compute        relay         send    busy%     msgs\n" +
		"    0           75            0            0   100.0%        1\n" +
		"    1            0            0            0     0.0%        0\n"
	if got := buf.String(); got != want {
		t.Fatalf("utilization table:\n%q\nwant:\n%q", got, want)
	}
}

func TestWriteUtilizationIdleMesh(t *testing.T) {
	// Zero elapsed cycles must not divide by zero.
	m, _ := NewMesh(Config{Rows: 1, Cols: 2})
	var buf bytes.Buffer
	m.WriteUtilization(&buf, 0)
	out := buf.String()
	if !strings.Contains(out, "over 0 cycles") || !strings.Contains(out, "0.0%") {
		t.Fatalf("idle utilization table:\n%s", out)
	}
}

func TestTopBusiestTieBreak(t *testing.T) {
	// Equal busy cycles everywhere: ties break by row, then column.
	m, _ := NewMesh(Config{Rows: 2, Cols: 2})
	for r := 0; r < 2; r++ {
		for c := 0; c < 2; c++ {
			m.SetProgram(r, c, ProgramFunc(func(ctx *Context, msg Message) {
				ctx.Spend(100)
			}))
			m.Inject(r, c, Message{Color: 0, Wavelets: 4}, 0)
		}
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	top := m.TopBusiest(4)
	want := []Coord{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	for i, pe := range top {
		if pe.Coord() != want[i] {
			t.Fatalf("tie-break order %d: got %v, want %v", i, pe.Coord(), want[i])
		}
	}
}

func TestTopBusiestIdleAndZero(t *testing.T) {
	m, _ := NewMesh(Config{Rows: 1, Cols: 3})
	if got := m.TopBusiest(0); len(got) != 0 {
		t.Fatalf("TopBusiest(0) returned %d PEs", len(got))
	}
	// Idle mesh: the request is clamped and every PE reports zero busy.
	top := m.TopBusiest(5)
	if len(top) != 3 {
		t.Fatalf("TopBusiest clamped to %d, want 3", len(top))
	}
	for _, pe := range top {
		if pe.Stats().BusyCycles() != 0 {
			t.Fatalf("idle PE %v reports busy cycles", pe.Coord())
		}
	}
}

func TestTopBusiest(t *testing.T) {
	m, _ := NewMesh(Config{Rows: 1, Cols: 3})
	for c := 0; c < 3; c++ {
		m.SetProgram(0, c, &echoProgram{cost: int64(100 * (3 - c))})
	}
	m.Inject(0, 0, Message{Color: 0, Wavelets: 2}, 0)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	top := m.TopBusiest(2)
	if len(top) != 2 {
		t.Fatalf("top %d", len(top))
	}
	if top[0].Stats().BusyCycles() < top[1].Stats().BusyCycles() {
		t.Fatal("TopBusiest not sorted")
	}
	if got := m.TopBusiest(100); len(got) != 3 {
		t.Fatalf("TopBusiest clamped to %d", len(got))
	}
}
