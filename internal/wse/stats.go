package wse

import (
	"fmt"
	"io"
	"sort"
)

// MeshStats aggregates per-PE accounting over a finished run — the
// utilization view the paper's future-work section asks for ("further
// improve the computation balance and bandwidth utilization of PEs").
type MeshStats struct {
	// Elapsed is the completion cycle of the last PE.
	Elapsed int64
	// ActivePEs counts PEs that did any work.
	ActivePEs int
	// TotalCompute/TotalRelay/TotalSend sum the respective cycles over all
	// PEs.
	TotalCompute, TotalRelay, TotalSend int64
	// BusiestPE and BusiestCycles identify the critical PE.
	BusiestPE     Coord
	BusiestCycles int64
	// MeanUtilization is mean(busy/elapsed) over active PEs.
	MeanUtilization float64
	// MemPeak is the largest local-memory high-water mark.
	MemPeak int
}

// Summary computes aggregate statistics for the run so far.
func (m *Mesh) Summary() MeshStats {
	s := MeshStats{Elapsed: m.Elapsed()}
	var busySum float64
	for i := range m.pes {
		pe := &m.pes[i]
		st := pe.stats
		busy := st.BusyCycles()
		if busy == 0 && st.Handled == 0 {
			continue
		}
		s.ActivePEs++
		s.TotalCompute += st.ComputeCycles
		s.TotalRelay += st.RelayCycles
		s.TotalSend += st.SendCycles
		if busy > s.BusiestCycles {
			s.BusiestCycles = busy
			s.BusiestPE = pe.coord
		}
		if st.MemPeak > s.MemPeak {
			s.MemPeak = st.MemPeak
		}
		if s.Elapsed > 0 {
			busySum += float64(busy) / float64(s.Elapsed)
		}
	}
	if s.ActivePEs > 0 {
		s.MeanUtilization = busySum / float64(s.ActivePEs)
	}
	return s
}

// RowProfile returns the busy cycles of every PE in a row, west to east —
// the per-PE view behind the paper's Fig. 10 profiling.
func (m *Mesh) RowProfile(row int) []Stats {
	out := make([]Stats, m.cfg.Cols)
	for c := 0; c < m.cfg.Cols; c++ {
		out[c] = m.PE(row, c).Stats()
	}
	return out
}

// WriteUtilization renders a per-column utilization profile of one row.
func (m *Mesh) WriteUtilization(w io.Writer, row int) {
	elapsed := m.Elapsed()
	fmt.Fprintf(w, "row %d utilization over %d cycles:\n", row, elapsed)
	fmt.Fprintf(w, "%5s %12s %12s %12s %8s %8s\n", "col", "compute", "relay", "send", "busy%", "msgs")
	for c, st := range m.RowProfile(row) {
		busyPct := 0.0
		if elapsed > 0 {
			busyPct = 100 * float64(st.BusyCycles()) / float64(elapsed)
		}
		fmt.Fprintf(w, "%5d %12d %12d %12d %7.1f%% %8d\n",
			c, st.ComputeCycles, st.RelayCycles, st.SendCycles, busyPct, st.Handled)
	}
}

// TopBusiest returns the n busiest PEs in descending busy order.
func (m *Mesh) TopBusiest(n int) []*PE {
	pes := make([]*PE, len(m.pes))
	for i := range m.pes {
		pes[i] = &m.pes[i]
	}
	sort.Slice(pes, func(i, j int) bool {
		bi, bj := pes[i].stats.BusyCycles(), pes[j].stats.BusyCycles()
		if bi != bj {
			return bi > bj
		}
		ci, cj := pes[i].coord, pes[j].coord
		if ci.Row != cj.Row {
			return ci.Row < cj.Row
		}
		return ci.Col < cj.Col
	})
	if n > len(pes) {
		n = len(pes)
	}
	return pes[:n]
}
