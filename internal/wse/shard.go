package wse

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// Row sharding.
//
// Under the paper's data-parallel mapping, rows are fully independent
// (§4.1): every message a row's PEs exchange stays inside the row, so
// each row's event timeline can be simulated on its own. The engine
// detects that property instead of assuming it: rows are partitioned
// into shards — maximal runs of rows with no cross-row sends or routes —
// and each shard runs its own event loop on a worker goroutine. Anything
// the partitioner cannot prove row-local collapses into one shard, which
// is the sequential reference engine.

// ShardProfile declares how a program's traffic relates to the mesh's
// row structure, letting the engine split rows into independently
// simulable shards.
type ShardProfile struct {
	// RowLocal promises the program only sends East or West from its
	// message handlers, except while handling FeedColors traffic (which
	// runs in the sequential pre-pass and may flow South). The promise
	// is enforced: a North/South send from a sharded worker panics.
	RowLocal bool
	// FeedColors lists colors on which the program receives traffic fed
	// in from another row — the single-ingress column distribution of
	// §4.3, where blocks enter at one corner PE and are forwarded South
	// down column 0. Deliveries on these colors are resolved by a
	// deterministic sequential pre-pass before the shards run. The
	// pre-pass must cover the receiving PE's entire timeline, so PEs it
	// dispatches are sealed: any later delivery to them panics.
	FeedColors []Color
}

// ShardAware is optionally implemented by Programs to unlock row
// sharding. Programs without it are conservatively assumed to talk to
// adjacent rows, which glues their row to both neighbors and typically
// collapses the mesh into a single (sequential) shard.
type ShardAware interface {
	ShardProfile() ShardProfile
}

// shardSpan is one shard: the contiguous row range [lo, hi).
type shardSpan struct {
	lo, hi int
}

// runPlan is the partitioner's verdict for one Run.
type runPlan struct {
	sequential bool
	spans      []shardSpan
	feed       bool // some program declared FeedColors
	workers    int
}

// partition decides how to run the mesh: sequentially, or as row shards
// on a worker pool. Rows r and r+1 end up in the same shard when a
// North/South route crosses their boundary or a program on either row
// does not promise RowLocal behavior.
func (m *Mesh) partition() runPlan {
	rows := m.cfg.Rows
	workers := m.cfg.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// The tracer records a single globally ordered schedule, so traced
	// runs always use the sequential reference engine.
	if workers <= 1 || m.tracer != nil || rows == 1 {
		return runPlan{sequential: true}
	}

	glue := make([]bool, rows) // glue[r]: rows r and r+1 inseparable
	copy(glue, m.glue)
	var feedUnion uint32
	for i := range m.pes {
		pe := &m.pes[i]
		pe.feedMask = 0
		pe.sealed = false
		if pe.program == nil {
			continue
		}
		if sa, ok := pe.program.(ShardAware); ok {
			if prof := sa.ShardProfile(); prof.RowLocal {
				for _, c := range prof.FeedColors {
					if c.Valid() {
						pe.feedMask |= 1 << uint(c)
					}
				}
				feedUnion |= pe.feedMask
				continue
			}
		}
		r := pe.coord.Row
		if r > 0 {
			glue[r-1] = true
		}
		if r < rows-1 {
			glue[r] = true
		}
	}
	if feedUnion&m.routeColorMask != 0 {
		// A feed color is also statically routed somewhere, so the
		// pre-pass could occupy links that row traffic shares. Nothing in
		// the CereSZ mapping does this; keep such runs sequential.
		return runPlan{sequential: true}
	}

	var spans []shardSpan
	lo := 0
	for r := 0; r < rows; r++ {
		if r == rows-1 || !glue[r] {
			spans = append(spans, shardSpan{lo: lo, hi: r + 1})
			lo = r + 1
		}
	}
	if len(spans) == 1 {
		return runPlan{sequential: true}
	}
	return runPlan{spans: spans, feed: feedUnion != 0, workers: workers}
}

// eventBudget is the sharded engines' shared MaxEvents allowance.
// Workers draw prepaid chunks from it, so the livelock guard stays cheap
// (one atomic per few thousand events) at the cost of triggering up to
// one chunk per worker late.
type eventBudget struct {
	remaining atomic.Int64
}

const budgetChunk = 4096

// runSharded executes the worker-pool path: optional column-feed
// pre-pass, then one engine per shard, then a deterministic merge of the
// shards' emissions by event key.
func (m *Mesh) runSharded(plan runPlan, pending []event) (int64, error) {
	var tagged []taggedEmission
	var taggedSpans []taggedSpanEvent
	var used int64

	if plan.feed {
		// Column-distribution pre-pass: simulate only the feed-colored
		// traffic (and everything the feeder PEs do in response),
		// deferring every other delivery it generates to the shards. The
		// pre-pass runs before any worker starts, so the link and PE
		// state it writes is visible to — and never raced by — the
		// shards; feeder PEs are sealed when it finishes.
		var seeds, rest []event
		for _, ev := range pending {
			if ev.kind == evDeliver && m.isFeed(ev.pe, ev.msg.Color) {
				seeds = append(seeds, ev)
			} else {
				rest = append(rest, ev)
			}
		}
		pre := engine{m: m, exactLimit: m.cfg.MaxEvents, feedPhase: true, collect: true}
		pre.q.ev = seeds
		pre.q.heapify()
		if err := pre.run(); err != nil {
			return 0, err
		}
		used = pre.processed
		tagged = pre.emis
		taggedSpans = pre.spanEvs
		pending = append(rest, pre.deferred...)
	}
	m.feedEvents = used

	// Bin the pending events (host injections, Init-phase sends, feed
	// deferrals) to the shard owning their destination row.
	shardOf := make([]int32, m.cfg.Rows)
	for i, sp := range plan.spans {
		for r := sp.lo; r < sp.hi; r++ {
			shardOf[r] = int32(i)
		}
	}
	budget := &eventBudget{}
	budget.remaining.Store(m.cfg.MaxEvents - used)
	engines := make([]engine, len(plan.spans))
	for i, sp := range plan.spans {
		engines[i] = engine{m: m, shared: budget, restricted: true, collect: true,
			idxLo: int32(sp.lo * m.cfg.Cols), idxHi: int32(sp.hi * m.cfg.Cols)}
	}
	for _, ev := range pending {
		s := shardOf[int(ev.pe)/m.cfg.Cols]
		engines[s].q.ev = append(engines[s].q.ev, ev)
	}

	workers := plan.workers
	if workers > len(engines) {
		workers = len(engines)
	}
	m.shards, m.workers = len(engines), workers

	var next, running, peak atomic.Int32
	var wg sync.WaitGroup
	panics := make([]any, len(engines))
	errs := make([]error, len(engines))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(engines) {
					return
				}
				// Pool-occupancy high-water mark: how many workers were
				// simultaneously busy. Host-side telemetry only — the
				// value depends on the OS scheduler, so it must never
				// flow into deterministic outputs.
				cur := running.Add(1)
				for {
					p := peak.Load()
					if cur <= p || peak.CompareAndSwap(p, cur) {
						break
					}
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panics[i] = r
						}
					}()
					e := &engines[i]
					e.q.heapify()
					errs[i] = e.run()
				}()
				running.Add(-1)
			}
		}()
	}
	wg.Wait()
	m.poolPeak = int(peak.Load())
	// Surface failures the way the sequential engine would: the first
	// panicking or erroring shard (by shard order) wins.
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}

	m.processed = used
	m.shardEvents = make([]int64, len(engines))
	for i := range engines {
		m.processed += engines[i].processed
		m.shardEvents[i] = engines[i].processed
		tagged = append(tagged, engines[i].emis...)
		taggedSpans = append(taggedSpans, engines[i].spanEvs...)
	}
	// Merge emissions into the order the sequential engine would have
	// produced: its emission log order is the processing order of the
	// dispatches that emitted, i.e. the (at, src, seq) order of their
	// cause events. The sort is stable so multiple emissions from one
	// handler keep their in-handler order.
	sort.SliceStable(tagged, func(i, j int) bool {
		a, b := &tagged[i], &tagged[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.seq < b.seq
	})
	for _, te := range tagged {
		m.emissions = append(m.emissions, te.em)
		if m.emitTo != nil {
			m.emitTo(te.em)
		}
	}
	// The span log merges by the same key, for the same reason: the
	// sequential engine appends span records while processing events in
	// global (at, src, seq) order, one cause event runs entirely inside
	// one engine, and the stable sort keeps per-cause append order — so
	// the merged log is bit-identical to the sequential one.
	if m.spans != nil {
		sort.SliceStable(taggedSpans, func(i, j int) bool {
			a, b := &taggedSpans[i], &taggedSpans[j]
			if a.at != b.at {
				return a.at < b.at
			}
			if a.src != b.src {
				return a.src < b.src
			}
			return a.seq < b.seq
		})
		for _, ts := range taggedSpans {
			m.spans.events = append(m.spans.events, ts.ev)
		}
	}
	return m.Elapsed(), nil
}

// isFeed reports whether a delivery of color c to PE pe belongs to the
// column-feed pre-pass.
func (m *Mesh) isFeed(pe int32, c Color) bool {
	return m.pes[pe].feedMask&(1<<uint(c)) != 0
}

// Shards reports how many row shards the last Run simulated (1 when the
// sequential reference engine ran).
func (m *Mesh) Shards() int { return m.shards }

// Workers reports how many host workers the last Run used (1 when the
// sequential reference engine ran).
func (m *Mesh) Workers() int { return m.workers }

// ShardEvents returns the per-shard-engine processed-event counts of the
// last Run (a single entry for a sequential run). The counts measure how
// balanced the row shards were; they are deterministic — a function of
// the partition, not of worker scheduling.
func (m *Mesh) ShardEvents() []int64 { return m.shardEvents }

// FeedEvents reports how many events the column-feed pre-pass processed
// in the last Run (0 when no program declared FeedColors or the run was
// sequential).
func (m *Mesh) FeedEvents() int64 { return m.feedEvents }

// PoolPeak reports the peak number of concurrently busy pool workers in
// the last Run (1 for sequential runs). Unlike every other Mesh output
// it is host-side and NOT deterministic — use it for telemetry only.
func (m *Mesh) PoolPeak() int { return m.poolPeak }

// drawQuota charges one event against the shared budget, refilling the
// engine's local prepaid chunk as needed.
func (e *engine) drawQuota() error {
	if e.quota > 0 {
		e.quota--
		return nil
	}
	if e.shared.remaining.Add(-budgetChunk) < 0 {
		return fmt.Errorf("wse: exceeded %d events; likely livelock", e.m.cfg.MaxEvents)
	}
	e.quota = budgetChunk - 1
	return nil
}
