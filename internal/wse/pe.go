package wse

import "fmt"

// Program is the code installed on a PE. OnMessage is invoked once per
// delivered message, when the PE's processor is free — messages queue in
// arrival order while the processor is busy, which is how the simulator
// realizes the paper's serial relay-plus-compute accounting.
type Program interface {
	// Init runs at cycle 0, before any message is delivered.
	Init(ctx *Context)
	// OnMessage handles one delivered message.
	OnMessage(ctx *Context, msg Message)
}

// ProgramFunc adapts a function to the Program interface with a no-op Init.
type ProgramFunc func(ctx *Context, msg Message)

// Init implements Program.
func (f ProgramFunc) Init(*Context) {}

// OnMessage implements Program.
func (f ProgramFunc) OnMessage(ctx *Context, msg Message) { f(ctx, msg) }

// PE is one processing element.
type PE struct {
	coord   Coord
	idx     int32 // linear index row*Cols+col
	mesh    *Mesh
	program Program

	// qbuf is a power-of-two ring of pending deliveries (FIFO): qhead is
	// the read position, qcount the fill. (A plain `queue = queue[1:]`
	// slice retains its consumed prefix until reallocation; the ring
	// reuses it.)
	qbuf   []Message
	qhead  int
	qcount int

	busyUntil int64
	running   bool

	// pushSeq stamps this PE's outgoing events with a strictly
	// increasing per-origin sequence — one third of the (at, src, seq)
	// event-ordering key (see queue.go).
	pushSeq int64
	// feedMask marks colors the program declared as column-feed ingress
	// (ShardProfile.FeedColors), rebuilt at partition time.
	feedMask uint32
	// sealed marks a PE whose entire timeline ran in the column-feed
	// pre-pass; a later delivery to it is a shard-profile violation.
	sealed bool

	memUsed int
	stats   Stats
}

// qpush appends a delivered message to the PE's FIFO.
func (p *PE) qpush(m Message) {
	if p.qcount == len(p.qbuf) {
		p.qgrow()
	}
	p.qbuf[(p.qhead+p.qcount)&(len(p.qbuf)-1)] = m
	p.qcount++
}

// qpop removes and returns the oldest queued message.
func (p *PE) qpop() Message {
	m := p.qbuf[p.qhead]
	p.qbuf[p.qhead] = Message{} // drop the payload reference
	p.qhead = (p.qhead + 1) & (len(p.qbuf) - 1)
	p.qcount--
	return m
}

func (p *PE) qgrow() {
	n := len(p.qbuf) * 2
	if n == 0 {
		n = 8
	}
	buf := make([]Message, n)
	for i := 0; i < p.qcount; i++ {
		buf[i] = p.qbuf[(p.qhead+i)&(len(p.qbuf)-1)]
	}
	p.qbuf = buf
	p.qhead = 0
}

// Coord returns the PE's mesh coordinate.
func (p *PE) Coord() Coord { return p.coord }

// Stats returns a copy of the PE's cycle accounting.
func (p *PE) Stats() Stats { return p.stats }

// MemUsed returns the currently allocated local memory in bytes.
func (p *PE) MemUsed() int { return p.memUsed }

// Context is the API a Program uses during one OnMessage (or Init)
// invocation. All effects are accounted against the PE's processor time:
// Spend for computation, Send for memory→fabric transfers, Forward for
// fabric→fabric relaying. Outgoing messages depart when the handler
// finishes.
type Context struct {
	pe    *PE
	start int64
	cost  int64

	// span is the handled message's block span id (0 when untracked or
	// during Init); outgoing sends inherit it, and LabelSpan names the
	// handler's work in the span log.
	span      int64
	spanLabel string

	sends []pendingSend
	emits []any
}

type pendingSend struct {
	dir     Dir
	msg     Message
	forward bool
}

// reset prepares a pooled Context for the next handler invocation,
// reusing the sends/emits backing arrays.
func (c *Context) reset(pe *PE, start int64) {
	c.pe = pe
	c.start = start
	c.cost = 0
	c.span = 0
	c.spanLabel = ""
	c.sends = c.sends[:0]
	c.emits = c.emits[:0]
}

// LabelSpan names the work this handler performs for span tracing (e.g.
// "relay" or a stage-group name). It is recorded on the dispatch span
// event when the handled message carries a span id, and is otherwise a
// no-op; programs may call it unconditionally.
func (c *Context) LabelSpan(label string) { c.spanLabel = label }

// Now returns the cycle at which the current handler began.
func (c *Context) Now() int64 { return c.start }

// Coord returns the executing PE's coordinate.
func (c *Context) Coord() Coord { return c.pe.coord }

// Mesh geometry helpers.

// Rows returns the mesh height.
func (c *Context) Rows() int { return c.pe.mesh.cfg.Rows }

// Cols returns the mesh width.
func (c *Context) Cols() int { return c.pe.mesh.cfg.Cols }

// Spend charges cycles of computation to the PE.
func (c *Context) Spend(cycles int64) {
	if cycles < 0 {
		panic(fmt.Sprintf("wse: negative Spend(%d) on %v", cycles, c.pe.coord))
	}
	c.cost += cycles
	c.pe.stats.ComputeCycles += cycles
}

// Send transmits a message from local memory toward the neighbor in
// direction d. It charges RampLatency + Wavelets cycles (moving the data
// from memory through the RAMP onto the fabric — the C₂ cost of §4.3).
// Sending off the mesh edge is an error; use Emit for wafer egress.
func (c *Context) Send(d Dir, msg Message) {
	c.queueSend(d, msg, false)
}

// Forward relays a message that just arrived on the fabric to the neighbor
// in direction d without a round trip through local memory. It charges
// Wavelets cycles (the C₁ cost of §4.3 — the relay term of Formula (2)).
func (c *Context) Forward(d Dir, msg Message) {
	c.queueSend(d, msg, true)
}

func (c *Context) queueSend(d Dir, msg Message, forward bool) {
	if d == Ramp {
		panic("wse: cannot send toward Ramp; that is the local processor")
	}
	if !msg.Color.Valid() {
		panic(fmt.Sprintf("wse: invalid color %d (the fabric has %d)", msg.Color, NumColors))
	}
	if msg.Wavelets < 1 {
		panic(fmt.Sprintf("wse: message with %d wavelets", msg.Wavelets))
	}
	if _, ok := c.pe.mesh.neighbor(c.pe.coord, d); !ok {
		panic(fmt.Sprintf("wse: send from %v toward %v leaves the mesh; use Emit", c.pe.coord, d))
	}
	w := int64(msg.Wavelets)
	if forward {
		w += c.pe.mesh.cfg.MsgOverhead
		c.pe.stats.RelayCycles += w
		c.pe.stats.Forwarded++
	} else {
		w += c.pe.mesh.cfg.RampLatency
		c.pe.stats.SendCycles += w
	}
	c.cost += w
	msg.Src = c.pe.coord
	if msg.Span == 0 {
		msg.Span = c.span // the block's id follows it across hand-offs
	}
	c.sends = append(c.sends, pendingSend{dir: d, msg: msg, forward: forward})
}

// Emit hands a payload off the wafer (the simulator's stand-in for the
// routing PEs that move data on and off the WSE, which the paper excludes
// from computation, §5.1.1). It charges Wavelets cycles.
func (c *Context) Emit(payload any, wavelets int) {
	if wavelets < 1 {
		panic("wse: Emit with no wavelets")
	}
	c.cost += int64(wavelets)
	c.pe.stats.SendCycles += int64(wavelets)
	c.emits = append(c.emits, payload)
}

// Alloc reserves bytes of the PE's local memory, failing when the 48 KB
// budget would be exceeded.
func (c *Context) Alloc(bytes int) error {
	if bytes < 0 {
		panic("wse: negative Alloc")
	}
	if c.pe.memUsed+bytes > c.pe.mesh.cfg.MemPerPE {
		return fmt.Errorf("wse: PE %v out of memory: %d + %d > %d bytes",
			c.pe.coord, c.pe.memUsed, bytes, c.pe.mesh.cfg.MemPerPE)
	}
	c.pe.memUsed += bytes
	if c.pe.memUsed > c.pe.stats.MemPeak {
		c.pe.stats.MemPeak = c.pe.memUsed
	}
	return nil
}

// Free releases bytes of local memory.
func (c *Context) Free(bytes int) {
	if bytes < 0 || bytes > c.pe.memUsed {
		panic(fmt.Sprintf("wse: bad Free(%d) with %d allocated on %v", bytes, c.pe.memUsed, c.pe.coord))
	}
	c.pe.memUsed -= bytes
}
