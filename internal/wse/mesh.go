package wse

import (
	"container/heap"
	"fmt"
)

// Config describes a simulated wafer.
type Config struct {
	// Rows and Cols give the mesh geometry. The full CS-2 exposes
	// 750×994 usable PEs (§5.1.1).
	Rows, Cols int
	// MemPerPE is the local memory budget in bytes (default 48 KB).
	MemPerPE int
	// LinkLatency is the fixed per-hop cycle cost before a message's
	// wavelets stream across a link (default 1).
	LinkLatency int64
	// RampLatency is the fixed cost of moving a message between local
	// memory and the fabric (default 4); it is why C₂ > C₁ in §4.3.
	RampLatency int64
	// MsgOverhead is the per-message processor cost of receiving and
	// re-issuing a fabric transfer (task activation + DSD setup, §2.1's
	// data-triggering mechanism). It is charged on every Forward in
	// addition to the wavelet streaming time. Default 0; the CereSZ
	// mapping sets its own calibrated value.
	MsgOverhead int64
	// ClockHz converts cycles to seconds (default 850 MHz, §5.1.1).
	ClockHz float64
	// MaxEvents aborts a runaway simulation (default 500M events).
	MaxEvents int64
}

// FullWSE is the usable mesh geometry of the CS-2 (§5.1.1).
var FullWSE = Config{Rows: 750, Cols: 994}

// WithDefaults returns the config with unset fields defaulted.
func (c Config) WithDefaults() Config {
	if c.MemPerPE == 0 {
		c.MemPerPE = 48 * 1024
	}
	if c.LinkLatency == 0 {
		c.LinkLatency = 1
	}
	if c.RampLatency == 0 {
		c.RampLatency = 4
	}
	if c.ClockHz == 0 {
		c.ClockHz = 850e6
	}
	if c.MaxEvents == 0 {
		c.MaxEvents = 500_000_000
	}
	return c
}

// Mesh is a simulated 2D grid of PEs with a discrete-event engine.
type Mesh struct {
	cfg Config
	pes []*PE

	// routes[pe][color] = outgoing direction for router pass-through.
	routes map[int]map[Color]Dir

	events    eventQueue
	seq       int64
	processed int64

	emissions []Emission
	emitTo    func(Emission)
	tracer    *Tracer

	// linkFree[r][c][dir] is the cycle at which the outgoing link of PE
	// (r,c) toward dir becomes free; messages on one link serialize.
	linkFree [][][4]int64

	ran bool
}

// NewMesh builds a mesh of idle PEs.
func NewMesh(cfg Config) (*Mesh, error) {
	cfg = cfg.WithDefaults()
	if cfg.Rows <= 0 || cfg.Cols <= 0 {
		return nil, fmt.Errorf("wse: invalid mesh %dx%d", cfg.Rows, cfg.Cols)
	}
	if cfg.Rows*cfg.Cols > 4_000_000 {
		return nil, fmt.Errorf("wse: mesh %dx%d exceeds simulator capacity", cfg.Rows, cfg.Cols)
	}
	m := &Mesh{cfg: cfg}
	m.pes = make([]*PE, cfg.Rows*cfg.Cols)
	for r := 0; r < cfg.Rows; r++ {
		for c := 0; c < cfg.Cols; c++ {
			m.pes[r*cfg.Cols+c] = &PE{coord: Coord{Row: r, Col: c}, mesh: m}
		}
	}
	m.linkFree = make([][][4]int64, cfg.Rows)
	for r := range m.linkFree {
		m.linkFree[r] = make([][4]int64, cfg.Cols)
	}
	return m, nil
}

// Config returns the mesh configuration (with defaults applied).
func (m *Mesh) Config() Config { return m.cfg }

// PE returns the PE at (row, col).
func (m *Mesh) PE(row, col int) *PE {
	if row < 0 || row >= m.cfg.Rows || col < 0 || col >= m.cfg.Cols {
		panic(fmt.Sprintf("wse: PE(%d,%d) outside %dx%d mesh", row, col, m.cfg.Rows, m.cfg.Cols))
	}
	return m.pes[row*m.cfg.Cols+col]
}

// SetProgram installs a program on a PE. Must be called before Run.
func (m *Mesh) SetProgram(row, col int, p Program) {
	if m.ran {
		panic("wse: SetProgram after Run")
	}
	m.PE(row, col).program = p
}

// SetRoute configures the PE's fabric router to forward messages of the
// given color toward out without involving the processor — the static
// color routing of paper Fig. 3. Routed messages cost only link time;
// they are never delivered to the PE's program. Must be called before Run.
func (m *Mesh) SetRoute(row, col int, color Color, out Dir) {
	if m.ran {
		panic("wse: SetRoute after Run")
	}
	if !color.Valid() {
		panic(fmt.Sprintf("wse: invalid color %d", color))
	}
	if out == Ramp {
		panic("wse: route toward Ramp would be a normal delivery; omit the route instead")
	}
	pe := m.PE(row, col)
	if _, ok := m.neighbor(pe.coord, out); !ok {
		panic(fmt.Sprintf("wse: route at %v toward %v leaves the mesh", pe.coord, out))
	}
	if m.routes == nil {
		m.routes = make(map[int]map[Color]Dir)
	}
	idx := row*m.cfg.Cols + col
	if m.routes[idx] == nil {
		m.routes[idx] = make(map[Color]Dir)
	}
	m.routes[idx][color] = out
}

// routeOf returns the router pass-through direction for a color at a PE.
func (m *Mesh) routeOf(pe *PE, color Color) (Dir, bool) {
	if m.routes == nil {
		return 0, false
	}
	r, ok := m.routes[pe.coord.Row*m.cfg.Cols+pe.coord.Col][color]
	return r, ok
}

// Inject schedules an external message delivery to a PE at the given cycle
// — the simulator's stand-in for data flowing onto the wafer from the host
// (the paper assumes "the input data is generated on the first PE of each
// row", §4.3). The message arrives from direction West.
func (m *Mesh) Inject(row, col int, msg Message, at int64) {
	if at < 0 {
		panic("wse: Inject at negative time")
	}
	msg.From = West
	msg.Src = Coord{Row: row, Col: col}
	m.push(event{at: at, kind: evDeliver, pe: m.PE(row, col), msg: msg})
}

// OnEmit registers a callback invoked for every emission as it happens,
// in addition to the Emissions log.
func (m *Mesh) OnEmit(f func(Emission)) { m.emitTo = f }

// Emissions returns everything programs handed off the wafer, in emission
// order.
func (m *Mesh) Emissions() []Emission { return m.emissions }

// neighbor returns the coordinate adjacent to c in direction d, if any.
func (m *Mesh) neighbor(c Coord, d Dir) (Coord, bool) {
	switch d {
	case North:
		c.Row--
	case South:
		c.Row++
	case East:
		c.Col++
	case West:
		c.Col--
	default:
		return c, false
	}
	if c.Row < 0 || c.Row >= m.cfg.Rows || c.Col < 0 || c.Col >= m.cfg.Cols {
		return c, false
	}
	return c, true
}

// Run executes the simulation until no events remain. It returns the
// number of cycles at which the last PE finished (the paper's runtime
// measurement: "the clock cycles needed for the last PE to finish
// processing its data", §4.1).
func (m *Mesh) Run() (int64, error) {
	m.ran = true
	// Init programs at cycle 0.
	for _, pe := range m.pes {
		if pe.program == nil {
			continue
		}
		ctx := &Context{pe: pe, start: 0}
		pe.program.Init(ctx)
		m.finishHandler(pe, ctx, 0)
	}
	for len(m.events) > 0 {
		m.processed++
		if m.processed > m.cfg.MaxEvents {
			return 0, fmt.Errorf("wse: exceeded %d events; likely livelock", m.cfg.MaxEvents)
		}
		ev := heap.Pop(&m.events).(event)
		switch ev.kind {
		case evDeliver:
			pe := ev.pe
			if out, ok := m.routeOf(pe, ev.msg.Color); ok {
				// Router pass-through: re-emit on the configured link with
				// no processor involvement (only link serialization).
				m.tracer.record(TraceEntry{At: ev.at, PE: pe.coord, Kind: TraceRoute,
					Color: ev.msg.Color, Wavelets: ev.msg.Wavelets})
				m.routeForward(pe, ev.msg, out, ev.at)
				continue
			}
			pe.queue = append(pe.queue, ev.msg)
			if !pe.running {
				m.dispatch(pe, ev.at)
			}
		case evReady:
			pe := ev.pe
			pe.running = false
			if len(pe.queue) > 0 {
				m.dispatch(pe, ev.at)
			}
		}
	}
	return m.Elapsed(), nil
}

// Processed returns the number of simulator events handled so far — a
// telemetry measure of how much discrete-event work a run cost the host.
func (m *Mesh) Processed() int64 { return m.processed }

// Elapsed returns the completion cycle of the busiest PE so far.
func (m *Mesh) Elapsed() int64 {
	var last int64
	for _, pe := range m.pes {
		if pe.stats.LastActive > last {
			last = pe.stats.LastActive
		}
	}
	return last
}

// Seconds converts cycles to seconds at the configured clock.
func (m *Mesh) Seconds(cycles int64) float64 {
	return float64(cycles) / m.cfg.ClockHz
}

// routeForward re-emits a routed message toward out at time t, paying only
// link occupancy (the router moves wavelets in hardware).
func (m *Mesh) routeForward(pe *PE, msg Message, out Dir, t int64) {
	dst, ok := m.neighbor(pe.coord, out)
	if !ok {
		panic(fmt.Sprintf("wse: route off mesh at %v", pe.coord))
	}
	free := m.linkFree[pe.coord.Row][pe.coord.Col][out]
	depart := t
	if free > depart {
		depart = free
	}
	arrive := depart + m.cfg.LinkLatency + int64(msg.Wavelets)
	m.linkFree[pe.coord.Row][pe.coord.Col][out] = arrive
	fwd := msg
	fwd.From = out.Opposite()
	fwd.Src = pe.coord
	pe.stats.Routed++
	m.push(event{at: arrive, kind: evDeliver, pe: m.PE(dst.Row, dst.Col), msg: fwd})
}

// dispatch pops the next queued message on pe and runs its handler at time t.
func (m *Mesh) dispatch(pe *PE, t int64) {
	if pe.program == nil {
		// No program: drop silently (matches fabric behavior for unrouted
		// colors — but flag it, since it is almost always a harness bug).
		panic(fmt.Sprintf("wse: message delivered to programless PE %v", pe.coord))
	}
	msg := pe.queue[0]
	pe.queue = pe.queue[1:]
	pe.running = true
	ctx := &Context{pe: pe, start: t}
	pe.program.OnMessage(ctx, msg)
	pe.stats.Handled++
	end := m.finishHandler(pe, ctx, t)
	m.tracer.record(TraceEntry{At: t, PE: pe.coord, Kind: TraceDispatch,
		Color: msg.Color, Wavelets: msg.Wavelets, Cycles: end - t})
	m.push(event{at: end, kind: evReady, pe: pe})
}

// finishHandler applies a completed handler's effects: schedules its sends
// and updates the PE's busy window. Returns the handler's end time.
func (m *Mesh) finishHandler(pe *PE, ctx *Context, t int64) int64 {
	end := t + ctx.cost
	if end > pe.stats.LastActive {
		pe.stats.LastActive = end
	}
	pe.busyUntil = end
	for _, s := range ctx.sends {
		dst, ok := m.neighbor(pe.coord, s.dir)
		if !ok {
			panic(fmt.Sprintf("wse: queued send off mesh from %v", pe.coord))
		}
		// The message occupies the outgoing link for its wavelet count;
		// back-to-back messages on one link serialize.
		free := m.linkFree[pe.coord.Row][pe.coord.Col][s.dir]
		depart := end
		if free > depart {
			depart = free
		}
		arrive := depart + m.cfg.LinkLatency + int64(s.msg.Wavelets)
		m.linkFree[pe.coord.Row][pe.coord.Col][s.dir] = arrive
		msg := s.msg
		msg.From = s.dir.Opposite()
		m.push(event{at: arrive, kind: evDeliver, pe: m.PE(dst.Row, dst.Col), msg: msg})
	}
	ctx.sends = nil
	for _, p := range ctx.emits {
		e := Emission{From: pe.coord, At: end, Payload: p}
		m.emissions = append(m.emissions, e)
		m.tracer.record(TraceEntry{At: end, PE: pe.coord, Kind: TraceEmit})
		if m.emitTo != nil {
			m.emitTo(e)
		}
	}
	ctx.emits = nil
	return end
}

// Event machinery.

type evKind int

const (
	evDeliver evKind = iota
	evReady
)

type event struct {
	at   int64
	seq  int64
	kind evKind
	pe   *PE
	msg  Message
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any     { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }
func (m *Mesh) push(ev event)      { ev.seq = m.seq; m.seq++; heap.Push(&m.events, ev) }
