package wse

import (
	"fmt"
)

// Config describes a simulated wafer.
type Config struct {
	// Rows and Cols give the mesh geometry. The full CS-2 exposes
	// 750×994 usable PEs (§5.1.1).
	Rows, Cols int
	// MemPerPE is the local memory budget in bytes (default 48 KB).
	MemPerPE int
	// LinkLatency is the fixed per-hop cycle cost before a message's
	// wavelets stream across a link (default 1).
	LinkLatency int64
	// RampLatency is the fixed cost of moving a message between local
	// memory and the fabric (default 4); it is why C₂ > C₁ in §4.3.
	RampLatency int64
	// MsgOverhead is the per-message processor cost of receiving and
	// re-issuing a fabric transfer (task activation + DSD setup, §2.1's
	// data-triggering mechanism). It is charged on every Forward in
	// addition to the wavelet streaming time. Default 0; the CereSZ
	// mapping sets its own calibrated value.
	MsgOverhead int64
	// ClockHz converts cycles to seconds (default 850 MHz, §5.1.1).
	ClockHz float64
	// MaxEvents aborts a runaway simulation (default 500M events).
	MaxEvents int64
	// Workers bounds the host worker pool for row-sharded simulation:
	// 0 runs one worker per available CPU (GOMAXPROCS), 1 forces the
	// sequential reference engine, N > 1 uses at most N workers.
	// Sharding changes nothing observable — cycle counts, emission order
	// and per-PE stats are identical to Workers: 1 (see DESIGN.md,
	// "Simulator engine").
	Workers int
}

// FullWSE is the usable mesh geometry of the CS-2 (§5.1.1).
var FullWSE = Config{Rows: 750, Cols: 994}

// WithDefaults returns the config with unset fields defaulted.
func (c Config) WithDefaults() Config {
	if c.MemPerPE == 0 {
		c.MemPerPE = 48 * 1024
	}
	if c.LinkLatency == 0 {
		c.LinkLatency = 1
	}
	if c.RampLatency == 0 {
		c.RampLatency = 4
	}
	if c.ClockHz == 0 {
		c.ClockHz = 850e6
	}
	if c.MaxEvents == 0 {
		c.MaxEvents = 500_000_000
	}
	return c
}

// Mesh is a simulated 2D grid of PEs with a discrete-event engine.
type Mesh struct {
	cfg Config
	pes []PE

	// routes is the dense router table: routes[pe*NumColors+color] is
	// the pass-through direction, or routeNone. Allocated lazily on the
	// first SetRoute (~18 MB for the full wafer, nil for meshes that
	// route nothing).
	routes []int8
	// routeColorMask has bit c set when any PE routes color c.
	routeColorMask uint32
	// glue[r] marks rows r and r+1 inseparable for sharding because a
	// North/South route crosses their boundary (programs contribute
	// their own glue at partition time; see shard.go).
	glue []bool

	// pending collects work scheduled before the event loops start: host
	// injections, then everything the Init phase sends. Run bins it into
	// shards by destination row.
	pending   []event
	injectSeq int64

	processed int64
	emissions []Emission
	emitTo    func(Emission)
	tracer    *Tracer
	spans     *SpanLog

	// linkFree[pe][dir] is the cycle at which PE pe's outgoing link
	// toward dir becomes free; messages on one link serialize. A cell is
	// only ever written while simulating its owning PE, so shards never
	// race on it.
	linkFree [][4]int64

	shards  int
	workers int
	// shardEvents is the per-shard-engine processed-event count of the
	// last Run (one entry for the sequential engine). Deterministic: it
	// depends only on the partition, never on worker scheduling.
	shardEvents []int64
	// feedEvents counts events the column-feed pre-pass processed.
	feedEvents int64
	// poolPeak is the peak number of concurrently running workers seen in
	// the last Run — a host-side occupancy measure, NOT deterministic
	// across runs; it feeds telemetry only.
	poolPeak int
	ran      bool
}

// routeNone marks an unrouted (pe, color) slot in the dense route table.
const routeNone = int8(-1)

// hostSrc is the event-ordering origin for host injections; it sorts
// before every PE index.
const hostSrc = int32(-1)

// NewMesh builds a mesh of idle PEs.
func NewMesh(cfg Config) (*Mesh, error) {
	cfg = cfg.WithDefaults()
	if cfg.Rows <= 0 || cfg.Cols <= 0 {
		return nil, fmt.Errorf("wse: invalid mesh %dx%d", cfg.Rows, cfg.Cols)
	}
	if cfg.Rows*cfg.Cols > 4_000_000 {
		return nil, fmt.Errorf("wse: mesh %dx%d exceeds simulator capacity", cfg.Rows, cfg.Cols)
	}
	m := &Mesh{cfg: cfg}
	m.pes = make([]PE, cfg.Rows*cfg.Cols)
	for i := range m.pes {
		m.pes[i] = PE{coord: Coord{Row: i / cfg.Cols, Col: i % cfg.Cols}, idx: int32(i), mesh: m}
	}
	m.linkFree = make([][4]int64, cfg.Rows*cfg.Cols)
	m.glue = make([]bool, cfg.Rows)
	return m, nil
}

// Config returns the mesh configuration (with defaults applied).
func (m *Mesh) Config() Config { return m.cfg }

// PE returns the PE at (row, col).
func (m *Mesh) PE(row, col int) *PE {
	if row < 0 || row >= m.cfg.Rows || col < 0 || col >= m.cfg.Cols {
		panic(fmt.Sprintf("wse: PE(%d,%d) outside %dx%d mesh", row, col, m.cfg.Rows, m.cfg.Cols))
	}
	return &m.pes[row*m.cfg.Cols+col]
}

// SetProgram installs a program on a PE. Must be called before Run.
func (m *Mesh) SetProgram(row, col int, p Program) {
	if m.ran {
		panic("wse: SetProgram after Run")
	}
	m.PE(row, col).program = p
}

// SetRoute configures the PE's fabric router to forward messages of the
// given color toward out without involving the processor — the static
// color routing of paper Fig. 3. Routed messages cost only link time;
// they are never delivered to the PE's program. Must be called before Run.
func (m *Mesh) SetRoute(row, col int, color Color, out Dir) {
	if m.ran {
		panic("wse: SetRoute after Run")
	}
	if !color.Valid() {
		panic(fmt.Sprintf("wse: invalid color %d", color))
	}
	if out == Ramp {
		panic("wse: route toward Ramp would be a normal delivery; omit the route instead")
	}
	pe := m.PE(row, col)
	if _, ok := m.neighbor(pe.coord, out); !ok {
		panic(fmt.Sprintf("wse: route at %v toward %v leaves the mesh", pe.coord, out))
	}
	if m.routes == nil {
		m.routes = make([]int8, len(m.pes)*NumColors)
		for i := range m.routes {
			m.routes[i] = routeNone
		}
	}
	m.routes[int(pe.idx)*NumColors+int(color)] = int8(out)
	m.routeColorMask |= 1 << uint(color)
	switch out {
	case North:
		m.glue[row-1] = true
	case South:
		m.glue[row] = true
	}
}

// routeOf returns the router pass-through direction for a color at a PE,
// or routeNone.
func (m *Mesh) routeOf(pe int32, color Color) int8 {
	if m.routes == nil {
		return routeNone
	}
	return m.routes[int(pe)*NumColors+int(color)]
}

// Inject schedules an external message delivery to a PE at the given cycle
// — the simulator's stand-in for data flowing onto the wafer from the host
// (the paper assumes "the input data is generated on the first PE of each
// row", §4.3). The message arrives from direction West carrying the
// OffWafer source sentinel, so programs can distinguish host ingress from
// fabric traffic.
func (m *Mesh) Inject(row, col int, msg Message, at int64) {
	if at < 0 {
		panic("wse: Inject at negative time")
	}
	msg.From = West
	msg.Src = OffWafer
	msg.sentAt = at // the host "let go" at the scheduled delivery time
	pe := m.PE(row, col)
	m.pending = append(m.pending, event{
		at: at, src: hostSrc, seq: m.injectSeq, kind: evDeliver, pe: pe.idx, msg: msg,
	})
	m.injectSeq++
}

// OnEmit registers a callback invoked for every emission, in emission
// order, in addition to the Emissions log. Under a sharded run the
// callbacks for message-handler emissions fire after the shards finish
// (in the merged deterministic order) rather than while the simulation
// advances.
func (m *Mesh) OnEmit(f func(Emission)) { m.emitTo = f }

// Emissions returns everything programs handed off the wafer, in emission
// order.
func (m *Mesh) Emissions() []Emission { return m.emissions }

// neighbor returns the coordinate adjacent to c in direction d, if any.
func (m *Mesh) neighbor(c Coord, d Dir) (Coord, bool) {
	switch d {
	case North:
		c.Row--
	case South:
		c.Row++
	case East:
		c.Col++
	case West:
		c.Col--
	default:
		return c, false
	}
	if c.Row < 0 || c.Row >= m.cfg.Rows || c.Col < 0 || c.Col >= m.cfg.Cols {
		return c, false
	}
	return c, true
}

// Run executes the simulation until no events remain. It returns the
// number of cycles at which the last PE finished (the paper's runtime
// measurement: "the clock cycles needed for the last PE to finish
// processing its data", §4.1).
func (m *Mesh) Run() (int64, error) {
	m.ran = true

	// Init programs at cycle 0, before any partitioning — Init sends may
	// legitimately cross rows and are simply binned to the destination
	// shard along with the host injections.
	ieng := engine{m: m}
	for i := range m.pes {
		pe := &m.pes[i]
		if pe.program == nil {
			continue
		}
		ieng.ctx.reset(pe, 0)
		pe.program.Init(&ieng.ctx)
		ieng.finishHandler(pe, 0)
	}
	pending := append(m.pending, ieng.q.ev...)
	m.pending = nil

	plan := m.partition()
	if !plan.sequential {
		return m.runSharded(plan, pending)
	}
	m.shards, m.workers, m.poolPeak = 1, 1, 1
	seq := engine{m: m, exactLimit: m.cfg.MaxEvents}
	seq.q.ev = pending
	seq.q.heapify()
	err := seq.run()
	m.processed = seq.processed
	m.shardEvents = []int64{seq.processed}
	if err != nil {
		return 0, err
	}
	return m.Elapsed(), nil
}

// Processed returns the number of simulator events handled so far — a
// telemetry measure of how much discrete-event work a run cost the host.
func (m *Mesh) Processed() int64 { return m.processed }

// Elapsed returns the completion cycle of the busiest PE so far.
func (m *Mesh) Elapsed() int64 {
	var last int64
	for i := range m.pes {
		if la := m.pes[i].stats.LastActive; la > last {
			last = la
		}
	}
	return last
}

// Seconds converts cycles to seconds at the configured clock.
func (m *Mesh) Seconds(cycles int64) float64 {
	return float64(cycles) / m.cfg.ClockHz
}

// engine runs one discrete-event loop over a subset of the mesh: the
// whole mesh (the sequential reference), the column-feed pre-pass, or
// one row shard on a worker goroutine. Engines share the mesh's PE and
// link state but only ever touch disjoint parts of it (see shard.go).
type engine struct {
	m   *Mesh
	q   eventHeap
	ctx Context // pooled; reset per handler instead of allocated per dispatch

	processed int64
	// exactLimit is the sequential MaxEvents guard (checked per event);
	// sharded workers instead draw prepaid chunks from shared.
	exactLimit int64
	shared     *eventBudget
	quota      int64

	// feedPhase diverts non-feed deliveries into deferred instead of
	// simulating them — the column-distribution pre-pass.
	feedPhase bool
	deferred  []event

	// restricted enforces a worker shard's PE-index bounds and seals.
	restricted   bool
	idxLo, idxHi int32

	// collect tags emissions and span events with their cause event's
	// key for the deterministic post-run merge, instead of appending
	// them to the mesh logs as they happen.
	collect  bool
	emis     []taggedEmission
	spanEvs  []taggedSpanEvent
	causeAt  int64
	causeSrc int32
	causeSeq int64
}

// taggedEmission is an emission annotated with the ordering key of the
// event whose dispatch produced it.
type taggedEmission struct {
	at  int64
	src int32
	seq int64
	em  Emission
}

// run drains the engine's event queue.
func (e *engine) run() error {
	m := e.m
	for e.q.len() > 0 {
		ev := e.q.pop()
		e.processed++
		if e.shared == nil {
			if e.processed > e.exactLimit {
				return fmt.Errorf("wse: exceeded %d events; likely livelock", m.cfg.MaxEvents)
			}
		} else if err := e.drawQuota(); err != nil {
			return err
		}
		pe := &m.pes[ev.pe]
		// Every by-product of processing this event (emissions, span
		// records) is attributed to its ordering key, so sharded runs can
		// merge them back into the sequential processing order.
		e.causeAt, e.causeSrc, e.causeSeq = ev.at, ev.src, ev.seq
		switch ev.kind {
		case evDeliver:
			if d := m.routeOf(ev.pe, ev.msg.Color); d != routeNone {
				// Router pass-through: re-emit on the configured link with
				// no processor involvement (only link serialization).
				m.tracer.record(TraceEntry{At: ev.at, PE: pe.coord, Kind: TraceRoute,
					Color: ev.msg.Color, Wavelets: ev.msg.Wavelets})
				e.routeForward(pe, ev.msg, Dir(d), ev.at)
				continue
			}
			if e.restricted && pe.sealed {
				panic(fmt.Sprintf("wse: delivery on color %d to column-feed PE %v after its pre-pass; its ShardProfile.FeedColors does not cover all of its ingress", ev.msg.Color, pe.coord))
			}
			ev.msg.arrivedAt = ev.at
			if m.spans != nil && ev.msg.Span != 0 && ev.src == hostSrc {
				e.recordSpan(SpanEvent{Span: ev.msg.Span, Kind: SpanInject, PE: pe.coord,
					At: ev.at, End: ev.at, Sent: ev.msg.sentAt, Wavelets: ev.msg.Wavelets})
			}
			pe.qpush(ev.msg)
			if !pe.running {
				e.dispatch(pe, ev.at)
			}
		case evReady:
			pe.running = false
			if pe.qcount > 0 {
				e.dispatch(pe, ev.at)
			}
		}
	}
	return nil
}

// push schedules an event, diverting it when the engine's phase demands:
// the feed pre-pass defers non-feed deliveries to the shards, and worker
// shards refuse deliveries that leave their rows (a broken RowLocal
// promise).
func (e *engine) push(ev event) {
	if ev.kind == evDeliver {
		if e.restricted && (ev.pe < e.idxLo || ev.pe >= e.idxHi) {
			dst := &e.m.pes[ev.pe]
			panic(fmt.Sprintf("wse: shard-profile violation: send into row %d from a shard covering rows [%d,%d); the sender's ShardProfile claims RowLocal",
				dst.coord.Row, int(e.idxLo)/e.m.cfg.Cols, int(e.idxHi)/e.m.cfg.Cols))
		}
		if e.feedPhase && !e.m.isFeed(ev.pe, ev.msg.Color) {
			e.deferred = append(e.deferred, ev)
			return
		}
	}
	e.q.push(ev)
}

// routeForward re-emits a routed message toward out at time t, paying only
// link occupancy (the router moves wavelets in hardware).
func (e *engine) routeForward(pe *PE, msg Message, out Dir, t int64) {
	m := e.m
	dst, ok := m.neighbor(pe.coord, out)
	if !ok {
		panic(fmt.Sprintf("wse: route off mesh at %v", pe.coord))
	}
	free := &m.linkFree[pe.idx][out]
	depart := t
	if *free > depart {
		depart = *free
	}
	arrive := depart + m.cfg.LinkLatency + int64(msg.Wavelets)
	*free = arrive
	fwd := msg // keeps sentAt: the router never takes ownership of the data
	fwd.From = out.Opposite()
	fwd.Src = pe.coord
	pe.stats.Routed++
	if m.spans != nil && msg.Span != 0 {
		e.recordSpan(SpanEvent{Span: msg.Span, Kind: SpanRoute, PE: pe.coord,
			At: t, End: arrive, Sent: msg.sentAt, Wavelets: msg.Wavelets})
	}
	e.push(event{at: arrive, src: pe.idx, seq: pe.pushSeq, kind: evDeliver,
		pe: int32(dst.Row*m.cfg.Cols + dst.Col), msg: fwd})
	pe.pushSeq++
}

// recordSpan appends a span event to the run's log, or — in collect mode
// — tags it with the cause event's ordering key for the post-run merge.
func (e *engine) recordSpan(ev SpanEvent) {
	if e.collect {
		e.spanEvs = append(e.spanEvs, taggedSpanEvent{at: e.causeAt, src: e.causeSrc, seq: e.causeSeq, ev: ev})
		return
	}
	e.m.spans.events = append(e.m.spans.events, ev)
}

// dispatch pops the next queued message on pe and runs its handler at time t.
func (e *engine) dispatch(pe *PE, t int64) {
	if pe.program == nil {
		// No route and no program: a real fabric would drop the wavelets,
		// but silently losing data in a simulation hides mapping bugs, so
		// the harness fails loudly instead.
		panic(fmt.Sprintf("wse: message delivered to programless PE %v", pe.coord))
	}
	if e.feedPhase {
		// The pre-pass owns this PE's whole timeline from here on; any
		// worker-phase delivery to it is a profile violation.
		pe.sealed = true
	}
	msg := pe.qpop()
	// Attribute the processor-idle gap before this dispatch: up to the
	// producer's hand-off the PE was starved by upstream (queue-wait);
	// from hand-off to delivery the data was on the fabric (fabric-stall).
	// The clamps cover messages sent before the PE went idle and the Init
	// edge case (Init charges cost without a dispatch window, so a
	// delivery can precede LastActive).
	if gap := t - pe.stats.LastActive; gap > 0 {
		idleStart := t - gap
		sent := msg.sentAt
		if sent < idleStart {
			sent = idleStart
		}
		if sent > t {
			sent = t
		}
		pe.stats.QueueWaitCycles += sent - idleStart
		pe.stats.FabricStallCycles += t - sent
	}
	pe.stats.MailboxWaitCycles += t - msg.arrivedAt
	pe.running = true
	e.ctx.reset(pe, t)
	e.ctx.span = msg.Span
	pe.program.OnMessage(&e.ctx, msg)
	pe.stats.Handled++
	end := e.finishHandler(pe, t)
	e.m.tracer.record(TraceEntry{At: t, PE: pe.coord, Kind: TraceDispatch,
		Color: msg.Color, Wavelets: msg.Wavelets, Cycles: end - t})
	if e.m.spans != nil && msg.Span != 0 {
		e.recordSpan(SpanEvent{Span: msg.Span, Kind: SpanDispatch, PE: pe.coord,
			At: t, End: end, Sent: msg.sentAt, Arrived: msg.arrivedAt,
			Label: e.ctx.spanLabel, Wavelets: msg.Wavelets})
	}
	e.push(event{at: end, src: pe.idx, seq: pe.pushSeq, kind: evReady, pe: pe.idx})
	pe.pushSeq++
}

// finishHandler applies a completed handler's effects: schedules its sends
// and updates the PE's busy window. Returns the handler's end time.
func (e *engine) finishHandler(pe *PE, t int64) int64 {
	m := e.m
	ctx := &e.ctx
	end := t + ctx.cost
	if end > pe.stats.LastActive {
		pe.stats.LastActive = end
	}
	pe.busyUntil = end
	for i := range ctx.sends {
		s := &ctx.sends[i]
		dst, ok := m.neighbor(pe.coord, s.dir)
		if !ok {
			panic(fmt.Sprintf("wse: queued send off mesh from %v", pe.coord))
		}
		// The message occupies the outgoing link for its wavelet count;
		// back-to-back messages on one link serialize.
		free := &m.linkFree[pe.idx][s.dir]
		depart := end
		if *free > depart {
			depart = *free
		}
		arrive := depart + m.cfg.LinkLatency + int64(s.msg.Wavelets)
		*free = arrive
		msg := s.msg
		msg.From = s.dir.Opposite()
		msg.sentAt = end // the producer lets go when its handler completes
		e.push(event{at: arrive, src: pe.idx, seq: pe.pushSeq, kind: evDeliver,
			pe: int32(dst.Row*m.cfg.Cols + dst.Col), msg: msg})
		pe.pushSeq++
	}
	for _, p := range ctx.emits {
		em := Emission{From: pe.coord, At: end, Payload: p}
		if m.spans != nil && ctx.span != 0 {
			e.recordSpan(SpanEvent{Span: ctx.span, Kind: SpanEject, PE: pe.coord, At: end, End: end})
		}
		if e.collect {
			e.emis = append(e.emis, taggedEmission{at: e.causeAt, src: e.causeSrc, seq: e.causeSeq, em: em})
			continue
		}
		m.emissions = append(m.emissions, em)
		m.tracer.record(TraceEntry{At: end, PE: pe.coord, Kind: TraceEmit})
		if m.emitTo != nil {
			m.emitTo(em)
		}
	}
	return end
}
