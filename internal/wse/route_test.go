package wse

import (
	"strings"
	"testing"
)

func TestRoutePassThrough(t *testing.T) {
	// A 1×4 strip where PEs 1 and 2 route color 5 eastward in hardware;
	// only PE 3 has a program for it.
	m, _ := NewMesh(Config{Rows: 1, Cols: 4})
	m.SetProgram(0, 0, ProgramFunc(func(ctx *Context, msg Message) {
		ctx.Forward(East, msg)
	}))
	m.SetRoute(0, 1, 5, East)
	m.SetRoute(0, 2, 5, East)
	// PEs 1 and 2 still need programs for OTHER colors; give them one that
	// must never fire for color 5.
	for c := 1; c <= 2; c++ {
		c := c
		m.SetProgram(0, c, ProgramFunc(func(ctx *Context, msg Message) {
			t.Errorf("routed color dispatched to PE %d program", c)
		}))
	}
	var got []any
	m.SetProgram(0, 3, ProgramFunc(func(ctx *Context, msg Message) {
		got = append(got, msg.Payload)
	}))
	for b := 0; b < 3; b++ {
		m.Inject(0, 0, Message{Color: 5, Payload: b, Wavelets: 4}, 0)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("destination received %d messages, want 3", len(got))
	}
	for i, p := range got {
		if p.(int) != i {
			t.Fatalf("order broken: %v", got)
		}
	}
	// Routed PEs paid no processor time for the pass-through.
	for c := 1; c <= 2; c++ {
		st := m.PE(0, c).Stats()
		if st.BusyCycles() != 0 {
			t.Fatalf("PE %d paid %d processor cycles for routed traffic", c, st.BusyCycles())
		}
		if st.Routed != 3 {
			t.Fatalf("PE %d routed %d messages, want 3", c, st.Routed)
		}
	}
}

func TestRouteOnlyMatchingColor(t *testing.T) {
	// Color 2 is routed through PE 1; color 3 is delivered normally.
	m, _ := NewMesh(Config{Rows: 1, Cols: 3})
	m.SetRoute(0, 1, 2, East)
	var direct int
	m.SetProgram(0, 1, ProgramFunc(func(ctx *Context, msg Message) {
		direct++
		ctx.Forward(East, msg)
	}))
	var arrived []Color
	m.SetProgram(0, 2, ProgramFunc(func(ctx *Context, msg Message) {
		arrived = append(arrived, msg.Color)
	}))
	m.Inject(0, 1, Message{Color: 2, Wavelets: 1}, 0)
	m.Inject(0, 1, Message{Color: 3, Wavelets: 1}, 0)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if direct != 1 {
		t.Fatalf("program handled %d messages, want 1 (only color 3)", direct)
	}
	if len(arrived) != 2 {
		t.Fatalf("destination saw %d messages", len(arrived))
	}
}

func TestRouteTimingIsLinkOnly(t *testing.T) {
	// Routed forwarding costs link latency + wavelets, with no processor
	// serialization: inject at t=0, the message crosses two routed hops.
	m, _ := NewMesh(Config{Rows: 1, Cols: 3})
	m.SetRoute(0, 0, 1, East)
	m.SetRoute(0, 1, 1, East)
	var at int64 = -1
	m.SetProgram(0, 2, ProgramFunc(func(ctx *Context, msg Message) {
		at = ctx.Now()
	}))
	m.Inject(0, 0, Message{Color: 1, Wavelets: 10}, 0)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// Two hops × (1 latency + 10 wavelets) = 22.
	if at != 22 {
		t.Fatalf("arrival at %d, want 22", at)
	}
}

func TestRouteValidation(t *testing.T) {
	m, _ := NewMesh(Config{Rows: 1, Cols: 2})
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("route off mesh", func() { m.SetRoute(0, 1, 0, East) })
	mustPanic("route to ramp", func() { m.SetRoute(0, 0, 0, Ramp) })
	mustPanic("bad color", func() { m.SetRoute(0, 0, 30, East) })
	m.SetRoute(0, 0, 0, East)
	m.SetProgram(0, 1, ProgramFunc(func(*Context, Message) {}))
	m.Inject(0, 0, Message{Color: 0, Wavelets: 1}, 0)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	mustPanic("SetRoute after Run", func() { m.SetRoute(0, 0, 1, East) })
}

func TestRoutedLinkSerializesWithSends(t *testing.T) {
	// A routed message and a program send share the same east link; the
	// later one must wait for the link.
	m, _ := NewMesh(Config{Rows: 1, Cols: 2})
	m.SetRoute(0, 0, 7, East)
	m.SetProgram(0, 0, ProgramFunc(func(ctx *Context, msg Message) {
		ctx.Forward(East, msg) // color 0, program relay
	}))
	var arrivals []int64
	m.SetProgram(0, 1, ProgramFunc(func(ctx *Context, msg Message) {
		arrivals = append(arrivals, ctx.Now())
	}))
	// Routed message first occupies the link [0, 1+100].
	m.Inject(0, 0, Message{Color: 7, Wavelets: 100}, 0)
	m.Inject(0, 0, Message{Color: 0, Wavelets: 10}, 0)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != 2 {
		t.Fatalf("%d arrivals", len(arrivals))
	}
	// First (routed): 101. Second: handler relay cost 10 ends ~10, link
	// free at 101 → departs 101, arrives 112.
	if arrivals[0] != 101 || arrivals[1] != 112 {
		t.Fatalf("arrivals %v, want [101 112]", arrivals)
	}
}

func TestTracer(t *testing.T) {
	m, _ := NewMesh(Config{Rows: 1, Cols: 2})
	tr := m.AttachTracer(3)
	m.SetProgram(0, 0, ProgramFunc(func(ctx *Context, msg Message) {
		ctx.Spend(10)
		ctx.Forward(East, msg)
	}))
	m.SetProgram(0, 1, ProgramFunc(func(ctx *Context, msg Message) {
		ctx.Emit(msg.Payload, msg.Wavelets)
	}))
	for b := 0; b < 3; b++ {
		m.Inject(0, 0, Message{Color: 0, Payload: b, Wavelets: 4}, 0)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Entries) != 3 {
		t.Fatalf("retained %d entries, want cap 3", len(tr.Entries))
	}
	// 3 dispatches on PE0 + 3 (dispatch+emit) on PE1 = 9 events total.
	if tr.Dropped != 6 {
		t.Fatalf("dropped %d, want 6", tr.Dropped)
	}
	first := tr.Entries[0]
	if first.Kind != TraceDispatch || first.Cycles != 14 { // 10 spend + 4 relay
		t.Fatalf("first entry %+v", first)
	}
	var sb strings.Builder
	tr.Write(&sb)
	if !strings.Contains(sb.String(), "dispatch") || !strings.Contains(sb.String(), "dropped") {
		t.Fatalf("trace output:\n%s", sb.String())
	}
}

func TestTracerRoutesAndNil(t *testing.T) {
	// Routed events are traced; a mesh without a tracer must not record.
	m, _ := NewMesh(Config{Rows: 1, Cols: 3})
	tr := m.AttachTracer(0) // default cap
	m.SetRoute(0, 1, 4, East)
	m.SetProgram(0, 0, ProgramFunc(func(ctx *Context, msg Message) {
		ctx.Forward(East, msg)
	}))
	m.SetProgram(0, 2, ProgramFunc(func(*Context, Message) {}))
	m.Inject(0, 0, Message{Color: 4, Wavelets: 2}, 0)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	var routes int
	for _, e := range tr.Entries {
		if e.Kind == TraceRoute {
			routes++
		}
	}
	if routes != 1 {
		t.Fatalf("traced %d route events, want 1", routes)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AttachTracer after Run did not panic")
		}
	}()
	m.AttachTracer(1)
}
