package wse

import (
	"os"
	"strconv"
	"testing"
)

// benchMeshRun builds a rows×cols mesh of relay pipelines (every PE
// forwards east at a fixed per-message cost, the edge emits), streams
// blocksPerRow messages into each row head, and runs it to completion —
// the simulator's hot loop with mapping-shaped traffic.
func benchMeshRun(b *testing.B, rows, cols, blocksPerRow int) {
	b.ReportAllocs()
	var events int64
	for i := 0; i < b.N; i++ {
		m, err := NewMesh(benchConfig(rows, cols))
		if err != nil {
			b.Fatal(err)
		}
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				m.SetProgram(r, c, benchProgram(200))
			}
		}
		for r := 0; r < rows; r++ {
			for blk := 0; blk < blocksPerRow; blk++ {
				m.Inject(r, 0, Message{Color: 0, Payload: blk, Wavelets: 8}, int64(9*blk))
			}
		}
		if _, err := m.Run(); err != nil {
			b.Fatal(err)
		}
		if got := len(m.Emissions()); got != rows*blocksPerRow {
			b.Fatalf("%d emissions, want %d", got, rows*blocksPerRow)
		}
		events = m.Processed()
	}
	b.ReportMetric(float64(events), "events/run")
}

func BenchmarkMeshRun(b *testing.B) {
	b.Run("small", func(b *testing.B) { benchMeshRun(b, 1, 8, 512) })
	b.Run("many", func(b *testing.B) { benchMeshRun(b, 64, 8, 256) })
}

// benchConfig builds the mesh config for the benchmark geometry. The
// CERESZ_SIM_WORKERS environment variable selects the engine (1 = the
// sequential reference, 0/unset = auto, N = a sharded pool of N), so
// cmd/benchdiff can pair sequential and sharded runs of the same
// benchmark names.
func benchConfig(rows, cols int) Config {
	cfg := Config{Rows: rows, Cols: cols}
	if s := os.Getenv("CERESZ_SIM_WORKERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil {
			cfg.Workers = n
		}
	}
	return cfg
}

// benchProgram builds the per-PE relay program, row-sharded via its
// ShardProfile.
func benchProgram(cost int64) Program {
	return &rowEcho{echoProgram{cost: cost}}
}
