// Package wse simulates the Cerebras CS-2 wafer-scale engine at the level
// the paper reasons about (§2.1): a 2D mesh of processing elements, each
// with a private local memory (48 KB), its own program counter, and a
// fabric router that exchanges 32-bit wavelets with the four neighbors in
// one clock cycle. Programs are event-driven — a task runs only when its
// input data has arrived — mirroring the CSL data-triggering mechanism
// (paper Fig. 4).
//
// The simulator is deliberately faithful to the constraints that shaped
// CereSZ's design rather than to the PE micro-architecture:
//
//   - no global memory and no shared state: a PE can only touch its own
//     memory and messages from adjacent PEs;
//   - long-distance data movement must be relayed hop by hop by the PEs on
//     the path (paper §4.3 and Fig. 9);
//   - the processor is serial: relay work and compute work on the same PE
//     add up (the accounting behind Formulas (2) and (3));
//   - per-PE cycle counters measure runtime exactly as the paper's
//     "hardware cycle counters at each PE" (§5.1.1); wall time is
//     cycles / 850 MHz.
//
// Computation costs are supplied by the caller (internal/stages carries the
// calibrated per-sub-stage costs); the simulator charges communication
// costs itself from the message's wavelet count.
package wse

import "fmt"

// Dir is one of the five cardinal dataflow directions of a PE (§2.1):
// the four mesh neighbors plus the RAMP link to the local processor.
type Dir int

// Directions.
const (
	North Dir = iota
	East
	South
	West
	Ramp
)

func (d Dir) String() string {
	switch d {
	case North:
		return "north"
	case East:
		return "east"
	case South:
		return "south"
	case West:
		return "west"
	case Ramp:
		return "ramp"
	default:
		return fmt.Sprintf("Dir(%d)", int(d))
	}
}

// Opposite returns the direction a message sent toward d arrives from.
func (d Dir) Opposite() Dir {
	switch d {
	case North:
		return South
	case South:
		return North
	case East:
		return West
	case West:
		return East
	default:
		return Ramp
	}
}

// Color is a logical routing channel. The CS-2 fabric provides 24 colors
// (paper §2.1); the simulator enforces the same limit.
type Color uint8

// NumColors is the number of fabric colors available on the CS-2.
const NumColors = 24

// Valid reports whether the color is one of the 24 available channels.
func (c Color) Valid() bool { return c < NumColors }

// Coord addresses a PE on the mesh.
type Coord struct {
	Row, Col int
}

func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.Row, c.Col) }

// Message is a unit of fabric communication: a typed payload plus the
// number of 32-bit wavelets it occupies on a link. Transferring a message
// across one hop costs LinkLatency + Wavelets cycles of link time.
type Message struct {
	// Color is the logical channel the message travels on.
	Color Color
	// Payload is the data carried; the simulator never inspects it.
	Payload any
	// Wavelets is the message size in 32-bit words (≥ 1).
	Wavelets int
	// From is the direction the message arrived from, filled in on
	// delivery (Ramp for externally injected messages).
	From Dir
	// Src is the coordinate of the sending PE; host-injected messages
	// carry the OffWafer sentinel instead.
	Src Coord
	// Span tags the message with a block-lifecycle span id for tracing
	// (Mesh.AttachSpans); 0 means untracked. Messages a handler sends
	// while processing a tagged message inherit its span automatically,
	// so a block's id follows it across relays, stage hand-offs and
	// router hops.
	Span int64

	// sentAt is the cycle at which the producer handed the message to
	// the fabric: the sending handler's end time, or the injection time
	// for host messages. Router pass-through hops preserve it, so at the
	// final receiver it still marks when the original producer let go —
	// the boundary between queue-wait and fabric-stall attribution.
	sentAt int64
	// arrivedAt is the delivery cycle at the destination PE, stamped when
	// the message enters the mailbox ring; dispatch − arrivedAt is the
	// message's mailbox residency (Stats.MailboxWaitCycles).
	arrivedAt int64
}

// OffWafer is the sentinel source coordinate stamped on host-injected
// messages (Mesh.Inject). No PE owns it, so a program can distinguish
// host ingress from fabric traffic by comparing Message.Src against it.
var OffWafer = Coord{Row: -1, Col: -1}

// Emission is a payload the program handed off the wafer (compressed
// output, in CereSZ's case), with its completion timestamp.
type Emission struct {
	From    Coord
	At      int64
	Payload any
}

// Stats aggregates a PE's cycle accounting.
type Stats struct {
	// ComputeCycles is time spent in Spend (sub-stage execution).
	ComputeCycles int64
	// RelayCycles is time spent forwarding fabric data through the PE
	// (the Fig. 9 relay task).
	RelayCycles int64
	// SendCycles is time spent moving local memory onto the fabric.
	SendCycles int64
	// QueueWaitCycles is processor-idle time spent waiting for the next
	// dispatched message's producer: the upstream handler (or the host
	// feed) had not yet handed the message to the fabric. It is the
	// backpressure signal — a PE starved by a slow upstream stage group
	// accumulates it.
	QueueWaitCycles int64
	// FabricStallCycles is processor-idle time during which the next
	// dispatched message was already on the fabric: link latency, wavelet
	// streaming and link-serialization delays (the Formula (2) transfer
	// terms seen from the receiver).
	FabricStallCycles int64
	// MailboxWaitCycles sums, over dispatched messages, the cycles each
	// spent queued in this PE's mailbox ring between delivery and
	// dispatch. It overlaps the PE's busy window (messages queue only
	// while the processor is running), so it is reported alongside — not
	// inside — the timeline buckets.
	MailboxWaitCycles int64
	// Handled counts dispatched messages.
	Handled int64
	// Forwarded counts Context.Forward calls (processor relay hops), the
	// divisor that turns RelayCycles into a measured per-hop relay cost
	// for the Formula (2) cross-check.
	Forwarded int64
	// Routed counts messages the fabric router forwarded without the
	// processor (SetRoute pass-through).
	Routed int64
	// LastActive is the cycle at which the PE last finished work.
	LastActive int64
	// MemPeak is the high-water mark of allocated local memory in bytes.
	MemPeak int
}

// BusyCycles is the total occupied processor time.
func (s Stats) BusyCycles() int64 {
	return s.ComputeCycles + s.RelayCycles + s.SendCycles
}
