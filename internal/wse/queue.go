package wse

// Event-queue machinery for the discrete-event engine.
//
// Events are ordered by the key (at, src, seq): simulated cycle first,
// then the origin PE's linear index (host injections use origin -1, which
// orders them before any fabric event in the same cycle), then the
// origin's own push counter. Each origin stamps its pushes with a
// strictly increasing seq, so the key is a total order computed from
// per-PE behavior alone — it does not depend on how the run is
// partitioned, which is what lets the row-sharded engine reproduce the
// sequential engine's results bit for bit (see DESIGN.md, "Simulator
// engine").

type evKind uint8

const (
	evDeliver evKind = iota
	evReady
)

// event is one scheduled occurrence, held by value in the heap.
type event struct {
	at   int64
	src  int32 // origin PE linear index; -1 for host injections
	seq  int64 // origin's push counter
	kind evKind
	pe   int32 // destination PE linear index
	msg  Message
}

// before orders events by (at, src, seq).
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	if e.src != o.src {
		return e.src < o.src
	}
	return e.seq < o.seq
}

// eventHeap is a 4-ary min-heap of value-typed events. Unlike
// container/heap, push and pop never box (heap.Push takes `any`, which
// allocates on every call — the seed engine's dominant allocation), and
// the 4-wide fan-out halves the tree depth, trading a few extra
// comparisons per level for fewer cache-missing element moves.
type eventHeap struct {
	ev []event
}

func (h *eventHeap) len() int { return len(h.ev) }

func (h *eventHeap) push(e event) {
	h.ev = append(h.ev, e)
	i := len(h.ev) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !e.before(&h.ev[p]) {
			break
		}
		h.ev[i] = h.ev[p]
		i = p
	}
	h.ev[i] = e
}

func (h *eventHeap) pop() event {
	top := h.ev[0]
	n := len(h.ev) - 1
	last := h.ev[n]
	h.ev[n] = event{} // drop the payload reference
	h.ev = h.ev[:n]
	if n > 0 {
		h.siftDown(last, 0, n)
	}
	return top
}

// siftDown places e at index i, moving smaller children up as it goes.
func (h *eventHeap) siftDown(e event, i, n int) {
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		min := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if h.ev[j].before(&h.ev[min]) {
				min = j
			}
		}
		if !h.ev[min].before(&e) {
			break
		}
		h.ev[i] = h.ev[min]
		i = min
	}
	h.ev[i] = e
}

// heapify establishes the heap property over the whole slice in O(n) —
// used when an engine's initial event set is bulk-loaded (injections and
// Init-phase sends binned to a shard) rather than pushed one by one.
func (h *eventHeap) heapify() {
	n := len(h.ev)
	for i := (n - 2) >> 2; i >= 0; i-- {
		h.siftDown(h.ev[i], i, n)
	}
}
