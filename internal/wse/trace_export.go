package wse

import (
	"fmt"
	"io"

	"ceresz/internal/telemetry"
)

// Chrome trace-event export for the simulator's Tracer and SpanLog. Both
// render through the shared telemetry.ChromeTraceWriter — the same
// machinery the serving path uses for request spans — so simulator and
// server captures open in the same viewer with the same conventions.

// WriteChromeTrace renders the trace as a Chrome trace-event JSON array:
// one track (tid) per PE, one complete slice (ph "X") per dispatch, route
// or emit, with the message color and wavelet count as slice args.
// Timestamps are simulator cycles presented as microseconds, so one
// Perfetto "µs" is one PE clock cycle. cfg must be the configuration of
// the mesh that produced the trace (the column count assigns track ids).
func (tr *Tracer) WriteChromeTrace(w io.Writer, cfg Config) error {
	tw := telemetry.NewChromeTraceWriter(w)

	// One named track per PE appearing in the trace, in first-seen order.
	tid := func(c Coord) int { return c.Row*cfg.Cols + c.Col }
	seen := map[int]bool{}
	events := tr.Events()
	for _, e := range events {
		id := tid(e.PE)
		if seen[id] {
			continue
		}
		seen[id] = true
		tw.Emit(telemetry.ThreadName(0, id, fmt.Sprintf("PE(%d,%d)", e.PE.Row, e.PE.Col)))
	}

	for _, e := range events {
		ev := telemetry.ChromeEvent{
			Name: e.Kind.String(),
			Cat:  e.Kind.String(),
			Ph:   "X",
			Ts:   e.At,
			Dur:  1,
			Pid:  0,
			Tid:  tid(e.PE),
		}
		switch e.Kind {
		case TraceDispatch:
			if e.Cycles > 1 {
				ev.Dur = e.Cycles
			}
			ev.Cname = "good"
			ev.Args = map[string]any{"color": int(e.Color), "wavelets": e.Wavelets}
		case TraceRoute:
			if int64(e.Wavelets) > 1 {
				ev.Dur = int64(e.Wavelets)
			}
			ev.Cname = "yellow"
			ev.Args = map[string]any{"color": int(e.Color), "wavelets": e.Wavelets}
		case TraceEmit:
			ev.Cname = "grey"
		}
		tw.Emit(ev)
	}
	return tw.Close()
}

// WriteChromeTrace renders the span log as a Chrome trace-event JSON
// array: one track per PE, one slice per lifecycle point of every traced
// block, and one flow arrow chain (ph "s"/"t"/"f", id = span id) linking
// each block's inject → hops → eject across tracks — Perfetto draws a
// block's whole journey over the wafer. Timestamps are simulator cycles
// presented as microseconds (one Perfetto "µs" is one PE clock cycle);
// cfg must be the configuration of the mesh that produced the log.
func (sl *SpanLog) WriteChromeTrace(w io.Writer, cfg Config) error {
	tw := telemetry.NewChromeTraceWriter(w)

	tid := func(c Coord) int { return c.Row*cfg.Cols + c.Col }
	seen := map[int]bool{}
	for _, e := range sl.events {
		id := tid(e.PE)
		if seen[id] {
			continue
		}
		seen[id] = true
		tw.Emit(telemetry.ThreadName(0, id, fmt.Sprintf("PE(%d,%d)", e.PE.Row, e.PE.Col)))
	}

	for _, b := range sl.BlockSpans() {
		flowID := fmt.Sprintf("%d", b.Span)
		for i, e := range b.Events {
			name := e.Kind.String()
			if e.Kind == SpanDispatch && e.Label != "" {
				name = e.Label
			}
			slice := telemetry.ChromeEvent{
				Name: name, Cat: "span", Ph: "X",
				Ts: e.At, Dur: 1, Pid: 0, Tid: tid(e.PE),
				Args: map[string]any{"span": b.Span, "wavelets": e.Wavelets},
			}
			if e.End > e.At {
				slice.Dur = e.End - e.At
			}
			switch e.Kind {
			case SpanInject:
				slice.Cname = "grey"
			case SpanRoute:
				slice.Cname = "yellow"
			case SpanDispatch:
				slice.Cname = "good"
				slice.Args["sent"] = e.Sent
				slice.Args["arrived"] = e.Arrived
			case SpanEject:
				slice.Cname = "grey"
			}
			tw.Emit(slice)
			// Flow arrow chain: start on the first lifecycle point, step
			// through the middle ones, finish (binding to the enclosing
			// slice's start, bp "e") on the last. Flow events bind to the
			// slice at the same (tid, ts), i.e. the one just emitted.
			flow := telemetry.ChromeEvent{Name: "block", Cat: "span", Ts: e.At, Pid: 0,
				Tid: tid(e.PE), ID: flowID}
			switch {
			case len(b.Events) == 1:
				continue // a single point has no arrow to draw
			case i == 0:
				flow.Ph = "s"
			case i == len(b.Events)-1:
				flow.Ph = "f"
				flow.BP = "e"
			default:
				flow.Ph = "t"
			}
			tw.Emit(flow)
		}
	}
	return tw.Close()
}

// UtilizationGrid returns each PE's busy fraction (busy cycles / elapsed
// cycles) as a Rows×Cols grid. An idle mesh yields all zeros.
func (m *Mesh) UtilizationGrid() [][]float64 {
	elapsed := m.Elapsed()
	grid := make([][]float64, m.cfg.Rows)
	for r := range grid {
		grid[r] = make([]float64, m.cfg.Cols)
		if elapsed == 0 {
			continue
		}
		for c := 0; c < m.cfg.Cols; c++ {
			grid[r][c] = float64(m.pes[r*m.cfg.Cols+c].stats.BusyCycles()) / float64(elapsed)
		}
	}
	return grid
}

// WriteHeatmapCSV writes the per-PE utilization heatmap as a Rows×Cols
// CSV of busy fractions — row r of the mesh is line r of the file.
func (m *Mesh) WriteHeatmapCSV(w io.Writer) error {
	for _, row := range m.UtilizationGrid() {
		for c, u := range row {
			if c > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%.6f", u); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}

// heatShades maps utilization deciles to terminal shades.
const heatShades = " .:-=+*#%@"

// WriteHeatmapASCII renders the utilization heatmap as one shade character
// per PE (space = idle, '@' = ≥90% busy), a quick terminal view of the
// paper's Fig. 10 balance profile across the whole mesh.
func (m *Mesh) WriteHeatmapASCII(w io.Writer) {
	fmt.Fprintf(w, "per-PE utilization (%dx%d mesh, %d cycles; shade ramp %q):\n",
		m.cfg.Rows, m.cfg.Cols, m.Elapsed(), heatShades)
	for _, row := range m.UtilizationGrid() {
		line := make([]byte, len(row))
		for c, u := range row {
			idx := int(u * 10)
			if idx >= len(heatShades) {
				idx = len(heatShades) - 1
			}
			if idx < 0 {
				idx = 0
			}
			line[c] = heatShades[idx]
		}
		fmt.Fprintf(w, "|%s|\n", line)
	}
}
