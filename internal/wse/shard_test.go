package wse

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// rowEcho is echoProgram with a RowLocal shard profile, so meshes running
// it partition into one shard per row.
type rowEcho struct {
	echoProgram
}

func (*rowEcho) ShardProfile() ShardProfile { return ShardProfile{RowLocal: true} }

// buildEchoMesh wires a rows×cols mesh of rowEcho PEs with blocksPerRow
// staggered injections per row head.
func buildEchoMesh(t *testing.T, rows, cols, blocksPerRow, workers int) *Mesh {
	t.Helper()
	m, err := NewMesh(Config{Rows: rows, Cols: cols, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			m.SetProgram(r, c, &rowEcho{echoProgram{cost: 50}})
		}
	}
	for r := 0; r < rows; r++ {
		for b := 0; b < blocksPerRow; b++ {
			m.Inject(r, 0, Message{Color: 1, Payload: fmt.Sprintf("r%db%d", r, b), Wavelets: 4}, int64(5*b))
		}
	}
	return m
}

// runSnapshot captures everything observable about a finished run.
type runSnapshot struct {
	elapsed   int64
	processed int64
	emissions []Emission
	stats     []Stats
}

func snapshot(t *testing.T, m *Mesh) runSnapshot {
	t.Helper()
	elapsed, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	s := runSnapshot{elapsed: elapsed, processed: m.Processed(), emissions: m.Emissions()}
	cfg := m.Config()
	for r := 0; r < cfg.Rows; r++ {
		for c := 0; c < cfg.Cols; c++ {
			s.stats = append(s.stats, m.PE(r, c).Stats())
		}
	}
	return s
}

func TestShardedMatchesSequential(t *testing.T) {
	ref := snapshot(t, buildEchoMesh(t, 8, 6, 32, 1))
	for _, workers := range []int{2, 3, 8} {
		m := buildEchoMesh(t, 8, 6, 32, workers)
		got := snapshot(t, m)
		if m.Shards() != 8 {
			t.Fatalf("workers=%d: %d shards, want 8", workers, m.Shards())
		}
		if got.elapsed != ref.elapsed || got.processed != ref.processed {
			t.Fatalf("workers=%d: elapsed/processed %d/%d, want %d/%d",
				workers, got.elapsed, got.processed, ref.elapsed, ref.processed)
		}
		if !reflect.DeepEqual(got.emissions, ref.emissions) {
			t.Fatalf("workers=%d: emission log diverges from sequential", workers)
		}
		if !reflect.DeepEqual(got.stats, ref.stats) {
			t.Fatalf("workers=%d: per-PE stats diverge from sequential", workers)
		}
	}
}

func TestUnprofiledProgramsFallBackToOneShard(t *testing.T) {
	m, err := NewMesh(Config{Rows: 4, Cols: 2, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		for c := 0; c < 2; c++ {
			m.SetProgram(r, c, &echoProgram{cost: 10}) // no ShardProfile
		}
	}
	m.Inject(0, 0, Message{Color: 0, Payload: 1, Wavelets: 1}, 0)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Shards() != 1 || m.Workers() != 1 {
		t.Fatalf("got %d shards / %d workers, want the sequential fallback", m.Shards(), m.Workers())
	}
}

// southLiar claims RowLocal but sends South from a handler.
type southLiar struct{}

func (*southLiar) Init(*Context) {}
func (*southLiar) OnMessage(ctx *Context, msg Message) {
	if ctx.Coord().Row == 0 {
		ctx.Forward(South, msg)
	}
}
func (*southLiar) ShardProfile() ShardProfile { return ShardProfile{RowLocal: true} }

func TestShardProfileViolationPanics(t *testing.T) {
	m, err := NewMesh(Config{Rows: 2, Cols: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 2; r++ {
		for c := 0; c < 2; c++ {
			m.SetProgram(r, c, &southLiar{})
		}
	}
	m.Inject(0, 0, Message{Color: 0, Payload: 1, Wavelets: 1}, 0)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Run did not panic on a RowLocal violation")
		}
		if !strings.Contains(fmt.Sprint(r), "shard-profile violation") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	m.Run()
}

// feedColor is the column-distribution color the pre-pass tests use.
const feedColor = Color(5)

// columnFeeder mimics the mapping's single-ingress head PE: feed-colored
// messages carry a destination row; off-row traffic is forwarded South,
// on-row traffic is processed and handed East on color 6.
type columnFeeder struct{}

func (*columnFeeder) Init(*Context) {}
func (*columnFeeder) OnMessage(ctx *Context, msg Message) {
	row, _ := msg.Payload.(int)
	if msg.Color == feedColor && row != ctx.Coord().Row {
		ctx.Forward(South, msg)
		return
	}
	ctx.Spend(30)
	ctx.Send(East, Message{Color: 6, Payload: msg.Payload, Wavelets: msg.Wavelets})
}
func (*columnFeeder) ShardProfile() ShardProfile {
	return ShardProfile{RowLocal: true, FeedColors: []Color{feedColor}}
}

// buildFeedMesh builds a rows×3 mesh: column 0 runs columnFeeder, the rest
// of each row runs rowEcho, and all traffic enters at PE (0,0).
func buildFeedMesh(t *testing.T, rows, blocks, workers int) *Mesh {
	t.Helper()
	m, err := NewMesh(Config{Rows: rows, Cols: 3, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rows; r++ {
		m.SetProgram(r, 0, &columnFeeder{})
		for c := 1; c < 3; c++ {
			m.SetProgram(r, c, &rowEcho{echoProgram{cost: 20}})
		}
	}
	for b := 0; b < blocks; b++ {
		m.Inject(0, 0, Message{Color: feedColor, Payload: b % rows, Wavelets: 4}, int64(6*b))
	}
	return m
}

func TestColumnFeedPrePassMatchesSequential(t *testing.T) {
	ref := snapshot(t, buildFeedMesh(t, 4, 24, 1))
	for _, workers := range []int{2, 4} {
		m := buildFeedMesh(t, 4, 24, workers)
		got := snapshot(t, m)
		if m.Shards() != 4 {
			t.Fatalf("workers=%d: %d shards, want 4", workers, m.Shards())
		}
		if got.elapsed != ref.elapsed || got.processed != ref.processed {
			t.Fatalf("workers=%d: elapsed/processed %d/%d, want %d/%d",
				workers, got.elapsed, got.processed, ref.elapsed, ref.processed)
		}
		if !reflect.DeepEqual(got.emissions, ref.emissions) {
			t.Fatalf("workers=%d: emission log diverges from sequential", workers)
		}
		if !reflect.DeepEqual(got.stats, ref.stats) {
			t.Fatalf("workers=%d: per-PE stats diverge from sequential", workers)
		}
	}
}

func TestInjectCarriesOffWaferSrc(t *testing.T) {
	m, err := NewMesh(Config{Rows: 1, Cols: 2})
	if err != nil {
		t.Fatal(err)
	}
	var srcs []Coord
	rec := ProgramFunc(func(ctx *Context, msg Message) {
		srcs = append(srcs, msg.Src)
		if ctx.Coord().Col == 0 {
			ctx.Forward(East, msg)
		}
	})
	m.SetProgram(0, 0, rec)
	m.SetProgram(0, 1, rec)
	m.Inject(0, 0, Message{Color: 0, Payload: "x", Wavelets: 1, Src: Coord{Row: 9, Col: 9}}, 0)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(srcs) != 2 {
		t.Fatalf("saw %d deliveries, want 2", len(srcs))
	}
	if srcs[0] != OffWafer {
		t.Fatalf("injected message Src = %v, want the OffWafer sentinel %v", srcs[0], OffWafer)
	}
	if want := (Coord{Row: 0, Col: 0}); srcs[1] != want {
		t.Fatalf("fabric message Src = %v, want sender %v", srcs[1], want)
	}
}

func TestEventHeapSteadyStateAllocs(t *testing.T) {
	var h eventHeap
	h.ev = make([]event, 0, 256)
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 256; i++ {
			h.push(event{at: int64((i * 37) % 97), src: int32(i), seq: int64(i)})
		}
		prev := event{at: -1, src: -1}
		for h.len() > 0 {
			e := h.pop()
			if e.before(&prev) {
				t.Fatal("heap popped events out of order")
			}
			prev = e
		}
	})
	if allocs != 0 {
		t.Fatalf("event heap allocated %v times per run at steady state, want 0", allocs)
	}
}
