package wse

import (
	"fmt"
	"io"
)

// TraceKind classifies a traced event.
type TraceKind uint8

// Trace event kinds.
const (
	// TraceDispatch is a program handler invocation.
	TraceDispatch TraceKind = iota
	// TraceRoute is a router pass-through (SetRoute).
	TraceRoute
	// TraceEmit is a wafer-egress emission.
	TraceEmit
)

func (k TraceKind) String() string {
	switch k {
	case TraceDispatch:
		return "dispatch"
	case TraceRoute:
		return "route"
	case TraceEmit:
		return "emit"
	default:
		return fmt.Sprintf("TraceKind(%d)", uint8(k))
	}
}

// TraceEntry records one scheduler event — the simulator's analogue of the
// CS-2's hardware trace buffers.
type TraceEntry struct {
	// At is the event's start cycle.
	At int64
	// PE is where it happened.
	PE Coord
	// Kind classifies the event.
	Kind TraceKind
	// Color is the triggering message's channel (dispatch/route only).
	Color Color
	// Cycles is the handler's total cost (dispatch only).
	Cycles int64
	// Wavelets is the message size (dispatch/route).
	Wavelets int
}

// Tracer captures up to Cap entries; further events are counted but
// dropped (trace buffers are finite on the real hardware too).
type Tracer struct {
	// Cap is the maximum retained entries.
	Cap int
	// Entries are the retained events in occurrence order.
	Entries []TraceEntry
	// Dropped counts events past the cap.
	Dropped int64
}

// AttachTracer installs a tracer capturing up to capEntries events.
// Must be called before Run. Returns the tracer for inspection afterwards.
func (m *Mesh) AttachTracer(capEntries int) *Tracer {
	if m.ran {
		panic("wse: AttachTracer after Run")
	}
	if capEntries <= 0 {
		capEntries = 1 << 16
	}
	m.tracer = &Tracer{Cap: capEntries}
	return m.tracer
}

// record appends an entry, honoring the cap.
func (tr *Tracer) record(e TraceEntry) {
	if tr == nil {
		return
	}
	if len(tr.Entries) >= tr.Cap {
		tr.Dropped++
		return
	}
	tr.Entries = append(tr.Entries, e)
}

// Write renders the trace as one line per event.
func (tr *Tracer) Write(w io.Writer) {
	for _, e := range tr.Entries {
		switch e.Kind {
		case TraceDispatch:
			fmt.Fprintf(w, "%10d %v dispatch color=%d wavelets=%d cycles=%d\n",
				e.At, e.PE, e.Color, e.Wavelets, e.Cycles)
		case TraceRoute:
			fmt.Fprintf(w, "%10d %v route    color=%d wavelets=%d\n",
				e.At, e.PE, e.Color, e.Wavelets)
		case TraceEmit:
			fmt.Fprintf(w, "%10d %v emit\n", e.At, e.PE)
		}
	}
	if tr.Dropped > 0 {
		fmt.Fprintf(w, "(+%d events dropped past the %d-entry cap)\n", tr.Dropped, tr.Cap)
	}
}
