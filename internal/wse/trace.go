package wse

import (
	"fmt"
	"io"
)

// TraceKind classifies a traced event.
type TraceKind uint8

// Trace event kinds.
const (
	// TraceDispatch is a program handler invocation.
	TraceDispatch TraceKind = iota
	// TraceRoute is a router pass-through (SetRoute).
	TraceRoute
	// TraceEmit is a wafer-egress emission.
	TraceEmit
)

func (k TraceKind) String() string {
	switch k {
	case TraceDispatch:
		return "dispatch"
	case TraceRoute:
		return "route"
	case TraceEmit:
		return "emit"
	default:
		return fmt.Sprintf("TraceKind(%d)", uint8(k))
	}
}

// TraceEntry records one scheduler event — the simulator's analogue of the
// CS-2's hardware trace buffers.
type TraceEntry struct {
	// At is the event's start cycle.
	At int64
	// PE is where it happened.
	PE Coord
	// Kind classifies the event.
	Kind TraceKind
	// Color is the triggering message's channel (dispatch/route only).
	Color Color
	// Cycles is the handler's total cost (dispatch only).
	Cycles int64
	// Wavelets is the message size (dispatch/route).
	Wavelets int
}

// TraceMode selects which events a full Tracer retains.
type TraceMode uint8

// Tracer retention modes.
const (
	// KeepFirst keeps the first Cap events and drops the rest — the
	// behavior of a hardware trace buffer that fills once.
	KeepFirst TraceMode = iota
	// KeepLast keeps the most recent Cap events in a ring, evicting the
	// oldest — the right mode for inspecting the end of a long run.
	KeepLast
)

// Tracer captures up to Cap entries. In KeepFirst mode, events past the
// cap are dropped; in KeepLast mode the oldest retained events are
// evicted instead. Either way, Dropped counts the events not retained, so
// len(Events()) + Dropped is the total number of events observed.
type Tracer struct {
	// Cap is the maximum retained entries.
	Cap int
	// Mode selects KeepFirst (default) or KeepLast retention.
	Mode TraceMode
	// Entries is the raw retained storage. In KeepLast mode it is a ring
	// whose oldest element sits at the internal write cursor once full —
	// use Events for the entries in occurrence order.
	Entries []TraceEntry
	// Dropped counts events not retained (dropped past the cap in
	// KeepFirst mode, evicted by newer events in KeepLast mode).
	Dropped int64

	next int // ring write cursor (KeepLast, len(Entries) == Cap)
}

// AttachTracer installs a KeepFirst tracer capturing up to capEntries
// events. Must be called before Run. Returns the tracer for inspection
// afterwards.
func (m *Mesh) AttachTracer(capEntries int) *Tracer {
	return m.attachTracer(capEntries, KeepFirst)
}

// AttachRingTracer installs a KeepLast tracer retaining the most recent
// capEntries events. Must be called before Run.
func (m *Mesh) AttachRingTracer(capEntries int) *Tracer {
	return m.attachTracer(capEntries, KeepLast)
}

func (m *Mesh) attachTracer(capEntries int, mode TraceMode) *Tracer {
	if m.ran {
		panic("wse: AttachTracer after Run")
	}
	if capEntries <= 0 {
		capEntries = 1 << 16
	}
	m.tracer = &Tracer{Cap: capEntries, Mode: mode}
	return m.tracer
}

// record appends an entry, honoring the cap and mode.
func (tr *Tracer) record(e TraceEntry) {
	if tr == nil {
		return
	}
	if len(tr.Entries) < tr.Cap {
		tr.Entries = append(tr.Entries, e)
		return
	}
	if tr.Mode == KeepFirst {
		tr.Dropped++
		return
	}
	// KeepLast: overwrite the oldest entry.
	tr.Entries[tr.next] = e
	tr.next++
	if tr.next == tr.Cap {
		tr.next = 0
	}
	tr.Dropped++
}

// Events returns the retained entries in occurrence order (unrotating the
// ring in KeepLast mode). The returned slice aliases the tracer's storage
// only when no rotation was needed; treat it as read-only.
func (tr *Tracer) Events() []TraceEntry {
	if tr.Mode == KeepFirst || tr.next == 0 || len(tr.Entries) < tr.Cap {
		return tr.Entries
	}
	out := make([]TraceEntry, 0, len(tr.Entries))
	out = append(out, tr.Entries[tr.next:]...)
	out = append(out, tr.Entries[:tr.next]...)
	return out
}

// Write renders the trace as one line per event.
func (tr *Tracer) Write(w io.Writer) {
	if tr.Mode == KeepLast && tr.Dropped > 0 {
		fmt.Fprintf(w, "(%d earlier events evicted by the %d-entry ring)\n", tr.Dropped, tr.Cap)
	}
	for _, e := range tr.Events() {
		switch e.Kind {
		case TraceDispatch:
			fmt.Fprintf(w, "%10d %v dispatch color=%d wavelets=%d cycles=%d\n",
				e.At, e.PE, e.Color, e.Wavelets, e.Cycles)
		case TraceRoute:
			fmt.Fprintf(w, "%10d %v route    color=%d wavelets=%d\n",
				e.At, e.PE, e.Color, e.Wavelets)
		case TraceEmit:
			fmt.Fprintf(w, "%10d %v emit\n", e.At, e.PE)
		}
	}
	if tr.Mode == KeepFirst && tr.Dropped > 0 {
		fmt.Fprintf(w, "(+%d events dropped past the %d-entry cap)\n", tr.Dropped, tr.Cap)
	}
}
