package stages

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ceresz/internal/core"
	"ceresz/internal/flenc"
	"ceresz/internal/quant"
)

func smoothField(n int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float32, n)
	v := 0.0
	for i := range data {
		v += rng.NormFloat64() * 0.01
		data[i] = float32(math.Sin(float64(i)*0.02)*3 + v)
	}
	return data
}

// TestChainMatchesCore is the central functional invariant: running the
// sub-stage chain block by block must produce exactly the block bytes that
// internal/core emits.
func TestChainMatchesCore(t *testing.T) {
	data := smoothField(4096+17, 1)
	eps := 1e-3
	for _, hdr := range []int{flenc.HeaderU32, flenc.HeaderU8} {
		comp, _, err := core.CompressWithEps(nil, data, eps, core.Options{HeaderBytes: hdr, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		body := comp[core.StreamHeaderSize:]

		chain, err := NewCompressChain(Config{BlockLen: 32, HeaderBytes: hdr, Eps: eps, EstWidth: 8})
		if err != nil {
			t.Fatal(err)
		}
		st := NewBlockState(32)
		var got []byte
		nBlocks := (len(data) + 31) / 32
		for b := 0; b < nBlocks; b++ {
			lo, hi := b*32, (b+1)*32
			if hi > len(data) {
				hi = len(data)
			}
			st.ResetForCompress(data[lo:hi])
			chain.RunAll(st)
			got = append(got, st.Encoded...)
		}
		if !bytes.Equal(got, body) {
			t.Fatalf("hdr=%d: chain bytes differ from core bytes (%d vs %d bytes)", hdr, len(got), len(body))
		}
	}
}

func TestDecompressChainInvertsCompressChain(t *testing.T) {
	data := smoothField(2048, 2)
	eps := 5e-4
	cc, err := NewCompressChain(Config{BlockLen: 32, Eps: eps, EstWidth: 6})
	if err != nil {
		t.Fatal(err)
	}
	dc, err := NewDecompressChain(Config{BlockLen: 32, Eps: eps, EstWidth: 6})
	if err != nil {
		t.Fatal(err)
	}
	cst := NewBlockState(32)
	dst := NewBlockState(32)
	for b := 0; b < len(data)/32; b++ {
		blk := data[b*32 : (b+1)*32]
		cst.ResetForCompress(blk)
		cc.RunAll(cst)
		dst.ResetForDecompress(cst.Encoded)
		dc.RunAll(dst)
		for i := range blk {
			if e := math.Abs(float64(dst.Raw[i]) - float64(blk[i])); e > eps {
				t.Fatalf("block %d elem %d: error %g > ε", b, i, e)
			}
		}
	}
}

func TestVerbatimThroughChain(t *testing.T) {
	blk := make([]float32, 32)
	for i := range blk {
		blk[i] = float32(math.Inf(1))
	}
	cc, _ := NewCompressChain(Config{BlockLen: 32, Eps: 1e-3, EstWidth: 4})
	dc, _ := NewDecompressChain(Config{BlockLen: 32, Eps: 1e-3, EstWidth: 4})
	st := NewBlockState(32)
	st.ResetForCompress(blk)
	cc.RunAll(st)
	if !st.Verbatim {
		t.Fatal("Inf block not marked verbatim")
	}
	if len(st.Encoded) != flenc.VerbatimSize(32, flenc.HeaderU32) {
		t.Fatalf("verbatim size %d", len(st.Encoded))
	}
	out := NewBlockState(32)
	out.ResetForDecompress(st.Encoded)
	dc.RunAll(out)
	for i := range blk {
		if !math.IsInf(float64(out.Raw[i]), 1) {
			t.Fatalf("verbatim round trip lost Inf at %d", i)
		}
	}
}

func TestZeroBlockCostSkipsShuffle(t *testing.T) {
	// Paper §5.2: zero blocks avoid fixed-length encoding and Bit-shuffle,
	// which is why looser bounds raise throughput.
	cc, _ := NewCompressChain(Config{BlockLen: 32, Eps: 1e-2, EstWidth: 10})
	zero := NewBlockState(32)
	zero.ResetForCompress(make([]float32, 32))
	zeroCycles := cc.RunAll(zero)

	busy := NewBlockState(32)
	blk := make([]float32, 32)
	for i := range blk {
		blk[i] = float32(i) * 7.3
	}
	busy.ResetForCompress(blk)
	busyCycles := cc.RunAll(busy)
	if zeroCycles >= busyCycles {
		t.Fatalf("zero block cost %d not below busy block cost %d", zeroCycles, busyCycles)
	}
	if zero.Width != 0 || busy.Width == 0 {
		t.Fatalf("widths: zero=%d busy=%d", zero.Width, busy.Width)
	}
}

func TestTable1Cycles(t *testing.T) {
	// The calibrated model must reproduce the paper's Table 1 profile for
	// fixed length 17 (CESM-ATM): Pre-Quant ≈ 6051…6116, Lorenzo = 975,
	// FL-Encode ≈ 37124 cycles per 32-element block.
	cm := DefaultCosts()
	preQuant := cm.Mul + cm.Add
	if preQuant < 6000 || preQuant > 6200 {
		t.Fatalf("pre-quant cycles %.0f outside Table 1/2 regime", preQuant)
	}
	if cm.Lorenzo != 975 {
		t.Fatalf("Lorenzo cycles %.0f, want 975", cm.Lorenzo)
	}
	flEnc := cm.Sign + cm.Max + cm.GetLength + 17*cm.ShufflePerBit
	if math.Abs(flEnc-37124) > 200 {
		t.Fatalf("FL-encode cycles %.0f, want ≈37124 (Table 1, CESM-ATM)", flEnc)
	}
	// HACC (fl=13) and QMCPack (fl=12) rows.
	if got := cm.Sign + cm.Max + cm.GetLength + 13*cm.ShufflePerBit; math.Abs(got-29181) > 300 {
		t.Fatalf("FL-encode fl=13: %.0f, want ≈29181", got)
	}
	if got := cm.Sign + cm.Max + cm.GetLength + 12*cm.ShufflePerBit; math.Abs(got-27188) > 300 {
		t.Fatalf("FL-encode fl=12: %.0f, want ≈27188", got)
	}
}

func TestEstimateCycles(t *testing.T) {
	cc, _ := NewCompressChain(Config{BlockLen: 32, Eps: 1e-3, EstWidth: 5})
	est := cc.EstimateCycles(5)
	if len(est) != len(cc.Stages) {
		t.Fatalf("estimate length %d != stages %d", len(est), len(cc.Stages))
	}
	var shuffles int
	for i, s := range cc.Stages {
		if est[i] < 0 {
			t.Fatalf("negative estimate for %s", s.Name)
		}
		if len(s.Name) > 7 && s.Name[:7] == "Shuffle" {
			shuffles++
			if est[i] != 1976 {
				t.Fatalf("%s estimate %d, want 1976", s.Name, est[i])
			}
		}
	}
	if shuffles != 5 {
		t.Fatalf("chain has %d shuffle stages, want 5", shuffles)
	}
	// Width above the estimate folds into the last shuffle stage.
	est8 := cc.EstimateCycles(8)
	lastShuffle := -1
	for i, s := range cc.Stages {
		if len(s.Name) > 7 && s.Name[:7] == "Shuffle" {
			lastShuffle = i
		}
	}
	if est8[lastShuffle] != 4*1976 {
		t.Fatalf("tail shuffle estimate %d, want %d", est8[lastShuffle], 4*1976)
	}
}

func TestEstimateWidth(t *testing.T) {
	data := smoothField(32*100, 3)
	w, err := EstimateWidth(data, 1e-3, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	if w < 1 || w > 32 {
		t.Fatalf("estimated width %d out of range", w)
	}
	// Sampling with a stride can only lower (or keep) the max estimate.
	w20, err := EstimateWidth(data, 1e-3, 32, 20)
	if err != nil {
		t.Fatal(err)
	}
	if w20 > w {
		t.Fatalf("strided estimate %d exceeds full estimate %d", w20, w)
	}
	// Zero data estimates the floor width of 1.
	wz, err := EstimateWidth(make([]float32, 320), 1e-3, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	if wz != 1 {
		t.Fatalf("zero-data width %d, want 1", wz)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{BlockLen: 12, Eps: 1e-3},
		{BlockLen: 32, Eps: 0},
		{BlockLen: 32, Eps: 1e-3, HeaderBytes: 3},
		{BlockLen: 32, Eps: 1e-3, EstWidth: 40},
	}
	for i, cfg := range bad {
		if _, err := NewCompressChain(cfg); err == nil {
			t.Fatalf("case %d: compress chain accepted bad config %+v", i, cfg)
		}
		if _, err := NewDecompressChain(cfg); err == nil {
			t.Fatalf("case %d: decompress chain accepted bad config %+v", i, cfg)
		}
	}
}

func TestWaveletsAccounting(t *testing.T) {
	cc, _ := NewCompressChain(Config{BlockLen: 32, Eps: 1e-3, EstWidth: 6})
	st := NewBlockState(32)
	blk := smoothField(32, 4)
	st.ResetForCompress(blk)
	if st.Wavelets() != 32 {
		t.Fatalf("raw wavelets %d, want 32", st.Wavelets())
	}
	for i := range cc.Stages {
		cc.Stages[i].Run(st)
		if w := st.Wavelets(); w <= 0 || w > 32+flenc.MaxWidth+2+32 {
			t.Fatalf("after %s: implausible wavelet count %d", cc.Stages[i].Name, w)
		}
	}
	// After Emit the live representation is the encoded block.
	want := (len(st.Encoded) + 3) / 4
	if st.Wavelets() != want {
		t.Fatalf("encoded wavelets %d, want %d", st.Wavelets(), want)
	}
}

// Property: the chain honors the error bound for arbitrary quantizable
// blocks, and cycles are non-negative and width-monotone in Bit-shuffle.
func TestQuickChainErrorBound(t *testing.T) {
	cc, _ := NewCompressChain(Config{BlockLen: 32, Eps: 1e-2, EstWidth: 4})
	dc, _ := NewDecompressChain(Config{BlockLen: 32, Eps: 1e-2, EstWidth: 4})
	cst := NewBlockState(32)
	dst := NewBlockState(32)
	f := func(vals [32]float32) bool {
		blk := make([]float32, 32)
		for i, v := range vals {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				v = 0
			}
			blk[i] = float32(math.Mod(float64(v), 1e4))
		}
		cst.ResetForCompress(blk)
		cc.RunAll(cst)
		dst.ResetForDecompress(cst.Encoded)
		dc.RunAll(dst)
		for i := range blk {
			if cst.Verbatim {
				if dst.Raw[i] != blk[i] {
					return false
				}
				continue
			}
			if math.Abs(float64(dst.Raw[i])-float64(blk[i])) > 1e-2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestChainStageNames(t *testing.T) {
	cc, _ := NewCompressChain(Config{BlockLen: 32, Eps: 1e-3, EstWidth: 2})
	want := []string{"Mul", "Add", "Lorenzo", "Sign", "Max", "GetLength", "Shuffle[0]", "Shuffle[1]", "Emit"}
	got := cc.StageNames()
	if len(got) != len(want) {
		t.Fatalf("stage names %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stage %d = %s, want %s", i, got[i], want[i])
		}
	}
	dc, _ := NewDecompressChain(Config{BlockLen: 32, Eps: 1e-3, EstWidth: 2})
	wantD := []string{"Header", "Unshuffle[0]", "Unshuffle[1]", "MergeSigns", "PrefixSum", "DeqMul"}
	gotD := dc.StageNames()
	if len(gotD) != len(wantD) {
		t.Fatalf("decompress stage names %v, want %v", gotD, wantD)
	}
	for i := range wantD {
		if gotD[i] != wantD[i] {
			t.Fatalf("decompress stage %d = %s, want %s", i, gotD[i], wantD[i])
		}
	}
}

// Ensure quant package linkage stays honest: the chain and a raw Quantizer
// agree on codes for a representative block.
func TestChainQuantAgreement(t *testing.T) {
	q, _ := quant.NewQuantizer(1e-3)
	blk := smoothField(32, 5)
	want := make([]int32, 32)
	q.Quantize(want, blk)

	cc, _ := NewCompressChain(Config{BlockLen: 32, Eps: 1e-3, EstWidth: 4})
	st := NewBlockState(32)
	st.ResetForCompress(blk)
	// Run only Mul and Add.
	cc.Stages[0].Run(st)
	cc.Stages[1].Run(st)
	for i := range want {
		if st.Codes[i] != want[i] {
			t.Fatalf("code %d: chain %d != quant %d", i, st.Codes[i], want[i])
		}
	}
}

// TestCostsMonotoneInWidth: the per-block cost must grow with the fixed
// length (Bit-shuffle work is per effective bit) and never be negative.
func TestCostsMonotoneInWidth(t *testing.T) {
	for _, mk := range []func(stages Config) (*Chain, error){NewCompressChain, NewDecompressChain} {
		chain, err := mk(Config{BlockLen: 32, Eps: 1e-3, EstWidth: 8})
		if err != nil {
			t.Fatal(err)
		}
		var prev int64 = -1
		for w := uint(0); w <= 32; w++ {
			var total int64
			for _, c := range chain.EstimateCycles(w) {
				if c < 0 {
					t.Fatalf("%s width %d: negative stage cost", chain.Dir, w)
				}
				total += c
			}
			if total < prev {
				t.Fatalf("%s: total cost fell from %d to %d at width %d", chain.Dir, prev, total, w)
			}
			prev = total
		}
	}
}

// TestDecompressionCheaperAtSameWidth pins the calibration target behind
// the paper's "fewer computations in decompression" (§3): at any fixed
// length the decompression chain costs less than the compression chain.
func TestDecompressionCheaperAtSameWidth(t *testing.T) {
	cc, _ := NewCompressChain(Config{BlockLen: 32, Eps: 1e-3, EstWidth: 8})
	dc, _ := NewDecompressChain(Config{BlockLen: 32, Eps: 1e-3, EstWidth: 8})
	sum := func(cs []int64) int64 {
		var s int64
		for _, c := range cs {
			s += c
		}
		return s
	}
	for w := uint(1); w <= 32; w++ {
		comp := sum(cc.EstimateCycles(w))
		dec := sum(dc.EstimateCycles(w))
		if dec >= comp {
			t.Fatalf("width %d: decompression %d not below compression %d", w, dec, comp)
		}
	}
}

// TestCostsScaleWithBlockLength: costs are per-block and linear in L.
func TestCostsScaleWithBlockLength(t *testing.T) {
	c32, _ := NewCompressChain(Config{BlockLen: 32, Eps: 1e-3, EstWidth: 4})
	c64, _ := NewCompressChain(Config{BlockLen: 64, Eps: 1e-3, EstWidth: 4})
	s32 := c32.EstimateCycles(4)
	s64 := c64.EstimateCycles(4)
	var t32, t64 int64
	for i := range s32 {
		t32 += s32[i]
		t64 += s64[i]
	}
	ratio := float64(t64) / float64(t32)
	if ratio < 1.95 || ratio > 2.05 {
		t.Fatalf("doubling L scaled cost by %.3f, want ≈2", ratio)
	}
}
