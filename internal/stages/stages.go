// Package stages decomposes the CereSZ compression and decompression
// algorithms into the fine-grained sub-stages that the WSE mapping schedules
// onto processing elements (paper §4.2):
//
//	compression:    Mul → Add → Lorenzo → Sign → Max → GetLength →
//	                Shuffle[0] … Shuffle[k] → Emit
//	decompression:  Header → Unshuffle[0] … Unshuffle[k] → MergeSigns →
//	                PrefixSum → DeqMul
//
// Each sub-stage carries two things: a functional kernel that transforms a
// BlockState (the data really flowing through the simulated pipeline, so
// that the pipeline's output bytes are bit-identical to internal/core's),
// and a cycle-cost function drawn from a CostModel calibrated against the
// paper's profiles (Tables 1–3). The per-bit Shuffle/Unshuffle sub-stages
// are the divisible units that make balanced distribution possible; Lorenzo
// and the prefix sum are indivisible (paper §4.2).
package stages

import (
	"encoding/binary"
	"fmt"
	"math"

	"ceresz/internal/flenc"
	"ceresz/internal/lorenzo"
	"ceresz/internal/quant"
)

// Direction distinguishes compression from decompression chains.
type Direction int

const (
	// Compress marks a compression chain.
	Compress Direction = iota
	// Decompress marks a decompression chain.
	Decompress
)

func (d Direction) String() string {
	if d == Compress {
		return "compress"
	}
	return "decompress"
}

// CostModel holds per-block cycle costs for a 32-element block; costs scale
// linearly with block length. The defaults are calibrated to the paper's
// measured profiles on the CS-2 (Tables 1–3): quantization splits into a
// multiplication (~83% of its time) and a rounding addition; Sign, Max and
// GetLength are constant; Bit-shuffle costs a uniform ~1976 cycles per
// effective bit (33609/17 ≈ 25675/13 ≈ 23694/12).
type CostModel struct {
	Mul           float64 // quantization multiply (Table 2)
	Add           float64 // quantization round  (Table 2)
	Lorenzo       float64 // first-order difference (Table 1)
	Sign          float64 // sign split (Table 3)
	Max           float64 // max of absolute values (Table 3)
	GetLength     float64 // effective-bit count (Table 3)
	ShufflePerBit float64 // one bit plane of Bit-shuffle (Table 3)
	Emit          float64 // assembling the output block message

	Header          float64 // parsing a block header + signs
	UnshufflePerBit float64 // one bit plane of reverse Bit-shuffle
	MergeSigns      float64 // reapplying signs
	PrefixSum       float64 // reverse Lorenzo (indivisible, paper §4.2)
	DeqMul          float64 // reverse quantization multiply (indivisible)
}

// DefaultCosts returns the CS-2-calibrated cost model.
//
// The reverse Bit-shuffle constant is set moderately below the forward
// one: the decompression direction writes whole bytes sequentially instead
// of scattering single bits, and the calibration reproduces the paper's
// observed decompression/compression throughput ratio (581.31/457.35 ≈
// 1.27, §5.2) at the system level together with the relay overhead.
func DefaultCosts() CostModel {
	return CostModel{
		Mul:           5078,
		Add:           1038,
		Lorenzo:       975,
		Sign:          1044,
		Max:           1037,
		GetLength:     1386,
		ShufflePerBit: 1976,
		Emit:          96,

		Header:          96,
		UnshufflePerBit: 1680,
		MergeSigns:      1044,
		PrefixSum:       975,
		DeqMul:          5078,
	}
}

// scale adjusts a 32-element cost to block length L.
func scale(c float64, L int) int64 {
	return int64(math.Round(c * float64(L) / 32))
}

// Config describes one (de)compression chain instance.
type Config struct {
	// BlockLen is the block size L (multiple of 8).
	BlockLen int
	// HeaderBytes is flenc.HeaderU32 or flenc.HeaderU8.
	HeaderBytes int
	// Eps is the resolved absolute error bound.
	Eps float64
	// EstWidth is the estimated fixed length used to decide how many
	// explicit per-bit Shuffle/Unshuffle sub-stages the chain exposes
	// (paper §4.2: 5% of the data is sampled to approximate it). Blocks
	// whose true width exceeds the estimate fold the surplus planes into
	// the final shuffle sub-stage. Must be ≥ 1.
	EstWidth int
	// Costs is the cycle-cost model; zero value selects DefaultCosts.
	Costs CostModel
}

func (c Config) withDefaults() Config {
	if c.BlockLen == 0 {
		c.BlockLen = 32
	}
	if c.HeaderBytes == 0 {
		c.HeaderBytes = flenc.HeaderU32
	}
	if c.EstWidth <= 0 {
		c.EstWidth = 1
	}
	if c.Costs == (CostModel{}) {
		c.Costs = DefaultCosts()
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.BlockLen <= 0 || c.BlockLen%8 != 0 {
		return fmt.Errorf("stages: block length %d must be a positive multiple of 8", c.BlockLen)
	}
	if c.HeaderBytes != flenc.HeaderU32 && c.HeaderBytes != flenc.HeaderU8 {
		return fmt.Errorf("stages: unsupported header size %d", c.HeaderBytes)
	}
	if !(c.Eps > 0) {
		return fmt.Errorf("stages: non-positive ε %g", c.Eps)
	}
	if c.EstWidth < 1 || c.EstWidth > flenc.MaxWidth {
		return fmt.Errorf("stages: estimated width %d out of range [1,%d]", c.EstWidth, flenc.MaxWidth)
	}
	return nil
}

// BlockState is the unit of data flowing through a pipeline: one block in
// whatever representation the preceding sub-stages have produced. The
// simulated fabric transfers its Wavelets() between PEs; the kernels
// transform it in place.
type BlockState struct {
	// Raw holds the input floats during compression (padded to L) and the
	// reconstructed floats at the end of decompression.
	Raw []float32
	// Scaled holds e_i/(2ε) between Mul and Add.
	Scaled []float64
	// Codes holds quantization codes / Lorenzo residuals.
	Codes []int32
	// Abs, SignBits, MaxAbs, Width, Planes hold fixed-length-encoder state.
	Abs      []uint32
	SignBits []byte
	MaxAbs   uint32
	Width    uint
	Planes   []byte
	// Encoded holds the block's wire bytes (output of compression, input
	// of decompression).
	Encoded []byte
	// Verbatim marks a block stored raw.
	Verbatim bool

	phase phase
}

// phase tracks which representation is live, for Wavelets accounting.
type phase int

const (
	phaseRaw phase = iota
	phaseScaled
	phaseCodes
	phaseAbs
	phasePlanes
	phaseEncoded
)

// NewBlockState allocates the scratch for a block of length L.
func NewBlockState(L int) *BlockState {
	return &BlockState{
		Raw:      make([]float32, L),
		Scaled:   make([]float64, L),
		Codes:    make([]int32, L),
		Abs:      make([]uint32, L),
		SignBits: make([]byte, L/8),
		Planes:   make([]byte, flenc.MaxWidth*L/8),
	}
}

// ResetForCompress loads a raw block (≤ L elements; zero-padded) into the
// state for a fresh compression pass.
func (st *BlockState) ResetForCompress(block []float32) {
	copy(st.Raw, block)
	for i := len(block); i < len(st.Raw); i++ {
		st.Raw[i] = 0
	}
	st.Verbatim = false
	st.MaxAbs = 0
	st.Width = 0
	st.Encoded = st.Encoded[:0]
	st.phase = phaseRaw
}

// ResetForDecompress loads an encoded block into the state.
func (st *BlockState) ResetForDecompress(encoded []byte) {
	st.Encoded = append(st.Encoded[:0], encoded...)
	st.Verbatim = false
	st.MaxAbs = 0
	st.Width = 0
	st.phase = phaseEncoded
}

// Wavelets returns the size of the state's live representation in 32-bit
// fabric words — the amount of data a PE must forward to its neighbor when
// handing the block off. The scaled representation counts as one word per
// element (the CS-2 pipeline keeps it in f32).
func (st *BlockState) Wavelets() int {
	L := len(st.Raw)
	switch st.phase {
	case phaseRaw, phaseScaled, phaseCodes:
		return L
	case phaseAbs:
		// abs values + packed signs (rounded up to whole words)
		return L + (L/8+3)/4
	case phasePlanes:
		if st.Verbatim {
			return L
		}
		// planes so far + signs + width word
		return (len(st.Planes)+3)/4 + (L/8+3)/4 + 1
	case phaseEncoded:
		return (len(st.Encoded) + 3) / 4
	default:
		return L
	}
}

// Stage is one schedulable sub-stage.
type Stage struct {
	// Name identifies the sub-stage (e.g. "Mul", "Shuffle[3]").
	Name string
	// Cycles returns the cost of running this sub-stage on st.
	Cycles func(st *BlockState) int64
	// Run applies the sub-stage's computation to st.
	Run func(st *BlockState)
	// Divisible reports whether the stage may be split further; only the
	// aggregate Shuffle/Unshuffle stages are (they are pre-split here, so
	// all emitted stages report false, matching Alg. 1's input granularity).
	Divisible bool
}

// Chain is an ordered list of sub-stages plus its configuration.
type Chain struct {
	Dir    Direction
	Cfg    Config
	Stages []Stage

	q *quant.Quantizer
}

// NewCompressChain builds the compression sub-stage chain for cfg.
func NewCompressChain(cfg Config) (*Chain, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	q, err := quant.NewQuantizer(cfg.Eps)
	if err != nil {
		return nil, err
	}
	c := &Chain{Dir: Compress, Cfg: cfg, q: q}
	L := cfg.BlockLen
	cm := cfg.Costs

	c.Stages = append(c.Stages,
		Stage{
			Name:   "Mul",
			Cycles: constCost(scale(cm.Mul, L)),
			Run: func(st *BlockState) {
				q.MulF32(st.Scaled, st.Raw)
				st.phase = phaseScaled
			},
		},
		Stage{
			Name:   "Add",
			Cycles: constCost(scale(cm.Add, L)),
			Run: func(st *BlockState) {
				if !quant.Round(st.Codes, st.Scaled) {
					st.Verbatim = true
					st.phase = phaseRaw
					return
				}
				// Strict float32 bound check (see internal/core).
				for i, p := range st.Codes {
					rec := float32(float64(p) * q.TwoEps())
					if !(math.Abs(float64(rec)-float64(st.Raw[i])) <= q.Eps()) {
						st.Verbatim = true
						st.phase = phaseRaw
						return
					}
				}
				st.phase = phaseCodes
			},
		},
		Stage{
			Name:   "Lorenzo",
			Cycles: skipVerbatim(constCost(scale(cm.Lorenzo, L))),
			Run: func(st *BlockState) {
				if st.Verbatim {
					return
				}
				lorenzo.Forward(st.Codes, st.Codes)
			},
		},
		Stage{
			Name:   "Sign",
			Cycles: skipVerbatim(constCost(scale(cm.Sign, L))),
			Run: func(st *BlockState) {
				if st.Verbatim {
					return
				}
				flenc.SplitSigns(st.Abs, st.SignBits, st.Codes)
				st.phase = phaseAbs
			},
		},
		Stage{
			Name:   "Max",
			Cycles: skipVerbatim(constCost(scale(cm.Max, L))),
			Run: func(st *BlockState) {
				if st.Verbatim {
					return
				}
				st.MaxAbs = flenc.MaxAbs(st.Abs)
			},
		},
		Stage{
			Name:   "GetLength",
			Cycles: skipVerbatim(constCost(scale(cm.GetLength, L))),
			Run: func(st *BlockState) {
				if st.Verbatim {
					return
				}
				st.Width = flenc.Width(st.MaxAbs)
				st.Planes = st.Planes[:0]
				st.phase = phasePlanes
			},
		},
	)

	pb := flenc.PlaneBytes(L)
	perBit := scale(cm.ShufflePerBit, L)
	for k := 0; k < cfg.EstWidth; k++ {
		k := k
		last := k == cfg.EstWidth-1
		c.Stages = append(c.Stages, Stage{
			Name: fmt.Sprintf("Shuffle[%d]", k),
			Cycles: func(st *BlockState) int64 {
				if st.Verbatim || uint(k) >= st.Width {
					return 0
				}
				n := int64(1)
				if last && st.Width > uint(cfg.EstWidth) {
					n += int64(st.Width) - int64(cfg.EstWidth)
				}
				return n * perBit
			},
			Run: func(st *BlockState) {
				if st.Verbatim || uint(k) >= st.Width {
					return
				}
				hi := k + 1
				if last && st.Width > uint(cfg.EstWidth) {
					hi = int(st.Width)
				}
				for p := k; p < hi; p++ {
					st.Planes = append(st.Planes, make([]byte, pb)...)
					flenc.ShufflePlane(st.Planes[p*pb:(p+1)*pb], st.Abs, uint(p))
				}
			},
		})
	}

	c.Stages = append(c.Stages, Stage{
		Name:   "Emit",
		Cycles: constCost(scale(cm.Emit, L)),
		Run: func(st *BlockState) {
			st.Encoded = st.Encoded[:0]
			if st.Verbatim {
				st.Encoded = appendVerbatimHeader(st.Encoded, cfg.HeaderBytes)
				var b [4]byte
				for _, v := range st.Raw {
					binary.LittleEndian.PutUint32(b[:], math.Float32bits(v))
					st.Encoded = append(st.Encoded, b[:]...)
				}
				st.phase = phaseEncoded
				return
			}
			if st.Width == 0 {
				st.Encoded = appendWidthHeader(st.Encoded, cfg.HeaderBytes, 0)
				st.phase = phaseEncoded
				return
			}
			st.Encoded = appendWidthHeader(st.Encoded, cfg.HeaderBytes, st.Width)
			st.Encoded = append(st.Encoded, st.SignBits...)
			st.Encoded = append(st.Encoded, st.Planes...)
			st.phase = phaseEncoded
		},
	})

	return c, nil
}

// NewDecompressChain builds the decompression sub-stage chain for cfg.
func NewDecompressChain(cfg Config) (*Chain, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	q, err := quant.NewQuantizer(cfg.Eps)
	if err != nil {
		return nil, err
	}
	c := &Chain{Dir: Decompress, Cfg: cfg, q: q}
	L := cfg.BlockLen
	cm := cfg.Costs
	pb := flenc.PlaneBytes(L)

	c.Stages = append(c.Stages, Stage{
		Name:   "Header",
		Cycles: constCost(scale(cm.Header, L)),
		Run: func(st *BlockState) {
			v, n, err := flenc.Header(st.Encoded, cfg.HeaderBytes)
			if err != nil {
				panic(fmt.Sprintf("stages: %v", err)) // pipeline feeds whole blocks
			}
			switch {
			case v == flenc.VerbatimU32:
				st.Verbatim = true
				for i := range st.Raw {
					bits := binary.LittleEndian.Uint32(st.Encoded[n+4*i:])
					st.Raw[i] = math.Float32frombits(bits)
				}
				st.phase = phaseRaw
			case v == flenc.ZeroMarker:
				st.Width = 0
				for i := range st.Abs {
					st.Abs[i] = 0
				}
				for i := range st.SignBits {
					st.SignBits[i] = 0
				}
				st.phase = phaseAbs
			default:
				st.Width = uint(v)
				copy(st.SignBits, st.Encoded[n:n+pb])
				st.Planes = st.Planes[:int(st.Width)*pb]
				copy(st.Planes, st.Encoded[n+pb:])
				for i := range st.Abs {
					st.Abs[i] = 0
				}
				st.phase = phasePlanes
			}
		},
	})

	perBit := scale(cm.UnshufflePerBit, L)
	for k := 0; k < cfg.EstWidth; k++ {
		k := k
		last := k == cfg.EstWidth-1
		c.Stages = append(c.Stages, Stage{
			Name: fmt.Sprintf("Unshuffle[%d]", k),
			Cycles: func(st *BlockState) int64 {
				if st.Verbatim || uint(k) >= st.Width {
					return 0
				}
				n := int64(1)
				if last && st.Width > uint(cfg.EstWidth) {
					n += int64(st.Width) - int64(cfg.EstWidth)
				}
				return n * perBit
			},
			Run: func(st *BlockState) {
				if st.Verbatim || uint(k) >= st.Width {
					return
				}
				hi := k + 1
				if last && st.Width > uint(cfg.EstWidth) {
					hi = int(st.Width)
				}
				for p := k; p < hi; p++ {
					flenc.UnshufflePlane(st.Abs, st.Planes[p*pb:(p+1)*pb], uint(p))
				}
			},
		})
	}

	c.Stages = append(c.Stages,
		Stage{
			Name:   "MergeSigns",
			Cycles: skipVerbatim(constCost(scale(cm.MergeSigns, L))),
			Run: func(st *BlockState) {
				if st.Verbatim {
					return
				}
				flenc.MergeSigns(st.Codes, st.Abs, st.SignBits)
				st.phase = phaseCodes
			},
		},
		Stage{
			Name:   "PrefixSum",
			Cycles: skipVerbatim(constCost(scale(cm.PrefixSum, L))),
			Run: func(st *BlockState) {
				if st.Verbatim {
					return
				}
				lorenzo.Inverse(st.Codes, st.Codes)
			},
		},
		Stage{
			Name:   "DeqMul",
			Cycles: skipVerbatim(constCost(scale(cm.DeqMul, L))),
			Run: func(st *BlockState) {
				if st.Verbatim {
					return
				}
				q.Dequantize(st.Raw, st.Codes)
				st.phase = phaseRaw
			},
		},
	)

	return c, nil
}

// RunAll applies every sub-stage in order — the sequential reference
// execution of the chain. It returns the total modeled cycles.
func (c *Chain) RunAll(st *BlockState) int64 {
	var total int64
	for i := range c.Stages {
		total += c.Stages[i].Cycles(st)
		c.Stages[i].Run(st)
	}
	return total
}

// TotalCycles sums the cost of all sub-stages for a block in state st
// without running them. It is only meaningful on a fresh state (costs that
// depend on Width use the state's current Width, which for compression is
// unknown until GetLength runs — use EstimateCycles for planning).
func (c *Chain) TotalCycles(st *BlockState) int64 {
	var total int64
	for i := range c.Stages {
		total += c.Stages[i].Cycles(st)
	}
	return total
}

// StageNames returns the names of the chain's sub-stages in order.
func (c *Chain) StageNames() []string {
	names := make([]string, len(c.Stages))
	for i := range c.Stages {
		names[i] = c.Stages[i].Name
	}
	return names
}

// EstimateCycles returns the planning-time cost of each sub-stage assuming
// every block has fixed length width (paper §4.2: the width is approximated
// by sampling 5% of the data). These estimates feed Alg. 1.
func (c *Chain) EstimateCycles(width uint) []int64 {
	st := NewBlockState(c.Cfg.BlockLen)
	st.Width = width
	st.phase = phasePlanes
	out := make([]int64, len(c.Stages))
	for i := range c.Stages {
		out[i] = c.Stages[i].Cycles(st)
	}
	return out
}

// EstimateWidth samples every strideth block of data and returns the
// maximum observed fixed length (≥ 1), the paper's planning statistic.
func EstimateWidth(data []float32, eps float64, L, stride int) (uint, error) {
	if stride < 1 {
		stride = 1
	}
	chain, err := NewCompressChain(Config{BlockLen: L, Eps: eps})
	if err != nil {
		return 0, err
	}
	st := NewBlockState(L)
	var w uint = 1
	nBlocks := (len(data) + L - 1) / L
	for b := 0; b < nBlocks; b += stride {
		lo := b * L
		hi := lo + L
		if hi > len(data) {
			hi = len(data)
		}
		st.ResetForCompress(data[lo:hi])
		chain.RunAll(st)
		if !st.Verbatim && st.Width > w {
			w = st.Width
		}
	}
	return w, nil
}

func constCost(c int64) func(*BlockState) int64 {
	return func(*BlockState) int64 { return c }
}

func skipVerbatim(f func(*BlockState) int64) func(*BlockState) int64 {
	return func(st *BlockState) int64 {
		if st.Verbatim {
			return 0
		}
		return f(st)
	}
}

func appendWidthHeader(dst []byte, headerBytes int, w uint) []byte {
	switch headerBytes {
	case flenc.HeaderU32:
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], uint32(w))
		return append(dst, b[:]...)
	case flenc.HeaderU8:
		return append(dst, byte(w))
	default:
		panic(fmt.Sprintf("stages: unsupported header size %d", headerBytes))
	}
}

func appendVerbatimHeader(dst []byte, headerBytes int) []byte {
	switch headerBytes {
	case flenc.HeaderU32:
		return append(dst, 0xFF, 0xFF, 0xFF, 0xFF)
	case flenc.HeaderU8:
		return append(dst, flenc.VerbatimU8)
	default:
		panic(fmt.Sprintf("stages: unsupported header size %d", headerBytes))
	}
}
