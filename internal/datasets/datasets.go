// Package datasets synthesizes deterministic stand-ins for the six
// SDRBench datasets the paper evaluates (Table 4). The real archives are
// multi-gigabyte downloads; every CereSZ result depends on the data only
// through (a) the per-block fixed-length distribution of the quantized
// Lorenzo residuals — which sets the Bit-shuffle cycle cost and the
// compressed block size — and (b) the zero-block fraction. The generators
// below reproduce those statistics per domain:
//
//	CESM-ATM   2D climate fields: smooth large-scale structure + grid noise,
//	           79 fields of widely varying roughness (ratio range 2.7–21.6).
//	Hurricane  3D weather fields: smooth vortical structure, moderate noise.
//	QMCPack    3D orbital densities: oscillatory, relatively noisy (narrow
//	           ratio range ~9.6–19.7 at REL 1e-2).
//	NYX        3D cosmology: a mix of extremely smooth (temperature-like)
//	           and turbulent (velocity-like) fields (ratios up to ~32).
//	RTM        3D seismic wavefields: a localized wavefront in a quiet
//	           volume — many zero blocks (ratio cap hit: 31.99).
//	HACC       1D particle data: positions are per-particle smooth, the
//	           layout is unordered — low smoothness, small ratios (4.7–9.2).
//
// All generators are seeded and reproducible; sizes default to scaled-down
// grids (the full Table 4 dims are available via Full()).
package datasets

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"ceresz/internal/lorenzo"
)

// Field is one named variable of a dataset.
type Field struct {
	// Name identifies the field (e.g. "temperature").
	Name string
	// Dims is the field's grid (row-major, Nx fastest).
	Dims lorenzo.Dims
	// gen fills the field's data deterministically.
	gen func(rng *rand.Rand, d lorenzo.Dims) []float32
}

// Data generates the field's values with the given seed.
func (f *Field) Data(seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed ^ hashName(f.Name)))
	return f.gen(rng, f.Dims)
}

// Elements returns the number of values in the field.
func (f *Field) Elements() int { return f.Dims.Len() }

// Dataset is a named collection of fields from one scientific domain.
type Dataset struct {
	// Name matches the paper's Table 4 (e.g. "CESM-ATM").
	Name string
	// Domain is the science domain label from Table 4.
	Domain string
	// Fields are the dataset's variables.
	Fields []Field
}

// Elements returns the total element count across fields.
func (d *Dataset) Elements() int {
	n := 0
	for i := range d.Fields {
		n += d.Fields[i].Elements()
	}
	return n
}

// Bytes returns the uncompressed size in bytes (float32).
func (d *Dataset) Bytes() int64 { return int64(4 * d.Elements()) }

// Scale controls generated grid sizes.
type Scale int

const (
	// Small is the default test/bench scale (fields of ~10⁴–10⁵ elements).
	Small Scale = iota
	// Medium is the harness scale used for figure regeneration
	// (~10⁵–10⁶ elements per field).
	Medium
	// Full is Table 4's real dimensionality. Heavy: NYX alone is 3 GiB.
	Full
)

func (s Scale) String() string {
	switch s {
	case Small:
		return "small"
	case Medium:
		return "medium"
	case Full:
		return "full"
	default:
		return fmt.Sprintf("Scale(%d)", int(s))
	}
}

// Names lists the datasets in the paper's Table 4 order.
func Names() []string {
	return []string{"CESM-ATM", "Hurricane", "QMCPack", "NYX", "RTM", "HACC"}
}

// ByName builds the named dataset at the given scale.
func ByName(name string, s Scale) (*Dataset, error) {
	switch strings.ToUpper(name) {
	case "CESM-ATM", "CESM":
		return cesm(s), nil
	case "HURRICANE":
		return hurricane(s), nil
	case "QMCPACK", "QMC":
		return qmcpack(s), nil
	case "NYX":
		return nyx(s), nil
	case "RTM":
		return rtm(s), nil
	case "HACC":
		return hacc(s), nil
	default:
		return nil, fmt.Errorf("datasets: unknown dataset %q (have %v)", name, Names())
	}
}

// All builds every dataset at the given scale.
func All(s Scale) []*Dataset {
	out := make([]*Dataset, 0, 6)
	for _, n := range Names() {
		d, err := ByName(n, s)
		if err != nil {
			panic(err) // unreachable: Names() and ByName agree
		}
		out = append(out, d)
	}
	return out
}

func hashName(s string) int64 {
	var h int64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= int64(s[i])
		h *= 1099511628211
	}
	return h
}

// --- Generators ---------------------------------------------------------

// smooth2D builds a 2D field as a sum of low-frequency modes plus white
// noise of relative amplitude noise.
func smooth2D(rng *rand.Rand, d lorenzo.Dims, modes int, noise float64) []float32 {
	type mode struct{ kx, ky, ph, amp float64 }
	ms := make([]mode, modes)
	for i := range ms {
		ms[i] = mode{
			kx:  (rng.Float64()*4 + 0.5) * 2 * math.Pi / float64(d.Nx),
			ky:  (rng.Float64()*4 + 0.5) * 2 * math.Pi / float64(d.Ny),
			ph:  rng.Float64() * 2 * math.Pi,
			amp: rng.Float64() + 0.3,
		}
	}
	out := make([]float32, d.Len())
	for y := 0; y < d.Ny; y++ {
		for x := 0; x < d.Nx; x++ {
			v := 0.0
			for _, m := range ms {
				v += m.amp * math.Sin(m.kx*float64(x)+m.ky*float64(y)+m.ph)
			}
			v += noise * rng.NormFloat64()
			out[y*d.Nx+x] = float32(v)
		}
	}
	return out
}

// smooth3D builds a 3D field of low-frequency modes plus noise.
func smooth3D(rng *rand.Rand, d lorenzo.Dims, modes int, noise float64) []float32 {
	type mode struct{ kx, ky, kz, ph, amp float64 }
	ms := make([]mode, modes)
	for i := range ms {
		ms[i] = mode{
			kx:  (rng.Float64()*3 + 0.5) * 2 * math.Pi / float64(d.Nx),
			ky:  (rng.Float64()*3 + 0.5) * 2 * math.Pi / float64(d.Ny),
			kz:  (rng.Float64()*3 + 0.5) * 2 * math.Pi / float64(max(d.Nz, 2)),
			ph:  rng.Float64() * 2 * math.Pi,
			amp: rng.Float64() + 0.3,
		}
	}
	out := make([]float32, d.Len())
	i := 0
	for z := 0; z < d.Nz; z++ {
		for y := 0; y < d.Ny; y++ {
			for x := 0; x < d.Nx; x++ {
				v := 0.0
				for _, m := range ms {
					v += m.amp * math.Sin(m.kx*float64(x)+m.ky*float64(y)+m.kz*float64(z)+m.ph)
				}
				v += noise * rng.NormFloat64()
				out[i] = float32(v)
				i++
			}
		}
	}
	return out
}

// wavefront builds an RTM-like snapshot: an expanding spherical wave packet
// in an otherwise zero volume. Most blocks quantize to all-zero.
func wavefront(rng *rand.Rand, d lorenzo.Dims, radiusFrac float64) []float32 {
	cx := float64(d.Nx) / 2
	cy := float64(d.Ny) / 2
	cz := float64(d.Nz) / 2
	r0 := radiusFrac * float64(min(d.Nx, min(d.Ny, max(d.Nz, 2)))) / 2
	thick := r0/15 + 1
	out := make([]float32, d.Len())
	i := 0
	for z := 0; z < d.Nz; z++ {
		for y := 0; y < d.Ny; y++ {
			for x := 0; x < d.Nx; x++ {
				dx, dy, dz := float64(x)-cx, float64(y)-cy, float64(z)-cz
				r := math.Sqrt(dx*dx + dy*dy + dz*dz)
				u := (r - r0) / thick
				if u > -3 && u < 3 {
					out[i] = float32(math.Exp(-u*u) * math.Cos(3*u) * (1 + 0.02*rng.NormFloat64()))
				}
				i++
			}
		}
	}
	return out
}

// particleWalk builds HACC-like per-particle data: a bounded random walk,
// so neighboring array entries are correlated but jittery.
func particleWalk(rng *rand.Rand, d lorenzo.Dims, step, jitter float64) []float32 {
	out := make([]float32, d.Len())
	v := rng.Float64() * 256
	for i := range out {
		v += step * rng.NormFloat64()
		if v < 0 {
			v = -v
		}
		if v > 256 {
			v = 512 - v
		}
		out[i] = float32(v + jitter*rng.NormFloat64())
	}
	return out
}

// heavyTail3D builds a cosmology-like field v = exp(α·s(x)) for a smooth
// s: a few bright peaks dominate the value range, so under a range-relative
// bound most of the volume quantizes to zero — the regime in which NYX
// fields reach near-cap compression ratios in Table 5.
func heavyTail3D(rng *rand.Rand, d lorenzo.Dims, modes int, alpha, noise float64) []float32 {
	base := smooth3D(rng, d, modes, 0)
	// Normalize the mode sum to roughly [-1, 1].
	var m float32
	for _, v := range base {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	if m == 0 {
		m = 1
	}
	out := make([]float32, len(base))
	for i, v := range base {
		e := math.Exp(alpha * float64(v/m))
		out[i] = float32(e * (1 + noise*rng.NormFloat64()))
	}
	return out
}

// sparse2D builds a precipitation-like field: a smooth field thresholded so
// only its crests survive; the background is exactly zero.
func sparse2D(rng *rand.Rand, d lorenzo.Dims, modes int, threshold, noise float64) []float32 {
	base := smooth2D(rng, d, modes, 0)
	out := make([]float32, len(base))
	for i, v := range base {
		u := float64(v) - threshold
		if u > 0 {
			out[i] = float32(u * u * (1 + noise*rng.NormFloat64()))
		}
	}
	return out
}

// sparse3D is sparse2D's 3D counterpart (cloud/rain mixing ratios).
func sparse3D(rng *rand.Rand, d lorenzo.Dims, modes int, threshold, noise float64) []float32 {
	base := smooth3D(rng, d, modes, 0)
	out := make([]float32, len(base))
	for i, v := range base {
		u := float64(v) - threshold
		if u > 0 {
			out[i] = float32(u * u * (1 + noise*rng.NormFloat64()))
		}
	}
	return out
}

// blobs3D builds a field of compact positive Gaussian blobs (rain cells,
// cloud water) over an exactly-zero background; the blobs are localized in
// all three dimensions, so most 32-element runs are entirely zero.
func blobs3D(rng *rand.Rand, d lorenzo.Dims, centers int, sigmaFrac, noise float64) []float32 {
	type blob struct{ cx, cy, cz, sigma, amp float64 }
	bs := make([]blob, centers)
	for i := range bs {
		bs[i] = blob{
			cx:    rng.Float64() * float64(d.Nx),
			cy:    rng.Float64() * float64(d.Ny),
			cz:    rng.Float64() * float64(max(d.Nz, 1)),
			sigma: (0.5 + rng.Float64()) * sigmaFrac * float64(d.Nx),
			amp:   0.5 + rng.Float64(),
		}
	}
	out := make([]float32, d.Len())
	i := 0
	for z := 0; z < d.Nz; z++ {
		for y := 0; y < d.Ny; y++ {
			for x := 0; x < d.Nx; x++ {
				v := 0.0
				for _, b := range bs {
					dx, dy, dz := float64(x)-b.cx, float64(y)-b.cy, float64(z)-b.cz
					r2 := (dx*dx + dy*dy + dz*dz) / (2 * b.sigma * b.sigma)
					if r2 < 6 {
						v += b.amp * math.Exp(-r2)
					}
				}
				if v != 0 {
					v *= 1 + noise*rng.NormFloat64()
				}
				out[i] = float32(v)
				i++
			}
		}
	}
	return out
}

// orbital3D builds a QMCPack-like orbital density: a handful of localized
// oscillatory blobs (Gaussian envelope × plane wave) over a near-zero
// background.
func orbital3D(rng *rand.Rand, d lorenzo.Dims, centers int, noise float64) []float32 {
	type blob struct{ cx, cy, cz, sigma, k, amp float64 }
	bs := make([]blob, centers)
	for i := range bs {
		bs[i] = blob{
			cx:    rng.Float64() * float64(d.Nx),
			cy:    rng.Float64() * float64(d.Ny),
			cz:    rng.Float64() * float64(max(d.Nz, 1)),
			sigma: (0.035 + 0.04*rng.Float64()) * float64(d.Nx),
			k:     0.5 + rng.Float64(),
			amp:   0.5 + rng.Float64(),
		}
	}
	out := make([]float32, d.Len())
	i := 0
	for z := 0; z < d.Nz; z++ {
		for y := 0; y < d.Ny; y++ {
			for x := 0; x < d.Nx; x++ {
				v := 0.0
				for _, b := range bs {
					dx, dy, dz := float64(x)-b.cx, float64(y)-b.cy, float64(z)-b.cz
					r2 := (dx*dx + dy*dy + dz*dz) / (2 * b.sigma * b.sigma)
					if r2 < 12 {
						v += b.amp * math.Exp(-r2) * math.Cos(b.k*math.Sqrt(r2*2*b.sigma*b.sigma))
					}
				}
				if v != 0 {
					v *= 1 + noise*rng.NormFloat64()
				}
				out[i] = float32(v)
				i++
			}
		}
	}
	return out
}

// --- Dataset definitions -------------------------------------------------

func dims2At(s Scale, fx, fy int) lorenzo.Dims {
	switch s {
	case Full:
		return lorenzo.Dims2(fx, fy)
	case Medium:
		return lorenzo.Dims2(max(fx/4, 16), max(fy/4, 16))
	default:
		return lorenzo.Dims2(max(fx/16, 16), max(fy/16, 16))
	}
}

func dims3At(s Scale, fx, fy, fz int) lorenzo.Dims {
	switch s {
	case Full:
		return lorenzo.Dims3(fx, fy, fz)
	case Medium:
		return lorenzo.Dims3(max(fx/4, 8), max(fy/4, 8), max(fz/4, 8))
	default:
		return lorenzo.Dims3(max(fx/12, 8), max(fy/12, 8), max(fz/12, 8))
	}
}

func cesm(s Scale) *Dataset {
	// Table 4: 79 fields of 1800×3600. We generate a representative subset
	// per scale with noise levels spanning the observed ratio range.
	nFields := map[Scale]int{Small: 8, Medium: 16, Full: 79}[s]
	d := &Dataset{Name: "CESM-ATM", Domain: "Climate Simulation"}
	for i := 0; i < nFields; i++ {
		i := i
		f := Field{Name: fmt.Sprintf("FLD%02d", i), Dims: dims2At(s, 3600, 1800)}
		switch {
		case i%4 == 0:
			// Precipitation-like sparse fields drive the high end of the
			// ratio range (Table 5: up to 21.6 at REL 1e-2).
			f.gen = func(rng *rand.Rand, dm lorenzo.Dims) []float32 {
				return sparse2D(rng, dm, 6, 1.5, 0.05)
			}
		default:
			noise := 0.001 * math.Pow(150, float64(i)/float64(max(nFields-1, 1))) // 1e-3 … 0.15
			f.gen = func(rng *rand.Rand, dm lorenzo.Dims) []float32 {
				return smooth2D(rng, dm, 6+i%5, noise)
			}
		}
		d.Fields = append(d.Fields, f)
	}
	return d
}

func hurricane(s Scale) *Dataset {
	names := []string{"U", "QV", "P", "QR", "TC", "V", "QC", "W", "QI", "QS", "QG", "CLOUD", "PRECIP"}
	nFields := map[Scale]int{Small: 5, Medium: 13, Full: 13}[s]
	d := &Dataset{Name: "Hurricane", Domain: "Weather Simulation"}
	for i := 0; i < nFields; i++ {
		name := names[i%len(names)]
		f := Field{Name: name, Dims: dims3At(s, 500, 500, 100)}
		if len(name) > 0 && name[0] == 'Q' {
			// Mixing ratios (QV, QC, QR, …) are physically sparse.
			f.gen = func(rng *rand.Rand, dm lorenzo.Dims) []float32 {
				return blobs3D(rng, dm, 4, 0.04, 0.03)
			}
		} else {
			noise := 0.002 + 0.012*float64(i)/float64(max(nFields-1, 1))
			f.gen = func(rng *rand.Rand, dm lorenzo.Dims) []float32 {
				return smooth3D(rng, dm, 8, noise)
			}
		}
		d.Fields = append(d.Fields, f)
	}
	return d
}

func qmcpack(s Scale) *Dataset {
	d := &Dataset{Name: "QMCPack", Domain: "Quantum Monte Carlo"}
	for i, name := range []string{"einspline", "orbital"} {
		noise := 0.01 + 0.01*float64(i)
		d.Fields = append(d.Fields, Field{
			Name: name,
			Dims: dims3At(s, 69, 69, 288), // full: 33120×69×69 flattened as slabs
			gen: func(rng *rand.Rand, dm lorenzo.Dims) []float32 {
				return orbital3D(rng, dm, 4, noise)
			},
		})
	}
	if s == Full {
		for i := range d.Fields {
			d.Fields[i].Dims = lorenzo.Dims3(69, 69, 33120)
		}
	}
	return d
}

func nyx(s Scale) *Dataset {
	d := &Dataset{Name: "NYX", Domain: "Cosmic Simulation"}
	heavy := []struct {
		name  string
		alpha float64
	}{
		// Shock-heated gas and collapsed halos dominate the range; the
		// voids quantize to zero — the near-cap regime of Table 5.
		{"temperature", 15},
		{"dark_matter_density", 20},
		{"baryon_density", 17},
	}
	for _, sp := range heavy {
		sp := sp
		d.Fields = append(d.Fields, Field{
			Name: sp.name,
			Dims: dims3At(s, 512, 512, 512),
			gen: func(rng *rand.Rand, dm lorenzo.Dims) []float32 {
				return heavyTail3D(rng, dm, 8, sp.alpha, 0.002)
			},
		})
	}
	for _, name := range []string{"velocity_x", "velocity_y", "velocity_z"} {
		d.Fields = append(d.Fields, Field{
			Name: name,
			Dims: dims3At(s, 512, 512, 512),
			gen: func(rng *rand.Rand, dm lorenzo.Dims) []float32 {
				// Velocities concentrate near zero with fast halo tails:
				// cube a smooth field so most of the volume sits within a
				// few percent of the range.
				base := smooth3D(rng, dm, 6, 0)
				var m float32
				for _, v := range base {
					if v < 0 {
						v = -v
					}
					if v > m {
						m = v
					}
				}
				if m == 0 {
					m = 1
				}
				out := make([]float32, len(base))
				for i, v := range base {
					t := float64(v / m)
					out[i] = float32(1e7 * t * t * t * (1 + 0.01*rng.NormFloat64()))
				}
				return out
			},
		})
	}
	return d
}

func rtm(s Scale) *Dataset {
	nFields := map[Scale]int{Small: 4, Medium: 8, Full: 36}[s]
	d := &Dataset{Name: "RTM", Domain: "Seismic Imaging"}
	for i := 0; i < nFields; i++ {
		frac := 0.15 + 0.45*float64(i)/float64(max(nFields-1, 1))
		d.Fields = append(d.Fields, Field{
			Name: fmt.Sprintf("snapshot_%02d", i),
			Dims: dims3At(s, 449, 449, 235),
			gen: func(rng *rand.Rand, dm lorenzo.Dims) []float32 {
				return wavefront(rng, dm, frac)
			},
		})
	}
	return d
}

func hacc(s Scale) *Dataset {
	n := map[Scale]int{Small: 1 << 16, Medium: 1 << 20, Full: 280_953_867}[s]
	d := &Dataset{Name: "HACC", Domain: "Cosmic Simulation"}
	specs := []struct {
		name         string
		step, jitter float64
	}{
		{"x", 0.02, 0.0005}, {"y", 0.02, 0.0005}, {"z", 0.02, 0.0005},
	}
	for _, sp := range specs {
		sp := sp
		d.Fields = append(d.Fields, Field{
			Name: sp.name,
			Dims: lorenzo.Dims1(n),
			gen: func(rng *rand.Rand, dm lorenzo.Dims) []float32 {
				return particleWalk(rng, dm, sp.step, sp.jitter)
			},
		})
	}
	// Velocities are heavy-tailed around zero (a few fast particles set
	// the range), which is what lifts HACC's ratioo ceiling to ~9.
	for _, name := range []string{"vx", "vy", "vz"} {
		d.Fields = append(d.Fields, Field{
			Name: name,
			Dims: lorenzo.Dims1(n),
			gen: func(rng *rand.Rand, dm lorenzo.Dims) []float32 {
				w := particleWalk(rng, dm, 0.5, 0.02)
				out := make([]float32, len(w))
				for i, v := range w {
					t := (float64(v) - 128) / 128 // ≈ [-1, 1]
					out[i] = float32(2000 * t * t * t * t * t)
				}
				return out
			},
		})
	}
	return d
}
