package datasets

import (
	"testing"

	"ceresz/internal/core"
	"ceresz/internal/quant"
)

func TestNamesAndByName(t *testing.T) {
	for _, n := range Names() {
		d, err := ByName(n, Small)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		if d.Name != n {
			t.Fatalf("ByName(%s).Name = %s", n, d.Name)
		}
		if len(d.Fields) == 0 {
			t.Fatalf("%s has no fields", n)
		}
		if d.Elements() <= 0 || d.Bytes() != int64(4*d.Elements()) {
			t.Fatalf("%s: degenerate size accounting", n)
		}
	}
	if _, err := ByName("nope", Small); err == nil {
		t.Fatal("accepted unknown dataset")
	}
	if got := len(All(Small)); got != 6 {
		t.Fatalf("All returned %d datasets", got)
	}
}

func TestAliases(t *testing.T) {
	for _, alias := range []string{"cesm", "CESM", "qmc", "hurricane"} {
		if _, err := ByName(alias, Small); err != nil {
			t.Fatalf("alias %q rejected: %v", alias, err)
		}
	}
}

func TestDeterminism(t *testing.T) {
	d1, _ := ByName("NYX", Small)
	d2, _ := ByName("NYX", Small)
	a := d1.Fields[0].Data(42)
	b := d2.Fields[0].Data(42)
	if len(a) != len(b) {
		t.Fatal("length differs across builds")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d", i)
		}
	}
	c := d1.Fields[0].Data(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestFieldsDifferWithinDataset(t *testing.T) {
	d, _ := ByName("CESM-ATM", Small)
	a := d.Fields[0].Data(1)
	b := d.Fields[1].Data(1)
	same := true
	for i := range a {
		if i < len(b) && a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two fields generated identical data")
	}
}

func TestDimsMatchData(t *testing.T) {
	for _, d := range All(Small) {
		for i := range d.Fields {
			f := &d.Fields[i]
			data := f.Data(1)
			if len(data) != f.Elements() {
				t.Fatalf("%s/%s: %d values for dims %+v", d.Name, f.Name, len(data), f.Dims)
			}
			if err := f.Dims.Validate(len(data)); err != nil {
				t.Fatalf("%s/%s: %v", d.Name, f.Name, err)
			}
		}
	}
}

func TestScalesGrow(t *testing.T) {
	small, _ := ByName("NYX", Small)
	medium, _ := ByName("NYX", Medium)
	if medium.Fields[0].Elements() <= small.Fields[0].Elements() {
		t.Fatalf("medium (%d) not larger than small (%d)",
			medium.Fields[0].Elements(), small.Fields[0].Elements())
	}
	full, _ := ByName("NYX", Full)
	if d := full.Fields[0].Dims; d.Nx != 512 || d.Ny != 512 || d.Nz != 512 {
		t.Fatalf("full NYX dims %+v, want 512³ (Table 4)", d)
	}
	fullHACC, _ := ByName("HACC", Full)
	if fullHACC.Fields[0].Elements() != 280_953_867 {
		t.Fatalf("full HACC length %d, want Table 4's 280,953,867", fullHACC.Fields[0].Elements())
	}
}

func TestTable4FieldCounts(t *testing.T) {
	want := map[string]int{"CESM-ATM": 79, "Hurricane": 13, "QMCPack": 2, "NYX": 6, "RTM": 36, "HACC": 6}
	for name, n := range want {
		d, _ := ByName(name, Full)
		if len(d.Fields) != n {
			t.Fatalf("%s at Full scale has %d fields, want %d (Table 4)", name, len(d.Fields), n)
		}
	}
}

// TestCompressionCharacteristics checks the domain statistics the paper's
// results depend on: RTM is dominated by zero blocks (ratio near the cap),
// HACC compresses worst, NYX contains a near-cap smooth field.
func TestCompressionCharacteristics(t *testing.T) {
	ratioOf := func(name string, fieldIdx int) (float64, *core.Stats) {
		d, err := ByName(name, Small)
		if err != nil {
			t.Fatal(err)
		}
		f := &d.Fields[fieldIdx]
		data := f.Data(7)
		minV, maxV := quant.Range(data)
		eps, err := quant.REL(1e-2).Resolve(minV, maxV)
		if err != nil {
			t.Fatal(err)
		}
		_, stats, err := core.CompressWithEps(nil, data, eps, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return stats.Ratio(), stats
	}

	rtmRatio, rtmStats := ratioOf("RTM", 0)
	if frac := float64(rtmStats.ZeroBlocks) / float64(rtmStats.Blocks); frac < 0.5 {
		t.Fatalf("RTM zero-block fraction %.2f, want ≥0.5 (sparse wavefield)", frac)
	}
	if rtmRatio < 10 {
		t.Fatalf("RTM ratio %.1f, want ≥10 at REL 1e-2", rtmRatio)
	}

	haccRatio, _ := ratioOf("HACC", 3) // velocity: noisy
	if haccRatio > 12 {
		t.Fatalf("HACC velocity ratio %.1f, want <12 (low smoothness)", haccRatio)
	}

	nyxSmooth, nyxStats := ratioOf("NYX", 0) // temperature-like
	if nyxSmooth < 15 {
		t.Fatalf("NYX temperature ratio %.1f, want ≥15 (near cap)", nyxSmooth)
	}
	if nyxStats.VerbatimBlocks != 0 {
		t.Fatalf("NYX produced %d verbatim blocks at REL 1e-2", nyxStats.VerbatimBlocks)
	}

	// Ordering: the sparse and ultra-smooth fields beat the noisy one.
	if !(rtmRatio > haccRatio && nyxSmooth > haccRatio) {
		t.Fatalf("ratio ordering broken: RTM %.1f, NYX %.1f, HACC %.1f", rtmRatio, nyxSmooth, haccRatio)
	}
}

func TestRatioShrinksWithTighterBound(t *testing.T) {
	d, _ := ByName("Hurricane", Small)
	data := d.Fields[0].Data(3)
	minV, maxV := quant.Range(data)
	var prev float64 = -1
	for _, rel := range []float64{1e-2, 1e-3, 1e-4} {
		eps, err := quant.REL(rel).Resolve(minV, maxV)
		if err != nil {
			t.Fatal(err)
		}
		_, stats, err := core.CompressWithEps(nil, data, eps, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		r := stats.Ratio()
		if prev > 0 && r >= prev {
			t.Fatalf("ratio did not shrink with tighter bound: %.2f → %.2f", prev, r)
		}
		prev = r
	}
}

func TestMediumScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("medium-scale generation")
	}
	// Medium scale feeds the published harness numbers; one field per
	// dataset must generate, compress and honor its bound.
	for _, name := range Names() {
		ds, err := ByName(name, Medium)
		if err != nil {
			t.Fatal(err)
		}
		f := &ds.Fields[0]
		data := f.Data(7)
		if len(data) != f.Elements() {
			t.Fatalf("%s: %d elements", name, len(data))
		}
		lo, hi := quant.Range(data)
		eps, err := quant.REL(1e-3).Resolve(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		comp, stats, err := core.CompressWithEps(nil, data, eps, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		dec, _, err := core.Decompress(nil, comp, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := range data {
			d := float64(dec[i]) - float64(data[i])
			if d < 0 {
				d = -d
			}
			if d > stats.Eps {
				t.Fatalf("%s: bound violated at %d", name, i)
			}
		}
		if stats.Ratio() <= 1 {
			t.Fatalf("%s: medium-scale ratio %.2f", name, stats.Ratio())
		}
	}
}
