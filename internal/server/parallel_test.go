package server

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"
	"testing"

	"ceresz"
)

// rawBytes serializes floats as the wire's little-endian body format.
func rawBytes(data []float32) []byte {
	raw := make([]byte, 4*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint32(raw[4*i:], math.Float32bits(v))
	}
	return raw
}

// postBody POSTs body to url and returns the response bytes, failing on a
// non-200 status.
func postBody(t *testing.T, url string, body []byte) []byte {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	return out
}

// TestHostWorkersByteIdentity checks that a server granted an intra-request
// worker budget emits compress responses byte-identical to a sequential
// server's (and to the library reference), and that the decompress path
// round-trips bit-for-bit — the serving form of the codec's byte-identity
// invariant.
func TestHostWorkersByteIdentity(t *testing.T) {
	const chunkElems = 300 // not a block multiple: exercises padded tails
	data := testData(4*chunkElems+17, 7)
	raw := rawBytes(data)
	bound := ceresz.ABS(1e-3)
	want := localFrames(t, data, bound, chunkElems)

	for _, hw := range []int{1, 2, 4, -1} {
		t.Run(fmt.Sprintf("hostworkers=%d", hw), func(t *testing.T) {
			_, ts := newTestServer(t, Config{Workers: 2, HostWorkers: hw, ChunkElems: chunkElems})
			url := fmt.Sprintf("%s/v1/compress?eps=1e-3&chunk=%d", ts.URL, chunkElems)
			got := postBody(t, url, raw)
			if !bytes.Equal(got, want) {
				t.Fatalf("hostworkers=%d: compressed response differs from sequential reference (%d vs %d bytes)",
					hw, len(got), len(want))
			}
			back := postBody(t, ts.URL+"/v1/decompress", got)
			dec := ceresz.NewStreamReader(bytes.NewReader(want))
			var ref []float32
			for {
				chunk, err := dec.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatal(err)
				}
				ref = append(ref, chunk...)
			}
			if !bytes.Equal(back, rawBytes(ref)) {
				t.Fatalf("hostworkers=%d: decompressed response differs from library reference", hw)
			}
		})
	}
}

// TestHostWorkersBudgetUnderLoad drives concurrent requests at a server
// with a worker budget, checking every response stays byte-identical while
// the budget is being split and re-split across executing requests.
func TestHostWorkersBudgetUnderLoad(t *testing.T) {
	const chunkElems = 256
	data := testData(6*chunkElems, 11)
	raw := rawBytes(data)
	want := localFrames(t, data, ceresz.ABS(1e-3), chunkElems)
	_, ts := newTestServer(t, Config{Workers: 4, HostWorkers: 4, ChunkElems: chunkElems})
	url := fmt.Sprintf("%s/v1/compress?eps=1e-3&chunk=%d", ts.URL, chunkElems)

	const clients, perClient = 8, 4
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for k := 0; k < clients; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(raw))
				if err != nil {
					errs <- err
					return
				}
				got, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode == http.StatusTooManyRequests {
					continue // admission backpressure, not a correctness failure
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("status %d: %s", resp.StatusCode, got)
					return
				}
				if !bytes.Equal(got, want) {
					errs <- fmt.Errorf("response differs from sequential reference")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
