package server

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"ceresz"
	"ceresz/internal/telemetry"
)

// rawF32 serializes floats as a request body.
func rawF32(data []float32) []byte {
	raw := make([]byte, 4*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint32(raw[4*i:], math.Float32bits(v))
	}
	return raw
}

func TestTraceparentParse(t *testing.T) {
	tid, sid, ok := parseTraceparent("00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01")
	if !ok {
		t.Fatal("valid traceparent rejected")
	}
	if got := tid.String(); got != "0123456789abcdef0123456789abcdef" {
		t.Fatalf("trace-id = %q", got)
	}
	if got := sid.String(); got != "00f067aa0ba902b7" {
		t.Fatalf("span-id = %q", got)
	}
	for _, bad := range []string{
		"",
		"00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7", // missing flags
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace-id
		"00-0123456789abcdef0123456789abcdef-0000000000000000-01", // zero span-id
		"zz-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01",
		"00-0123456789abcdef0123456789abcdeg-00f067aa0ba902b7-01", // non-hex
	} {
		if _, _, ok := parseTraceparent(bad); ok {
			t.Errorf("accepted invalid traceparent %q", bad)
		}
	}
}

// TestRequestIDEcho asserts every response carries the request's identity:
// a fresh ID when the client sent none, the client's trace-id when it did.
func TestRequestIDEcho(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, ChunkElems: 256})
	body := rawF32(testData(512, 1))

	resp, err := http.Post(ts.URL+"/v1/compress?mode=abs&eps=1e-3", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	id := resp.Header.Get("X-Ceresz-Request-Id")
	if len(id) != 32 {
		t.Fatalf("X-Ceresz-Request-Id = %q, want 32 hex digits", id)
	}
	tp := resp.Header.Get("Traceparent")
	if len(tp) != 55 || !strings.HasPrefix(tp, "00-"+id+"-") || !strings.HasSuffix(tp, "-01") {
		t.Fatalf("Traceparent = %q, want 00-%s-<span>-01", tp, id)
	}

	// A client-supplied traceparent is adopted as the request's identity.
	const wantID = "0123456789abcdef0123456789abcdef"
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/compress?mode=abs&eps=1e-3", bytes.NewReader(body))
	req.Header.Set("Traceparent", "00-"+wantID+"-00f067aa0ba902b7-01")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Ceresz-Request-Id"); got != wantID {
		t.Fatalf("propagated request id = %q, want %q", got, wantID)
	}
}

// TestServerTimingTrailer asserts the per-stage breakdown arrives as a
// trailer and is internally consistent: every stage named, stage sum not
// exceeding the reported total.
func TestServerTimingTrailer(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, ChunkElems: 256})
	resp, err := http.Post(ts.URL+"/v1/compress?mode=abs&eps=1e-3", "application/octet-stream",
		bytes.NewReader(rawF32(testData(2048, 2))))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) // trailers materialize after the body
	resp.Body.Close()

	st := resp.Trailer.Get("Server-Timing")
	if st == "" {
		t.Fatal("no Server-Timing trailer")
	}
	durs := map[string]float64{}
	for _, entry := range strings.Split(st, ",") {
		name, rest, ok := strings.Cut(strings.TrimSpace(entry), ";dur=")
		if !ok {
			t.Fatalf("malformed Server-Timing entry %q in %q", entry, st)
		}
		ms, err := strconv.ParseFloat(rest, 64)
		if err != nil {
			t.Fatalf("bad duration in %q: %v", entry, err)
		}
		durs[name] = ms
	}
	var sum float64
	for _, name := range []string{"admit", "worker", "read", "cache", "codec", "write", "total"} {
		ms, ok := durs[name]
		if !ok {
			t.Fatalf("Server-Timing %q missing stage %q", st, name)
		}
		if name != "total" {
			sum += ms
		}
	}
	// Stage stamps are taken inside the handler, so they can never exceed
	// the wall total (allow a rounding ulp from the 3-decimal format).
	if sum > durs["total"]+0.004 {
		t.Fatalf("stage sum %.3fms exceeds total %.3fms (%q)", sum, durs["total"], st)
	}
}

// TestErrorResponseRequestID asserts the satellite contract: error bodies
// quote the request ID so client logs and server logs correlate.
func TestErrorResponseRequestID(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Post(ts.URL+"/v1/compress?mode=abs&eps=-1", "application/octet-stream",
		bytes.NewReader(rawF32(testData(8, 3))))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	id := resp.Header.Get("X-Ceresz-Request-Id")
	if len(id) != 32 {
		t.Fatalf("error response X-Ceresz-Request-Id = %q", id)
	}
	if want := "request " + id + ": "; !strings.HasPrefix(string(body), want) {
		t.Fatalf("error body %q does not begin with %q", body, want)
	}
}

// TestDebugRequestsEndpoint exercises the in-flight/slowest-N view.
func TestDebugRequestsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, ChunkElems: 256, TraceEvery: 1})
	for i := 0; i < 3; i++ {
		resp, err := http.Post(ts.URL+"/v1/compress?mode=abs&eps=1e-3", "application/octet-stream",
			bytes.NewReader(rawF32(testData(512, int64(i)))))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view struct {
		Finished uint64 `json:"finished"`
		Sampled  uint64 `json:"sampled"`
		InFlight []json.RawMessage `json:"in_flight"`
		Slowest  []struct {
			ID       string `json:"id"`
			Endpoint string `json:"endpoint"`
			Status   int    `json:"status"`
			TotalUS  int64  `json:"total_us"`
			Chunks   int64  `json:"chunks"`
		} `json:"slowest"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatalf("/debug/requests is not valid JSON: %v", err)
	}
	if view.Finished < 3 || view.Sampled < 3 {
		t.Fatalf("finished=%d sampled=%d, want >= 3", view.Finished, view.Sampled)
	}
	if len(view.Slowest) == 0 {
		t.Fatal("slowest ring is empty after traced requests")
	}
	for _, r := range view.Slowest {
		if len(r.ID) != 32 || r.Endpoint != "compress" || r.Status != 200 || r.Chunks == 0 {
			t.Fatalf("bad slowest record: %+v", r)
		}
	}
}

// TestDebugTraceEndpoint asserts the Chrome trace export is valid JSON
// with named tracks, handler slices and flow arrows.
func TestDebugTraceEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, ChunkElems: 256, TraceEvery: 1})
	for i := 0; i < 2; i++ {
		resp, err := http.Post(ts.URL+"/v1/compress?mode=abs&eps=1e-3", "application/octet-stream",
			bytes.NewReader(rawF32(testData(600, int64(i)))))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var events []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
		t.Fatalf("/debug/trace is not a valid JSON array: %v", err)
	}
	phases := map[string]int{}
	for _, ev := range events {
		ph, _ := ev["ph"].(string)
		phases[ph]++
	}
	if phases["M"] == 0 {
		t.Fatalf("no thread_name metadata events (phases %v)", phases)
	}
	if phases["X"] < 2 {
		t.Fatalf("want at least one slice per request, got %d (phases %v)", phases["X"], phases)
	}
	if phases["s"] == 0 || phases["f"] == 0 {
		t.Fatalf("no flow arrows linking wait to execution (phases %v)", phases)
	}
}

// TestAccessLog asserts sampled structured logging: one JSON line per
// finished request with identity, volume and stage timings.
func TestAccessLog(t *testing.T) {
	var buf bytes.Buffer
	_, ts := newTestServer(t, Config{Workers: 1, ChunkElems: 256, AccessLog: &buf})
	for i := 0; i < 2; i++ {
		resp, err := http.Post(ts.URL+"/v1/compress?mode=abs&eps=1e-3", "application/octet-stream",
			bytes.NewReader(rawF32(testData(512, int64(i)))))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("access log has %d lines, want 2:\n%s", len(lines), buf.String())
	}
	for _, line := range lines {
		var e accessEntry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("access log line is not JSON: %v\n%s", err, line)
		}
		if len(e.ID) != 32 || e.Endpoint != "compress" || e.Status != 200 ||
			e.BytesIn != 4*512 || e.Chunks != 2 || e.TotalUS <= 0 {
			t.Fatalf("bad access entry: %+v", e)
		}
	}
}

// TestAccessLogTenant asserts the tenant identity lands in the access
// log when the request carries one, and stays absent when it does not.
func TestAccessLogTenant(t *testing.T) {
	var buf bytes.Buffer
	_, ts := newTestServer(t, Config{Workers: 1, ChunkElems: 256, AccessLog: &buf})
	for _, tenant := range []string{"acme", ""} {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/compress?mode=abs&eps=1e-3",
			bytes.NewReader(rawF32(testData(512, 1))))
		if err != nil {
			t.Fatal(err)
		}
		if tenant != "" {
			req.Header.Set("X-Ceresz-Tenant", tenant)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("access log has %d lines, want 2:\n%s", len(lines), buf.String())
	}
	var tagged, untagged accessEntry
	if err := json.Unmarshal([]byte(lines[0]), &tagged); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &untagged); err != nil {
		t.Fatal(err)
	}
	if tagged.Tenant != "acme" {
		t.Fatalf("tagged request logged tenant %q, want \"acme\"", tagged.Tenant)
	}
	if untagged.Tenant != "" {
		t.Fatalf("untagged request logged tenant %q, want empty", untagged.Tenant)
	}
	if strings.Contains(lines[1], "tenant") {
		t.Fatalf("untagged access line carries a tenant field: %s", lines[1])
	}
}

// TestConcurrentMetricsExposition is the satellite race check: scraping
// /debug/metrics while requests are in flight must stay well-formed and
// the per-endpoint request counters monotone.
func TestConcurrentMetricsExposition(t *testing.T) {
	// Mount the handler and the metrics exposition together, the way
	// cereszd composes them.
	reg := telemetry.NewRegistry()
	s := New(Config{Workers: 2, QueueDepth: 8, ChunkElems: 256, TraceEvery: 2, Registry: reg})
	mux := http.NewServeMux()
	mux.Handle("/", s.Handler())
	mux.Handle("/debug/metrics", reg.MetricsHandler())
	ts := httptest.NewServer(mux)
	defer ts.Close()
	body := rawF32(testData(512, 9))

	const writers, scrapes = 4, 20
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/v1/compress?mode=abs&eps=1e-3", "application/octet-stream", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 && resp.StatusCode != 429 {
					errs <- fmt.Errorf("writer %d: status %d", w, resp.StatusCode)
					return
				}
			}
		}(w)
	}

	var last float64 = -1
	for i := 0; i < scrapes; i++ {
		resp, err := http.Get(ts.URL + "/debug/metrics")
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("scrape %d: status %d", i, resp.StatusCode)
		}
		var cur float64 = -1
		for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			fields := strings.Fields(line)
			if len(fields) != 2 {
				t.Fatalf("scrape %d: malformed exposition line %q", i, line)
			}
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				t.Fatalf("scrape %d: non-numeric value in %q", i, line)
			}
			if fields[0] == "ceresz_server_compress_requests" {
				cur = v
			}
		}
		if cur < 0 {
			t.Fatalf("scrape %d: ceresz_server_compress_requests missing", i)
		}
		if cur < last {
			t.Fatalf("scrape %d: counter went backwards: %v -> %v", i, last, cur)
		}
		last = cur
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestTracedUnsampledHotPathZeroAlloc extends the zero-alloc contract to
// requests that hold a span slot but lost the sampling draw: stage
// accounting is pure atomics, so the per-chunk path must still not
// allocate.
func TestTracedUnsampledHotPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; zero-alloc contract checked without -race")
	}
	const elems = 4100
	raw := rawF32(testData(elems, 42))
	p := cparams{
		bound:      ceresz.ABS(1e-3),
		abs:        true,
		elem:       ceresz.Float32,
		chunkElems: 1024,
		opts:       ceresz.Options{Workers: 1},
	}
	// TraceEvery 3 with a single request acquired: seq 1 is not sampled,
	// so the span records stage atomics but no chunk events.
	tr := newTracer(1, Config{TraceEvery: 3})
	sp := tr.acquire(newTraceID(), spanID{}, newSpanID(), epCompress, time.Now(), "")
	c := newCodec(0)
	c.tr = sp
	r := bytes.NewReader(raw)
	runOnce := func() {
		r.Reset(raw)
		for {
			frame, _, err := c.nextFrameF32(r, p)
			if err == io.EOF {
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if _, err := io.Discard.Write(frame); err != nil {
				t.Fatal(err)
			}
		}
	}
	runOnce()
	allocs := testing.AllocsPerRun(20, runOnce)
	if allocs != 0 {
		t.Fatalf("traced-unsampled compress hot path allocates %.1f times per run, want 0", allocs)
	}
}
