package server

import (
	"encoding/binary"
	"io"
	"math"
	"slices"

	"ceresz"
	"ceresz/internal/chunkcache"
)

// codec is one worker's pooled compression state. Every buffer is reused
// across chunks and across requests, so once warm the per-chunk compress
// path performs zero heap allocations (asserted by TestCompressHotPathZeroAlloc):
// raw body bytes land in rawIn, decode into f32/f64, and the compressed
// frame is assembled in frame — an 8-byte CSZF header followed by the
// container written by the zero-alloc *Into entry points. A codec is owned
// by exactly one request at a time (the pool hands it out), so no locking.
type codec struct {
	id    int    // worker index, used as the trace track id
	rawIn []byte // raw little-endian chunk bytes from the request body
	f32   []float32
	f64   []float64
	frame []byte // CSZF frame under construction: 8-byte header + payload
	out   []byte // encoded raw-float response bytes (decompress path)
	stats ceresz.Stats
	sr    *ceresz.StreamReader
	tr    *reqSpan // span of the request currently holding this codec; nil when untraced
	// workers is this request's share of the server's intra-request
	// parallelism budget (Config.HostWorkers), set by admit on checkout.
	// 1 keeps the sequential zero-alloc path.
	workers int
	// hasher derives chunk-cache keys; per-codec so key derivation needs
	// no locking and reuses one SHA-256 state (zero allocations per key).
	hasher *chunkcache.Hasher
}

func newCodec(id int) *codec {
	return &codec{id: id, sr: ceresz.NewStreamReader(nil), hasher: chunkcache.NewHasher()}
}

// frameMagic mirrors the package-level CSZF framing (stream.go); the codec
// writes headers itself so header and payload go out in one Write.
var frameMagic = [4]byte{'C', 'S', 'Z', 'F'}

const frameHeaderSize = 8

// cparams is a compress request's resolved configuration.
type cparams struct {
	bound      ceresz.Bound // REL resolves per chunk, like StreamWriter
	abs        bool         // true: bound.Value is a pre-resolved absolute ε
	elem       ceresz.Elem
	chunkElems int
	opts       ceresz.Options // Workers: the request's budget share (1 = zero-alloc path)
}

// elemSize returns the element byte width.
func (p cparams) elemSize() int {
	if p.elem == ceresz.Float64 {
		return 8
	}
	return 4
}

// readRaw fills rawIn with up to want bytes from r. A short final read is
// returned as n with io.EOF; bytes that do not divide the element size are
// the caller's error to raise.
func (c *codec) readRaw(r io.Reader, want int) (int, error) {
	c.rawIn = slices.Grow(c.rawIn[:0], want)[:want]
	n, err := io.ReadFull(r, c.rawIn)
	c.rawIn = c.rawIn[:n]
	if err == io.ErrUnexpectedEOF {
		err = io.EOF
	}
	return n, err
}

// readChunk reads one raw chunk (up to chunkElems elements) into c.rawIn.
// It returns the byte count and io.EOF once the body is drained; a byte
// count that does not divide the element size is rejected here so the
// compress step always sees whole elements.
func (c *codec) readChunk(r io.Reader, p cparams) (int, error) {
	es := p.elemSize()
	t0 := c.tr.now()
	n, err := c.readRaw(r, es*p.chunkElems)
	c.tr.accum(stageRead, t0)
	if n == 0 {
		if err == io.EOF || err == nil {
			return 0, io.EOF
		}
		return 0, err
	}
	if err != nil && err != io.EOF {
		return n, err
	}
	if n%es != 0 {
		return n, errOddBody(n, es)
	}
	return n, nil
}

// compressF32 compresses the raw float32 chunk sitting in c.rawIn and
// assembles the CSZF frame in c.frame. Steady-state zero-alloc: all
// buffers are warm after the first chunk.
func (c *codec) compressF32(p cparams) ([]byte, error) {
	elems := len(c.rawIn) / 4
	c.f32 = slices.Grow(c.f32[:0], elems)[:elems]
	for i := range c.f32 {
		c.f32[i] = math.Float32frombits(binary.LittleEndian.Uint32(c.rawIn[4*i:]))
	}
	c.frame = append(c.frame[:0], frameMagic[0], frameMagic[1], frameMagic[2], frameMagic[3], 0, 0, 0, 0)
	tc := c.tr.now()
	var err error
	if p.abs {
		c.frame, err = ceresz.CompressWithEpsInto(c.frame, c.f32, p.bound.Value, p.opts, &c.stats)
	} else {
		c.frame, err = ceresz.CompressInto(c.frame, c.f32, p.bound, p.opts, &c.stats)
	}
	c.tr.observe(stageCodec, tc)
	if err != nil {
		return nil, err
	}
	binary.LittleEndian.PutUint32(c.frame[4:], uint32(len(c.frame)-frameHeaderSize))
	return c.frame, nil
}

// compressF64 is compressF32 for double-precision chunks.
func (c *codec) compressF64(p cparams) ([]byte, error) {
	elems := len(c.rawIn) / 8
	c.f64 = slices.Grow(c.f64[:0], elems)[:elems]
	for i := range c.f64 {
		c.f64[i] = math.Float64frombits(binary.LittleEndian.Uint64(c.rawIn[8*i:]))
	}
	c.frame = append(c.frame[:0], frameMagic[0], frameMagic[1], frameMagic[2], frameMagic[3], 0, 0, 0, 0)
	tc := c.tr.now()
	var err error
	c.frame, err = ceresz.Compress64Into(c.frame, c.f64, p.bound, p.opts, &c.stats)
	c.tr.observe(stageCodec, tc)
	if err != nil {
		return nil, err
	}
	binary.LittleEndian.PutUint32(c.frame[4:], uint32(len(c.frame)-frameHeaderSize))
	return c.frame, nil
}

// nextFrameF32 reads one raw float32 chunk from r, compresses it and
// assembles the CSZF frame in c.frame. It returns the frame, the raw byte
// count consumed, and io.EOF (with a nil frame) once the body is drained.
// This is the uncached compress path (and the zero-alloc contract's test
// surface); handleCompress interposes the chunk cache between the read
// and compress halves when one is configured.
func (c *codec) nextFrameF32(r io.Reader, p cparams) ([]byte, int, error) {
	n, err := c.readChunk(r, p)
	if err != nil {
		return nil, n, err
	}
	frame, err := c.compressF32(p)
	return frame, n, err
}

// nextFrameF64 is nextFrameF32 for double-precision bodies.
func (c *codec) nextFrameF64(r io.Reader, p cparams) ([]byte, int, error) {
	n, err := c.readChunk(r, p)
	if err != nil {
		return nil, n, err
	}
	frame, err := c.compressF64(p)
	return frame, n, err
}

// Chunk-cache keys use the canonical layout exported by chunkcache
// (AppendCompressPreamble / AppendDecompressPreamble): a fixed preamble of
// every parameter that shapes the codec's output, then the chunk bytes.
// internal/cluster routes by the same digests, so a consistent-hash proxy
// lands identical chunks on the node whose cache already holds them.

// cacheKeyCompress addresses the raw chunk in c.rawIn under p: direction,
// element type, bound mode, eps bits and block length all shape the frame
// bytes. Workers is deliberately excluded — the host codec is
// byte-identical at every worker count (the block-parallel differential
// guarantee), so one entry serves all parallelism levels. A REL bound is
// keyed by λ, not the resolved ε: the resolution is a deterministic
// function of the chunk's value range, which the hashed bytes pin down.
func (c *codec) cacheKeyCompress(p cparams) chunkcache.Key {
	pre := chunkcache.AppendCompressPreamble(c.hasher.Preamble(),
		byte(p.elem), p.abs, p.bound.Value, p.opts.BlockLen)
	return c.hasher.Key(pre, c.rawIn)
}

// cacheKeyDecompress addresses a CSZF frame payload: the payload encodes
// every codec parameter itself, so only the requested output element type
// joins it in the preamble.
func (c *codec) cacheKeyDecompress(payload []byte, wantF64 bool) chunkcache.Key {
	pre := chunkcache.AppendDecompressPreamble(c.hasher.Preamble(), wantF64)
	return c.hasher.Key(pre, payload)
}

// encodeF32 serializes floats into c.out as raw little-endian bytes.
func (c *codec) encodeF32(vals []float32) []byte {
	c.out = slices.Grow(c.out[:0], 4*len(vals))[:4*len(vals)]
	for i, v := range vals {
		binary.LittleEndian.PutUint32(c.out[4*i:], math.Float32bits(v))
	}
	return c.out
}

// encodeF64 serializes doubles into c.out as raw little-endian bytes.
func (c *codec) encodeF64(vals []float64) []byte {
	c.out = slices.Grow(c.out[:0], 8*len(vals))[:8*len(vals)]
	for i, v := range vals {
		binary.LittleEndian.PutUint64(c.out[8*i:], math.Float64bits(v))
	}
	return c.out
}
