//go:build race

package server

// raceEnabled reports whether the race detector is active; its
// instrumentation allocates, so the zero-alloc contract tests only run
// without it.
const raceEnabled = true
