package server

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ceresz"
	"ceresz/internal/telemetry"
)

// rawF32Body renders test data the way /v1/compress wants it.
func rawF32Body(data []float32) []byte {
	raw := make([]byte, 4*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint32(raw[4*i:], math.Float32bits(v))
	}
	return raw
}

// TestSLOBurnAndFlightDumpE2E is the issue's acceptance test: an SLO no
// real request can meet (p99 < 1µs) is configured against a live server,
// load is driven, and one rollup tick must surface the burn at /debug/slo,
// degrade (but not fail) the readiness probe, and trigger a flight-recorder
// incident dump whose Chrome trace loads and whose windows are populated.
func TestSLOBurnAndFlightDumpE2E(t *testing.T) {
	objectives, err := ParseObjectives("compress:p99<1us:99.9")
	if err != nil {
		t.Fatal(err)
	}
	flightDir := t.TempDir()
	s, ts := newTestServer(t, Config{
		Workers:           2,
		ChunkElems:        1024,
		RollupInterval:    time.Hour, // ticker never fires; the test ticks
		Objectives:        objectives,
		FlightDir:         flightDir,
		FlightMinInterval: time.Millisecond,
		TraceEvery:        1,
	})
	defer s.Close()

	body := rawF32Body(testData(4096, 11))
	for i := 0; i < 20; i++ {
		resp, err := http.Post(ts.URL+"/v1/compress?eps=1e-3", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("compress %d: status %d", i, resp.StatusCode)
		}
	}

	// Close the window: every request above violated the 1µs threshold, so
	// the burn rate jumps to ~1000 and the tick's trigger check must dump.
	s.Rollup().Tick()

	// /debug/slo reports the burn.
	resp, err := http.Get(ts.URL + "/debug/slo")
	if err != nil {
		t.Fatal(err)
	}
	var sloView struct {
		Degraded   bool `json:"degraded"`
		Objectives []struct {
			BurnRate5m      float64 `json:"burn_rate_5m"`
			BudgetRemaining float64 `json:"budget_remaining"`
			Total           int64   `json:"total"`
		} `json:"objectives"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sloView); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !sloView.Degraded || len(sloView.Objectives) != 1 {
		t.Fatalf("slo view %+v", sloView)
	}
	if br := sloView.Objectives[0].BurnRate5m; br <= 1 {
		t.Fatalf("burn rate %g, want > 1", br)
	}
	if sloView.Objectives[0].Total < 20 {
		t.Fatalf("objective saw %d requests, want >= 20", sloView.Objectives[0].Total)
	}

	// Readiness stays 200 but reports the degradation detail.
	resp, err = http.Get(ts.URL + "/healthz/ready")
	if err != nil {
		t.Fatal(err)
	}
	var ready struct {
		Status string `json:"status"`
		SLO    []struct {
			Spec       string  `json:"spec"`
			BurnRate5m float64 `json:"burn_rate_5m"`
		} `json:"slo"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ready status %d (degraded must stay routable)", resp.StatusCode)
	}
	if ready.Status != "degraded" || len(ready.SLO) != 1 ||
		ready.SLO[0].Spec != "compress:p99<1us:99.9" || ready.SLO[0].BurnRate5m <= 1 {
		t.Fatalf("ready detail %+v", ready)
	}

	// /debug/timeseries serves the closed window with the endpoint series.
	resp, err = http.Get(ts.URL + "/debug/timeseries")
	if err != nil {
		t.Fatal(err)
	}
	var tsView struct {
		Windows []telemetry.Window `json:"windows"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&tsView); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(tsView.Windows) == 0 {
		t.Fatal("no rollup windows served")
	}
	w := tsView.Windows[len(tsView.Windows)-1]
	if w.Counters["server.compress.requests"] < 20 {
		t.Fatalf("window requests delta %d", w.Counters["server.compress.requests"])
	}
	if w.Hists["server.compress.latency_us"].Count < 20 {
		t.Fatalf("window latency count %+v", w.Hists["server.compress.latency_us"])
	}

	// The burn trigger dumped an incident; it must be self-contained:
	// windows, SLO state, runtime health and a loadable Chrome trace.
	matches, err := filepath.Glob(filepath.Join(flightDir, "incident-*.json"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no incident dump in %s (err %v)", flightDir, err)
	}
	raw, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	var inc telemetry.Incident
	if err := json.Unmarshal(raw, &inc); err != nil {
		t.Fatalf("incident not valid JSON: %v", err)
	}
	if !strings.Contains(inc.Reason, "burn-rate") {
		t.Fatalf("incident reason %q", inc.Reason)
	}
	if len(inc.Windows) == 0 {
		t.Fatal("incident has no rollup windows")
	}
	if inc.Runtime.Goroutines <= 0 || inc.Runtime.HeapBytes <= 0 {
		t.Fatalf("incident runtime %+v", inc.Runtime)
	}
	if len(inc.SLO) != 1 || inc.SLO[0].BurnRate5m <= 1 {
		t.Fatalf("incident slo %+v", inc.SLO)
	}
	var events []map[string]any
	if err := json.Unmarshal(inc.TraceEvents, &events); err != nil {
		t.Fatalf("incident traceEvents not a Chrome trace array: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("incident trace is empty with TraceEvery=1")
	}

	// Manual dump endpoint: POST forces one past the rate limit, GET shows
	// recorder state.
	resp, err = http.Post(ts.URL+"/debug/flight/dump?reason=drill", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var dumped struct {
		File string `json:"file"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dumped); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, err := os.Stat(dumped.File); err != nil {
		t.Fatalf("forced dump: %v", err)
	}

	// /debug/metrics carries the slo/rollup series end to end.
	resp, err = http.Get(ts.URL + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	metrics, _ := io.ReadAll(resp.Body)
	for _, want := range []string{"ceresz_slo_burn_rate_5m", "ceresz_server_compress_requests_rate", "ceresz_build_info"} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/debug/metrics missing %s", want)
		}
	}
}

// TestFleetHealthEndpointsDisabled pins the nil-safe behavior: a server
// with no rollup/SLO/flight configuration answers 404 on the fleet-health
// views and keeps the plain readiness body.
func TestFleetHealthEndpointsDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for _, path := range []string{"/debug/timeseries", "/debug/slo", "/debug/flight"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s status %d, want 404", path, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/healthz/ready")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("ready body %s", body)
	}
}

// TestParseObjectives pins the endpoint binding and the unknown-subject
// rejection.
func TestParseObjectives(t *testing.T) {
	objs, err := ParseObjectives("compress:p99<25ms:99.9,decompress:err:99.99")
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 {
		t.Fatalf("%d objectives", len(objs))
	}
	if objs[0].HistName != "server.compress.latency_us" {
		t.Fatalf("latency binding %+v", objs[0])
	}
	if objs[1].TotalCounter != "server.decompress.requests" || objs[1].BadCounter != "server.decompress.status_5xx" {
		t.Fatalf("err binding %+v", objs[1])
	}
	if _, err := ParseObjectives("uploads:err:99"); err == nil {
		t.Fatal("unknown endpoint accepted")
	}
	if objs, err := ParseObjectives(""); err != nil || len(objs) != 0 {
		t.Fatalf("empty: %v %v", objs, err)
	}
}

// TestCompressHotPathZeroAllocWithRollups asserts the acceptance
// criterion that the fleet-health layer costs the per-chunk path nothing:
// with an enabled registry, an attached rollup and an SLO engine, the warm
// compress loop still allocates zero times per run. Windows close via
// manual Tick around the measurement — the measurement itself must not
// tick, because AllocsPerRun counts process-global allocations and a tick
// legitimately builds window maps off the hot path.
func TestCompressHotPathZeroAllocWithRollups(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; zero-alloc contract checked without -race")
	}
	reg := telemetry.NewRegistry()
	m := newEpMetrics(reg, epCompress)
	rp := telemetry.NewRollup(reg, telemetry.RollupConfig{Interval: time.Hour})
	objectives, err := ParseObjectives("compress:p99<1us:99.9")
	if err != nil {
		t.Fatal(err)
	}
	telemetry.NewSLOEngine(rp, objectives, 0)

	const elems = 4100
	raw := rawF32Body(testData(elems, 42))
	p := cparams{
		bound:      ceresz.ABS(1e-3),
		abs:        true,
		elem:       ceresz.Float32,
		chunkElems: 1024,
		opts:       ceresz.Options{Workers: 1},
	}
	c := newCodec(0)
	r := bytes.NewReader(raw)
	runOnce := func() {
		r.Reset(raw)
		for {
			frame, n, err := c.nextFrameF32(r, p)
			if err == io.EOF {
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			// The instruments the serving loop bumps per chunk, against the
			// live registry the rollup is attached to.
			m.chunks.Add(1)
			m.bytesIn.Add(int64(n))
			m.bytesOut.Add(int64(len(frame)))
			m.latencyUS.Observe(int64(len(frame) % 1000))
			if _, err := io.Discard.Write(frame); err != nil {
				t.Fatal(err)
			}
		}
	}
	runOnce() // warm codec buffers and encoder pool
	rp.Tick() // close a window over the warmup traffic
	allocs := testing.AllocsPerRun(20, runOnce)
	if allocs != 0 {
		t.Fatalf("hot path with rollups+SLO enabled allocates %.1f times per run, want 0", allocs)
	}
	w := rp.Tick() // the measured traffic lands in a window afterwards
	if w.Counters["server.compress.chunks"] == 0 {
		t.Fatal("rollup window missed the measured traffic")
	}
}
