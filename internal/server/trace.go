package server

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ceresz/internal/telemetry"
)

// Request-scoped observability: every admitted /v1/* request is attributed
// a W3C trace id (propagated via the `traceparent` header, generated when
// the client sent none) and a lifecycle span decomposed into stages —
// admission wait, worker-pool wait, then per-chunk body reads, codec
// kernels and response writes. The span lives in a preallocated slot (the
// admission semaphore bounds concurrency, so slots never run out and never
// allocate), its stage accumulators are atomics so /debug/requests can
// read in-flight requests without stalling the handler, and the per-chunk
// hooks are nil-guarded so the untraced codec path stays zero-alloc.
//
// Completed spans feed:
//
//   - a Server-Timing response trailer (admit/worker/read/codec/write/total
//     in milliseconds), so clients attribute latency without scraping;
//   - a recent ring + a slowest-N ring, exported as Chrome trace events
//     through the shared telemetry.ChromeTraceWriter (/debug/trace) — the
//     same machinery as the simulator's SpanLog, so server request spans
//     and WSE block spans open in the same Perfetto viewer;
//   - sampled structured JSON access logs;
//   - the /debug/requests JSON view (in-flight + slowest + totals).

// stage indexes one segment of a request's lifecycle.
type stage int32

const (
	// stageAdmit is accept → admission semaphore acquired (method/drain/
	// length checks plus the non-blocking semaphore acquisition).
	stageAdmit stage = iota
	// stageWorker is admission → codec (worker) acquired.
	stageWorker
	// stageRead is body-read time, accumulated per chunk (includes the
	// client's upload pacing — the stream is read incrementally).
	stageRead
	// stageCache is chunk-cache time, accumulated per chunk: key hashing
	// plus the lookup, including any wait coalesced onto another request's
	// in-flight computation. Zero when the cache is disabled.
	stageCache
	// stageCodec is compress/decompress kernel time, accumulated per chunk.
	stageCodec
	// stageWrite is response-write time, accumulated per chunk.
	stageWrite
	numStages
)

var stageNames = [numStages]string{"admit", "worker", "read", "cache", "codec", "write"}

// Endpoint indexes for span records.
const (
	epCompress = iota
	epDecompress
	epBundle
	numEndpoints
)

var epNames = [numEndpoints]string{"compress", "decompress", "bundle"}

// traceID is a W3C trace-context trace id (16 bytes, hex 32 on the wire).
type traceID [16]byte

// spanID is a W3C trace-context parent/span id (8 bytes, hex 16).
type spanID [8]byte

func (t traceID) String() string { return hex.EncodeToString(t[:]) }
func (s spanID) String() string  { return hex.EncodeToString(s[:]) }

func (t traceID) isZero() bool {
	for _, b := range t {
		if b != 0 {
			return false
		}
	}
	return true
}

func (s spanID) isZero() bool {
	for _, b := range s {
		if b != 0 {
			return false
		}
	}
	return true
}

// parseTraceparent extracts the trace id and parent span id from a W3C
// `traceparent` header: version-traceid-parentid-flags, all lower hex.
func parseTraceparent(h string) (traceID, spanID, bool) {
	var tid traceID
	var sid spanID
	if len(h) != 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return tid, sid, false
	}
	var ver [1]byte
	if _, err := hex.Decode(ver[:], []byte(h[:2])); err != nil || ver[0] == 0xff {
		return tid, sid, false
	}
	if _, err := hex.Decode(tid[:], []byte(h[3:35])); err != nil {
		return tid, sid, false
	}
	if _, err := hex.Decode(sid[:], []byte(h[36:52])); err != nil {
		return tid, sid, false
	}
	if tid.isZero() || sid.isZero() {
		return tid, sid, false
	}
	return tid, sid, true
}

func newTraceID() traceID {
	var t traceID
	for t.isZero() {
		u, v := rand.Uint64(), rand.Uint64()
		for i := 0; i < 8; i++ {
			t[i] = byte(u >> (8 * i))
			t[8+i] = byte(v >> (8 * i))
		}
	}
	return t
}

func newSpanID() spanID {
	var s spanID
	u := rand.Uint64() | 1 // never all-zero
	for i := 0; i < 8; i++ {
		s[i] = byte(u >> (8 * i))
	}
	return s
}

// maxChunkEvents bounds the per-chunk events one sampled request records
// (3 per chunk: read, codec, write). Past the cap, events are dropped and
// counted — the stage sums stay exact either way.
const maxChunkEvents = 96

// chunkEvent is one per-chunk stage occurrence of a sampled request.
type chunkEvent struct {
	stage   stage
	startNs int64 // offset from the request's accept time
	durNs   int64
}

// reqSpan is one request's lifecycle record, living in a preallocated
// tracer slot. Identity fields (id, endpoint, start, busy) are written
// under mu at acquire/release so /debug/requests can read them; the live
// counters are atomics updated lock-free by the handler; the chunk-event
// array is touched only by the owning handler goroutine.
type reqSpan struct {
	mu   sync.Mutex
	busy bool
	seq  uint64
	id   traceID
	// parent is the client's span id from traceparent (zero if none).
	parent spanID
	// self is the server's span id for this request, echoed in the
	// response traceparent.
	self     spanID
	endpoint uint8
	start    time.Time
	worker   int32
	sampled  bool
	// tenant is the request's X-Ceresz-Tenant identity ("" = untagged) —
	// recorded so multi-tenant QoS decisions upstream (cereszproxy) can be
	// correlated with the work each tenant actually caused here.
	tenant string

	status   atomic.Int32
	curStage atomic.Int32
	bytesIn  atomic.Int64
	bytesOut atomic.Int64
	chunks   atomic.Int64
	// cacheHits / cacheMisses count the request's chunk-cache outcomes
	// (coalesced waits count as hits — the codec never ran here). Both
	// stay zero when the cache is disabled.
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	stageNs     [numStages]atomic.Int64

	// Finalize-only fields (owner goroutine, then copied under ring lock).
	totalNs int64
	errMsg  string
	nEvents int
	dropped int
	events  [maxChunkEvents]chunkEvent
}

// now stamps the start of a stage segment; nil-safe so the codec's direct
// entry points (alloc tests, library reuse) pay nothing.
func (sp *reqSpan) now() time.Time {
	if sp == nil {
		return time.Time{}
	}
	return time.Now()
}

// observe closes a stage segment opened with now, accumulating its
// duration and — when the request is sampled — recording a chunk event.
// Zero-alloc: atomics plus a write into the slot's fixed array.
func (sp *reqSpan) observe(st stage, t0 time.Time) {
	if sp == nil {
		return
	}
	d := time.Since(t0).Nanoseconds()
	sp.stageNs[st].Add(d)
	sp.curStage.Store(int32(st))
	if !sp.sampled {
		return
	}
	if sp.nEvents >= maxChunkEvents {
		sp.dropped++
		return
	}
	sp.events[sp.nEvents] = chunkEvent{stage: st, startNs: t0.Sub(sp.start).Nanoseconds(), durNs: d}
	sp.nEvents++
}

// observeSub is observe minus subNs nanoseconds — the decompress path
// derives codec time as the Next*Into call minus the body reads it
// triggered (which the countingReader attributed to stageRead already).
func (sp *reqSpan) observeSub(st stage, t0 time.Time, subNs int64) {
	if sp == nil {
		return
	}
	ns := time.Since(t0).Nanoseconds() - subNs
	if ns < 0 {
		ns = 0
	}
	sp.stageNs[st].Add(ns)
	sp.curStage.Store(int32(st))
	if !sp.sampled {
		return
	}
	if sp.nEvents >= maxChunkEvents {
		sp.dropped++
		return
	}
	sp.events[sp.nEvents] = chunkEvent{stage: st, startNs: t0.Sub(sp.start).Nanoseconds(), durNs: ns}
	sp.nEvents++
}

// accum adds to a stage without recording a chunk event (fine-grained
// body reads would flood the event cap; their sum still lands in the
// stage totals and the Server-Timing trailer).
func (sp *reqSpan) accum(st stage, t0 time.Time) {
	if sp == nil {
		return
	}
	sp.stageNs[st].Add(time.Since(t0).Nanoseconds())
}

// stageTotal reads a stage accumulator; nil-safe.
func (sp *reqSpan) stageTotal(st stage) int64 {
	if sp == nil {
		return 0
	}
	return sp.stageNs[st].Load()
}

// addBytes accumulates request/response volume for the live view.
func (sp *reqSpan) addBytes(in, out int64) {
	if sp == nil {
		return
	}
	sp.bytesIn.Add(in)
	sp.bytesOut.Add(out)
}

// addChunk counts one processed chunk.
func (sp *reqSpan) addChunk() {
	if sp == nil {
		return
	}
	sp.chunks.Add(1)
}

// addCacheHit tags one chunk served from the cache (resident or coalesced).
func (sp *reqSpan) addCacheHit() {
	if sp == nil {
		return
	}
	sp.cacheHits.Add(1)
}

// addCacheMiss tags one chunk the codec had to compute.
func (sp *reqSpan) addCacheMiss() {
	if sp == nil {
		return
	}
	sp.cacheMisses.Add(1)
}

// serverTiming renders the span as a Server-Timing header value
// (durations in milliseconds, the header's unit).
func (sp *reqSpan) serverTiming(totalNs int64) string {
	var b []byte
	for st := stage(0); st < numStages; st++ {
		if st > 0 {
			b = append(b, ',', ' ')
		}
		b = append(b, stageNames[st]...)
		b = append(b, ";dur="...)
		b = strconv.AppendFloat(b, float64(sp.stageNs[st].Load())/1e6, 'f', 3, 64)
	}
	b = append(b, ", total;dur="...)
	b = strconv.AppendFloat(b, float64(totalNs)/1e6, 'f', 3, 64)
	return string(b)
}

// reqRecord is a finished span, copied by value into the rings.
type reqRecord struct {
	seq      uint64
	id       traceID
	endpoint uint8
	status   int
	worker   int32
	tenant   string
	start    time.Time
	totalNs  int64
	stageNs  [numStages]int64
	bytesIn     int64
	bytesOut    int64
	chunks      int64
	cacheHits   int64
	cacheMisses int64
	errMsg      string
	nEvents     int
	dropped     int
	events      [maxChunkEvents]chunkEvent
}

func (rec *reqRecord) waitNs() int64 { return rec.stageNs[stageAdmit] + rec.stageNs[stageWorker] }

// tracer owns the request-span slots, the completed-request rings and the
// access log. Slots are preallocated to the admission bound, so acquiring
// one never blocks and never allocates.
type tracer struct {
	every    int // sample 1-in-every requests into the rings (0 = off)
	logEvery int // sample 1-in-logEvery requests into the access log
	epoch    time.Time
	seq      atomic.Uint64
	finished atomic.Uint64
	sampled  atomic.Uint64
	dropped  atomic.Uint64 // chunk events dropped past maxChunkEvents

	slots []*reqSpan
	free  chan *reqSpan

	ringMu sync.Mutex
	recent []reqRecord // sampled requests, newest overwrites oldest
	next   int
	filled bool
	slow   []reqRecord // slowest-N over all finished requests
	nSlow  int

	logMu     sync.Mutex
	accessLog io.Writer
}

func newTracer(slots int, cfg Config) *tracer {
	t := &tracer{
		every:     cfg.TraceEvery,
		logEvery:  cfg.AccessLogEvery,
		epoch:     time.Now(),
		slots:     make([]*reqSpan, slots),
		free:      make(chan *reqSpan, slots),
		recent:    make([]reqRecord, cfg.TraceRing),
		slow:      make([]reqRecord, cfg.SlowRing),
		accessLog: cfg.AccessLog,
	}
	for i := range t.slots {
		t.slots[i] = &reqSpan{}
		t.free <- t.slots[i]
	}
	return t
}

// ids resolves the request's trace identity: the client's traceparent
// when present and valid, fresh ids otherwise. self is the server-side
// span id echoed back.
func (t *tracer) ids(r *http.Request) (tid traceID, parent, self spanID) {
	if got, p, ok := parseTraceparent(r.Header.Get("traceparent")); ok {
		tid, parent = got, p
	} else {
		tid = newTraceID()
	}
	return tid, parent, newSpanID()
}

// acquire claims a slot for an admitted request. The admission semaphore
// bounds concurrent /v1 requests to len(slots), so the receive never
// blocks.
func (t *tracer) acquire(tid traceID, parent, self spanID, endpoint uint8, start time.Time, tenant string) *reqSpan {
	sp := <-t.free
	seq := t.seq.Add(1)
	sp.mu.Lock()
	sp.busy = true
	sp.seq = seq
	sp.id = tid
	sp.parent = parent
	sp.self = self
	sp.endpoint = endpoint
	sp.start = start
	sp.worker = -1
	sp.tenant = tenant
	sp.sampled = t.every > 0 && seq%uint64(t.every) == 0
	sp.mu.Unlock()
	sp.status.Store(0)
	sp.curStage.Store(int32(stageAdmit))
	sp.bytesIn.Store(0)
	sp.bytesOut.Store(0)
	sp.chunks.Store(0)
	sp.cacheHits.Store(0)
	sp.cacheMisses.Store(0)
	for i := range sp.stageNs {
		sp.stageNs[i].Store(0)
	}
	sp.totalNs = 0
	sp.errMsg = ""
	sp.nEvents = 0
	sp.dropped = 0
	return sp
}

// finish seals a span, publishes it to the rings and the access log, and
// frees its slot.
func (t *tracer) finish(sp *reqSpan) {
	sp.totalNs = time.Since(sp.start).Nanoseconds()
	t.finished.Add(1)
	if sp.dropped > 0 {
		t.dropped.Add(uint64(sp.dropped))
	}

	var rec reqRecord
	rec.seq = sp.seq
	rec.id = sp.id
	rec.endpoint = sp.endpoint
	rec.status = int(sp.status.Load())
	rec.worker = sp.worker
	rec.tenant = sp.tenant
	rec.start = sp.start
	rec.totalNs = sp.totalNs
	for i := range rec.stageNs {
		rec.stageNs[i] = sp.stageNs[i].Load()
	}
	rec.bytesIn = sp.bytesIn.Load()
	rec.bytesOut = sp.bytesOut.Load()
	rec.chunks = sp.chunks.Load()
	rec.cacheHits = sp.cacheHits.Load()
	rec.cacheMisses = sp.cacheMisses.Load()
	rec.errMsg = sp.errMsg
	rec.nEvents = sp.nEvents
	rec.dropped = sp.dropped
	copy(rec.events[:sp.nEvents], sp.events[:sp.nEvents])

	if sp.sampled {
		t.sampled.Add(1)
	}
	t.ringMu.Lock()
	if sp.sampled && len(t.recent) > 0 {
		t.recent[t.next] = rec
		t.next++
		if t.next == len(t.recent) {
			t.next = 0
			t.filled = true
		}
	}
	// Slowest-N over every finished request: replace the current minimum
	// when the new span is slower (linear scan; N is small).
	if len(t.slow) > 0 {
		if t.nSlow < len(t.slow) {
			t.slow[t.nSlow] = rec
			t.nSlow++
		} else {
			minIdx := 0
			for i := 1; i < t.nSlow; i++ {
				if t.slow[i].totalNs < t.slow[minIdx].totalNs {
					minIdx = i
				}
			}
			if rec.totalNs > t.slow[minIdx].totalNs {
				t.slow[minIdx] = rec
			}
		}
	}
	t.ringMu.Unlock()

	if t.accessLog != nil && (t.logEvery <= 1 || sp.seq%uint64(t.logEvery) == 0) {
		t.logAccess(&rec)
	}

	sp.mu.Lock()
	sp.busy = false
	sp.mu.Unlock()
	t.free <- sp
}

// accessEntry is one structured access-log line.
type accessEntry struct {
	Time        string `json:"ts"`
	ID          string `json:"id"`
	Endpoint    string `json:"endpoint"`
	Status      int    `json:"status"`
	Worker      int32  `json:"worker"`
	BytesIn     int64  `json:"bytes_in"`
	BytesOut    int64  `json:"bytes_out"`
	Chunks      int64  `json:"chunks"`
	CacheHits   int64  `json:"cache_hits,omitempty"`
	CacheMisses int64  `json:"cache_misses,omitempty"`
	Tenant      string `json:"tenant,omitempty"`
	AdmitUS     int64  `json:"admit_us"`
	WorkerUS    int64  `json:"worker_us"`
	ReadUS      int64  `json:"read_us"`
	CacheUS     int64  `json:"cache_us,omitempty"`
	CodecUS     int64  `json:"codec_us"`
	WriteUS     int64  `json:"write_us"`
	TotalUS     int64  `json:"total_us"`
	Err         string `json:"err,omitempty"`
}

func (t *tracer) logAccess(rec *reqRecord) {
	e := accessEntry{
		Time:        rec.start.UTC().Format(time.RFC3339Nano),
		ID:          rec.id.String(),
		Endpoint:    epNames[rec.endpoint],
		Status:      rec.status,
		Worker:      rec.worker,
		Tenant:      rec.tenant,
		BytesIn:     rec.bytesIn,
		BytesOut:    rec.bytesOut,
		Chunks:      rec.chunks,
		CacheHits:   rec.cacheHits,
		CacheMisses: rec.cacheMisses,
		AdmitUS:     rec.stageNs[stageAdmit] / 1e3,
		WorkerUS:    rec.stageNs[stageWorker] / 1e3,
		ReadUS:      rec.stageNs[stageRead] / 1e3,
		CacheUS:     rec.stageNs[stageCache] / 1e3,
		CodecUS:     rec.stageNs[stageCodec] / 1e3,
		WriteUS:     rec.stageNs[stageWrite] / 1e3,
		TotalUS:     rec.totalNs / 1e3,
		Err:         rec.errMsg,
	}
	b, err := json.Marshal(e)
	if err != nil {
		return
	}
	b = append(b, '\n')
	t.logMu.Lock()
	_, _ = t.accessLog.Write(b)
	t.logMu.Unlock()
}

// snapshotRecords returns the recent and slowest rings merged (dedup by
// sequence number), sorted by start time.
func (t *tracer) snapshotRecords() []reqRecord {
	t.ringMu.Lock()
	n := t.next
	if t.filled {
		n = len(t.recent)
	}
	out := make([]reqRecord, 0, n+t.nSlow)
	seen := make(map[uint64]bool, n+t.nSlow)
	for i := 0; i < n; i++ {
		out = append(out, t.recent[i])
		seen[t.recent[i].seq] = true
	}
	for i := 0; i < t.nSlow; i++ {
		if !seen[t.slow[i].seq] {
			out = append(out, t.slow[i])
		}
	}
	t.ringMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].start.Before(out[j].start) })
	return out
}

// recordJSON is one finished request in the /debug/requests view.
type recordJSON struct {
	ID          string `json:"id"`
	Endpoint    string `json:"endpoint"`
	Status      int    `json:"status"`
	Worker      int32  `json:"worker"`
	Tenant      string `json:"tenant,omitempty"`
	Start       string `json:"start"`
	TotalUS     int64  `json:"total_us"`
	AdmitUS     int64  `json:"admit_us"`
	WorkerUS    int64  `json:"worker_us"`
	ReadUS      int64  `json:"read_us"`
	CacheUS     int64  `json:"cache_us,omitempty"`
	CodecUS     int64  `json:"codec_us"`
	WriteUS     int64  `json:"write_us"`
	BytesIn     int64  `json:"bytes_in"`
	BytesOut    int64  `json:"bytes_out"`
	Chunks      int64  `json:"chunks"`
	CacheHits   int64  `json:"cache_hits,omitempty"`
	CacheMisses int64  `json:"cache_misses,omitempty"`
	Err         string `json:"err,omitempty"`
}

func recordToJSON(rec *reqRecord) recordJSON {
	return recordJSON{
		ID:          rec.id.String(),
		Endpoint:    epNames[rec.endpoint],
		Status:      rec.status,
		Worker:      rec.worker,
		Tenant:      rec.tenant,
		Start:       rec.start.UTC().Format(time.RFC3339Nano),
		TotalUS:     rec.totalNs / 1e3,
		AdmitUS:     rec.stageNs[stageAdmit] / 1e3,
		WorkerUS:    rec.stageNs[stageWorker] / 1e3,
		ReadUS:      rec.stageNs[stageRead] / 1e3,
		CacheUS:     rec.stageNs[stageCache] / 1e3,
		CodecUS:     rec.stageNs[stageCodec] / 1e3,
		WriteUS:     rec.stageNs[stageWrite] / 1e3,
		BytesIn:     rec.bytesIn,
		BytesOut:    rec.bytesOut,
		Chunks:      rec.chunks,
		CacheHits:   rec.cacheHits,
		CacheMisses: rec.cacheMisses,
		Err:         rec.errMsg,
	}
}

// inflightJSON is one in-flight request in the /debug/requests view.
type inflightJSON struct {
	ID       string `json:"id"`
	Endpoint string `json:"endpoint"`
	Worker   int32  `json:"worker"`
	Tenant   string `json:"tenant,omitempty"`
	AgeUS    int64  `json:"age_us"`
	Stage    string `json:"stage"`
	BytesIn  int64  `json:"bytes_in"`
	BytesOut int64  `json:"bytes_out"`
	Chunks   int64  `json:"chunks"`
}

// requestsView is the /debug/requests response document.
type requestsView struct {
	Now           string         `json:"now"`
	Finished      uint64         `json:"finished"`
	Sampled       uint64         `json:"sampled"`
	DroppedEvents uint64         `json:"dropped_chunk_events"`
	InFlight      []inflightJSON `json:"in_flight"`
	Slowest       []recordJSON   `json:"slowest"`
}

// RequestsHandler serves the /debug/requests JSON view: requests in
// flight right now (id, stage, age, volume) and the slowest-N ring.
func (s *Server) RequestsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		t := s.tr
		now := time.Now()
		view := requestsView{
			Now:           now.UTC().Format(time.RFC3339Nano),
			Finished:      t.finished.Load(),
			Sampled:       t.sampled.Load(),
			DroppedEvents: t.dropped.Load(),
			InFlight:      []inflightJSON{},
			Slowest:       []recordJSON{},
		}
		for _, sp := range t.slots {
			sp.mu.Lock()
			if sp.busy {
				view.InFlight = append(view.InFlight, inflightJSON{
					ID:       sp.id.String(),
					Endpoint: epNames[sp.endpoint],
					Worker:   sp.worker,
					Tenant:   sp.tenant,
					AgeUS:    now.Sub(sp.start).Microseconds(),
					Stage:    stageNames[stage(sp.curStage.Load())],
					BytesIn:  sp.bytesIn.Load(),
					BytesOut: sp.bytesOut.Load(),
					Chunks:   sp.chunks.Load(),
				})
			}
			sp.mu.Unlock()
		}
		t.ringMu.Lock()
		slow := make([]reqRecord, t.nSlow)
		copy(slow, t.slow[:t.nSlow])
		t.ringMu.Unlock()
		sort.Slice(slow, func(i, j int) bool { return slow[i].totalNs > slow[j].totalNs })
		for i := range slow {
			view.Slowest = append(view.Slowest, recordToJSON(&slow[i]))
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(view)
	})
}

// TraceHandler serves the sampled request spans as a Chrome trace-event
// JSON array (/debug/trace): one track per codec worker carrying the
// handler slice with nested per-chunk read/codec/write slices, pending
// lanes carrying the pre-worker wait, and a flow arrow linking each
// request's wait to its execution — load it in ui.perfetto.dev next to a
// simulator span trace.
func (s *Server) TraceHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = s.tr.writeChromeTrace(w, s.cfg.Workers)
	})
}

// pendingLaneBase offsets the wait-slice tracks away from worker tracks.
const pendingLaneBase = 1000

// writeChromeTrace renders the merged rings as Chrome trace events.
// Timestamps are microseconds since the tracer epoch (server start).
func (t *tracer) writeChromeTrace(w io.Writer, workers int) error {
	recs := t.snapshotRecords()
	tw := telemetry.NewChromeTraceWriter(w)
	for i := 0; i < workers; i++ {
		tw.Emit(telemetry.ThreadName(0, i, fmt.Sprintf("worker %d", i)))
	}

	// Assign each request's pre-worker wait interval to the first free
	// pending lane (records are sorted by start, so a greedy sweep packs
	// overlapping waits onto distinct lanes).
	var laneFree []int64 // per lane: when its current wait ends (µs)
	lane := func(startUS, endUS int64) int {
		for i, free := range laneFree {
			if free <= startUS {
				laneFree[i] = endUS
				return i
			}
		}
		laneFree = append(laneFree, endUS)
		l := len(laneFree) - 1
		tw.Emit(telemetry.ThreadName(0, pendingLaneBase+l, fmt.Sprintf("pending %d", l)))
		return l
	}

	for i := range recs {
		rec := &recs[i]
		startUS := rec.start.Sub(t.epoch).Microseconds()
		waitUS := rec.waitNs() / 1e3
		totalUS := rec.totalNs / 1e3
		if totalUS < 1 {
			totalUS = 1
		}
		handleUS := totalUS - waitUS
		if handleUS < 1 {
			handleUS = 1
		}
		tid := int(rec.worker)
		if tid < 0 {
			tid = 0
		}
		flowID := strconv.FormatUint(rec.seq, 10)
		ep := epNames[rec.endpoint]

		waitLane := lane(startUS, startUS+waitUS)
		tw.Emit(telemetry.ChromeEvent{
			Name: "wait", Cat: ep, Ph: "X",
			Ts: startUS, Dur: maxI64(waitUS, 1), Pid: 0, Tid: pendingLaneBase + waitLane,
			Cname: "yellow",
			Args: map[string]any{
				"id": rec.id.String(), "admit_us": rec.stageNs[stageAdmit] / 1e3,
				"worker_us": rec.stageNs[stageWorker] / 1e3,
			},
		})
		tw.Emit(telemetry.ChromeEvent{Name: "request", Cat: ep, Ph: "s",
			Ts: startUS, Pid: 0, Tid: pendingLaneBase + waitLane, ID: flowID})

		handleArgs := map[string]any{
			"id": rec.id.String(), "status": rec.status,
			"bytes_in": rec.bytesIn, "bytes_out": rec.bytesOut, "chunks": rec.chunks,
			"read_us":  rec.stageNs[stageRead] / 1e3,
			"codec_us": rec.stageNs[stageCodec] / 1e3,
			"write_us": rec.stageNs[stageWrite] / 1e3,
		}
		if rec.cacheHits > 0 || rec.cacheMisses > 0 {
			handleArgs["cache_us"] = rec.stageNs[stageCache] / 1e3
			handleArgs["cache_hits"] = rec.cacheHits
			handleArgs["cache_misses"] = rec.cacheMisses
		}
		if rec.tenant != "" {
			handleArgs["tenant"] = rec.tenant
		}
		if rec.dropped > 0 {
			handleArgs["dropped_chunk_events"] = rec.dropped
		}
		if rec.errMsg != "" {
			handleArgs["err"] = rec.errMsg
		}
		tw.Emit(telemetry.ChromeEvent{
			Name: ep, Cat: ep, Ph: "X",
			Ts: startUS + waitUS, Dur: handleUS, Pid: 0, Tid: tid,
			Cname: "good", Args: handleArgs,
		})
		tw.Emit(telemetry.ChromeEvent{Name: "request", Cat: ep, Ph: "f", BP: "e",
			Ts: startUS + waitUS, Pid: 0, Tid: tid, ID: flowID})

		for _, ev := range rec.events[:rec.nEvents] {
			tw.Emit(telemetry.ChromeEvent{
				Name: stageNames[ev.stage], Cat: "chunk", Ph: "X",
				Ts: startUS + ev.startNs/1e3, Dur: maxI64(ev.durNs/1e3, 1),
				Pid: 0, Tid: tid,
			})
		}
	}
	return tw.Close()
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
