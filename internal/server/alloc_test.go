package server

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"testing"

	"ceresz"
)

// TestCompressHotPathZeroAlloc asserts the acceptance criterion: once a
// worker's codec is warm, compressing a chunk — raw bytes in, CSZF frame
// out — touches the heap zero times. This is the per-chunk path
// handleCompress runs; everything above it (params, admission) is
// per-request.
func TestCompressHotPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; zero-alloc contract checked without -race")
	}
	const elems = 4100 // includes a partial trailing chunk at chunk=1024
	data := testData(elems, 42)
	raw := make([]byte, 4*elems)
	for i, v := range data {
		binary.LittleEndian.PutUint32(raw[4*i:], math.Float32bits(v))
	}
	p := cparams{
		bound:      ceresz.ABS(1e-3),
		abs:        true,
		elem:       ceresz.Float32,
		chunkElems: 1024,
		opts:       ceresz.Options{Workers: 1},
	}
	c := newCodec(0)
	r := bytes.NewReader(raw)
	runOnce := func() {
		r.Reset(raw)
		for {
			frame, _, err := c.nextFrameF32(r, p)
			if err == io.EOF {
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if _, err := io.Discard.Write(frame); err != nil {
				t.Fatal(err)
			}
		}
	}
	runOnce() // warm the codec's buffers and the library's encoder pool
	allocs := testing.AllocsPerRun(20, runOnce)
	if allocs != 0 {
		t.Fatalf("steady-state compress hot path allocates %.1f times per run, want 0", allocs)
	}
}

// TestDecompressHotPathZeroAlloc asserts the mirror contract for the
// decode path: one warm StreamReader per codec, zero allocations per frame.
func TestDecompressHotPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; zero-alloc contract checked without -race")
	}
	var buf bytes.Buffer
	sw := ceresz.NewStreamWriter(&buf, ceresz.ABS(1e-3), ceresz.Options{Workers: 1})
	for start := 0; start < 4100; start += 1024 {
		end := start + 1024
		if end > 4100 {
			end = 4100
		}
		if _, err := sw.WriteChunk(testData(4100, 42)[start:end]); err != nil {
			t.Fatal(err)
		}
	}
	framed := buf.Bytes()

	c := newCodec(0)
	c.sr.SetLimits(64<<20, 4<<20)
	r := bytes.NewReader(framed)
	runOnce := func() {
		r.Reset(framed)
		c.sr.Reset(r)
		for {
			var err error
			c.f32, err = c.sr.NextInto(c.f32[:0])
			if err == io.EOF {
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if _, err := io.Discard.Write(c.encodeF32(c.f32)); err != nil {
				t.Fatal(err)
			}
		}
	}
	runOnce()
	allocs := testing.AllocsPerRun(20, runOnce)
	if allocs != 0 {
		t.Fatalf("steady-state decompress hot path allocates %.1f times per run, want 0", allocs)
	}
}
