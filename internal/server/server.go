// Package server is the cereszd serving subsystem: an HTTP front end over
// the library's zero-alloc compression hot paths. The design goal is the
// ROADMAP's "heavy traffic" shape — bounded concurrency, explicit
// backpressure, and no per-chunk heap allocations in steady state:
//
//   - a fixed worker pool owns per-worker codec state (pooled buffers +
//     the sequential CompressInto/NextInto entry points), so throughput
//     scales with cores without GC pressure;
//   - an admission queue bounds the requests waiting for a worker; when it
//     overflows the server answers 429 with a Retry-After hint instead of
//     queueing unboundedly (clients — client/ — back off and retry);
//   - request limits (body bytes, chunk elements, frame bytes) are
//     enforced before any input-sized allocation, leaning on the
//     hardened StreamReader/OpenBundleLimited decode paths;
//   - every endpoint reports request/byte counters and latency histograms
//     through internal/telemetry, so /debug/metrics exposes p50/p95/p99
//     per endpoint in the Prometheus text format.
//
// Wire format: /v1/compress turns a raw little-endian float body into the
// package's CSZF framed stream (one independently-decodable container per
// chunk — the on-disk streaming format, so a StreamReader consumes
// responses directly); /v1/decompress inverts it;
// /v1/bundle assembles a multi-field CSZB bundle (or extracts one member
// with ?field=).
package server

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"ceresz"
	"ceresz/internal/chunkcache"
	"ceresz/internal/core"
	"ceresz/internal/hostpool"
	"ceresz/internal/telemetry"
)

// Config tunes a Server. The zero value serves with GOMAXPROCS workers, a
// 2×workers admission queue, 1 GiB request bodies, 64 Ki-element chunks
// and a 1-second Retry-After hint.
type Config struct {
	// Workers is the codec pool size (0 = GOMAXPROCS). It bounds the
	// requests compressing/decompressing concurrently.
	Workers int
	// QueueDepth is how many admitted requests may wait for a worker
	// beyond the Workers executing (0 = 2×Workers, negative = 0).
	QueueDepth int
	// HostWorkers is the intra-request parallelism budget: how many host
	// codec shards the executing requests may use in total (0 or 1 =
	// sequential per request, the zero-alloc path; negative = GOMAXPROCS).
	// The budget is split across the requests currently executing, so one
	// big request alone uses every core while a saturated pool degrades
	// each request to the sequential path — never oversubscribing.
	HostWorkers int
	// MaxBodyBytes caps a request body (0 = 1 GiB).
	MaxBodyBytes int64
	// MaxChunkElems caps the elements in one chunk, one decoded frame and
	// one bundle field (0 = 4 Mi elements).
	MaxChunkElems int
	// MaxFrameBytes caps a compressed frame or bundle member accepted on
	// the decode path (0 = 64 MiB).
	MaxFrameBytes int
	// ChunkElems is the compress-side default elements per frame when the
	// request does not pass ?chunk= (0 = 64 Ki).
	ChunkElems int
	// RetryAfter is the hint returned with 429/503 responses (0 = 1s).
	RetryAfter time.Duration
	// CacheBytes is the content-addressed chunk cache's memory budget
	// (values plus per-entry overhead). 0 disables caching entirely —
	// every chunk runs the codec, exactly the pre-cache behavior.
	CacheBytes int64
	// BlockLen overrides the CereSZ block length (0 = 32, the paper's).
	BlockLen int
	// Registry receives the server's instruments (nil = telemetry.Default).
	Registry *telemetry.Registry
	// TraceEvery samples 1-in-N requests into the span rings and the
	// /debug/trace Chrome-trace export (0 = sampling off; request ids,
	// stage timings, Server-Timing trailers and RED metrics stay on).
	TraceEvery int
	// TraceRing is the sampled-request ring size (0 = 256).
	TraceRing int
	// SlowRing is the slowest-request ring size, fed by every finished
	// request regardless of sampling (0 = 32).
	SlowRing int
	// AccessLog receives structured JSON access-log lines (nil = off).
	AccessLog io.Writer
	// AccessLogEvery samples 1-in-N requests into AccessLog (0 or 1 =
	// every request).
	AccessLogEvery int
	// RollupInterval is the windowed time-series interval: the server
	// aggregates its instruments into per-interval rate/quantile windows
	// (/debug/timeseries, the _rate and _window Prometheus series) off the
	// hot path. 0 leaves rollups off unless Objectives or FlightDir need
	// them (then 5s); negative forces them off.
	RollupInterval time.Duration
	// RollupWindows is the rollup ring capacity (0 = 720 — one hour of 5s
	// windows).
	RollupWindows int
	// Objectives are the server's SLOs, evaluated over the rollup ring
	// into /debug/slo, ceresz_slo_* gauges and the readiness probe's
	// degraded detail. Build them with ParseObjectives.
	Objectives []telemetry.Objective
	// SLODegradedBurn is the 5m burn rate at which an objective reports
	// degraded (0 = telemetry.DefaultDegradedBurn).
	SLODegradedBurn float64
	// FlightDir enables the anomaly-triggered flight recorder: incident
	// dumps (rollup windows + SLO state + runtime health + Chrome trace)
	// land here ("" = off).
	FlightDir string
	// FlightMinInterval rate-limits trigger-initiated incident dumps
	// (0 = 30s).
	FlightMinInterval time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 2 * c.Workers
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	if c.HostWorkers < 0 {
		c.HostWorkers = runtime.GOMAXPROCS(0)
	}
	if c.HostWorkers == 0 {
		c.HostWorkers = 1
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 30
	}
	if c.MaxChunkElems <= 0 {
		c.MaxChunkElems = 4 << 20
	}
	if c.MaxFrameBytes <= 0 {
		c.MaxFrameBytes = 64 << 20
	}
	if c.ChunkElems <= 0 {
		c.ChunkElems = 64 << 10
	}
	if c.ChunkElems > c.MaxChunkElems {
		c.ChunkElems = c.MaxChunkElems
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Registry == nil {
		c.Registry = telemetry.Default
	}
	if c.TraceRing <= 0 {
		c.TraceRing = 256
	}
	if c.SlowRing <= 0 {
		c.SlowRing = 32
	}
	if c.AccessLogEvery <= 0 {
		c.AccessLogEvery = 1
	}
	// SLOs and the flight recorder evaluate over rollup windows, so either
	// one pulls the rollup layer in at its default cadence.
	if c.RollupInterval == 0 && (len(c.Objectives) > 0 || c.FlightDir != "") {
		c.RollupInterval = 5 * time.Second
	}
	return c
}

// epMetrics is one endpoint's instrument set — the RED triple (request
// rate, errors by class plus explicit 429 rejections, latency quantiles)
// plus volume counters and per-stage latency histograms.
type epMetrics struct {
	ep        uint8
	requests  *telemetry.Counter
	failures  *telemetry.Counter
	rejected  *telemetry.Counter
	status2xx *telemetry.Counter
	status4xx *telemetry.Counter
	status5xx *telemetry.Counter
	bytesIn   *telemetry.Counter
	bytesOut  *telemetry.Counter
	chunks    *telemetry.Counter
	latencyUS *telemetry.Histogram
	stageUS   [numStages]*telemetry.Histogram
}

// epMetricHelp documents each endpoint instrument's suffix; the text rides
// registration into the Prometheus exposition as # HELP lines.
var epMetricHelp = [...]struct{ suffix, help string }{
	{"requests", "Requests admitted past admission control."},
	{"failures", "Requests whose handler returned an error."},
	{"rejected", "Requests refused with 429 by admission control."},
	{"status_2xx", "Responses with a 2xx status."},
	{"status_4xx", "Responses with a 4xx status (429 rejections included)."},
	{"status_5xx", "Responses with a 5xx status."},
	{"bytes_in", "Request payload bytes consumed."},
	{"bytes_out", "Response payload bytes written."},
	{"chunks", "Chunks (frames / bundle fields) processed."},
	{"latency_us", "End-to-end request latency in microseconds."},
}

func newEpMetrics(reg *telemetry.Registry, ep uint8) *epMetrics {
	name := epNames[ep]
	m := &epMetrics{
		ep:        ep,
		requests:  reg.Counter("server." + name + ".requests"),
		failures:  reg.Counter("server." + name + ".failures"),
		rejected:  reg.Counter("server." + name + ".rejected"),
		status2xx: reg.Counter("server." + name + ".status_2xx"),
		status4xx: reg.Counter("server." + name + ".status_4xx"),
		status5xx: reg.Counter("server." + name + ".status_5xx"),
		bytesIn:   reg.Counter("server." + name + ".bytes_in"),
		bytesOut:  reg.Counter("server." + name + ".bytes_out"),
		chunks:    reg.Counter("server." + name + ".chunks"),
		latencyUS: reg.Histogram("server." + name + ".latency_us"),
	}
	for _, h := range epMetricHelp {
		reg.Describe("server."+name+"."+h.suffix, "/v1/"+name+": "+h.help)
	}
	for st := stage(0); st < numStages; st++ {
		m.stageUS[st] = reg.Histogram("server." + name + "." + stageNames[st] + "_us")
		reg.Describe("server."+name+"."+stageNames[st]+"_us",
			"/v1/"+name+": time spent in the "+stageNames[st]+" stage, microseconds.")
	}
	return m
}

// observeStatus bumps the endpoint's status-class counter.
func (m *epMetrics) observeStatus(code int) {
	switch {
	case code >= 200 && code < 300:
		m.status2xx.Add(1)
	case code >= 400 && code < 500:
		m.status4xx.Add(1)
	case code >= 500:
		m.status5xx.Add(1)
	}
}

// Server is the serving subsystem. Create with New, mount with Handler.
type Server struct {
	cfg    Config
	codecs chan *codec   // worker pool: free codec state
	sem    chan struct{} // admission: executing + queued requests
	tr     *tracer       // request spans, rings, access log
	// cache memoizes per-chunk codec results (nil when Config.CacheBytes
	// is 0 — the handlers then run the exact pre-cache code path).
	cache *chunkcache.Cache
	// rollup / slo / flight are the fleet-health layer: windowed time
	// series over the registry, objectives evaluated over those windows,
	// and the anomaly-triggered incident dumper. All nil when their
	// Config knobs are off — the serving path never consults them.
	rollup *telemetry.Rollup
	slo    *telemetry.SLOEngine
	flight *telemetry.FlightRecorder

	draining atomic.Bool
	// ready gates the readiness probes: false before the daemon's listener
	// is accepting (cereszd flips it after net.Listen) and irrelevant once
	// draining (draining wins). New starts ready so embedded/test servers
	// need no extra call.
	ready atomic.Bool
	// executing counts requests currently holding a codec; the intra-
	// request worker budget (Config.HostWorkers) is divided by it.
	executing atomic.Int64
	// gauges mirror state for /debug/metrics; functional state never
	// lives in telemetry (a disabled registry makes gauges no-ops).
	drainGauge *telemetry.Gauge
	inflight   *telemetry.Gauge
	queueDepth *telemetry.Gauge
	// hostPeak / hostImbalance mirror the shared host pool's occupancy
	// atomics (internal/hostpool) into this server's registry, so cereszd's
	// private /debug/metrics sees them even with telemetry.Default off.
	hostPeak      *telemetry.Gauge
	hostImbalance *telemetry.Gauge

	mCompress   *epMetrics
	mDecompress *epMetrics
	mBundle     *epMetrics
}

// New returns a Server with its worker pool warm.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:           cfg,
		codecs:        make(chan *codec, cfg.Workers),
		sem:           make(chan struct{}, cfg.Workers+cfg.QueueDepth),
		tr:            newTracer(cfg.Workers+cfg.QueueDepth, cfg),
		drainGauge:    cfg.Registry.Gauge("server.draining"),
		inflight:      cfg.Registry.Gauge("server.inflight"),
		queueDepth:    cfg.Registry.Gauge("server.queue_depth"),
		hostPeak:      cfg.Registry.Gauge("server.host_pool_peak_workers"),
		hostImbalance: cfg.Registry.Gauge("server.host_shard_imbalance_pct"),
		mCompress:     newEpMetrics(cfg.Registry, epCompress),
		mDecompress:   newEpMetrics(cfg.Registry, epDecompress),
		mBundle:       newEpMetrics(cfg.Registry, epBundle),
	}
	cfg.Registry.Describe("server.draining", "1 while the server refuses new work to drain.")
	cfg.Registry.Describe("server.inflight", "Requests currently holding a codec worker.")
	cfg.Registry.Describe("server.queue_depth", "Admitted requests waiting for a codec worker.")
	cfg.Registry.Describe("server.host_pool_peak_workers", "Peak shared host-pool occupancy observed.")
	cfg.Registry.Describe("server.host_shard_imbalance_pct", "Last host-codec shard imbalance, percent.")
	s.ready.Store(true)
	if cfg.CacheBytes > 0 {
		s.cache = chunkcache.New(cfg.CacheBytes, cfg.Registry)
	}
	for i := 0; i < cfg.Workers; i++ {
		s.codecs <- newCodec(i)
	}
	if cfg.RollupInterval > 0 {
		s.rollup = telemetry.NewRollup(cfg.Registry, telemetry.RollupConfig{
			Interval: cfg.RollupInterval,
			Windows:  cfg.RollupWindows,
		})
		if len(cfg.Objectives) > 0 {
			s.slo = telemetry.NewSLOEngine(s.rollup, cfg.Objectives, cfg.SLODegradedBurn)
		}
		if cfg.FlightDir != "" {
			s.flight = telemetry.NewFlightRecorder(telemetry.FlightConfig{
				Dir:         cfg.FlightDir,
				MinInterval: cfg.FlightMinInterval,
			}, s.rollup, s.slo, func(buf *bytes.Buffer) error {
				return s.tr.writeChromeTrace(buf, cfg.Workers)
			})
		}
		s.rollup.Start()
	}
	return s
}

// Close stops the server's background work (the rollup ticker). The HTTP
// handlers stay functional — Close is about goroutine hygiene, not drain
// (SetDraining owns that).
func (s *Server) Close() {
	if s.rollup != nil {
		s.rollup.Stop()
	}
}

// Rollup returns the windowed time-series layer, nil when rollups are off.
func (s *Server) Rollup() *telemetry.Rollup { return s.rollup }

// SLO returns the objective engine, nil when no objectives are configured.
func (s *Server) SLO() *telemetry.SLOEngine { return s.slo }

// Flight returns the flight recorder, nil when no FlightDir is configured.
func (s *Server) Flight() *telemetry.FlightRecorder { return s.flight }

// Handler returns the server's mux: POST /v1/compress, /v1/decompress,
// /v1/bundle, GET /healthz, plus the request-observability views
// /debug/requests and /debug/trace (cereszd also mounts those two on its
// shared telemetry debug mux, which owns the /debug/ prefix there).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/v1/compress", s.admit(s.mCompress, s.handleCompress))
	mux.Handle("/v1/decompress", s.admit(s.mDecompress, s.handleDecompress))
	mux.Handle("/v1/bundle", s.admit(s.mBundle, s.handleBundle))
	mux.HandleFunc("/healthz", s.handleReady) // back-compat alias for readiness
	mux.HandleFunc("/healthz/live", s.handleLive)
	mux.HandleFunc("/healthz/ready", s.handleReady)
	mux.Handle("/debug/metrics", s.cfg.Registry.MetricsHandler())
	mux.Handle("/debug/requests", s.RequestsHandler())
	mux.Handle("/debug/trace", s.TraceHandler())
	mux.Handle("/debug/timeseries", s.TimeseriesHandler())
	mux.Handle("/debug/slo", s.SLOHandler())
	mux.Handle("/debug/flight", s.FlightHandler())
	mux.Handle("/debug/flight/dump", s.FlightDumpHandler())
	return mux
}

// notConfigured is the debug response for a fleet-health view whose layer
// is switched off, so a probe distinguishes "off" from "wrong path".
func notConfigured(what string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, what+" not configured", http.StatusNotFound)
	})
}

// TimeseriesHandler serves the rollup ring (/debug/timeseries); 404 when
// rollups are off.
func (s *Server) TimeseriesHandler() http.Handler {
	if s.rollup == nil {
		return notConfigured("rollup time series")
	}
	return s.rollup.Handler()
}

// SLOHandler serves the objective evaluation (/debug/slo); 404 when no
// objectives are configured.
func (s *Server) SLOHandler() http.Handler {
	if s.slo == nil {
		return notConfigured("slo objectives")
	}
	return s.slo.Handler()
}

// FlightHandler serves the flight recorder's status (/debug/flight); 404
// when no flight dir is configured.
func (s *Server) FlightHandler() http.Handler {
	if s.flight == nil {
		return notConfigured("flight recorder")
	}
	return s.flight.StatusHandler()
}

// FlightDumpHandler forces an incident dump (POST /debug/flight/dump);
// 404 when no flight dir is configured.
func (s *Server) FlightDumpHandler() http.Handler {
	if s.flight == nil {
		return notConfigured("flight recorder")
	}
	return s.flight.DumpHandler()
}

// SetDraining flips drain mode: /healthz answers 503 so load balancers
// stop routing here, and new /v1/* work is refused with Retry-After while
// in-flight requests finish (http.Server.Shutdown waits for those).
func (s *Server) SetDraining(on bool) {
	s.draining.Store(on)
	v := int64(0)
	if on {
		v = 1
	}
	s.drainGauge.Set(v)
}

// Draining reports drain mode.
func (s *Server) Draining() bool { return s.draining.Load() }

// SetReady flips the readiness probes. A daemon that wants load balancers
// to wait for its listener calls SetReady(false) before serving and
// SetReady(true) once the socket accepts; embedded servers never need to
// (New starts ready).
func (s *Server) SetReady(on bool) { s.ready.Store(on) }

// Ready reports whether the server is accepting work: ready and not
// draining.
func (s *Server) Ready() bool { return s.ready.Load() && !s.draining.Load() }

// handleLive is the liveness probe: 200 whenever the process responds at
// all — restarting a draining-but-alive daemon would lose its in-flight
// requests, so drain state must not look dead.
func (s *Server) handleLive(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"alive"}`)
}

// readySLODetail is one burning objective in a degraded readiness body.
type readySLODetail struct {
	Spec            string  `json:"spec"`
	BurnRate5m      float64 `json:"burn_rate_5m"`
	BudgetRemaining float64 `json:"budget_remaining"`
}

// handleReady is the readiness probe (also served at /healthz for
// back-compat): 503 before the daemon's listener is up and while
// draining, so load balancers route traffic only to servers that will
// accept it. An SLO burning fast degrades the body detail but stays 200 —
// a degraded server still serves, and yanking it from rotation would turn
// a latency incident into an availability one.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	switch {
	case s.Draining():
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"draining"}`)
	case !s.ready.Load():
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"starting"}`)
	default:
		if s.slo != nil {
			if statuses, degraded := s.slo.Degraded(); degraded {
				details := make([]readySLODetail, 0, len(statuses))
				for _, st := range statuses {
					if st.Degraded {
						details = append(details, readySLODetail{
							Spec:            st.Spec.Raw,
							BurnRate5m:      st.BurnRate5m,
							BudgetRemaining: st.BudgetRemaining,
						})
					}
				}
				_ = json.NewEncoder(w).Encode(struct {
					Status string           `json:"status"`
					SLO    []readySLODetail `json:"slo"`
				}{Status: "degraded", SLO: details})
				return
			}
		}
		fmt.Fprintln(w, `{"status":"ok"}`)
	}
}

// retryAfterSeconds renders the Retry-After hint (ceiling, ≥ 1).
func (s *Server) retryAfterSeconds() string {
	secs := int((s.cfg.RetryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// admit wraps an endpoint with method filtering, drain refusal, admission
// control, worker acquisition, request attribution and metrics. The
// handler runs with exclusive use of one codec, and every response —
// including refusals — carries the request's trace id.
func (s *Server) admit(m *epMetrics, h func(*codec, http.ResponseWriter, *http.Request) error) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		tid, parent, self := s.tr.ids(r)
		reqID := tid.String()
		hdr := w.Header()
		hdr.Set("X-Ceresz-Request-Id", reqID)
		hdr.Set("Traceparent", "00-"+reqID+"-"+self.String()+"-01")
		if r.Method != http.MethodPost {
			hdr.Set("Allow", http.MethodPost)
			http.Error(w, "request "+reqID+": POST only", http.StatusMethodNotAllowed)
			return
		}
		if s.Draining() {
			hdr.Set("Retry-After", s.retryAfterSeconds())
			http.Error(w, "request "+reqID+": draining", http.StatusServiceUnavailable)
			return
		}
		if r.ContentLength > s.cfg.MaxBodyBytes {
			http.Error(w, fmt.Sprintf("request %s: body %d exceeds limit %d", reqID, r.ContentLength, s.cfg.MaxBodyBytes),
				http.StatusRequestEntityTooLarge)
			return
		}
		// Admission: executing + waiting is bounded; overflow is refused
		// immediately so the client's backoff, not this process's memory,
		// absorbs the burst.
		select {
		case s.sem <- struct{}{}:
		default:
			m.rejected.Add(1)
			m.status4xx.Add(1)
			hdr.Set("Retry-After", s.retryAfterSeconds())
			http.Error(w, "request "+reqID+": server saturated, retry later", http.StatusTooManyRequests)
			return
		}
		defer func() { <-s.sem }()

		// Admitted: claim a span slot (bounded by the semaphore, so this
		// never blocks) and declare the Server-Timing trailer before any
		// body byte makes the header section immutable.
		m.requests.Add(1)
		sp := s.tr.acquire(tid, parent, self, m.ep, t0, r.Header.Get("X-Ceresz-Tenant"))
		sp.observe(stageAdmit, t0)
		hdr.Set("Trailer", "Server-Timing")

		s.queueDepth.Add(1)
		tWorker := time.Now()
		var c *codec
		select {
		case c = <-s.codecs:
		case <-r.Context().Done():
			// Client gave up while queued: seal the span so the slot frees.
			s.queueDepth.Add(-1)
			sp.observe(stageWorker, tWorker)
			sp.status.Store(statusClientGone)
			sp.errMsg = "client closed connection while queued"
			s.tr.finish(sp)
			return
		}
		s.queueDepth.Add(-1)
		sp.observe(stageWorker, tWorker)
		sp.mu.Lock()
		sp.worker = int32(c.id)
		sp.mu.Unlock()
		c.tr = sp
		// Split the intra-request worker budget across the requests
		// executing right now (self included): one big request alone gets
		// the whole budget, a saturated pool degrades each request to the
		// sequential zero-alloc path.
		c.workers = s.cfg.HostWorkers / int(s.executing.Add(1))
		if c.workers < 1 {
			c.workers = 1
		}
		defer func() { c.tr = nil; s.executing.Add(-1); s.codecs <- c }()

		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		// The handlers stream: they read the next body chunk after writing
		// the previous response chunk. HTTP/1.x servers close the body for
		// reads once the response starts flushing unless full duplex is
		// explicitly enabled; best effort — recorders and HTTP/2 decline.
		rw := &trackingWriter{ResponseWriter: w, status: http.StatusOK}
		_ = http.NewResponseController(rw).EnableFullDuplex()
		err := h(c, rw, r)
		m.latencyUS.Observe(time.Since(t0).Microseconds())
		// Full duplex also disables the server's post-handler body drain,
		// and a body left short of EOF breaks connection reuse (the
		// deferred background read only starts once a read hits EOF, which
		// reqBody.Close triggers *after* finishRequest already aborted
		// pending reads — the next request's Peek then panics net/http).
		// Consume a bounded remainder here; past the cap, close the
		// connection instead of reading unbounded garbage.
		drained, _ := io.Copy(io.Discard, io.LimitReader(r.Body, maxPostDrainBytes+1))
		if drained > maxPostDrainBytes && !rw.started {
			hdr.Set("Connection", "close")
		}
		if err != nil {
			m.failures.Add(1)
			sp.errMsg = err.Error()
			writeError(rw, err, reqID)
		}
		sp.status.Store(int32(rw.status))
		m.observeStatus(rw.status)
		// Mirror the shared host pool's occupancy into this server's
		// registry so /debug/metrics shows it even when telemetry.Default
		// (which internal/hostpool instruments) is disabled.
		s.hostPeak.Set(int64(hostpool.Peak()))
		s.hostImbalance.Set(int64(hostpool.LastImbalance()))
		// Stage attribution back to the client: the Server-Timing trailer
		// rides the chunked response epilogue (set after the body, as Go
		// requires for declared trailers). Error responses written with a
		// Content-Length skip trailers; clients treat that as "no timing".
		totalNs := time.Since(t0).Nanoseconds()
		hdr.Set("Server-Timing", sp.serverTiming(totalNs))
		for st := stage(0); st < numStages; st++ {
			m.stageUS[st].Observe(sp.stageNs[st].Load() / 1e3)
		}
		s.tr.finish(sp)
		if drained > maxPostDrainBytes && rw.started {
			// Headers are gone, so the close hint is no longer expressible;
			// ErrAbortHandler is the sanctioned way to cut the connection.
			panic(http.ErrAbortHandler)
		}
	})
}

// statusClientGone marks a request whose client disconnected while queued
// for a worker (nginx's 499 convention; no response was written).
const statusClientGone = 499

// maxPostDrainBytes bounds how much of a request body left unread by a
// handler admit will consume to keep the connection reusable (mirrors
// net/http's own maxPostHandlerReadBytes). Past it, the connection is
// closed instead.
const maxPostDrainBytes = 256 << 10

// trackingWriter records whether the response has started (which decides
// how admit handles a body the handler left unread: before the first
// write a Connection: close header still works, after it only aborting
// the connection does) and the status code that went out, for the span
// record and the RED status-class counters. Unwrap keeps
// http.NewResponseController working.
type trackingWriter struct {
	http.ResponseWriter
	started bool
	status  int
}

func (tw *trackingWriter) WriteHeader(code int) {
	if !tw.started {
		tw.status = code
	}
	tw.started = true
	tw.ResponseWriter.WriteHeader(code)
}

func (tw *trackingWriter) Write(b []byte) (int, error) {
	tw.started = true
	return tw.ResponseWriter.Write(b)
}

func (tw *trackingWriter) Unwrap() http.ResponseWriter { return tw.ResponseWriter }

// badRequest marks parameter/body validation failures for status mapping.
type badRequest struct{ err error }

func (b badRequest) Error() string { return b.err.Error() }
func (b badRequest) Unwrap() error { return b.err }

func badRequestf(format string, args ...any) error {
	return badRequest{fmt.Errorf(format, args...)}
}

func errOddBody(n, elemSize int) error {
	return badRequestf("body length %d is not a multiple of the %d-byte element size", n, elemSize)
}

// errResponseStarted marks failures after the response body began: the
// status line is gone, so admit only counts the failure.
var errResponseStarted = errors.New("server: response already started")

// writeError maps a handler failure onto an HTTP status. Decode-limit and
// malformed-input failures are the client's fault (400/413); everything
// else is a 500. The request id prefixes the error text so a client's
// retry log lines correlate with the server's access log and span rings.
func writeError(w http.ResponseWriter, err error, reqID string) {
	if errors.Is(err, errResponseStarted) {
		return // too late for a status line; the connection is cut short
	}
	status := http.StatusInternalServerError
	var br badRequest
	var mbe *http.MaxBytesError
	switch {
	case errors.As(err, &mbe):
		status = http.StatusRequestEntityTooLarge
	case errors.As(err, &br),
		errors.Is(err, ceresz.ErrTruncated),
		errors.Is(err, ceresz.ErrFrameTooLarge),
		errors.Is(err, core.ErrBadStream):
		status = http.StatusBadRequest
	}
	http.Error(w, "request "+reqID+": "+err.Error(), status)
}

// parseCompressParams resolves a compress request's query parameters
// before any body byte is read.
func (s *Server) parseCompressParams(r *http.Request) (cparams, error) {
	q := r.URL.Query()
	p := cparams{
		elem:       ceresz.Float32,
		chunkElems: s.cfg.ChunkElems,
		opts:       ceresz.Options{Workers: 1, BlockLen: s.cfg.BlockLen},
	}
	epsStr := q.Get("eps")
	if epsStr == "" {
		return p, badRequestf("missing required parameter eps")
	}
	eps, err := strconv.ParseFloat(epsStr, 64)
	if err != nil || !(eps > 0) {
		return p, badRequestf("eps must be a positive float, got %q", epsStr)
	}
	switch mode := q.Get("mode"); mode {
	case "", "abs":
		p.abs = true
		p.bound = ceresz.ABS(eps)
	case "rel":
		p.bound = ceresz.REL(eps)
	default:
		return p, badRequestf("mode must be abs or rel, got %q", mode)
	}
	switch elem := q.Get("elem"); elem {
	case "", "f32":
		p.elem = ceresz.Float32
	case "f64":
		p.elem = ceresz.Float64
	default:
		return p, badRequestf("elem must be f32 or f64, got %q", elem)
	}
	if chunkStr := q.Get("chunk"); chunkStr != "" {
		n, err := strconv.Atoi(chunkStr)
		if err != nil || n < 1 {
			return p, badRequestf("chunk must be a positive integer, got %q", chunkStr)
		}
		if n > s.cfg.MaxChunkElems {
			return p, badRequestf("chunk %d exceeds limit %d", n, s.cfg.MaxChunkElems)
		}
		p.chunkElems = n
	}
	if blockStr := q.Get("block"); blockStr != "" {
		n, err := strconv.Atoi(blockStr)
		if err != nil || n < 8 || n%8 != 0 {
			return p, badRequestf("block must be a positive multiple of 8, got %q", blockStr)
		}
		p.opts.BlockLen = n
	}
	return p, nil
}

// handleCompress streams CSZF frames for a raw little-endian float body.
// The response is chunked: each ?chunk= elements become one independently
// decodable frame, so the client can pipe the response straight into a
// StreamReader (or to disk next to StreamWriter output).
func (s *Server) handleCompress(c *codec, w http.ResponseWriter, r *http.Request) error {
	p, err := s.parseCompressParams(r)
	if err != nil {
		return err
	}
	p.opts.Workers = c.workers
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	compress := c.compressF32
	if p.elem == ceresz.Float64 {
		compress = c.compressF64
	}

	var chunks int
	var rawBytes, compBytes int64
	started := false
	for {
		n, err := c.readChunk(body, p)
		if err == io.EOF {
			break
		}
		if err == nil {
			var frame []byte
			var eps float64
			var h chunkcache.Handle
			frame, eps, h, err = s.cachedCompress(c, p, n, compress)
			if err == nil {
				if !started {
					w.Header().Set("Content-Type", "application/x-ceresz-frames")
					w.Header().Set("X-Ceresz-Eps", strconv.FormatFloat(eps, 'g', -1, 64))
					started = true
				}
				tw := c.tr.now()
				_, werr := w.Write(frame)
				frameLen := len(frame)
				// The frame may point into pinned cache memory; release
				// only after the write copied it to the wire.
				h.Release()
				if werr != nil {
					return fmt.Errorf("%w: writing chunk %d: %v", errResponseStarted, chunks, werr)
				}
				c.tr.observe(stageWrite, tw)
				c.tr.addChunk()
				c.tr.addBytes(int64(n), int64(frameLen))
				chunks++
				rawBytes += int64(n)
				compBytes += int64(frameLen)
				continue
			}
		}
		if started {
			return fmt.Errorf("%w: chunk %d: %v", errResponseStarted, chunks, err)
		}
		return err
	}
	if !started {
		w.Header().Set("Content-Type", "application/x-ceresz-frames")
	}
	s.recordVolume(s.mCompress, chunks, rawBytes, compBytes)
	return nil
}

// cachedCompress produces the CSZF frame for the raw chunk sitting in
// c.rawIn: straight through the codec when the cache is disabled, else a
// cache lookup first. The returned handle pins cached bytes — the caller
// must Release it after writing the frame (it is inert on the codec
// path). eps is the chunk's resolved error bound, from live stats on a
// computed frame and from the entry's metadata on a hit, so the
// X-Ceresz-Eps header is right even when the first chunk never runs the
// codec.
func (s *Server) cachedCompress(c *codec, p cparams, n int, compress func(cparams) ([]byte, error)) ([]byte, float64, chunkcache.Handle, error) {
	if s.cache == nil {
		frame, err := compress(p)
		return frame, c.stats.Eps, chunkcache.Handle{}, err
	}
	tc := c.tr.now()
	h, err := s.cache.Get(c.cacheKeyCompress(p))
	c.tr.observe(stageCache, tc)
	if err != nil {
		// The computation this chunk coalesced onto was aborted; its
		// failure was input-dependent, so compute locally uncached and let
		// this request's own error (if any) surface.
		frame, cerr := compress(p)
		return frame, c.stats.Eps, chunkcache.Handle{}, cerr
	}
	if h.Outcome() != chunkcache.Miss {
		c.tr.addCacheHit()
		return h.Bytes(), h.Meta().Eps, h, nil
	}
	c.tr.addCacheMiss()
	frame, cerr := compress(p)
	if cerr != nil {
		h.Abort()
		return nil, 0, chunkcache.Handle{}, cerr
	}
	h.Complete(frame, chunkcache.Meta{Eps: c.stats.Eps, SavedBytes: int64(n)})
	return frame, c.stats.Eps, h, nil
}

// handleDecompress inverts handleCompress: a CSZF framed body becomes raw
// little-endian floats. ?elem= must match the stream's element type
// (default f32).
func (s *Server) handleDecompress(c *codec, w http.ResponseWriter, r *http.Request) error {
	q := r.URL.Query()
	wantF64 := false
	switch elem := q.Get("elem"); elem {
	case "", "f32":
	case "f64":
		wantF64 = true
	default:
		return badRequestf("elem must be f32 or f64, got %q", elem)
	}
	body := &countingReader{r: http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes), sp: c.tr}
	c.sr.Reset(body)
	c.sr.SetLimits(s.cfg.MaxFrameBytes, s.cfg.MaxChunkElems)
	c.sr.SetWorkers(c.workers)

	var chunks int
	var rawBytes int64
	started := false
	for {
		var out []byte
		var err error
		var h chunkcache.Handle
		if s.cache == nil {
			// The StreamReader pulls body bytes from inside Next*Into; the
			// countingReader attributes those reads, so codec time is the
			// remainder of the call.
			readBefore := c.tr.stageTotal(stageRead)
			tc := c.tr.now()
			if wantF64 {
				c.f64, err = c.sr.Next64Into(c.f64[:0])
				out = c.encodeF64(c.f64)
			} else {
				c.f32, err = c.sr.NextInto(c.f32[:0])
				out = c.encodeF32(c.f32)
			}
			if err == nil {
				c.tr.observeSub(stageCodec, tc, c.tr.stageTotal(stageRead)-readBefore)
			}
		} else {
			out, h, err = s.cachedDecompress(c, wantF64)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			if started {
				return fmt.Errorf("%w: chunk %d: %v", errResponseStarted, chunks, err)
			}
			return err
		}
		if !started {
			w.Header().Set("Content-Type", "application/octet-stream")
			started = true
		}
		tw := c.tr.now()
		_, werr := w.Write(out)
		outLen := len(out)
		h.Release() // out may point into pinned cache memory
		if werr != nil {
			return fmt.Errorf("%w: writing chunk %d: %v", errResponseStarted, chunks, werr)
		}
		c.tr.observe(stageWrite, tw)
		c.tr.addChunk()
		c.tr.addBytes(0, int64(outLen))
		chunks++
		rawBytes += int64(outLen)
	}
	c.tr.addBytes(body.n, 0)
	if !started {
		w.Header().Set("Content-Type", "application/octet-stream")
	}
	s.recordVolume(s.mDecompress, chunks, body.n, rawBytes)
	return nil
}

// cachedDecompress serves one decompress chunk through the chunk cache:
// the frame payload is read (and validated) without decoding via NextRaw,
// hashed, and only on a miss decoded and published. The returned handle
// pins cached bytes — the caller must Release it after the write. Frame
// transport, validation and decode all reuse the exact entry points of
// the uncached path, so error semantics and output bytes are identical.
func (s *Server) cachedDecompress(c *codec, wantF64 bool) ([]byte, chunkcache.Handle, error) {
	payload, err := c.sr.NextRaw()
	if err != nil {
		return nil, chunkcache.Handle{}, err // io.EOF included
	}
	tc := c.tr.now()
	h, herr := s.cache.Get(c.cacheKeyDecompress(payload, wantF64))
	c.tr.observe(stageCache, tc)
	if herr == nil && h.Outcome() != chunkcache.Miss {
		c.tr.addCacheHit()
		return h.Bytes(), h, nil
	}
	// Miss (or coalesced onto an aborted computation — then herr != nil
	// and this chunk decodes locally uncached).
	var out []byte
	td := c.tr.now()
	opts := ceresz.Options{Workers: c.workers}
	if wantF64 {
		c.f64, err = ceresz.Decompress64With(c.f64[:0], payload, opts)
		out = c.encodeF64(c.f64)
	} else {
		c.f32, err = ceresz.DecompressWith(c.f32[:0], payload, opts)
		out = c.encodeF32(c.f32)
	}
	if err != nil {
		if herr == nil {
			h.Abort()
		}
		return nil, chunkcache.Handle{}, err
	}
	c.tr.observe(stageCodec, td)
	if herr == nil {
		c.tr.addCacheMiss()
		h.Complete(out, chunkcache.Meta{SavedBytes: int64(len(payload))})
	}
	return out, chunkcache.Handle{}, nil
}

// countingReader counts the bytes a decode path actually consumed and
// attributes the read time (which includes the client's upload pacing)
// to the request's read stage.
type countingReader struct {
	r  io.Reader
	n  int64
	sp *reqSpan
}

func (cr *countingReader) Read(p []byte) (int, error) {
	t0 := cr.sp.now()
	n, err := cr.r.Read(p)
	cr.sp.accum(stageRead, t0)
	cr.n += int64(n)
	return n, err
}

// recordVolume publishes one request's chunk/byte accounting.
func (s *Server) recordVolume(m *epMetrics, chunks int, in, out int64) {
	m.chunks.Add(int64(chunks))
	m.bytesIn.Add(in)
	m.bytesOut.Add(out)
}

// bundleFieldSpec is one manifest entry of a /v1/bundle request.
type bundleFieldSpec struct {
	Name string  `json:"name"`
	Dims [3]int  `json:"dims"` // zeroes normalize to 1; Nx fastest
	Elem string  `json:"elem"` // "f32" (default) or "f64"
	Mode string  `json:"mode"` // "abs" (default) or "rel"
	Eps  float64 `json:"eps"`
}

// maxBundleManifest caps the JSON manifest of a bundle request.
const maxBundleManifest = 1 << 20

// handleBundle assembles a CSZB bundle from a multi-field payload, or with
// ?field= extracts one member of a posted bundle as raw floats.
//
// Assemble request body: u32 little-endian manifest length, JSON manifest
// ([]bundleFieldSpec), then each field's raw little-endian data
// back-to-back in manifest order.
func (s *Server) handleBundle(c *codec, w http.ResponseWriter, r *http.Request) error {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if field := r.URL.Query().Get("field"); field != "" {
		return s.extractBundleField(c, w, body, field)
	}

	var lenBuf [4]byte
	tr := c.tr.now()
	if _, err := io.ReadFull(body, lenBuf[:]); err != nil {
		return badRequestf("reading manifest length: %v", err)
	}
	c.tr.observe(stageRead, tr)
	manifestLen := int(binary.LittleEndian.Uint32(lenBuf[:]))
	if manifestLen == 0 || manifestLen > maxBundleManifest {
		return badRequestf("manifest length %d outside (0, %d]", manifestLen, maxBundleManifest)
	}
	manifest := make([]byte, manifestLen)
	if _, err := io.ReadFull(body, manifest); err != nil {
		return badRequestf("reading %d-byte manifest: %v", manifestLen, err)
	}
	var specs []bundleFieldSpec
	if err := json.Unmarshal(manifest, &specs); err != nil {
		return badRequestf("decoding manifest: %v", err)
	}
	if len(specs) == 0 {
		return badRequestf("manifest has no fields")
	}

	bw := ceresz.NewBundleWriter()
	for i, spec := range specs {
		dims := normalizeDims(spec.Dims)
		elems := dims.Len()
		if elems <= 0 || elems > s.cfg.MaxChunkElems {
			return badRequestf("field %d (%q): %d elements outside (0, %d]", i, spec.Name, elems, s.cfg.MaxChunkElems)
		}
		var bound ceresz.Bound
		switch spec.Mode {
		case "", "abs":
			bound = ceresz.ABS(spec.Eps)
		case "rel":
			bound = ceresz.REL(spec.Eps)
		default:
			return badRequestf("field %d (%q): mode must be abs or rel, got %q", i, spec.Name, spec.Mode)
		}
		opts := ceresz.Options{Workers: c.workers, BlockLen: s.cfg.BlockLen}
		switch spec.Elem {
		case "", "f32":
			tr := c.tr.now()
			if _, err := c.readRaw(body, 4*elems); err != nil {
				return badRequestf("field %d (%q): reading %d elements: %v", i, spec.Name, elems, err)
			}
			c.tr.observe(stageRead, tr)
			c.tr.addBytes(int64(4*elems), 0)
			tc := c.tr.now()
			c.f32 = c.f32[:0]
			for j := 0; j < elems; j++ {
				c.f32 = append(c.f32, math.Float32frombits(binary.LittleEndian.Uint32(c.rawIn[4*j:])))
			}
			if _, err := bw.AddField(spec.Name, dims, c.f32, bound, opts); err != nil {
				return badRequest{err}
			}
			c.tr.observe(stageCodec, tc)
		case "f64":
			tr := c.tr.now()
			if _, err := c.readRaw(body, 8*elems); err != nil {
				return badRequestf("field %d (%q): reading %d elements: %v", i, spec.Name, elems, err)
			}
			c.tr.observe(stageRead, tr)
			c.tr.addBytes(int64(8*elems), 0)
			tc := c.tr.now()
			c.f64 = c.f64[:0]
			for j := 0; j < elems; j++ {
				c.f64 = append(c.f64, math.Float64frombits(binary.LittleEndian.Uint64(c.rawIn[8*j:])))
			}
			if _, err := bw.AddField64(spec.Name, dims, c.f64, bound, opts); err != nil {
				return badRequest{err}
			}
			c.tr.observe(stageCodec, tc)
		default:
			return badRequestf("field %d (%q): elem must be f32 or f64, got %q", i, spec.Name, spec.Elem)
		}
		c.tr.addChunk()
	}
	tc := c.tr.now()
	out, err := bw.Bytes()
	if err != nil {
		return badRequest{err}
	}
	c.tr.observe(stageCodec, tc)
	w.Header().Set("Content-Type", "application/x-ceresz-bundle")
	w.Header().Set("X-Ceresz-Fields", strconv.Itoa(len(specs)))
	tw := c.tr.now()
	if _, err := w.Write(out); err != nil {
		return fmt.Errorf("%w: writing bundle: %v", errResponseStarted, err)
	}
	c.tr.observe(stageWrite, tw)
	c.tr.addBytes(0, int64(len(out)))
	s.recordVolume(s.mBundle, len(specs), 0, int64(len(out)))
	return nil
}

// extractBundleField decompresses one member of a posted bundle.
func (s *Server) extractBundleField(c *codec, w http.ResponseWriter, body io.Reader, field string) error {
	tr := c.tr.now()
	raw, err := io.ReadAll(body)
	if err != nil {
		return err
	}
	c.tr.observe(stageRead, tr)
	c.tr.addBytes(int64(len(raw)), 0)
	tc := c.tr.now()
	br, err := ceresz.OpenBundleLimited(raw, s.cfg.MaxFrameBytes, s.cfg.MaxChunkElems)
	if err != nil {
		return badRequest{err}
	}
	names := br.Names()
	var bf ceresz.BundleField
	for _, f := range br.Fields() {
		if f.Name == field {
			bf = f
			break
		}
	}
	if bf.Name == "" {
		return badRequestf("bundle has no field %q (have %v)", field, names)
	}
	var out []byte
	var elem string
	if bf.Elem == ceresz.Float64 {
		vals, _, err := br.ReadField64(field)
		if err != nil {
			return badRequest{err}
		}
		out, elem = c.encodeF64(vals), "f64"
	} else {
		vals, _, err := br.ReadField(field)
		if err != nil {
			return badRequest{err}
		}
		out, elem = c.encodeF32(vals), "f32"
	}
	c.tr.observe(stageCodec, tc)
	c.tr.addChunk()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Ceresz-Elem", elem)
	tw := c.tr.now()
	if _, err := w.Write(out); err != nil {
		return fmt.Errorf("%w: writing field: %v", errResponseStarted, err)
	}
	c.tr.observe(stageWrite, tw)
	c.tr.addBytes(0, int64(len(out)))
	s.recordVolume(s.mBundle, 1, int64(len(raw)), int64(len(out)))
	return nil
}

// normalizeDims maps zero dims to 1 so [n,0,0] means 1-D.
func normalizeDims(d [3]int) ceresz.Dims {
	for i := range d {
		if d[i] == 0 {
			d[i] = 1
		}
	}
	return ceresz.Dims{Nx: d[0], Ny: d[1], Nz: d[2]}
}
