// Package server is the cereszd serving subsystem: an HTTP front end over
// the library's zero-alloc compression hot paths. The design goal is the
// ROADMAP's "heavy traffic" shape — bounded concurrency, explicit
// backpressure, and no per-chunk heap allocations in steady state:
//
//   - a fixed worker pool owns per-worker codec state (pooled buffers +
//     the sequential CompressInto/NextInto entry points), so throughput
//     scales with cores without GC pressure;
//   - an admission queue bounds the requests waiting for a worker; when it
//     overflows the server answers 429 with a Retry-After hint instead of
//     queueing unboundedly (clients — client/ — back off and retry);
//   - request limits (body bytes, chunk elements, frame bytes) are
//     enforced before any input-sized allocation, leaning on the
//     hardened StreamReader/OpenBundleLimited decode paths;
//   - every endpoint reports request/byte counters and latency histograms
//     through internal/telemetry, so /debug/metrics exposes p50/p95/p99
//     per endpoint in the Prometheus text format.
//
// Wire format: /v1/compress turns a raw little-endian float body into the
// package's CSZF framed stream (one independently-decodable container per
// chunk — the on-disk streaming format, so a StreamReader consumes
// responses directly); /v1/decompress inverts it;
// /v1/bundle assembles a multi-field CSZB bundle (or extracts one member
// with ?field=).
package server

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"ceresz"
	"ceresz/internal/core"
	"ceresz/internal/telemetry"
)

// Config tunes a Server. The zero value serves with GOMAXPROCS workers, a
// 2×workers admission queue, 1 GiB request bodies, 64 Ki-element chunks
// and a 1-second Retry-After hint.
type Config struct {
	// Workers is the codec pool size (0 = GOMAXPROCS). It bounds the
	// requests compressing/decompressing concurrently.
	Workers int
	// QueueDepth is how many admitted requests may wait for a worker
	// beyond the Workers executing (0 = 2×Workers, negative = 0).
	QueueDepth int
	// MaxBodyBytes caps a request body (0 = 1 GiB).
	MaxBodyBytes int64
	// MaxChunkElems caps the elements in one chunk, one decoded frame and
	// one bundle field (0 = 4 Mi elements).
	MaxChunkElems int
	// MaxFrameBytes caps a compressed frame or bundle member accepted on
	// the decode path (0 = 64 MiB).
	MaxFrameBytes int
	// ChunkElems is the compress-side default elements per frame when the
	// request does not pass ?chunk= (0 = 64 Ki).
	ChunkElems int
	// RetryAfter is the hint returned with 429/503 responses (0 = 1s).
	RetryAfter time.Duration
	// BlockLen overrides the CereSZ block length (0 = 32, the paper's).
	BlockLen int
	// Registry receives the server's instruments (nil = telemetry.Default).
	Registry *telemetry.Registry
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 2 * c.Workers
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 30
	}
	if c.MaxChunkElems <= 0 {
		c.MaxChunkElems = 4 << 20
	}
	if c.MaxFrameBytes <= 0 {
		c.MaxFrameBytes = 64 << 20
	}
	if c.ChunkElems <= 0 {
		c.ChunkElems = 64 << 10
	}
	if c.ChunkElems > c.MaxChunkElems {
		c.ChunkElems = c.MaxChunkElems
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Registry == nil {
		c.Registry = telemetry.Default
	}
	return c
}

// epMetrics is one endpoint's instrument set.
type epMetrics struct {
	requests  *telemetry.Counter
	failures  *telemetry.Counter
	rejected  *telemetry.Counter
	bytesIn   *telemetry.Counter
	bytesOut  *telemetry.Counter
	chunks    *telemetry.Counter
	latencyUS *telemetry.Histogram
}

func newEpMetrics(reg *telemetry.Registry, name string) *epMetrics {
	return &epMetrics{
		requests:  reg.Counter("server." + name + ".requests"),
		failures:  reg.Counter("server." + name + ".failures"),
		rejected:  reg.Counter("server." + name + ".rejected"),
		bytesIn:   reg.Counter("server." + name + ".bytes_in"),
		bytesOut:  reg.Counter("server." + name + ".bytes_out"),
		chunks:    reg.Counter("server." + name + ".chunks"),
		latencyUS: reg.Histogram("server." + name + ".latency_us"),
	}
}

// Server is the serving subsystem. Create with New, mount with Handler.
type Server struct {
	cfg    Config
	codecs chan *codec   // worker pool: free codec state
	sem    chan struct{} // admission: executing + queued requests

	draining atomic.Bool
	// gauges mirror state for /debug/metrics; functional state never
	// lives in telemetry (a disabled registry makes gauges no-ops).
	drainGauge *telemetry.Gauge
	inflight   *telemetry.Gauge

	mCompress   *epMetrics
	mDecompress *epMetrics
	mBundle     *epMetrics
}

// New returns a Server with its worker pool warm.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:         cfg,
		codecs:      make(chan *codec, cfg.Workers),
		sem:         make(chan struct{}, cfg.Workers+cfg.QueueDepth),
		drainGauge:  cfg.Registry.Gauge("server.draining"),
		inflight:    cfg.Registry.Gauge("server.inflight"),
		mCompress:   newEpMetrics(cfg.Registry, "compress"),
		mDecompress: newEpMetrics(cfg.Registry, "decompress"),
		mBundle:     newEpMetrics(cfg.Registry, "bundle"),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.codecs <- newCodec()
	}
	return s
}

// Handler returns the server's mux: POST /v1/compress, /v1/decompress,
// /v1/bundle and GET /healthz.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/v1/compress", s.admit(s.mCompress, s.handleCompress))
	mux.Handle("/v1/decompress", s.admit(s.mDecompress, s.handleDecompress))
	mux.Handle("/v1/bundle", s.admit(s.mBundle, s.handleBundle))
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

// SetDraining flips drain mode: /healthz answers 503 so load balancers
// stop routing here, and new /v1/* work is refused with Retry-After while
// in-flight requests finish (http.Server.Shutdown waits for those).
func (s *Server) SetDraining(on bool) {
	s.draining.Store(on)
	v := int64(0)
	if on {
		v = 1
	}
	s.drainGauge.Set(v)
}

// Draining reports drain mode.
func (s *Server) Draining() bool { return s.draining.Load() }

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"draining"}`)
		return
	}
	fmt.Fprintln(w, `{"status":"ok"}`)
}

// retryAfterSeconds renders the Retry-After hint (ceiling, ≥ 1).
func (s *Server) retryAfterSeconds() string {
	secs := int((s.cfg.RetryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// admit wraps an endpoint with method filtering, drain refusal, admission
// control, worker acquisition and metrics. The handler runs with exclusive
// use of one codec.
func (s *Server) admit(m *epMetrics, h func(*codec, http.ResponseWriter, *http.Request) error) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		if s.Draining() {
			w.Header().Set("Retry-After", s.retryAfterSeconds())
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		if r.ContentLength > s.cfg.MaxBodyBytes {
			http.Error(w, fmt.Sprintf("body %d exceeds limit %d", r.ContentLength, s.cfg.MaxBodyBytes),
				http.StatusRequestEntityTooLarge)
			return
		}
		// Admission: executing + waiting is bounded; overflow is refused
		// immediately so the client's backoff, not this process's memory,
		// absorbs the burst.
		select {
		case s.sem <- struct{}{}:
		default:
			m.rejected.Add(1)
			w.Header().Set("Retry-After", s.retryAfterSeconds())
			http.Error(w, "server saturated, retry later", http.StatusTooManyRequests)
			return
		}
		defer func() { <-s.sem }()

		var c *codec
		select {
		case c = <-s.codecs:
		case <-r.Context().Done():
			return // client gave up while queued
		}
		defer func() { s.codecs <- c }()

		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		m.requests.Add(1)
		// The handlers stream: they read the next body chunk after writing
		// the previous response chunk. HTTP/1.x servers close the body for
		// reads once the response starts flushing unless full duplex is
		// explicitly enabled; best effort — recorders and HTTP/2 decline.
		rw := &trackingWriter{ResponseWriter: w}
		_ = http.NewResponseController(rw).EnableFullDuplex()
		t0 := time.Now()
		err := h(c, rw, r)
		m.latencyUS.Observe(time.Since(t0).Microseconds())
		// Full duplex also disables the server's post-handler body drain,
		// and a body left short of EOF breaks connection reuse (the
		// deferred background read only starts once a read hits EOF, which
		// reqBody.Close triggers *after* finishRequest already aborted
		// pending reads — the next request's Peek then panics net/http).
		// Consume a bounded remainder here; past the cap, close the
		// connection instead of reading unbounded garbage.
		drained, _ := io.Copy(io.Discard, io.LimitReader(r.Body, maxPostDrainBytes+1))
		if drained > maxPostDrainBytes && !rw.started {
			w.Header().Set("Connection", "close")
		}
		if err != nil {
			m.failures.Add(1)
			writeError(rw, err)
		}
		if drained > maxPostDrainBytes && rw.started {
			// Headers are gone, so the close hint is no longer expressible;
			// ErrAbortHandler is the sanctioned way to cut the connection.
			panic(http.ErrAbortHandler)
		}
	})
}

// maxPostDrainBytes bounds how much of a request body left unread by a
// handler admit will consume to keep the connection reusable (mirrors
// net/http's own maxPostHandlerReadBytes). Past it, the connection is
// closed instead.
const maxPostDrainBytes = 256 << 10

// trackingWriter records whether the response has started, which decides
// how admit handles a body the handler left unread: before the first
// write a Connection: close header still works, after it only aborting
// the connection does. Unwrap keeps http.NewResponseController working.
type trackingWriter struct {
	http.ResponseWriter
	started bool
}

func (tw *trackingWriter) WriteHeader(code int) {
	tw.started = true
	tw.ResponseWriter.WriteHeader(code)
}

func (tw *trackingWriter) Write(b []byte) (int, error) {
	tw.started = true
	return tw.ResponseWriter.Write(b)
}

func (tw *trackingWriter) Unwrap() http.ResponseWriter { return tw.ResponseWriter }

// badRequest marks parameter/body validation failures for status mapping.
type badRequest struct{ err error }

func (b badRequest) Error() string { return b.err.Error() }
func (b badRequest) Unwrap() error { return b.err }

func badRequestf(format string, args ...any) error {
	return badRequest{fmt.Errorf(format, args...)}
}

func errOddBody(n, elemSize int) error {
	return badRequestf("body length %d is not a multiple of the %d-byte element size", n, elemSize)
}

// errResponseStarted marks failures after the response body began: the
// status line is gone, so admit only counts the failure.
var errResponseStarted = errors.New("server: response already started")

// writeError maps a handler failure onto an HTTP status. Decode-limit and
// malformed-input failures are the client's fault (400/413); everything
// else is a 500.
func writeError(w http.ResponseWriter, err error) {
	if errors.Is(err, errResponseStarted) {
		return // too late for a status line; the connection is cut short
	}
	status := http.StatusInternalServerError
	var br badRequest
	var mbe *http.MaxBytesError
	switch {
	case errors.As(err, &mbe):
		status = http.StatusRequestEntityTooLarge
	case errors.As(err, &br),
		errors.Is(err, ceresz.ErrTruncated),
		errors.Is(err, ceresz.ErrFrameTooLarge),
		errors.Is(err, core.ErrBadStream):
		status = http.StatusBadRequest
	}
	http.Error(w, err.Error(), status)
}

// parseCompressParams resolves a compress request's query parameters
// before any body byte is read.
func (s *Server) parseCompressParams(r *http.Request) (cparams, error) {
	q := r.URL.Query()
	p := cparams{
		elem:       ceresz.Float32,
		chunkElems: s.cfg.ChunkElems,
		opts:       ceresz.Options{Workers: 1, BlockLen: s.cfg.BlockLen},
	}
	epsStr := q.Get("eps")
	if epsStr == "" {
		return p, badRequestf("missing required parameter eps")
	}
	eps, err := strconv.ParseFloat(epsStr, 64)
	if err != nil || !(eps > 0) {
		return p, badRequestf("eps must be a positive float, got %q", epsStr)
	}
	switch mode := q.Get("mode"); mode {
	case "", "abs":
		p.abs = true
		p.bound = ceresz.ABS(eps)
	case "rel":
		p.bound = ceresz.REL(eps)
	default:
		return p, badRequestf("mode must be abs or rel, got %q", mode)
	}
	switch elem := q.Get("elem"); elem {
	case "", "f32":
		p.elem = ceresz.Float32
	case "f64":
		p.elem = ceresz.Float64
	default:
		return p, badRequestf("elem must be f32 or f64, got %q", elem)
	}
	if chunkStr := q.Get("chunk"); chunkStr != "" {
		n, err := strconv.Atoi(chunkStr)
		if err != nil || n < 1 {
			return p, badRequestf("chunk must be a positive integer, got %q", chunkStr)
		}
		if n > s.cfg.MaxChunkElems {
			return p, badRequestf("chunk %d exceeds limit %d", n, s.cfg.MaxChunkElems)
		}
		p.chunkElems = n
	}
	if blockStr := q.Get("block"); blockStr != "" {
		n, err := strconv.Atoi(blockStr)
		if err != nil || n < 8 || n%8 != 0 {
			return p, badRequestf("block must be a positive multiple of 8, got %q", blockStr)
		}
		p.opts.BlockLen = n
	}
	return p, nil
}

// handleCompress streams CSZF frames for a raw little-endian float body.
// The response is chunked: each ?chunk= elements become one independently
// decodable frame, so the client can pipe the response straight into a
// StreamReader (or to disk next to StreamWriter output).
func (s *Server) handleCompress(c *codec, w http.ResponseWriter, r *http.Request) error {
	p, err := s.parseCompressParams(r)
	if err != nil {
		return err
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	next := c.nextFrameF32
	if p.elem == ceresz.Float64 {
		next = c.nextFrameF64
	}

	var chunks int
	var rawBytes, compBytes int64
	started := false
	for {
		frame, n, err := next(body, p)
		if err == io.EOF {
			break
		}
		if err != nil {
			if started {
				return fmt.Errorf("%w: chunk %d: %v", errResponseStarted, chunks, err)
			}
			return err
		}
		if !started {
			w.Header().Set("Content-Type", "application/x-ceresz-frames")
			w.Header().Set("X-Ceresz-Eps", strconv.FormatFloat(c.stats.Eps, 'g', -1, 64))
			started = true
		}
		if _, err := w.Write(frame); err != nil {
			return fmt.Errorf("%w: writing chunk %d: %v", errResponseStarted, chunks, err)
		}
		chunks++
		rawBytes += int64(n)
		compBytes += int64(len(frame))
	}
	if !started {
		w.Header().Set("Content-Type", "application/x-ceresz-frames")
	}
	s.recordVolume(s.mCompress, chunks, rawBytes, compBytes)
	return nil
}

// handleDecompress inverts handleCompress: a CSZF framed body becomes raw
// little-endian floats. ?elem= must match the stream's element type
// (default f32).
func (s *Server) handleDecompress(c *codec, w http.ResponseWriter, r *http.Request) error {
	q := r.URL.Query()
	wantF64 := false
	switch elem := q.Get("elem"); elem {
	case "", "f32":
	case "f64":
		wantF64 = true
	default:
		return badRequestf("elem must be f32 or f64, got %q", elem)
	}
	body := &countingReader{r: http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)}
	c.sr.Reset(body)
	c.sr.SetLimits(s.cfg.MaxFrameBytes, s.cfg.MaxChunkElems)

	var chunks int
	var rawBytes int64
	started := false
	for {
		var out []byte
		var err error
		if wantF64 {
			c.f64, err = c.sr.Next64Into(c.f64[:0])
			out = c.encodeF64(c.f64)
		} else {
			c.f32, err = c.sr.NextInto(c.f32[:0])
			out = c.encodeF32(c.f32)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			if started {
				return fmt.Errorf("%w: chunk %d: %v", errResponseStarted, chunks, err)
			}
			return err
		}
		if !started {
			w.Header().Set("Content-Type", "application/octet-stream")
			started = true
		}
		if _, err := w.Write(out); err != nil {
			return fmt.Errorf("%w: writing chunk %d: %v", errResponseStarted, chunks, err)
		}
		chunks++
		rawBytes += int64(len(out))
	}
	if !started {
		w.Header().Set("Content-Type", "application/octet-stream")
	}
	s.recordVolume(s.mDecompress, chunks, body.n, rawBytes)
	return nil
}

// countingReader counts the bytes a decode path actually consumed.
type countingReader struct {
	r io.Reader
	n int64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n += int64(n)
	return n, err
}

// recordVolume publishes one request's chunk/byte accounting.
func (s *Server) recordVolume(m *epMetrics, chunks int, in, out int64) {
	m.chunks.Add(int64(chunks))
	m.bytesIn.Add(in)
	m.bytesOut.Add(out)
}

// bundleFieldSpec is one manifest entry of a /v1/bundle request.
type bundleFieldSpec struct {
	Name string  `json:"name"`
	Dims [3]int  `json:"dims"` // zeroes normalize to 1; Nx fastest
	Elem string  `json:"elem"` // "f32" (default) or "f64"
	Mode string  `json:"mode"` // "abs" (default) or "rel"
	Eps  float64 `json:"eps"`
}

// maxBundleManifest caps the JSON manifest of a bundle request.
const maxBundleManifest = 1 << 20

// handleBundle assembles a CSZB bundle from a multi-field payload, or with
// ?field= extracts one member of a posted bundle as raw floats.
//
// Assemble request body: u32 little-endian manifest length, JSON manifest
// ([]bundleFieldSpec), then each field's raw little-endian data
// back-to-back in manifest order.
func (s *Server) handleBundle(c *codec, w http.ResponseWriter, r *http.Request) error {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if field := r.URL.Query().Get("field"); field != "" {
		return s.extractBundleField(c, w, body, field)
	}

	var lenBuf [4]byte
	if _, err := io.ReadFull(body, lenBuf[:]); err != nil {
		return badRequestf("reading manifest length: %v", err)
	}
	manifestLen := int(binary.LittleEndian.Uint32(lenBuf[:]))
	if manifestLen == 0 || manifestLen > maxBundleManifest {
		return badRequestf("manifest length %d outside (0, %d]", manifestLen, maxBundleManifest)
	}
	manifest := make([]byte, manifestLen)
	if _, err := io.ReadFull(body, manifest); err != nil {
		return badRequestf("reading %d-byte manifest: %v", manifestLen, err)
	}
	var specs []bundleFieldSpec
	if err := json.Unmarshal(manifest, &specs); err != nil {
		return badRequestf("decoding manifest: %v", err)
	}
	if len(specs) == 0 {
		return badRequestf("manifest has no fields")
	}

	bw := ceresz.NewBundleWriter()
	for i, spec := range specs {
		dims := normalizeDims(spec.Dims)
		elems := dims.Len()
		if elems <= 0 || elems > s.cfg.MaxChunkElems {
			return badRequestf("field %d (%q): %d elements outside (0, %d]", i, spec.Name, elems, s.cfg.MaxChunkElems)
		}
		var bound ceresz.Bound
		switch spec.Mode {
		case "", "abs":
			bound = ceresz.ABS(spec.Eps)
		case "rel":
			bound = ceresz.REL(spec.Eps)
		default:
			return badRequestf("field %d (%q): mode must be abs or rel, got %q", i, spec.Name, spec.Mode)
		}
		opts := ceresz.Options{Workers: 1, BlockLen: s.cfg.BlockLen}
		switch spec.Elem {
		case "", "f32":
			if _, err := c.readRaw(body, 4*elems); err != nil {
				return badRequestf("field %d (%q): reading %d elements: %v", i, spec.Name, elems, err)
			}
			c.f32 = c.f32[:0]
			for j := 0; j < elems; j++ {
				c.f32 = append(c.f32, math.Float32frombits(binary.LittleEndian.Uint32(c.rawIn[4*j:])))
			}
			if _, err := bw.AddField(spec.Name, dims, c.f32, bound, opts); err != nil {
				return badRequest{err}
			}
		case "f64":
			if _, err := c.readRaw(body, 8*elems); err != nil {
				return badRequestf("field %d (%q): reading %d elements: %v", i, spec.Name, elems, err)
			}
			c.f64 = c.f64[:0]
			for j := 0; j < elems; j++ {
				c.f64 = append(c.f64, math.Float64frombits(binary.LittleEndian.Uint64(c.rawIn[8*j:])))
			}
			if _, err := bw.AddField64(spec.Name, dims, c.f64, bound, opts); err != nil {
				return badRequest{err}
			}
		default:
			return badRequestf("field %d (%q): elem must be f32 or f64, got %q", i, spec.Name, spec.Elem)
		}
	}
	out, err := bw.Bytes()
	if err != nil {
		return badRequest{err}
	}
	w.Header().Set("Content-Type", "application/x-ceresz-bundle")
	w.Header().Set("X-Ceresz-Fields", strconv.Itoa(len(specs)))
	if _, err := w.Write(out); err != nil {
		return fmt.Errorf("%w: writing bundle: %v", errResponseStarted, err)
	}
	s.recordVolume(s.mBundle, len(specs), 0, int64(len(out)))
	return nil
}

// extractBundleField decompresses one member of a posted bundle.
func (s *Server) extractBundleField(c *codec, w http.ResponseWriter, body io.Reader, field string) error {
	raw, err := io.ReadAll(body)
	if err != nil {
		return err
	}
	br, err := ceresz.OpenBundleLimited(raw, s.cfg.MaxFrameBytes, s.cfg.MaxChunkElems)
	if err != nil {
		return badRequest{err}
	}
	names := br.Names()
	var bf ceresz.BundleField
	for _, f := range br.Fields() {
		if f.Name == field {
			bf = f
			break
		}
	}
	if bf.Name == "" {
		return badRequestf("bundle has no field %q (have %v)", field, names)
	}
	var out []byte
	var elem string
	if bf.Elem == ceresz.Float64 {
		vals, _, err := br.ReadField64(field)
		if err != nil {
			return badRequest{err}
		}
		out, elem = c.encodeF64(vals), "f64"
	} else {
		vals, _, err := br.ReadField(field)
		if err != nil {
			return badRequest{err}
		}
		out, elem = c.encodeF32(vals), "f32"
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Ceresz-Elem", elem)
	if _, err := w.Write(out); err != nil {
		return fmt.Errorf("%w: writing field: %v", errResponseStarted, err)
	}
	s.recordVolume(s.mBundle, 1, int64(len(raw)), int64(len(out)))
	return nil
}

// normalizeDims maps zero dims to 1 so [n,0,0] means 1-D.
func normalizeDims(d [3]int) ceresz.Dims {
	for i := range d {
		if d[i] == 0 {
			d[i] = 1
		}
	}
	return ceresz.Dims{Nx: d[0], Ny: d[1], Nz: d[2]}
}
