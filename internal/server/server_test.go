package server

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"ceresz"
	"ceresz/client"
	"ceresz/internal/telemetry"
)

func testData(n int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float32, n)
	v := 0.0
	for i := range data {
		v += rng.NormFloat64() * 0.01
		data[i] = float32(math.Sin(float64(i)*0.01)*2 + v)
	}
	return data
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = telemetry.NewRegistry()
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// localFrames builds the CSZF stream a correct server response must be
// byte-identical to: the same chunking through StreamWriter.
func localFrames(t *testing.T, data []float32, bound ceresz.Bound, chunkElems int) []byte {
	t.Helper()
	var buf bytes.Buffer
	sw := ceresz.NewStreamWriter(&buf, bound, ceresz.Options{Workers: 1})
	for start := 0; start < len(data); start += chunkElems {
		end := start + chunkElems
		if end > len(data) {
			end = len(data)
		}
		if _, err := sw.WriteChunk(data[start:end]); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestEndToEndConcurrentClients is the issue's acceptance test: K
// concurrent clients compress and decompress through the server, and every
// response must match the direct library call bit-for-bit.
func TestEndToEndConcurrentClients(t *testing.T) {
	const chunkElems = 512
	_, ts := newTestServer(t, Config{Workers: 4, ChunkElems: chunkElems})

	K := 8
	if n := runtime.GOMAXPROCS(0); n > K {
		K = n
	}
	const perClient = 6
	var wg sync.WaitGroup
	errs := make(chan error, K*perClient)
	for k := 0; k < K; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			cl := client.New(client.Config{BaseURL: ts.URL, ChunkElems: chunkElems})
			ctx := context.Background()
			for i := 0; i < perClient; i++ {
				n := 700 + 311*((k+i)%5) // exercise partial trailing chunks
				data := testData(n, int64(1000*k+i))
				bound := client.ABS(1e-3)
				libBound := ceresz.ABS(1e-3)
				if i%2 == 1 {
					bound = client.REL(1e-3)
					libBound = ceresz.REL(1e-3)
				}
				framed, err := cl.Compress(ctx, data, bound)
				if err != nil {
					errs <- fmt.Errorf("client %d req %d: compress: %w", k, i, err)
					return
				}
				want := localFrames(t, data, libBound, chunkElems)
				if !bytes.Equal(framed, want) {
					errs <- fmt.Errorf("client %d req %d: server stream differs from library (%d vs %d bytes)",
						k, i, len(framed), len(want))
					return
				}
				// Round-trip through the server decode path too.
				back, err := cl.Decompress(ctx, framed)
				if err != nil {
					errs <- fmt.Errorf("client %d req %d: decompress: %w", k, i, err)
					return
				}
				direct := decodeLocal(t, framed)
				if len(back) != len(direct) {
					errs <- fmt.Errorf("client %d req %d: decoded %d elements, library %d", k, i, len(back), len(direct))
					return
				}
				for j := range back {
					if back[j] != direct[j] {
						errs <- fmt.Errorf("client %d req %d: element %d differs: %g vs %g", k, i, j, back[j], direct[j])
						return
					}
				}
			}
		}(k)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func decodeLocal(t *testing.T, framed []byte) []float32 {
	t.Helper()
	sr := ceresz.NewStreamReader(bytes.NewReader(framed))
	var all []float32
	for {
		chunk, err := sr.Next()
		if err == io.EOF {
			return all
		}
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, chunk...)
	}
}

func TestEndToEndFloat64(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, ChunkElems: 256})
	cl := client.New(client.Config{BaseURL: ts.URL, ChunkElems: 256})
	ctx := context.Background()
	data := make([]float64, 1000)
	for i := range data {
		data[i] = math.Sqrt(float64(i)) * 0.1
	}
	framed, err := cl.Compress64(ctx, data, client.ABS(1e-6))
	if err != nil {
		t.Fatal(err)
	}
	back, err := cl.Decompress64(ctx, framed)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(data) {
		t.Fatalf("decoded %d elements, want %d", len(back), len(data))
	}
	for i := range back {
		if math.Abs(back[i]-data[i]) > 1e-6 {
			t.Fatalf("element %d: |%g-%g| > 1e-6", i, back[i], data[i])
		}
	}
}

// TestBackpressure fills the admission queue and asserts the 429 +
// Retry-After contract, then drains and asserts recovery.
func TestBackpressure(t *testing.T) {
	reg := telemetry.NewRegistry()
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: -1, Registry: reg, RetryAfter: 2 * time.Second})

	// Occupy the single admission slot with a request whose body never
	// arrives until we say so.
	pr, pw := io.Pipe()
	blockedDone := make(chan error, 1)
	go func() {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/compress?eps=0.001", pr)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		blockedDone <- err
	}()

	// Wait until the blocked request holds the worker (it has read zero
	// body bytes, so it is inside the handler waiting on the pipe).
	deadline := time.Now().Add(5 * time.Second)
	for reg.Gauge("server.inflight").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("blocked request never reached the handler")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The queue (capacity workers+depth = 1) is full: an overflow request
	// must be refused immediately with 429 and a Retry-After hint.
	resp, err := http.Post(ts.URL+"/v1/compress?eps=0.001", "application/octet-stream", bytes.NewReader(make([]byte, 64)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow request: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("overflow request: Retry-After %q, want \"2\"", ra)
	}
	if got := reg.Counter("server.compress.rejected").Value(); got == 0 {
		t.Fatal("rejected counter did not move")
	}

	// Release the blocked request; after it drains, admission recovers.
	data := testData(64, 1)
	raw := make([]byte, 4*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint32(raw[4*i:], math.Float32bits(v))
	}
	if _, err := pw.Write(raw); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	if err := <-blockedDone; err != nil {
		t.Fatalf("blocked request failed: %v", err)
	}

	resp, err = http.Post(ts.URL+"/v1/compress?eps=0.001", "application/octet-stream", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-drain request: status %d, want 200", resp.StatusCode)
	}
}

// TestClientRetriesAfterBackpressure drives the client's backoff loop
// against a server that rejects then recovers.
func TestClientRetriesAfterBackpressure(t *testing.T) {
	var mu sync.Mutex
	rejections := 0
	inner := New(Config{Workers: 1, Registry: telemetry.NewRegistry()})
	h := inner.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		reject := rejections < 2
		if reject {
			rejections++
		}
		mu.Unlock()
		if reject && strings.HasPrefix(r.URL.Path, "/v1/") {
			w.Header().Set("Retry-After", "0")
			http.Error(w, "saturated", http.StatusTooManyRequests)
			return
		}
		h.ServeHTTP(w, r)
	}))
	defer ts.Close()

	cl := client.New(client.Config{BaseURL: ts.URL, MaxRetries: 4, BaseBackoff: time.Millisecond})
	framed, err := cl.Compress(context.Background(), testData(256, 2), client.ABS(1e-3))
	if err != nil {
		t.Fatalf("compress did not survive two 429s: %v", err)
	}
	if len(framed) == 0 {
		t.Fatal("empty stream")
	}
	mu.Lock()
	if rejections != 2 {
		t.Fatalf("server issued %d rejections, want 2", rejections)
	}
	mu.Unlock()
}

func TestRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxBodyBytes: 1 << 16, MaxChunkElems: 1 << 12})
	post := func(path string, body []byte) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}
	cases := []struct {
		name string
		path string
		body []byte
		want int
	}{
		{"missing eps", "/v1/compress", nil, 400},
		{"bad eps", "/v1/compress?eps=-1", nil, 400},
		{"bad mode", "/v1/compress?eps=0.1&mode=pct", nil, 400},
		{"bad elem", "/v1/compress?eps=0.1&elem=f16", nil, 400},
		{"chunk too big", "/v1/compress?eps=0.1&chunk=999999999", nil, 400},
		{"bad block", "/v1/compress?eps=0.1&block=7", nil, 400},
		{"odd body", "/v1/compress?eps=0.1", []byte{1, 2, 3}, 400},
		{"oversized declared body", "/v1/compress?eps=0.1", make([]byte, 1<<17), 413},
		{"garbage frames", "/v1/decompress", []byte("not a stream at all"), 400},
		{"hostile frame length", "/v1/decompress", []byte{'C', 'S', 'Z', 'F', 0xFF, 0xFF, 0xFF, 0x7F}, 400},
		{"bundle no manifest", "/v1/bundle", []byte{1, 2}, 400},
		{"bundle extract non-bundle", "/v1/bundle?field=x", []byte("junk"), 400},
	}
	for _, tc := range cases {
		if resp := post(tc.path, tc.body); resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/compress")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/compress: status %d, want 405", resp.StatusCode)
	}
}

func TestHealthzAndDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	get := func() int {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get(); code != 200 {
		t.Fatalf("healthy: status %d", code)
	}
	s.SetDraining(true)
	if code := get(); code != 503 {
		t.Fatalf("draining: status %d", code)
	}
	resp, err := http.Post(ts.URL+"/v1/compress?eps=0.1", "application/octet-stream", bytes.NewReader(make([]byte, 8)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /v1: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining /v1: no Retry-After")
	}
	s.SetDraining(false)
	if code := get(); code != 200 {
		t.Fatalf("recovered: status %d", code)
	}
}

func TestBundleRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	cl := client.New(client.Config{BaseURL: ts.URL})
	ctx := context.Background()

	temp := testData(256, 7)
	pres := make([]float64, 128)
	for i := range pres {
		pres[i] = float64(i) * 0.5
	}
	bundle, err := cl.Bundle(ctx, []client.BundleField{
		{Name: "temp", Dims: [3]int{16, 16, 0}, Bound: client.ABS(1e-3), F32: temp},
		{Name: "pres", Dims: [3]int{128, 0, 0}, Bound: client.ABS(1e-6), F64: pres},
	})
	if err != nil {
		t.Fatal(err)
	}

	// The server bundle must match the library's, field for field.
	bw := ceresz.NewBundleWriter()
	if _, err := bw.AddField("temp", ceresz.Dims2(16, 16), temp, ceresz.ABS(1e-3), ceresz.Options{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := bw.AddField64("pres", ceresz.Dims1(128), pres, ceresz.ABS(1e-6), ceresz.Options{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	want, err := bw.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bundle, want) {
		t.Fatalf("server bundle differs from library bundle (%d vs %d bytes)", len(bundle), len(want))
	}

	// Extract one member through the server and compare with the library.
	resp, err := http.Post(ts.URL+"/v1/bundle?field=temp", "application/x-ceresz-bundle", bytes.NewReader(bundle))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("extract: status %d: %s", resp.StatusCode, raw)
	}
	br, err := ceresz.OpenBundle(want)
	if err != nil {
		t.Fatal(err)
	}
	direct, _, err := br.ReadField("temp")
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != 4*len(direct) {
		t.Fatalf("extract returned %d bytes, want %d", len(raw), 4*len(direct))
	}
	for i, v := range direct {
		got := math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
		if got != v {
			t.Fatalf("extract element %d: %g vs %g", i, got, v)
		}
	}
}

func TestMetricsExposition(t *testing.T) {
	reg := telemetry.NewRegistry()
	_, ts := newTestServer(t, Config{Workers: 1, Registry: reg})
	cl := client.New(client.Config{BaseURL: ts.URL})
	if _, err := cl.Compress(context.Background(), testData(512, 3), client.ABS(1e-3)); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap.Counters["server.compress.requests"] != 1 {
		t.Fatalf("requests counter = %d, want 1", snap.Counters["server.compress.requests"])
	}
	if snap.Counters["server.compress.bytes_in"] != 4*512 {
		t.Fatalf("bytes_in = %d, want %d", snap.Counters["server.compress.bytes_in"], 4*512)
	}
	if snap.Hists["server.compress.latency_us"].Count != 1 {
		t.Fatal("latency histogram did not record")
	}
	var sb strings.Builder
	if _, err := snap.WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "ceresz_server_compress_requests 1") {
		t.Fatalf("Prometheus exposition missing request counter:\n%s", sb.String())
	}
}

// TestConnectionReuseAfterUnreadBody reproduces a full-duplex hazard: a
// handler that rejects a request before reading its body (here: bad eps)
// leaves unread bytes on the wire. Without the post-handler drain in
// admit, the server's deferred background read starts during
// reqBody.Close — after abortPendingRead already ran — and the next
// request on the connection panics net/http with "invalid concurrent
// Body.Read call". The panic surfaces through the server's ErrorLog.
func TestConnectionReuseAfterUnreadBody(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := New(Config{Workers: 1, Registry: reg})
	var logBuf bytes.Buffer
	var logMu sync.Mutex
	ts := httptest.NewUnstartedServer(s.Handler())
	ts.Config.ErrorLog = log.New(&syncWriter{w: &logBuf, mu: &logMu}, "", 0)
	ts.Start()
	defer ts.Close()

	// One transport so both requests ride the same keep-alive connection.
	hc := &http.Client{Transport: &http.Transport{}}
	body := make([]byte, 16<<10) // small enough for the bounded drain
	for i := 0; i < 2; i++ {
		resp, err := hc.Post(ts.URL+"/v1/compress?eps=-1", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("request %d: status %d, want 400", i, resp.StatusCode)
		}
	}
	// A valid round trip on the same transport must also survive.
	cl := client.New(client.Config{BaseURL: ts.URL, HTTPClient: hc, ChunkElems: 256})
	data := testData(700, 3)
	comp, err := cl.Compress(context.Background(), data, client.ABS(1e-3))
	if err != nil {
		t.Fatalf("compress after rejected requests: %v", err)
	}
	if want := localFrames(t, data, ceresz.ABS(1e-3), 256); !bytes.Equal(comp, want) {
		t.Fatalf("stream differs after rejected requests (%d vs %d bytes)", len(comp), len(want))
	}

	time.Sleep(50 * time.Millisecond) // let any panicking conn goroutine log
	logMu.Lock()
	logged := logBuf.String()
	logMu.Unlock()
	if strings.Contains(logged, "panic") {
		t.Fatalf("server panicked on connection reuse:\n%s", logged)
	}
}

// TestOversizeTrailingBodyClosesConnection: past the bounded drain, the
// server must close the connection rather than read unbounded garbage.
// The client just sees a clean error response; the next request opens a
// fresh connection and succeeds.
func TestOversizeTrailingBodyClosesConnection(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := New(Config{Workers: 1, Registry: reg})
	_, ts := func() (*Server, *httptest.Server) {
		ts := httptest.NewServer(s.Handler())
		return s, ts
	}()
	defer ts.Close()

	hc := &http.Client{Transport: &http.Transport{}}
	body := make([]byte, maxPostDrainBytes+64<<10)
	resp, err := hc.Post(ts.URL+"/v1/compress?eps=-1", "application/octet-stream", bytes.NewReader(body))
	// The server stops reading at the drain cap and closes the connection;
	// depending on timing the client sees the 400 with Connection: close,
	// or the close races its upload and surfaces as a transport error.
	// Either is fine — what matters is the server is not wedged.
	if err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
		if resp.Header.Get("Connection") != "close" {
			t.Fatalf("Connection header %q, want close", resp.Header.Get("Connection"))
		}
	}
	resp, err = hc.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("follow-up request: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up status %d, want 200", resp.StatusCode)
	}
}

// syncWriter serializes ErrorLog writes for inspection from the test.
type syncWriter struct {
	w  io.Writer
	mu *sync.Mutex
}

func (sw *syncWriter) Write(p []byte) (int, error) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.w.Write(p)
}
