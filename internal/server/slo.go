package server

import (
	"fmt"

	"ceresz/internal/telemetry"
)

// SLO objective binding. Specs name endpoints ("compress:p99<25ms:99.9");
// this file is where the subject resolves to the registry instruments the
// endpoint actually reports through, so the telemetry engine stays
// ignorant of the server's naming scheme.

// ParseObjectives parses a comma-separated SLO spec list and binds each
// objective to the subject endpoint's instruments: latency SLIs read
// server.<ep>.latency_us, error SLIs read the requests/status_5xx counter
// pair. Unknown subjects are an error — a typo'd endpoint would otherwise
// evaluate forever against an instrument that never fires.
func ParseObjectives(raw string) ([]telemetry.Objective, error) {
	specs, err := telemetry.ParseSLOSpecs(raw)
	if err != nil {
		return nil, err
	}
	objs := make([]telemetry.Objective, 0, len(specs))
	for _, spec := range specs {
		known := false
		for _, name := range epNames {
			if spec.Subject == name {
				known = true
				break
			}
		}
		if !known {
			return nil, fmt.Errorf("slo %q: unknown endpoint %q (have %v)", spec.Raw, spec.Subject, epNames)
		}
		o := telemetry.Objective{Spec: spec}
		if spec.SLI == "err" {
			o.TotalCounter = "server." + spec.Subject + ".requests"
			o.BadCounter = "server." + spec.Subject + ".status_5xx"
		} else {
			o.HistName = "server." + spec.Subject + ".latency_us"
		}
		objs = append(objs, o)
	}
	return objs, nil
}
