package server

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"ceresz"
	"ceresz/internal/telemetry"
)

// postRec drives one request through the server's full handler chain
// without a network, returning the response recorder.
func postRec(t *testing.T, h http.Handler, url string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr
}

// TestCacheHitByteIdentity is the tentpole's core guarantee: a warm-cache
// response must be byte-identical to the cold one — which is itself
// byte-identical to the library — for both directions, in both bound
// modes, and the X-Ceresz-Eps header must survive being served from
// entry metadata instead of live codec stats.
func TestCacheHitByteIdentity(t *testing.T) {
	const chunkElems = 512
	reg := telemetry.NewRegistry()
	s, _ := newTestServer(t, Config{Workers: 2, ChunkElems: chunkElems, CacheBytes: 8 << 20, Registry: reg})
	h := s.Handler()

	data := testData(1800, 7) // partial trailing chunk
	raw := rawBytes(data)

	for _, mode := range []string{"abs", "rel"} {
		url := "/v1/compress?eps=1e-3&mode=" + mode
		libBound := ceresz.ABS(1e-3)
		if mode == "rel" {
			libBound = ceresz.REL(1e-3)
		}
		want := localFrames(t, data, libBound, chunkElems)

		cold := postRec(t, h, url, raw)
		if cold.Code != http.StatusOK {
			t.Fatalf("[%s] cold status %d: %s", mode, cold.Code, cold.Body.String())
		}
		if !bytes.Equal(cold.Body.Bytes(), want) {
			t.Fatalf("[%s] cold response differs from library stream", mode)
		}
		warm := postRec(t, h, url, raw)
		if warm.Code != http.StatusOK {
			t.Fatalf("[%s] warm status %d: %s", mode, warm.Code, warm.Body.String())
		}
		if !bytes.Equal(warm.Body.Bytes(), cold.Body.Bytes()) {
			t.Fatalf("[%s] warm-cache response differs from cold", mode)
		}
		coldEps := cold.Header().Get("X-Ceresz-Eps")
		warmEps := warm.Header().Get("X-Ceresz-Eps")
		if coldEps == "" || coldEps != warmEps {
			t.Fatalf("[%s] X-Ceresz-Eps drifted on hit: cold %q, warm %q", mode, coldEps, warmEps)
		}

		// Decompress both ways: warm must byte-match cold.
		dcold := postRec(t, h, "/v1/decompress", cold.Body.Bytes())
		dwarm := postRec(t, h, "/v1/decompress", cold.Body.Bytes())
		if dcold.Code != http.StatusOK || dwarm.Code != http.StatusOK {
			t.Fatalf("[%s] decompress status %d/%d", mode, dcold.Code, dwarm.Code)
		}
		if !bytes.Equal(dcold.Body.Bytes(), dwarm.Body.Bytes()) {
			t.Fatalf("[%s] warm decompress differs from cold", mode)
		}
	}

	if hits := reg.Counter("cache.hits").Value(); hits == 0 {
		t.Errorf("cache.hits = 0 after warm requests")
	}
	if saved := reg.Counter("cache.bytes_saved").Value(); saved <= 0 {
		t.Errorf("cache.bytes_saved = %d, want > 0", saved)
	}
}

// TestCacheWorkerCountIdentity: cached frames were produced under some
// worker split; hits served to requests running at a different worker
// budget must still be byte-identical (the cache key excludes Workers on
// the strength of the host codec's differential guarantee).
func TestCacheWorkerCountIdentity(t *testing.T) {
	const chunkElems = 256
	data := testData(2000, 11)
	raw := rawBytes(data)
	want := localFrames(t, data, ceresz.ABS(1e-3), chunkElems)

	for _, hostWorkers := range []int{1, 4} {
		s, _ := newTestServer(t, Config{
			Workers: 2, HostWorkers: hostWorkers, ChunkElems: chunkElems, CacheBytes: 8 << 20,
		})
		h := s.Handler()
		for round := 0; round < 3; round++ {
			rr := postRec(t, h, "/v1/compress?eps=1e-3", raw)
			if rr.Code != http.StatusOK {
				t.Fatalf("hostworkers=%d round %d: status %d", hostWorkers, round, rr.Code)
			}
			if !bytes.Equal(rr.Body.Bytes(), want) {
				t.Fatalf("hostworkers=%d round %d: response differs from Workers:1 library stream", hostWorkers, round)
			}
		}
	}
}

// TestCacheCoalescingStorm: concurrent identical requests must trigger
// exactly one compression per unique chunk — cache.misses counts codec
// runs, so with no eviction pressure it must equal the unique chunk count
// while every response stays byte-identical.
func TestCacheCoalescingStorm(t *testing.T) {
	const chunkElems = 256
	const clients = 8
	reg := telemetry.NewRegistry()
	_, ts := newTestServer(t, Config{
		Workers: 4, QueueDepth: 2 * clients, ChunkElems: chunkElems,
		CacheBytes: 32 << 20, Registry: reg,
	})

	data := testData(4*chunkElems, 23) // 4 unique chunks per request
	raw := rawBytes(data)
	want := localFrames(t, data, ceresz.ABS(1e-3), chunkElems)

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for k := 0; k < clients; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/compress?eps=1e-3", "application/octet-stream", bytes.NewReader(raw))
			if err != nil {
				errs <- err
				return
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d: %s", resp.StatusCode, body)
				return
			}
			if !bytes.Equal(body, want) {
				errs <- fmt.Errorf("storm response differs from library stream")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	const uniqueChunks = 4
	misses := reg.Counter("cache.misses").Value()
	if misses != uniqueChunks {
		t.Errorf("cache.misses = %d, want %d (one compression per unique chunk)", misses, uniqueChunks)
	}
	served := reg.Counter("cache.hits").Value() + reg.Counter("cache.coalesced").Value()
	if got, want := served, int64(clients*uniqueChunks-uniqueChunks); got != want {
		t.Errorf("hits+coalesced = %d, want %d", got, want)
	}
}

// TestCacheEvictionUnderServing: a cache far smaller than the working set
// must keep serving correct bytes while evicting, and its gauge must
// respect the budget.
func TestCacheEvictionUnderServing(t *testing.T) {
	const chunkElems = 512
	// Small enough that only a couple of compressed frames fit per shard:
	// 24 distinct chunks must force LRU churn.
	const budget = 4 << 10
	reg := telemetry.NewRegistry()
	s, _ := newTestServer(t, Config{Workers: 1, ChunkElems: chunkElems, CacheBytes: budget, Registry: reg})
	h := s.Handler()

	for i := 0; i < 24; i++ {
		data := testData(chunkElems, int64(100+i))
		want := localFrames(t, data, ceresz.ABS(1e-3), chunkElems)
		rr := postRec(t, h, "/v1/compress?eps=1e-3", rawBytes(data))
		if rr.Code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, rr.Code)
		}
		if !bytes.Equal(rr.Body.Bytes(), want) {
			t.Fatalf("request %d: response differs from library stream during eviction churn", i)
		}
	}
	if ev := reg.Counter("cache.evictions").Value(); ev == 0 {
		t.Errorf("cache.evictions = 0; budget %d should have forced churn", budget)
	}
	// The bytes gauge may lag one insert-then-evict cycle; allow one
	// entry of slack per shard.
	if got := reg.Gauge("cache.bytes").Value(); got > budget*2 {
		t.Errorf("cache.bytes = %d, way over budget %d", got, budget)
	}
}

// TestCacheErrorParity: malformed decompress bodies must fail with the
// same status and error class whether or not the cache is enabled, on
// first sight and again after the failed computation was aborted.
func TestCacheErrorParity(t *testing.T) {
	mk := func(cacheBytes int64) http.Handler {
		s, _ := newTestServer(t, Config{Workers: 1, CacheBytes: cacheBytes})
		return s.Handler()
	}
	plain, cached := mk(0), mk(8<<20)

	// A single-frame stream so malformed input fails before any output is
	// written (a later-frame error in a multi-frame body lands after the
	// 200 status is already committed — on both paths alike).
	good := localFrames(t, testData(600, 3), ceresz.ABS(1e-3), 1024)
	truncated := good[:len(good)-5]
	badMagic := append([]byte("XSZF"), good[4:]...)
	corruptPayload := bytes.Clone(good)
	corruptPayload[len(corruptPayload)-2] ^= 0xFF // inside the payload

	cases := []struct {
		name     string
		body     []byte
		mustFail bool // framing layer must reject it; payload corruption may decode
	}{
		{"truncated", truncated, true},
		{"bad-magic", badMagic, true},
		{"corrupt-payload", corruptPayload, false},
	}
	for _, tc := range cases {
		p1 := postRec(t, plain, "/v1/decompress", tc.body)
		c1 := postRec(t, cached, "/v1/decompress", tc.body)
		c2 := postRec(t, cached, "/v1/decompress", tc.body) // after Abort: must not serve a cached failure
		if p1.Code != c1.Code || c1.Code != c2.Code {
			t.Errorf("%s: status diverged: plain %d, cached %d, cached-repeat %d", tc.name, p1.Code, c1.Code, c2.Code)
		}
		if tc.mustFail && p1.Code == http.StatusOK {
			t.Errorf("%s: expected failure, got 200", tc.name)
		}
		if p1.Code == http.StatusOK {
			// Whatever the codec makes of the bytes, plain, cached and
			// cached-repeat must agree exactly.
			if !bytes.Equal(p1.Body.Bytes(), c1.Body.Bytes()) || !bytes.Equal(c1.Body.Bytes(), c2.Body.Bytes()) {
				t.Errorf("%s: bodies diverged between plain, cached and cached-repeat", tc.name)
			}
		}
	}

	// The cache must still work after aborted computations.
	ok := postRec(t, cached, "/v1/decompress", good)
	if ok.Code != http.StatusOK {
		t.Errorf("good stream after aborts: status %d: %s", ok.Code, ok.Body.String())
	}
}

// TestHealthzSplit covers the liveness/readiness probes: liveness stays
// 200 through not-ready and draining; readiness (and its /healthz alias)
// gates on both.
func TestHealthzSplit(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(b)
	}

	for _, path := range []string{"/healthz", "/healthz/ready", "/healthz/live"} {
		if code, body := get(path); code != http.StatusOK {
			t.Errorf("%s while serving: %d %s", path, code, body)
		}
	}

	s.SetReady(false)
	if code, body := get("/healthz/ready"); code != http.StatusServiceUnavailable || !strings.Contains(body, "starting") {
		t.Errorf("ready while starting: %d %s, want 503 starting", code, body)
	}
	if code, _ := get("/healthz"); code != http.StatusServiceUnavailable {
		t.Errorf("/healthz alias while starting: %d, want 503", code)
	}
	if code, _ := get("/healthz/live"); code != http.StatusOK {
		t.Errorf("live while starting: %d, want 200", code)
	}

	s.SetReady(true)
	s.SetDraining(true)
	if code, body := get("/healthz/ready"); code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Errorf("ready while draining: %d %s, want 503 draining", code, body)
	}
	if code, _ := get("/healthz/live"); code != http.StatusOK {
		t.Errorf("live while draining: %d, want 200", code)
	}
	s.SetDraining(false)
	if code, _ := get("/healthz/ready"); code != http.StatusOK {
		t.Errorf("ready after drain cleared: %d, want 200", code)
	}
}

// TestCacheCompressMissZeroAlloc extends the zero-alloc contract to the
// cache-enabled miss path: hashing, lookup, compression, publication and
// eviction churn together must not allocate once warm. The cache holds
// fewer entries than the cycling working set, so every iteration is a
// genuine miss plus an eviction — the steady state of a cache under
// pressure.
func TestCacheCompressMissZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; zero-alloc contract checked without -race")
	}
	const chunkElems = 1024
	s := New(Config{Workers: 1, ChunkElems: chunkElems, CacheBytes: 48 << 10, Registry: telemetry.NewRegistry()})
	c := newCodec(0)
	p := cparams{
		bound:      ceresz.ABS(1e-3),
		abs:        true,
		elem:       ceresz.Float32,
		chunkElems: chunkElems,
		opts:       ceresz.Options{Workers: 1},
	}

	// A cycle of distinct chunks larger than the cache can hold.
	const cycle = 12
	raws := make([][]byte, cycle)
	for i := range raws {
		raws[i] = rawBytes(testData(chunkElems, int64(i)))
	}
	var n int
	r := bytes.NewReader(nil)
	runOnce := func() {
		r.Reset(raws[n%cycle])
		n++
		got, err := c.readChunk(r, p)
		if err != nil {
			t.Fatal(err)
		}
		frame, _, h, err := s.cachedCompress(c, p, got, c.compressF32)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Discard.Write(frame); err != nil {
			t.Fatal(err)
		}
		h.Release()
	}
	for i := 0; i < 4*cycle; i++ {
		runOnce()
	}
	if allocs := testing.AllocsPerRun(3*cycle, runOnce); allocs != 0 {
		t.Fatalf("cache-enabled miss path allocates %.1f times per chunk, want 0", allocs)
	}
}

// TestCacheCompressHitZeroAlloc: the hit path (hash, lookup, pin, serve,
// release) must also be allocation-free.
func TestCacheCompressHitZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; zero-alloc contract checked without -race")
	}
	const chunkElems = 1024
	s := New(Config{Workers: 1, ChunkElems: chunkElems, CacheBytes: 8 << 20, Registry: telemetry.NewRegistry()})
	c := newCodec(0)
	p := cparams{
		bound:      ceresz.ABS(1e-3),
		abs:        true,
		elem:       ceresz.Float32,
		chunkElems: chunkElems,
		opts:       ceresz.Options{Workers: 1},
	}
	raw := rawBytes(testData(chunkElems, 99))
	r := bytes.NewReader(nil)
	runOnce := func() {
		r.Reset(raw)
		got, err := c.readChunk(r, p)
		if err != nil {
			t.Fatal(err)
		}
		frame, _, h, err := s.cachedCompress(c, p, got, c.compressF32)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Discard.Write(frame); err != nil {
			t.Fatal(err)
		}
		h.Release()
	}
	runOnce() // cold miss populates the entry
	if allocs := testing.AllocsPerRun(50, runOnce); allocs != 0 {
		t.Fatalf("cache hit path allocates %.1f times per chunk, want 0", allocs)
	}
}

// FuzzCachedServe fuzzes the differential guarantee end to end: whatever
// float body arrives, the cache-enabled server's cold response, its warm
// response, and the cache-disabled server's response must be bitwise
// equal — and likewise for decompressing the produced stream. Runs under
// -race in CI via the seed corpus.
func FuzzCachedServe(f *testing.F) {
	f.Add([]byte{0, 0, 128, 63, 0, 0, 0, 64, 0, 0, 64, 64, 205, 204, 76, 62}, uint8(0))
	f.Add(rawBytes(testData(700, 5)), uint8(1))
	f.Add([]byte{}, uint8(0))
	f.Add(bytes.Repeat([]byte{0x41}, 64), uint8(2))

	newH := func(cacheBytes int64) http.Handler {
		s := New(Config{Workers: 2, ChunkElems: 64, CacheBytes: cacheBytes, Registry: telemetry.NewRegistry()})
		return s.Handler()
	}

	f.Fuzz(func(t *testing.T, raw []byte, modeSel uint8) {
		raw = raw[:len(raw)-len(raw)%4] // whole float32 elements only
		mode := "abs"
		if modeSel%2 == 1 {
			mode = "rel"
		}
		url := "/v1/compress?eps=1e-2&mode=" + mode

		plain, cached := newH(0), newH(8<<20)
		post := func(h http.Handler, url string, body []byte) (int, []byte) {
			req := httptest.NewRequest(http.MethodPost, url, bytes.NewReader(body))
			rr := httptest.NewRecorder()
			h.ServeHTTP(rr, req)
			return rr.Code, rr.Body.Bytes()
		}

		refCode, refBody := post(plain, url, raw)
		coldCode, coldBody := post(cached, url, raw)
		warmCode, warmBody := post(cached, url, raw)
		if refCode != coldCode || coldCode != warmCode {
			t.Fatalf("status diverged: plain %d, cold %d, warm %d", refCode, coldCode, warmCode)
		}
		if !bytes.Equal(refBody, coldBody) || !bytes.Equal(coldBody, warmBody) {
			t.Fatalf("compress bytes diverged: plain %d, cold %d, warm %d bytes", len(refBody), len(coldBody), len(warmBody))
		}
		if refCode != http.StatusOK || len(refBody) == 0 {
			return
		}

		dRefCode, dRefBody := post(plain, "/v1/decompress", refBody)
		dColdCode, dColdBody := post(cached, "/v1/decompress", refBody)
		dWarmCode, dWarmBody := post(cached, "/v1/decompress", refBody)
		if dRefCode != dColdCode || dColdCode != dWarmCode {
			t.Fatalf("decompress status diverged: plain %d, cold %d, warm %d", dRefCode, dColdCode, dWarmCode)
		}
		if !bytes.Equal(dRefBody, dColdBody) || !bytes.Equal(dColdBody, dWarmBody) {
			t.Fatalf("decompress bytes diverged")
		}
	})
}
