// Package devmodel provides analytic throughput models for the baseline
// hardware the paper measures against (§5.1.3): an NVIDIA A100 for the GPU
// compressors and an AMD EPYC 7742 for the CPU compressors. We cannot run
// CUDA kernels or a 64-core EPYC here, but these compressors are
// memory-bandwidth-bound streaming kernels, so their throughput is well
// described by
//
//	T(ratio, zeroFrac) = B_eff / (P·(1 − z·zeroFrac) + 1/ratio)
//
// where B_eff is the device's effective memory bandwidth, P is the
// kernel-family's equivalent number of full passes over the data
// (calibrated once against the paper's reported speedup factors), the
// zero-block term models the §5.2 fast path that all fixed-length coders
// share, and 1/ratio is the compressed-output write traffic.
//
// The models produce the *baseline* bars of Figs. 11–12; CereSZ's own bars
// come from the WSE simulator/analytic model, never from this package.
// Absolute accuracy is not claimed — the reproduction target is the shape:
// who wins and by roughly what factor (2.43–10.98× per the paper).
package devmodel

import "fmt"

// Device is a piece of baseline hardware.
type Device struct {
	// Name identifies the device.
	Name string
	// PeakBandwidthGBps is the spec-sheet memory bandwidth.
	PeakBandwidthGBps float64
	// Efficiency is the achievable fraction of peak for streaming kernels.
	Efficiency float64
}

// EffectiveBandwidth returns the usable bandwidth in GB/s.
func (d Device) EffectiveBandwidth() float64 {
	return d.PeakBandwidthGBps * d.Efficiency
}

// The paper's baseline devices (§5.1.3).
var (
	// A100 is the NVIDIA A100-40GB (108 SMs, HBM2e).
	A100 = Device{Name: "NVIDIA A100", PeakBandwidthGBps: 1555, Efficiency: 0.85}
	// EPYC7742 is the AMD EPYC 7742 (64C/128T, 8-channel DDR4-3200).
	EPYC7742 = Device{Name: "AMD EPYC 7742", PeakBandwidthGBps: 204.8, Efficiency: 0.78}
)

// Kernel models one compressor direction on one device.
type Kernel struct {
	// Name labels the modeled kernel (e.g. "cuSZp compression").
	Name string
	// Device is the hardware the kernel runs on.
	Device Device
	// Passes is the equivalent number of full-data memory passes the
	// kernel performs on non-zero blocks (calibrated).
	Passes float64
	// ZeroSkip is the fraction of per-block work a zero block avoids
	// (0 = none, 1 = all).
	ZeroSkip float64
}

// ThroughputGBps returns the modeled throughput for a run achieving the
// given compression ratio with the given fraction of zero blocks.
func (k Kernel) ThroughputGBps(ratio, zeroFrac float64) (float64, error) {
	if ratio < 1 {
		if ratio <= 0 {
			return 0, fmt.Errorf("devmodel: non-positive ratio %g", ratio)
		}
		// Expansion is possible (incompressible data); keep the model sane.
		ratio = 1
	}
	if zeroFrac < 0 || zeroFrac > 1 {
		return 0, fmt.Errorf("devmodel: zero fraction %g outside [0,1]", zeroFrac)
	}
	passes := k.Passes*(1-k.ZeroSkip*zeroFrac) + 1/ratio
	return k.Device.EffectiveBandwidth() / passes, nil
}

// Calibrated kernels. Passes values are fit so the modeled averages land
// on the paper's reported relationships: cuSZp ≈ 93 GB/s compression and
// ≈ 121 GB/s decompression on A100 (CereSZ's 457/581 GB/s averages are
// 4.9× and 4.8× faster, §5.2); cuSZ several-fold slower than cuSZp;
// SZp-OMP single-digit GB/s; SZ3 well under 1 GB/s.
var (
	CuSZpCompress   = Kernel{Name: "cuSZp compression", Device: A100, Passes: 13.5, ZeroSkip: 0.45}
	CuSZpDecompress = Kernel{Name: "cuSZp decompression", Device: A100, Passes: 10.2, ZeroSkip: 0.45}
	CuSZxCompress   = Kernel{Name: "cuSZx compression", Device: A100, Passes: 14.5, ZeroSkip: 0.60}
	CuSZxDecompress = Kernel{Name: "cuSZx decompression", Device: A100, Passes: 11.5, ZeroSkip: 0.60}
	FZGPUCompress   = Kernel{Name: "FZ-GPU compression", Device: A100, Passes: 16.5, ZeroSkip: 0.35}
	FZGPUDecompress = Kernel{Name: "FZ-GPU decompression", Device: A100, Passes: 13.5, ZeroSkip: 0.35}
	CuSZCompress    = Kernel{Name: "cuSZ compression", Device: A100, Passes: 29, ZeroSkip: 0.10}
	CuSZDecompress  = Kernel{Name: "cuSZ decompression", Device: A100, Passes: 24, ZeroSkip: 0.10}
	SZpCompress     = Kernel{Name: "SZp compression", Device: EPYC7742, Passes: 38, ZeroSkip: 0.45}
	SZpDecompress   = Kernel{Name: "SZp decompression", Device: EPYC7742, Passes: 30, ZeroSkip: 0.45}
	SZ3Compress     = Kernel{Name: "SZ3 compression", Device: EPYC7742, Passes: 420, ZeroSkip: 0}
	SZ3Decompress   = Kernel{Name: "SZ3 decompression", Device: EPYC7742, Passes: 300, ZeroSkip: 0}
)
