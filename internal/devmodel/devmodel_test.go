package devmodel

import "testing"

func TestEffectiveBandwidth(t *testing.T) {
	if got := A100.EffectiveBandwidth(); got <= 0 || got >= A100.PeakBandwidthGBps {
		t.Fatalf("A100 effective bandwidth %g", got)
	}
	if A100.EffectiveBandwidth() <= EPYC7742.EffectiveBandwidth() {
		t.Fatal("A100 not faster than the EPYC")
	}
}

func TestThroughputMonotoneInRatio(t *testing.T) {
	lo, err := CuSZpCompress.ThroughputGBps(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := CuSZpCompress.ThroughputGBps(100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if hi <= lo {
		t.Fatalf("higher ratio did not raise throughput: %g vs %g", lo, hi)
	}
	// The write-traffic term vanishes as ratio → ∞: bounded by B/P.
	capGBps := CuSZpCompress.Device.EffectiveBandwidth() / CuSZpCompress.Passes
	if hi >= capGBps {
		t.Fatalf("throughput %g above the pass-count cap %g", hi, capGBps)
	}
}

func TestSubUnityRatioClamped(t *testing.T) {
	a, err := SZ3Compress.ThroughputGBps(0.5, 0) // expansion
	if err != nil {
		t.Fatal(err)
	}
	b, err := SZ3Compress.ThroughputGBps(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("expansion not clamped to ratio 1: %g vs %g", a, b)
	}
}

func TestValidation(t *testing.T) {
	if _, err := CuSZCompress.ThroughputGBps(0, 0); err == nil {
		t.Fatal("accepted ratio 0")
	}
	if _, err := CuSZCompress.ThroughputGBps(10, -0.1); err == nil {
		t.Fatal("accepted negative zero fraction")
	}
	if _, err := CuSZCompress.ThroughputGBps(10, 1.1); err == nil {
		t.Fatal("accepted zero fraction > 1")
	}
}

func TestDecompressionKernelsFaster(t *testing.T) {
	pairs := [][2]Kernel{
		{CuSZpCompress, CuSZpDecompress},
		{CuSZCompress, CuSZDecompress},
		{SZpCompress, SZpDecompress},
		{SZ3Compress, SZ3Decompress},
	}
	for _, p := range pairs {
		c, err := p[0].ThroughputGBps(10, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		d, err := p[1].ThroughputGBps(10, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		if d <= c {
			t.Fatalf("%s (%g) not faster than %s (%g)", p[1].Name, d, p[0].Name, c)
		}
	}
}
