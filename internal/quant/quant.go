// Package quant implements CereSZ pre-quantization (paper §3, step ①):
// the conversion of floating-point values into error-bounded integer codes
//
//	p_i = round(e_i / (2ε))
//
// and its inverse e'_i = p_i · 2ε. Quantization is the only lossy step of
// the compressor; |e_i − e'_i| ≤ ε is guaranteed for every element whose
// code fits in an int32 (others are reported so the caller can fall back to
// verbatim storage).
//
// Matching the paper's implementation (§4.2, Table 2), the division is
// realized as a multiplication with the reciprocal of 2ε and the rounding as
// an addition of 0.5 followed by a floor. The two halves are exported
// separately (Mul, Round) because the WSE mapping schedules them as distinct
// pipeline sub-stages.
package quant

import (
	"errors"
	"fmt"
	"math"
)

// Mode selects how a Bound's Value is interpreted.
type Mode int

const (
	// Abs interprets Value as an absolute error bound ε.
	Abs Mode = iota
	// Rel interprets Value as a value-range-based relative bound λ:
	// ε = λ · (max − min) of the dataset (paper §5.1.3).
	Rel
)

func (m Mode) String() string {
	switch m {
	case Abs:
		return "ABS"
	case Rel:
		return "REL"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Bound is a user-specified error bound.
type Bound struct {
	Mode  Mode
	Value float64
}

// ABS returns an absolute error bound ε.
func ABS(eps float64) Bound { return Bound{Mode: Abs, Value: eps} }

// REL returns a value-range-relative error bound λ.
func REL(lambda float64) Bound { return Bound{Mode: Rel, Value: lambda} }

func (b Bound) String() string {
	return fmt.Sprintf("%s %.3g", b.Mode, b.Value)
}

// ErrNonPositiveBound is returned when a resolved ε is not strictly positive.
var ErrNonPositiveBound = errors.New("quant: error bound must be positive")

// Resolve converts the bound into an absolute ε for data spanning
// [minVal, maxVal]. For Rel bounds on constant data (range 0) the resolved
// bound degenerates; Resolve substitutes the smallest positive ε that keeps
// the arithmetic finite, which losslessly preserves constant fields.
func (b Bound) Resolve(minVal, maxVal float64) (float64, error) {
	switch b.Mode {
	case Abs:
		if !(b.Value > 0) || math.IsInf(b.Value, 0) || math.IsNaN(b.Value) {
			return 0, ErrNonPositiveBound
		}
		return b.Value, nil
	case Rel:
		if !(b.Value > 0) || math.IsInf(b.Value, 0) || math.IsNaN(b.Value) {
			return 0, ErrNonPositiveBound
		}
		r := maxVal - minVal
		if r <= 0 || math.IsInf(r, 0) || math.IsNaN(r) {
			// Constant (or empty) field: any positive ε bounds the error.
			return b.Value, nil
		}
		return b.Value * r, nil
	default:
		return 0, fmt.Errorf("quant: unknown bound mode %d", int(b.Mode))
	}
}

// Range returns the min and max of data. NaNs are ignored; if all values are
// NaN (or data is empty) it returns (0, 0).
func Range(data []float32) (minVal, maxVal float64) {
	first := true
	for _, v := range data {
		f := float64(v)
		if math.IsNaN(f) {
			continue
		}
		if first {
			minVal, maxVal = f, f
			first = false
			continue
		}
		if f < minVal {
			minVal = f
		}
		if f > maxVal {
			maxVal = f
		}
	}
	return minVal, maxVal
}

// Range64 is Range for float64 data.
func Range64(data []float64) (minVal, maxVal float64) {
	first := true
	for _, v := range data {
		if math.IsNaN(v) {
			continue
		}
		if first {
			minVal, maxVal = v, v
			first = false
			continue
		}
		if v < minVal {
			minVal = v
		}
		if v > maxVal {
			maxVal = v
		}
	}
	return minVal, maxVal
}

// Quantizer holds the resolved parameters of a quantization pass.
type Quantizer struct {
	eps   float64 // absolute bound ε
	recip float64 // 1 / (2ε)
	twoE  float64 // 2ε
}

// MakeQuantizer returns a quantizer for absolute bound eps (must be > 0)
// by value, so callers embedding one in pooled state pay no allocation.
func MakeQuantizer(eps float64) (Quantizer, error) {
	if !(eps > 0) || math.IsInf(eps, 0) || math.IsNaN(eps) {
		return Quantizer{}, ErrNonPositiveBound
	}
	return Quantizer{eps: eps, recip: 1 / (2 * eps), twoE: 2 * eps}, nil
}

// NewQuantizer returns a quantizer for absolute bound eps (must be > 0).
func NewQuantizer(eps float64) (*Quantizer, error) {
	q, err := MakeQuantizer(eps)
	if err != nil {
		return nil, err
	}
	return &q, nil
}

// Eps returns the absolute error bound ε.
func (q *Quantizer) Eps() float64 { return q.eps }

// Recip returns 1/(2ε), the multiplier used by the Mul sub-stage.
func (q *Quantizer) Recip() float64 { return q.recip }

// TwoEps returns 2ε, the reconstruction multiplier.
func (q *Quantizer) TwoEps() float64 { return q.twoE }

// Mul executes the multiplication sub-stage: dst[i] = src[i] · 1/(2ε).
// dst and src must have equal length (dst may alias src).
func (q *Quantizer) Mul(dst, src []float64) {
	if len(dst) != len(src) {
		panic("quant: Mul length mismatch")
	}
	for i, v := range src {
		dst[i] = v * q.recip
	}
}

// MulF32 is Mul for float32 input, producing float64 scaled values.
func (q *Quantizer) MulF32(dst []float64, src []float32) {
	if len(dst) != len(src) {
		panic("quant: MulF32 length mismatch")
	}
	for i, v := range src {
		dst[i] = float64(v) * q.recip
	}
}

// Round executes the rounding sub-stage: dst[i] = floor(src[i] + 0.5).
// ok reports whether every code fits in an int32; when ok is false the
// caller must store the affected block verbatim. NaN input also yields
// ok == false.
func Round(dst []int32, src []float64) (ok bool) {
	if len(dst) != len(src) {
		panic("quant: Round length mismatch")
	}
	ok = true
	for i, v := range src {
		f := math.Floor(v + 0.5)
		if math.IsNaN(f) || f > math.MaxInt32 || f < math.MinInt32 {
			dst[i] = 0
			ok = false
			continue
		}
		dst[i] = int32(f)
	}
	return ok
}

// Quantize runs both sub-stages over a float32 slice:
// dst[i] = round(src[i]/(2ε)). It reports whether all codes fit in int32.
func (q *Quantizer) Quantize(dst []int32, src []float32) (ok bool) {
	if len(dst) != len(src) {
		panic("quant: Quantize length mismatch")
	}
	ok = true
	for i, v := range src {
		f := math.Floor(float64(v)*q.recip + 0.5)
		if math.IsNaN(f) || f > math.MaxInt32 || f < math.MinInt32 {
			dst[i] = 0
			ok = false
			continue
		}
		dst[i] = int32(f)
	}
	return ok
}

// Quantize64 is Quantize for float64 input.
func (q *Quantizer) Quantize64(dst []int32, src []float64) (ok bool) {
	if len(dst) != len(src) {
		panic("quant: Quantize64 length mismatch")
	}
	ok = true
	for i, v := range src {
		f := math.Floor(v*q.recip + 0.5)
		if math.IsNaN(f) || f > math.MaxInt32 || f < math.MinInt32 {
			dst[i] = 0
			ok = false
			continue
		}
		dst[i] = int32(f)
	}
	return ok
}

// Dequantize reconstructs float32 values: dst[i] = src[i] · 2ε.
func (q *Quantizer) Dequantize(dst []float32, src []int32) {
	if len(dst) != len(src) {
		panic("quant: Dequantize length mismatch")
	}
	for i, p := range src {
		dst[i] = float32(float64(p) * q.twoE)
	}
}

// Dequantize64 reconstructs float64 values.
func (q *Quantizer) Dequantize64(dst []float64, src []int32) {
	if len(dst) != len(src) {
		panic("quant: Dequantize64 length mismatch")
	}
	for i, p := range src {
		dst[i] = float64(p) * q.twoE
	}
}
