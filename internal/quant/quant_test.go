package quant

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPaperRunningExample(t *testing.T) {
	// Paper §3, Fig. 5: ε = 0.01 (the text's worked example divides by
	// 2ε = 0.02), value 0.83 quantizes to round(0.83/0.02) ≈ 42 — the paper
	// prints 4 for brevity but the arithmetic it states is 0.83/0.02.
	// Reconstruction error must stay within ε.
	q, err := NewQuantizer(0.01)
	if err != nil {
		t.Fatal(err)
	}
	var codes [1]int32
	if ok := q.Quantize(codes[:], []float32{0.83}); !ok {
		t.Fatal("unexpected overflow")
	}
	// float32(0.83) sits just below the exact value, so the scaled number
	// 41.4999… may round to 41 rather than 42; either code satisfies the
	// bound, which is the property the paper's example demonstrates.
	if codes[0] != 41 && codes[0] != 42 {
		t.Fatalf("code = %d, want 41 or 42", codes[0])
	}
	var rec [1]float64
	q.Dequantize64(rec[:], codes[:])
	if e := math.Abs(rec[0] - float64(float32(0.83))); e > 0.01 {
		t.Fatalf("reconstruction error %g exceeds ε", e)
	}
}

func TestBoundResolve(t *testing.T) {
	cases := []struct {
		name     string
		b        Bound
		min, max float64
		want     float64
		wantErr  bool
	}{
		{"abs passthrough", ABS(0.5), -1, 1, 0.5, false},
		{"rel scales by range", REL(1e-2), -3, 7, 0.1, false},
		{"rel constant data", REL(1e-3), 5, 5, 1e-3, false},
		{"abs zero rejected", ABS(0), 0, 1, 0, true},
		{"abs negative rejected", ABS(-1), 0, 1, 0, true},
		{"rel zero rejected", REL(0), 0, 1, 0, true},
		{"abs NaN rejected", ABS(math.NaN()), 0, 1, 0, true},
		{"abs Inf rejected", ABS(math.Inf(1)), 0, 1, 0, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := c.b.Resolve(c.min, c.max)
			if c.wantErr {
				if err == nil {
					t.Fatalf("Resolve = %g, want error", got)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-c.want) > 1e-15 {
				t.Fatalf("Resolve = %g, want %g", got, c.want)
			}
		})
	}
}

func TestRange(t *testing.T) {
	minV, maxV := Range([]float32{3, -1, 7, 2})
	if minV != -1 || maxV != 7 {
		t.Fatalf("Range = (%g,%g), want (-1,7)", minV, maxV)
	}
	minV, maxV = Range(nil)
	if minV != 0 || maxV != 0 {
		t.Fatalf("Range(nil) = (%g,%g), want (0,0)", minV, maxV)
	}
	minV, maxV = Range([]float32{float32(math.NaN()), 2, float32(math.NaN()), -5})
	if minV != -5 || maxV != 2 {
		t.Fatalf("Range with NaNs = (%g,%g), want (-5,2)", minV, maxV)
	}
}

func TestRange64(t *testing.T) {
	minV, maxV := Range64([]float64{math.NaN(), 1.5, -2.5})
	if minV != -2.5 || maxV != 1.5 {
		t.Fatalf("Range64 = (%g,%g)", minV, maxV)
	}
}

func TestMulRoundMatchesQuantize(t *testing.T) {
	// The two-sub-stage path (Mul then Round, as scheduled on the WSE
	// pipeline) must agree exactly with the fused Quantize.
	q, _ := NewQuantizer(1e-3)
	src := []float32{0.1, -0.25, 3.75, -100, 0, 42.42, -0.0005, 0.0005}
	scaled := make([]float64, len(src))
	staged := make([]int32, len(src))
	fused := make([]int32, len(src))
	q.MulF32(scaled, src)
	if !Round(staged, scaled) {
		t.Fatal("staged path overflowed")
	}
	if !q.Quantize(fused, src) {
		t.Fatal("fused path overflowed")
	}
	for i := range src {
		if staged[i] != fused[i] {
			t.Fatalf("element %d: staged %d != fused %d", i, staged[i], fused[i])
		}
	}
}

func TestRoundOverflow(t *testing.T) {
	dst := make([]int32, 3)
	ok := Round(dst, []float64{1e20, 0, -1e20})
	if ok {
		t.Fatal("Round accepted values beyond int32")
	}
	ok = Round(dst, []float64{math.NaN(), 0, 1})
	if ok {
		t.Fatal("Round accepted NaN")
	}
	ok = Round(dst, []float64{float64(math.MaxInt32), float64(math.MinInt32), 0})
	if !ok {
		t.Fatal("Round rejected representable extremes")
	}
}

func TestQuantizeOverflowDetection(t *testing.T) {
	q, _ := NewQuantizer(1e-12)
	dst := make([]int32, 1)
	if ok := q.Quantize(dst, []float32{1e6}); ok {
		t.Fatal("expected overflow for 1e6 at ε=1e-12")
	}
	if ok := q.Quantize(dst, []float32{float32(math.NaN())}); ok {
		t.Fatal("expected overflow flag for NaN input")
	}
}

func TestDequantize64(t *testing.T) {
	q, _ := NewQuantizer(0.5)
	out := make([]float64, 3)
	q.Dequantize64(out, []int32{-2, 0, 3})
	want := []float64{-2, 0, 3}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out[%d] = %g, want %g", i, out[i], want[i])
		}
	}
}

// Property: for any finite float32, the quantize→dequantize round trip
// respects the error bound in exact (float64) arithmetic. The residual
// float32 output rounding — up to half a ulp of the value — is handled one
// layer up, by internal/core's verbatim fallback.
func TestQuickErrorBound(t *testing.T) {
	q, _ := NewQuantizer(1e-3)
	f := func(raw uint32) bool {
		v := math.Float32frombits(raw)
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) || math.Abs(float64(v)) > 1e5 {
			return true // out of scope: overflow path covered elsewhere
		}
		var code [1]int32
		if !q.Quantize(code[:], []float32{v}) {
			return true
		}
		var rec [1]float64
		q.Dequantize64(rec[:], code[:])
		// Tolerance: ε plus the float64 rounding of the p·2ε product,
		// which is relative to the value's magnitude.
		tol := 1e-3 + math.Abs(float64(v))*4e-16
		return math.Abs(rec[0]-float64(v)) <= tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantization is monotone — larger inputs never produce smaller
// codes (floor(x+0.5) is monotone in x, and Mul preserves order for ε>0).
func TestQuickMonotone(t *testing.T) {
	q, _ := NewQuantizer(1e-2)
	f := func(a, b float32) bool {
		if math.IsNaN(float64(a)) || math.IsNaN(float64(b)) ||
			math.Abs(float64(a)) > 1e6 || math.Abs(float64(b)) > 1e6 {
			return true
		}
		if a > b {
			a, b = b, a
		}
		var ca, cb [1]int32
		if !q.Quantize(ca[:], []float32{a}) || !q.Quantize(cb[:], []float32{b}) {
			return true
		}
		return ca[0] <= cb[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestNewQuantizerRejectsBadEps(t *testing.T) {
	for _, eps := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewQuantizer(eps); err == nil {
			t.Fatalf("NewQuantizer(%g) succeeded, want error", eps)
		}
	}
}
