// Package mapping parallelizes the CereSZ sub-stage chains onto the
// simulated WSE, implementing the paper's three strategies (§4, Fig. 6):
//
//  1. data parallelism across PE rows — blocks are striped over rows;
//  2. pipeline parallelism across PE columns — Algorithm 1 packs the
//     sub-stages into balanced groups mapped to consecutive PEs;
//  3. data parallelism across pipelines within a row — the Fig. 9 relay
//     protocol forwards raw blocks east so every pipeline stays fed.
//
// The package provides both an event-accurate execution path (Plan.Compress
// / Plan.Decompress, which run the real stage kernels on internal/wse and
// produce byte-identical streams to internal/core) and an analytic
// performance model (Project) implementing Formulas (2)–(4), validated
// against the simulator and used to extrapolate to full-wafer geometries.
package mapping

import (
	"fmt"
)

// Group is a contiguous range of sub-stage indices [Lo, Hi) assigned to
// one PE of a pipeline.
type Group struct {
	Lo, Hi int
}

// Len returns the number of sub-stages in the group.
func (g Group) Len() int { return g.Hi - g.Lo }

// Distribute implements Algorithm 1: greedily pack n sub-stages with the
// given planning-time costs into m contiguous groups. Groups 1..m-1 accept
// stages while their cost is below C/m (C = total cost); the final group
// takes the remainder. Costs must be non-negative and m ≥ 1.
func Distribute(costs []int64, m int) ([]Group, error) {
	n := len(costs)
	if m < 1 {
		return nil, fmt.Errorf("mapping: cannot distribute into %d groups", m)
	}
	if n == 0 {
		return nil, fmt.Errorf("mapping: no stages to distribute")
	}
	var total int64
	for i, c := range costs {
		if c < 0 {
			return nil, fmt.Errorf("mapping: negative cost %d for stage %d", c, i)
		}
		total += c
	}
	target := float64(total) / float64(m)

	groups := make([]Group, m)
	next := 0
	for g := 0; g < m-1; g++ {
		groups[g].Lo = next
		var sum int64
		// "while the sum of runtime of the stages in G_j < C/m, move the
		// next stage to G_i" — but never starve the remaining groups of
		// their one stage each... the paper's greedy can do that for very
		// skewed costs; we stop early so every later group stays valid
		// (an empty trailing group is handled by the pipeline as a
		// pass-through PE).
		for next < n && float64(sum) < target {
			sum += costs[next]
			next++
		}
		groups[g].Hi = next
	}
	groups[m-1] = Group{Lo: next, Hi: n}
	return groups, nil
}

// GroupCost sums the costs inside a group.
func GroupCost(costs []int64, g Group) int64 {
	var sum int64
	for i := g.Lo; i < g.Hi; i++ {
		sum += costs[i]
	}
	return sum
}

// Bottleneck returns the maximum group cost — the pipeline's steady-state
// per-block compute time.
func Bottleneck(costs []int64, groups []Group) int64 {
	var maxCost int64
	for _, g := range groups {
		if c := GroupCost(costs, g); c > maxCost {
			maxCost = c
		}
	}
	return maxCost
}

// MaxPipelineLength returns ⌊C / t₁⌋ where t₁ is the largest single
// sub-stage cost: pipelines longer than this cannot run faster because the
// indivisible bottleneck stage caps per-block time (paper §4.2 — the
// Multiplication step bounds the feasible pipeline length).
func MaxPipelineLength(costs []int64) int {
	var total, maxCost int64
	for _, c := range costs {
		total += c
		if c > maxCost {
			maxCost = c
		}
	}
	if maxCost == 0 {
		return 1
	}
	n := int(total / maxCost)
	if n < 1 {
		return 1
	}
	return n
}
