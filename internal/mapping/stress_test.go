package mapping

import (
	"bytes"
	"testing"

	"ceresz/internal/core"
	"ceresz/internal/wse"
)

// TestLargeStripMatchesModel pushes the event simulator to a 1×128 strip
// with 16k blocks — a scale where the relay term is a first-order effect —
// and checks both functional equality with the host compressor and
// agreement with the analytic model. Skipped under -short.
func TestLargeStripMatchesModel(t *testing.T) {
	if testing.Short() {
		t.Skip("large simulation")
	}
	data := smoothField(32*16384, 42)
	eps := 1e-3
	ref, stats, err := core.CompressWithEps(nil, data, eps, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	chain := compressChain(t, eps, 8)
	plan, err := NewPlan(chain, PlanConfig{Mesh: wse.Config{Rows: 1, Cols: 128}, PipelineLen: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.Compress(data)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Bytes, ref) {
		t.Fatal("large-strip stream differs from host stream")
	}
	proj, err := plan.Project(Workload{
		Blocks:           stats.Blocks,
		Elements:         stats.Elements,
		WidthHist:        stats.WidthHistogram,
		VerbatimBlocks:   stats.VerbatimBlocks,
		AvgInputWavelets: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	ratio := proj.TotalCycles / float64(res.Cycles)
	if ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("model %.0f vs sim %d cycles at 128 columns (ratio %.2f)",
			proj.TotalCycles, res.Cycles, ratio)
	}
}

// TestWideMeshDecompressRoundTrip exercises an 8×16 mesh in the
// decompression direction at scale. Skipped under -short.
func TestWideMeshDecompressRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("large simulation")
	}
	data := smoothField(32*8192, 43)
	eps := 1e-3
	comp, _, err := core.CompressWithEps(nil, data, eps, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref, _, err := core.Decompress(nil, comp, 0)
	if err != nil {
		t.Fatal(err)
	}
	chain := decompressChain(t, eps, 8)
	plan, err := NewPlan(chain, PlanConfig{Mesh: wse.Config{Rows: 8, Cols: 16}, PipelineLen: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if res.Data[i] != ref[i] {
			t.Fatalf("differs at %d", i)
		}
	}
	// Rows must share the load: every row's head PE handled messages.
	for r := 0; r < 8; r++ {
		if res.Mesh.PE(r, 0).Stats().Handled == 0 {
			t.Fatalf("row %d idle", r)
		}
	}
}
