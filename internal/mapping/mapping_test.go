package mapping

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ceresz/internal/core"
	"ceresz/internal/flenc"
	"ceresz/internal/stages"
	"ceresz/internal/wse"
)

func smoothField(n int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float32, n)
	v := 0.0
	for i := range data {
		v += rng.NormFloat64() * 0.02
		data[i] = float32(math.Sin(float64(i)*0.015)*2 + v)
	}
	return data
}

func compressChain(t *testing.T, eps float64, estWidth int) *stages.Chain {
	t.Helper()
	c, err := stages.NewCompressChain(stages.Config{BlockLen: 32, Eps: eps, EstWidth: estWidth})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func decompressChain(t *testing.T, eps float64, estWidth int) *stages.Chain {
	t.Helper()
	c, err := stages.NewDecompressChain(stages.Config{BlockLen: 32, Eps: eps, EstWidth: estWidth})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// --- Algorithm 1 ---

func TestDistributeBasics(t *testing.T) {
	costs := []int64{5078, 1038, 975, 1044, 1037, 1386, 1976, 1976, 1976, 96}
	for m := 1; m <= len(costs); m++ {
		groups, err := Distribute(costs, m)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if len(groups) != m {
			t.Fatalf("m=%d: %d groups", m, len(groups))
		}
		// Contiguous cover of [0, n).
		next := 0
		for _, g := range groups {
			if g.Lo != next || g.Hi < g.Lo {
				t.Fatalf("m=%d: bad group %+v (next=%d)", m, g, next)
			}
			next = g.Hi
		}
		if next != len(costs) {
			t.Fatalf("m=%d: groups cover %d of %d stages", m, next, len(costs))
		}
	}
}

func TestDistributeGreedyBoundary(t *testing.T) {
	// C = 12, m = 3 → target 4. Greedy fills: {3,3} (sum 6 ≥ 4 after 2nd),
	// wait — it stops as soon as sum ≥ 4, so group1 = {3, 3} (3 < 4, add
	// next → 6). Group2 = {3, 3} likewise; group3 = remainder.
	costs := []int64{3, 3, 3, 3}
	groups, err := Distribute(costs, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []Group{{0, 2}, {2, 4}, {4, 4}}
	for i := range want {
		if groups[i] != want[i] {
			t.Fatalf("groups = %v, want %v", groups, want)
		}
	}
}

func TestDistributeErrors(t *testing.T) {
	if _, err := Distribute(nil, 2); err == nil {
		t.Fatal("accepted empty stages")
	}
	if _, err := Distribute([]int64{1}, 0); err == nil {
		t.Fatal("accepted m=0")
	}
	if _, err := Distribute([]int64{-1}, 1); err == nil {
		t.Fatal("accepted negative cost")
	}
}

func TestMaxPipelineLength(t *testing.T) {
	// Paper §4.2: max feasible length = ⌊C/t₁⌋ with t₁ the largest stage.
	costs := []int64{5078, 1038, 975, 1044, 1037, 1386, 1976, 1976}
	var total int64
	for _, c := range costs {
		total += c
	}
	want := int(total / 5078)
	if got := MaxPipelineLength(costs); got != want {
		t.Fatalf("MaxPipelineLength = %d, want %d", got, want)
	}
	if MaxPipelineLength([]int64{0, 0}) != 1 {
		t.Fatal("zero costs should give length 1")
	}
}

func TestQuickDistributeInvariants(t *testing.T) {
	f := func(raw []uint16, mRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		costs := make([]int64, len(raw))
		for i, r := range raw {
			costs[i] = int64(r)
		}
		m := int(mRaw)%len(costs) + 1
		groups, err := Distribute(costs, m)
		if err != nil {
			return false
		}
		next := 0
		for _, g := range groups {
			if g.Lo != next || g.Hi < g.Lo || g.Hi > len(costs) {
				return false
			}
			next = g.Hi
		}
		return next == len(costs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// --- Functional equivalence with the host compressor ---

func TestPipelineMatchesCoreCompress(t *testing.T) {
	data := smoothField(32*300+9, 1)
	eps := 1e-3
	ref, _, err := core.CompressWithEps(nil, data, eps, core.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mesh wse.Config
		pl   int
	}{
		{"1x1 single PE", wse.Config{Rows: 1, Cols: 1}, 1},
		{"1x8 multi-pipeline", wse.Config{Rows: 1, Cols: 8}, 1},
		{"4x4", wse.Config{Rows: 4, Cols: 4}, 1},
		{"1x6 pipeline len 3", wse.Config{Rows: 1, Cols: 6}, 3},
		{"2x9 pipeline len 4 (ragged)", wse.Config{Rows: 2, Cols: 9}, 4},
		{"3x10 pipeline len 5", wse.Config{Rows: 3, Cols: 10}, 5},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			chain := compressChain(t, eps, 8)
			plan, err := NewPlan(chain, PlanConfig{Mesh: c.mesh, PipelineLen: c.pl})
			if err != nil {
				t.Fatal(err)
			}
			res, err := plan.Compress(data)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(res.Bytes, ref) {
				t.Fatalf("simulated stream differs from host stream (%d vs %d bytes)", len(res.Bytes), len(ref))
			}
			if res.Cycles <= 0 || res.ThroughputGBps <= 0 {
				t.Fatalf("degenerate result: cycles=%d tput=%g", res.Cycles, res.ThroughputGBps)
			}
		})
	}
}

func TestPipelineDecompressMatchesCore(t *testing.T) {
	data := smoothField(32*150+3, 2)
	eps := 1e-3
	comp, _, err := core.CompressWithEps(nil, data, eps, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref, _, err := core.Decompress(nil, comp, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, pl := range []int{1, 2, 4} {
		chain := decompressChain(t, eps, 8)
		plan, err := NewPlan(chain, PlanConfig{Mesh: wse.Config{Rows: 2, Cols: 8}, PipelineLen: pl})
		if err != nil {
			t.Fatal(err)
		}
		res, err := plan.Decompress(comp)
		if err != nil {
			t.Fatalf("pl=%d: %v", pl, err)
		}
		if len(res.Data) != len(ref) {
			t.Fatalf("pl=%d: %d elements, want %d", pl, len(res.Data), len(ref))
		}
		for i := range ref {
			if res.Data[i] != ref[i] {
				t.Fatalf("pl=%d: element %d differs: %g vs %g", pl, i, res.Data[i], ref[i])
			}
		}
	}
}

func TestPipelineWithVerbatimAndZeroBlocks(t *testing.T) {
	data := smoothField(32*40, 3)
	for i := 0; i < 32; i++ {
		data[i] = 0 // one zero block
	}
	for i := 32; i < 64; i++ {
		data[i] = float32(math.Inf(1)) // one verbatim block
	}
	eps := 1e-3
	ref, _, err := core.CompressWithEps(nil, data, eps, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	chain := compressChain(t, eps, 8)
	plan, err := NewPlan(chain, PlanConfig{Mesh: wse.Config{Rows: 2, Cols: 6}, PipelineLen: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.Compress(data)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Bytes, ref) {
		t.Fatal("stream with zero+verbatim blocks differs from host stream")
	}
	dchain := decompressChain(t, eps, 8)
	dplan, err := NewPlan(dchain, PlanConfig{Mesh: wse.Config{Rows: 2, Cols: 6}, PipelineLen: 2})
	if err != nil {
		t.Fatal(err)
	}
	dres, err := dplan.Decompress(res.Bytes)
	if err != nil {
		t.Fatal(err)
	}
	for i := 32; i < 64; i++ {
		if !math.IsInf(float64(dres.Data[i]), 1) {
			t.Fatalf("verbatim Inf lost at %d", i)
		}
	}
}

// --- Scaling behaviour ---

func TestRowScalingLinear(t *testing.T) {
	// Fig. 7: throughput grows linearly with the number of rows.
	data := smoothField(32*256, 4)
	eps := 1e-3
	var xs []int
	var times []float64
	for _, rows := range []int{1, 2, 4, 8} {
		chain := compressChain(t, eps, 8)
		plan, err := NewPlan(chain, PlanConfig{Mesh: wse.Config{Rows: rows, Cols: 1}, PipelineLen: 1})
		if err != nil {
			t.Fatal(err)
		}
		res, err := plan.Compress(data)
		if err != nil {
			t.Fatal(err)
		}
		xs = append(xs, rows)
		times = append(times, float64(res.Cycles))
	}
	if err := SpeedupIsLinear(xs, times, 0.10); err != nil {
		t.Fatalf("row scaling not linear: %v (times=%v)", err, times)
	}
}

func TestColumnScalingNearLinear(t *testing.T) {
	// §4.4: with pipeline length 1, adding columns adds pipelines; the
	// relay overhead keeps it sub-linear but close.
	data := smoothField(32*512, 5)
	eps := 1e-3
	var cycles []float64
	cols := []int{2, 4, 8}
	for _, tc := range cols {
		chain := compressChain(t, eps, 8)
		plan, err := NewPlan(chain, PlanConfig{Mesh: wse.Config{Rows: 1, Cols: tc}, PipelineLen: 1})
		if err != nil {
			t.Fatal(err)
		}
		res, err := plan.Compress(data)
		if err != nil {
			t.Fatal(err)
		}
		cycles = append(cycles, float64(res.Cycles))
	}
	// Doubling columns must cut time by at least 1.7× here (relay cost is
	// small relative to compute at these widths).
	for i := 1; i < len(cycles); i++ {
		gain := cycles[i-1] / cycles[i]
		if gain < 1.7 {
			t.Fatalf("cols %d→%d speedup %.2f, want ≥1.7 (cycles=%v)", cols[i-1], cols[i], gain, cycles)
		}
	}
}

func TestSinglePEPipelineFastest(t *testing.T) {
	// Fig. 13: on a fixed mesh, pipeline length 1 beats longer pipelines
	// under the paper's Fig. 9 protocol, where raw traffic crossing
	// interior pipeline PEs occupies their processor.
	data := smoothField(32*256, 6)
	eps := 1e-3
	var single float64
	for _, pl := range []int{1, 2, 4} {
		chain := compressChain(t, eps, 8)
		plan, err := NewPlan(chain, PlanConfig{
			Mesh:           wse.Config{Rows: 1, Cols: 8},
			PipelineLen:    pl,
			ProcessorRelay: true, // paper-literal protocol
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := plan.Compress(data)
		if err != nil {
			t.Fatal(err)
		}
		if pl == 1 {
			single = res.ThroughputGBps
			continue
		}
		if res.ThroughputGBps >= single {
			t.Fatalf("pl=%d throughput %.4f not below single-PE %.4f", pl, res.ThroughputGBps, single)
		}
	}
}

func TestRouterRelayNarrowsPipelineGap(t *testing.T) {
	// Extension beyond the paper: when interior pipeline PEs route raw
	// traffic in the fabric (Fig. 3 static color routing) instead of their
	// processor, longer pipelines recover most of their relay losses —
	// the output stays byte-identical, only timing shifts.
	data := smoothField(32*256, 6)
	eps := 1e-3
	run := func(pl int, procRelay bool) *Result {
		chain := compressChain(t, eps, 8)
		plan, err := NewPlan(chain, PlanConfig{
			Mesh:           wse.Config{Rows: 1, Cols: 8},
			PipelineLen:    pl,
			ProcessorRelay: procRelay,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := plan.Compress(data)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	paper := run(2, true)
	routed := run(2, false)
	if !bytes.Equal(paper.Bytes, routed.Bytes) {
		t.Fatal("relay mode changed the output stream")
	}
	if routed.Cycles > paper.Cycles {
		t.Fatalf("router relay slower than processor relay: %d vs %d cycles", routed.Cycles, paper.Cycles)
	}
	// Interior PEs must have done their raw forwarding in the router.
	interior := routed.Mesh.PE(0, 1).Stats()
	if interior.Routed == 0 {
		t.Fatal("interior PE routed nothing")
	}
	if interior.RelayCycles != 0 {
		t.Fatalf("interior PE still paid %d relay cycles in router mode", interior.RelayCycles)
	}
	paperInterior := paper.Mesh.PE(0, 1).Stats()
	if paperInterior.RelayCycles == 0 {
		t.Fatal("paper-literal mode did not pay interior relay cycles")
	}
}

func TestRelayGrowsWithColumns(t *testing.T) {
	// Fig. 10(a): the relay time on the west-most PE grows linearly with
	// the number of columns.
	data := smoothField(32*512, 7)
	eps := 1e-3
	var relays []float64
	cols := []int{4, 8, 16}
	for _, tc := range cols {
		chain := compressChain(t, eps, 8)
		plan, err := NewPlan(chain, PlanConfig{Mesh: wse.Config{Rows: 1, Cols: tc}, PipelineLen: 1})
		if err != nil {
			t.Fatal(err)
		}
		res, err := plan.Compress(data)
		if err != nil {
			t.Fatal(err)
		}
		relays = append(relays, float64(res.Mesh.PE(0, 0).Stats().RelayCycles))
	}
	// Per-block relay work on PE(0,0) is ∝ (P−1); with fixed total blocks
	// the total relay is ∝ (P−1)/P... normalize per handled block:
	// expect relays[i]/relays[i-1] ≈ (cols[i]-1)/(cols[i-1]-1) · (#blocks
	// ratio = cols[i-1]/cols[i]).
	for i := 1; i < len(relays); i++ {
		want := float64(cols[i]-1) / float64(cols[i-1]-1) * float64(cols[i-1]) / float64(cols[i])
		got := relays[i] / relays[i-1]
		if math.Abs(got-want)/want > 0.15 {
			t.Fatalf("relay growth %0.2f, want ≈%0.2f (relays=%v)", got, want, relays)
		}
	}
}

// --- Analytic model ---

func TestModelMatchesSimulator(t *testing.T) {
	data := smoothField(32*512, 8)
	eps := 1e-3
	comp, stats, err := core.CompressWithEps(nil, data, eps, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_ = comp
	for _, tc := range []struct {
		mesh wse.Config
		pl   int
	}{
		{wse.Config{Rows: 1, Cols: 4}, 1},
		{wse.Config{Rows: 2, Cols: 8}, 1},
		{wse.Config{Rows: 1, Cols: 8}, 2},
		{wse.Config{Rows: 2, Cols: 6}, 3},
	} {
		chain := compressChain(t, eps, 8)
		plan, err := NewPlan(chain, PlanConfig{Mesh: tc.mesh, PipelineLen: tc.pl})
		if err != nil {
			t.Fatal(err)
		}
		res, err := plan.Compress(data)
		if err != nil {
			t.Fatal(err)
		}
		w := Workload{
			Blocks:           stats.Blocks,
			Elements:         len(data),
			WidthHist:        stats.WidthHistogram,
			VerbatimBlocks:   stats.VerbatimBlocks,
			AvgInputWavelets: 32,
		}
		proj, err := plan.Project(w)
		if err != nil {
			t.Fatal(err)
		}
		ratio := proj.TotalCycles / float64(res.Cycles)
		if ratio < 0.7 || ratio > 1.4 {
			t.Fatalf("mesh %dx%d pl=%d: model %.0f vs sim %d cycles (ratio %.2f)",
				tc.mesh.Rows, tc.mesh.Cols, tc.pl, proj.TotalCycles, res.Cycles, ratio)
		}
	}
}

func TestProjectValidation(t *testing.T) {
	chain := compressChain(t, 1e-3, 8)
	plan, err := NewPlan(chain, PlanConfig{Mesh: wse.Config{Rows: 1, Cols: 4}, PipelineLen: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Project(Workload{Blocks: 0}); err == nil {
		t.Fatal("accepted empty workload")
	}
	w := UniformWorkload(10, 320, 12, 32)
	w.WidthHist[12] = 5 // break the histogram
	if _, err := plan.Project(w); err == nil {
		t.Fatal("accepted inconsistent histogram")
	}
}

func TestUniformWorkload(t *testing.T) {
	w := UniformWorkload(100, 3200, 13, 32)
	if w.WidthHist[13] != 100 || w.Blocks != 100 || w.Elements != 3200 {
		t.Fatalf("bad uniform workload %+v", w)
	}
}

// --- Plan validation ---

func TestNewPlanValidation(t *testing.T) {
	chain := compressChain(t, 1e-3, 4)
	cases := []PlanConfig{
		{Mesh: wse.Config{Rows: 1, Cols: 4}, PipelineLen: 0},
		{Mesh: wse.Config{Rows: 0, Cols: 4}, PipelineLen: 1},
		{Mesh: wse.Config{Rows: 1, Cols: 2}, PipelineLen: 3},
		{Mesh: wse.Config{Rows: 1, Cols: 64}, PipelineLen: 50}, // > #stages
	}
	for i, cfg := range cases {
		if _, err := NewPlan(chain, cfg); err == nil {
			t.Fatalf("case %d: accepted invalid config %+v", i, cfg)
		}
	}
	if _, err := NewPlan(nil, PlanConfig{Mesh: wse.Config{Rows: 1, Cols: 1}, PipelineLen: 1}); err == nil {
		t.Fatal("accepted nil chain")
	}
}

func TestMemoryBudgetRejection(t *testing.T) {
	// A giant block cannot fit one PE's 48 KB at pipeline length 1.
	chain, err := stages.NewCompressChain(stages.Config{BlockLen: 4096, Eps: 1e-3, EstWidth: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewPlan(chain, PlanConfig{Mesh: wse.Config{Rows: 1, Cols: 1, MemPerPE: 8 * 1024}, PipelineLen: 1})
	if err == nil {
		t.Fatal("plan accepted a block state exceeding PE memory")
	}
}

func TestDescribe(t *testing.T) {
	chain := compressChain(t, 1e-3, 4)
	plan, err := NewPlan(chain, PlanConfig{Mesh: wse.Config{Rows: 1, Cols: 4}, PipelineLen: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s := plan.Describe(); len(s) == 0 {
		t.Fatal("empty description")
	}
	if plan.BottleneckCycles() <= 0 || plan.TotalCycles() <= 0 {
		t.Fatal("degenerate plan costs")
	}
	if g := plan.GroupOf(0); g.Len() == 0 {
		t.Fatal("first group empty")
	}
}

func TestDirectionMismatchErrors(t *testing.T) {
	cchain := compressChain(t, 1e-3, 4)
	plan, err := NewPlan(cchain, PlanConfig{Mesh: wse.Config{Rows: 1, Cols: 1}, PipelineLen: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Decompress([]byte{}); err == nil {
		t.Fatal("Decompress on compress chain accepted")
	}
	dchain := decompressChain(t, 1e-3, 4)
	dplan, err := NewPlan(dchain, PlanConfig{Mesh: wse.Config{Rows: 1, Cols: 1}, PipelineLen: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dplan.Compress(nil); err == nil {
		t.Fatal("Compress on decompress chain accepted")
	}
}

func TestDecompressStreamMismatch(t *testing.T) {
	data := smoothField(320, 9)
	comp, _, err := core.CompressWithEps(nil, data, 1e-3, core.Options{HeaderBytes: flenc.HeaderU8})
	if err != nil {
		t.Fatal(err)
	}
	// Plan built for u32 headers must reject a u8-header stream.
	dchain := decompressChain(t, 1e-3, 4)
	plan, err := NewPlan(dchain, PlanConfig{Mesh: wse.Config{Rows: 1, Cols: 1}, PipelineLen: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Decompress(comp); err == nil {
		t.Fatal("accepted mismatched stream header size")
	}
}

func TestSingleIngressMatchesDistributed(t *testing.T) {
	// Feeding everything through PE(0,0) must produce the identical stream
	// — only timing changes (the single west link serializes the input).
	data := smoothField(32*200, 12)
	eps := 1e-3
	run := func(single bool) *Result {
		chain := compressChain(t, eps, 8)
		plan, err := NewPlan(chain, PlanConfig{
			Mesh:          wse.Config{Rows: 4, Cols: 4},
			PipelineLen:   1,
			SingleIngress: single,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := plan.Compress(data)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	dist := run(false)
	single := run(true)
	if !bytes.Equal(dist.Bytes, single.Bytes) {
		t.Fatal("single-ingress stream differs")
	}
	// The single 32-bit ingress must cost measurable throughput even on a
	// compute-bound 4×4 mesh; at wafer scale the one link caps the whole
	// machine at ~3.4 GB/s, which is why the CS-2 dedicates edge PEs to
	// distributed routing (§5.1.1).
	if float64(single.Cycles) < 1.15*float64(dist.Cycles) {
		t.Fatalf("single ingress only %d vs distributed %d cycles; expected a penalty",
			single.Cycles, dist.Cycles)
	}
	// Row heads below row 0 must have received traffic via the column.
	for r := 1; r < 4; r++ {
		if single.Mesh.PE(r, 0).Stats().Handled == 0 {
			t.Fatalf("row %d head idle in single-ingress mode", r)
		}
	}
}

func TestSingleIngressDecompress(t *testing.T) {
	data := smoothField(32*120, 13)
	eps := 1e-3
	comp, _, err := core.CompressWithEps(nil, data, eps, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref, _, err := core.Decompress(nil, comp, 0)
	if err != nil {
		t.Fatal(err)
	}
	chain := decompressChain(t, eps, 8)
	plan, err := NewPlan(chain, PlanConfig{
		Mesh:          wse.Config{Rows: 3, Cols: 4},
		PipelineLen:   2,
		SingleIngress: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if res.Data[i] != ref[i] {
			t.Fatalf("differs at %d", i)
		}
	}
}

func TestBlockLen64PipelineMatchesCore(t *testing.T) {
	// The simulated pipeline handles non-default block lengths too.
	data := smoothField(64*80+5, 14)
	eps := 1e-3
	ref, _, err := core.CompressWithEps(nil, data, eps, core.Options{BlockLen: 64, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	chain, err := stages.NewCompressChain(stages.Config{BlockLen: 64, Eps: eps, EstWidth: 8})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(chain, PlanConfig{Mesh: wse.Config{Rows: 2, Cols: 4}, PipelineLen: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.Compress(data)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Bytes, ref) {
		t.Fatal("L=64 simulated stream differs from host stream")
	}
}

func TestSingleIngressModelCap(t *testing.T) {
	// At wafer scale the single-ingress model must cap near the one-link
	// bandwidth: 4 B/cycle at 850 MHz = 3.4 GB/s.
	chain := compressChain(t, 1e-3, 8)
	plan, err := NewPlan(chain, PlanConfig{
		Mesh:          wse.Config{Rows: 512, Cols: 512},
		PipelineLen:   1,
		SingleIngress: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	proj, err := plan.Project(UniformWorkload(1<<20, 32<<20, 8, 32))
	if err != nil {
		t.Fatal(err)
	}
	if proj.SteadyThroughputGBps > 3.5 {
		t.Fatalf("single-ingress projection %.2f GB/s above the one-link cap", proj.SteadyThroughputGBps)
	}
	// Distributed ingress on the same mesh must be orders of magnitude up.
	plan2, err := NewPlan(chain, PlanConfig{Mesh: wse.Config{Rows: 512, Cols: 512}, PipelineLen: 1})
	if err != nil {
		t.Fatal(err)
	}
	proj2, err := plan2.Project(UniformWorkload(1<<20, 32<<20, 8, 32))
	if err != nil {
		t.Fatal(err)
	}
	if proj2.SteadyThroughputGBps < 50*proj.SteadyThroughputGBps {
		t.Fatalf("distributed %.1f vs single %.1f GB/s: expected ≥50x", proj2.SteadyThroughputGBps, proj.SteadyThroughputGBps)
	}
}
