package mapping

import (
	"fmt"

	"ceresz/internal/stages"
	"ceresz/internal/wse"
)

// TunerConstraints captures the two §4.4 assumptions that can force a
// pipeline longer than 1: the rate at which the host can generate data and
// the PE-local memory available for the live block state.
type TunerConstraints struct {
	// InputWaveletsPerCycle is the sustained host data rate per row in
	// 32-bit words per cycle (≤ 1, the link rate). Zero means "fast
	// enough to saturate" (the paper's assumption 1).
	InputWaveletsPerCycle float64
	// MemPerPE overrides the mesh memory budget (0 = mesh default).
	MemPerPE int
}

// TuningPoint records one candidate pipeline length's projected rate.
type TuningPoint struct {
	PipelineLen    int
	ThroughputGBps float64
	// Feasible is false when the candidate violates a constraint (memory
	// or stage count); infeasible points carry zero throughput.
	Feasible bool
	Reason   string
}

// SelectPipelineLength evaluates every useful pipeline length (1 …
// ⌊C/t₁⌋, §4.2) for the chain on the mesh under the workload and returns
// the best feasible choice with the full candidate table. This automates
// the paper's "the optimal configuration can be easily obtained by tuning"
// (§4.4).
func SelectPipelineLength(chain *stages.Chain, mesh wse.Config, w Workload, cons TunerConstraints) (int, []TuningPoint, error) {
	if chain == nil {
		return 0, nil, fmt.Errorf("mapping: nil chain")
	}
	if cons.MemPerPE > 0 {
		mesh.MemPerPE = cons.MemPerPE
	}
	costs := chain.EstimateCycles(uint(chain.Cfg.EstWidth))
	maxLen := MaxPipelineLength(costs)
	if maxLen > mesh.Cols {
		maxLen = mesh.Cols
	}
	if maxLen > len(chain.Stages) {
		maxLen = len(chain.Stages)
	}

	var points []TuningPoint
	best := 0
	bestRate := 0.0
	for pl := 1; pl <= maxLen; pl++ {
		pt := TuningPoint{PipelineLen: pl}
		plan, err := NewPlan(chain, PlanConfig{Mesh: mesh, PipelineLen: pl})
		if err != nil {
			pt.Reason = err.Error()
			points = append(points, pt)
			continue
		}
		proj, err := plan.Project(w)
		if err != nil {
			pt.Reason = err.Error()
			points = append(points, pt)
			continue
		}
		rate := proj.SteadyThroughputGBps
		// Assumption 1 (§4.4): the host feed caps each row's intake. When
		// the feed is slower than the pipelines' demand, the row's rate is
		// feed-bound and longer pipelines stop costing throughput.
		if cons.InputWaveletsPerCycle > 0 {
			cfg := mesh.WithDefaults()
			feedGBps := cons.InputWaveletsPerCycle * 4 * cfg.ClockHz * float64(cfg.Rows) / 1e9
			if feedGBps < rate {
				rate = feedGBps
			}
		}
		pt.Feasible = true
		pt.ThroughputGBps = rate
		points = append(points, pt)
		if best == 0 || rate > bestRate {
			best = pl
			bestRate = rate
		}
	}
	if best == 0 {
		return 0, points, fmt.Errorf("mapping: no feasible pipeline length (memory too small for block length %d?)", chain.Cfg.BlockLen)
	}
	return best, points, nil
}
