package mapping

import (
	"fmt"
	"strings"
	"time"

	"ceresz/internal/core"
	"ceresz/internal/stages"
	"ceresz/internal/telemetry"
	"ceresz/internal/wse"
)

// Fabric colors used by the mapping (well inside the 24 available).
const (
	// colorRaw carries unprocessed blocks east along a row (the Fig. 9
	// relay traffic).
	colorRaw wse.Color = 0
	// colorStage carries intermediate block state between consecutive PEs
	// of one pipeline.
	colorStage wse.Color = 1
	// colorColumn carries raw blocks down the west column in single-ingress
	// mode (all data entering at PE(0,0)).
	colorColumn wse.Color = 2
)

// flowBlock is the payload traveling the fabric: one block and its global
// position, so the emitted stream can be reassembled in order.
type flowBlock struct {
	id  int
	row int                // target row (single-ingress distribution)
	raw []float32          // compression input (nil for decompression)
	enc []byte             // decompression input (nil for compression)
	st  *stages.BlockState // created when a head PE captures the block
}

// peProgram is the per-PE code: relay raw blocks for pipelines to the
// east, capture every (pipelinesEast+1)-th raw block if a head, and run
// the assigned stage group on pipeline traffic (paper Fig. 9b).
type peProgram struct {
	plan   *Plan
	isHead bool
	isTail bool
	group  Group

	relayInit int // blocks to relay between two captures
	relayLeft int
}

// Init implements wse.Program: reserve this PE's static working set — its
// share of the block state plus a relay buffer when raw traffic passes
// through — against the 48 KB budget.
func (pp *peProgram) Init(ctx *wse.Context) {
	pp.relayLeft = pp.relayInit
	L := pp.plan.Chain.Cfg.BlockLen
	bytes := stateBytes(L) / pp.plan.Cfg.PipelineLen
	if pp.relayInit > 0 || !pp.isHead {
		bytes += relayBytes(L)
	}
	if err := ctx.Alloc(bytes); err != nil {
		// Unreachable: NewPlan's checkMemory is strictly more conservative.
		panic(err)
	}
}

// OnMessage implements wse.Program.
func (pp *peProgram) OnMessage(ctx *wse.Context, msg wse.Message) {
	switch msg.Color {
	case colorColumn:
		// Single-ingress distribution: raw blocks flow south down the west
		// column; each row head peels off its own rows' blocks and turns
		// them into ordinary row traffic.
		fb := msg.Payload.(*flowBlock)
		if fb.row != ctx.Coord().Row {
			ctx.LabelSpan("feed")
			ctx.Forward(wse.South, msg)
			return
		}
		msg.Color = colorRaw
		pp.OnMessage(ctx, msg)
	case colorRaw:
		if !pp.isHead {
			// Interior PEs relay raw traffic toward farther pipelines.
			ctx.LabelSpan("relay")
			ctx.Forward(wse.East, msg)
			return
		}
		if pp.relayLeft > 0 {
			pp.relayLeft--
			ctx.LabelSpan("relay")
			ctx.Forward(wse.East, msg)
			return
		}
		pp.relayLeft = pp.relayInit
		fb := msg.Payload.(*flowBlock)
		fb.st = stages.NewBlockState(pp.plan.Chain.Cfg.BlockLen)
		if pp.plan.Chain.Dir == stages.Compress {
			fb.st.ResetForCompress(fb.raw)
		} else {
			fb.st.ResetForDecompress(fb.enc)
		}
		pp.process(ctx, fb)
	case colorStage:
		pp.process(ctx, msg.Payload.(*flowBlock))
	default:
		panic(fmt.Sprintf("mapping: unexpected color %d at %v", msg.Color, ctx.Coord()))
	}
}

// ShardProfile implements wse.ShardAware: all of the mapping's row
// traffic is strictly east-bound (colorRaw relays, colorStage pipeline
// hand-offs), so every row can simulate as its own shard. In
// single-ingress mode the column-0 heads additionally receive the
// colorColumn feed from the row above, which the engine resolves with
// its deterministic pre-pass.
func (pp *peProgram) ShardProfile() wse.ShardProfile {
	prof := wse.ShardProfile{RowLocal: true}
	if pp.plan.Cfg.SingleIngress {
		prof.FeedColors = []wse.Color{colorColumn}
	}
	return prof
}

func (pp *peProgram) process(ctx *wse.Context, fb *flowBlock) {
	chain := pp.plan.Chain
	ctx.LabelSpan(pp.plan.groupLabels[ctx.Coord().Col%pp.plan.Cfg.PipelineLen])
	for i := pp.group.Lo; i < pp.group.Hi; i++ {
		ctx.Spend(chain.Stages[i].Cycles(fb.st))
		chain.Stages[i].Run(fb.st)
	}
	if pp.isTail {
		ctx.Emit(fb, fb.st.Wavelets())
		return
	}
	ctx.Send(wse.East, wse.Message{
		Color:    colorStage,
		Payload:  fb,
		Wavelets: fb.st.Wavelets(),
	})
}

// Result reports one simulated run.
type Result struct {
	// Bytes is the compressed stream (compression runs).
	Bytes []byte
	// Data is the reconstructed field (decompression runs).
	Data []float32
	// Cycles is the completion time of the last PE (§4.1's measurement).
	Cycles int64
	// Seconds is Cycles at the configured clock.
	Seconds float64
	// ThroughputGBps is uncompressed-bytes / Seconds / 1e9 — the paper's
	// throughput metric for both directions (§5.1.4).
	ThroughputGBps float64
	// Mesh exposes per-PE statistics for profiling (Fig. 10).
	Mesh *wse.Mesh
	// Meta is the stream metadata.
	Meta core.Meta
	// Telemetry is the run's private instrument snapshot: simulated cycle
	// accounting, relay occupancy, per-stage-group load, and the host-side
	// cost of the simulation itself. Each run gets its own registry, so
	// concurrent simulations never mix.
	Telemetry telemetry.Snapshot
	// Attribution is the per-PE timeline decomposition (compute,
	// relay-forward, queue-wait, fabric-stall, idle) of the run; every
	// PE's buckets sum to Cycles exactly, and the whole structure is
	// bit-identical across Mesh.Workers settings.
	Attribution wse.Attribution
	// Spans holds every block's assembled lifecycle when
	// PlanConfig.RecordSpans is set (nil otherwise).
	Spans []wse.BlockSpan
	// SpanLog is the raw span log behind Spans, for Perfetto export
	// (nil unless RecordSpans).
	SpanLog *wse.SpanLog
}

// install wires the plan's programs onto rows [0, rows) of the mesh.
// Unless ProcessorRelay is set, interior pipeline PEs get a static router
// route for the raw-block color, so crossing traffic never touches their
// processor.
func (p *Plan) install(m *wse.Mesh, rows int) {
	pl := p.Cfg.PipelineLen
	for r := 0; r < rows; r++ {
		for pipe := 0; pipe < p.Pipelines; pipe++ {
			for pos := 0; pos < pl; pos++ {
				col := pipe*pl + pos
				interiorWithTraffic := pos > 0 && pipe < p.Pipelines-1
				if interiorWithTraffic && !p.Cfg.ProcessorRelay {
					m.SetRoute(r, col, colorRaw, wse.East)
				}
				m.SetProgram(r, col, &peProgram{
					plan:      p,
					isHead:    pos == 0,
					isTail:    pos == pl-1,
					group:     p.Groups[pos],
					relayInit: p.Pipelines - pipe - 1,
				})
			}
		}
	}
}

// injectColumn streams every block into PE(0,0) on the column color; row
// heads peel off their rows' blocks (single-ingress mode).
func (p *Plan) injectColumn(m *wse.Mesh, blocks []*flowBlock, wavelets func(*flowBlock) int) {
	t := int64(0)
	for _, fb := range blocks {
		w := wavelets(fb)
		m.Inject(0, 0, wse.Message{Color: colorColumn, Payload: fb, Wavelets: w,
			Span: int64(fb.id) + 1}, t)
		if p.Cfg.InjectInterval > 0 {
			t += p.Cfg.InjectInterval
		} else {
			t += int64(w) + m.Config().LinkLatency
		}
	}
}

// inject streams the row's blocks into its west-edge PE at link rate (or
// the configured interval).
func (p *Plan) inject(m *wse.Mesh, row int, blocks []*flowBlock, wavelets func(*flowBlock) int) {
	t := int64(0)
	for _, fb := range blocks {
		w := wavelets(fb)
		m.Inject(row, 0, wse.Message{Color: colorRaw, Payload: fb, Wavelets: w,
			Span: int64(fb.id) + 1}, t)
		if p.Cfg.InjectInterval > 0 {
			t += p.Cfg.InjectInterval
		} else {
			t += int64(w) + m.Config().LinkLatency
		}
	}
}

// CompressTraced is Compress with a wse.Tracer attached (capturing up to
// capEntries events), for debugging the schedule.
func (p *Plan) CompressTraced(data []float32, capEntries int) (*wse.Tracer, *Result, error) {
	res, tr, err := p.compress(data, capEntries)
	return tr, res, err
}

// DecompressTraced is Decompress with a wse.Tracer attached (capturing up
// to capEntries events).
func (p *Plan) DecompressTraced(comp []byte, capEntries int) (*wse.Tracer, *Result, error) {
	res, tr, err := p.decompress(comp, capEntries)
	return tr, res, err
}

// Compress runs the plan on data and returns the compressed stream, which
// is byte-identical to internal/core's for the same parameters.
func (p *Plan) Compress(data []float32) (*Result, error) {
	res, _, err := p.compress(data, 0)
	return res, err
}

func (p *Plan) compress(data []float32, traceCap int) (*Result, *wse.Tracer, error) {
	if p.Chain.Dir != stages.Compress {
		return nil, nil, fmt.Errorf("mapping: Compress on a %v chain", p.Chain.Dir)
	}
	L := p.Chain.Cfg.BlockLen
	nBlocks := (len(data) + L - 1) / L
	m, err := wse.NewMesh(p.Cfg.Mesh)
	if err != nil {
		return nil, nil, err
	}
	var tr *wse.Tracer
	if traceCap > 0 {
		tr = m.AttachTracer(traceCap)
	}
	var spanLog *wse.SpanLog
	if p.Cfg.RecordSpans {
		spanLog = m.AttachSpans()
	}
	rows := p.Cfg.Mesh.Rows
	if rows > nBlocks && nBlocks > 0 {
		rows = nBlocks
	}
	p.install(m, rows)

	// Stripe blocks over rows: row r gets blocks r, r+rows, r+2·rows, …
	if p.Cfg.SingleIngress {
		var all []*flowBlock
		for b := 0; b < nBlocks; b++ {
			lo, hi := b*L, (b+1)*L
			if hi > len(data) {
				hi = len(data)
			}
			all = append(all, &flowBlock{id: b, row: b % rows, raw: data[lo:hi]})
		}
		p.injectColumn(m, all, func(*flowBlock) int { return L })
	} else {
		for r := 0; r < rows; r++ {
			var rowBlocks []*flowBlock
			for b := r; b < nBlocks; b += rows {
				lo, hi := b*L, (b+1)*L
				if hi > len(data) {
					hi = len(data)
				}
				rowBlocks = append(rowBlocks, &flowBlock{id: b, row: r, raw: data[lo:hi]})
			}
			p.inject(m, r, rowBlocks, func(*flowBlock) int { return L })
		}
	}

	runStart := time.Now()
	cycles, err := m.Run()
	if err != nil {
		return nil, nil, err
	}
	wall := time.Since(runStart)

	meta := core.Meta{
		HeaderBytes: p.Chain.Cfg.HeaderBytes,
		BlockLen:    L,
		Elements:    len(data),
		Eps:         p.Chain.Cfg.Eps,
	}
	encoded, err := collectBlocks(m, nBlocks)
	if err != nil {
		return nil, nil, err
	}
	out := core.AppendStreamHeader(nil, meta)
	for _, fb := range encoded {
		out = append(out, fb.st.Encoded...)
	}
	res := p.newResult(m, cycles, int64(4*len(data)), meta, wall, spanLog)
	res.Bytes = out
	return res, tr, nil
}

// Decompress runs the plan on a compressed stream and reconstructs the
// data, exactly as internal/core.Decompress would.
func (p *Plan) Decompress(comp []byte) (*Result, error) {
	res, _, err := p.decompress(comp, 0)
	return res, err
}

func (p *Plan) decompress(comp []byte, traceCap int) (*Result, *wse.Tracer, error) {
	if p.Chain.Dir != stages.Decompress {
		return nil, nil, fmt.Errorf("mapping: Decompress on a %v chain", p.Chain.Dir)
	}
	meta, offsets, err := core.BlockOffsets(comp)
	if err != nil {
		return nil, nil, err
	}
	if meta.BlockLen != p.Chain.Cfg.BlockLen {
		return nil, nil, fmt.Errorf("mapping: stream block length %d does not match plan's %d", meta.BlockLen, p.Chain.Cfg.BlockLen)
	}
	if meta.HeaderBytes != p.Chain.Cfg.HeaderBytes {
		return nil, nil, fmt.Errorf("mapping: stream header size %d does not match plan's %d", meta.HeaderBytes, p.Chain.Cfg.HeaderBytes)
	}
	if meta.Eps != p.Chain.Cfg.Eps {
		return nil, nil, fmt.Errorf("mapping: stream ε %g does not match plan's %g", meta.Eps, p.Chain.Cfg.Eps)
	}
	body := comp[core.StreamHeaderSize:]
	nBlocks := meta.Blocks()

	m, err := wse.NewMesh(p.Cfg.Mesh)
	if err != nil {
		return nil, nil, err
	}
	var tr *wse.Tracer
	if traceCap > 0 {
		tr = m.AttachTracer(traceCap)
	}
	var spanLog *wse.SpanLog
	if p.Cfg.RecordSpans {
		spanLog = m.AttachSpans()
	}
	rows := p.Cfg.Mesh.Rows
	if rows > nBlocks && nBlocks > 0 {
		rows = nBlocks
	}
	p.install(m, rows)

	encW := func(fb *flowBlock) int { return (len(fb.enc) + 3) / 4 }
	if p.Cfg.SingleIngress {
		var all []*flowBlock
		for b := 0; b < nBlocks; b++ {
			all = append(all, &flowBlock{id: b, row: b % rows, enc: body[offsets[b]:offsets[b+1]]})
		}
		p.injectColumn(m, all, encW)
	} else {
		for r := 0; r < rows; r++ {
			var rowBlocks []*flowBlock
			for b := r; b < nBlocks; b += rows {
				rowBlocks = append(rowBlocks, &flowBlock{id: b, row: r, enc: body[offsets[b]:offsets[b+1]]})
			}
			p.inject(m, r, rowBlocks, encW)
		}
	}

	runStart := time.Now()
	cycles, err := m.Run()
	if err != nil {
		return nil, nil, err
	}
	wall := time.Since(runStart)
	decoded, err := collectBlocks(m, nBlocks)
	if err != nil {
		return nil, nil, err
	}
	L := meta.BlockLen
	out := make([]float32, meta.Elements)
	for _, fb := range decoded {
		lo := fb.id * L
		hi := lo + L
		if hi > len(out) {
			hi = len(out)
		}
		copy(out[lo:hi], fb.st.Raw)
	}
	res := p.newResult(m, cycles, int64(4*meta.Elements), meta, wall, spanLog)
	res.Data = out
	return res, tr, nil
}

func (p *Plan) newResult(m *wse.Mesh, cycles, inputBytes int64, meta core.Meta, wall time.Duration, spanLog *wse.SpanLog) *Result {
	secs := m.Seconds(cycles)
	tput := 0.0
	if secs > 0 {
		tput = float64(inputBytes) / secs / 1e9
	}
	res := &Result{
		Cycles:         cycles,
		Seconds:        secs,
		ThroughputGBps: tput,
		Mesh:           m,
		Meta:           meta,
		Attribution:    m.Attribution(),
		SpanLog:        spanLog,
	}
	if spanLog != nil {
		res.Spans = spanLog.BlockSpans()
	}
	res.Telemetry = p.runTelemetry(m, cycles, wall, res.Attribution)
	return res
}

// runTelemetry fills a fresh registry with the run's accounting: simulated
// cycle totals split by kind, stall attribution, worker-pool occupancy,
// relay occupancy, estimated versus measured per-stage-group load, and the
// host wall time the simulation itself took. The same values also land on
// the Default registry (no-op unless a CLI enabled it), so a long-running
// bench server exposes them at /debug/metrics across runs.
func (p *Plan) runTelemetry(m *wse.Mesh, cycles int64, wall time.Duration, att wse.Attribution) telemetry.Snapshot {
	reg := telemetry.NewRegistry()
	reg.Timer("sim.run_wall").Observe(wall)
	reg.Counter("sim.events").Add(m.Processed())
	reg.Counter("sim.cycles").Add(cycles)
	reg.Gauge("sim.shards").Set(int64(m.Shards()))
	reg.Gauge("sim.workers").Set(int64(m.Workers()))
	s := m.Summary()
	reg.Counter("sim.cycles.compute").Add(s.TotalCompute)
	reg.Counter("sim.cycles.relay").Add(s.TotalRelay)
	reg.Counter("sim.cycles.send").Add(s.TotalSend)
	reg.Counter("sim.cycles.queue_wait").Add(att.Totals.QueueWait)
	reg.Counter("sim.cycles.fabric_stall").Add(att.Totals.FabricStall)
	reg.Counter("sim.cycles.idle").Add(att.Totals.Idle)
	reg.Counter("sim.cycles.mailbox_wait").Add(att.Totals.MailboxWait)
	reg.Counter("sim.forwards").Add(att.Totals.Forwarded)
	reg.Gauge("sim.active_pes").Set(int64(s.ActivePEs))
	reg.Gauge("sim.mem_peak_bytes").Set(int64(s.MemPeak))
	reg.Gauge("sim.mean_utilization_pct").Set(int64(100 * s.MeanUtilization))
	if busy := s.TotalCompute + s.TotalRelay + s.TotalSend; busy > 0 {
		reg.Gauge("sim.relay_share_pct").Set(100 * s.TotalRelay / busy)
	}
	// Worker-pool occupancy for the sharded engine. Pool peak is host-side
	// (scheduler-dependent) like sim.run_wall; the shard event counts are
	// deterministic, and their spread measures how balanced the row shards
	// were.
	reg.Gauge("sim.pool_peak_workers").Set(int64(m.PoolPeak()))
	reg.Counter("sim.feed_events").Add(m.FeedEvents())
	if se := m.ShardEvents(); len(se) > 0 {
		minE, maxE := se[0], se[0]
		for _, n := range se[1:] {
			if n < minE {
				minE = n
			}
			if n > maxE {
				maxE = n
			}
		}
		reg.Gauge("sim.shard_events_min").Set(minE)
		reg.Gauge("sim.shard_events_max").Set(maxE)
		if maxE > 0 {
			reg.Gauge("sim.shard_imbalance_pct").Set(100 * (maxE - minE) / maxE)
		}
	}
	// Per-stage-group load: Algorithm 1's estimate next to what the mesh
	// actually measured. Column c holds pipeline position c mod PipelineLen,
	// so summing RowProfile compute per position recovers the group split.
	perPos := make([]int64, p.Cfg.PipelineLen)
	for r := 0; r < m.Config().Rows; r++ {
		for c, st := range m.RowProfile(r) {
			perPos[c%p.Cfg.PipelineLen] += st.ComputeCycles
		}
	}
	for pos, g := range p.Groups {
		reg.Counter(fmt.Sprintf("plan.group%02d.est_cycles", pos)).Add(GroupCost(p.EstCosts, g))
		reg.Counter(fmt.Sprintf("plan.group%02d.compute_cycles", pos)).Add(perPos[pos])
	}
	snap := reg.Snapshot()
	mirrorToDefault(snap)
	return snap
}

// mirrorToDefault replays a run's private snapshot onto the process-wide
// Default registry — a no-op unless a CLI enabled it — so a long-running
// process (cereszbench -debug-addr) exposes simulator readings at
// /debug/metrics and /debug/telemetry across runs. Counters accumulate;
// gauges keep the latest run's level.
func mirrorToDefault(s telemetry.Snapshot) {
	if !telemetry.Enabled() {
		return
	}
	for name, v := range s.Counters {
		telemetry.C(name).Add(v)
	}
	for name, v := range s.Gauges {
		if strings.HasSuffix(name, ".max") {
			continue // snapshot artifact of the source gauge, not a gauge itself
		}
		telemetry.G(name).Set(v)
	}
	for name, t := range s.Timers {
		if t.Count > 0 {
			telemetry.T(name).Observe(time.Duration(t.SumNs))
		}
	}
}

// collectBlocks gathers the emitted flow blocks and orders them by id.
func collectBlocks(m *wse.Mesh, nBlocks int) ([]*flowBlock, error) {
	ems := m.Emissions()
	if len(ems) != nBlocks {
		return nil, fmt.Errorf("mapping: %d blocks emitted, want %d", len(ems), nBlocks)
	}
	// Block ids are dense 0..nBlocks-1, so the emissions sort by direct
	// placement: out[id] is the slot, and a filled slot is a duplicate.
	out := make([]*flowBlock, nBlocks)
	for _, e := range ems {
		fb, ok := e.Payload.(*flowBlock)
		if !ok {
			return nil, fmt.Errorf("mapping: unexpected emission payload %T", e.Payload)
		}
		if fb.id < 0 || fb.id >= nBlocks {
			return nil, fmt.Errorf("mapping: emitted block id %d outside [0,%d)", fb.id, nBlocks)
		}
		if out[fb.id] != nil {
			return nil, fmt.Errorf("mapping: block %d emitted twice", fb.id)
		}
		out[fb.id] = fb
	}
	return out, nil
}
