package mapping

import (
	"fmt"

	"ceresz/internal/stages"
	"ceresz/internal/telemetry"
	"ceresz/internal/wse"
)

// telPlanBuild times Algorithm 1 planning on the host path (Default
// registry; disabled unless a CLI opts in).
var telPlanBuild = telemetry.T("mapping.plan_build")

// DefaultMsgOverhead is the calibrated per-message relay overhead (cycles
// of task activation + DSD setup per forwarded block, §2.1). It is what
// keeps tiny messages — zero blocks are a single wavelet — from relaying
// for free, and it is applied whenever PlanConfig.Mesh.MsgOverhead is
// unset.
const DefaultMsgOverhead = 30

// PlanConfig selects the mesh geometry and pipeline shape for a run.
type PlanConfig struct {
	// Mesh is the simulated wafer geometry and timing.
	Mesh wse.Config
	// PipelineLen is the number of consecutive PEs each pipeline spans
	// (the paper's pipeline_length; 1 runs the whole chain on a single PE,
	// which §4.4 shows is optimal when memory and input rate allow).
	PipelineLen int
	// PlanWidth is the fixed length assumed when estimating sub-stage
	// costs for Algorithm 1 (paper §4.2: approximated by sampling ~5% of
	// the data). Zero uses the chain's configured EstWidth.
	PlanWidth uint
	// InjectInterval spaces successive block injections into each row head
	// in cycles; zero derives it from the block's wavelet count (the link
	// streaming rate — the "data generated fast enough" assumption of
	// §4.4).
	InjectInterval int64
	// SingleIngress feeds every block through PE(0,0) and relays it down
	// the west column, instead of the paper's assumption that data appears
	// at each row head (§4.3, enabled by the CS-2's dedicated routing PEs,
	// §5.1.1). Useful to quantify how much the distributed ingress is
	// worth: one 32-bit link caps the whole wafer at ~3.4 GB/s.
	SingleIngress bool
	// ProcessorRelay forces the paper-literal Fig. 9 protocol on interior
	// pipeline PEs: raw traffic crossing them occupies their processor.
	// The default (false) lets the fabric router pass raw traffic through
	// interior PEs in hardware (paper Fig. 3 static color routing), which
	// is how a production CSL implementation would wire it — only head
	// PEs, which must count and capture blocks, relay in software. Head
	// PEs always use processor relay; the two modes emit identical bytes.
	ProcessorRelay bool
	// RecordSpans traces every block's lifecycle (inject → relay hops →
	// stage groups → eject) through the simulator's span log; the result
	// carries the assembled Result.Spans and the raw Result.SpanLog for
	// Perfetto export. Off by default — tracing every block costs memory
	// proportional to blocks × pipeline hops. Deterministic: the recorded
	// spans are bit-identical for any Mesh.Workers setting.
	RecordSpans bool
}

// Plan is a validated mapping of a stage chain onto a mesh.
type Plan struct {
	Chain  *stages.Chain
	Cfg    PlanConfig
	Groups []Group
	// EstCosts are the planning-time sub-stage costs fed to Algorithm 1.
	EstCosts []int64
	// Pipelines is the number of pipelines per row (⌊Cols/PipelineLen⌋).
	Pipelines int
	// groupLabels holds the span label for each pipeline position
	// ("group00"…), precomputed so handlers never format in the hot path.
	groupLabels []string
}

// NewPlan distributes the chain's sub-stages over PipelineLen PEs with
// Algorithm 1 and validates geometry and per-PE memory.
func NewPlan(chain *stages.Chain, cfg PlanConfig) (*Plan, error) {
	defer telPlanBuild.Start().End()
	if chain == nil {
		return nil, fmt.Errorf("mapping: nil chain")
	}
	if cfg.PipelineLen < 1 {
		return nil, fmt.Errorf("mapping: pipeline length %d < 1", cfg.PipelineLen)
	}
	if cfg.Mesh.MsgOverhead == 0 {
		cfg.Mesh.MsgOverhead = DefaultMsgOverhead
	}
	mesh := cfg.Mesh
	if mesh.Rows < 1 || mesh.Cols < 1 {
		return nil, fmt.Errorf("mapping: invalid mesh %dx%d", mesh.Rows, mesh.Cols)
	}
	if cfg.PipelineLen > mesh.Cols {
		return nil, fmt.Errorf("mapping: pipeline length %d exceeds %d columns", cfg.PipelineLen, mesh.Cols)
	}
	if cfg.PipelineLen > len(chain.Stages) {
		return nil, fmt.Errorf("mapping: pipeline length %d exceeds %d sub-stages", cfg.PipelineLen, len(chain.Stages))
	}
	width := cfg.PlanWidth
	if width == 0 {
		width = uint(chain.Cfg.EstWidth)
	}
	costs := chain.EstimateCycles(width)
	groups, err := Distribute(costs, cfg.PipelineLen)
	if err != nil {
		return nil, err
	}
	p := &Plan{
		Chain:     chain,
		Cfg:       cfg,
		Groups:    groups,
		EstCosts:  costs,
		Pipelines: mesh.Cols / cfg.PipelineLen,
	}
	p.groupLabels = make([]string, len(groups))
	for i := range groups {
		p.groupLabels[i] = fmt.Sprintf("group%02d", i)
	}
	if err := p.checkMemory(); err != nil {
		return nil, err
	}
	return p, nil
}

// checkMemory conservatively verifies the 48 KB local-memory budget: every
// PE must hold one full block state (the flowing representation) plus a
// relay buffer for one raw block. This is what forces longer pipelines (or
// smaller blocks) when L grows (paper §4.4, assumption 2).
func (p *Plan) checkMemory() error {
	L := p.Chain.Cfg.BlockLen
	need := stateBytes(L)/p.Cfg.PipelineLen + relayBytes(L) // longer pipelines split the state
	budget := p.Cfg.Mesh.MemPerPE
	if budget == 0 {
		budget = 48 * 1024
	}
	if need > budget {
		return fmt.Errorf("mapping: block length %d needs ≈%d bytes per PE, over the %d-byte budget; use a longer pipeline or smaller blocks",
			L, need, budget)
	}
	return nil
}

// stateBytes is the worst-case live block state: raw f32 + scaled f64 +
// codes + abs + signs + all 32 bit planes + encoded copy.
func stateBytes(L int) int {
	return L*4 + L*8 + L*4 + L*4 + L/8 + 32*L/8 + (4 + L/8 + 32*L/8)
}

// relayBytes is the buffer a PE needs to forward one raw block.
func relayBytes(L int) int { return 4 * L }

// BottleneckCycles returns the steady-state per-block compute cost of the
// slowest PE under the plan's grouping.
func (p *Plan) BottleneckCycles() int64 {
	return Bottleneck(p.EstCosts, p.Groups)
}

// TotalCycles returns the planning-time total chain cost C.
func (p *Plan) TotalCycles() int64 {
	var sum int64
	for _, c := range p.EstCosts {
		sum += c
	}
	return sum
}

// GroupOf returns the stage group of pipeline position pos.
func (p *Plan) GroupOf(pos int) Group { return p.Groups[pos] }

// GroupLabel returns the span-log label of pipeline position pos — the
// string the PE programs stamp on their dispatch span events.
func (p *Plan) GroupLabel(pos int) string { return p.groupLabels[pos] }

// Describe renders the grouping for logs: one line per PE position.
func (p *Plan) Describe() string {
	s := fmt.Sprintf("pipeline length %d, %d pipelines/row, bottleneck %d cycles\n",
		p.Cfg.PipelineLen, p.Pipelines, p.BottleneckCycles())
	names := p.Chain.StageNames()
	for i, g := range p.Groups {
		s += fmt.Sprintf("  PE %d: %v (%d cycles)\n", i, names[g.Lo:g.Hi], GroupCost(p.EstCosts, g))
	}
	return s
}
