package mapping

import (
	"fmt"
	"math"

	"ceresz/internal/flenc"
	"ceresz/internal/stages"
)

// Workload summarizes a dataset for the analytic performance model.
type Workload struct {
	// Blocks is the number of data blocks.
	Blocks int
	// Elements is the number of float32 elements (sets the uncompressed
	// byte count used by the paper's throughput metric).
	Elements int
	// WidthHist[w] counts blocks with fixed length w (0 = zero blocks).
	WidthHist [flenc.MaxWidth + 1]int
	// VerbatimBlocks counts blocks stored raw.
	VerbatimBlocks int
	// AvgInputWavelets is the mean fabric size of one input block: L for
	// compression, mean encoded words for decompression.
	AvgInputWavelets float64
}

// Projection is the analytic model's estimate for one run, following the
// structure of paper Formulas (2)–(4): per round every pipeline in a row
// consumes one block; the busiest PE pays the relay term (2) plus its
// stage-group compute and the intermediate transfer term of (3); rounds
// repeat until the row's share of blocks is exhausted.
type Projection struct {
	// RoundCycles is the steady-state cycles per round on the critical PE.
	RoundCycles float64
	// RelayCycles is the relay share of RoundCycles (Formula (2) term).
	RelayCycles float64
	// ComputeCycles is the bottleneck stage-group share (Formula (3) term).
	ComputeCycles float64
	// TransferCycles is the intermediate-handoff share (the C₂ term).
	TransferCycles float64
	// Rounds is the number of rounds the busiest row executes.
	Rounds int64
	// FillCycles is the one-time pipeline fill latency.
	FillCycles float64
	// TotalCycles is the projected end-to-end cycle count.
	TotalCycles float64
	// Seconds is TotalCycles at the configured clock.
	Seconds float64
	// ThroughputGBps is uncompressed-bytes / Seconds / 1e9 for this
	// workload, including fill time — representative when the workload
	// saturates the mesh for many rounds.
	ThroughputGBps float64
	// SteadyThroughputGBps is the asymptotic rate once every row is in
	// steady state: rows · pipelines · blockBytes / roundTime. The paper's
	// Figs. 11–14 stream entire multi-GB datasets, which is this regime.
	SteadyThroughputGBps float64
}

// Project estimates the plan's performance on the workload without running
// the event simulator. The model is validated against the simulator on
// small meshes (see TestModelMatchesSimulator) and extrapolated to
// full-wafer geometries, exactly as the paper extrapolates from its
// profiled constants.
func (p *Plan) Project(w Workload) (Projection, error) {
	if w.Blocks <= 0 {
		return Projection{}, fmt.Errorf("mapping: workload with %d blocks", w.Blocks)
	}
	var hist int
	for _, c := range w.WidthHist {
		hist += c
	}
	if hist+w.VerbatimBlocks != w.Blocks {
		return Projection{}, fmt.Errorf("mapping: width histogram covers %d of %d blocks", hist+w.VerbatimBlocks, w.Blocks)
	}
	cfg := p.Cfg.Mesh.WithDefaults()
	pl := p.Cfg.PipelineLen
	P := p.Pipelines

	// Average per-block compute on the bottleneck PE and in total, over
	// the workload's width distribution.
	var bottleneck, chainTotal float64
	for width, count := range w.WidthHist {
		if count == 0 {
			continue
		}
		costs := p.Chain.EstimateCycles(uint(width))
		f := float64(count) / float64(w.Blocks)
		bottleneck += f * float64(Bottleneck(costs, p.Groups))
		var sum int64
		for _, c := range costs {
			sum += c
		}
		chainTotal += f * float64(sum)
	}
	if w.VerbatimBlocks > 0 {
		costs := p.verbatimCosts()
		f := float64(w.VerbatimBlocks) / float64(w.Blocks)
		bottleneck += f * float64(Bottleneck(costs, p.Groups))
		var sum int64
		for _, c := range costs {
			sum += c
		}
		chainTotal += f * float64(sum)
	}

	// Formula (2): the head of the westmost pipeline relays one raw block
	// per round for every pipeline to its east; C₁ is the relay cost of a
	// raw block (per-message overhead + its wavelet count).
	c1 := float64(cfg.MsgOverhead) + w.AvgInputWavelets
	relay := float64(P-1) * c1

	// Formula (3): each hop inside the pipeline moves the live state
	// through the RAMP; C₂ = ramp latency + state wavelets. With pipeline
	// length 1 the only handoff is the emission.
	stateW := float64(p.Chain.Cfg.BlockLen) // conservative: codes-sized
	c2 := float64(cfg.RampLatency) + stateW
	transfer := c2
	if pl == 1 {
		transfer = stateW / 4 // emission of the (smaller) encoded block
	}

	// Input feed: a row's west edge can absorb at most one block per
	// (wavelets + link latency) cycles; with P pipelines per row a round
	// needs P blocks. Single-ingress mode squeezes every row's feed through
	// PE(0,0)'s one link (§5.1.1's routing PEs exist to avoid exactly this).
	inputRound := float64(P) * (w.AvgInputWavelets + float64(cfg.LinkLatency))
	if p.Cfg.SingleIngress {
		rows := cfg.Rows
		if rows > w.Blocks {
			rows = w.Blocks
		}
		inputRound *= float64(rows)
	}

	round := relay + bottleneck + transfer
	if inputRound > round {
		round = inputRound
	}

	rows := cfg.Rows
	if rows > w.Blocks {
		rows = w.Blocks
	}
	blocksPerRow := (w.Blocks + rows - 1) / rows
	rounds := int64((blocksPerRow + P - 1) / P)

	// One-time fill: stream a block across the row plus one full chain
	// execution and its intra-pipeline transfers.
	fill := float64(cfg.Cols)*(c1+float64(cfg.LinkLatency)) + chainTotal + float64(pl)*c2

	total := fill + float64(rounds)*round
	secs := total / cfg.ClockHz
	proj := Projection{
		RoundCycles:    round,
		RelayCycles:    relay,
		ComputeCycles:  bottleneck,
		TransferCycles: transfer,
		Rounds:         rounds,
		FillCycles:     fill,
		TotalCycles:    total,
		Seconds:        secs,
	}
	if secs > 0 {
		proj.ThroughputGBps = float64(4*w.Elements) / secs / 1e9
	}
	blockBytes := 4 * float64(w.Elements) / float64(w.Blocks)
	proj.SteadyThroughputGBps = float64(cfg.Rows) * float64(P) * blockBytes / (round / cfg.ClockHz) / 1e9
	return proj, nil
}

// verbatimCosts returns per-stage costs for a verbatim block.
func (p *Plan) verbatimCosts() []int64 {
	st := stages.NewBlockState(p.Chain.Cfg.BlockLen)
	st.Verbatim = true
	out := make([]int64, len(p.Chain.Stages))
	for i := range p.Chain.Stages {
		out[i] = p.Chain.Stages[i].Cycles(st)
	}
	return out
}

// UniformWorkload builds a Workload in which every block has the given
// fixed length — handy for calibration experiments.
func UniformWorkload(blocks, elements int, width uint, avgInputWavelets float64) Workload {
	var w Workload
	w.Blocks = blocks
	w.Elements = elements
	w.WidthHist[width] = blocks
	w.AvgInputWavelets = avgInputWavelets
	return w
}

// ThroughputGBps converts a cycle count and byte volume at clock hz.
func ThroughputGBps(bytes int64, cycles int64, hz float64) float64 {
	if cycles <= 0 {
		return 0
	}
	return float64(bytes) / (float64(cycles) / hz) / 1e9
}

// SpeedupIsLinear checks an (x, time) series for linear scaling: doubling
// x should halve time within tol (e.g. 0.15 for 15%). Used by the Fig. 7 /
// Fig. 14 reproductions.
func SpeedupIsLinear(xs []int, times []float64, tol float64) error {
	if len(xs) != len(times) || len(xs) < 2 {
		return fmt.Errorf("mapping: need matched series of ≥2 points")
	}
	base := times[0] * float64(xs[0])
	for i := 1; i < len(xs); i++ {
		work := times[i] * float64(xs[i])
		if math.Abs(work-base)/base > tol {
			return fmt.Errorf("mapping: point %d (x=%d) deviates %.1f%% from linear scaling",
				i, xs[i], 100*math.Abs(work-base)/base)
		}
	}
	return nil
}
