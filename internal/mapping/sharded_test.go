package mapping

import (
	"bytes"
	"reflect"
	"runtime"
	"testing"

	"ceresz/internal/wse"
)

// shardWorkerCounts is the worker matrix for the differential tests:
// the sequential reference, the smallest sharded pool, and one worker
// per CPU (forced to at least 2 so the sharded path always runs).
func shardWorkerCounts() []int {
	n := runtime.NumCPU()
	if n < 2 {
		n = 2
	}
	return []int{1, 2, n}
}

// emissionKey flattens a mesh emission for comparison across runs.
type emissionKey struct {
	from wse.Coord
	at   int64
	id   int
}

func emissionLog(t *testing.T, m *wse.Mesh) []emissionKey {
	t.Helper()
	var out []emissionKey
	for _, e := range m.Emissions() {
		fb, ok := e.Payload.(*flowBlock)
		if !ok {
			t.Fatalf("unexpected emission payload %T", e.Payload)
		}
		out = append(out, emissionKey{from: e.From, at: e.At, id: fb.id})
	}
	return out
}

// TestShardedRunsMatchSequential is the differential determinism check:
// for every plan shape the sharded engine must reproduce the sequential
// engine's cycle count, emission order and output bytes exactly, for any
// worker count.
func TestShardedRunsMatchSequential(t *testing.T) {
	data := smoothField(32*96, 11)
	configs := []struct {
		name string
		cfg  PlanConfig
	}{
		{"multi-row", PlanConfig{Mesh: wse.Config{Rows: 4, Cols: 6}, PipelineLen: 2}},
		{"single-ingress", PlanConfig{Mesh: wse.Config{Rows: 4, Cols: 6}, PipelineLen: 2, SingleIngress: true}},
		{"processor-relay", PlanConfig{Mesh: wse.Config{Rows: 3, Cols: 6}, PipelineLen: 2, ProcessorRelay: true}},
	}
	for _, tc := range configs {
		t.Run(tc.name, func(t *testing.T) {
			var refBytes []byte
			var refCycles, refDecCycles int64
			var refEms, refDecEms []emissionKey
			for i, workers := range shardWorkerCounts() {
				cfg := tc.cfg
				cfg.Mesh.Workers = workers

				chain := compressChain(t, 1e-3, 12)
				plan, err := NewPlan(chain, cfg)
				if err != nil {
					t.Fatal(err)
				}
				res, err := plan.Compress(data)
				if err != nil {
					t.Fatal(err)
				}
				ems := emissionLog(t, res.Mesh)

				dchain := decompressChain(t, 1e-3, 12)
				dplan, err := NewPlan(dchain, cfg)
				if err != nil {
					t.Fatal(err)
				}
				dres, err := dplan.Decompress(res.Bytes)
				if err != nil {
					t.Fatal(err)
				}
				dems := emissionLog(t, dres.Mesh)

				if i == 0 {
					refBytes, refCycles, refEms = res.Bytes, res.Cycles, ems
					refDecCycles, refDecEms = dres.Cycles, dems
					continue
				}
				if res.Cycles != refCycles {
					t.Errorf("workers=%d: compress cycles %d, sequential %d", workers, res.Cycles, refCycles)
				}
				if !bytes.Equal(res.Bytes, refBytes) {
					t.Errorf("workers=%d: compressed stream differs from sequential", workers)
				}
				if len(ems) != len(refEms) {
					t.Fatalf("workers=%d: %d emissions, sequential %d", workers, len(ems), len(refEms))
				}
				for j := range ems {
					if ems[j] != refEms[j] {
						t.Fatalf("workers=%d: emission %d = %+v, sequential %+v", workers, j, ems[j], refEms[j])
					}
				}
				if dres.Cycles != refDecCycles {
					t.Errorf("workers=%d: decompress cycles %d, sequential %d", workers, dres.Cycles, refDecCycles)
				}
				for j := range dems {
					if dems[j] != refDecEms[j] {
						t.Fatalf("workers=%d: decompress emission %d = %+v, sequential %+v", workers, j, dems[j], refDecEms[j])
					}
				}
				if workers > 1 && res.Mesh.Shards() < 2 {
					t.Errorf("workers=%d: run used %d shards, expected row sharding", workers, res.Mesh.Shards())
				}
			}
		})
	}
}

// TestAttributionAndSpansDeterministic extends the differential check to
// the observability outputs: per-PE cycle attribution and per-block
// lifecycle spans must be bit-identical across worker counts, and every
// PE's buckets must partition [0, Elapsed] exactly on every run.
func TestAttributionAndSpansDeterministic(t *testing.T) {
	data := smoothField(32*96, 13)
	configs := []struct {
		name string
		cfg  PlanConfig
	}{
		{"multi-row", PlanConfig{Mesh: wse.Config{Rows: 4, Cols: 6}, PipelineLen: 2, RecordSpans: true}},
		{"single-ingress", PlanConfig{Mesh: wse.Config{Rows: 4, Cols: 6}, PipelineLen: 2, SingleIngress: true, RecordSpans: true}},
	}
	for _, tc := range configs {
		t.Run(tc.name, func(t *testing.T) {
			var refAtt wse.Attribution
			var refSpans []wse.BlockSpan
			for i, workers := range shardWorkerCounts() {
				cfg := tc.cfg
				cfg.Mesh.Workers = workers

				chain := compressChain(t, 1e-3, 12)
				plan, err := NewPlan(chain, cfg)
				if err != nil {
					t.Fatal(err)
				}
				res, err := plan.Compress(data)
				if err != nil {
					t.Fatal(err)
				}
				att := res.Attribution

				// Invariant on every run: buckets tile [0, Elapsed].
				for _, pa := range att.PEs {
					sum := pa.Compute + pa.RelayForward + pa.QueueWait + pa.FabricStall + pa.Idle
					if sum != att.Elapsed {
						t.Fatalf("workers=%d PE %v: buckets sum to %d, elapsed %d", workers, pa.PE, sum, att.Elapsed)
					}
					if pa.Idle < 0 {
						t.Fatalf("workers=%d PE %v: negative idle %d", workers, pa.PE, pa.Idle)
					}
				}
				if len(res.Spans) == 0 {
					t.Fatalf("workers=%d: no spans recorded", workers)
				}

				if i == 0 {
					refAtt, refSpans = att, res.Spans
					continue
				}
				if !reflect.DeepEqual(att, refAtt) {
					t.Errorf("workers=%d: attribution differs from sequential\n got %+v\nwant %+v", workers, att, refAtt)
				}
				if len(res.Spans) != len(refSpans) {
					t.Fatalf("workers=%d: %d spans, sequential %d", workers, len(res.Spans), len(refSpans))
				}
				for j := range res.Spans {
					if !reflect.DeepEqual(res.Spans[j], refSpans[j]) {
						t.Fatalf("workers=%d: span %d differs\n got %+v\nwant %+v", workers, j, res.Spans[j], refSpans[j])
					}
				}
			}
		})
	}
}

// TestFullWaferCompletes simulates a compression plan on the full-wafer
// 750×994 geometry (two blocks per row) and cross-checks the sharded
// engine's cycle count against the sequential reference on a reduced-row
// slice of the same shape.
func TestFullWaferCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("full-wafer mesh is slow in -short mode")
	}
	run := func(rows int, workers int) *Result {
		t.Helper()
		mesh := wse.FullWSE
		mesh.Rows = rows
		mesh.Workers = workers
		data := smoothField(32*2*rows, 3)
		chain := compressChain(t, 1e-3, 12)
		plan, err := NewPlan(chain, PlanConfig{Mesh: mesh, PipelineLen: 1})
		if err != nil {
			t.Fatal(err)
		}
		res, err := plan.Compress(data)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	// Reduced-row cross-check: sharded cycles must equal sequential.
	seq := run(16, 1)
	shd := run(16, 4)
	if shd.Mesh.Shards() != 16 {
		t.Fatalf("reduced-rows run used %d shards, want 16", shd.Mesh.Shards())
	}
	if seq.Cycles != shd.Cycles {
		t.Fatalf("reduced-rows cross-check: sharded %d cycles, sequential %d", shd.Cycles, seq.Cycles)
	}
	if !bytes.Equal(seq.Bytes, shd.Bytes) {
		t.Fatal("reduced-rows cross-check: streams differ")
	}

	// Full wafer on the sharded engine (Workers: 4 rather than auto, so
	// the row-sharded path runs even on single-CPU hosts).
	full := run(wse.FullWSE.Rows, 4)
	if full.Cycles <= 0 {
		t.Fatalf("full-wafer run reported %d cycles", full.Cycles)
	}
	if full.Mesh.Shards() != wse.FullWSE.Rows {
		t.Fatalf("full wafer used %d shards, want %d", full.Mesh.Shards(), wse.FullWSE.Rows)
	}
	t.Logf("full wafer: %d cycles, %d events, %d shards × %d workers",
		full.Cycles, full.Mesh.Processed(), full.Mesh.Shards(), full.Mesh.Workers())
}
