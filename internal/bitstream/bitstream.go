// Package bitstream provides LSB-first bit-level readers and writers used by
// the fixed-length encoder and the Huffman coder.
//
// All routines are allocation-conscious: a Writer grows a single internal
// byte slice and a Reader never copies its input. Bit order within a byte is
// least-significant-bit first, which matches the bit-shuffle layout used by
// CereSZ (bit k of integer i lands in plane k, bit position i).
package bitstream

import (
	"errors"
	"fmt"
)

// ErrOutOfBits is returned when a Reader is asked for more bits than remain.
var ErrOutOfBits = errors.New("bitstream: out of bits")

// Writer accumulates bits LSB-first into a growing byte slice.
// The zero value is ready to use.
type Writer struct {
	buf  []byte
	nbit uint64 // total bits written
}

// NewWriter returns a Writer with capacity for sizeHint bytes.
func NewWriter(sizeHint int) *Writer {
	if sizeHint < 0 {
		sizeHint = 0
	}
	return &Writer{buf: make([]byte, 0, sizeHint)}
}

// Reset clears the writer for reuse, keeping the underlying buffer.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.nbit = 0
}

// Len returns the number of whole bytes needed to hold the written bits.
func (w *Writer) Len() int { return int((w.nbit + 7) / 8) }

// BitLen returns the number of bits written so far.
func (w *Writer) BitLen() uint64 { return w.nbit }

// WriteBit appends a single bit (the low bit of b).
func (w *Writer) WriteBit(b uint32) {
	idx := int(w.nbit >> 3)
	if idx == len(w.buf) {
		w.buf = append(w.buf, 0)
	}
	if b&1 != 0 {
		w.buf[idx] |= 1 << (w.nbit & 7)
	}
	w.nbit++
}

// WriteBits appends the low n bits of v, LSB first. n must be in [0, 32].
func (w *Writer) WriteBits(v uint32, n uint) {
	if n > 32 {
		panic(fmt.Sprintf("bitstream: WriteBits n=%d > 32", n))
	}
	for i := uint(0); i < n; i++ {
		w.WriteBit(v >> i)
	}
}

// WriteBits64 appends the low n bits of v, LSB first. n must be in [0, 64].
func (w *Writer) WriteBits64(v uint64, n uint) {
	if n > 64 {
		panic(fmt.Sprintf("bitstream: WriteBits64 n=%d > 64", n))
	}
	for i := uint(0); i < n; i++ {
		w.WriteBit(uint32(v>>i) & 1)
	}
}

// Align pads with zero bits to the next byte boundary.
func (w *Writer) Align() {
	for w.nbit&7 != 0 {
		w.WriteBit(0)
	}
}

// Bytes returns the written bytes. The final partial byte, if any, is
// zero-padded in its high bits. The returned slice aliases the writer's
// internal buffer and is invalidated by further writes or Reset.
func (w *Writer) Bytes() []byte {
	return w.buf[:w.Len()]
}

// Reader consumes bits LSB-first from a byte slice.
type Reader struct {
	buf []byte
	pos uint64 // bit cursor
}

// NewReader returns a Reader over buf. The Reader does not copy buf.
func NewReader(buf []byte) *Reader {
	return &Reader{buf: buf}
}

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() uint64 {
	total := uint64(len(r.buf)) * 8
	if r.pos >= total {
		return 0
	}
	return total - r.pos
}

// ReadBit reads one bit.
func (r *Reader) ReadBit() (uint32, error) {
	idx := int(r.pos >> 3)
	if idx >= len(r.buf) {
		return 0, ErrOutOfBits
	}
	b := uint32(r.buf[idx]>>(r.pos&7)) & 1
	r.pos++
	return b, nil
}

// ReadBits reads n bits (n ≤ 32), LSB first, into the low bits of the result.
func (r *Reader) ReadBits(n uint) (uint32, error) {
	if n > 32 {
		return 0, fmt.Errorf("bitstream: ReadBits n=%d > 32", n)
	}
	if r.Remaining() < uint64(n) {
		return 0, ErrOutOfBits
	}
	var v uint32
	for i := uint(0); i < n; i++ {
		b, _ := r.ReadBit()
		v |= b << i
	}
	return v, nil
}

// ReadBits64 reads n bits (n ≤ 64), LSB first.
func (r *Reader) ReadBits64(n uint) (uint64, error) {
	if n > 64 {
		return 0, fmt.Errorf("bitstream: ReadBits64 n=%d > 64", n)
	}
	if r.Remaining() < uint64(n) {
		return 0, ErrOutOfBits
	}
	var v uint64
	for i := uint(0); i < n; i++ {
		b, _ := r.ReadBit()
		v |= uint64(b) << i
	}
	return v, nil
}

// Align advances the cursor to the next byte boundary.
func (r *Reader) Align() {
	r.pos = (r.pos + 7) &^ 7
}

// BitPos returns the current bit cursor.
func (r *Reader) BitPos() uint64 { return r.pos }
