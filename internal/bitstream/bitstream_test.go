package bitstream

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadBit(t *testing.T) {
	w := NewWriter(2)
	pattern := []uint32{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1}
	for _, b := range pattern {
		w.WriteBit(b)
	}
	if got, want := w.BitLen(), uint64(len(pattern)); got != want {
		t.Fatalf("BitLen = %d, want %d", got, want)
	}
	if got, want := w.Len(), 2; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	r := NewReader(w.Bytes())
	for i, want := range pattern {
		got, err := r.ReadBit()
		if err != nil {
			t.Fatalf("ReadBit %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("bit %d = %d, want %d", i, got, want)
		}
	}
}

func TestWriteBitsRoundTrip(t *testing.T) {
	type field struct {
		v uint32
		n uint
	}
	fields := []field{
		{0, 0}, {1, 1}, {5, 3}, {0xFF, 8}, {0x12345678, 32},
		{0xFFFFFFFF, 32}, {7, 5}, {1, 17},
	}
	w := NewWriter(0)
	for _, f := range fields {
		w.WriteBits(f.v, f.n)
	}
	r := NewReader(w.Bytes())
	for i, f := range fields {
		got, err := r.ReadBits(f.n)
		if err != nil {
			t.Fatalf("field %d: %v", i, err)
		}
		want := f.v
		if f.n < 32 {
			want &= (1 << f.n) - 1
		}
		if got != want {
			t.Fatalf("field %d = %#x, want %#x", i, got, want)
		}
	}
	if r.Remaining() >= 8 {
		t.Fatalf("too many bits remain: %d", r.Remaining())
	}
}

func TestWriteBits64RoundTrip(t *testing.T) {
	w := NewWriter(0)
	vals := []uint64{0, 1, 0xDEADBEEFCAFEF00D, 1 << 63, 0xFFFFFFFFFFFFFFFF}
	for _, v := range vals {
		w.WriteBits64(v, 64)
	}
	r := NewReader(w.Bytes())
	for i, want := range vals {
		got, err := r.ReadBits64(64)
		if err != nil {
			t.Fatalf("val %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("val %d = %#x, want %#x", i, got, want)
		}
	}
}

func TestAlign(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0b101, 3)
	w.Align()
	if w.BitLen() != 8 {
		t.Fatalf("BitLen after Align = %d, want 8", w.BitLen())
	}
	w.WriteBits(0xAB, 8)
	r := NewReader(w.Bytes())
	if v, _ := r.ReadBits(3); v != 0b101 {
		t.Fatalf("prefix = %#b", v)
	}
	r.Align()
	if v, _ := r.ReadBits(8); v != 0xAB {
		t.Fatalf("aligned byte = %#x, want 0xAB", v)
	}
}

func TestReaderOutOfBits(t *testing.T) {
	r := NewReader([]byte{0xFF})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if _, err := r.ReadBit(); err != ErrOutOfBits {
		t.Fatalf("err = %v, want ErrOutOfBits", err)
	}
	if _, err := r.ReadBits(4); err != ErrOutOfBits {
		t.Fatalf("err = %v, want ErrOutOfBits", err)
	}
}

func TestReset(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0xFFFF, 16)
	w.Reset()
	if w.Len() != 0 || w.BitLen() != 0 {
		t.Fatalf("Reset did not clear: len=%d bits=%d", w.Len(), w.BitLen())
	}
	w.WriteBits(0x3, 2)
	if got := w.Bytes(); len(got) != 1 || got[0] != 0x3 {
		t.Fatalf("post-Reset bytes = %v", got)
	}
}

func TestWriteBitsPanicsOver32(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WriteBits(…, 33) did not panic")
		}
	}()
	NewWriter(0).WriteBits(0, 33)
}

// Property: any sequence of variable-width writes reads back identically.
func TestQuickVariableWidthRoundTrip(t *testing.T) {
	f := func(vals []uint32, widthSeed int64) bool {
		rng := rand.New(rand.NewSource(widthSeed))
		widths := make([]uint, len(vals))
		w := NewWriter(0)
		for i, v := range vals {
			widths[i] = uint(rng.Intn(33))
			w.WriteBits(v, widths[i])
		}
		r := NewReader(w.Bytes())
		for i, v := range vals {
			got, err := r.ReadBits(widths[i])
			if err != nil {
				return false
			}
			want := v
			if widths[i] < 32 {
				want &= (1 << widths[i]) - 1
			}
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
